// Package repro's root benchmarks wrap one experiment per paper table and
// figure (see EXPERIMENTS.md for the mapping and recorded results). Each
// benchmark runs a scaled configuration of the corresponding harness in
// internal/bench and reports throughput-style custom metrics; use
// cmd/shadowfax-bench for the full-size runs and series output.
package repro_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

// benchOpts keeps testing.B runs short; the b.N loop re-runs the whole
// (fixed-duration) experiment, so N is effectively 1 with -benchtime=1x.
func benchOpts() bench.Options {
	return bench.Options{
		Keys:     20_000,
		Duration: 500 * time.Millisecond,
		MemPages: 128,
	}
}

func scaleOpts() bench.ScaleOutOptions {
	return bench.ScaleOutOptions{
		Options:             benchOpts(),
		WarmupBeforeMigrate: 500 * time.Millisecond,
		TotalRuntime:        3 * time.Second,
		SampleEvery:         100 * time.Millisecond,
	}
}

// BenchmarkFig8ThreadScalability reports Mops/s for local FASTER, Shadowfax
// over accelerated TCP, and Shadowfax without acceleration (Figure 8).
func BenchmarkFig8ThreadScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig8([]int{2}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(r.FasterMops, "faster-Mops")
		b.ReportMetric(r.ShadowfaxMops, "shadowfax-Mops")
		b.ReportMetric(r.NoAccelMops, "noaccel-Mops")
	}
}

// BenchmarkFig9VsSeastar compares Shadowfax against the shared-nothing
// Seastar baseline under uniform keys (Figure 9).
func BenchmarkFig9VsSeastar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig9([]int{2}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(r.ShadowfaxMops, "shadowfax-Mops")
		b.ReportMetric(r.SeastarMops, "seastar-Mops")
		if r.SeastarMops > 0 {
			b.ReportMetric(r.ShadowfaxMops/r.SeastarMops, "speedup-x")
		}
	}
}

// BenchmarkTable2Latency reports saturation throughput and median latency
// per network stack (Table 2).
func BenchmarkTable2Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(2, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			// Metric units must be whitespace-free ("w/o Accel" is not).
			name := strings.ReplaceAll(r.Network, " ", "-")
			b.ReportMetric(r.ThroughputMops, name+"-Mops")
			b.ReportMetric(float64(r.MedianLatency.Microseconds()), name+"-med-us")
		}
	}
}

// BenchmarkFig10ScaleOutInMemory runs the all-in-memory scale-out timeline
// (Figure 10a / 11a / 12a) and reports migration duration and recovery.
func BenchmarkFig10ScaleOutInMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		so := scaleOpts()
		so.Mode = bench.ModeAllInMemory
		res, err := bench.ScaleOut(so)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.Finished.Sub(res.Report.Started).Seconds(), "migration-s")
		b.ReportMetric(float64(res.Report.RecordsSent), "records")
	}
}

// BenchmarkFig10ScaleOutIndirection runs the memory-constrained scale-out
// with indirection records (Figure 10b / 12b, §3.3.2).
func BenchmarkFig10ScaleOutIndirection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		so := scaleOpts()
		so.Mode = bench.ModeIndirection
		so.Options.Keys = 40_000
		so.Options.ValueBytes = 128
		so.MemPagesOverride = 32
		res, err := bench.ScaleOut(so)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.Finished.Sub(res.Report.Started).Seconds(), "migration-s")
		b.ReportMetric(float64(res.Report.IndirectionsSent), "indirections")
	}
}

// BenchmarkFig10ScaleOutRocksteady runs the scan-the-log baseline
// (Figure 10c).
func BenchmarkFig10ScaleOutRocksteady(b *testing.B) {
	for i := 0; i < b.N; i++ {
		so := scaleOpts()
		so.Mode = bench.ModeRocksteady
		so.Options.Keys = 40_000
		so.Options.ValueBytes = 128
		so.MemPagesOverride = 32
		res, err := bench.ScaleOut(so)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.Finished.Sub(res.Report.Started).Seconds(), "migration-s")
		b.ReportMetric(float64(res.Report.DiskScanRecords), "disk-scan-records")
	}
}

// BenchmarkFig13MigrationBytes reports bytes shipped from memory per
// migration mode (Figure 13).
func BenchmarkFig13MigrationBytes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		so := scaleOpts()
		so.Options.Keys = 40_000
		so.Options.ValueBytes = 128
		so.MemPagesOverride = 32
		rows, err := bench.Fig13(so)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			name := map[bench.ScaleOutMode]string{
				bench.ModeAllInMemory: "mem",
				bench.ModeIndirection: "indirection",
				bench.ModeRocksteady:  "rocksteady",
			}[r.Mode]
			b.ReportMetric(float64(r.MigratedFromMemoryBytes), name+"-bytes")
		}
	}
}

// BenchmarkFig14SampledRecords reports sampled-record counts and target
// ramp with sampling on/off (Figure 14).
func BenchmarkFig14SampledRecords(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig14(scaleOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.WithSampling.Report.SampledRecords), "sampled")
		b.ReportMetric(float64(res.WithoutSampling.Report.SampledRecords), "nosampling")
	}
}

// BenchmarkFig15ViewValidation compares view validation against per-key
// hash validation at a high split count (Figure 15).
func BenchmarkFig15ViewValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig15([]int{512}, 2, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(r.ViewMops, "view-Mops")
		b.ReportMetric(r.HashMops, "hash-Mops")
		b.ReportMetric(r.ImprovementPct, "gain-pct")
	}
}

// BenchmarkClusterScale reports aggregate throughput on a 2-server cluster
// (§4's linear-scaling claim, scaled down).
func BenchmarkClusterScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.ClusterScale([]int{2}, 1, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Mops, "cluster-Mops")
	}
}
