// Package storage provides the block devices under the HybridLog and the
// shared remote tier Shadowfax extends it with (§2.2, §3.3.2).
//
// The paper's testbed used local NVMe SSDs (96k IOPS) and Azure premium page
// blobs (7,500 IOPS, 250 MB/s). Neither is available here, so this package
// substitutes simulated devices with configurable latency and IOPS throttles.
// The HybridLog and the migration protocol only require an asynchronous block
// device and a slow-but-shared remote object store; the simulation preserves
// exactly those properties (see DESIGN.md §2).
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned for operations on a closed device.
var ErrClosed = errors.New("storage: device closed")

// ErrOutOfRange is returned when a read addresses bytes never written.
var ErrOutOfRange = errors.New("storage: read out of written range")

// Device is an asynchronous block device. The HybridLog issues page-sized
// writes at monotonically increasing offsets and record-sized reads at
// arbitrary offsets. Completion callbacks run on the device's worker
// goroutines; callers must not block in them.
type Device interface {
	// WriteAt asynchronously writes p at byte offset off. p must not be
	// modified until done runs.
	WriteAt(p []byte, off uint64, done func(error))
	// ReadAt asynchronously fills p from byte offset off.
	ReadAt(p []byte, off uint64, done func(error))
	// Stats returns cumulative I/O counters.
	Stats() DeviceStats
	// Close releases the device. In-flight operations complete first.
	Close() error
}

// DeviceStats counts completed operations.
type DeviceStats struct {
	Reads, Writes           uint64
	ReadBytes, WrittenBytes uint64
	// TrimmedBytes counts storage released through TruncateBefore.
	TrimmedBytes uint64
	// BatchReads counts ReadBatch submissions accepted natively (devices
	// without the BatchReader hook report 0; the portable fallback is
	// indistinguishable from individual ReadAt calls).
	BatchReads uint64
}

// ReadReq is one read in a ReadBatch submission: fill P from byte offset Off.
type ReadReq struct {
	P   []byte
	Off uint64
}

// BatchReader is the optional vectored-read hook on a Device. The pending-read
// pipeline submits one batch per dispatch cycle; a native implementation can
// enqueue the whole batch in one pass instead of paying per-read submission
// overhead. done(i, err) is invoked exactly once per request, from the
// device's worker goroutines, in any order; callers must not block in it.
type BatchReader interface {
	ReadBatch(reqs []ReadReq, done func(i int, err error))
}

// ReadBatch submits reqs to d, using its BatchReader hook when present and a
// portable ReadAt loop otherwise. Completion semantics match BatchReader.
func ReadBatch(d Device, reqs []ReadReq, done func(i int, err error)) {
	if br, ok := d.(BatchReader); ok {
		br.ReadBatch(reqs, done)
		return
	}
	for i := range reqs {
		i := i
		d.ReadAt(reqs[i].P, reqs[i].Off, func(err error) { done(i, err) })
	}
}

// Truncator is the optional space-reclaim hook on a Device. Log compaction
// calls it after advancing the HybridLog's begin address: bytes below off are
// dead (every live record was copied forward), so the device may release the
// backing storage. Implementations must keep bytes at or above off readable
// and must tolerate repeated calls with non-decreasing offsets.
type Truncator interface {
	// TruncateBefore releases storage backing all bytes below off and
	// returns how many bytes were actually freed (0 when the platform or
	// granularity allows none — e.g. a partial extent, or a filesystem
	// without hole punching).
	TruncateBefore(off uint64) (uint64, error)
}

// TruncateBefore invokes d's Truncator hook if it has one; devices without
// the hook reclaim nothing, harmlessly.
func TruncateBefore(d Device, off uint64) (uint64, error) {
	if tr, ok := d.(Truncator); ok {
		return tr.TruncateBefore(off)
	}
	return 0, nil
}

// LatencyModel describes the simulated performance of a device.
type LatencyModel struct {
	// ReadLatency and WriteLatency are added to every operation.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// IOPS, when non-zero, rate-limits operations with a token bucket.
	IOPS int
	// BytesPerSec, when non-zero, rate-limits throughput.
	BytesPerSec int
}

// ioJob is one queued operation on a simulated device. Batch reads carry the
// request's index and the shared batch callback instead of a per-read done
// closure, so submitting a batch allocates nothing per request.
type ioJob struct {
	write bool
	buf   []byte
	off   uint64
	done  func(error)
	idx   int
	bdone func(int, error)
}

// finish invokes whichever completion style the job carries.
func (j ioJob) finish(err error) {
	if j.bdone != nil {
		j.bdone(j.idx, err)
		return
	}
	j.done(err)
}

// MemDevice is an in-memory Device standing in for the local SSD. Data is
// held in fixed-size extents so the device can grow sparsely to any offset.
type MemDevice struct {
	model LatencyModel

	mu      sync.RWMutex
	extents map[uint64][]byte // extent index -> extentSize bytes
	written uint64            // high-water mark of contiguously written bytes

	jobs     chan ioJob
	throttle *throttle
	wg       sync.WaitGroup
	closed   atomic.Bool

	stats deviceStats
}

type deviceStats struct {
	reads, writes           atomic.Uint64
	readBytes, writtenBytes atomic.Uint64
	trimmedBytes            atomic.Uint64
	batchReads              atomic.Uint64
}

func (s *deviceStats) snapshot() DeviceStats {
	return DeviceStats{
		Reads:        s.reads.Load(),
		Writes:       s.writes.Load(),
		ReadBytes:    s.readBytes.Load(),
		WrittenBytes: s.writtenBytes.Load(),
		TrimmedBytes: s.trimmedBytes.Load(),
		BatchReads:   s.batchReads.Load(),
	}
}

const extentSize = 1 << 20 // 1 MiB extents

// NewMemDevice returns an in-memory device with the given performance model.
// workers controls completion concurrency (the simulated queue depth);
// values < 1 default to 4.
func NewMemDevice(model LatencyModel, workers int) *MemDevice {
	if workers < 1 {
		workers = 4
	}
	d := &MemDevice{
		model:    model,
		extents:  make(map[uint64][]byte),
		jobs:     make(chan ioJob, 1024),
		throttle: newThrottle(model.IOPS, model.BytesPerSec),
	}
	for i := 0; i < workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d
}

func (d *MemDevice) worker() {
	defer d.wg.Done()
	for job := range d.jobs {
		d.throttle.acquire(len(job.buf))
		if job.write {
			if d.model.WriteLatency > 0 {
				time.Sleep(d.model.WriteLatency)
			}
			d.doWrite(job.buf, job.off)
			d.stats.writes.Add(1)
			d.stats.writtenBytes.Add(uint64(len(job.buf)))
			job.finish(nil)
		} else {
			if d.model.ReadLatency > 0 {
				time.Sleep(d.model.ReadLatency)
			}
			err := d.doRead(job.buf, job.off)
			d.stats.reads.Add(1)
			d.stats.readBytes.Add(uint64(len(job.buf)))
			job.finish(err)
		}
	}
}

func (d *MemDevice) doWrite(p []byte, off uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(p) > 0 {
		ext := off / extentSize
		within := off % extentSize
		buf, ok := d.extents[ext]
		if !ok {
			buf = make([]byte, extentSize)
			d.extents[ext] = buf
		}
		n := copy(buf[within:], p)
		p = p[n:]
		off += uint64(n)
	}
	if off > d.written {
		d.written = off
	}
}

func (d *MemDevice) doRead(p []byte, off uint64) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if off+uint64(len(p)) > d.written {
		return fmt.Errorf("%w: [%d,%d) beyond %d", ErrOutOfRange,
			off, off+uint64(len(p)), d.written)
	}
	for len(p) > 0 {
		ext := off / extentSize
		within := off % extentSize
		buf, ok := d.extents[ext]
		if !ok {
			return fmt.Errorf("%w: hole at %d", ErrOutOfRange, off)
		}
		n := copy(p, buf[within:])
		p = p[n:]
		off += uint64(n)
	}
	return nil
}

// WriteAt implements Device.
func (d *MemDevice) WriteAt(p []byte, off uint64, done func(error)) {
	if d.closed.Load() {
		done(ErrClosed)
		return
	}
	d.jobs <- ioJob{write: true, buf: p, off: off, done: done}
}

// ReadAt implements Device.
func (d *MemDevice) ReadAt(p []byte, off uint64, done func(error)) {
	if d.closed.Load() {
		done(ErrClosed)
		return
	}
	d.jobs <- ioJob{buf: p, off: off, done: done}
}

// ReadBatch implements BatchReader: the whole batch is enqueued in one pass,
// each job carrying its index and the shared callback (no closure per read).
func (d *MemDevice) ReadBatch(reqs []ReadReq, done func(int, error)) {
	if d.closed.Load() {
		for i := range reqs {
			done(i, ErrClosed)
		}
		return
	}
	d.stats.batchReads.Add(1)
	for i := range reqs {
		d.jobs <- ioJob{buf: reqs[i].P, off: reqs[i].Off, idx: i, bdone: done}
	}
}

// WriteSync writes synchronously; a convenience for checkpoints and tests.
func (d *MemDevice) WriteSync(p []byte, off uint64) error {
	return waitIO(func(done func(error)) { d.WriteAt(p, off, done) })
}

// ReadSync reads synchronously; a convenience for recovery and tests.
func (d *MemDevice) ReadSync(p []byte, off uint64) error {
	return waitIO(func(done func(error)) { d.ReadAt(p, off, done) })
}

// Stats implements Device.
func (d *MemDevice) Stats() DeviceStats { return d.stats.snapshot() }

// WrittenBytes returns the device's contiguous high-water mark.
func (d *MemDevice) WrittenBytes() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.written
}

// AllocatedBytes returns the memory currently backing the device; compaction
// tests watch it shrink after TruncateBefore.
func (d *MemDevice) AllocatedBytes() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return uint64(len(d.extents)) * extentSize
}

// TruncateBefore implements Truncator: extents wholly below off are dropped
// and their memory released. A partial leading extent is kept (reads just
// above off must keep working), so reclaim granularity is extentSize.
func (d *MemDevice) TruncateBefore(off uint64) (uint64, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	d.mu.Lock()
	var freed uint64
	for ext := range d.extents {
		if (ext+1)*extentSize <= off {
			delete(d.extents, ext)
			freed += extentSize
		}
	}
	d.mu.Unlock()
	d.stats.trimmedBytes.Add(freed)
	return freed, nil
}

// Close implements Device.
func (d *MemDevice) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	close(d.jobs)
	d.wg.Wait()
	return nil
}

// waitIO runs an async I/O function and blocks for its completion.
func waitIO(op func(done func(error))) error {
	ch := make(chan error, 1)
	op(func(err error) { ch <- err })
	return <-ch
}

// SyncRead is a package-level helper for synchronous reads on any Device.
func SyncRead(d Device, p []byte, off uint64) error {
	return waitIO(func(done func(error)) { d.ReadAt(p, off, done) })
}

// SyncWrite is a package-level helper for synchronous writes on any Device.
func SyncWrite(d Device, p []byte, off uint64) error {
	return waitIO(func(done func(error)) { d.WriteAt(p, off, done) })
}

// throttle implements combined IOPS and byte-rate limiting with simple
// time-based accounting; a zero-valued limit disables that dimension.
type throttle struct {
	mu          sync.Mutex
	iops        float64
	bps         float64
	nextOpAt    time.Time
	nextBytesAt time.Time
}

func newThrottle(iops, bytesPerSec int) *throttle {
	return &throttle{iops: float64(iops), bps: float64(bytesPerSec)}
}

// acquire blocks until the operation conforms to the configured rates.
func (t *throttle) acquire(bytes int) {
	if t.iops == 0 && t.bps == 0 {
		return
	}
	t.mu.Lock()
	now := time.Now()
	wait := time.Duration(0)
	if t.iops > 0 {
		if t.nextOpAt.Before(now) {
			t.nextOpAt = now
		}
		w := t.nextOpAt.Sub(now)
		if w > wait {
			wait = w
		}
		t.nextOpAt = t.nextOpAt.Add(time.Duration(float64(time.Second) / t.iops))
	}
	if t.bps > 0 && bytes > 0 {
		if t.nextBytesAt.Before(now) {
			t.nextBytesAt = now
		}
		w := t.nextBytesAt.Sub(now)
		if w > wait {
			wait = w
		}
		t.nextBytesAt = t.nextBytesAt.Add(
			time.Duration(float64(bytes) / t.bps * float64(time.Second)))
	}
	t.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}
