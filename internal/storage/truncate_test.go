package storage

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestMemDeviceTruncateBefore(t *testing.T) {
	d := NewMemDevice(LatencyModel{}, 2)
	defer d.Close()

	// Three extents of data.
	page := make([]byte, 64<<10)
	for i := range page {
		page[i] = byte(i)
	}
	for off := uint64(0); off < 3*extentSize; off += uint64(len(page)) {
		if err := d.WriteSync(page, off); err != nil {
			t.Fatal(err)
		}
	}
	before := d.AllocatedBytes()
	if before != 3*extentSize {
		t.Fatalf("allocated %d, want %d", before, 3*extentSize)
	}

	// Truncating inside extent 1 frees only extent 0.
	freed, err := d.TruncateBefore(extentSize + 512)
	if err != nil {
		t.Fatal(err)
	}
	if freed != extentSize {
		t.Fatalf("freed %d, want %d", freed, extentSize)
	}
	if got := d.AllocatedBytes(); got != 2*extentSize {
		t.Fatalf("allocated %d after trim, want %d", got, 2*extentSize)
	}
	if got := d.Stats().TrimmedBytes; got != extentSize {
		t.Fatalf("TrimmedBytes %d, want %d", got, extentSize)
	}

	// Bytes above the cut stay readable; bytes below now error.
	buf := make([]byte, len(page))
	if err := d.ReadSync(buf, extentSize); err != nil {
		t.Fatalf("read above trim: %v", err)
	}
	if !bytes.Equal(buf, page) {
		t.Fatal("data above trim corrupted")
	}
	if err := d.ReadSync(buf, 0); err == nil {
		t.Fatal("read of trimmed range succeeded")
	}

	// Idempotent: re-truncating at the same offset frees nothing more.
	if freed, err := d.TruncateBefore(extentSize + 512); err != nil || freed != 0 {
		t.Fatalf("re-trim: freed %d err %v", freed, err)
	}
}

func TestFileDeviceTruncateBefore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.dat")
	d, err := NewFileDevice(path, LatencyModel{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	page := make([]byte, 64<<10)
	for i := range page {
		page[i] = byte(i * 7)
	}
	const total = 32 // 2 MiB
	for i := uint64(0); i < total; i++ {
		if err := SyncWrite(d, page, i*uint64(len(page))); err != nil {
			t.Fatal(err)
		}
	}

	cut := uint64(total/2) * uint64(len(page))
	freed, err := d.TruncateBefore(cut)
	if err != nil {
		t.Fatal(err)
	}
	// freed may be 0 on filesystems without hole punching; the logical
	// contract must hold either way.
	if got := d.Stats().TrimmedBytes; got != freed {
		t.Fatalf("TrimmedBytes %d, want %d", got, freed)
	}
	buf := make([]byte, len(page))
	if err := SyncRead(d, buf, cut); err != nil {
		t.Fatalf("read above trim: %v", err)
	}
	if !bytes.Equal(buf, page) {
		t.Fatal("data above trim corrupted")
	}
	if d.WrittenBytes() != total*uint64(len(page)) {
		t.Fatal("logical size changed by hole punch")
	}
	if freed > 0 {
		alloc, err := d.AllocatedBytes()
		if err != nil {
			t.Fatal(err)
		}
		if alloc >= total*uint64(len(page)) {
			t.Fatalf("no disk released: %d bytes still allocated", alloc)
		}
	}
}

func TestSharedTierTruncate(t *testing.T) {
	tier := NewSharedTier(LatencyModel{})
	defer tier.Close()

	page := make([]byte, 128<<10)
	for i := range page {
		page[i] = byte(i * 3)
	}
	for off := uint64(0); off < 2*extentSize; off += uint64(len(page)) {
		if err := tier.Upload("log-a", page, off); err != nil {
			t.Fatal(err)
		}
		if err := tier.Upload("log-b", page, off); err != nil {
			t.Fatal(err)
		}
	}

	if freed := tier.Truncate("log-a", extentSize); freed != extentSize {
		t.Fatalf("freed %d, want %d", freed, extentSize)
	}
	if got := tier.AllocatedBytes("log-a"); got != extentSize {
		t.Fatalf("log-a allocated %d, want %d", got, extentSize)
	}
	// Other logs are untouched.
	if got := tier.AllocatedBytes("log-b"); got != 2*extentSize {
		t.Fatalf("log-b allocated %d, want %d", got, 2*extentSize)
	}
	buf := make([]byte, len(page))
	if err := tier.Read("log-a", buf, extentSize); err != nil {
		t.Fatalf("read above trim: %v", err)
	}
	if err := tier.Read("log-a", buf, 0); err == nil {
		t.Fatal("read of truncated prefix succeeded")
	}
	if err := tier.Read("log-b", buf, 0); err != nil {
		t.Fatalf("log-b prefix read: %v", err)
	}
	// Unknown logs free nothing.
	if freed := tier.Truncate("nope", extentSize); freed != 0 {
		t.Fatalf("unknown log freed %d", freed)
	}
}
