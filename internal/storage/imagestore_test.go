package storage

import (
	"bytes"
	"io"
	"testing"
)

func TestImageStoreEmpty(t *testing.T) {
	dev := NewMemDevice(LatencyModel{}, 1)
	defer dev.Close()
	st, err := OpenImageStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Latest(); err != ErrNoImage {
		t.Fatalf("empty store Latest: %v, want ErrNoImage", err)
	}
	if st.Generation() != 0 {
		t.Fatalf("empty store generation %d", st.Generation())
	}
}

func TestImageStoreCommitAndReopen(t *testing.T) {
	dev := NewMemDevice(LatencyModel{}, 1)
	defer dev.Close()
	st, err := OpenImageStore(dev)
	if err != nil {
		t.Fatal(err)
	}

	img1 := bytes.Repeat([]byte("first-image."), 700) // spans extents of the writer path
	w := st.NewWriter()
	for off := 0; off < len(img1); off += 100 {
		end := off + 100
		if end > len(img1) {
			end = len(img1)
		}
		if _, err := w.Write(img1[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.Generation() != 1 {
		t.Fatalf("generation after first commit: %d", st.Generation())
	}

	// Second image supersedes the first.
	img2 := []byte("the-second-image")
	w2 := st.NewWriter()
	w2.Write(img2)
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}

	// An abandoned writer (simulated crash mid-checkpoint) must not disturb
	// the committed image.
	w3 := st.NewWriter()
	w3.Write(bytes.Repeat([]byte("junk"), 500))

	// Reopen the device cold, as recovery does.
	st2, err := OpenImageStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Generation() != 2 {
		t.Fatalf("reopened generation: %d, want 2", st2.Generation())
	}
	r, n, err := st2.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(img2)) {
		t.Fatalf("latest image length %d, want %d", n, len(img2))
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img2) {
		t.Fatalf("latest image %q, want %q", got, img2)
	}
}

func TestImageStoreSurvivesTornSuperblock(t *testing.T) {
	dev := NewMemDevice(LatencyModel{}, 1)
	defer dev.Close()
	st, _ := OpenImageStore(dev)
	w := st.NewWriter()
	w.Write([]byte("image"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the superblock CRC region (torn write). Reopening must treat
	// the store as empty rather than serving a bogus image pointer.
	if err := dev.WriteSync([]byte{0xff, 0xff, 0xff, 0xff}, superblockCRCAt); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenImageStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st2.Latest(); err != ErrNoImage {
		t.Fatalf("torn superblock: Latest = %v, want ErrNoImage", err)
	}
}
