//go:build linux

package storage

import (
	"os"
	"syscall"
)

// fallocate flags (linux/falloc.h); the stdlib syscall package exposes the
// Fallocate call but not the mode constants.
const (
	fallocKeepSize  = 0x1
	fallocPunchHole = 0x2
)

// punchHole deallocates [off, off+n) of f without changing its logical size.
// Returns the bytes freed (0 when the filesystem doesn't support punching).
func punchHole(f *os.File, off, n int64) (uint64, error) {
	if n <= 0 {
		return 0, nil
	}
	err := syscall.Fallocate(int(f.Fd()), fallocKeepSize|fallocPunchHole, off, n)
	switch err {
	case nil:
		return uint64(n), nil
	case syscall.EOPNOTSUPP, syscall.ENOSYS:
		return 0, nil // filesystem can't punch: logical trim only
	default:
		return 0, err
	}
}

// fileAllocatedBytes reports the disk blocks the file occupies.
func fileAllocatedBytes(f *os.File) (uint64, error) {
	var st syscall.Stat_t
	if err := syscall.Fstat(int(f.Fd()), &st); err != nil {
		return 0, err
	}
	return uint64(st.Blocks) * 512, nil
}
