package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMemDeviceRoundTrip(t *testing.T) {
	d := NewMemDevice(LatencyModel{}, 2)
	defer d.Close()

	data := []byte("hello hybrid log")
	if err := d.WriteSync(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadSync(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestMemDeviceCrossExtent(t *testing.T) {
	d := NewMemDevice(LatencyModel{}, 2)
	defer d.Close()

	// Write spanning an extent boundary.
	off := uint64(extentSize - 7)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i + 1)
	}
	// Fill the hole before it so the high-water mark is contiguous.
	if err := d.WriteSync(make([]byte, off), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSync(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadSync(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-extent round trip mismatch")
	}
}

func TestMemDeviceReadBeyondWritten(t *testing.T) {
	d := NewMemDevice(LatencyModel{}, 2)
	defer d.Close()
	if err := d.WriteSync([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	err := d.ReadSync(make([]byte, 10), 0)
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
}

func TestMemDeviceClosed(t *testing.T) {
	d := NewMemDevice(LatencyModel{}, 1)
	d.Close()
	err := d.WriteSync([]byte("x"), 0)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	// Double close is harmless.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemDeviceStats(t *testing.T) {
	d := NewMemDevice(LatencyModel{}, 1)
	defer d.Close()
	d.WriteSync(make([]byte, 100), 0)
	d.ReadSync(make([]byte, 40), 0)
	st := d.Stats()
	if st.Writes != 1 || st.WrittenBytes != 100 || st.Reads != 1 || st.ReadBytes != 40 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestMemDeviceConcurrent(t *testing.T) {
	d := NewMemDevice(LatencyModel{}, 8)
	defer d.Close()
	const n = 64
	const sz = 512
	// Pre-extend the high-water mark.
	if err := d.WriteSync(make([]byte, n*sz), 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(i + 1)}, sz)
			if err := d.WriteSync(buf, uint64(i*sz)); err != nil {
				t.Error(err)
				return
			}
			got := make([]byte, sz)
			if err := d.ReadSync(got, uint64(i*sz)); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, buf) {
				t.Errorf("slot %d mismatch", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestMemDeviceQuickRoundTrip(t *testing.T) {
	d := NewMemDevice(LatencyModel{}, 4)
	defer d.Close()
	var mu sync.Mutex
	high := uint64(0)
	f := func(data []byte, offSeed uint16) bool {
		if len(data) == 0 {
			return true
		}
		mu.Lock()
		off := high
		high += uint64(len(data))
		mu.Unlock()
		_ = offSeed
		if err := d.WriteSync(data, off); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := d.ReadSync(got, off); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.dat")
	d, err := NewFileDevice(path, LatencyModel{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("durable bytes")
	if err := SyncWrite(d, data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := SyncRead(d, got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file round trip mismatch")
	}
	if d.WrittenBytes() != 4096+uint64(len(data)) {
		t.Fatalf("written high-water %d", d.WrittenBytes())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open: data persists.
	d2, err := NewFileDevice(path, LatencyModel{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got2 := make([]byte, len(data))
	if err := SyncRead(d2, got2, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Fatal("data lost across reopen")
	}
}

func TestSharedTierRoundTrip(t *testing.T) {
	tier := NewSharedTier(LatencyModel{})
	defer tier.Close()

	data := []byte("page of records")
	if err := tier.Upload("log-a", data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := tier.Read("log-a", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("tier round trip mismatch")
	}
}

func TestSharedTierIsolatesLogs(t *testing.T) {
	tier := NewSharedTier(LatencyModel{})
	defer tier.Close()
	tier.Upload("a", []byte("aaaa"), 0)
	tier.Upload("b", []byte("bbbb"), 0)
	got := make([]byte, 4)
	tier.Read("b", got, 0)
	if string(got) != "bbbb" {
		t.Fatalf("log b corrupted: %q", got)
	}
	if err := tier.Read("c", got, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("unknown log should be out of range, got %v", err)
	}
}

func TestSharedTierCrossServerRead(t *testing.T) {
	// The migration use case: server B reads server A's uploaded log.
	tier := NewSharedTier(LatencyModel{})
	defer tier.Close()
	pageA := bytes.Repeat([]byte{0xAB}, 8192)
	if err := tier.Upload("server-A", pageA, 1<<20); err != nil {
		t.Fatal(err)
	}
	// Hole before the upload: fill so high-water accounting permits it.
	if err := tier.Upload("server-A", make([]byte, 1<<20), 0); err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 128)
	if err := tier.Read("server-A", rec, 1<<20+512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, pageA[512:512+128]) {
		t.Fatal("cross-server record read mismatch")
	}
	if tier.UploadedBytes("server-A") != 1<<20+8192 {
		t.Fatalf("uploaded high-water %d", tier.UploadedBytes("server-A"))
	}
}

func TestThrottleIOPS(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// 100 IOPS -> 20 ops take ~190ms beyond the first.
	th := newThrottle(100, 0)
	start := time.Now()
	for i := 0; i < 20; i++ {
		th.acquire(1)
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("throttle too permissive: 20 ops at 100 IOPS in %v", el)
	}
}

func TestThrottleBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// 1 MiB/s -> 256 KiB should take ~250ms.
	th := newThrottle(0, 1<<20)
	start := time.Now()
	for i := 0; i < 4; i++ {
		th.acquire(64 << 10)
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("byte throttle too permissive: %v", el)
	}
}

func TestLatencyModelApplied(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	d := NewMemDevice(LatencyModel{ReadLatency: 20 * time.Millisecond}, 1)
	defer d.Close()
	d.WriteSync([]byte("x"), 0)
	start := time.Now()
	d.ReadSync(make([]byte, 1), 0)
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("read latency not applied: %v", el)
	}
}
