package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SharedTier simulates the shared remote storage tier (Azure page blobs in
// the paper, §3.3.2). Every server's HybridLog eventually flushes its stable
// region here under its own log ID; after a migration the target resolves
// indirection records by reading from the *source's* log through this tier.
//
// The simulation models the properties the experiments depend on: the tier
// is shared (any server can read any log), slow (configurable latency), and
// throttled (configurable IOPS), which is what makes post-migration pending
// queues drain gradually in Figure 12(b).
type SharedTier struct {
	model LatencyModel

	mu   sync.RWMutex
	logs map[string]*blobLog

	throttle *throttle
	closed   atomic.Bool

	stats deviceStats
}

// blobLog is one server's uploaded log: a sparse extent map like MemDevice.
type blobLog struct {
	mu      sync.RWMutex
	extents map[uint64][]byte
	written uint64
}

// NewSharedTier returns an empty shared tier with the given model. The
// paper's premium page blobs are approximated by
// LatencyModel{ReadLatency: 2ms, IOPS: 7500, BytesPerSec: 250 << 20}.
func NewSharedTier(model LatencyModel) *SharedTier {
	return &SharedTier{
		model:    model,
		logs:     make(map[string]*blobLog),
		throttle: newThrottle(model.IOPS, model.BytesPerSec),
	}
}

// DefaultBlobModel mirrors the paper's premium-storage page blob figures,
// scaled to wall-clock simulation.
func DefaultBlobModel() LatencyModel {
	return LatencyModel{
		ReadLatency:  2 * time.Millisecond,
		WriteLatency: 2 * time.Millisecond,
		IOPS:         7500,
		BytesPerSec:  250 << 20,
	}
}

func (t *SharedTier) log(id string) *blobLog {
	t.mu.RLock()
	l, ok := t.logs[id]
	t.mu.RUnlock()
	if ok {
		return l
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok = t.logs[id]; ok {
		return l
	}
	l = &blobLog{extents: make(map[uint64][]byte)}
	t.logs[id] = l
	return l
}

// Upload synchronously stores p at byte offset off in logID's blob. The
// HybridLog flusher calls this in the background after local-SSD flushes, so
// its latency is off the operation path.
func (t *SharedTier) Upload(logID string, p []byte, off uint64) error {
	if t.closed.Load() {
		return ErrClosed
	}
	n := len(p)
	t.throttle.acquire(n)
	if t.model.WriteLatency > 0 {
		time.Sleep(t.model.WriteLatency)
	}
	l := t.log(logID)
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(p) > 0 {
		ext := off / extentSize
		within := off % extentSize
		buf, ok := l.extents[ext]
		if !ok {
			buf = make([]byte, extentSize)
			l.extents[ext] = buf
		}
		n := copy(buf[within:], p)
		p = p[n:]
		off += uint64(n)
	}
	if off > l.written {
		l.written = off
	}
	t.stats.writes.Add(1)
	t.stats.writtenBytes.Add(uint64(n))
	return nil
}

// Read synchronously fills p from logID's blob at byte offset off. Callers
// run it on their own goroutines (the target's indirection fetches are
// asynchronous with respect to request processing).
func (t *SharedTier) Read(logID string, p []byte, off uint64) error {
	if t.closed.Load() {
		return ErrClosed
	}
	n := len(p)
	t.throttle.acquire(n)
	if t.model.ReadLatency > 0 {
		time.Sleep(t.model.ReadLatency)
	}
	t.mu.RLock()
	l, ok := t.logs[logID]
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: unknown log %q", ErrOutOfRange, logID)
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	if off+uint64(len(p)) > l.written {
		return fmt.Errorf("%w: log %q [%d,%d) beyond %d", ErrOutOfRange,
			logID, off, off+uint64(len(p)), l.written)
	}
	for len(p) > 0 {
		ext := off / extentSize
		within := off % extentSize
		buf, ok := l.extents[ext]
		if !ok {
			return fmt.Errorf("%w: log %q hole at %d", ErrOutOfRange, logID, off)
		}
		n := copy(p, buf[within:])
		p = p[n:]
		off += uint64(n)
	}
	t.stats.reads.Add(1)
	t.stats.readBytes.Add(uint64(n))
	return nil
}

// Truncate drops logID's extents wholly below off, releasing the shared
// tier's copy of a compacted-away log prefix (§3.3.3: after lazy compaction
// relocates disowned records to their current owners, nothing references the
// prefix any more). Returns the bytes freed. Unknown logs free nothing.
func (t *SharedTier) Truncate(logID string, off uint64) uint64 {
	if t.closed.Load() {
		return 0
	}
	t.mu.RLock()
	l, ok := t.logs[logID]
	t.mu.RUnlock()
	if !ok {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var freed uint64
	for ext := range l.extents {
		if (ext+1)*extentSize <= off {
			delete(l.extents, ext)
			freed += extentSize
		}
	}
	t.stats.trimmedBytes.Add(freed)
	return freed
}

// AllocatedBytes returns the memory currently backing logID's blob (0 if the
// log is unknown); compaction tests watch it shrink after Truncate.
func (t *SharedTier) AllocatedBytes(logID string) uint64 {
	t.mu.RLock()
	l, ok := t.logs[logID]
	t.mu.RUnlock()
	if !ok {
		return 0
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return uint64(len(l.extents)) * extentSize
}

// UploadedBytes returns logID's high-water mark (0 if the log is unknown).
func (t *SharedTier) UploadedBytes(logID string) uint64 {
	t.mu.RLock()
	l, ok := t.logs[logID]
	t.mu.RUnlock()
	if !ok {
		return 0
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.written
}

// Stats returns cumulative tier-wide counters.
func (t *SharedTier) Stats() DeviceStats { return t.stats.snapshot() }

// Close marks the tier closed; subsequent operations fail.
func (t *SharedTier) Close() error {
	t.closed.Store(true)
	return nil
}
