//go:build !linux

package storage

import "os"

// punchHole is unavailable off Linux: the trim is logical only.
func punchHole(_ *os.File, _, _ int64) (uint64, error) { return 0, nil }

// fileAllocatedBytes falls back to the logical size where block counts are
// not portably available.
func fileAllocatedBytes(f *os.File) (uint64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return uint64(st.Size()), nil
}
