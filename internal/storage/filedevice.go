package storage

import (
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// FileDevice is a file-backed Device; the durable variant of MemDevice used
// when the stable region should survive process restarts (recovery tests and
// the larger-than-memory example).
type FileDevice struct {
	model LatencyModel

	mu      sync.RWMutex
	f       *os.File
	written uint64
	trimmed uint64 // bytes below this released via TruncateBefore

	jobs     chan ioJob
	throttle *throttle
	wg       sync.WaitGroup
	closed   atomic.Bool

	stats deviceStats
}

// NewFileDevice opens (creating if needed) a file-backed device at path.
func NewFileDevice(path string, model LatencyModel, workers int) (*FileDevice, error) {
	if workers < 1 {
		workers = 4
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	d := &FileDevice{
		model:    model,
		f:        f,
		written:  uint64(st.Size()),
		jobs:     make(chan ioJob, 1024),
		throttle: newThrottle(model.IOPS, model.BytesPerSec),
	}
	for i := 0; i < workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d, nil
}

func (d *FileDevice) worker() {
	defer d.wg.Done()
	for job := range d.jobs {
		d.throttle.acquire(len(job.buf))
		if job.write {
			if d.model.WriteLatency > 0 {
				time.Sleep(d.model.WriteLatency)
			}
			_, err := d.f.WriteAt(job.buf, int64(job.off))
			if err == nil {
				d.mu.Lock()
				if end := job.off + uint64(len(job.buf)); end > d.written {
					d.written = end
				}
				d.mu.Unlock()
			}
			d.stats.writes.Add(1)
			d.stats.writtenBytes.Add(uint64(len(job.buf)))
			job.finish(err)
		} else {
			if d.model.ReadLatency > 0 {
				time.Sleep(d.model.ReadLatency)
			}
			_, err := d.f.ReadAt(job.buf, int64(job.off))
			d.stats.reads.Add(1)
			d.stats.readBytes.Add(uint64(len(job.buf)))
			job.finish(err)
		}
	}
}

// WriteAt implements Device.
func (d *FileDevice) WriteAt(p []byte, off uint64, done func(error)) {
	if d.closed.Load() {
		done(ErrClosed)
		return
	}
	d.jobs <- ioJob{write: true, buf: p, off: off, done: done}
}

// ReadAt implements Device.
func (d *FileDevice) ReadAt(p []byte, off uint64, done func(error)) {
	if d.closed.Load() {
		done(ErrClosed)
		return
	}
	d.jobs <- ioJob{buf: p, off: off, done: done}
}

// ReadBatch implements BatchReader (see MemDevice.ReadBatch).
func (d *FileDevice) ReadBatch(reqs []ReadReq, done func(int, error)) {
	if d.closed.Load() {
		for i := range reqs {
			done(i, ErrClosed)
		}
		return
	}
	d.stats.batchReads.Add(1)
	for i := range reqs {
		d.jobs <- ioJob{buf: reqs[i].P, off: reqs[i].Off, idx: i, bdone: done}
	}
}

// Stats implements Device.
func (d *FileDevice) Stats() DeviceStats { return d.stats.snapshot() }

// WrittenBytes returns the file's high-water mark.
func (d *FileDevice) WrittenBytes() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.written
}

// AllocatedBytes returns the bytes of disk the backing file actually
// occupies (not its logical size — punched holes don't count).
func (d *FileDevice) AllocatedBytes() (uint64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return fileAllocatedBytes(d.f)
}

// TruncateBefore implements Truncator by punching a hole over [trimmed, off)
// where the platform supports it (Linux fallocate). The file's logical size
// is unchanged — offsets stay stable for the log's absolute addressing — but
// the freed range stops occupying disk blocks. On platforms without hole
// punching the call records the logical trim and frees nothing.
func (d *FileDevice) TruncateBefore(off uint64) (uint64, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if off <= d.trimmed {
		return 0, nil
	}
	freed, err := punchHole(d.f, int64(d.trimmed), int64(off-d.trimmed))
	if err != nil {
		return 0, err
	}
	d.trimmed = off
	d.stats.trimmedBytes.Add(freed)
	return freed, nil
}

// Close implements Device.
func (d *FileDevice) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	close(d.jobs)
	d.wg.Wait()
	return d.f.Close()
}
