package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// ImageStore keeps durable checkpoint images on a Device. Images are written
// append-only and published by updating a small superblock at offset 0 only
// after the image bytes are fully on the device, so a crash mid-checkpoint
// leaves the previous image intact and discoverable (the CPR durability
// contract the server-level checkpoint coordinator relies on).
//
// Layout: a 64-byte superblock at offset 0 (magic, generation, offset,
// length, CRC), then images at 4 KiB-aligned offsets. Each committed image
// supersedes the previous one; space is not reclaimed — checkpoint devices
// are per-server and images are far smaller than the log they cover.
type ImageStore struct {
	dev Device

	mu  sync.Mutex
	gen uint64 // generation of the latest committed image (0 = none)
	off uint64 // latest image's byte offset
	n   uint64 // latest image's length
}

// ErrNoImage is returned by Latest when no image has ever been committed.
var ErrNoImage = errors.New("storage: no checkpoint image committed")

const (
	imageMagic      = 0x53465849 // "SFXI"
	superblockSize  = 64
	imageAlign      = 4096
	superblockCRCAt = 28 // bytes covered by the CRC
)

// OpenImageStore opens (or initializes) an image store on dev. A device that
// has never held a superblock — or whose superblock fails validation — opens
// empty rather than erroring: recovery callers distinguish the two via
// Latest returning ErrNoImage. Read *errors* other than reading past the
// written extent are returned, not conflated with freshness: opening "empty"
// on a transient I/O fault would let the next Commit overwrite a committed
// image.
func OpenImageStore(dev Device) (*ImageStore, error) {
	if dev == nil {
		return nil, errors.New("storage: image store needs a device")
	}
	st := &ImageStore{dev: dev}
	var sb [superblockSize]byte
	if err := SyncRead(dev, sb[:], 0); err != nil {
		if errors.Is(err, ErrOutOfRange) || errors.Is(err, io.EOF) ||
			errors.Is(err, io.ErrUnexpectedEOF) {
			return st, nil // fresh device: nothing written yet
		}
		return nil, fmt.Errorf("storage: reading image superblock: %w", err)
	}
	if binary.LittleEndian.Uint32(sb[0:4]) != imageMagic {
		return st, nil
	}
	if crc32.ChecksumIEEE(sb[:superblockCRCAt]) !=
		binary.LittleEndian.Uint32(sb[superblockCRCAt:superblockCRCAt+4]) {
		return st, nil // torn superblock write: treat as empty
	}
	st.gen = binary.LittleEndian.Uint64(sb[4:12])
	st.off = binary.LittleEndian.Uint64(sb[12:20])
	st.n = binary.LittleEndian.Uint64(sb[20:28])
	return st, nil
}

// Generation returns the latest committed image's generation (0 = none).
func (st *ImageStore) Generation() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gen
}

// NewWriter starts a new image after the latest committed one. The image
// becomes the store's latest only when Commit succeeds; an abandoned writer
// costs nothing but device space.
func (st *ImageStore) NewWriter() *ImageWriter {
	st.mu.Lock()
	defer st.mu.Unlock()
	off := uint64(alignUp(superblockSize, imageAlign))
	if end := st.off + st.n; end > off {
		off = alignUp(end, imageAlign)
	}
	return &ImageWriter{st: st, off: off}
}

// ImageWriter streams one image onto the device. It implements io.Writer so
// checkpoint producers (faster.Store.Checkpoint and the server-level header)
// can serialize straight to the device without staging the image in memory.
type ImageWriter struct {
	st  *ImageStore
	off uint64
	n   uint64
	err error
}

// Write implements io.Writer with synchronous device writes.
func (w *ImageWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	// Copy before handing to the device: Device.WriteAt forbids mutating p
	// until completion, but io.Writer callers may reuse p immediately.
	buf := append([]byte(nil), p...)
	if err := SyncWrite(w.st.dev, buf, w.off+w.n); err != nil {
		w.err = err
		return 0, err
	}
	w.n += uint64(len(p))
	return len(p), nil
}

// Len returns the number of bytes written so far.
func (w *ImageWriter) Len() uint64 { return w.n }

// Commit publishes the image by rewriting the superblock. After Commit
// returns, Latest serves this image even across a process crash.
func (w *ImageWriter) Commit() error {
	if w.err != nil {
		return w.err
	}
	st := w.st
	st.mu.Lock()
	defer st.mu.Unlock()
	var sb [superblockSize]byte
	binary.LittleEndian.PutUint32(sb[0:4], imageMagic)
	binary.LittleEndian.PutUint64(sb[4:12], st.gen+1)
	binary.LittleEndian.PutUint64(sb[12:20], w.off)
	binary.LittleEndian.PutUint64(sb[20:28], w.n)
	binary.LittleEndian.PutUint32(sb[superblockCRCAt:superblockCRCAt+4],
		crc32.ChecksumIEEE(sb[:superblockCRCAt]))
	if err := SyncWrite(st.dev, sb[:], 0); err != nil {
		return err
	}
	st.gen++
	st.off = w.off
	st.n = w.n
	return nil
}

// Latest returns a reader over the most recently committed image and its
// length. The reader issues synchronous device reads in sectionSize chunks.
func (st *ImageStore) Latest() (io.Reader, uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.gen == 0 {
		return nil, 0, ErrNoImage
	}
	return &imageReader{dev: st.dev, off: st.off, remaining: st.n}, st.n, nil
}

// imageReader streams an image region off a Device.
type imageReader struct {
	dev       Device
	off       uint64
	remaining uint64
}

func (r *imageReader) Read(p []byte) (int, error) {
	if r.remaining == 0 {
		return 0, io.EOF
	}
	if uint64(len(p)) > r.remaining {
		p = p[:r.remaining]
	}
	if err := SyncRead(r.dev, p, r.off); err != nil {
		return 0, fmt.Errorf("storage: image read at %d: %w", r.off, err)
	}
	r.off += uint64(len(p))
	r.remaining -= uint64(len(p))
	return len(p), nil
}

func alignUp(v, align uint64) uint64 {
	return (v + align - 1) &^ (align - 1)
}
