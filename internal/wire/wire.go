// Package wire defines Shadowfax's binary message formats (§3.1, §3.3):
// view-tagged request/response batches between clients and servers, and the
// migration RPCs between source and target. Encoding is hand-rolled
// little-endian with zero reflection so the hot path allocates nothing
// beyond the batch buffers themselves.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType identifies a frame.
type MsgType uint8

// Frame types.
const (
	// MsgRequestBatch is a client→server batch of operations tagged with
	// the client's cached view number.
	MsgRequestBatch MsgType = iota + 1
	// MsgResponseBatch is the server's per-op results, or a batch-level
	// view rejection.
	MsgResponseBatch
	// MsgMigrate asks a source server to migrate a hash range to a target
	// (the Migrate() RPC of §3.3).
	MsgMigrate
	// MsgPrepForTransfer tells the target ownership transfer is imminent.
	MsgPrepForTransfer
	// MsgTransferOwnership moves the target into Target-Receive and carries
	// the sampled hot records.
	MsgTransferOwnership
	// MsgMigrationRecords is a batch of migrating records (Migrate phase).
	MsgMigrationRecords
	// MsgCompleteMigration moves the target into Target-Complete.
	MsgCompleteMigration
	// MsgAck acknowledges a migration RPC.
	MsgAck
	// MsgCompacted carries a record relocated during log compaction to the
	// hash range's current owner (§3.3.3).
	MsgCompacted
	// MsgCheckpoint asks a server to take a durable checkpoint now (admin).
	MsgCheckpoint
	// MsgCheckpointResp reports a completed (or failed) checkpoint.
	MsgCheckpointResp
	// MsgSessionRecover asks a recovered server for a client session's last
	// durable sequence number (client-assisted recovery, §3.3.1).
	MsgSessionRecover
	// MsgSessionRecoverResp answers MsgSessionRecover.
	MsgSessionRecoverResp
	// MsgCompact asks a server to run one log-compaction pass now (admin).
	MsgCompact
	// MsgCompactResp reports a completed (or failed) compaction pass with
	// its per-pass statistics.
	MsgCompactResp
	// MsgStats asks a server for a snapshot of its counters, identity and
	// current ownership view (admin). It doubles as the public API's
	// bootstrap handshake: the response carries everything a client needs
	// to register an out-of-process server in its metadata cache.
	MsgStats
	// MsgStatsResp answers MsgStats.
	MsgStatsResp
)

// OpKind is a client operation within a request batch.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota + 1
	OpUpsert
	OpRMW
	OpDelete
)

// ResultStatus is a per-operation outcome.
type ResultStatus uint8

// Result statuses. StatusOK..StatusErr travel on the wire; the remaining
// statuses are produced by the client library itself (they complete
// callbacks for operations that never reached, or never returned from, a
// server) and share the enum so one completion path handles both.
const (
	StatusOK ResultStatus = iota
	StatusNotFound
	StatusPending // internal: never leaves the server
	StatusErr
	// StatusNotOwner: no server owns the key's hash range, even after a
	// metadata refresh (client-side).
	StatusNotOwner
	// StatusClosed: the client was closed with the operation still
	// outstanding; it was never acknowledged by a server (client-side).
	StatusClosed
	// StatusBrokenSession: session recovery exhausted its retries and the
	// application failed the session's parked operations instead of waiting
	// forever; the operation may or may not have executed (client-side).
	StatusBrokenSession
)

// Errors.
var (
	ErrShortFrame = errors.New("wire: short frame")
	ErrBadType    = errors.New("wire: unexpected message type")
)

// Op is one operation in a request batch.
type Op struct {
	Kind  OpKind
	Seq   uint32 // client-assigned sequence within the session
	Key   []byte
	Value []byte // upsert value / RMW input
}

// RequestBatch is the unit of client→server traffic.
type RequestBatch struct {
	View      uint64 // client's cached view number for the server
	SessionID uint64
	Ops       []Op
}

// Result is one operation's outcome.
type Result struct {
	Seq    uint32
	Status ResultStatus
	Value  []byte
}

// ResponseBatch carries results, or a refusal: Rejected when the view check
// failed (re-resolve ownership and retry), Shed when admission control turned
// the batch away under overload (the view was fine — back off and retry the
// same server). Rejected and Shed share one flags byte on the wire, so old
// decoders read a shed batch as not-rejected with zero statuses.
type ResponseBatch struct {
	SessionID  uint64
	Rejected   bool
	Shed       bool
	ServerView uint64 // server's current view (hint on rejection)
	Results    []Result
}

// ResponseBatch flag bits (the byte after SessionID).
const (
	respFlagRejected = 1 << 0
	respFlagShed     = 1 << 1
)

// AppendRequestBatch encodes b after dst and returns the extended slice.
// Layout: type, view, session, count, then per op: kind, seq, klen(u16),
// vlen(u32), key, value.
//
//shadowfax:noalloc
func AppendRequestBatch(dst []byte, b *RequestBatch) []byte {
	dst = append(dst, byte(MsgRequestBatch))
	dst = appendU64(dst, b.View)
	dst = appendU64(dst, b.SessionID)
	dst = appendU32(dst, uint32(len(b.Ops)))
	for i := range b.Ops {
		op := &b.Ops[i]
		dst = append(dst, byte(op.Kind))
		dst = appendU32(dst, op.Seq)
		dst = appendU16(dst, uint16(len(op.Key)))
		dst = appendU32(dst, uint32(len(op.Value)))
		dst = append(dst, op.Key...)
		dst = append(dst, op.Value...)
	}
	return dst
}

// DecodeRequestBatch parses a frame produced by AppendRequestBatch. The
// returned batch aliases buf; ops are decoded into b.Ops (reused).
//
//shadowfax:noalloc
func DecodeRequestBatch(buf []byte, b *RequestBatch) error {
	d := decoder{buf: buf}
	if t, err := d.u8(); err != nil || MsgType(t) != MsgRequestBatch {
		return fmt.Errorf("%w: request batch", ErrBadType) //shadowfax:ignore hotpathalloc malformed-frame error path; never taken for well-formed traffic
	}
	var err error
	if b.View, err = d.u64(); err != nil {
		return err
	}
	if b.SessionID, err = d.u64(); err != nil {
		return err
	}
	n, err := d.u32()
	if err != nil {
		return err
	}
	// Each op encodes to at least 11 bytes (kind+seq+klen+vlen); a count the
	// remaining frame cannot hold is a corrupt or hostile frame, not an
	// allocation request.
	if uint64(n) > uint64(d.remaining())/11 {
		return ErrShortFrame
	}
	if cap(b.Ops) < int(n) {
		b.Ops = make([]Op, n) //shadowfax:ignore hotpathalloc amortized: grows to the high-water batch size once, then the buffer is reused
	}
	b.Ops = b.Ops[:n]
	for i := range b.Ops {
		op := &b.Ops[i]
		k, err := d.u8()
		if err != nil {
			return err
		}
		op.Kind = OpKind(k)
		if op.Seq, err = d.u32(); err != nil {
			return err
		}
		klen, err := d.u16()
		if err != nil {
			return err
		}
		vlen, err := d.u32()
		if err != nil {
			return err
		}
		if op.Key, err = d.bytes(int(klen)); err != nil {
			return err
		}
		if op.Value, err = d.bytes(int(vlen)); err != nil {
			return err
		}
	}
	return nil
}

// AppendResponseBatch encodes r after dst.
//
//shadowfax:noalloc
func AppendResponseBatch(dst []byte, r *ResponseBatch) []byte {
	dst = append(dst, byte(MsgResponseBatch))
	dst = appendU64(dst, r.SessionID)
	var flags byte
	if r.Rejected {
		flags |= respFlagRejected
	}
	if r.Shed {
		flags |= respFlagShed
	}
	dst = append(dst, flags)
	dst = appendU64(dst, r.ServerView)
	dst = appendU32(dst, uint32(len(r.Results)))
	for i := range r.Results {
		res := &r.Results[i]
		dst = appendU32(dst, res.Seq)
		dst = append(dst, byte(res.Status))
		dst = appendU32(dst, uint32(len(res.Value)))
		dst = append(dst, res.Value...)
	}
	return dst
}

// DecodeResponseBatch parses a response frame; the result aliases buf.
//
//shadowfax:noalloc
func DecodeResponseBatch(buf []byte, r *ResponseBatch) error {
	d := decoder{buf: buf}
	if t, err := d.u8(); err != nil || MsgType(t) != MsgResponseBatch {
		return fmt.Errorf("%w: response batch", ErrBadType) //shadowfax:ignore hotpathalloc malformed-frame error path; never taken for well-formed traffic
	}
	var err error
	if r.SessionID, err = d.u64(); err != nil {
		return err
	}
	flags, err := d.u8()
	if err != nil {
		return err
	}
	r.Rejected = flags&respFlagRejected != 0
	r.Shed = flags&respFlagShed != 0
	if r.ServerView, err = d.u64(); err != nil {
		return err
	}
	n, err := d.u32()
	if err != nil {
		return err
	}
	// Each result encodes to at least 9 bytes (seq+status+vlen).
	if uint64(n) > uint64(d.remaining())/9 {
		return ErrShortFrame
	}
	if cap(r.Results) < int(n) {
		r.Results = make([]Result, n) //shadowfax:ignore hotpathalloc amortized: grows to the high-water batch size once, then the buffer is reused
	}
	r.Results = r.Results[:n]
	for i := range r.Results {
		res := &r.Results[i]
		if res.Seq, err = d.u32(); err != nil {
			return err
		}
		st, err := d.u8()
		if err != nil {
			return err
		}
		res.Status = ResultStatus(st)
		vlen, err := d.u32()
		if err != nil {
			return err
		}
		if res.Value, err = d.bytes(int(vlen)); err != nil {
			return err
		}
	}
	return nil
}

// MigrateCmd asks a server to migrate a hash range (client→source).
type MigrateCmd struct {
	Target     string
	RangeStart uint64
	RangeEnd   uint64
}

// EncodeMigrate builds a MsgMigrate frame.
func EncodeMigrate(c MigrateCmd) []byte {
	dst := []byte{byte(MsgMigrate)}
	dst = appendU64(dst, c.RangeStart)
	dst = appendU64(dst, c.RangeEnd)
	dst = appendU16(dst, uint16(len(c.Target)))
	dst = append(dst, c.Target...)
	return dst
}

// DecodeMigrate parses a MsgMigrate frame.
func DecodeMigrate(buf []byte) (MigrateCmd, error) {
	d := decoder{buf: buf}
	var c MigrateCmd
	if t, err := d.u8(); err != nil || MsgType(t) != MsgMigrate {
		return c, fmt.Errorf("%w: migrate", ErrBadType)
	}
	var err error
	if c.RangeStart, err = d.u64(); err != nil {
		return c, err
	}
	if c.RangeEnd, err = d.u64(); err != nil {
		return c, err
	}
	n, err := d.u16()
	if err != nil {
		return c, err
	}
	tb, err := d.bytes(int(n))
	if err != nil {
		return c, err
	}
	c.Target = string(tb)
	return c, nil
}

// MigrationRecord is one record inside migration RPC payloads.
type MigrationRecord struct {
	Hash  uint64
	Flags uint8 // bit 0: tombstone, bit 1: indirection
	Key   []byte
	Value []byte
}

// Record flag bits.
const (
	RecFlagTombstone   = 1 << 0
	RecFlagIndirection = 1 << 1
)

// MigrationMsg is the payload shared by PrepForTransfer, TransferOwnership,
// MigrationRecords, CompleteMigration and Ack frames.
type MigrationMsg struct {
	Type        MsgType
	MigrationID uint64
	SourceID    string
	RangeStart  uint64
	RangeEnd    uint64
	ViewNumber  uint64 // target's new view number (TransferOwnership)
	Final       bool   // MigrationRecords: last batch from this thread
	Records     []MigrationRecord
}

// EncodeMigrationMsg builds a migration frame of m.Type.
func EncodeMigrationMsg(m *MigrationMsg) []byte {
	dst := []byte{byte(m.Type)}
	dst = appendU64(dst, m.MigrationID)
	dst = appendU16(dst, uint16(len(m.SourceID)))
	dst = append(dst, m.SourceID...)
	dst = appendU64(dst, m.RangeStart)
	dst = appendU64(dst, m.RangeEnd)
	dst = appendU64(dst, m.ViewNumber)
	if m.Final {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendU32(dst, uint32(len(m.Records)))
	for i := range m.Records {
		r := &m.Records[i]
		dst = appendU64(dst, r.Hash)
		dst = append(dst, r.Flags)
		dst = appendU16(dst, uint16(len(r.Key)))
		dst = appendU32(dst, uint32(len(r.Value)))
		dst = append(dst, r.Key...)
		dst = append(dst, r.Value...)
	}
	return dst
}

// DecodeMigrationMsg parses any migration frame; records alias buf.
func DecodeMigrationMsg(buf []byte) (MigrationMsg, error) {
	d := decoder{buf: buf}
	var m MigrationMsg
	t, err := d.u8()
	if err != nil {
		return m, err
	}
	m.Type = MsgType(t)
	switch m.Type {
	case MsgPrepForTransfer, MsgTransferOwnership, MsgMigrationRecords,
		MsgCompleteMigration, MsgAck, MsgCompacted:
	default:
		return m, fmt.Errorf("%w: migration msg got %d", ErrBadType, t)
	}
	if m.MigrationID, err = d.u64(); err != nil {
		return m, err
	}
	n, err := d.u16()
	if err != nil {
		return m, err
	}
	src, err := d.bytes(int(n))
	if err != nil {
		return m, err
	}
	m.SourceID = string(src)
	if m.RangeStart, err = d.u64(); err != nil {
		return m, err
	}
	if m.RangeEnd, err = d.u64(); err != nil {
		return m, err
	}
	if m.ViewNumber, err = d.u64(); err != nil {
		return m, err
	}
	fin, err := d.u8()
	if err != nil {
		return m, err
	}
	m.Final = fin != 0
	cnt, err := d.u32()
	if err != nil {
		return m, err
	}
	// Each record encodes to at least 15 bytes (hash+flags+klen+vlen).
	if uint64(cnt) > uint64(d.remaining())/15 {
		return m, ErrShortFrame
	}
	m.Records = make([]MigrationRecord, cnt)
	for i := range m.Records {
		r := &m.Records[i]
		if r.Hash, err = d.u64(); err != nil {
			return m, err
		}
		if r.Flags, err = d.u8(); err != nil {
			return m, err
		}
		klen, err := d.u16()
		if err != nil {
			return m, err
		}
		vlen, err := d.u32()
		if err != nil {
			return m, err
		}
		if r.Key, err = d.bytes(int(klen)); err != nil {
			return m, err
		}
		if r.Value, err = d.bytes(int(vlen)); err != nil {
			return m, err
		}
	}
	return m, nil
}

// CheckpointResp is a server's answer to a MsgCheckpoint admin request.
type CheckpointResp struct {
	OK      bool
	Version uint32 // sealed CPR version
	Tail    uint64 // log prefix the image covers
	Err     string // failure detail when !OK
}

// EncodeCheckpointReq builds a MsgCheckpoint frame.
func EncodeCheckpointReq() []byte {
	return []byte{byte(MsgCheckpoint)}
}

// EncodeCheckpointResp builds a MsgCheckpointResp frame.
func EncodeCheckpointResp(r CheckpointResp) []byte {
	dst := []byte{byte(MsgCheckpointResp)}
	if r.OK {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendU32(dst, r.Version)
	dst = appendU64(dst, r.Tail)
	dst = appendU16(dst, uint16(len(r.Err)))
	dst = append(dst, r.Err...)
	return dst
}

// DecodeCheckpointResp parses a MsgCheckpointResp frame.
func DecodeCheckpointResp(buf []byte) (CheckpointResp, error) {
	d := decoder{buf: buf}
	var r CheckpointResp
	if t, err := d.u8(); err != nil || MsgType(t) != MsgCheckpointResp {
		return r, fmt.Errorf("%w: checkpoint resp", ErrBadType)
	}
	ok, err := d.u8()
	if err != nil {
		return r, err
	}
	r.OK = ok != 0
	if r.Version, err = d.u32(); err != nil {
		return r, err
	}
	if r.Tail, err = d.u64(); err != nil {
		return r, err
	}
	n, err := d.u16()
	if err != nil {
		return r, err
	}
	eb, err := d.bytes(int(n))
	if err != nil {
		return r, err
	}
	r.Err = string(eb)
	return r, nil
}

// CompactResp is a server's answer to a MsgCompact admin request: the
// per-pass compaction statistics (§3.3.3).
type CompactResp struct {
	OK  bool
	Err string // failure detail when !OK

	Scanned   uint64 // records examined in the stable prefix
	Kept      uint64 // live records copied forward to the tail
	Dropped   uint64 // superseded versions, tombstones, indirection records
	Relocated uint64 // disowned records shipped to their current owner

	Begin          uint64 // log begin address after the pass
	ReclaimedBytes uint64 // local device bytes freed
	TierReclaimed  uint64 // shared-tier bytes freed
}

// EncodeCompactReq builds a MsgCompact frame.
func EncodeCompactReq() []byte {
	return []byte{byte(MsgCompact)}
}

// EncodeCompactResp builds a MsgCompactResp frame.
func EncodeCompactResp(r CompactResp) []byte {
	dst := []byte{byte(MsgCompactResp)}
	if r.OK {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendU64(dst, r.Scanned)
	dst = appendU64(dst, r.Kept)
	dst = appendU64(dst, r.Dropped)
	dst = appendU64(dst, r.Relocated)
	dst = appendU64(dst, r.Begin)
	dst = appendU64(dst, r.ReclaimedBytes)
	dst = appendU64(dst, r.TierReclaimed)
	dst = appendU16(dst, uint16(len(r.Err)))
	dst = append(dst, r.Err...)
	return dst
}

// DecodeCompactResp parses a MsgCompactResp frame.
func DecodeCompactResp(buf []byte) (CompactResp, error) {
	d := decoder{buf: buf}
	var r CompactResp
	if t, err := d.u8(); err != nil || MsgType(t) != MsgCompactResp {
		return r, fmt.Errorf("%w: compact resp", ErrBadType)
	}
	ok, err := d.u8()
	if err != nil {
		return r, err
	}
	r.OK = ok != 0
	for _, p := range []*uint64{&r.Scanned, &r.Kept, &r.Dropped, &r.Relocated,
		&r.Begin, &r.ReclaimedBytes, &r.TierReclaimed} {
		if *p, err = d.u64(); err != nil {
			return r, err
		}
	}
	n, err := d.u16()
	if err != nil {
		return r, err
	}
	eb, err := d.bytes(int(n))
	if err != nil {
		return r, err
	}
	r.Err = string(eb)
	return r, nil
}

// Range is a half-open hash interval inside a StatsResp (the wire twin of
// metadata.HashRange; the wire package depends on nothing internal).
type Range struct {
	Start, End uint64
}

// StatsResp is a server's answer to a MsgStats admin request: identity,
// current ownership view, and a snapshot of the operational counters. It is
// also the public API's discovery handshake — ServerID plus the view let a
// client register an out-of-process server in its metadata cache.
type StatsResp struct {
	ServerID   string
	ViewNumber uint64
	Ranges     []Range // ranges owned at ViewNumber

	OpsCompleted    uint64
	BatchesAccepted uint64
	BatchesRejected uint64
	// BatchesShed counts batches refused by admission control. Encoded after
	// HashSample (a tail append; absent in frames from older servers).
	BatchesShed   uint64
	DecodeErrors  uint64
	PendingOps    int64 // target-side pending set (may be mid-flight negative-free)
	RemoteFetches uint64
	ViewRefreshes uint64

	Checkpoints        uint64
	CheckpointFailures uint64

	Compactions           uint64
	CompactionFailures    uint64
	CompactRelocated      uint64
	CompactReclaimedBytes uint64

	StorePendingReads uint64 // pending storage I/Os the store has issued

	// Cold-read pipeline and read-cache counters (PR 8). Encoded after
	// BatchesShed (tail appends; absent in frames from older servers).
	PendingCoalesced uint64 // pending reads that shared an in-flight device read
	ReadCacheHits    uint64 // in-memory hits on read-cache-promoted keys
	ReadCacheCopies  uint64 // records copied to the tail by the read cache
	DeviceBatchReads uint64 // batched device read submissions

	// LogBytes is the server's HybridLog footprint (tail − begin), the
	// balancer's per-server space-accounting input.
	LogBytes uint64
	// BalancePasses / BalanceMigrations count the hosted balancer's planning
	// passes and the migrations it triggered (zero unless the server runs
	// the auto-scale balancer).
	BalancePasses     uint64
	BalanceMigrations uint64

	// HashSample is a snapshot of recently served key hashes, drawn from the
	// dispatchers' per-thread sampling rings. The balancer derives both the
	// per-hash-range load split and the migration split point from this
	// distribution (hot keys appear proportionally more often).
	HashSample []uint64
}

// EncodeStatsReq builds a MsgStats frame.
func EncodeStatsReq() []byte {
	return []byte{byte(MsgStats)}
}

// EncodeStatsResp builds a MsgStatsResp frame.
func EncodeStatsResp(r StatsResp) []byte {
	dst := []byte{byte(MsgStatsResp)}
	dst = appendU16(dst, uint16(len(r.ServerID)))
	dst = append(dst, r.ServerID...)
	dst = appendU64(dst, r.ViewNumber)
	dst = appendU32(dst, uint32(len(r.Ranges)))
	for _, rng := range r.Ranges {
		dst = appendU64(dst, rng.Start)
		dst = appendU64(dst, rng.End)
	}
	for _, v := range []uint64{
		r.OpsCompleted, r.BatchesAccepted, r.BatchesRejected, r.DecodeErrors,
		uint64(r.PendingOps), r.RemoteFetches, r.ViewRefreshes,
		r.Checkpoints, r.CheckpointFailures,
		r.Compactions, r.CompactionFailures, r.CompactRelocated,
		r.CompactReclaimedBytes, r.StorePendingReads,
		r.LogBytes, r.BalancePasses, r.BalanceMigrations,
	} {
		dst = appendU64(dst, v)
	}
	dst = appendU32(dst, uint32(len(r.HashSample)))
	for _, h := range r.HashSample {
		dst = appendU64(dst, h)
	}
	dst = appendU64(dst, r.BatchesShed) // tail append (see StatsResp)
	for _, v := range []uint64{
		r.PendingCoalesced, r.ReadCacheHits, r.ReadCacheCopies, r.DeviceBatchReads,
	} {
		dst = appendU64(dst, v) // tail appends (see StatsResp)
	}
	return dst
}

// DecodeStatsResp parses a MsgStatsResp frame.
func DecodeStatsResp(buf []byte) (StatsResp, error) {
	d := decoder{buf: buf}
	var r StatsResp
	if t, err := d.u8(); err != nil || MsgType(t) != MsgStatsResp {
		return r, fmt.Errorf("%w: stats resp", ErrBadType)
	}
	n, err := d.u16()
	if err != nil {
		return r, err
	}
	id, err := d.bytes(int(n))
	if err != nil {
		return r, err
	}
	r.ServerID = string(id)
	if r.ViewNumber, err = d.u64(); err != nil {
		return r, err
	}
	cnt, err := d.u32()
	if err != nil {
		return r, err
	}
	// Each range encodes to 16 bytes; a count the remaining frame cannot
	// hold is a corrupt or hostile frame, not an allocation request.
	if uint64(cnt) > uint64(d.remaining())/16 {
		return r, ErrShortFrame
	}
	r.Ranges = make([]Range, cnt)
	for i := range r.Ranges {
		if r.Ranges[i].Start, err = d.u64(); err != nil {
			return r, err
		}
		if r.Ranges[i].End, err = d.u64(); err != nil {
			return r, err
		}
	}
	var pend uint64
	for _, p := range []*uint64{
		&r.OpsCompleted, &r.BatchesAccepted, &r.BatchesRejected, &r.DecodeErrors,
		&pend, &r.RemoteFetches, &r.ViewRefreshes,
		&r.Checkpoints, &r.CheckpointFailures,
		&r.Compactions, &r.CompactionFailures, &r.CompactRelocated,
		&r.CompactReclaimedBytes, &r.StorePendingReads,
		&r.LogBytes, &r.BalancePasses, &r.BalanceMigrations,
	} {
		if *p, err = d.u64(); err != nil {
			return r, err
		}
	}
	r.PendingOps = int64(pend)
	scnt, err := d.u32()
	if err != nil {
		return r, err
	}
	// Each sampled hash encodes to 8 bytes (count guard as above).
	if uint64(scnt) > uint64(d.remaining())/8 {
		return r, ErrShortFrame
	}
	if scnt > 0 {
		r.HashSample = make([]uint64, scnt)
	}
	for i := range r.HashSample {
		if r.HashSample[i], err = d.u64(); err != nil {
			return r, err
		}
	}
	if d.remaining() >= 8 {
		if r.BatchesShed, err = d.u64(); err != nil {
			return r, err
		}
	}
	for _, p := range []*uint64{
		&r.PendingCoalesced, &r.ReadCacheHits, &r.ReadCacheCopies, &r.DeviceBatchReads,
	} {
		if d.remaining() < 8 {
			break // older frame: tail fields absent
		}
		if *p, err = d.u64(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// SessionRecover asks a recovered server where a client session's durable
// prefix ends.
type SessionRecover struct {
	SessionID uint64
}

// SessionRecoverResp carries the session's last durable sequence number.
// Known is false when the server's recovered image has no record of the
// session (every in-flight operation must then be replayed).
type SessionRecoverResp struct {
	SessionID uint64
	Known     bool
	LastSeq   uint32
}

// EncodeSessionRecover builds a MsgSessionRecover frame.
func EncodeSessionRecover(r SessionRecover) []byte {
	dst := []byte{byte(MsgSessionRecover)}
	dst = appendU64(dst, r.SessionID)
	return dst
}

// DecodeSessionRecover parses a MsgSessionRecover frame.
func DecodeSessionRecover(buf []byte) (SessionRecover, error) {
	d := decoder{buf: buf}
	var r SessionRecover
	if t, err := d.u8(); err != nil || MsgType(t) != MsgSessionRecover {
		return r, fmt.Errorf("%w: session recover", ErrBadType)
	}
	var err error
	if r.SessionID, err = d.u64(); err != nil {
		return r, err
	}
	return r, nil
}

// EncodeSessionRecoverResp builds a MsgSessionRecoverResp frame.
func EncodeSessionRecoverResp(r SessionRecoverResp) []byte {
	dst := []byte{byte(MsgSessionRecoverResp)}
	dst = appendU64(dst, r.SessionID)
	if r.Known {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendU32(dst, r.LastSeq)
	return dst
}

// DecodeSessionRecoverResp parses a MsgSessionRecoverResp frame.
func DecodeSessionRecoverResp(buf []byte) (SessionRecoverResp, error) {
	d := decoder{buf: buf}
	var r SessionRecoverResp
	if t, err := d.u8(); err != nil || MsgType(t) != MsgSessionRecoverResp {
		return r, fmt.Errorf("%w: session recover resp", ErrBadType)
	}
	var err error
	if r.SessionID, err = d.u64(); err != nil {
		return r, err
	}
	known, err := d.u8()
	if err != nil {
		return r, err
	}
	r.Known = known != 0
	if r.LastSeq, err = d.u32(); err != nil {
		return r, err
	}
	return r, nil
}

// PeekType returns a frame's message type without decoding it.
func PeekType(buf []byte) (MsgType, error) {
	if len(buf) == 0 {
		return 0, ErrShortFrame
	}
	return MsgType(buf[0]), nil
}

// decoder is a bounds-checked little-endian reader.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) u8() (uint8, error) {
	if d.off+1 > len(d.buf) {
		return 0, ErrShortFrame
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.off+2 > len(d.buf) {
		return 0, ErrShortFrame
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, ErrShortFrame
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.buf) {
		return 0, ErrShortFrame
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.buf) {
		return nil, ErrShortFrame
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v, nil
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
