package wire

import "fmt"

// Primary→backup replication frames (continuing the MsgType enum), plus the
// scale-in drain admin frames. The replication stream has two parts: a base
// sync (BaseBegin, Records*, SessTab, BaseDone) shipping the sealed pre-cut
// state, and a live stream (Batch frames embedding the primary's accepted
// client request batches verbatim). Every primary→backup frame carries a
// strictly-increasing Seq; the backup acknowledges cumulatively with Ack.
const (
	// MsgReplAttach asks a primary to start replicating to the sender.
	MsgReplAttach MsgType = iota + 24
	// MsgReplAttachResp accepts or refuses the attach.
	MsgReplAttachResp
	// MsgReplBaseBegin opens the base sync: the sealed CPR version and the
	// cut tail the scan is taken against.
	MsgReplBaseBegin
	// MsgReplRecords is a batch of base-state records (migration-record
	// encoding; installed via ConditionalInsert).
	MsgReplRecords
	// MsgReplSessTab ships the primary's client session table restricted to
	// the sealed version, so the backup answers session recovery correctly
	// after promotion.
	MsgReplSessTab
	// MsgReplBaseDone closes the base sync; buffered live batches apply.
	MsgReplBaseDone
	// MsgReplBatch embeds one accepted client request batch verbatim.
	MsgReplBatch
	// MsgReplAck is the backup's cumulative acknowledgement.
	MsgReplAck
	// MsgReplHeartbeat keeps the stream alive while the primary is idle.
	MsgReplHeartbeat
	// MsgDrain asks a server to migrate all its ranges away and retire
	// (scale-in admin).
	MsgDrain
	// MsgDrainResp reports the drain's outcome.
	MsgDrainResp
)

// ReplAttach asks a primary to accept the sender as its backup.
type ReplAttach struct {
	PrimaryID    string // the primary's server id (sanity check)
	ReplicaAddr  string // the backup's transport address (metadata identity)
	HeartbeatMs  uint32 // primary's keepalive period while idle
	AckTimeoutMs uint32 // primary detaches after this long without an ack
}

// EncodeReplAttach builds a MsgReplAttach frame.
func EncodeReplAttach(r ReplAttach) []byte {
	dst := []byte{byte(MsgReplAttach)}
	dst = appendString(dst, r.PrimaryID)
	dst = appendString(dst, r.ReplicaAddr)
	dst = appendU32(dst, r.HeartbeatMs)
	dst = appendU32(dst, r.AckTimeoutMs)
	return dst
}

// DecodeReplAttach parses a MsgReplAttach frame.
func DecodeReplAttach(buf []byte) (ReplAttach, error) {
	d := decoder{buf: buf}
	var r ReplAttach
	if t, err := d.u8(); err != nil || MsgType(t) != MsgReplAttach {
		return r, fmt.Errorf("%w: repl attach", ErrBadType)
	}
	var err error
	if r.PrimaryID, err = d.str(); err != nil {
		return r, err
	}
	if r.ReplicaAddr, err = d.str(); err != nil {
		return r, err
	}
	if r.HeartbeatMs, err = d.u32(); err != nil {
		return r, err
	}
	if r.AckTimeoutMs, err = d.u32(); err != nil {
		return r, err
	}
	return r, nil
}

// ReplAttachResp accepts or refuses an attach.
type ReplAttachResp struct {
	OK  bool
	Err string
}

// EncodeReplAttachResp builds a MsgReplAttachResp frame.
func EncodeReplAttachResp(r ReplAttachResp) []byte {
	dst := []byte{byte(MsgReplAttachResp)}
	dst = appendBool(dst, r.OK)
	dst = appendString(dst, r.Err)
	return dst
}

// DecodeReplAttachResp parses a MsgReplAttachResp frame.
func DecodeReplAttachResp(buf []byte) (ReplAttachResp, error) {
	d := decoder{buf: buf}
	var r ReplAttachResp
	if t, err := d.u8(); err != nil || MsgType(t) != MsgReplAttachResp {
		return r, fmt.Errorf("%w: repl attach resp", ErrBadType)
	}
	var err error
	if r.OK, err = d.bool(); err != nil {
		return r, err
	}
	if r.Err, err = d.str(); err != nil {
		return r, err
	}
	return r, nil
}

// ReplBaseBegin opens the base sync.
type ReplBaseBegin struct {
	Seq     uint64
	Sealed  uint32 // CPR version sealed by the replication cut
	CutTail uint64 // log tail captured before the version bump
}

// EncodeReplBaseBegin builds a MsgReplBaseBegin frame.
func EncodeReplBaseBegin(r ReplBaseBegin) []byte {
	dst := []byte{byte(MsgReplBaseBegin)}
	dst = appendU64(dst, r.Seq)
	dst = appendU32(dst, r.Sealed)
	dst = appendU64(dst, r.CutTail)
	return dst
}

// DecodeReplBaseBegin parses a MsgReplBaseBegin frame.
func DecodeReplBaseBegin(buf []byte) (ReplBaseBegin, error) {
	d := decoder{buf: buf}
	var r ReplBaseBegin
	if t, err := d.u8(); err != nil || MsgType(t) != MsgReplBaseBegin {
		return r, fmt.Errorf("%w: repl base begin", ErrBadType)
	}
	var err error
	if r.Seq, err = d.u64(); err != nil {
		return r, err
	}
	if r.Sealed, err = d.u32(); err != nil {
		return r, err
	}
	if r.CutTail, err = d.u64(); err != nil {
		return r, err
	}
	return r, nil
}

// ReplRecords is one batch of base-state records.
type ReplRecords struct {
	Seq     uint64
	Records []MigrationRecord
}

// EncodeReplRecords builds a MsgReplRecords frame.
func EncodeReplRecords(r *ReplRecords) []byte {
	dst := []byte{byte(MsgReplRecords)}
	dst = appendU64(dst, r.Seq)
	dst = appendU32(dst, uint32(len(r.Records)))
	for i := range r.Records {
		rec := &r.Records[i]
		dst = appendU64(dst, rec.Hash)
		dst = append(dst, rec.Flags)
		dst = appendU16(dst, uint16(len(rec.Key)))
		dst = appendU32(dst, uint32(len(rec.Value)))
		dst = append(dst, rec.Key...)
		dst = append(dst, rec.Value...)
	}
	return dst
}

// DecodeReplRecords parses a MsgReplRecords frame; records alias buf.
func DecodeReplRecords(buf []byte) (ReplRecords, error) {
	d := decoder{buf: buf}
	var r ReplRecords
	if t, err := d.u8(); err != nil || MsgType(t) != MsgReplRecords {
		return r, fmt.Errorf("%w: repl records", ErrBadType)
	}
	var err error
	if r.Seq, err = d.u64(); err != nil {
		return r, err
	}
	cnt, err := d.u32()
	if err != nil {
		return r, err
	}
	// Each record encodes to at least 15 bytes (hash+flags+klen+vlen).
	if uint64(cnt) > uint64(d.remaining())/15 {
		return r, ErrShortFrame
	}
	r.Records = make([]MigrationRecord, cnt)
	for i := range r.Records {
		rec := &r.Records[i]
		if rec.Hash, err = d.u64(); err != nil {
			return r, err
		}
		if rec.Flags, err = d.u8(); err != nil {
			return r, err
		}
		klen, err := d.u16()
		if err != nil {
			return r, err
		}
		vlen, err := d.u32()
		if err != nil {
			return r, err
		}
		if rec.Key, err = d.bytes(int(klen)); err != nil {
			return r, err
		}
		if rec.Value, err = d.bytes(int(vlen)); err != nil {
			return r, err
		}
	}
	return r, nil
}

// ReplSession is one client session's durable high-water mark.
type ReplSession struct {
	ID      uint64
	LastSeq uint32
}

// ReplSessTab ships the session table captured at the replication cut.
type ReplSessTab struct {
	Seq      uint64
	Sealed   uint32
	Sessions []ReplSession
}

// EncodeReplSessTab builds a MsgReplSessTab frame.
func EncodeReplSessTab(r *ReplSessTab) []byte {
	dst := []byte{byte(MsgReplSessTab)}
	dst = appendU64(dst, r.Seq)
	dst = appendU32(dst, r.Sealed)
	dst = appendU32(dst, uint32(len(r.Sessions)))
	for _, s := range r.Sessions {
		dst = appendU64(dst, s.ID)
		dst = appendU32(dst, s.LastSeq)
	}
	return dst
}

// DecodeReplSessTab parses a MsgReplSessTab frame.
func DecodeReplSessTab(buf []byte) (ReplSessTab, error) {
	d := decoder{buf: buf}
	var r ReplSessTab
	if t, err := d.u8(); err != nil || MsgType(t) != MsgReplSessTab {
		return r, fmt.Errorf("%w: repl sess tab", ErrBadType)
	}
	var err error
	if r.Seq, err = d.u64(); err != nil {
		return r, err
	}
	if r.Sealed, err = d.u32(); err != nil {
		return r, err
	}
	cnt, err := d.u32()
	if err != nil {
		return r, err
	}
	// Each session entry encodes to 12 bytes.
	if uint64(cnt) > uint64(d.remaining())/12 {
		return r, ErrShortFrame
	}
	if cnt > 0 {
		r.Sessions = make([]ReplSession, cnt)
	}
	for i := range r.Sessions {
		if r.Sessions[i].ID, err = d.u64(); err != nil {
			return r, err
		}
		if r.Sessions[i].LastSeq, err = d.u32(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// ReplBaseDone closes the base sync.
type ReplBaseDone struct {
	Seq uint64
	// SkippedIndirections counts shared-tier indirection records the base
	// scan could not replicate (observability; replication of indirection
	// chains is unsupported).
	SkippedIndirections uint32
}

// EncodeReplBaseDone builds a MsgReplBaseDone frame.
func EncodeReplBaseDone(r ReplBaseDone) []byte {
	dst := []byte{byte(MsgReplBaseDone)}
	dst = appendU64(dst, r.Seq)
	dst = appendU32(dst, r.SkippedIndirections)
	return dst
}

// DecodeReplBaseDone parses a MsgReplBaseDone frame.
func DecodeReplBaseDone(buf []byte) (ReplBaseDone, error) {
	d := decoder{buf: buf}
	var r ReplBaseDone
	if t, err := d.u8(); err != nil || MsgType(t) != MsgReplBaseDone {
		return r, fmt.Errorf("%w: repl base done", ErrBadType)
	}
	var err error
	if r.Seq, err = d.u64(); err != nil {
		return r, err
	}
	if r.SkippedIndirections, err = d.u32(); err != nil {
		return r, err
	}
	return r, nil
}

// ReplBatch embeds one accepted client request batch verbatim: the backup
// re-executes the primary's input stream rather than a bespoke record
// format, so the apply path is the ordinary batch-execution path.
type ReplBatch struct {
	Seq   uint64
	Batch []byte // a complete MsgRequestBatch frame
}

// EncodeReplBatch builds a MsgReplBatch frame.
func EncodeReplBatch(r *ReplBatch) []byte {
	dst := make([]byte, 0, 1+8+4+len(r.Batch))
	dst = append(dst, byte(MsgReplBatch))
	dst = appendU64(dst, r.Seq)
	dst = appendU32(dst, uint32(len(r.Batch)))
	dst = append(dst, r.Batch...)
	return dst
}

// DecodeReplBatch parses a MsgReplBatch frame; Batch aliases buf.
func DecodeReplBatch(buf []byte) (ReplBatch, error) {
	d := decoder{buf: buf}
	var r ReplBatch
	if t, err := d.u8(); err != nil || MsgType(t) != MsgReplBatch {
		return r, fmt.Errorf("%w: repl batch", ErrBadType)
	}
	var err error
	if r.Seq, err = d.u64(); err != nil {
		return r, err
	}
	n, err := d.u32()
	if err != nil {
		return r, err
	}
	if r.Batch, err = d.bytes(int(n)); err != nil {
		return r, err
	}
	return r, nil
}

// ReplAck is the backup's cumulative acknowledgement: every primary frame
// with sequence <= Seq has been applied durably enough to survive failover
// (installed in the backup's store and session table).
type ReplAck struct {
	Seq uint64
}

// EncodeReplAck builds a MsgReplAck frame.
func EncodeReplAck(r ReplAck) []byte {
	dst := []byte{byte(MsgReplAck)}
	dst = appendU64(dst, r.Seq)
	return dst
}

// DecodeReplAck parses a MsgReplAck frame.
func DecodeReplAck(buf []byte) (ReplAck, error) {
	d := decoder{buf: buf}
	var r ReplAck
	if t, err := d.u8(); err != nil || MsgType(t) != MsgReplAck {
		return r, fmt.Errorf("%w: repl ack", ErrBadType)
	}
	var err error
	if r.Seq, err = d.u64(); err != nil {
		return r, err
	}
	return r, nil
}

// ReplHeartbeat keeps the stream's liveness observable while idle.
type ReplHeartbeat struct {
	Seq uint64 // current send watermark (nothing new to ack beyond it)
}

// EncodeReplHeartbeat builds a MsgReplHeartbeat frame.
func EncodeReplHeartbeat(r ReplHeartbeat) []byte {
	dst := []byte{byte(MsgReplHeartbeat)}
	dst = appendU64(dst, r.Seq)
	return dst
}

// DecodeReplHeartbeat parses a MsgReplHeartbeat frame.
func DecodeReplHeartbeat(buf []byte) (ReplHeartbeat, error) {
	d := decoder{buf: buf}
	var r ReplHeartbeat
	if t, err := d.u8(); err != nil || MsgType(t) != MsgReplHeartbeat {
		return r, fmt.Errorf("%w: repl heartbeat", ErrBadType)
	}
	var err error
	if r.Seq, err = d.u64(); err != nil {
		return r, err
	}
	return r, nil
}

// EncodeDrainReq builds a MsgDrain frame (admin: migrate everything away and
// retire).
func EncodeDrainReq() []byte {
	return []byte{byte(MsgDrain)}
}

// DrainResp reports a drain's outcome.
type DrainResp struct {
	OK      bool
	Err     string
	Retired bool   // the server was removed from the metadata store
	Moved   uint32 // ranges migrated away
}

// EncodeDrainResp builds a MsgDrainResp frame.
func EncodeDrainResp(r DrainResp) []byte {
	dst := []byte{byte(MsgDrainResp)}
	dst = appendBool(dst, r.OK)
	dst = appendString(dst, r.Err)
	dst = appendBool(dst, r.Retired)
	dst = appendU32(dst, r.Moved)
	return dst
}

// DecodeDrainResp parses a MsgDrainResp frame.
func DecodeDrainResp(buf []byte) (DrainResp, error) {
	d := decoder{buf: buf}
	var r DrainResp
	if t, err := d.u8(); err != nil || MsgType(t) != MsgDrainResp {
		return r, fmt.Errorf("%w: drain resp", ErrBadType)
	}
	var err error
	if r.OK, err = d.bool(); err != nil {
		return r, err
	}
	if r.Err, err = d.str(); err != nil {
		return r, err
	}
	if r.Retired, err = d.bool(); err != nil {
		return r, err
	}
	if r.Moved, err = d.u32(); err != nil {
		return r, err
	}
	return r, nil
}
