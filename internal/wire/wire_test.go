package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRequestBatchRoundTrip(t *testing.T) {
	in := RequestBatch{
		View:      7,
		SessionID: 99,
		Ops: []Op{
			{Kind: OpRead, Seq: 1, Key: []byte("k1")},
			{Kind: OpUpsert, Seq: 2, Key: []byte("k2"), Value: []byte("v2")},
			{Kind: OpRMW, Seq: 3, Key: []byte("k3"), Value: []byte("12345678")},
			{Kind: OpDelete, Seq: 4, Key: []byte("k4")},
		},
	}
	frame := AppendRequestBatch(nil, &in)
	var out RequestBatch
	if err := DecodeRequestBatch(frame, &out); err != nil {
		t.Fatal(err)
	}
	if out.View != in.View || out.SessionID != in.SessionID || len(out.Ops) != len(in.Ops) {
		t.Fatalf("header mismatch: %+v", out)
	}
	for i := range in.Ops {
		if out.Ops[i].Kind != in.Ops[i].Kind || out.Ops[i].Seq != in.Ops[i].Seq ||
			!bytes.Equal(out.Ops[i].Key, in.Ops[i].Key) ||
			!bytes.Equal(out.Ops[i].Value, in.Ops[i].Value) {
			t.Fatalf("op %d mismatch: %+v vs %+v", i, out.Ops[i], in.Ops[i])
		}
	}
}

func TestRequestBatchQuick(t *testing.T) {
	f := func(view, sid uint64, key, val []byte, seq uint32) bool {
		in := RequestBatch{View: view, SessionID: sid,
			Ops: []Op{{Kind: OpUpsert, Seq: seq, Key: key, Value: val}}}
		frame := AppendRequestBatch(nil, &in)
		var out RequestBatch
		if err := DecodeRequestBatch(frame, &out); err != nil {
			return false
		}
		return out.View == view && out.SessionID == sid &&
			bytes.Equal(out.Ops[0].Key, key) && bytes.Equal(out.Ops[0].Value, val) &&
			out.Ops[0].Seq == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResponseBatchRoundTrip(t *testing.T) {
	in := ResponseBatch{
		SessionID: 5, ServerView: 9,
		Results: []Result{
			{Seq: 1, Status: StatusOK, Value: []byte("hello")},
			{Seq: 2, Status: StatusNotFound},
			{Seq: 3, Status: StatusErr, Value: []byte("boom")},
		},
	}
	frame := AppendResponseBatch(nil, &in)
	var out ResponseBatch
	if err := DecodeResponseBatch(frame, &out); err != nil {
		t.Fatal(err)
	}
	if out.Rejected || out.ServerView != 9 || len(out.Results) != 3 {
		t.Fatalf("decoded %+v", out)
	}
	if out.Results[0].Status != StatusOK || !bytes.Equal(out.Results[0].Value, []byte("hello")) {
		t.Fatal("result 0 mismatch")
	}
}

func TestRejectionRoundTrip(t *testing.T) {
	in := ResponseBatch{SessionID: 5, Rejected: true, ServerView: 42}
	frame := AppendResponseBatch(nil, &in)
	var out ResponseBatch
	if err := DecodeResponseBatch(frame, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Rejected || out.ServerView != 42 || len(out.Results) != 0 {
		t.Fatalf("rejection decoded as %+v", out)
	}
}

func TestMigrateRoundTrip(t *testing.T) {
	in := MigrateCmd{Target: "server-b", RangeStart: 100, RangeEnd: 900}
	out, err := DecodeMigrate(EncodeMigrate(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("%+v != %+v", out, in)
	}
}

func TestMigrationMsgRoundTrip(t *testing.T) {
	for _, typ := range []MsgType{MsgPrepForTransfer, MsgTransferOwnership,
		MsgMigrationRecords, MsgCompleteMigration, MsgAck, MsgCompacted} {
		in := MigrationMsg{
			Type: typ, MigrationID: 77, SourceID: "src-1",
			RangeStart: 10, RangeEnd: 20, ViewNumber: 3, Final: typ == MsgMigrationRecords,
			Records: []MigrationRecord{
				{Hash: 15, Flags: RecFlagTombstone, Key: []byte("k"), Value: nil},
				{Hash: 16, Flags: RecFlagIndirection, Value: []byte("payload")},
				{Hash: 17, Key: []byte("k2"), Value: []byte("v2")},
			},
		}
		frame := EncodeMigrationMsg(&in)
		if pt, _ := PeekType(frame); pt != typ {
			t.Fatalf("peek %d != %d", pt, typ)
		}
		out, err := DecodeMigrationMsg(frame)
		if err != nil {
			t.Fatalf("type %d: %v", typ, err)
		}
		if out.Type != typ || out.MigrationID != 77 || out.SourceID != "src-1" ||
			out.RangeStart != 10 || out.RangeEnd != 20 || out.ViewNumber != 3 ||
			out.Final != in.Final || len(out.Records) != 3 {
			t.Fatalf("type %d decoded %+v", typ, out)
		}
		if out.Records[0].Flags&RecFlagTombstone == 0 ||
			out.Records[1].Flags&RecFlagIndirection == 0 {
			t.Fatal("flags lost")
		}
		if !bytes.Equal(out.Records[2].Value, []byte("v2")) {
			t.Fatal("record value lost")
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	req := EncodeCheckpointReq()
	if typ, err := PeekType(req); err != nil || typ != MsgCheckpoint {
		t.Fatalf("checkpoint req type: %v %v", typ, err)
	}
	for _, in := range []CheckpointResp{
		{OK: true, Version: 7, Tail: 0xdeadbeef},
		{OK: false, Err: "no checkpoint device configured"},
	} {
		out, err := DecodeCheckpointResp(EncodeCheckpointResp(in))
		if err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("checkpoint resp mismatch: %+v vs %+v", out, in)
		}
	}
	if _, err := DecodeCheckpointResp(req); err == nil {
		t.Fatal("decoded a request frame as a response")
	}
}

func TestSessionRecoverRoundTrip(t *testing.T) {
	f := func(sid uint64, known bool, lastSeq uint32) bool {
		req, err := DecodeSessionRecover(EncodeSessionRecover(SessionRecover{SessionID: sid}))
		if err != nil || req.SessionID != sid {
			return false
		}
		in := SessionRecoverResp{SessionID: sid, Known: known, LastSeq: lastSeq}
		out, err := DecodeSessionRecoverResp(EncodeSessionRecoverResp(in))
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if _, err := DecodeSessionRecover([]byte{byte(MsgSessionRecover)}); err == nil {
		t.Fatal("short session-recover frame accepted")
	}
	if _, err := DecodeSessionRecoverResp([]byte{byte(MsgSessionRecoverResp), 1}); err == nil {
		t.Fatal("short session-recover response accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	var rb RequestBatch
	if err := DecodeRequestBatch(nil, &rb); err == nil {
		t.Fatal("nil frame accepted")
	}
	if err := DecodeRequestBatch([]byte{byte(MsgResponseBatch)}, &rb); err == nil {
		t.Fatal("wrong type accepted")
	}
	// Truncated mid-op.
	full := AppendRequestBatch(nil, &RequestBatch{Ops: []Op{{Kind: OpRead, Key: []byte("abcdef")}}})
	for cut := 1; cut < len(full); cut++ {
		if err := DecodeRequestBatch(full[:cut], &rb); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeMigrationMsg([]byte{byte(MsgRequestBatch)}); err == nil {
		t.Fatal("request frame decoded as migration msg")
	}
	if _, err := PeekType(nil); err == nil {
		t.Fatal("empty peek accepted")
	}
}

func TestDecodeReusesOpSlice(t *testing.T) {
	frame := AppendRequestBatch(nil, &RequestBatch{
		Ops: []Op{{Kind: OpRead, Key: []byte("a")}, {Kind: OpRead, Key: []byte("b")}}})
	b := RequestBatch{Ops: make([]Op, 0, 16)}
	if err := DecodeRequestBatch(frame, &b); err != nil {
		t.Fatal(err)
	}
	if cap(b.Ops) != 16 {
		t.Fatal("decode reallocated a sufficient ops slice")
	}
}

func BenchmarkEncodeDecodeBatch(b *testing.B) {
	ops := make([]Op, 64)
	for i := range ops {
		ops[i] = Op{Kind: OpRMW, Seq: uint32(i), Key: []byte("key-12345678"),
			Value: []byte("delta678")}
	}
	in := RequestBatch{View: 3, SessionID: 1, Ops: ops}
	var frame []byte
	var out RequestBatch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame = AppendRequestBatch(frame[:0], &in)
		if err := DecodeRequestBatch(frame, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	req := EncodeStatsReq()
	if typ, err := PeekType(req); err != nil || typ != MsgStats {
		t.Fatalf("stats req type: %v %v", typ, err)
	}
	for _, in := range []StatsResp{
		{ServerID: "server-1", ViewNumber: 12,
			Ranges:       []Range{{Start: 0, End: 1 << 40}, {Start: 1 << 41, End: ^uint64(0)}},
			OpsCompleted: 123456, BatchesAccepted: 2000, BatchesRejected: 3,
			DecodeErrors: 1, PendingOps: -2, RemoteFetches: 9, ViewRefreshes: 4,
			Checkpoints: 5, CheckpointFailures: 1,
			Compactions: 7, CompactionFailures: 2, CompactRelocated: 88,
			CompactReclaimedBytes: 1 << 30, StorePendingReads: 42,
			BatchesShed:      6,
			PendingCoalesced: 17, ReadCacheHits: 99, ReadCacheCopies: 31,
			DeviceBatchReads: 11},
		{}, // zero value (no id, no ranges) must survive too
	} {
		out, err := DecodeStatsResp(EncodeStatsResp(in))
		if err != nil {
			t.Fatal(err)
		}
		if out.ServerID != in.ServerID || out.ViewNumber != in.ViewNumber ||
			len(out.Ranges) != len(in.Ranges) || out.PendingOps != in.PendingOps ||
			out.OpsCompleted != in.OpsCompleted ||
			out.CompactReclaimedBytes != in.CompactReclaimedBytes ||
			out.StorePendingReads != in.StorePendingReads ||
			out.BatchesShed != in.BatchesShed ||
			out.PendingCoalesced != in.PendingCoalesced ||
			out.ReadCacheHits != in.ReadCacheHits ||
			out.ReadCacheCopies != in.ReadCacheCopies ||
			out.DeviceBatchReads != in.DeviceBatchReads {
			t.Fatalf("stats resp mismatch: %+v vs %+v", out, in)
		}
		for i := range in.Ranges {
			if out.Ranges[i] != in.Ranges[i] {
				t.Fatalf("range %d mismatch: %+v vs %+v", i, out.Ranges[i], in.Ranges[i])
			}
		}
	}
	if _, err := DecodeStatsResp(req); err == nil {
		t.Fatal("decoded a request frame as a response")
	}

	// Backward compatibility: a frame from an older server ends before the
	// tail-appended counters; they must decode as zero, not as an error.
	full := EncodeStatsResp(StatsResp{ServerID: "old", PendingCoalesced: 7,
		ReadCacheHits: 8, ReadCacheCopies: 9, DeviceBatchReads: 10, BatchesShed: 11})
	old := full[:len(full)-5*8] // strip BatchesShed + the four PR-8 counters
	out, err := DecodeStatsResp(old)
	if err != nil {
		t.Fatalf("old frame rejected: %v", err)
	}
	if out.ServerID != "old" || out.BatchesShed != 0 || out.PendingCoalesced != 0 ||
		out.ReadCacheHits != 0 || out.ReadCacheCopies != 0 || out.DeviceBatchReads != 0 {
		t.Fatalf("old frame mis-decoded: %+v", out)
	}

	// Count guard: an absurd range count must be rejected before allocation.
	huge := []byte{byte(MsgStatsResp)}
	huge = appendU16(huge, 2)
	huge = append(huge, 's', '1')
	huge = appendU64(huge, 1) // view number
	huge = appendU32(huge, 0xFFFFFFFF)
	if _, err := DecodeStatsResp(huge); err == nil {
		t.Fatal("stats resp with absurd range count accepted")
	}
}
