package wire

import (
	"bytes"
	"testing"
)

// fuzzSeeds returns one valid encoding of every frame type, so the fuzzer
// starts from the real format instead of rediscovering it byte by byte.
func fuzzSeeds() [][]byte {
	req := AppendRequestBatch(nil, &RequestBatch{
		View: 3, SessionID: 9,
		Ops: []Op{
			{Kind: OpRead, Seq: 1, Key: []byte("key")},
			{Kind: OpUpsert, Seq: 2, Key: []byte("key"), Value: []byte("value")},
			{Kind: OpRMW, Seq: 3, Key: []byte("ctr"), Value: []byte("12345678")},
			{Kind: OpDelete, Seq: 4, Key: []byte("gone")},
		},
	})
	resp := AppendResponseBatch(nil, &ResponseBatch{
		SessionID: 9, ServerView: 3,
		Results: []Result{
			{Seq: 1, Status: StatusOK, Value: []byte("value")},
			{Seq: 2, Status: StatusNotFound},
		},
	})
	rej := AppendResponseBatch(nil, &ResponseBatch{SessionID: 9, Rejected: true, ServerView: 4})
	mig := EncodeMigrationMsg(&MigrationMsg{
		Type: MsgMigrationRecords, MigrationID: 7, SourceID: "s1",
		RangeStart: 100, RangeEnd: 900, ViewNumber: 2, Final: true,
		Records: []MigrationRecord{
			{Hash: 150, Key: []byte("k"), Value: []byte("v")},
			{Hash: 151, Flags: RecFlagTombstone, Key: []byte("dead")},
			{Hash: 152, Flags: RecFlagIndirection, Value: []byte("payload")},
		},
	})
	compacted := EncodeMigrationMsg(&MigrationMsg{
		Type: MsgCompacted, SourceID: "s2", RangeStart: 1, RangeEnd: 2,
		Records: []MigrationRecord{{Hash: 1, Key: []byte("relocated"), Value: []byte("v")}},
	})
	// The migration handshake frames carry no records but still cross the
	// wire; seed each so the fuzzer mutates real handshakes too.
	prep := EncodeMigrationMsg(&MigrationMsg{
		Type: MsgPrepForTransfer, MigrationID: 7, SourceID: "s1",
		RangeStart: 100, RangeEnd: 900,
	})
	xfer := EncodeMigrationMsg(&MigrationMsg{
		Type: MsgTransferOwnership, MigrationID: 7, SourceID: "s1",
		RangeStart: 100, RangeEnd: 900, ViewNumber: 5,
	})
	complete := EncodeMigrationMsg(&MigrationMsg{
		Type: MsgCompleteMigration, MigrationID: 7, SourceID: "s1",
		RangeStart: 100, RangeEnd: 900,
	})
	ack := EncodeMigrationMsg(&MigrationMsg{Type: MsgAck, MigrationID: 7, SourceID: "s2"})
	metaSnap := EncodeMetaReq(&MetaReq{Op: MetaOpSnapshot})
	metaStart := EncodeMetaReq(&MetaReq{
		Op: MetaOpStartMigration, ServerID: "s1", Target: "s2",
		RangeStart: 1 << 62, RangeEnd: 1 << 63,
	})
	metaRestore := EncodeMetaReq(&MetaReq{
		Op: MetaOpRestore, ServerID: "s1", ViewNumber: 7,
		Ranges: []Range{{Start: 0, End: 1 << 62}},
	})
	metaResp := EncodeMetaResp(&MetaResp{
		OK: true, Revision: 42,
		MigValid: true,
		Migration: MetaMigration{ID: 3, Epoch: 7, Source: "s1", Target: "s2",
			RangeStart: 100, RangeEnd: 900, SourceDone: true},
		Servers: []MetaServer{
			{ID: "s1", Addr: "127.0.0.1:7777", ViewNumber: 4,
				Ranges: []Range{{Start: 0, End: 1 << 62}}},
			{ID: "s2", ViewNumber: 2},
		},
		Migrations: []MetaMigration{
			{ID: 3, Epoch: 7, Source: "s1", Target: "s2", RangeStart: 100, RangeEnd: 900},
			{ID: 4, Epoch: 8, Source: "s2", Target: "s1", RangeStart: 2000, RangeEnd: 3000},
		},
	})
	metaErrResp := EncodeMetaResp(&MetaResp{
		ErrCode: MetaErrUnknownServer, Err: "metadata: unknown server",
	})
	balStatus := EncodeBalanceStatusResp(&BalanceStatusResp{
		Enabled: true, Passes: 12, Triggered: 1, CooldownMs: 9500,
		Last: RebalanceResp{OK: true, Acted: true, Source: "s1", Target: "s2",
			RangeStart: 1 << 62, RangeEnd: ^uint64(0), Reason: "split at load median"},
		Rates: []ServerRate{{ID: "s1", MilliOps: 1_200_000}, {ID: "s2", MilliOps: 45_000}},
		InFlight: []MetaMigration{
			{ID: 5, Epoch: 11, Source: "s1", Target: "s2", RangeStart: 1 << 62, RangeEnd: 1 << 63},
			{ID: 6, Epoch: 12, Source: "s3", Target: "s4", RangeStart: 0, RangeEnd: 1 << 60, SourceDone: true},
		},
	})
	replBatch := EncodeReplBatch(&ReplBatch{Seq: 12, Batch: req})
	replRecs := EncodeReplRecords(&ReplRecords{
		Seq: 2,
		Records: []MigrationRecord{
			{Hash: 150, Key: []byte("k"), Value: []byte("v")},
			{Hash: 151, Flags: RecFlagTombstone, Key: []byte("dead")},
		},
	})
	replSess := EncodeReplSessTab(&ReplSessTab{
		Seq: 3, Sealed: 5,
		Sessions: []ReplSession{{ID: 9, LastSeq: 44}, {ID: 10, LastSeq: 0}},
	})
	return [][]byte{
		req, resp, rej, mig, compacted, prep, xfer, complete, ack,
		EncodeReplAttach(ReplAttach{PrimaryID: "s1", ReplicaAddr: "127.0.0.1:8888",
			HeartbeatMs: 100, AckTimeoutMs: 2000}),
		EncodeReplAttachResp(ReplAttachResp{OK: true}),
		EncodeReplAttachResp(ReplAttachResp{Err: "already replicated"}),
		EncodeReplBaseBegin(ReplBaseBegin{Seq: 1, Sealed: 5, CutTail: 0x40000}),
		replRecs, replSess,
		EncodeReplBaseDone(ReplBaseDone{Seq: 4, SkippedIndirections: 2}),
		replBatch,
		EncodeReplAck(ReplAck{Seq: 12}),
		EncodeReplHeartbeat(ReplHeartbeat{Seq: 12}),
		EncodeDrainReq(),
		EncodeDrainResp(DrainResp{OK: true, Retired: true, Moved: 3}),
		EncodeDrainResp(DrainResp{Err: "would leave 2 range(s) unowned"}),
		EncodeMigrate(MigrateCmd{Target: "s2", RangeStart: 10, RangeEnd: 20}),
		EncodeCheckpointReq(),
		EncodeCheckpointResp(CheckpointResp{OK: true, Version: 5, Tail: 0x10000}),
		EncodeCheckpointResp(CheckpointResp{Err: "boom"}),
		EncodeCompactReq(),
		EncodeCompactResp(CompactResp{OK: true, Scanned: 100, Kept: 40, Dropped: 50,
			Relocated: 10, Begin: 0x20000, ReclaimedBytes: 1 << 20, TierReclaimed: 1 << 20}),
		EncodeSessionRecover(SessionRecover{SessionID: 9}),
		EncodeSessionRecoverResp(SessionRecoverResp{SessionID: 9, Known: true, LastSeq: 44}),
		EncodeStatsReq(),
		EncodeStatsResp(StatsResp{
			ServerID: "s1", ViewNumber: 3,
			Ranges:       []Range{{Start: 0, End: 1 << 62}, {Start: 1 << 63, End: ^uint64(0)}},
			OpsCompleted: 1000, BatchesAccepted: 10, BatchesRejected: 1,
			PendingOps: 5, Checkpoints: 2, CompactReclaimedBytes: 1 << 20,
			LogBytes: 1 << 24, BalancePasses: 12, BalanceMigrations: 1,
			HashSample: []uint64{1 << 10, 1 << 40, ^uint64(0)},
		}),
		metaSnap, metaStart, metaRestore, metaResp, metaErrResp,
		EncodeRebalanceReq(),
		EncodeRebalanceResp(RebalanceResp{OK: true, Acted: true, Source: "s1",
			Target: "s2", RangeStart: 1 << 62, RangeEnd: ^uint64(0),
			Reason: "s1 hot"}),
		EncodeRebalanceResp(RebalanceResp{Err: "balancer not enabled"}),
		EncodeBalanceStatusReq(),
		balStatus,
	}
}

// FuzzDecode throws arbitrary bytes at every decoder. The decoders must
// never panic or over-allocate — they face frames straight off the network —
// and any frame that does decode must survive a re-encode/re-decode round
// trip (no state smuggled outside the format).
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	// Adversarial seeds: truncations of the replication stream frames, so
	// the fuzzer starts at the short-frame edges a dropped connection or
	// corrupted length field produces mid-failover.
	for _, frame := range replStreamFrames() {
		for _, n := range []int{1, len(frame) / 2, len(frame) - 1} {
			if n > 0 && n < len(frame) {
				f.Add(append([]byte(nil), frame[:n]...))
			}
		}
	}
	f.Fuzz(func(t *testing.T, buf []byte) {
		if _, err := PeekType(buf); err != nil {
			if len(buf) != 0 {
				t.Fatalf("PeekType rejected non-empty frame: %v", err)
			}
			return
		}
		var rb RequestBatch
		if err := DecodeRequestBatch(buf, &rb); err == nil {
			re := AppendRequestBatch(nil, &rb)
			var rb2 RequestBatch
			if err := DecodeRequestBatch(re, &rb2); err != nil {
				t.Fatalf("re-decode of re-encoded request batch failed: %v", err)
			}
		}
		var resp ResponseBatch
		if err := DecodeResponseBatch(buf, &resp); err == nil {
			re := AppendResponseBatch(nil, &resp)
			var resp2 ResponseBatch
			if err := DecodeResponseBatch(re, &resp2); err != nil {
				t.Fatalf("re-decode of re-encoded response batch failed: %v", err)
			}
		}
		if m, err := DecodeMigrationMsg(buf); err == nil {
			re := EncodeMigrationMsg(&m)
			if m2, err := DecodeMigrationMsg(re); err != nil || m2.Type != m.Type {
				t.Fatalf("migration msg round trip: %v", err)
			}
		}
		if c, err := DecodeMigrate(buf); err == nil {
			if c2, err := DecodeMigrate(EncodeMigrate(c)); err != nil || c2 != c {
				t.Fatalf("migrate cmd round trip: %v", err)
			}
		}
		if r, err := DecodeCheckpointResp(buf); err == nil {
			if r2, err := DecodeCheckpointResp(EncodeCheckpointResp(r)); err != nil || r2 != r {
				t.Fatalf("checkpoint resp round trip: %v", err)
			}
		}
		if r, err := DecodeCompactResp(buf); err == nil {
			if r2, err := DecodeCompactResp(EncodeCompactResp(r)); err != nil || r2 != r {
				t.Fatalf("compact resp round trip: %v", err)
			}
		}
		if r, err := DecodeSessionRecover(buf); err == nil {
			if r2, err := DecodeSessionRecover(EncodeSessionRecover(r)); err != nil || r2 != r {
				t.Fatalf("session recover round trip: %v", err)
			}
		}
		if r, err := DecodeSessionRecoverResp(buf); err == nil {
			if r2, err := DecodeSessionRecoverResp(EncodeSessionRecoverResp(r)); err != nil || r2 != r {
				t.Fatalf("session recover resp round trip: %v", err)
			}
		}
		if r, err := DecodeStatsResp(buf); err == nil {
			// StatsResp holds a slice, so compare via canonical re-encoding:
			// the re-decoded value must re-encode to the same bytes.
			re := EncodeStatsResp(r)
			r2, err := DecodeStatsResp(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded stats resp failed: %v", err)
			}
			if !bytes.Equal(EncodeStatsResp(r2), re) {
				t.Fatal("stats resp round trip not canonical")
			}
		}
		if r, err := DecodeMetaReq(buf); err == nil {
			re := EncodeMetaReq(&r)
			r2, err := DecodeMetaReq(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded meta req failed: %v", err)
			}
			if !bytes.Equal(EncodeMetaReq(&r2), re) {
				t.Fatal("meta req round trip not canonical")
			}
		}
		if r, err := DecodeMetaResp(buf); err == nil {
			re := EncodeMetaResp(&r)
			r2, err := DecodeMetaResp(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded meta resp failed: %v", err)
			}
			if !bytes.Equal(EncodeMetaResp(&r2), re) {
				t.Fatal("meta resp round trip not canonical")
			}
		}
		if r, err := DecodeRebalanceResp(buf); err == nil {
			if r2, err := DecodeRebalanceResp(EncodeRebalanceResp(r)); err != nil || r2 != r {
				t.Fatalf("rebalance resp round trip: %v", err)
			}
		}
		if r, err := DecodeBalanceStatusResp(buf); err == nil {
			re := EncodeBalanceStatusResp(&r)
			r2, err := DecodeBalanceStatusResp(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded balance status failed: %v", err)
			}
			if !bytes.Equal(EncodeBalanceStatusResp(&r2), re) {
				t.Fatal("balance status round trip not canonical")
			}
		}
		if r, err := DecodeReplAttach(buf); err == nil {
			if r2, err := DecodeReplAttach(EncodeReplAttach(r)); err != nil || r2 != r {
				t.Fatalf("repl attach round trip: %v", err)
			}
		}
		if r, err := DecodeReplAttachResp(buf); err == nil {
			if r2, err := DecodeReplAttachResp(EncodeReplAttachResp(r)); err != nil || r2 != r {
				t.Fatalf("repl attach resp round trip: %v", err)
			}
		}
		if r, err := DecodeReplBaseBegin(buf); err == nil {
			if r2, err := DecodeReplBaseBegin(EncodeReplBaseBegin(r)); err != nil || r2 != r {
				t.Fatalf("repl base begin round trip: %v", err)
			}
		}
		if r, err := DecodeReplRecords(buf); err == nil {
			re := EncodeReplRecords(&r)
			r2, err := DecodeReplRecords(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded repl records failed: %v", err)
			}
			if !bytes.Equal(EncodeReplRecords(&r2), re) {
				t.Fatal("repl records round trip not canonical")
			}
		}
		if r, err := DecodeReplSessTab(buf); err == nil {
			re := EncodeReplSessTab(&r)
			r2, err := DecodeReplSessTab(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded repl sess tab failed: %v", err)
			}
			if !bytes.Equal(EncodeReplSessTab(&r2), re) {
				t.Fatal("repl sess tab round trip not canonical")
			}
		}
		if r, err := DecodeReplBaseDone(buf); err == nil {
			if r2, err := DecodeReplBaseDone(EncodeReplBaseDone(r)); err != nil || r2 != r {
				t.Fatalf("repl base done round trip: %v", err)
			}
		}
		if r, err := DecodeReplBatch(buf); err == nil {
			re := EncodeReplBatch(&r)
			r2, err := DecodeReplBatch(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded repl batch failed: %v", err)
			}
			if !bytes.Equal(EncodeReplBatch(&r2), re) {
				t.Fatal("repl batch round trip not canonical")
			}
		}
		if r, err := DecodeReplAck(buf); err == nil {
			if r2, err := DecodeReplAck(EncodeReplAck(r)); err != nil || r2 != r {
				t.Fatalf("repl ack round trip: %v", err)
			}
		}
		if r, err := DecodeReplHeartbeat(buf); err == nil {
			if r2, err := DecodeReplHeartbeat(EncodeReplHeartbeat(r)); err != nil || r2 != r {
				t.Fatalf("repl heartbeat round trip: %v", err)
			}
		}
		if r, err := DecodeDrainResp(buf); err == nil {
			if r2, err := DecodeDrainResp(EncodeDrainResp(r)); err != nil || r2 != r {
				t.Fatalf("drain resp round trip: %v", err)
			}
		}
	})
}

func TestCompactRoundTrip(t *testing.T) {
	req := EncodeCompactReq()
	if typ, err := PeekType(req); err != nil || typ != MsgCompact {
		t.Fatalf("compact req type: %v %v", typ, err)
	}
	for _, in := range []CompactResp{
		{OK: true, Scanned: 1000, Kept: 200, Dropped: 700, Relocated: 100,
			Begin: 0x40000, ReclaimedBytes: 2 << 20, TierReclaimed: 1 << 20},
		{OK: false, Err: "compaction already running"},
	} {
		out, err := DecodeCompactResp(EncodeCompactResp(in))
		if err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("compact resp mismatch: %+v vs %+v", out, in)
		}
	}
	if _, err := DecodeCompactResp(req); err == nil {
		t.Fatal("decoded a request frame as a response")
	}
}

// TestDecodeCountGuards locks in the allocation guards: a frame whose count
// field claims more elements than the frame could possibly hold must be
// rejected before any slice allocation (OOM defense for network input).
func TestDecodeCountGuards(t *testing.T) {
	huge := []byte{byte(MsgRequestBatch)}
	huge = appendU64(huge, 1) // view
	huge = appendU64(huge, 1) // session
	huge = appendU32(huge, 0xFFFFFFFF)
	var rb RequestBatch
	if err := DecodeRequestBatch(huge, &rb); err == nil {
		t.Fatal("request batch with absurd op count accepted")
	}

	hr := []byte{byte(MsgResponseBatch)}
	hr = appendU64(hr, 1) // session
	hr = append(hr, 0)    // not rejected
	hr = appendU64(hr, 1) // server view
	hr = appendU32(hr, 0xFFFFFFFF)
	var resp ResponseBatch
	if err := DecodeResponseBatch(hr, &resp); err == nil {
		t.Fatal("response batch with absurd result count accepted")
	}

	hm := []byte{byte(MsgMigrationRecords)}
	hm = appendU64(hm, 1)          // migration id
	hm = append(hm, 2, 's', '1')   // source id
	hm = appendU64(hm, 0)          // range start
	hm = appendU64(hm, 100)        // range end
	hm = appendU64(hm, 1)          // view number
	hm = append(hm, 0)             // final
	hm = appendU32(hm, 0xFFFFFFFF) // record count
	if _, err := DecodeMigrationMsg(hm); err == nil {
		t.Fatal("migration msg with absurd record count accepted")
	}

	// MsgMetaReq: an absurd range count must be rejected before allocation.
	hq := EncodeMetaReq(&MetaReq{Op: MetaOpRegister, ServerID: "s1"})
	hq = hq[:len(hq)-4] // strip the honest zero range count
	hq = appendU32(hq, 0xFFFFFFFF)
	if _, err := DecodeMetaReq(hq); err == nil {
		t.Fatal("meta req with absurd range count accepted")
	}

	// MsgMetaResp: absurd server, migration and promoted counts. The empty
	// frame ends with four zero counts (servers, migrations, replicas,
	// promoted), 4 bytes each.
	base := EncodeMetaResp(&MetaResp{OK: true})
	hsrv := append([]byte(nil), base[:len(base)-16]...) // at the server count
	hsrv = appendU32(hsrv, 0xFFFFFFFF)
	if _, err := DecodeMetaResp(hsrv); err == nil {
		t.Fatal("meta resp with absurd server count accepted")
	}
	hmig := append([]byte(nil), base[:len(base)-12]...) // at the migration count
	hmig = appendU32(hmig, 0xFFFFFFFF)
	if _, err := DecodeMetaResp(hmig); err == nil {
		t.Fatal("meta resp with absurd migration count accepted")
	}
	hprom := append([]byte(nil), base[:len(base)-4]...) // at the promoted count
	hprom = appendU32(hprom, 0xFFFFFFFF)
	if _, err := DecodeMetaResp(hprom); err == nil {
		t.Fatal("meta resp with absurd promoted count accepted")
	}

	// MsgStatsResp: absurd hash-sample count. The empty frame ends with
	// [sample count u32][BatchesShed u64][4 cold-read counter u64s]; strip
	// all five u64s and the count to sit at the count.
	hs := EncodeStatsResp(StatsResp{ServerID: "s1"})
	hs = hs[:len(hs)-44]
	hs = appendU32(hs, 0xFFFFFFFF)
	if _, err := DecodeStatsResp(hs); err == nil {
		t.Fatal("stats resp with absurd sample count accepted")
	}

	// MsgBalanceStatusResp: absurd rate and in-flight migration counts. The
	// empty frame ends with [rate count u32][in-flight count u32]
	// [degraded-ms u64].
	bb := EncodeBalanceStatusResp(&BalanceStatusResp{Enabled: true})
	hb := append([]byte(nil), bb[:len(bb)-16]...) // at the rate count
	hb = appendU32(hb, 0xFFFFFFFF)
	if _, err := DecodeBalanceStatusResp(hb); err == nil {
		t.Fatal("balance status resp with absurd rate count accepted")
	}
	hf := append([]byte(nil), bb[:len(bb)-12]...) // at the in-flight count
	hf = appendU32(hf, 0xFFFFFFFF)
	if _, err := DecodeBalanceStatusResp(hf); err == nil {
		t.Fatal("balance status resp with absurd in-flight count accepted")
	}

	// MsgReplRecords: absurd record count (each record needs ≥15 bytes).
	rr := []byte{byte(MsgReplRecords)}
	rr = appendU64(rr, 1) // seq
	rr = appendU32(rr, 0xFFFFFFFF)
	if _, err := DecodeReplRecords(rr); err == nil {
		t.Fatal("repl records with absurd record count accepted")
	}

	// MsgReplSessTab: absurd session count (each entry is 12 bytes).
	rs := []byte{byte(MsgReplSessTab)}
	rs = appendU64(rs, 1) // seq
	rs = appendU32(rs, 0) // sealed
	rs = appendU32(rs, 0xFFFFFFFF)
	if _, err := DecodeReplSessTab(rs); err == nil {
		t.Fatal("repl sess tab with absurd session count accepted")
	}
}

// TestFuzzSeedsDecode keeps the seed corpus honest: every seed must decode
// through its own decoder (a seed that no longer parses would silently
// degrade the fuzzer to random bytes).
func TestFuzzSeedsDecode(t *testing.T) {
	for i, seed := range fuzzSeeds() {
		typ, err := PeekType(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		var ok bool
		switch typ {
		case MsgRequestBatch:
			var rb RequestBatch
			ok = DecodeRequestBatch(seed, &rb) == nil
		case MsgResponseBatch:
			var r ResponseBatch
			ok = DecodeResponseBatch(seed, &r) == nil
		case MsgMigrate:
			_, err := DecodeMigrate(seed)
			ok = err == nil
		case MsgPrepForTransfer, MsgTransferOwnership, MsgMigrationRecords,
			MsgCompleteMigration, MsgAck, MsgCompacted:
			m, err := DecodeMigrationMsg(seed)
			ok = err == nil && bytes.Equal(EncodeMigrationMsg(&m), seed)
		case MsgCheckpoint, MsgCompact, MsgStats, MsgSessionRecover:
			ok = true // bare request frames
			if typ == MsgSessionRecover {
				_, err := DecodeSessionRecover(seed)
				ok = err == nil
			}
		case MsgCheckpointResp:
			_, err := DecodeCheckpointResp(seed)
			ok = err == nil
		case MsgCompactResp:
			_, err := DecodeCompactResp(seed)
			ok = err == nil
		case MsgSessionRecoverResp:
			_, err := DecodeSessionRecoverResp(seed)
			ok = err == nil
		case MsgStatsResp:
			r, err := DecodeStatsResp(seed)
			ok = err == nil && bytes.Equal(EncodeStatsResp(r), seed)
		case MsgMetaReq:
			r, err := DecodeMetaReq(seed)
			ok = err == nil && bytes.Equal(EncodeMetaReq(&r), seed)
		case MsgMetaResp:
			r, err := DecodeMetaResp(seed)
			ok = err == nil && bytes.Equal(EncodeMetaResp(&r), seed)
		case MsgRebalance, MsgBalanceStatus:
			ok = true // bare request frames
		case MsgRebalanceResp:
			r, err := DecodeRebalanceResp(seed)
			ok = err == nil && bytes.Equal(EncodeRebalanceResp(r), seed)
		case MsgBalanceStatusResp:
			r, err := DecodeBalanceStatusResp(seed)
			ok = err == nil && bytes.Equal(EncodeBalanceStatusResp(&r), seed)
		case MsgReplAttach:
			r, err := DecodeReplAttach(seed)
			ok = err == nil && bytes.Equal(EncodeReplAttach(r), seed)
		case MsgReplAttachResp:
			r, err := DecodeReplAttachResp(seed)
			ok = err == nil && bytes.Equal(EncodeReplAttachResp(r), seed)
		case MsgReplBaseBegin:
			r, err := DecodeReplBaseBegin(seed)
			ok = err == nil && bytes.Equal(EncodeReplBaseBegin(r), seed)
		case MsgReplRecords:
			r, err := DecodeReplRecords(seed)
			ok = err == nil && bytes.Equal(EncodeReplRecords(&r), seed)
		case MsgReplSessTab:
			r, err := DecodeReplSessTab(seed)
			ok = err == nil && bytes.Equal(EncodeReplSessTab(&r), seed)
		case MsgReplBaseDone:
			r, err := DecodeReplBaseDone(seed)
			ok = err == nil && bytes.Equal(EncodeReplBaseDone(r), seed)
		case MsgReplBatch:
			r, err := DecodeReplBatch(seed)
			ok = err == nil && bytes.Equal(EncodeReplBatch(&r), seed)
		case MsgReplAck:
			r, err := DecodeReplAck(seed)
			ok = err == nil && bytes.Equal(EncodeReplAck(r), seed)
		case MsgReplHeartbeat:
			r, err := DecodeReplHeartbeat(seed)
			ok = err == nil && bytes.Equal(EncodeReplHeartbeat(r), seed)
		case MsgDrain:
			ok = true // bare request frame
		case MsgDrainResp:
			r, err := DecodeDrainResp(seed)
			ok = err == nil && bytes.Equal(EncodeDrainResp(r), seed)
		}
		if !ok {
			t.Fatalf("seed %d (type %d) does not decode", i, typ)
		}
	}
}
