package wire

import "fmt"

// Control-plane frames for the elastic metadata service and the load
// balancer. A designated metadata endpoint (any server backed by the local
// in-process metadata store) serves MsgMetaReq so out-of-process servers,
// clients and the CLI all observe the same live ownership views; MsgRebalance
// and MsgBalanceStatus drive and inspect the automatic scale-out balancer.

// Additional frame types (continuing the MsgType enum in wire.go).
const (
	// MsgMetaReq is a metadata-service request: one read (snapshot) or one
	// linearizable mutation against the designated metadata endpoint.
	MsgMetaReq MsgType = iota + 18
	// MsgMetaResp answers MsgMetaReq; every response carries a full snapshot
	// so the caller's cache is refreshed by any round trip.
	MsgMetaResp
	// MsgRebalance asks a balancer-enabled server to run one planning pass
	// now (admin).
	MsgRebalance
	// MsgRebalanceResp reports the pass's decision.
	MsgRebalanceResp
	// MsgBalanceStatus asks a server for its balancer status (admin).
	MsgBalanceStatus
	// MsgBalanceStatusResp answers MsgBalanceStatus.
	MsgBalanceStatusResp
)

// MetaOp selects the metadata-service operation inside a MsgMetaReq.
type MetaOp uint8

// Metadata-service operations. Each maps 1:1 onto a metadata.Provider
// method; MetaOpSnapshot is the pure read the remote provider polls with.
const (
	MetaOpSnapshot MetaOp = iota + 1
	MetaOpSetAddr
	MetaOpRegister
	MetaOpRestore
	MetaOpStartMigration
	MetaOpMarkDone
	MetaOpCancel
	MetaOpCollect
	// Replication + scale-in ops (appended; earlier values stay stable).
	// ServerID names the primary, Addr the backup's transport address.
	MetaOpSetReplica
	MetaOpReplicaSynced
	MetaOpClearReplica
	MetaOpPromote
	MetaOpRetire
	// MetaOpKeepAlive renews (or, with a zero TTL, releases) the primary
	// liveness lease that fences promotion during partitions (appended).
	// ServerID names the server, Addr the renewing holder, MigrationID
	// carries the TTL in milliseconds (the union pattern above).
	MetaOpKeepAlive
)

// MetaErr is a machine-readable error class inside a MsgMetaResp, so the
// remote provider can surface the metadata package's sentinel errors across
// the wire.
type MetaErr uint8

// Metadata-service error classes.
const (
	MetaErrNone MetaErr = iota
	MetaErrUnknownServer
	MetaErrNotOwner
	MetaErrOverlap
	MetaErrUnknownMigration
	MetaErrMigrationDone
	MetaErrOther
	// MetaErrMigrationOverlap rejects a StartMigration whose range overlaps
	// a migration still in flight (appended after MetaErrOther so existing
	// class values stay stable).
	MetaErrMigrationOverlap
	// Replication error classes (appended).
	MetaErrDeposed
	MetaErrReplicated
	MetaErrNoReplica
	MetaErrReplicaNotSynced
	MetaErrServerNotEmpty
	// MetaErrPrimaryAlive refuses a promotion fenced by an unexpired primary
	// liveness lease (appended).
	MetaErrPrimaryAlive
)

// MetaReq is one metadata-service call. Fields are a union over the ops:
// ServerID/Addr/Ranges for registration, ServerID/Target/RangeStart/End for
// StartMigration, MigrationID/ServerID for migration-state transitions,
// ViewNumber/Ranges for Restore.
type MetaReq struct {
	Op          MetaOp
	ServerID    string
	Target      string
	Addr        string
	MigrationID uint64
	ViewNumber  uint64
	RangeStart  uint64
	RangeEnd    uint64
	Ranges      []Range
}

// MetaServer is one server's entry in a metadata snapshot.
type MetaServer struct {
	ID         string
	Addr       string
	ViewNumber uint64
	Ranges     []Range
}

// MetaMigration is one uncollected migration's record in a snapshot.
type MetaMigration struct {
	ID             uint64
	Epoch          uint64
	Source, Target string
	RangeStart     uint64
	RangeEnd       uint64
	SourceDone     bool
	TargetDone     bool
	Cancelled      bool
}

// MetaReplica is one attached backup's entry in a metadata snapshot.
type MetaReplica struct {
	PrimaryID string
	Addr      string
	Synced    bool
}

// MetaResp answers a MetaReq. OK/ErrCode/Err report the mutation's outcome;
// Migration carries the record StartMigration created (MigValid set); the
// snapshot (Revision, Servers, Migrations, Replicas) rides on every response
// so one round trip always refreshes the caller's whole cache.
type MetaResp struct {
	OK      bool
	ErrCode MetaErr
	Err     string

	MigValid  bool
	Migration MetaMigration

	Revision   uint64
	Servers    []MetaServer
	Migrations []MetaMigration
	Replicas   []MetaReplica
	// Promoted lists server ids whose replica was promoted and whose deposed
	// former primary has not restarted (tail-appended to the frame; the
	// balancer's re-replication pass consumes it).
	Promoted []string
}

// EncodeMetaReq builds a MsgMetaReq frame.
func EncodeMetaReq(r *MetaReq) []byte {
	dst := []byte{byte(MsgMetaReq), byte(r.Op)}
	dst = appendString(dst, r.ServerID)
	dst = appendString(dst, r.Target)
	dst = appendString(dst, r.Addr)
	dst = appendU64(dst, r.MigrationID)
	dst = appendU64(dst, r.ViewNumber)
	dst = appendU64(dst, r.RangeStart)
	dst = appendU64(dst, r.RangeEnd)
	dst = appendU32(dst, uint32(len(r.Ranges)))
	for _, rng := range r.Ranges {
		dst = appendU64(dst, rng.Start)
		dst = appendU64(dst, rng.End)
	}
	return dst
}

// DecodeMetaReq parses a MsgMetaReq frame.
func DecodeMetaReq(buf []byte) (MetaReq, error) {
	d := decoder{buf: buf}
	var r MetaReq
	if t, err := d.u8(); err != nil || MsgType(t) != MsgMetaReq {
		return r, fmt.Errorf("%w: meta req", ErrBadType)
	}
	op, err := d.u8()
	if err != nil {
		return r, err
	}
	r.Op = MetaOp(op)
	if r.ServerID, err = d.str(); err != nil {
		return r, err
	}
	if r.Target, err = d.str(); err != nil {
		return r, err
	}
	if r.Addr, err = d.str(); err != nil {
		return r, err
	}
	for _, p := range []*uint64{&r.MigrationID, &r.ViewNumber, &r.RangeStart, &r.RangeEnd} {
		if *p, err = d.u64(); err != nil {
			return r, err
		}
	}
	if r.Ranges, err = decodeRanges(&d); err != nil {
		return r, err
	}
	return r, nil
}

// appendMetaMigration encodes one migration record (shared by the Migration
// field and the Migrations list).
func appendMetaMigration(dst []byte, m *MetaMigration) []byte {
	dst = appendU64(dst, m.ID)
	dst = appendU64(dst, m.Epoch)
	var flags uint8
	if m.SourceDone {
		flags |= 1
	}
	if m.TargetDone {
		flags |= 2
	}
	if m.Cancelled {
		flags |= 4
	}
	dst = append(dst, flags)
	dst = appendU64(dst, m.RangeStart)
	dst = appendU64(dst, m.RangeEnd)
	dst = appendString(dst, m.Source)
	dst = appendString(dst, m.Target)
	return dst
}

// metaMigrationMinBytes is the smallest encoding of one migration record
// (id + epoch + flags + range + two empty strings); count-guard denominator.
const metaMigrationMinBytes = 8 + 8 + 1 + 8 + 8 + 2 + 2

func decodeMetaMigration(d *decoder) (MetaMigration, error) {
	var m MetaMigration
	var err error
	if m.ID, err = d.u64(); err != nil {
		return m, err
	}
	if m.Epoch, err = d.u64(); err != nil {
		return m, err
	}
	flags, err := d.u8()
	if err != nil {
		return m, err
	}
	m.SourceDone = flags&1 != 0
	m.TargetDone = flags&2 != 0
	m.Cancelled = flags&4 != 0
	if m.RangeStart, err = d.u64(); err != nil {
		return m, err
	}
	if m.RangeEnd, err = d.u64(); err != nil {
		return m, err
	}
	if m.Source, err = d.str(); err != nil {
		return m, err
	}
	if m.Target, err = d.str(); err != nil {
		return m, err
	}
	return m, nil
}

// EncodeMetaResp builds a MsgMetaResp frame.
func EncodeMetaResp(r *MetaResp) []byte {
	dst := []byte{byte(MsgMetaResp)}
	dst = appendBool(dst, r.OK)
	dst = append(dst, byte(r.ErrCode))
	dst = appendString(dst, r.Err)
	dst = appendBool(dst, r.MigValid)
	dst = appendMetaMigration(dst, &r.Migration)
	dst = appendU64(dst, r.Revision)
	dst = appendU32(dst, uint32(len(r.Servers)))
	for i := range r.Servers {
		s := &r.Servers[i]
		dst = appendString(dst, s.ID)
		dst = appendString(dst, s.Addr)
		dst = appendU64(dst, s.ViewNumber)
		dst = appendU32(dst, uint32(len(s.Ranges)))
		for _, rng := range s.Ranges {
			dst = appendU64(dst, rng.Start)
			dst = appendU64(dst, rng.End)
		}
	}
	dst = appendU32(dst, uint32(len(r.Migrations)))
	for i := range r.Migrations {
		dst = appendMetaMigration(dst, &r.Migrations[i])
	}
	dst = appendU32(dst, uint32(len(r.Replicas)))
	for i := range r.Replicas {
		dst = appendString(dst, r.Replicas[i].PrimaryID)
		dst = appendString(dst, r.Replicas[i].Addr)
		dst = appendBool(dst, r.Replicas[i].Synced)
	}
	dst = appendU32(dst, uint32(len(r.Promoted)))
	for _, id := range r.Promoted {
		dst = appendString(dst, id)
	}
	return dst
}

// DecodeMetaResp parses a MsgMetaResp frame.
func DecodeMetaResp(buf []byte) (MetaResp, error) {
	d := decoder{buf: buf}
	var r MetaResp
	if t, err := d.u8(); err != nil || MsgType(t) != MsgMetaResp {
		return r, fmt.Errorf("%w: meta resp", ErrBadType)
	}
	var err error
	if r.OK, err = d.bool(); err != nil {
		return r, err
	}
	ec, err := d.u8()
	if err != nil {
		return r, err
	}
	r.ErrCode = MetaErr(ec)
	if r.Err, err = d.str(); err != nil {
		return r, err
	}
	if r.MigValid, err = d.bool(); err != nil {
		return r, err
	}
	if r.Migration, err = decodeMetaMigration(&d); err != nil {
		return r, err
	}
	if r.Revision, err = d.u64(); err != nil {
		return r, err
	}
	nsrv, err := d.u32()
	if err != nil {
		return r, err
	}
	// Each server entry encodes to at least 16 bytes (two empty strings +
	// view number + range count); a count the remaining frame cannot hold is
	// a corrupt or hostile frame, not an allocation request.
	if uint64(nsrv) > uint64(d.remaining())/16 {
		return r, ErrShortFrame
	}
	if nsrv > 0 {
		r.Servers = make([]MetaServer, nsrv)
	}
	for i := range r.Servers {
		s := &r.Servers[i]
		if s.ID, err = d.str(); err != nil {
			return r, err
		}
		if s.Addr, err = d.str(); err != nil {
			return r, err
		}
		if s.ViewNumber, err = d.u64(); err != nil {
			return r, err
		}
		if s.Ranges, err = decodeRanges(&d); err != nil {
			return r, err
		}
	}
	nmig, err := d.u32()
	if err != nil {
		return r, err
	}
	if uint64(nmig) > uint64(d.remaining())/metaMigrationMinBytes {
		return r, ErrShortFrame
	}
	if nmig > 0 {
		r.Migrations = make([]MetaMigration, nmig)
	}
	for i := range r.Migrations {
		if r.Migrations[i], err = decodeMetaMigration(&d); err != nil {
			return r, err
		}
	}
	nrep, err := d.u32()
	if err != nil {
		return r, err
	}
	// Each replica entry encodes to at least 5 bytes (two empty strings +
	// synced flag).
	if uint64(nrep) > uint64(d.remaining())/5 {
		return r, ErrShortFrame
	}
	if nrep > 0 {
		r.Replicas = make([]MetaReplica, nrep)
	}
	for i := range r.Replicas {
		if r.Replicas[i].PrimaryID, err = d.str(); err != nil {
			return r, err
		}
		if r.Replicas[i].Addr, err = d.str(); err != nil {
			return r, err
		}
		if r.Replicas[i].Synced, err = d.bool(); err != nil {
			return r, err
		}
	}
	// Tail-appended promoted list; absent in frames from older encoders.
	if d.remaining() > 0 {
		nprom, err := d.u32()
		if err != nil {
			return r, err
		}
		// Each id encodes to at least 2 bytes (empty string).
		if uint64(nprom) > uint64(d.remaining())/2 {
			return r, ErrShortFrame
		}
		if nprom > 0 {
			r.Promoted = make([]string, nprom)
		}
		for i := range r.Promoted {
			if r.Promoted[i], err = d.str(); err != nil {
				return r, err
			}
		}
	}
	return r, nil
}

// RebalanceResp reports one balancer planning pass: whether it acted, the
// migration it triggered (Source/Target/Range), and the human-readable
// reason either way.
type RebalanceResp struct {
	OK     bool
	Err    string // failure detail when !OK (e.g. balancer not enabled)
	Acted  bool
	Source string
	Target string
	RangeStart,
	RangeEnd uint64
	Reason string
}

// EncodeRebalanceReq builds a MsgRebalance frame.
func EncodeRebalanceReq() []byte {
	return []byte{byte(MsgRebalance)}
}

// EncodeRebalanceResp builds a MsgRebalanceResp frame.
func EncodeRebalanceResp(r RebalanceResp) []byte {
	dst := []byte{byte(MsgRebalanceResp)}
	dst = appendBool(dst, r.OK)
	dst = appendString(dst, r.Err)
	dst = appendBool(dst, r.Acted)
	dst = appendString(dst, r.Source)
	dst = appendString(dst, r.Target)
	dst = appendU64(dst, r.RangeStart)
	dst = appendU64(dst, r.RangeEnd)
	dst = appendString(dst, r.Reason)
	return dst
}

// DecodeRebalanceResp parses a MsgRebalanceResp frame.
func DecodeRebalanceResp(buf []byte) (RebalanceResp, error) {
	d := decoder{buf: buf}
	var r RebalanceResp
	if t, err := d.u8(); err != nil || MsgType(t) != MsgRebalanceResp {
		return r, fmt.Errorf("%w: rebalance resp", ErrBadType)
	}
	var err error
	if r.OK, err = d.bool(); err != nil {
		return r, err
	}
	if r.Err, err = d.str(); err != nil {
		return r, err
	}
	if r.Acted, err = d.bool(); err != nil {
		return r, err
	}
	if r.Source, err = d.str(); err != nil {
		return r, err
	}
	if r.Target, err = d.str(); err != nil {
		return r, err
	}
	if r.RangeStart, err = d.u64(); err != nil {
		return r, err
	}
	if r.RangeEnd, err = d.u64(); err != nil {
		return r, err
	}
	if r.Reason, err = d.str(); err != nil {
		return r, err
	}
	return r, nil
}

// ServerRate is one server's observed load inside a BalanceStatusResp.
// MilliOps is the ops/sec rate in thousandths, so the wire stays integer.
type ServerRate struct {
	ID       string
	MilliOps uint64
}

// BalanceStatusResp is a balancer-enabled server's status snapshot: counters,
// remaining cooldown, the last planning decision, the per-server load rates
// the next decision will be based on, and the set of migrations currently in
// flight cluster-wide (with their ranges and epochs). InFlight is filled by
// every server — it reports metadata state, not balancer state — so the
// concurrent-migration picture is observable even through a balancer-less
// node.
type BalanceStatusResp struct {
	Enabled    bool
	Passes     uint64
	Triggered  uint64
	CooldownMs uint64 // remaining cooldown, milliseconds
	Last       RebalanceResp
	Rates      []ServerRate
	InFlight   []MetaMigration
	// DegradedMs is how long the answering server's remote metadata cache
	// has been serving stale views because the metadata endpoint is
	// unreachable, in milliseconds (0 = healthy; tail-appended).
	DegradedMs uint64
}

// EncodeBalanceStatusReq builds a MsgBalanceStatus frame.
func EncodeBalanceStatusReq() []byte {
	return []byte{byte(MsgBalanceStatus)}
}

// EncodeBalanceStatusResp builds a MsgBalanceStatusResp frame.
func EncodeBalanceStatusResp(r *BalanceStatusResp) []byte {
	dst := []byte{byte(MsgBalanceStatusResp)}
	dst = appendBool(dst, r.Enabled)
	dst = appendU64(dst, r.Passes)
	dst = appendU64(dst, r.Triggered)
	dst = appendU64(dst, r.CooldownMs)
	last := r.Last
	dst = appendBool(dst, last.Acted)
	dst = appendString(dst, last.Source)
	dst = appendString(dst, last.Target)
	dst = appendU64(dst, last.RangeStart)
	dst = appendU64(dst, last.RangeEnd)
	dst = appendString(dst, last.Reason)
	dst = appendU32(dst, uint32(len(r.Rates)))
	for i := range r.Rates {
		dst = appendString(dst, r.Rates[i].ID)
		dst = appendU64(dst, r.Rates[i].MilliOps)
	}
	dst = appendU32(dst, uint32(len(r.InFlight)))
	for i := range r.InFlight {
		dst = appendMetaMigration(dst, &r.InFlight[i])
	}
	dst = appendU64(dst, r.DegradedMs)
	return dst
}

// DecodeBalanceStatusResp parses a MsgBalanceStatusResp frame.
func DecodeBalanceStatusResp(buf []byte) (BalanceStatusResp, error) {
	d := decoder{buf: buf}
	var r BalanceStatusResp
	if t, err := d.u8(); err != nil || MsgType(t) != MsgBalanceStatusResp {
		return r, fmt.Errorf("%w: balance status resp", ErrBadType)
	}
	var err error
	if r.Enabled, err = d.bool(); err != nil {
		return r, err
	}
	for _, p := range []*uint64{&r.Passes, &r.Triggered, &r.CooldownMs} {
		if *p, err = d.u64(); err != nil {
			return r, err
		}
	}
	if r.Last.Acted, err = d.bool(); err != nil {
		return r, err
	}
	if r.Last.Source, err = d.str(); err != nil {
		return r, err
	}
	if r.Last.Target, err = d.str(); err != nil {
		return r, err
	}
	if r.Last.RangeStart, err = d.u64(); err != nil {
		return r, err
	}
	if r.Last.RangeEnd, err = d.u64(); err != nil {
		return r, err
	}
	if r.Last.Reason, err = d.str(); err != nil {
		return r, err
	}
	n, err := d.u32()
	if err != nil {
		return r, err
	}
	// Each rate entry encodes to at least 10 bytes (empty id + rate).
	if uint64(n) > uint64(d.remaining())/10 {
		return r, ErrShortFrame
	}
	if n > 0 {
		r.Rates = make([]ServerRate, n)
	}
	for i := range r.Rates {
		if r.Rates[i].ID, err = d.str(); err != nil {
			return r, err
		}
		if r.Rates[i].MilliOps, err = d.u64(); err != nil {
			return r, err
		}
	}
	nmig, err := d.u32()
	if err != nil {
		return r, err
	}
	if uint64(nmig) > uint64(d.remaining())/metaMigrationMinBytes {
		return r, ErrShortFrame
	}
	if nmig > 0 {
		r.InFlight = make([]MetaMigration, nmig)
	}
	for i := range r.InFlight {
		if r.InFlight[i], err = decodeMetaMigration(&d); err != nil {
			return r, err
		}
	}
	// Tail-appended degraded-cache age; absent in frames from older encoders.
	if d.remaining() >= 8 {
		if r.DegradedMs, err = d.u64(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// decodeRanges parses a u32-counted list of 16-byte ranges with the standard
// count guard.
func decodeRanges(d *decoder) ([]Range, error) {
	cnt, err := d.u32()
	if err != nil {
		return nil, err
	}
	// Each range encodes to 16 bytes.
	if uint64(cnt) > uint64(d.remaining())/16 {
		return nil, ErrShortFrame
	}
	if cnt == 0 {
		return nil, nil
	}
	out := make([]Range, cnt)
	for i := range out {
		if out[i].Start, err = d.u64(); err != nil {
			return nil, err
		}
		if out[i].End, err = d.u64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// appendString encodes a u16-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

// str reads a u16-length-prefixed string.
func (d *decoder) str() (string, error) {
	n, err := d.u16()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// bool reads a single byte as a boolean.
func (d *decoder) bool() (bool, error) {
	v, err := d.u8()
	return v != 0, err
}

// appendBool encodes a boolean as one byte.
func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}
