package wire

import (
	"bytes"
	"testing"
)

// replStreamFrames builds one well-formed replication stream in wire order:
// attach handshake, base sync (begin, records, session table, done), then
// live batches and a heartbeat, with strictly increasing Seq — the exact
// shape a backup drains off its conn.
func replStreamFrames() [][]byte {
	inner := AppendRequestBatch(nil, &RequestBatch{
		View: 3, SessionID: 9,
		Ops: []Op{
			{Kind: OpRMW, Seq: 7, Key: []byte("ctr"), Value: []byte("12345678")},
			{Kind: OpUpsert, Seq: 8, Key: []byte("k"), Value: []byte("v")},
		},
	})
	return [][]byte{
		EncodeReplAttach(ReplAttach{PrimaryID: "p0", ReplicaAddr: "b0",
			HeartbeatMs: 100, AckTimeoutMs: 2000}),
		EncodeReplAttachResp(ReplAttachResp{OK: true}),
		EncodeReplBaseBegin(ReplBaseBegin{Seq: 1, Sealed: 5, CutTail: 0x40000}),
		EncodeReplRecords(&ReplRecords{Seq: 2, Records: []MigrationRecord{
			{Hash: 150, Key: []byte("k"), Value: []byte("v")},
			{Hash: 151, Flags: RecFlagTombstone, Key: []byte("dead")},
		}}),
		EncodeReplSessTab(&ReplSessTab{Seq: 3, Sealed: 5,
			Sessions: []ReplSession{{ID: 9, LastSeq: 44}}}),
		EncodeReplBaseDone(ReplBaseDone{Seq: 4, SkippedIndirections: 1}),
		EncodeReplBatch(&ReplBatch{Seq: 5, Batch: inner}),
		EncodeReplHeartbeat(ReplHeartbeat{Seq: 5}),
		EncodeReplAck(ReplAck{Seq: 5}),
	}
}

// decodeReplFrame dispatches a frame to its decoder, returning the carried
// stream sequence (0 for the handshake frames, which are unsequenced) and
// whether it decoded.
func decodeReplFrame(buf []byte) (seq uint64, ok bool) {
	t, err := PeekType(buf)
	if err != nil {
		return 0, false
	}
	switch t {
	case MsgReplAttach:
		_, err := DecodeReplAttach(buf)
		return 0, err == nil
	case MsgReplAttachResp:
		_, err := DecodeReplAttachResp(buf)
		return 0, err == nil
	case MsgReplBaseBegin:
		r, err := DecodeReplBaseBegin(buf)
		return r.Seq, err == nil
	case MsgReplRecords:
		r, err := DecodeReplRecords(buf)
		return r.Seq, err == nil
	case MsgReplSessTab:
		r, err := DecodeReplSessTab(buf)
		return r.Seq, err == nil
	case MsgReplBaseDone:
		r, err := DecodeReplBaseDone(buf)
		return r.Seq, err == nil
	case MsgReplBatch:
		r, err := DecodeReplBatch(buf)
		return r.Seq, err == nil
	case MsgReplHeartbeat:
		r, err := DecodeReplHeartbeat(buf)
		return r.Seq, err == nil
	case MsgReplAck:
		r, err := DecodeReplAck(buf)
		return r.Seq, err == nil
	}
	return 0, false
}

// TestReplFrameTruncation feeds every strict prefix of every replication
// frame to its decoder: a frame cut mid-field — a connection dropped mid-send
// or a corrupted length — must come back as a clean error, never a panic or
// a partial struct accepted as whole.
func TestReplFrameTruncation(t *testing.T) {
	for fi, frame := range replStreamFrames() {
		typ, _ := PeekType(frame)
		for n := 1; n < len(frame); n++ {
			if _, ok := decodeReplFrame(frame[:n]); ok {
				t.Fatalf("frame %d (type %d): truncation to %d/%d bytes decoded",
					fi, typ, n, len(frame))
			}
		}
	}
}

// TestReplStreamDuplicationAndReorder replays the stream with a duplicated
// frame and with two frames swapped. Decoding is stateless, so every frame
// must still parse identically — and the carried Seq numbers must expose the
// fault: a duplicate repeats a sequence at or below the cumulative watermark,
// a reorder shows up as a non-monotonic step. This is exactly the check the
// backup's cumulative-ack protocol performs; the test pins the wire contract
// it depends on (strictly increasing Seq on every sequenced frame).
func TestReplStreamDuplicationAndReorder(t *testing.T) {
	frames := replStreamFrames()
	sequenced := frames[2:8] // BaseBegin..Heartbeat carry stream seqs

	// The pristine stream is non-decreasing (heartbeat repeats the send
	// watermark) and dense over the sequenced production frames.
	var last uint64
	for i, f := range sequenced {
		seq, ok := decodeReplFrame(f)
		if !ok {
			t.Fatalf("pristine frame %d does not decode", i)
		}
		if seq < last {
			t.Fatalf("pristine stream regressed: frame %d seq %d after %d", i, seq, last)
		}
		last = seq
	}

	// Duplication: replay one frame. It must decode bit-identically, and its
	// seq must sit at or below the watermark — the receiver's dup filter.
	for i, f := range sequenced {
		dup := append([]byte(nil), f...)
		seq1, ok1 := decodeReplFrame(f)
		seq2, ok2 := decodeReplFrame(dup)
		if !ok1 || !ok2 || seq1 != seq2 {
			t.Fatalf("frame %d: duplicate decoded differently (%d/%v vs %d/%v)",
				i, seq1, ok1, seq2, ok2)
		}
		if seq1 > last {
			t.Fatalf("frame %d: seq %d above stream watermark %d", i, seq1, last)
		}
	}

	// Reorder: deliver frame i+1 before frame i. Both still decode (the wire
	// layer is order-agnostic), and the inversion is visible as a seq step
	// backwards, which is what lets the backup treat the stream as broken
	// rather than silently applying out of order.
	for i := 0; i+1 < len(sequenced)-1; i++ { // exclude the heartbeat echo
		hiSeq, ok := decodeReplFrame(sequenced[i+1])
		if !ok {
			t.Fatalf("reordered frame %d does not decode", i+1)
		}
		loSeq, ok := decodeReplFrame(sequenced[i])
		if !ok {
			t.Fatalf("reordered frame %d does not decode", i)
		}
		if loSeq >= hiSeq {
			t.Fatalf("frames %d,%d: reorder not observable (seqs %d,%d)",
				i, i+1, loSeq, hiSeq)
		}
	}
}

// TestReplRecordsLengthCorruption flips the record length fields inside a
// ReplRecords frame: a key/value length pointing past the frame end must be
// rejected (the base sync reads these straight off the network mid-failover).
func TestReplRecordsLengthCorruption(t *testing.T) {
	frame := EncodeReplRecords(&ReplRecords{Seq: 2, Records: []MigrationRecord{
		{Hash: 150, Key: []byte("key-0"), Value: []byte("value-0")},
	}})
	// Layout: type(1) seq(8) count(4) hash(8) flags(1) klen(2) vlen(4) ...
	klenOff := 1 + 8 + 4 + 8 + 1
	vlenOff := klenOff + 2

	kc := append([]byte(nil), frame...)
	kc[klenOff], kc[klenOff+1] = 0xFF, 0xFF
	if _, err := DecodeReplRecords(kc); err == nil {
		t.Fatal("oversized key length accepted")
	}

	vc := append([]byte(nil), frame...)
	vc[vlenOff], vc[vlenOff+1], vc[vlenOff+2], vc[vlenOff+3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeReplRecords(vc); err == nil {
		t.Fatal("oversized value length accepted")
	}
}

// TestReplBatchEmbeddedTruncation corrupts the embedded request-batch length
// of a live-stream frame: claiming more bytes than the frame carries must
// fail, and a shortened claim must surface a batch that then fails the inner
// request-batch decode instead of yielding phantom operations.
func TestReplBatchEmbeddedTruncation(t *testing.T) {
	inner := AppendRequestBatch(nil, &RequestBatch{
		View: 3, SessionID: 9,
		Ops: []Op{{Kind: OpRMW, Seq: 7, Key: []byte("ctr"), Value: []byte("12345678")}},
	})
	frame := EncodeReplBatch(&ReplBatch{Seq: 5, Batch: inner})
	lenOff := 1 + 8 // type, seq

	over := append([]byte(nil), frame...)
	over[lenOff], over[lenOff+1], over[lenOff+2], over[lenOff+3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeReplBatch(over); err == nil {
		t.Fatal("embedded batch length past frame end accepted")
	}

	short := append([]byte(nil), frame[:len(frame)-3]...)
	if _, err := DecodeReplBatch(short); err == nil {
		t.Fatal("frame shorter than embedded batch length accepted")
	}

	// A batch length shortened by the corruption (consistent with the frame,
	// inconsistent with the embedded encoding) decodes at the repl layer but
	// the inner decode must reject the cut-off request batch.
	cut := append([]byte(nil), frame...)
	putTruncU32(cut[lenOff:], uint32(len(inner)-2))
	cut = cut[:len(cut)-2]
	rb, err := DecodeReplBatch(cut)
	if err != nil {
		t.Fatalf("repl layer rejected consistent shortened frame: %v", err)
	}
	var req RequestBatch
	if err := DecodeRequestBatch(rb.Batch, &req); err == nil {
		t.Fatal("truncated embedded request batch accepted")
	}
	if !bytes.Equal(rb.Batch, inner[:len(inner)-2]) {
		t.Fatal("embedded batch bytes do not alias the frame as documented")
	}
}

func putTruncU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
