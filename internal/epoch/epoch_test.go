package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegisterRefreshUnregister(t *testing.T) {
	m := NewManager()
	g := m.Register()
	if !g.Protected() {
		t.Fatal("guard should be protected after Register")
	}
	if g.LocalEpoch() != m.Current() {
		t.Fatalf("local epoch %d != global %d", g.LocalEpoch(), m.Current())
	}
	m.Bump()
	if g.LocalEpoch() == m.Current() {
		t.Fatal("local epoch should lag global until Refresh")
	}
	g.Refresh()
	if g.LocalEpoch() != m.Current() {
		t.Fatal("Refresh should catch up to global epoch")
	}
	g.Unregister()
}

func TestSuspendResume(t *testing.T) {
	m := NewManager()
	g := m.Register()
	g.Suspend()
	if g.Protected() {
		t.Fatal("suspended guard must not be protected")
	}
	g.Resume()
	if !g.Protected() {
		t.Fatal("resumed guard must be protected")
	}
	g.Unregister()
}

func TestActionFiresAfterAllThreadsObserve(t *testing.T) {
	m := NewManager()
	g1 := m.Register()
	g2 := m.Register()

	var fired atomic.Bool
	m.BumpWithAction(func() { fired.Store(true) })

	if fired.Load() {
		t.Fatal("action fired before any thread crossed the cut")
	}
	g1.Refresh()
	if fired.Load() {
		t.Fatal("action fired before the second thread crossed the cut")
	}
	g2.Refresh()
	if !fired.Load() {
		t.Fatal("action did not fire after all threads crossed the cut")
	}
	g1.Unregister()
	g2.Unregister()
}

func TestActionFiresImmediatelyWithNoThreads(t *testing.T) {
	m := NewManager()
	var fired atomic.Bool
	m.BumpWithAction(func() { fired.Store(true) })
	if !fired.Load() {
		t.Fatal("with no registered threads the cut is trivially satisfied")
	}
}

func TestActionFiresWhenLastThreadSuspends(t *testing.T) {
	m := NewManager()
	g := m.Register()
	var fired atomic.Bool
	m.BumpWithAction(func() { fired.Store(true) })
	if fired.Load() {
		t.Fatal("premature fire")
	}
	g.Suspend()
	if !fired.Load() {
		t.Fatal("suspending the only laggard must release the cut")
	}
	g.Resume()
	g.Unregister()
}

func TestActionFiresWhenLastThreadUnregisters(t *testing.T) {
	m := NewManager()
	g := m.Register()
	var fired atomic.Bool
	m.BumpWithAction(func() { fired.Store(true) })
	g.Unregister()
	if !fired.Load() {
		t.Fatal("unregistering the only laggard must release the cut")
	}
}

func TestActionExactlyOnce(t *testing.T) {
	m := NewManager()
	const threads = 8
	var count atomic.Int64
	var wg sync.WaitGroup
	guards := make([]*Guard, threads)
	for i := range guards {
		guards[i] = m.Register()
	}
	m.BumpWithAction(func() { count.Add(1) })
	for _, g := range guards {
		wg.Add(1)
		go func(g *Guard) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Refresh()
			}
			g.Unregister()
		}(g)
	}
	wg.Wait()
	if got := count.Load(); got != 1 {
		t.Fatalf("action ran %d times, want exactly 1", got)
	}
}

func TestManyConcurrentActions(t *testing.T) {
	m := NewManager()
	const threads = 4
	const actions = 500
	var fired atomic.Int64
	var wg sync.WaitGroup

	stop := make(chan struct{})
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := m.Register()
			defer g.Unregister()
			for {
				select {
				case <-stop:
					return
				default:
					g.Refresh()
				}
			}
		}()
	}

	var rw sync.WaitGroup
	for i := 0; i < actions; i++ {
		rw.Add(1)
		go func() {
			defer rw.Done()
			m.BumpWithAction(func() { fired.Add(1) })
		}()
	}
	rw.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for fired.Load() != actions && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	m.DrainPending()
	if got := fired.Load(); got != actions {
		t.Fatalf("fired %d actions, want %d", got, actions)
	}
}

func TestSafeEpochTracksLaggard(t *testing.T) {
	m := NewManager()
	g1 := m.Register()
	g2 := m.Register()
	start := m.Current()
	m.Bump()
	m.Bump()
	g1.Refresh()
	// g2 still at start.
	if safe := m.ComputeSafeEpoch(); safe != start {
		t.Fatalf("safe epoch %d, want laggard's %d", safe, start)
	}
	g2.Refresh()
	if safe := m.ComputeSafeEpoch(); safe != m.Current() {
		t.Fatalf("safe epoch %d, want %d after both refresh", safe, m.Current())
	}
	g1.Unregister()
	g2.Unregister()
}

func TestTIDReuse(t *testing.T) {
	m := NewManager()
	g := m.Register()
	tid := g.tid
	g.Unregister()
	g2 := m.Register()
	if g2.tid != tid {
		t.Fatalf("expected tid %d to be reused, got %d", tid, g2.tid)
	}
	g2.Unregister()
}

// TestOrderingAcrossCut verifies the global-cut ordering contract used by
// checkpointing (§2.1): every operation a thread performs before its Refresh
// that observes v+1 is strictly before the trigger action.
func TestOrderingAcrossCut(t *testing.T) {
	m := NewManager()
	const threads = 4
	var preCut [threads]atomic.Int64
	var atAction [threads]int64
	var wg sync.WaitGroup

	guards := make([]*Guard, threads)
	for i := range guards {
		guards[i] = m.Register()
	}

	var actionRan atomic.Bool
	m.BumpWithAction(func() {
		for i := range preCut {
			atAction[i] = preCut[i].Load()
		}
		actionRan.Store(true)
	})

	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := guards[i]
			// Work before crossing the cut.
			for j := 0; j < 50; j++ {
				preCut[i].Add(1)
			}
			g.Refresh() // crosses the cut
			g.Unregister()
		}(i)
	}
	wg.Wait()
	m.DrainPending()
	if !actionRan.Load() {
		t.Fatal("action never ran")
	}
	for i := range atAction {
		if atAction[i] != 50 {
			t.Fatalf("thread %d: action observed %d pre-cut ops, want all 50",
				i, atAction[i])
		}
	}
}

func BenchmarkRefreshNoAction(b *testing.B) {
	m := NewManager()
	g := m.Register()
	defer g.Unregister()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Refresh()
	}
}

func BenchmarkRefreshParallel(b *testing.B) {
	m := NewManager()
	b.RunParallel(func(pb *testing.PB) {
		g := m.Register()
		defer g.Unregister()
		for pb.Next() {
			g.Refresh()
		}
	})
}
