// Package epoch implements FASTER-style epoch-based protection with trigger
// actions (§2.1 of the Shadowfax paper).
//
// Every thread (goroutine acting as a pinned vCPU thread) that touches shared
// store structures registers with a Manager and periodically refreshes its
// view of the global epoch. Memory (a hybrid-log page frame, an old hash-table
// chunk) tagged for reclamation at epoch e may be reused only once every
// registered thread has advanced past e.
//
// The same machinery provides asynchronous global cuts: BumpWithAction bumps
// the global epoch and registers a trigger that runs exactly once, after every
// registered thread has observed an epoch greater than or equal to the bumped
// value. Checkpoint version changes, hybrid-log region shifts, view changes
// and every migration phase transition in this repository are built on that
// one primitive. No thread ever blocks waiting for another; each thread's
// Refresh is the point it contributes to the cut.
package epoch

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

const (
	// MaxThreads is the maximum number of concurrently registered threads.
	MaxThreads = 256

	// drainListSize bounds the number of in-flight trigger actions.
	drainListSize = 64

	// claimed marks a drain-list slot mid-registration or mid-execution; it
	// compares greater than any real epoch so tryDrain skips it.
	claimed = ^uint64(0)

	// unregistered marks a thread slot whose local epoch is not protecting
	// anything.
	unregistered = uint64(0)
)

// pad64 pads hot per-thread counters to a cache line to avoid false sharing
// between the per-thread epoch slots.
type pad64 struct {
	v atomic.Uint64
	_ [7]uint64
}

// drainEntry is one pending trigger action, keyed by the epoch it is safe at.
type drainEntry struct {
	epoch  atomic.Uint64 // 0 = free slot
	action atomic.Value  // func()
}

// Manager tracks the global epoch, per-thread local epochs, and the drain
// list of trigger actions.
type Manager struct {
	current atomic.Uint64 // global epoch, starts at 1

	// safeToReclaim caches the most recently computed minimal epoch across
	// threads, so hot paths can do a single load.
	safeToReclaim atomic.Uint64

	drainCount atomic.Int64
	drainList  [drainListSize]drainEntry

	threads [MaxThreads]pad64
	nextTID atomic.Int64
	freeTID chan int
}

// NewManager returns a Manager with the global epoch initialized to 1.
func NewManager() *Manager {
	m := &Manager{freeTID: make(chan int, MaxThreads)}
	m.current.Store(1)
	m.safeToReclaim.Store(0)
	return m
}

// Guard is a registered thread's handle. A Guard is owned by exactly one
// goroutine; its methods must not be called concurrently.
type Guard struct {
	m   *Manager
	tid int
}

// Register acquires a thread slot and enters the protected region at the
// current epoch. It panics if more than MaxThreads guards are live, which is
// a configuration error, not a runtime condition.
func (m *Manager) Register() *Guard {
	var tid int
	select {
	case tid = <-m.freeTID:
	default:
		n := m.nextTID.Add(1) - 1
		if n >= MaxThreads {
			panic(fmt.Sprintf("epoch: more than %d registered threads", MaxThreads))
		}
		tid = int(n)
	}
	g := &Guard{m: m, tid: tid}
	g.Refresh()
	return g
}

// Unregister leaves the protected region and releases the thread slot for
// reuse. The Guard must not be used afterwards.
//
//shadowfax:epoch
func (g *Guard) Unregister() {
	m := g.m
	m.threads[g.tid].v.Store(unregistered)
	// A departing thread must not strand trigger actions that were waiting
	// only on it.
	m.tryDrain(m.current.Load())
	m.freeTID <- g.tid //shadowfax:ignore epochblock freeTID is buffered to MaxThreads, one slot per registered guard, so this send never parks
	g.m = nil
}

// Refresh synchronizes the thread's local epoch with the global epoch and
// runs any trigger actions that became safe. Threads call this between
// request batches; it is the lazily-taken point on the global cut.
//
//shadowfax:epoch
func (g *Guard) Refresh() {
	m := g.m
	cur := m.current.Load()
	m.threads[g.tid].v.Store(cur)
	if m.drainCount.Load() > 0 {
		m.tryDrain(cur)
	}
}

// Suspend marks the thread as not protecting anything (e.g. while blocked on
// network I/O) so it does not hold up reclamation or global cuts.
func (g *Guard) Suspend() {
	g.m.threads[g.tid].v.Store(unregistered)
	g.m.tryDrain(g.m.current.Load())
}

// Resume re-enters the protected region.
func (g *Guard) Resume() { g.Refresh() }

// Protected reports whether the guard currently protects an epoch.
func (g *Guard) Protected() bool {
	return g.m.threads[g.tid].v.Load() != unregistered
}

// LocalEpoch returns the guard's current local epoch (0 if suspended).
func (g *Guard) LocalEpoch() uint64 { return g.m.threads[g.tid].v.Load() }

// Current returns the global epoch.
func (m *Manager) Current() uint64 { return m.current.Load() }

// Bump advances the global epoch and returns the previous value. Memory
// retired at the returned epoch is safe to reuse once SafeToReclaim reaches
// it.
func (m *Manager) Bump() uint64 {
	return m.current.Add(1) - 1
}

// BumpWithAction advances the global epoch and registers action to run
// exactly once after every registered thread has observed the new epoch.
// This is the asynchronous global cut: the set of per-thread Refresh points
// that first observe the new epoch forms the cut, and action fires on its
// far side. If the drain list is full the caller spins briefly draining; that
// only happens when >64 system events race, which no workload here does.
//
//shadowfax:epoch
func (m *Manager) BumpWithAction(action func()) uint64 {
	prior := m.current.Add(1) - 1
	safeAt := prior + 1
	for {
		for i := range m.drainList {
			e := &m.drainList[i]
			// Claim the free slot first (0 -> sentinel), then publish the
			// action, then arm the epoch. Storing the action before owning
			// the slot would let two racing registrants overwrite each
			// other.
			if e.epoch.Load() == 0 && e.epoch.CompareAndSwap(0, claimed) {
				e.action.Store(action)
				e.epoch.Store(safeAt)
				m.drainCount.Add(1)
				// The cut may already be satisfied (e.g. no other
				// threads registered).
				m.tryDrain(m.current.Load())
				return prior
			}
		}
		// Drain list full: help out, then retry.
		m.tryDrain(m.current.Load())
		runtime.Gosched()
	}
}

// ComputeSafeEpoch recomputes the minimum epoch protected by any thread.
// Every epoch strictly less than the returned value is unprotected.
func (m *Manager) ComputeSafeEpoch() uint64 {
	oldest := m.current.Load()
	n := int(m.nextTID.Load())
	for i := 0; i < n; i++ {
		e := m.threads[i].v.Load()
		if e != unregistered && e < oldest {
			oldest = e
		}
	}
	m.safeToReclaim.Store(oldest)
	return oldest
}

// SafeToReclaim returns the cached safe epoch: memory retired at an epoch
// strictly less than this value may be reused.
func (m *Manager) SafeToReclaim() uint64 { return m.safeToReclaim.Load() }

// tryDrain runs every pending action whose epoch boundary every thread has
// crossed.
func (m *Manager) tryDrain(cur uint64) {
	if m.drainCount.Load() == 0 {
		return
	}
	safe := m.ComputeSafeEpoch()
	_ = cur
	for i := range m.drainList {
		e := &m.drainList[i]
		at := e.epoch.Load()
		if at == 0 || at > safe {
			continue
		}
		// Claim the entry via CAS to ensure exactly-once execution.
		if e.epoch.CompareAndSwap(at, claimed) {
			act := e.action.Load().(func())
			m.drainCount.Add(-1)
			act()
			e.epoch.Store(0)
		}
	}
}

// DrainPending forces evaluation of outstanding trigger actions; used by
// tests and by shutdown paths to flush cuts when all threads are quiesced.
func (m *Manager) DrainPending() {
	m.tryDrain(m.current.Load())
}

// PendingActions returns the number of registered-but-unfired trigger
// actions.
func (m *Manager) PendingActions() int { return int(m.drainCount.Load()) }
