package backoff

import (
	"testing"
	"time"
)

func TestPolicyDelayGrowthAndCap(t *testing.T) {
	// Jitter 1e-9 is effectively zero (0 selects the default), making growth
	// deterministic enough to bound tightly.
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond,
		Multiplier: 2, Jitter: 1e-9}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, // capped
	}
	for attempt, w := range want {
		d := p.Delay(attempt)
		if d < w*99/100 || d > w*101/100 {
			t.Fatalf("attempt %d: delay %v, want ~%v", attempt, d, w)
		}
	}
}

func TestPolicyZeroValueDefaults(t *testing.T) {
	var p Policy
	// Defaults: Base 2ms, Max 500ms, Jitter 0.5 → every delay lands in
	// (0, 625ms] and the first retry stays near the base.
	d0 := p.Delay(0)
	if d0 <= 0 || d0 > 4*time.Millisecond {
		t.Fatalf("zero-value first delay %v outside (0, 4ms]", d0)
	}
	for i := 0; i < 100; i++ {
		if d := p.Delay(20); d <= 0 || d > 625*time.Millisecond {
			t.Fatalf("deep attempt delay %v outside (0, 625ms]", d)
		}
	}
}

func TestPolicyJitterSpreads(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second,
		Multiplier: 2, Jitter: 0.5}
	seen := make(map[time.Duration]bool)
	for i := 0; i < 50; i++ {
		d := p.Delay(0)
		if d < 75*time.Millisecond || d > 125*time.Millisecond {
			t.Fatalf("jittered delay %v outside [75ms, 125ms]", d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced identical delays 50 times — retriers would stay in lockstep")
	}
}

func TestJittered(t *testing.T) {
	for i := 0; i < 50; i++ {
		d := Jittered(time.Second, 0.2)
		if d < 800*time.Millisecond || d > 1200*time.Millisecond {
			t.Fatalf("Jittered(1s, 0.2) = %v outside [0.8s, 1.2s]", d)
		}
	}
	if d := Jittered(time.Second, 0); d != time.Second {
		t.Fatalf("zero fraction must pass the period through, got %v", d)
	}
	if d := Jittered(0, 0.5); d != 0 {
		t.Fatalf("zero period must stay zero, got %v", d)
	}
}

func TestBreakerOpensAtThresholdAndProbes(t *testing.T) {
	b := &Breaker{Threshold: 3, Probe: 20 * time.Millisecond}

	// Below threshold: everything admitted.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if b.Open() {
		t.Fatal("breaker open below threshold")
	}

	// Third consecutive failure opens it.
	b.Failure()
	if !b.Open() {
		t.Fatal("breaker closed at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the probe interval")
	}

	// After the interval exactly one probe is admitted; the rest are refused
	// until the probe resolves.
	deadline := time.Now().Add(time.Second)
	for !b.Allow() {
		if time.Now().After(deadline) {
			t.Fatal("probe slot never opened")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// Probe success closes the breaker for everyone.
	b.Success()
	if b.Open() || !b.Allow() {
		t.Fatal("breaker did not close after a successful probe")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b := &Breaker{Threshold: 1, Probe: 10 * time.Millisecond}
	b.Failure()
	if !b.Open() {
		t.Fatal("breaker closed after threshold failure")
	}
	deadline := time.Now().Add(time.Second)
	for !b.Allow() {
		if time.Now().After(deadline) {
			t.Fatal("probe slot never opened")
		}
		time.Sleep(2 * time.Millisecond)
	}
	b.Failure() // probe failed
	if !b.Open() {
		t.Fatal("breaker closed after a failed probe")
	}
	if b.Allow() {
		t.Fatal("request admitted immediately after a failed probe")
	}
}

func TestBreakerZeroValue(t *testing.T) {
	var b Breaker
	if !b.Allow() {
		t.Fatal("zero-value breaker refused its first request")
	}
	b.Failure()
	b.Failure()
	if b.Open() {
		t.Fatal("zero-value breaker open below the default threshold of 3")
	}
	b.Failure()
	if !b.Open() {
		t.Fatal("zero-value breaker closed at the default threshold")
	}
	b.Success()
	if b.Open() {
		t.Fatal("breaker open after success")
	}
}

func TestSetPerTargetIsolation(t *testing.T) {
	s := &Set{Threshold: 1, Probe: time.Minute}
	s.For("a").Failure()
	if !s.For("a").Open() {
		t.Fatal("target a's breaker did not open")
	}
	if s.For("b").Open() {
		t.Fatal("target b's breaker opened from a's failures")
	}
	if got := s.For("a"); got != s.For("a") {
		t.Fatal("Set did not memoize the breaker")
	}
	s.Forget("a")
	if s.For("a").Open() {
		t.Fatal("Forget did not reset target a")
	}
}
