// Package backoff provides the retry discipline shared by every component
// that talks to something that can be partitioned away: jittered exponential
// delays (so herds of retriers decorrelate instead of retrying in lockstep)
// and per-target circuit breakers (so an unreachable server costs one probe
// per interval instead of a stalled pool hammering it).
package backoff

import (
	"math/rand/v2"
	"sync"
	"time"
)

// Policy computes jittered exponential retry delays. The zero value takes
// the documented defaults, so consumers can embed a Policy and configure
// only what they care about.
type Policy struct {
	// Base is the delay before the first retry (default 2ms).
	Base time.Duration
	// Max caps the grown delay before jitter (default 500ms).
	Max time.Duration
	// Multiplier grows the delay per attempt (default 2.0).
	Multiplier float64
	// Jitter is the fraction of the delay randomized symmetrically around
	// it, in [0, 1] (default 0.5: delays land in [0.75d, 1.25d]). Jitter
	// breaks retry lockstep between peers that failed at the same instant.
	Jitter float64
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 2 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 500 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.5
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay returns the jittered delay for the given attempt (0 = first retry).
// It is safe for concurrent use.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 0; i < attempt && d < float64(p.Max); i++ {
		d *= p.Multiplier
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	// Symmetric jitter: d * (1 ± Jitter/2).
	d *= 1 + p.Jitter*(rand.Float64()-0.5)
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Jittered spreads a fixed period by frac (e.g. Jittered(time.Second, 0.2)
// lands in [0.8s, 1.2s]): the helper behind de-lockstepped tickers.
func Jittered(d time.Duration, frac float64) time.Duration {
	if d <= 0 || frac <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 + frac*(2*rand.Float64()-1)))
}

// Breaker is a per-target circuit breaker. Closed (the normal state) admits
// every request. Threshold consecutive failures open it: requests are
// refused locally until the probe interval elapses, then exactly one caller
// is admitted as the probe. A probe success closes the breaker; a failure
// re-opens it for another interval.
//
// The zero value is ready to use with the documented defaults.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (default 3).
	Threshold int
	// Probe is how long the breaker stays open between probes (default
	// 500ms). Successive failed probes back the interval off up to 8×,
	// jittered.
	Probe time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
	openings  int // consecutive openings, for probe-interval growth
}

func (b *Breaker) probeEvery() time.Duration {
	if b.Probe > 0 {
		return b.Probe
	}
	return 500 * time.Millisecond
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 3
}

// Allow reports whether a request may proceed. While open, it admits one
// probe per interval and refuses everything else; callers that were refused
// should fail fast (the target is considered down).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold() {
		return true
	}
	now := time.Now()
	if now.Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false // another caller holds the probe slot
	}
	b.probing = true
	return true
}

// Success records a successful request: the breaker closes.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.openings = 0
	b.probing = false
	b.openUntil = time.Time{}
}

// Failure records a failed request; at Threshold consecutive failures the
// breaker opens for the (backed-off, jittered) probe interval.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.fails++
	if b.fails < b.threshold() {
		return
	}
	grow := b.openings
	if grow > 3 {
		grow = 3 // cap the interval growth at 8×
	}
	b.openings++
	interval := b.probeEvery() << uint(grow)
	b.openUntil = time.Now().Add(Jittered(interval, 0.25))
}

// Open reports whether the breaker currently refuses ordinary requests.
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails >= b.threshold() && time.Now().Before(b.openUntil)
}

// Set is a lazily populated collection of breakers keyed by target (server
// id or address). The zero value is ready to use; Threshold and Probe seed
// every breaker it creates.
type Set struct {
	Threshold int
	Probe     time.Duration

	mu sync.Mutex
	m  map[string]*Breaker
}

// For returns the breaker for a target, creating it on first use.
func (s *Set) For(target string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*Breaker)
	}
	b, ok := s.m[target]
	if !ok {
		b = &Breaker{Threshold: s.Threshold, Probe: s.Probe}
		s.m[target] = b
	}
	return b
}

// Forget drops a target's breaker (e.g. after the server was retired).
func (s *Set) Forget(target string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, target)
}
