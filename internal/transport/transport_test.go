package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func transports(t *testing.T) map[string]Transport {
	return map[string]Transport{
		"inmem": NewInMem(Free),
		"tcp":   NewTCP(Free),
	}
}

func addrFor(name string, i int) string {
	if name == "tcp" {
		return "127.0.0.1:0"
	}
	return fmt.Sprintf("srv-%d", i)
}

func TestSendRecvRoundTrip(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			l, err := tr.Listen(addrFor(name, 1))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			done := make(chan error, 1)
			go func() {
				c, err := l.Accept()
				if err != nil {
					done <- err
					return
				}
				defer c.Close()
				for i := 0; i < 10; i++ {
					msg, err := c.Recv()
					if err != nil {
						done <- err
						return
					}
					if err := c.Send(append([]byte("echo:"), msg...)); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
			c, err := tr.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for i := 0; i < 10; i++ {
				msg := []byte(fmt.Sprintf("frame-%d", i))
				if err := c.Send(msg); err != nil {
					t.Fatal(err)
				}
				got, err := c.Recv()
				if err != nil {
					t.Fatal(err)
				}
				want := append([]byte("echo:"), msg...)
				if !bytes.Equal(got, want) {
					t.Fatalf("got %q want %q", got, want)
				}
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTryRecvNonBlocking(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			l, err := tr.Listen(addrFor(name, 2))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			connCh := make(chan Conn, 1)
			go func() {
				c, err := l.Accept()
				if err == nil {
					connCh <- c
				}
			}()
			c, err := tr.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			server := <-connCh
			defer server.Close()

			// Empty: TryRecv returns immediately with ok=false.
			start := time.Now()
			if _, ok, err := server.TryRecv(); ok || err != nil {
				t.Fatalf("TryRecv on empty: ok=%v err=%v", ok, err)
			}
			if time.Since(start) > 50*time.Millisecond {
				t.Fatal("TryRecv blocked")
			}
			// After a send it eventually yields the frame.
			if err := c.Send([]byte("ping")); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(2 * time.Second)
			for {
				msg, ok, err := server.TryRecv()
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					if string(msg) != "ping" {
						t.Fatalf("got %q", msg)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("frame never arrived")
				}
			}
		})
	}
}

func TestLargeFrames(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			l, _ := tr.Listen(addrFor(name, 3))
			defer l.Close()
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				msg, err := c.Recv()
				if err != nil {
					return
				}
				c.Send(msg)
			}()
			c, err := tr.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			big := bytes.Repeat([]byte{0xAB}, 1<<20)
			if err := c.Send(big); err != nil {
				t.Fatal(err)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, big) {
				t.Fatal("1 MiB frame corrupted")
			}
		})
	}
}

func TestSenderBufferReuseSafe(t *testing.T) {
	tr := NewInMem(Free)
	l, _ := tr.Listen("reuse")
	defer l.Close()
	var got [][]byte
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			return
		}
		for i := 0; i < 5; i++ {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			mu.Lock()
			got = append(got, msg)
			mu.Unlock()
		}
	}()
	c, _ := tr.Dial("reuse")
	buf := make([]byte, 8)
	for i := 0; i < 5; i++ {
		copy(buf, fmt.Sprintf("msg-%03d", i))
		if err := c.Send(buf); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	for i, msg := range got {
		want := fmt.Sprintf("msg-%03d", i)
		if string(msg[:7]) != want {
			t.Fatalf("frame %d = %q, want %q (sender buffer reuse corrupted it)", i, msg[:7], want)
		}
	}
}

func TestDialUnknownAddr(t *testing.T) {
	tr := NewInMem(Free)
	if _, err := tr.Dial("nowhere"); err == nil {
		t.Fatal("dial to unknown address succeeded")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	tr := NewInMem(Free)
	l, _ := tr.Listen("closer")
	defer l.Close()
	go func() { l.Accept() }()
	c, _ := tr.Dial("closer")
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Recv returned nil after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestCostModelCharges(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	expensive := CostModel{Name: "x", SendPerOp: 2 * time.Millisecond}
	tr := NewInMem(expensive)
	l, _ := tr.Listen("cost")
	defer l.Close()
	go func() { l.Accept() }()
	c, _ := tr.Dial("cost")
	start := time.Now()
	for i := 0; i < 10; i++ {
		c.Send([]byte("x"))
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("cost model not applied: 10 sends in %v", el)
	}
}

func TestCostModelProfilesOrdered(t *testing.T) {
	// The software stack must charge more than the accelerated one, which
	// must charge more than Infrc — the premise of Figure 8 and Table 2.
	per := func(m CostModel, n int) time.Duration {
		return m.SendPerOp + time.Duration(n)*m.SendPerByte +
			m.RecvPerOp + time.Duration(n)*m.RecvPerByte
	}
	const batch = 32 << 10
	if !(per(SoftwareTCP, batch) > per(AcceleratedTCP, batch)) {
		t.Fatal("software TCP must cost more than accelerated TCP")
	}
	if !(per(AcceleratedTCP, batch) > per(Infrc, 1<<10)) {
		t.Fatal("accelerated TCP must cost more than Infrc")
	}
}

func BenchmarkInMemSendRecv(b *testing.B) {
	tr := NewInMem(Free)
	l, _ := tr.Listen("bench")
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(msg); err != nil {
				return
			}
		}
	}()
	c, _ := tr.Dial("bench")
	defer c.Close()
	frame := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(frame); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// countingConn wraps a net.Conn and counts Write syscall-equivalents.
type countingConn struct {
	net.Conn
	writes atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

// TestTCPSendSingleWrite verifies a frame's length prefix and payload leave
// in one Write call (one syscall on a real socket).
func TestTCPSendSingleWrite(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	tr := NewTCP(Free)
	cc := &countingConn{Conn: a}
	conn := tr.wrap(cc)
	defer conn.Close()

	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	if err := conn.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := cc.writes.Load(); got != 1 {
		t.Fatalf("Send used %d writes, want 1", got)
	}
}

// TestTCPSendCoalescing verifies SendNoFlush buffers frames and Flush ships
// them all in a single write, preserving frame boundaries and order — also
// interleaved with a direct Send.
func TestTCPSendCoalescing(t *testing.T) {
	a, b := net.Pipe()
	tr := NewTCP(Free)
	cc := &countingConn{Conn: a}
	conn := tr.wrap(cc)
	peer := tr.wrap(b)
	defer conn.Close()
	defer peer.Close()

	bs, ok := Conn(conn).(BatchedSender)
	if !ok {
		t.Fatal("tcpConn does not implement BatchedSender")
	}
	frames := [][]byte{[]byte("one"), []byte("two-two"), []byte("three")}
	for _, f := range frames {
		if err := bs.SendNoFlush(f); err != nil {
			t.Fatal(err)
		}
	}
	if got := cc.writes.Load(); got != 0 {
		t.Fatalf("SendNoFlush hit the wire early: %d writes", got)
	}
	done := make(chan error, 1)
	go func() { done <- bs.Flush() }()
	for i, want := range frames {
		got, err := peer.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := cc.writes.Load(); got != 1 {
		t.Fatalf("Flush used %d writes, want 1", got)
	}

	// A direct Send after buffering more frames flushes buffer + frame
	// together, in order.
	if err := bs.SendNoFlush([]byte("four")); err != nil {
		t.Fatal(err)
	}
	go func() { done <- conn.Send([]byte("five")) }()
	for _, want := range []string{"four", "five"} {
		got, err := peer.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := cc.writes.Load(); got != 2 {
		t.Fatalf("Send-after-buffer used %d total writes, want 2", got)
	}
}
