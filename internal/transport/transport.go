// Package transport provides the message transports under Shadowfax's
// sessions (§3.1.2) plus the CPU cost models that stand in for the paper's
// network-stack variants.
//
// The paper's experiments vary the *CPU cost of moving bytes*: SmartNIC-
// accelerated Linux TCP, unaccelerated TCP, and two-sided RDMA (Infrc).
// None of that hardware exists here, so every transport applies an explicit
// CostModel — a calibrated busy-spin per frame and per byte on both the send
// and receive paths — which exposes exactly the variable the experiments
// measure (DESIGN.md §2). The TCP transport is real net.Listen/net.Dial TCP
// with length-prefixed frames; the in-process transport is a pair of
// channels for single-binary experiments.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Errors.
var (
	ErrClosed = errors.New("transport: closed")
)

// Conn is a message-oriented, view of a connection. Send and Recv each apply
// the transport's cost model. TryRecv never blocks (server dispatch loops
// poll with it).
type Conn interface {
	Send(frame []byte) error
	Recv() ([]byte, error)
	TryRecv() ([]byte, bool, error)
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// Transport creates listeners and outbound connections.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// BatchedSender is an optional Conn extension for send coalescing:
// SendNoFlush enqueues a frame into a per-connection write buffer and Flush
// pushes the whole buffer to the wire in a single write. Server dispatch
// loops use it so every response produced in one poll iteration costs one
// syscall per connection instead of one per frame. Send remains valid on
// such conns and flushes any buffered frames first (frame order is
// preserved). The in-process transport does not implement it — a channel
// send has no per-call kernel cost to amortize.
type BatchedSender interface {
	SendNoFlush(frame []byte) error
	Flush() error
}

// CostModel charges CPU for network processing. Costs are burned (busy
// spin) on the calling goroutine: offloaded stacks charge almost nothing,
// software stacks charge per byte, mirroring where the paper's throughput
// differences come from.
type CostModel struct {
	Name        string
	SendPerOp   time.Duration // per Send call (syscall + doorbell analogue)
	SendPerByte time.Duration
	RecvPerOp   time.Duration
	RecvPerByte time.Duration
}

// The paper's four network configurations (Table 2). Magnitudes are scaled
// for a single-machine simulation; their *ratios* follow the paper's
// measured throughput ratios (130 : 75 Mops/s for accelerated vs software
// TCP at equal batch size; near-zero software cost for Infrc).
var (
	// AcceleratedTCP models SmartNIC-offloaded Linux TCP.
	AcceleratedTCP = CostModel{Name: "TCP",
		SendPerOp: 1 * time.Microsecond, SendPerByte: 1 * time.Nanosecond / 4,
		RecvPerOp: 1 * time.Microsecond, RecvPerByte: 1 * time.Nanosecond / 4}
	// SoftwareTCP models the full software stack (acceleration disabled).
	SoftwareTCP = CostModel{Name: "w/o Accel",
		SendPerOp: 4 * time.Microsecond, SendPerByte: 2 * time.Nanosecond,
		RecvPerOp: 4 * time.Microsecond, RecvPerByte: 2 * time.Nanosecond}
	// Infrc models two-sided RDMA: hardware stack, near-zero CPU.
	Infrc = CostModel{Name: "Infrc",
		SendPerOp: 200 * time.Nanosecond, SendPerByte: 0,
		RecvPerOp: 200 * time.Nanosecond, RecvPerByte: 0}
	// TCPIPoIB models TCP over IPoIB on the faster Infrc VMs.
	TCPIPoIB = CostModel{Name: "TCP-IPoIB",
		SendPerOp: 800 * time.Nanosecond, SendPerByte: 1 * time.Nanosecond / 5,
		RecvPerOp: 800 * time.Nanosecond, RecvPerByte: 1 * time.Nanosecond / 5}
	// Free charges nothing (unit tests).
	Free = CostModel{Name: "free"}
)

// burn spends d of CPU time spinning; this models protocol-processing work
// that would otherwise be invisible to a simulation (sleeping would yield
// the core, which a software network stack does not).
func burn(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
}

func (c CostModel) chargeSend(n int) {
	burn(c.SendPerOp + time.Duration(n)*c.SendPerByte)
}

func (c CostModel) chargeRecv(n int) {
	burn(c.RecvPerOp + time.Duration(n)*c.RecvPerByte)
}

// Stats counts transport traffic.
type Stats struct {
	FramesSent, FramesRecv atomic.Uint64
	BytesSent, BytesRecv   atomic.Uint64
}

// ---------------------------------------------------------------------------
// In-process transport

// InMem is a registry-based in-process Transport; addresses are arbitrary
// strings. Useful for single-binary experiments and tests.
type InMem struct {
	Cost  CostModel
	Depth int // per-direction queue depth (default 256)

	mu        sync.Mutex
	listeners map[string]*inMemListener
	stats     Stats
}

// NewInMem creates an in-process transport with the given cost model.
func NewInMem(cost CostModel) *InMem {
	return &InMem{Cost: cost, Depth: 256, listeners: make(map[string]*inMemListener)}
}

// Stats returns traffic counters.
func (t *InMem) Stats() *Stats { return &t.stats }

type inMemListener struct {
	t      *InMem
	addr   string
	accept chan *inMemConn
	closed atomic.Bool
}

type inMemConn struct {
	t      *InMem
	in     chan []byte
	out    chan []byte
	closed atomic.Bool
	peer   *inMemConn
}

// Listen implements Transport.
func (t *InMem) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.listeners[addr]; dup {
		return nil, fmt.Errorf("transport: address %q in use", addr)
	}
	l := &inMemListener{t: t, addr: addr, accept: make(chan *inMemConn, 64)}
	t.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (t *InMem) Dial(addr string) (Conn, error) {
	a2b := make(chan []byte, t.Depth)
	b2a := make(chan []byte, t.Depth)
	client := &inMemConn{t: t, in: b2a, out: a2b}
	server := &inMemConn{t: t, in: a2b, out: b2a}
	client.peer, server.peer = server, client
	// The accept send must happen under t.mu: Close closes l.accept under
	// the same lock, so a dial that passed the closed check cannot race a
	// concurrent close of the channel. The send is non-blocking.
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.listeners[addr]
	if !ok || l.closed.Load() {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	select {
	case l.accept <- server:
		return client, nil
	default:
		return nil, fmt.Errorf("transport: accept queue full at %q", addr)
	}
}

func (l *inMemListener) Accept() (Conn, error) {
	c, ok := <-l.accept
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

func (l *inMemListener) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	l.t.mu.Lock()
	delete(l.t.listeners, l.addr)
	close(l.accept)
	l.t.mu.Unlock()
	return nil
}

func (l *inMemListener) Addr() string { return l.addr }

func (c *inMemConn) Send(frame []byte) error {
	if c.closed.Load() || c.peer.closed.Load() {
		return ErrClosed
	}
	c.t.Cost.chargeSend(len(frame))
	// Copy: the caller reuses its buffer.
	msg := append([]byte(nil), frame...)
	select {
	case c.out <- msg:
		c.t.stats.FramesSent.Add(1)
		c.t.stats.BytesSent.Add(uint64(len(frame)))
		return nil
	default:
	}
	// Queue full: block (flow control), but fail fast if the peer dies.
	for {
		select {
		case c.out <- msg:
			c.t.stats.FramesSent.Add(1)
			c.t.stats.BytesSent.Add(uint64(len(frame)))
			return nil
		case <-time.After(5 * time.Millisecond):
			if c.closed.Load() || c.peer.closed.Load() {
				return ErrClosed
			}
		}
	}
}

func (c *inMemConn) Recv() ([]byte, error) {
	for {
		select {
		case msg, ok := <-c.in:
			if !ok {
				return nil, ErrClosed
			}
			c.t.Cost.chargeRecv(len(msg))
			c.t.stats.FramesRecv.Add(1)
			c.t.stats.BytesRecv.Add(uint64(len(msg)))
			return msg, nil
		case <-time.After(5 * time.Millisecond):
			if c.closed.Load() || c.peer.closed.Load() {
				return nil, ErrClosed
			}
		}
	}
}

func (c *inMemConn) TryRecv() ([]byte, bool, error) {
	if c.closed.Load() {
		return nil, false, ErrClosed
	}
	select {
	case msg, ok := <-c.in:
		if !ok {
			return nil, false, ErrClosed
		}
		c.t.Cost.chargeRecv(len(msg))
		c.t.stats.FramesRecv.Add(1)
		c.t.stats.BytesRecv.Add(uint64(len(msg)))
		return msg, true, nil
	default:
		// Like a TCP read returning EOF: a dead peer surfaces as an error,
		// but only after every already-delivered frame has been consumed.
		if c.peer.closed.Load() {
			return nil, false, ErrClosed
		}
		return nil, false, nil
	}
}

func (c *inMemConn) Close() error {
	c.closed.Store(true)
	return nil
}

// ---------------------------------------------------------------------------
// TCP transport

// TCP is a Transport over real kernel TCP with 4-byte length-prefixed
// frames. Each connection runs a reader goroutine feeding a frame queue so
// dispatch loops can poll without syscalls.
type TCP struct {
	Cost  CostModel
	Depth int

	stats Stats
}

// NewTCP creates a TCP transport with the given cost model.
func NewTCP(cost CostModel) *TCP {
	return &TCP{Cost: cost, Depth: 256}
}

// Stats returns traffic counters.
func (t *TCP) Stats() *Stats { return &t.stats }

type tcpListener struct {
	t *TCP
	l net.Listener
}

type tcpConn struct {
	t       *TCP
	c       net.Conn
	wmu     sync.Mutex
	wbuf    []byte // length-prefixed frames awaiting one writev-style flush
	wframes uint64 // frames in wbuf (stats are counted on successful flush)
	wbytes  uint64 // payload bytes in wbuf
	frames  chan []byte
	rerr    atomic.Value // error
	closed  atomic.Bool
}

const (
	// tcpCoalesceBytes caps the per-conn send buffer: SendNoFlush flushes
	// eagerly past this point so a long poll iteration cannot buffer
	// unbounded response bytes.
	tcpCoalesceBytes = 256 << 10
	// tcpSendBufKeep is the largest buffer capacity retained across
	// flushes (a single huge migration frame should not pin its footprint
	// on the conn forever).
	tcpSendBufKeep = 1 << 20
)

// Listen implements Transport.
func (t *TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{t: t, l: l}, nil
}

// Dial implements Transport.
func (t *TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return t.wrap(c), nil
}

func (t *TCP) wrap(c net.Conn) *tcpConn {
	tc := &tcpConn{t: t, c: c, frames: make(chan []byte, t.Depth)}
	go tc.readLoop()
	return tc
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return l.t.wrap(c), nil
}

func (l *tcpListener) Close() error { return l.l.Close() }

func (l *tcpListener) Addr() string { return l.l.Addr().String() }

func (c *tcpConn) readLoop() {
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(c.c, lenBuf[:]); err != nil {
			c.rerr.Store(err)
			close(c.frames)
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 64<<20 {
			c.rerr.Store(fmt.Errorf("transport: oversized frame %d", n))
			close(c.frames)
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(c.c, buf); err != nil {
			c.rerr.Store(err)
			close(c.frames)
			return
		}
		c.frames <- buf
	}
}

// Send writes one frame. The length prefix and payload go out in a single
// Write (one syscall), together with any frames buffered by SendNoFlush —
// ordering between buffered and direct sends on one conn is preserved.
func (c *tcpConn) Send(frame []byte) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.t.Cost.chargeSend(len(frame))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.appendFrameLocked(frame)
	return c.flushLocked()
}

// SendNoFlush implements BatchedSender: the frame is queued on the conn's
// write buffer and hits the wire at the next Flush (or when the buffer
// exceeds tcpCoalesceBytes).
func (c *tcpConn) SendNoFlush(frame []byte) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.t.Cost.chargeSend(len(frame))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.appendFrameLocked(frame)
	if len(c.wbuf) >= tcpCoalesceBytes {
		return c.flushLocked()
	}
	return nil
}

// Flush implements BatchedSender: buffered frames go out in one write.
func (c *tcpConn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.flushLocked()
}

func (c *tcpConn) appendFrameLocked(frame []byte) {
	c.wbuf = binary.LittleEndian.AppendUint32(c.wbuf, uint32(len(frame)))
	c.wbuf = append(c.wbuf, frame...)
	c.wframes++
	c.wbytes += uint64(len(frame))
}

func (c *tcpConn) flushLocked() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	_, err := c.c.Write(c.wbuf)
	if err == nil {
		// Stats count frames that actually reached the wire; a failed
		// flush drops its frames from buffer and counters alike.
		c.t.stats.FramesSent.Add(c.wframes)
		c.t.stats.BytesSent.Add(c.wbytes)
	}
	c.wframes, c.wbytes = 0, 0
	if cap(c.wbuf) > tcpSendBufKeep {
		c.wbuf = nil
	} else {
		c.wbuf = c.wbuf[:0]
	}
	return err
}

func (c *tcpConn) Recv() ([]byte, error) {
	msg, ok := <-c.frames
	if !ok {
		return nil, c.readErr()
	}
	c.t.Cost.chargeRecv(len(msg))
	c.t.stats.FramesRecv.Add(1)
	c.t.stats.BytesRecv.Add(uint64(len(msg)))
	return msg, nil
}

func (c *tcpConn) TryRecv() ([]byte, bool, error) {
	select {
	case msg, ok := <-c.frames:
		if !ok {
			return nil, false, c.readErr()
		}
		c.t.Cost.chargeRecv(len(msg))
		c.t.stats.FramesRecv.Add(1)
		c.t.stats.BytesRecv.Add(uint64(len(msg)))
		return msg, true, nil
	default:
		return nil, false, nil
	}
}

func (c *tcpConn) readErr() error {
	if err, ok := c.rerr.Load().(error); ok {
		return err
	}
	return ErrClosed
}

func (c *tcpConn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	return c.c.Close()
}
