// Package seastar implements the paper's Seastar+memcached baseline (§4.1):
// a shared-nothing, multi-core key-value server. Records are statically
// partitioned across cores by key hash; each core owns a private hash table
// and polls its own connections, and a request for another core's record is
// forwarded to the owning core over a message-passing queue (Go channels
// standing in for Seastar's shared-memory SPSC queues) and answered after
// the owner replies.
//
// This is the design Shadowfax argues against: it avoids locks entirely but
// pays software inter-core routing on the critical path, which is what
// Figure 9 measures. The implementation mirrors the open-source
// memcached-on-Seastar port: lock-free within a core, message passing
// between cores, 100-op batches.
package seastar

import (
	"encoding/binary"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hashfn"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config describes a Seastar-style server.
type Config struct {
	Addr      string
	Cores     int
	Transport transport.Transport
	// InboxDepth is the per-core cross-core queue depth.
	InboxDepth int
}

// Stats counts server activity.
type Stats struct {
	OpsCompleted atomic.Uint64
	// CrossCoreOps counts operations that had to be forwarded to another
	// core — the software routing Shadowfax eliminates.
	CrossCoreOps atomic.Uint64
	LocalOps     atomic.Uint64
}

// Server is a shared-nothing multicore KVS.
type Server struct {
	cfg      Config
	listener transport.Listener
	cores    []*score
	stopping atomic.Bool
	wg       sync.WaitGroup
	stats    Stats
}

// score is one core: a private partition plus its message queues. (The name
// avoids shadowing "core", the Shadowfax package.)
type score struct {
	s        *Server
	idx      int
	part     map[string][]byte
	newConns chan transport.Conn
	conns    []transport.Conn
	inbox    chan fwdOp
	done     chan *batchCtx

	reqBatch wire.RequestBatch
	respBuf  []byte

	// overflowDone holds completed batch contexts whose origin's done
	// queue was full; retried every loop. Sends between cores must never
	// block outright or two cores with full queues deadlock.
	overflowDone []*batchCtx
}

// fwdOp is a cross-core forwarded operation.
type fwdOp struct {
	ctx *batchCtx
	idx int
	op  wire.Op
}

// batchCtx tracks a batch whose operations may complete on several cores.
type batchCtx struct {
	conn      transport.Conn
	sessionID uint64
	results   []wire.Result
	remaining atomic.Int32
	origin    *score
}

// NewServer starts a Seastar-style server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Transport == nil || cfg.Addr == "" {
		return nil, errors.New("seastar: Addr and Transport required")
	}
	if cfg.Cores <= 0 {
		cfg.Cores = runtime.GOMAXPROCS(0)
	}
	if cfg.InboxDepth == 0 {
		cfg.InboxDepth = 4096
	}
	l, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, listener: l}
	s.cores = make([]*score, cfg.Cores)
	for i := range s.cores {
		s.cores[i] = &score{
			s: s, idx: i,
			part:     make(map[string][]byte),
			newConns: make(chan transport.Conn, 64),
			inbox:    make(chan fwdOp, cfg.InboxDepth),
			done:     make(chan *batchCtx, 1024),
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	for _, c := range s.cores {
		s.wg.Add(1)
		go c.run()
	}
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Stats returns server counters.
func (s *Server) Stats() *Stats { return &s.stats }

// Close stops the server.
func (s *Server) Close() error {
	if s.stopping.Swap(true) {
		return nil
	}
	s.listener.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	next := 0
	for {
		c, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.cores[next%len(s.cores)].newConns <- c
		next++
	}
}

// ownerOf returns the core that owns a key.
func (s *Server) ownerOf(key []byte) int {
	return int(hashfn.Hash(key) % uint64(len(s.cores)))
}

func (c *score) run() {
	defer c.s.wg.Done()
	idle := 0
	for !c.s.stopping.Load() {
		progress := false
		for {
			select {
			case nc := <-c.newConns:
				c.conns = append(c.conns, nc)
				progress = true
				continue
			default:
			}
			break
		}
		if c.serviceQueues() {
			progress = true
		}
		// Poll this core's connections for new batches.
		for i := 0; i < len(c.conns); i++ {
			conn := c.conns[i]
			frame, ok, err := conn.TryRecv()
			if err != nil {
				conn.Close()
				c.conns = append(c.conns[:i], c.conns[i+1:]...)
				i--
				continue
			}
			if !ok {
				continue
			}
			progress = true
			c.handleBatch(conn, frame)
		}
		if !progress {
			idle++
			if idle > 64 {
				time.Sleep(50 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
		} else {
			idle = 0
		}
	}
	for _, conn := range c.conns {
		conn.Close()
	}
}

func (c *score) handleBatch(conn transport.Conn, frame []byte) {
	if err := wire.DecodeRequestBatch(frame, &c.reqBatch); err != nil {
		return
	}
	b := &c.reqBatch
	ctx := &batchCtx{conn: conn, sessionID: b.SessionID,
		results: make([]wire.Result, len(b.Ops)), origin: c}
	ctx.remaining.Store(int32(len(b.Ops)))

	for i := range b.Ops {
		op := &b.Ops[i]
		owner := c.s.ownerOf(op.Key)
		if owner == c.idx {
			c.execLocal(op, &ctx.results[i])
			c.s.stats.LocalOps.Add(1)
			if ctx.remaining.Add(-1) == 0 {
				c.respond(ctx)
			}
			continue
		}
		// Cross-core: copy (the batch buffer is reused) and forward.
		f := fwdOp{ctx: ctx, idx: i, op: wire.Op{
			Kind: op.Kind, Seq: op.Seq,
			Key:   append([]byte(nil), op.Key...),
			Value: append([]byte(nil), op.Value...),
		}}
		c.sendFwd(c.s.cores[owner], f)
	}
}

// serviceQueues drains this core's inbox and done queue without blocking;
// reports whether any work was done.
func (c *score) serviceQueues() bool {
	progress := false
	// Retry completions that could not be handed to their origin earlier.
	if len(c.overflowDone) > 0 {
		kept := c.overflowDone[:0]
		for _, ctx := range c.overflowDone {
			if !c.trySendDone(ctx) {
				kept = append(kept, ctx)
			} else {
				progress = true
			}
		}
		c.overflowDone = kept
	}
	for {
		select {
		case f := <-c.inbox:
			c.execLocal(&f.op, &f.ctx.results[f.idx])
			c.s.stats.CrossCoreOps.Add(1)
			if f.ctx.remaining.Add(-1) == 0 && !c.trySendDone(f.ctx) {
				c.overflowDone = append(c.overflowDone, f.ctx)
			}
			progress = true
			continue
		default:
		}
		break
	}
	for {
		select {
		case ctx := <-c.done:
			c.respond(ctx)
			progress = true
			continue
		default:
		}
		break
	}
	return progress
}

// trySendDone hands a completed batch to its origin core (or responds
// directly if this core is the origin) without blocking.
func (c *score) trySendDone(ctx *batchCtx) bool {
	if ctx.origin == c {
		c.respond(ctx)
		return true
	}
	select {
	case ctx.origin.done <- ctx:
		return true
	default:
		return false
	}
}

// sendFwd forwards an operation to its owner, servicing this core's own
// queues while the owner's inbox is full (never block with work pending:
// two mutually-blocked cores would deadlock).
func (c *score) sendFwd(dst *score, f fwdOp) {
	for {
		select {
		case dst.inbox <- f:
			return
		default:
		}
		if !c.serviceQueues() {
			runtime.Gosched()
		}
	}
}

// execLocal runs one operation against this core's private partition. No
// synchronization: the partition is only ever touched by its owner.
func (c *score) execLocal(op *wire.Op, res *wire.Result) {
	res.Seq = op.Seq
	switch op.Kind {
	case wire.OpRead:
		if v, ok := c.part[string(op.Key)]; ok {
			res.Status = wire.StatusOK
			res.Value = append([]byte(nil), v...)
		} else {
			res.Status = wire.StatusNotFound
		}
	case wire.OpUpsert:
		c.part[string(op.Key)] = append([]byte(nil), op.Value...)
		res.Status = wire.StatusOK
	case wire.OpRMW:
		cur := c.part[string(op.Key)]
		var acc uint64
		if len(cur) >= 8 {
			acc = binary.LittleEndian.Uint64(cur)
		}
		var delta uint64 = 1
		if len(op.Value) >= 8 {
			delta = binary.LittleEndian.Uint64(op.Value)
		}
		nv := make([]byte, 8)
		binary.LittleEndian.PutUint64(nv, acc+delta)
		c.part[string(op.Key)] = nv
		res.Status = wire.StatusOK
	case wire.OpDelete:
		delete(c.part, string(op.Key))
		res.Status = wire.StatusOK
	default:
		res.Status = wire.StatusErr
	}
}

// respond sends a completed batch. Only the origin core (owner of the
// connection) calls this.
func (c *score) respond(ctx *batchCtx) {
	resp := wire.ResponseBatch{SessionID: ctx.sessionID, Results: ctx.results}
	c.respBuf = wire.AppendResponseBatch(c.respBuf[:0], &resp)
	ctx.conn.Send(c.respBuf)
	c.s.stats.OpsCompleted.Add(uint64(len(ctx.results)))
}
