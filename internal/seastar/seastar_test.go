package seastar

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

func newPair(t *testing.T, cores int) (*Server, *Client) {
	t.Helper()
	tr := transport.NewInMem(transport.Free)
	s, err := NewServer(Config{Addr: "seastar", Cores: cores, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(tr, s.Addr(), 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return s, c
}

func TestBasicOps(t *testing.T) {
	_, c := newPair(t, 2)
	c.Upsert([]byte("k"), []byte("v"), nil)
	var got string
	var st wire.ResultStatus = 255
	c.Read([]byte("k"), func(s wire.ResultStatus, v []byte) {
		st = s
		got = string(v)
	})
	if !c.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	if st != wire.StatusOK || got != "v" {
		t.Fatalf("read %v %q", st, got)
	}
	missing := wire.ResultStatus(255)
	c.Read([]byte("missing"), func(s wire.ResultStatus, _ []byte) { missing = s })
	c.Drain(5 * time.Second)
	if missing != wire.StatusNotFound {
		t.Fatalf("missing: %v", missing)
	}
}

func TestRMWCounters(t *testing.T) {
	_, c := newPair(t, 4)
	d := make([]byte, 8)
	binary.LittleEndian.PutUint64(d, 1)
	const n = 500
	// Spread over keys owned by all cores.
	for i := 0; i < n; i++ {
		c.RMW(ycsb.KeyBytes(uint64(i%8)), d, nil)
	}
	if !c.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	total := uint64(0)
	for i := 0; i < 8; i++ {
		c.Read(ycsb.KeyBytes(uint64(i)), func(st wire.ResultStatus, v []byte) {
			if st == wire.StatusOK {
				total += binary.LittleEndian.Uint64(v)
			}
		})
	}
	c.Drain(5 * time.Second)
	if total != n {
		t.Fatalf("counters sum to %d, want %d", total, n)
	}
}

func TestCrossCoreForwarding(t *testing.T) {
	s, c := newPair(t, 4)
	// With 4 cores and one connection (pinned to core 0), ~3/4 of uniform
	// keys need forwarding.
	for i := uint64(0); i < 400; i++ {
		c.Upsert(ycsb.KeyBytes(i), []byte("x"), nil)
	}
	if !c.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	cross := s.Stats().CrossCoreOps.Load()
	local := s.Stats().LocalOps.Load()
	if cross == 0 {
		t.Fatal("no cross-core forwarding happened; baseline not exercised")
	}
	if cross+local != 400 {
		t.Fatalf("ops accounting: %d cross + %d local != 400", cross, local)
	}
	t.Logf("cross=%d local=%d", cross, local)
}

func TestDeleteAndBatchOrdering(t *testing.T) {
	_, c := newPair(t, 2)
	for i := 0; i < 50; i++ {
		c.Upsert([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)), nil)
	}
	c.Drain(5 * time.Second)
	// Interleave reads and deletes in one batch: per-op results must match
	// per-op seqs regardless of which core executed them.
	results := map[string]wire.ResultStatus{}
	for i := 0; i < 50; i += 2 {
		key := fmt.Sprintf("k%d", i)
		c.issue(wire.OpDelete, []byte(key), nil, nil)
	}
	c.Drain(5 * time.Second)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		c.Read([]byte(key), func(st wire.ResultStatus, _ []byte) {
			results[key] = st
		})
	}
	c.Drain(5 * time.Second)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		want := wire.StatusOK
		if i%2 == 0 {
			want = wire.StatusNotFound
		}
		if results[key] != want {
			t.Fatalf("%s: %v, want %v", key, results[key], want)
		}
	}
}

func TestUniformThroughputSmoke(t *testing.T) {
	s, c := newPair(t, 2)
	u := ycsb.NewUniform(1000, 42)
	d := make([]byte, 8)
	binary.LittleEndian.PutUint64(d, 1)
	start := time.Now()
	const ops = 20000
	for i := 0; i < ops; i++ {
		c.RMW(ycsb.KeyBytes(u.Next()), d, nil)
		if c.Outstanding() > 2048 {
			c.Poll()
		}
	}
	if !c.Drain(30 * time.Second) {
		t.Fatal("smoke did not drain")
	}
	rate := float64(ops) / time.Since(start).Seconds()
	t.Logf("seastar smoke: %.0f ops/s (cross=%d local=%d)",
		rate, s.Stats().CrossCoreOps.Load(), s.Stats().LocalOps.Load())
	if rate < 1000 {
		t.Fatalf("pathologically slow: %.0f ops/s", rate)
	}
}
