package seastar

import (
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Client is the harness-side driver for the Seastar baseline: one pipelined
// connection to one server core, batching BatchOps operations per request
// (the paper batches 100, which maximized the baseline's throughput).
type Client struct {
	conn        transport.Conn
	batchOps    int
	maxInflight int // batches pipelined before buffering locally

	building    wire.RequestBatch
	nextSeq     uint32
	inflight    map[uint32]Callback
	sentBatches int
	outstanding int
	encodeBuf   []byte
}

// Callback receives an operation's result.
type Callback func(status wire.ResultStatus, value []byte)

// NewClient dials a Seastar server.
func NewClient(tr transport.Transport, addr string, batchOps int) (*Client, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	if batchOps <= 0 {
		batchOps = 100
	}
	return &Client{conn: conn, batchOps: batchOps, maxInflight: 32,
		inflight: make(map[uint32]Callback)}, nil
}

// Close tears the connection down.
func (c *Client) Close() { c.conn.Close() }

// Read issues an asynchronous read.
func (c *Client) Read(key []byte, cb Callback) { c.issue(wire.OpRead, key, nil, cb) }

// Upsert issues an asynchronous write.
func (c *Client) Upsert(key, value []byte, cb Callback) { c.issue(wire.OpUpsert, key, value, cb) }

// RMW issues an asynchronous read-modify-write.
func (c *Client) RMW(key, input []byte, cb Callback) { c.issue(wire.OpRMW, key, input, cb) }

func (c *Client) issue(kind wire.OpKind, key, value []byte, cb Callback) {
	seq := c.nextSeq
	c.nextSeq++
	c.building.Ops = append(c.building.Ops, wire.Op{Kind: kind, Seq: seq,
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...)})
	c.inflight[seq] = cb
	c.outstanding++
	if len(c.building.Ops) >= c.batchOps {
		c.Flush()
	}
}

// Flush sends buffered operations in batchOps-sized batches, up to the
// pipelining window; the rest stays buffered until Poll frees window slots.
// Blocking in Send with an unbounded flood would deadlock against a server
// blocked sending responses back.
func (c *Client) Flush() {
	for len(c.building.Ops) > 0 && c.sentBatches < c.maxInflight {
		n := len(c.building.Ops)
		if n > c.batchOps {
			n = c.batchOps
		}
		chunk := wire.RequestBatch{View: c.building.View,
			SessionID: c.building.SessionID, Ops: c.building.Ops[:n]}
		c.encodeBuf = wire.AppendRequestBatch(c.encodeBuf[:0], &chunk)
		if c.conn.Send(c.encodeBuf) != nil {
			return
		}
		c.sentBatches++
		m := copy(c.building.Ops, c.building.Ops[n:])
		c.building.Ops = c.building.Ops[:m]
	}
}

// Poll completes available responses; returns completions processed.
func (c *Client) Poll() int {
	n := 0
	for {
		frame, ok, err := c.conn.TryRecv()
		if err != nil || !ok {
			return n
		}
		var resp wire.ResponseBatch
		if err := wire.DecodeResponseBatch(frame, &resp); err != nil {
			continue
		}
		if c.sentBatches > 0 {
			c.sentBatches--
		}
		for i := range resp.Results {
			r := &resp.Results[i]
			cb, ok := c.inflight[r.Seq]
			if !ok {
				continue
			}
			delete(c.inflight, r.Seq)
			c.outstanding--
			n++
			if cb != nil {
				cb(r.Status, r.Value)
			}
		}
		// Window slots freed: push buffered operations out.
		c.Flush()
	}
}

// Outstanding returns issued-but-uncompleted operations.
func (c *Client) Outstanding() int { return c.outstanding }

// Drain flushes and polls until all operations complete or timeout.
func (c *Client) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for c.outstanding > 0 {
		c.Flush()
		if c.Poll() == 0 {
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	return true
}
