package soak

import (
	"os"
	"testing"
	"time"
)

// assertFailover checks the invariants every failover soak must satisfy:
// zero violations (zero acked-write loss, linearizable reads, exactly one
// promotion winner) and a workload that actually ran.
func assertFailover(t *testing.T, res FailoverResult) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Ops == 0 {
		t.Error("no operations acked: the workload never ran")
	}
	if res.Fault != KillBackup && res.PromotedIn <= 0 {
		t.Error("standby never promoted")
	}
}

// TestSoakFailoverKillPrimary kills the primary abruptly under live load:
// the standby must promote itself and every acked write must survive.
// Run with -race: the replication stream, the failure detector and the
// clients' replays all share one process.
func TestSoakFailoverKillPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("failover soak takes seconds; skipped in -short")
	}
	res, err := RunFailover(FailoverConfig{
		Fault:    KillPrimary,
		Duration: 2 * time.Second,
		Seed:     1,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("failover soak failed: %v", err)
	}
	assertFailover(t, res)
	t.Logf("kill-primary: %d ops, promoted in %v, %d violations",
		res.Ops, res.PromotedIn.Round(time.Millisecond), len(res.Violations))
}

// TestSoakFailoverKillBackup kills the standby abruptly under live load:
// the primary must detach it and keep serving without losing a write.
func TestSoakFailoverKillBackup(t *testing.T) {
	if testing.Short() {
		t.Skip("failover soak takes seconds; skipped in -short")
	}
	res, err := RunFailover(FailoverConfig{
		Fault:    KillBackup,
		Duration: 2 * time.Second,
		Seed:     2,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("failover soak failed: %v", err)
	}
	assertFailover(t, res)
	t.Logf("kill-backup: %d ops, %d violations", res.Ops, len(res.Violations))
}

// TestSoakFailoverKillMidPromotion races the dead primary's checkpoint
// restart against the standby's promotion: the metadata store must pick
// exactly one winner (the restart is refused with ErrDeposed) and the
// history must stay clean through the race.
func TestSoakFailoverKillMidPromotion(t *testing.T) {
	if testing.Short() {
		t.Skip("failover soak takes seconds; skipped in -short")
	}
	res, err := RunFailover(FailoverConfig{
		Fault:    KillMidPromotion,
		Duration: 2 * time.Second,
		Seed:     3,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("failover soak failed: %v", err)
	}
	assertFailover(t, res)
	t.Logf("kill-mid-promotion: %d ops, promoted in %v, %d violations",
		res.Ops, res.PromotedIn.Round(time.Millisecond), len(res.Violations))
}

// TestSoakFailoverSmoke is the CI failover-smoke / nightly long-soak entry
// point: gated behind SOAK_FAILOVER=1, with the seed, duration, fault and
// artifact directory supplied through the environment so a workflow matrix
// can sweep seeds. On violations the harness dumps violations.txt and
// key_history.csv into SOAK_ARTIFACT_DIR for upload.
func TestSoakFailoverSmoke(t *testing.T) {
	if os.Getenv("SOAK_FAILOVER") == "" {
		t.Skip("set SOAK_FAILOVER=1 to run the failover soak smoke")
	}
	dur := 10 * time.Second
	if d := os.Getenv("SOAK_DURATION"); d != "" {
		if parsed, err := time.ParseDuration(d); err == nil {
			dur = parsed
		}
	}
	fault := KillPrimary
	switch os.Getenv("SOAK_FAULT") {
	case "kill-backup":
		fault = KillBackup
	case "kill-mid-promotion":
		fault = KillMidPromotion
	}
	res, err := RunFailover(FailoverConfig{
		Fault:       fault,
		Duration:    dur,
		Seed:        int64(envInt("SOAK_SEED", 42)),
		ArtifactDir: os.Getenv("SOAK_ARTIFACT_DIR"),
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("failover soak failed: %v", err)
	}
	assertFailover(t, res)
	t.Logf("failover smoke (%s, seed %d): %d ops (%.3f Mops/s), promoted in %v, %d violations",
		fault, envInt("SOAK_SEED", 42), res.Ops, res.AggregateMops,
		res.PromotedIn.Round(time.Millisecond), len(res.Violations))
}
