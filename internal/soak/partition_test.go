package soak

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestPartitionSoakSmoke is the CI-sized partition soak: one seed, tight
// phases, race-enabled. It exercises the whole chaos timeline — standby
// partition without promotion, metadata partition with degraded views,
// primary kill with exactly-one promotion and automatic re-replication —
// and fails on any linearizability violation.
func TestPartitionSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("partition soak skipped in -short mode")
	}
	res, err := RunPartition(PartitionConfig{
		// Two dispatchers so the servers cross replication/checkpoint cuts
		// from concurrent sessions — the regression surface for cross-version
		// copy-on-write around a cut (Store.CutPending).
		Threads:     2,
		Seed:        41,
		ArtifactDir: os.Getenv("SOAK_ARTIFACT_DIR"),
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("partition soak failed to run: %v", err)
	}
	report(t, res)
}

// TestPartitionSoakSweep is the long multi-seed sweep, enabled with
// SOAK_PARTITION=1 (CI's chaos job and manual deep runs).
func TestPartitionSoakSweep(t *testing.T) {
	if os.Getenv("SOAK_PARTITION") == "" {
		t.Skip("set SOAK_PARTITION=1 to run the multi-seed partition sweep")
	}
	for _, seed := range []int64{1, 7, 23, 99, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := RunPartition(PartitionConfig{
				Threads:      2,
				Seed:         seed,
				PartitionFor: 1200 * time.Millisecond,
				Warmup:       500 * time.Millisecond,
				ArtifactDir:  os.Getenv("SOAK_ARTIFACT_DIR"),
				Logf:         t.Logf,
			})
			if err != nil {
				t.Fatalf("seed %d: partition soak failed to run: %v", seed, err)
			}
			report(t, res)
		})
	}
}

func report(t *testing.T, res PartitionResult) {
	t.Helper()
	t.Logf("partition soak: %d ops in %v (%.3f Mops/s), heal %v, degraded %v, promoted %v, re-replicate %v, shed %d (%.2f%%)",
		res.Ops, res.Duration.Round(time.Millisecond), res.AggregateMops,
		res.TimeToHeal.Round(time.Millisecond),
		res.DegradedObserved.Round(time.Millisecond),
		res.PromotedIn.Round(time.Millisecond),
		res.TimeToReReplicate.Round(time.Millisecond),
		res.BatchesShed, res.ShedRate*100)
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Ops == 0 {
		t.Error("soak acked zero operations")
	}
	if res.TimeToHeal == 0 {
		t.Error("phase A never measured a heal")
	}
	if res.PromotedIn == 0 {
		t.Error("phase C never measured a promotion")
	}
	if res.TimeToReReplicate == 0 {
		t.Error("phase C never measured automatic re-replication")
	}
}
