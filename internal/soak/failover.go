package soak

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/metadata"
	"repro/shadowfax"
)

// The failover soak drives a replicated primary under the same per-key
// linearizability ledger as the cluster soak, then injects one of three
// replication faults mid-load — without pausing or draining the workers, so
// the kill genuinely lands under in-flight operations:
//
//   - KillPrimary: the primary dies abruptly; the standby must detect the
//     silence, win the metadata promotion, and serve every acked write. The
//     final sweep (acked ≤ value ≤ issued per key) is the zero-acked-write-
//     loss check: a write whose response was released before the backup
//     held it would read back low.
//   - KillBackup: the standby dies; the primary must detach it and keep
//     serving (responses stop gating on a dead backup's acks).
//   - KillMidPromotion: the primary dies and its checkpoint-backed restart
//     races the standby's promotion. The metadata store must pick exactly
//     one winner: with a synced replica attached, the restart is refused
//     with ErrDeposed whether or not the promotion has landed yet.
type FailoverFault int

const (
	// KillPrimary kills the primary abruptly mid-load.
	KillPrimary FailoverFault = iota
	// KillBackup kills the standby abruptly mid-load.
	KillBackup
	// KillMidPromotion kills the primary and races its restart against the
	// standby's promotion.
	KillMidPromotion
)

func (f FailoverFault) String() string {
	switch f {
	case KillPrimary:
		return "kill-primary"
	case KillBackup:
		return "kill-backup"
	case KillMidPromotion:
		return "kill-mid-promotion"
	}
	return fmt.Sprintf("FailoverFault(%d)", int(f))
}

// FailoverConfig sizes one failover soak. Zero fields take the documented
// defaults.
type FailoverConfig struct {
	// Threads is the servers' dispatcher count (default 1).
	Threads int
	// Clients is the number of independent client workers (default 3).
	Clients int
	// Keys is the keyspace size (default 512).
	Keys int
	// BatchOps is each worker's async ops per flush round (default 64).
	BatchOps int
	// Duration bounds the loaded phase (default 3s); the fault lands near
	// its midpoint, jittered by the seed.
	Duration time.Duration
	// Seed fixes the workers' RNGs and the fault-time jitter.
	Seed int64
	// Fault selects the schedule (default KillPrimary).
	Fault FailoverFault
	// ArtifactDir, when set, receives violations.txt and key_history.csv
	// after a run that recorded violations (CI failure artifacts).
	ArtifactDir string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// FailoverResult is one failover soak's outcome.
type FailoverResult struct {
	Fault    FailoverFault
	Duration time.Duration

	// Ops counts acked client operations; AggregateMops is Ops over the
	// loaded-phase wall clock.
	Ops           uint64
	AggregateMops float64

	// PromotedIn is the delay from the primary's death to the standby
	// serving as primary (kill-primary schedules; 0 for kill-backup).
	PromotedIn time.Duration

	// Violations lists every correctness breach observed (capped); empty
	// means every acked write survived and every read was linearizable.
	Violations []string
}

func (c *FailoverConfig) withDefaults() {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Clients <= 0 {
		c.Clients = 3
	}
	if c.Keys <= 0 {
		c.Keys = 512
	}
	if c.BatchOps <= 0 {
		c.BatchOps = 64
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

type fharness struct {
	cfg     FailoverConfig
	cluster *shadowfax.Cluster
	primary *shadowfax.Server
	standby *shadowfax.Server
	logDev  *shadowfax.MemDevice
	ckptDev *shadowfax.MemDevice
	clients []*shadowfax.Client

	keys   [][]byte
	states []keyState

	stop     atomic.Bool
	start    time.Time
	opsAcked atomic.Uint64

	// recMu serializes session recovery: the first worker to hit a broken
	// session repairs it for everyone; the rest retry as instant no-ops.
	recMu sync.Mutex

	violMu sync.Mutex
	viol   []string

	finals []uint64 // final-sweep values, for the artifact dump
}

const (
	foPrimaryID = "p0"
	foStandbyID = "p0-standby"
)

// RunFailover executes one failover soak: boot the replicated pair, preload,
// load, inject the fault without pausing the load, keep loading, drain,
// final sweep. Harness failures (a cluster that cannot boot) come back as
// the error; correctness breaches land in Result.Violations.
func RunFailover(cfg FailoverConfig) (FailoverResult, error) {
	cfg.withDefaults()
	h := &fharness{cfg: cfg}
	h.cluster = shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	defer h.cluster.Close()
	defer h.closeAll()

	if err := h.boot(); err != nil {
		return FailoverResult{}, err
	}
	if err := h.preload(); err != nil {
		return FailoverResult{}, err
	}

	h.start = time.Now()
	var wg sync.WaitGroup
	for i, cl := range h.clients {
		wg.Add(1)
		go func(idx int, cl *shadowfax.Client) {
			defer wg.Done()
			h.worker(idx, cl)
		}(i, cl)
	}

	res := FailoverResult{Fault: cfg.Fault}

	// The fault lands near the midpoint, jittered by the seed so different
	// seeds catch the kill at different batch phases.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xfa11))
	killAt := cfg.Duration/2 + time.Duration(rng.Int63n(int64(cfg.Duration/8+1)))
	time.Sleep(time.Until(h.start.Add(killAt)))

	var faultErr error
	switch cfg.Fault {
	case KillPrimary:
		res.PromotedIn, faultErr = h.killPrimary(false)
	case KillMidPromotion:
		res.PromotedIn, faultErr = h.killPrimary(true)
	case KillBackup:
		faultErr = h.killBackup()
	}
	if faultErr != nil {
		h.stop.Store(true)
		wg.Wait()
		return FailoverResult{}, faultErr
	}

	if rest := time.Until(h.start.Add(cfg.Duration)); rest > 0 {
		time.Sleep(rest)
	}
	h.stop.Store(true)
	wg.Wait()
	loaded := time.Since(h.start)

	h.finalSweep()

	res.Duration = loaded
	res.Ops = h.opsAcked.Load()
	if secs := loaded.Seconds(); secs > 0 {
		res.AggregateMops = float64(res.Ops) / secs / 1e6
	}
	h.violMu.Lock()
	res.Violations = append(res.Violations, h.viol...)
	h.violMu.Unlock()
	h.dumpArtifacts(res)
	return res, nil
}

func (h *fharness) boot() error {
	h.logDev = shadowfax.NewMemDevice(shadowfax.LatencyModel{}, 2)
	h.ckptDev = shadowfax.NewMemDevice(shadowfax.LatencyModel{}, 2)
	primary, err := shadowfax.NewServer(h.cluster, foPrimaryID,
		shadowfax.WithThreads(h.cfg.Threads),
		shadowfax.WithSampleDuration(sampleDuration),
		shadowfax.WithLogDevice(h.logDev),
		shadowfax.WithCheckpointDevice(h.ckptDev))
	if err != nil {
		return fmt.Errorf("soak: booting primary: %w", err)
	}
	h.primary = primary
	standby, err := shadowfax.NewServer(h.cluster, foStandbyID,
		shadowfax.WithThreads(h.cfg.Threads),
		shadowfax.WithSampleDuration(sampleDuration),
		shadowfax.WithReplication(shadowfax.ReplicationConfig{
			ReplicaOf:      foPrimaryID,
			HeartbeatEvery: 10 * time.Millisecond,
			FailoverAfter:  120 * time.Millisecond,
			AckTimeout:     500 * time.Millisecond,
		}))
	if err != nil {
		return fmt.Errorf("soak: booting standby: %w", err)
	}
	h.standby = standby

	deadline := time.Now().Add(time.Minute)
	for {
		if r, ok := h.cluster.Replicas()[foPrimaryID]; ok && r.Synced {
			break
		}
		if time.Now().After(deadline) {
			return errors.New("soak: standby never finished its base sync")
		}
		time.Sleep(2 * time.Millisecond)
	}

	for i := 0; i < h.cfg.Clients; i++ {
		cl, err := shadowfax.Dial(h.cluster, shadowfax.WithClientThreads(1))
		if err != nil {
			return fmt.Errorf("soak: dialing client %d: %w", i, err)
		}
		h.clients = append(h.clients, cl)
	}

	h.keys = make([][]byte, h.cfg.Keys)
	h.states = make([]keyState, h.cfg.Keys)
	for i := range h.keys {
		h.keys[i] = []byte(fmt.Sprintf("fail-%06d", i))
	}
	return nil
}

func (h *fharness) closeAll() {
	for _, cl := range h.clients {
		cl.Close()
	}
	h.clients = nil
	if h.standby != nil {
		h.standby.Close()
	}
	if h.primary != nil {
		h.primary.Close()
	}
	if h.logDev != nil {
		h.logDev.Close()
	}
	if h.ckptDev != nil {
		h.ckptDev.Close()
	}
}

// preload materializes every key as a zero counter, then checkpoints the
// primary so a kill-mid-promotion restart attempt has an image to recover
// from.
func (h *fharness) preload() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl := h.clients[0]
	zero := make([]byte, 8)
	for i := range h.keys {
		if err := cl.Set(ctx, h.keys[i], zero); err != nil {
			return fmt.Errorf("soak: preloading key %d: %w", i, err)
		}
	}
	if err := cl.Drain(ctx); err != nil {
		return fmt.Errorf("soak: preload drain: %w", err)
	}
	if _, err := h.primary.Checkpoint(); err != nil {
		return fmt.Errorf("soak: preload checkpoint: %w", err)
	}
	return nil
}

func (h *fharness) violate(format string, args ...any) {
	h.violMu.Lock()
	defer h.violMu.Unlock()
	if len(h.viol) < 32 {
		h.viol = append(h.viol, fmt.Sprintf(format, args...))
	}
}

// worker drives one client with zipf-skewed batches of RMW increments and
// checked reads. Unlike the cluster soak there is no gate: the fault lands
// under live traffic, so a batch may die with its session — those ops stay
// indeterminate (unacked; the [acked, issued] bounds cover both outcomes)
// and the worker repairs its sessions before the next batch.
func (h *fharness) worker(idx int, cl *shadowfax.Client) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + int64(idx)*7919))
	zipf := rand.NewZipf(rng, 1.2, 8, uint64(h.cfg.Keys-1))
	delta := make([]byte, 8)
	binary.LittleEndian.PutUint64(delta, 1)

	type pendingOp struct {
		f    *shadowfax.Future
		key  int
		read bool
		lb   uint64
	}
	pend := make([]pendingOp, 0, h.cfg.BatchOps)

	for !h.stop.Load() {
		pend = pend[:0]
		for j := 0; j < h.cfg.BatchOps; j++ {
			k := int(zipf.Uint64() % uint64(h.cfg.Keys))
			ks := &h.states[k]
			if rng.Intn(4) == 0 {
				lb := ks.acked.Load()
				if o := ks.observed.Load(); o > lb {
					lb = o
				}
				pend = append(pend, pendingOp{f: cl.GetAsync(h.keys[k]), key: k, read: true, lb: lb})
			} else {
				ks.issued.Add(1)
				pend = append(pend, pendingOp{f: cl.RMWAsync(h.keys[k], delta), key: k})
			}
		}
		cl.Flush()
		wctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		needRecover := false
		for _, p := range pend {
			v, err := p.f.Wait(wctx)
			ks := &h.states[p.key]
			switch {
			case err == nil && p.read:
				if len(v) != 8 {
					h.violate("key %d: read returned %d bytes, want 8", p.key, len(v))
				} else {
					got := binary.LittleEndian.Uint64(v)
					hi := ks.issued.Load()
					if got < p.lb || got > hi {
						h.violate("key %d (hash %#x): read %d outside linearizable bounds [%d, %d]",
							p.key, faster.HashOf(h.keys[p.key]), got, p.lb, hi)
					}
					casMax(&ks.observed, got)
				}
				h.opsAcked.Add(1)
			case err == nil:
				ks.acked.Add(1)
				h.opsAcked.Add(1)
			case p.read && errors.Is(err, shadowfax.ErrNotFound):
				h.violate("key %d (hash %#x): vanished (NotFound after preload)",
					p.key, faster.HashOf(h.keys[p.key]))
			default:
				// A batch the kill broke: its RMWs are indeterminate and stay
				// unacked (the final sweep's issued bound covers a replay that
				// did land). Repair the sessions before the next batch.
				needRecover = true
			}
			p.f.Release()
		}
		cancel()
		if needRecover && !h.stop.Load() {
			h.recoverClient(cl)
		}
	}
}

// recoverClient repairs a client's sessions after the fault, retrying while
// the promotion (or detach) is still in flight. Serialized so concurrent
// workers don't stack redundant handshakes. Returns false once recovery is
// wedged (a violation has been recorded) so callers can stop retrying.
func (h *fharness) recoverClient(cl *shadowfax.Client) bool {
	h.recMu.Lock()
	defer h.recMu.Unlock()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := cl.RecoverSessions(ctx)
		cancel()
		if err == nil {
			return true
		}
		if time.Now().After(deadline) {
			h.violate("client session recovery wedged: %v", err)
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// killPrimary kills the primary abruptly under live load and waits for the
// standby's self-promotion. With raceRestart set it also restarts the dead
// primary from its checkpoint concurrently with the promotion — the
// metadata store must refuse the restart (ErrDeposed): its synced standby
// is the designated successor whether or not the promotion landed yet.
func (h *fharness) killPrimary(raceRestart bool) (time.Duration, error) {
	h.cfg.Logf("soak: killing primary (%s)", h.cfg.Fault)
	killed := time.Now()
	h.primary.Close()

	restartDone := make(chan error, 1)
	if raceRestart {
		go func() {
			srv, err := shadowfax.NewServer(h.cluster, foPrimaryID,
				shadowfax.WithThreads(h.cfg.Threads),
				shadowfax.WithSampleDuration(sampleDuration),
				shadowfax.WithLogDevice(h.logDev),
				shadowfax.WithCheckpointDevice(h.ckptDev),
				shadowfax.WithRecovery())
			if err == nil {
				srv.Close()
				restartDone <- errors.New("deposed primary restart was accepted")
				return
			}
			if !errors.Is(err, metadata.ErrDeposed) {
				restartDone <- fmt.Errorf("deposed primary restart failed with %v, want ErrDeposed", err)
				return
			}
			restartDone <- nil
		}()
	}

	deadline := time.Now().Add(30 * time.Second)
	for h.standby.IsStandby() {
		if time.Now().After(deadline) {
			h.violate("standby never promoted itself after the primary died")
			return 0, nil
		}
		time.Sleep(time.Millisecond)
	}
	promotedIn := time.Since(killed)
	h.cfg.Logf("soak: standby promoted %v after the kill", promotedIn.Round(time.Millisecond))

	if raceRestart {
		if err := <-restartDone; err != nil {
			h.violate("%v", err)
		}
	}
	if _, ok := h.cluster.Replicas()[foPrimaryID]; ok {
		h.violate("replica registration survived the promotion")
	}
	return promotedIn, nil
}

// killBackup kills the standby abruptly under live load; the primary must
// detach it (stop gating responses on its acks) and keep serving.
func (h *fharness) killBackup() error {
	h.cfg.Logf("soak: killing backup")
	h.standby.Close()
	deadline := time.Now().Add(30 * time.Second)
	for h.primary.Replicating() {
		if time.Now().After(deadline) {
			h.violate("primary never detached its dead backup")
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	h.cfg.Logf("soak: primary detached the dead backup")
	return nil
}

// finalSweep reads every key once more: each counter must hold at least
// every acked increment (zero acked-write loss across the fault) and at
// most every issued one (no replay applied twice).
func (h *fharness) finalSweep() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl := h.clients[0]
	// The last batch may have died with the fault and been left parked on a
	// broken session (workers skip recovery once stopped); repair before
	// draining so the parked ops replay instead of wedging the drain. A
	// wedged recovery aborts the sweep outright — retrying it per key would
	// turn one violation into hours of bounded-timeout retries.
	if !h.recoverClient(cl) {
		h.violate("final sweep aborted: client sessions unrecoverable")
		return
	}
	dctx, dcancel := context.WithTimeout(ctx, 20*time.Second)
	err := cl.Drain(dctx)
	dcancel()
	if err != nil {
		h.violate("final drain failed: %v", err)
	}
	h.finals = make([]uint64, len(h.keys))
	for i := range h.keys {
		if ctx.Err() != nil {
			h.violate("final sweep timed out at key %d of %d", i, len(h.keys))
			return
		}
		var v []byte
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			v, err = cl.Get(ctx, h.keys[i])
			if err == nil {
				break
			}
			if !h.recoverClient(cl) {
				h.violate("final sweep aborted at key %d: client sessions unrecoverable", i)
				return
			}
		}
		if err != nil {
			h.violate("final sweep: key %d unreadable: %v", i, err)
			continue
		}
		if len(v) != 8 {
			h.violate("final sweep: key %d has %d bytes, want 8", i, len(v))
			continue
		}
		got := binary.LittleEndian.Uint64(v)
		h.finals[i] = got
		ks := &h.states[i]
		acked, issued := ks.acked.Load(), ks.issued.Load()
		if got < acked || got > issued {
			h.violate("final sweep: key %d = %d, want within [acked %d, issued %d]",
				i, got, acked, issued)
		}
	}
}

// dumpArtifacts writes the violation trace and the per-key history table
// into ArtifactDir after a failed run, so CI uploads them for post-mortem.
func (h *fharness) dumpArtifacts(res FailoverResult) {
	if h.cfg.ArtifactDir == "" || len(res.Violations) == 0 {
		return
	}
	if err := os.MkdirAll(h.cfg.ArtifactDir, 0o755); err != nil {
		h.cfg.Logf("soak: artifact dir: %v", err)
		return
	}
	trace := fmt.Sprintf("fault=%s seed=%d duration=%v promoted_in=%v ops=%d\n\n",
		res.Fault, h.cfg.Seed, res.Duration, res.PromotedIn, res.Ops)
	for _, v := range res.Violations {
		trace += v + "\n"
	}
	if err := os.WriteFile(filepath.Join(h.cfg.ArtifactDir, "violations.txt"),
		[]byte(trace), 0o644); err != nil {
		h.cfg.Logf("soak: writing violations.txt: %v", err)
	}
	hist := "key,hash,issued,acked,observed,final\n"
	for i := range h.keys {
		ks := &h.states[i]
		final := uint64(0)
		if i < len(h.finals) {
			final = h.finals[i]
		}
		hist += fmt.Sprintf("%s,%#x,%d,%d,%d,%d\n", h.keys[i],
			faster.HashOf(h.keys[i]), ks.issued.Load(), ks.acked.Load(),
			ks.observed.Load(), final)
	}
	if err := os.WriteFile(filepath.Join(h.cfg.ArtifactDir, "key_history.csv"),
		[]byte(hist), 0o644); err != nil {
		h.cfg.Logf("soak: writing key_history.csv: %v", err)
	}
	h.cfg.Logf("soak: wrote failure artifacts to %s", h.cfg.ArtifactDir)
}
