package soak

import (
	"os"
	"testing"
	"time"
)

// TestSoakLinearizability is the acceptance soak: 8 in-process servers under
// skewed shifting load with the full fault schedule — kill/restart with
// recovery, migration cancellation, forced concurrent disjoint-range
// migrations, live overlapping-start attempts — and zero linearizability
// violations. Run it with -race: the harness's checker goroutines and the
// servers' dispatchers sharing one process is the point.
func TestSoakLinearizability(t *testing.T) {
	if testing.Short() {
		t.Skip("soak takes seconds; skipped in -short")
	}
	res, err := Run(Config{
		Servers:  8,
		Clients:  4,
		Keys:     2048,
		Duration: 4 * time.Second,
		Seed:     1,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("soak run failed: %v", err)
	}
	assertSoak(t, res)
	if res.Kills < 1 {
		t.Errorf("no kill/restart cycle executed (want >= 1)")
	}
	if res.Cancels < 1 {
		t.Errorf("no migration cancellation executed (want >= 1)")
	}
	t.Logf("soak: %d ops (%.3f Mops/s aggregate), %d migrations seen, max %d concurrent, %d kills, %d cancels, %d overlap rejections",
		res.Ops, res.AggregateMops, res.MigrationsSeen, res.MaxConcurrentMigrations,
		res.Kills, res.Cancels, res.OverlapRejections)
}

// TestSoakReadCache runs one full fault schedule with the second-chance
// read cache enabled and a memory budget small enough that part of the
// keyspace lives on storage: cache promotions must coexist with fences,
// concurrent migrations, kills and recovery without a single violation.
func TestSoakReadCache(t *testing.T) {
	if testing.Short() {
		t.Skip("soak takes seconds; skipped in -short")
	}
	res, err := Run(Config{
		Servers:   4,
		Clients:   4,
		Keys:      4096,
		Duration:  4 * time.Second,
		Seed:      7,
		ReadCache: true,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("soak run failed: %v", err)
	}
	assertSoak(t, res)
	t.Logf("read-cache soak: %d ops (%.3f Mops/s), %d migrations seen, max %d concurrent",
		res.Ops, res.AggregateMops, res.MigrationsSeen, res.MaxConcurrentMigrations)
}

// TestSoakSmoke is the CI smoke configuration: 4 servers, a longer budget,
// fixed seed. Gated behind SOAK_SMOKE=1 so the ordinary test run stays fast;
// the CI workflow's soak job sets it.
func TestSoakSmoke(t *testing.T) {
	if os.Getenv("SOAK_SMOKE") == "" {
		t.Skip("set SOAK_SMOKE=1 to run the CI soak smoke")
	}
	dur := 30 * time.Second
	if d := os.Getenv("SOAK_DURATION"); d != "" {
		if parsed, err := time.ParseDuration(d); err == nil {
			dur = parsed
		}
	}
	res, err := Run(Config{
		Servers:         4,
		Clients:         4,
		Keys:            2048,
		Duration:        dur,
		Seed:            42,
		Kills:           3,
		Cancels:         3,
		ConcurrentPairs: 3,
		OverlapAttempts: 3,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("soak run failed: %v", err)
	}
	assertSoak(t, res)
	t.Logf("soak smoke: %d ops (%.3f Mops/s), %d migrations, max %d concurrent, %d kills, %d cancels, %d overlap rejections",
		res.Ops, res.AggregateMops, res.MigrationsSeen, res.MaxConcurrentMigrations,
		res.Kills, res.Cancels, res.OverlapRejections)
}

// assertSoak checks the invariants every soak configuration must satisfy.
func assertSoak(t *testing.T, res Result) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Ops == 0 {
		t.Error("no operations acked: the workload never ran")
	}
	if res.MaxConcurrentMigrations < 2 {
		t.Errorf("max concurrent migrations = %d, want >= 2 (concurrency never demonstrated)",
			res.MaxConcurrentMigrations)
	}
	if res.OverlapRejections < 1 {
		t.Error("no live overlapping start was rejected (want >= 1)")
	}
	if res.MigrationsSeen < 2 {
		t.Errorf("only %d migrations observed in flight", res.MigrationsSeen)
	}
}
