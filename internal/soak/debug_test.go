package soak

import (
	"os"
	"strconv"
	"testing"
	"time"
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// TestSoakDebug is a knob-driven soak driver for chasing a specific failure
// interactively; it is skipped unless SOAK_DEBUG=1. Fault counts come from
// the environment (S, SEED, KILLS, CANCELS, PAIRS, OVERLAPS); note that a
// count of 0 means "use the default" (withDefaults) — pass -1 to genuinely
// disable a fault class. Example:
//
//	SOAK_DEBUG=1 SEED=7 KILLS=2 CANCELS=-1 PAIRS=3 OVERLAPS=-1 \
//	  go test ./internal/soak -run TestSoakDebug -count=1 -v
func TestSoakDebug(t *testing.T) {
	if os.Getenv("SOAK_DEBUG") == "" {
		t.Skip("set SOAK_DEBUG=1 to run the knob-driven soak driver")
	}
	res, err := Run(Config{
		Servers:         envInt("S", 4),
		Clients:         4,
		Keys:            2048,
		Duration:        time.Duration(envInt("SECS", 6)) * time.Second,
		Seed:            int64(envInt("SEED", 42)),
		Kills:           envInt("KILLS", 3),
		Cancels:         envInt("CANCELS", 3),
		ConcurrentPairs: envInt("PAIRS", 3),
		OverlapAttempts: envInt("OVERLAPS", 3),
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, v := range res.Violations {
		if i >= 10 {
			break
		}
		t.Errorf("violation: %s", v)
	}
	t.Logf("violations=%d ops=%d migs=%d maxconc=%d",
		len(res.Violations), res.Ops, res.MigrationsSeen, res.MaxConcurrentMigrations)
}
