// Package soak is the N-server linearizability soak harness: it boots an
// in-process cluster through the public repro/shadowfax API, drives it with
// skewed, shifting load from many client workers, and injects a
// deterministic fault schedule — server kill/restart-with-recovery cycles,
// migration cancellations, forced pairs of concurrent disjoint-range
// migrations, and live overlapping-start attempts — while continuously
// checking a per-key linearizability invariant.
//
// The invariant rides on the RMW counter merge (8-byte little-endian
// additive): every key is a counter, writers only increment it, so a
// linearizable history must show each read landing between the greatest
// completed increment the reader could know about and the total number of
// increments ever issued. Per key the harness keeps three monotonic atomics:
//
//	issued   — incremented before an RMW is handed to the client
//	acked    — incremented after the RMW's future completes OK
//	observed — CAS-max of every value a read returned
//
// A read snapshots lb = max(acked, observed) before it is issued and
// asserts lb ≤ value ≤ issued (issued re-read after completion) — a stale
// value, a lost increment, or a double-applied recovery replay all trip it.
// After the run drains, a final sweep asserts acked ≤ value ≤ issued for
// every key (all acked writes survived every kill, cancel and migration;
// nothing was applied twice).
//
// The same Run function doubles as the driver for the shadowfax-bench
// "cluster" scenario, reporting aggregate throughput and the peak migration
// concurrency the metadata store tracked.
package soak

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/metadata"
	"repro/shadowfax"
)

// Config sizes the cluster, the workload and the fault schedule. Zero
// fields take the documented defaults.
type Config struct {
	// Servers is the in-process cluster size (default 8, minimum 4: the
	// fault schedule needs two disjoint idle pairs).
	Servers int
	// Threads is each server's dispatcher count (default 1).
	Threads int
	// Clients is the number of independent client workers (default 4).
	Clients int
	// Keys is the keyspace size (default 2048).
	Keys int
	// BatchOps is each worker's async ops per flush round (default 64).
	BatchOps int
	// Duration bounds the loaded phase of the run (default 5s). Faults are
	// spread evenly across it.
	Duration time.Duration
	// Seed fixes the RNG driving workers and the fault schedule.
	Seed int64

	// Kills is the number of kill → checkpoint-backed restart → recover
	// cycles to attempt (default 2).
	Kills int
	// Cancels is the number of migration-cancellation faults (default 2).
	// Cancels target empty hash ranges only: cancelling a range that holds
	// acked data would require replication this system does not claim.
	Cancels int
	// ConcurrentPairs is the number of forced concurrent-migration events:
	// two disjoint empty-range migrations started back-to-back on disjoint
	// server pairs, observed via Admin.BalanceStatus (default 2).
	ConcurrentPairs int
	// OverlapAttempts is the number of live overlapping StartMigration
	// attempts, each expected to fail with ErrMigrationOverlap (default 2).
	OverlapAttempts int

	// ReadCache runs every server with the second-chance read cache enabled
	// under a deliberately small memory budget, so cold reads, promotions to
	// the tail and the fault schedule (fences, migrations, checkpoints,
	// recovery) all interleave.
	ReadCache bool

	// Logf, when set, receives progress lines (e.g. testing.T.Logf).
	Logf func(format string, args ...any)
}

// Result is one soak run's outcome. A correct run has an empty Violations.
type Result struct {
	Servers  int
	Duration time.Duration

	// Ops counts acked client operations (reads + RMWs); AggregateMops is
	// Ops over the loaded-phase wall clock, in millions per second.
	Ops           uint64
	AggregateMops float64

	// Violations lists every linearizability or liveness breach observed
	// (capped); empty means the history checked out.
	Violations []string

	// MaxConcurrentMigrations is the largest in-flight migration count the
	// harness observed via Admin.BalanceStatus / the metadata store.
	MaxConcurrentMigrations int
	// MigrationsSeen counts distinct migration IDs observed in flight
	// (fault-injected and balancer-triggered).
	MigrationsSeen int

	// Fault-schedule accounting: events that actually executed.
	Kills             int
	Cancels           int
	OverlapRejections int
}

func (c *Config) withDefaults() {
	if c.Servers <= 0 {
		c.Servers = 8
	}
	if c.Servers < 4 {
		c.Servers = 4
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Keys <= 0 {
		c.Keys = 2048
	}
	if c.BatchOps <= 0 {
		c.BatchOps = 64
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Kills < 0 {
		c.Kills = 0
	} else if c.Kills == 0 {
		c.Kills = 2
	}
	if c.Cancels == 0 {
		c.Cancels = 2
	}
	if c.ConcurrentPairs == 0 {
		c.ConcurrentPairs = 2
	}
	if c.OverlapAttempts == 0 {
		c.OverlapAttempts = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// keyState is one key's linearizability ledger (see the package comment).
type keyState struct {
	issued   atomic.Uint64
	acked    atomic.Uint64
	observed atomic.Uint64
}

// node is one server slot; srv is swapped in place across kill/restart
// cycles while the devices persist the slot's durable state.
type node struct {
	id      string
	balance bool // hosts a balancer (re-armed on restart)

	mu      sync.Mutex
	srv     *shadowfax.Server
	logDev  *shadowfax.MemDevice
	ckptDev *shadowfax.MemDevice
}

func (n *node) server() *shadowfax.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

type harness struct {
	cfg     Config
	cluster *shadowfax.Cluster
	nodes   []*node
	clients []*shadowfax.Client
	admin   *shadowfax.Admin

	keys   [][]byte
	hashes []uint64 // sorted key hashes, for empty-range discovery
	states []keyState

	// gate pauses the workers: workers hold it R across one batch; the
	// fault injector takes it W so a kill never races an in-flight op.
	gate  sync.RWMutex
	stop  atomic.Bool
	start time.Time

	opsAcked atomic.Uint64

	violMu sync.Mutex
	viol   []string

	migMu   sync.Mutex
	migSeen map[uint64]bool
	migMax  int

	// injRng belongs to the fault injector alone (one goroutine).
	injRng *rand.Rand

	kills, cancels, overlaps int
}

const (
	sampleDuration = 20 * time.Millisecond
	balancerEvery  = 150 * time.Millisecond
)

// Run executes one soak: boot, preload, load + faults, drain, final sweep.
// The error return covers harness failures (a server that cannot restart);
// correctness breaches land in Result.Violations instead.
func Run(cfg Config) (Result, error) {
	cfg.withDefaults()
	h := &harness{
		cfg: cfg, migSeen: map[uint64]bool{},
		injRng: rand.New(rand.NewSource(cfg.Seed ^ 0x50a4)),
	}
	h.cluster = shadowfax.NewCluster(shadowfax.WithInProcessNetwork(shadowfax.NetFree))
	defer h.cluster.Close()

	if err := h.boot(); err != nil {
		h.closeAll()
		return Result{}, err
	}
	defer h.closeAll()

	if err := h.preload(); err != nil {
		return Result{}, err
	}

	h.start = time.Now()
	pollDone := make(chan struct{})
	go h.pollMigrations(pollDone)

	var wg sync.WaitGroup
	for i, cl := range h.clients {
		wg.Add(1)
		go func(idx int, cl *shadowfax.Client) {
			defer wg.Done()
			h.worker(idx, cl)
		}(i, cl)
	}

	if err := h.injectFaults(); err != nil {
		h.stop.Store(true)
		wg.Wait()
		close(pollDone)
		return Result{}, err
	}

	h.stop.Store(true)
	wg.Wait()
	loaded := time.Since(h.start)
	close(pollDone)

	h.settle()
	h.finalSweep()

	res := Result{
		Servers:  cfg.Servers,
		Duration: loaded,
		Ops:      h.opsAcked.Load(),
		Kills:    h.kills, Cancels: h.cancels, OverlapRejections: h.overlaps,
	}
	if secs := loaded.Seconds(); secs > 0 {
		res.AggregateMops = float64(res.Ops) / secs / 1e6
	}
	h.migMu.Lock()
	res.MaxConcurrentMigrations = h.migMax
	res.MigrationsSeen = len(h.migSeen)
	h.migMu.Unlock()
	h.violMu.Lock()
	res.Violations = append(res.Violations, h.viol...)
	h.violMu.Unlock()
	return res, nil
}

// boot partitions the hash space evenly, starts every server on persistent
// devices (so kill/restart cycles recover from them), hosts balancers on the
// first two nodes, and dials the client workers.
func (h *harness) boot() error {
	n := h.cfg.Servers
	step := ^uint64(0) / uint64(n)
	for i := 0; i < n; i++ {
		nd := &node{
			id:      fmt.Sprintf("s%02d", i),
			balance: i < 2,
			logDev:  shadowfax.NewMemDevice(shadowfax.LatencyModel{}, 2),
			ckptDev: shadowfax.NewMemDevice(shadowfax.LatencyModel{}, 2),
		}
		start := uint64(i) * step
		end := start + step
		if i == n-1 {
			end = ^uint64(0)
		}
		srv, err := shadowfax.NewServer(h.cluster, nd.id, h.serverOpts(nd,
			shadowfax.WithOwnership(shadowfax.HashRange{Start: start, End: end}))...)
		if err != nil {
			return fmt.Errorf("soak: booting %s: %w", nd.id, err)
		}
		nd.srv = srv
		h.nodes = append(h.nodes, nd)
	}
	for i := 0; i < h.cfg.Clients; i++ {
		cl, err := shadowfax.Dial(h.cluster, shadowfax.WithClientThreads(1))
		if err != nil {
			return fmt.Errorf("soak: dialing client %d: %w", i, err)
		}
		h.clients = append(h.clients, cl)
	}
	h.admin = shadowfax.NewAdmin(h.cluster)

	h.keys = make([][]byte, h.cfg.Keys)
	h.hashes = make([]uint64, h.cfg.Keys)
	h.states = make([]keyState, h.cfg.Keys)
	for i := range h.keys {
		h.keys[i] = []byte(fmt.Sprintf("soak-%06d", i))
		h.hashes[i] = faster.HashOf(h.keys[i])
	}
	sort.Slice(h.hashes, func(a, b int) bool { return h.hashes[a] < h.hashes[b] })
	return nil
}

// serverOpts is the option set shared by boot and restart-after-kill; the
// devices come from the node so recovery sees the pre-kill state.
func (h *harness) serverOpts(nd *node, extra ...shadowfax.ServerOption) []shadowfax.ServerOption {
	opts := []shadowfax.ServerOption{
		shadowfax.WithThreads(h.cfg.Threads),
		shadowfax.WithLogDevice(nd.logDev),
		shadowfax.WithCheckpointDevice(nd.ckptDev),
		shadowfax.WithSampleDuration(sampleDuration),
	}
	if h.cfg.ReadCache {
		// A small budget (4 KiB pages, 16 frames) forces part of the
		// keyspace onto storage so the cache actually promotes.
		opts = append(opts,
			shadowfax.WithMemoryBudget(12, 16, 8),
			shadowfax.WithReadCache(true))
	}
	if nd.balance {
		opts = append(opts, shadowfax.WithAutoScale(shadowfax.AutoScaleConfig{
			Every:         balancerEvery,
			Imbalance:     2.0,
			Cooldown:      1500 * time.Millisecond,
			MinOpsPerSec:  200,
			MaxConcurrent: 4,
		}))
	}
	return append(opts, extra...)
}

func (h *harness) closeAll() {
	for _, cl := range h.clients {
		cl.Close()
	}
	h.clients = nil
	for _, nd := range h.nodes {
		if srv := nd.server(); srv != nil {
			srv.Close()
		}
		nd.logDev.Close()
		nd.ckptDev.Close()
	}
	h.nodes = nil
}

// preload materializes every key as a zero counter so NotFound is a
// violation from the first read on.
func (h *harness) preload() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl := h.clients[0]
	zero := make([]byte, 8)
	for i := range h.keys {
		if err := cl.Set(ctx, h.keys[i], zero); err != nil {
			return fmt.Errorf("soak: preloading key %d: %w", i, err)
		}
	}
	return cl.Drain(ctx)
}

func (h *harness) violate(format string, args ...any) {
	h.violMu.Lock()
	defer h.violMu.Unlock()
	if len(h.viol) < 32 {
		h.viol = append(h.viol, fmt.Sprintf(format, args...))
	}
}

// observeInFlight folds one in-flight snapshot into the concurrency ledger.
func (h *harness) observeInFlight(migs []shadowfax.MigrationState) {
	live := 0
	h.migMu.Lock()
	for _, m := range migs {
		if !m.InFlight() {
			continue
		}
		live++
		if !h.migSeen[m.ID] {
			h.cfg.Logf("mig %d epoch %d %s->%s %s", m.ID, m.Epoch, m.Source, m.Target, m.Range)
		}
		h.migSeen[m.ID] = true
	}
	if live > h.migMax {
		h.migMax = live
	}
	h.migMu.Unlock()
}

// pollMigrations samples the metadata store's in-flight set continuously so
// balancer-triggered concurrency is captured too, not just forced pairs.
func (h *harness) pollMigrations(done <-chan struct{}) {
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			h.observeInFlight(h.cluster.Migrations())
		}
	}
}

// hotspotShift rotates the zipf hotspot through the keyspace over the run,
// so the balancer sees load move between servers.
func (h *harness) hotspotShift() uint64 {
	period := h.cfg.Duration / 6
	if period <= 0 {
		period = time.Second
	}
	steps := uint64(time.Since(h.start) / period)
	return steps * uint64(h.cfg.Keys) / 7
}

// worker drives one client with zipf-skewed batches of 75% RMW increments
// and 25% checked reads until the run stops. The gate is held R across each
// batch so the injector's W-acquisition doubles as a barrier: when it holds
// the gate, no client op is in flight.
func (h *harness) worker(idx int, cl *shadowfax.Client) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + int64(idx)*7919))
	zipf := rand.NewZipf(rng, 1.2, 8, uint64(h.cfg.Keys-1))
	delta := make([]byte, 8)
	binary.LittleEndian.PutUint64(delta, 1)

	type pendingOp struct {
		f    *shadowfax.Future
		key  int
		read bool
		lb   uint64
	}
	pend := make([]pendingOp, 0, h.cfg.BatchOps)

	for !h.stop.Load() {
		h.gate.RLock()
		if h.stop.Load() {
			h.gate.RUnlock()
			return
		}
		shift := h.hotspotShift()
		pend = pend[:0]
		for j := 0; j < h.cfg.BatchOps; j++ {
			k := int((zipf.Uint64() + shift) % uint64(h.cfg.Keys))
			ks := &h.states[k]
			if rng.Intn(4) == 0 {
				lb := ks.acked.Load()
				if o := ks.observed.Load(); o > lb {
					lb = o
				}
				pend = append(pend, pendingOp{f: cl.GetAsync(h.keys[k]), key: k, read: true, lb: lb})
			} else {
				ks.issued.Add(1)
				pend = append(pend, pendingOp{f: cl.RMWAsync(h.keys[k], delta), key: k})
			}
		}
		cl.Flush()
		wctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		for _, p := range pend {
			v, err := p.f.Wait(wctx)
			ks := &h.states[p.key]
			switch {
			case err == nil && p.read:
				if len(v) != 8 {
					h.violate("key %d: read returned %d bytes, want 8", p.key, len(v))
				} else {
					got := binary.LittleEndian.Uint64(v)
					hi := ks.issued.Load()
					if got < p.lb || got > hi {
						h.violate("key %d (hash %#x): read %d outside linearizable bounds [%d, %d]",
							p.key, faster.HashOf(h.keys[p.key]), got, p.lb, hi)
					}
					casMax(&ks.observed, got)
				}
				h.opsAcked.Add(1)
			case err == nil:
				ks.acked.Add(1)
				h.opsAcked.Add(1)
			case p.read && errors.Is(err, shadowfax.ErrNotFound):
				h.violate("key %d (hash %#x): vanished (NotFound after preload)", p.key, faster.HashOf(h.keys[p.key]))
			case errors.Is(err, context.DeadlineExceeded):
				// Liveness: nothing in the schedule may wedge an op for a
				// minute. (RMW futures stay unacked — covered by issued.)
				h.violate("worker %d key %d: op stuck >1m (read=%v): %v", idx, p.key, p.read, err)
			default:
				// Transient (view churn mid-recovery): indeterminate RMWs
				// stay unacked; the final sweep's issued bound covers them.
			}
			p.f.Release()
		}
		cancel()
		h.gate.RUnlock()
	}
}

func casMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ---- fault schedule ----------------------------------------------------

// injectFaults runs the deterministic event schedule, spread evenly over the
// loaded phase. Event order interleaves the four fault kinds round-robin so
// kills land between concurrency events rather than clumping.
func (h *harness) injectFaults() error {
	type eventFn func() error
	var events []eventFn
	counts := []struct {
		n  int
		fn eventFn
	}{
		{h.cfg.ConcurrentPairs, h.concurrentPairEvent},
		{h.cfg.Kills, h.killEvent},
		{h.cfg.OverlapAttempts, h.overlapEvent},
		{h.cfg.Cancels, h.cancelEvent},
	}
	for round := 0; ; round++ {
		added := false
		for _, c := range counts {
			if round < c.n {
				events = append(events, c.fn)
				added = true
			}
		}
		if !added {
			break
		}
	}
	if len(events) == 0 {
		time.Sleep(h.cfg.Duration)
		return nil
	}
	gap := h.cfg.Duration / time.Duration(len(events)+1)
	deadline := time.Now().Add(h.cfg.Duration)
	for _, ev := range events {
		time.Sleep(gap)
		if err := ev(); err != nil {
			return err
		}
	}
	if rest := time.Until(deadline); rest > 0 {
		time.Sleep(rest)
	}
	return nil
}

// idleServers returns node indices not party to any in-flight migration,
// shuffled by the injector's seeded RNG (injector goroutine only).
func (h *harness) idleServers(exclude map[int]bool) []int {
	busy := map[string]bool{}
	for _, m := range h.cluster.Migrations() {
		if m.InFlight() {
			busy[m.Source] = true
			busy[m.Target] = true
		}
	}
	var out []int
	for i, nd := range h.nodes {
		if !busy[nd.id] && !exclude[i] {
			out = append(out, i)
		}
	}
	h.injRng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

// emptyRange finds a hash subrange owned by the node that contains no
// workload key hash: migrating or cancelling it can never lose data. It
// picks the widest gap between consecutive key hashes inside the node's
// owned ranges.
func (h *harness) emptyRange(idx int) (shadowfax.HashRange, bool) {
	view, err := h.cluster.View(h.nodes[idx].id)
	if err != nil {
		return shadowfax.HashRange{}, false
	}
	var best shadowfax.HashRange
	var bestW uint64
	consider := func(lo, hi uint64) { // candidate empty span [lo, hi)
		if hi > lo && hi-lo > bestW {
			best, bestW = shadowfax.HashRange{Start: lo, End: hi}, hi-lo
		}
	}
	for _, r := range view.Ranges {
		lo := sort.Search(len(h.hashes), func(i int) bool { return h.hashes[i] >= r.Start })
		hi := sort.Search(len(h.hashes), func(i int) bool { return h.hashes[i] >= r.End })
		prev := r.Start
		for _, kh := range h.hashes[lo:hi] {
			consider(prev, kh)
			prev = kh + 1
		}
		consider(prev, r.End)
	}
	if bestW < 16 {
		return shadowfax.HashRange{}, false
	}
	// Take the middle half so repeated events on adjacent ownership don't
	// keep colliding on identical bounds.
	q := bestW / 4
	return shadowfax.HashRange{Start: best.Start + q, End: best.End - q}, true
}

// concurrentPairEvent forces ≥2 concurrent migrations: two empty-range
// migrations on disjoint idle server pairs started back-to-back, then
// observed through Admin.BalanceStatus — the same surface an operator would
// use — and folded into the concurrency ledger.
func (h *harness) concurrentPairEvent() error {
	free := h.idleServers(nil)
	if len(free) < 4 {
		h.cfg.Logf("soak: concurrent-pair skipped (only %d idle servers)", len(free))
		return nil
	}
	type move struct {
		src, tgt int
		rng      shadowfax.HashRange
	}
	var moves []move
	used := map[int]bool{}
	for i := 0; i+1 < len(free) && len(moves) < 2; i++ {
		src := free[i]
		if used[src] {
			continue
		}
		rng, ok := h.emptyRange(src)
		if !ok {
			continue
		}
		for j := i + 1; j < len(free); j++ {
			if !used[free[j]] && free[j] != src {
				moves = append(moves, move{src: src, tgt: free[j], rng: rng})
				used[src], used[free[j]] = true, true
				break
			}
		}
	}
	if len(moves) < 2 {
		h.cfg.Logf("soak: concurrent-pair skipped (no two disjoint empty ranges)")
		return nil
	}
	started := 0
	for _, mv := range moves {
		if err := h.nodes[mv.src].server().StartMigration(h.nodes[mv.tgt].id, mv.rng); err != nil {
			h.cfg.Logf("soak: pair migration %s->%s %v: %v",
				h.nodes[mv.src].id, h.nodes[mv.tgt].id, mv.rng, err)
			continue
		}
		started++
	}
	if started == 2 {
		// Observe through the public admin surface, like an operator.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		st, err := h.admin.BalanceStatus(ctx, h.nodes[0].id)
		cancel()
		if err == nil {
			h.observeInFlight(st.InFlight)
			epochs := map[uint64]bool{}
			for _, m := range st.InFlight {
				if m.Epoch == 0 {
					h.violate("migration %d in flight with zero epoch", m.ID)
				}
				if epochs[m.Epoch] {
					h.violate("duplicate migration epoch %d in flight", m.Epoch)
				}
				epochs[m.Epoch] = true
			}
			h.cfg.Logf("soak: concurrent pair in flight: %d migrations via balance-status", len(st.InFlight))
		}
	}
	h.waitMigrationsSettled(10 * time.Second)
	return nil
}

// overlapEvent checks the overlap guard under fire: with an empty-range
// migration in flight, a third server's overlapping StartMigration must be
// rejected with ErrMigrationOverlap before any state changes hands.
func (h *harness) overlapEvent() error {
	free := h.idleServers(nil)
	if len(free) < 3 {
		h.cfg.Logf("soak: overlap skipped (only %d idle servers)", len(free))
		return nil
	}
	src, tgt, third := free[0], free[1], free[2]
	rng, ok := h.emptyRange(src)
	if !ok {
		h.cfg.Logf("soak: overlap skipped (no empty range on %s)", h.nodes[src].id)
		return nil
	}
	if err := h.nodes[src].server().StartMigration(h.nodes[tgt].id, rng); err != nil {
		h.cfg.Logf("soak: overlap base migration failed: %v", err)
		return nil
	}
	sub := shadowfax.HashRange{Start: rng.Start + (rng.End-rng.Start)/4, End: rng.End}
	err := h.nodes[third].server().StartMigration(h.nodes[tgt].id, sub)
	switch {
	case err == nil:
		h.violate("overlapping StartMigration %v over in-flight %v was accepted", sub, rng)
	case errors.Is(err, metadata.ErrMigrationOverlap):
		h.overlaps++
	default:
		// The base migration can complete under us (it is empty and fast);
		// then the attempt fails on ownership instead. Not a rejection we
		// count, but not a violation either.
		h.cfg.Logf("soak: overlap attempt failed with %v (base likely completed)", err)
	}
	h.observeInFlight(h.cluster.Migrations())
	h.waitMigrationsSettled(10 * time.Second)
	return nil
}

// cancelEvent starts an empty-range migration and cancels it mid-flight,
// exercising §3.3.1 cancellation: ownership snaps back to the source, both
// views advance, and the target's half-built state is retired.
func (h *harness) cancelEvent() error {
	free := h.idleServers(nil)
	if len(free) < 2 {
		h.cfg.Logf("soak: cancel skipped (only %d idle servers)", len(free))
		return nil
	}
	src, tgt := free[0], free[1]
	rng, ok := h.emptyRange(src)
	if !ok {
		h.cfg.Logf("soak: cancel skipped (no empty range on %s)", h.nodes[src].id)
		return nil
	}
	if err := h.nodes[src].server().StartMigration(h.nodes[tgt].id, rng); err != nil {
		h.cfg.Logf("soak: cancel base migration failed: %v", err)
		return nil
	}
	var id uint64
	found := false
	for _, m := range h.cluster.Migrations() {
		if m.InFlight() && m.Source == h.nodes[src].id && m.Range == rng {
			id, found = m.ID, true
			break
		}
	}
	if !found {
		h.cfg.Logf("soak: cancel target migration already gone")
		return nil
	}
	time.Sleep(sampleDuration / 2) // let it get into the protocol
	if err := h.cluster.CancelMigration(id); err != nil {
		h.cfg.Logf("soak: cancelling migration %d: %v", id, err)
		return nil
	}
	h.cancels++
	h.waitMigrationsSettled(10 * time.Second)
	return nil
}

// killEvent is the crash-recovery fault: pause and drain all load, wait for
// the victim to be clear of migrations, kick off an unrelated empty-range
// migration so the kill genuinely lands mid-migration, checkpoint the
// victim, kill it, restart it from its devices with recovery, re-establish
// every client's sessions, and resume load.
func (h *harness) killEvent() error {
	h.gate.Lock()
	defer h.gate.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, cl := range h.clients {
		if err := cl.Drain(ctx); err != nil {
			h.violate("drain before kill failed: %v", err)
			return nil
		}
	}
	// Let the balancer observe a quiet interval so it won't start a new
	// migration involving the victim between our check and the kill.
	time.Sleep(2 * balancerEvery)

	victims := h.idleServers(nil)
	if len(victims) == 0 {
		h.cfg.Logf("soak: kill skipped (no migration-free server)")
		return nil
	}
	victim := victims[0]
	nd := h.nodes[victim]

	// Make the kill land mid-migration: start an empty-range migration
	// between two *other* servers right before taking the victim down.
	others := h.idleServers(map[int]bool{victim: true})
	if len(others) >= 2 {
		if rng, ok := h.emptyRange(others[0]); ok {
			if err := h.nodes[others[0]].server().StartMigration(h.nodes[others[1]].id, rng); err == nil {
				h.cfg.Logf("soak: kill lands during migration %s->%s %v",
					h.nodes[others[0]].id, h.nodes[others[1]].id, rng)
			}
		}
	}

	nd.mu.Lock()
	if _, err := nd.srv.Checkpoint(); err != nil {
		nd.mu.Unlock()
		h.violate("checkpoint before kill of %s failed: %v", nd.id, err)
		return nil
	}
	nd.srv.Close()
	srv, err := shadowfax.NewServer(h.cluster, nd.id,
		h.serverOpts(nd, shadowfax.WithRecovery())...)
	if err != nil {
		nd.srv = nil
		nd.mu.Unlock()
		return fmt.Errorf("soak: restarting %s after kill: %w", nd.id, err)
	}
	nd.srv = srv
	nd.mu.Unlock()

	for i, cl := range h.clients {
		if err := cl.RecoverSessions(ctx); err != nil {
			h.violate("client %d session recovery after killing %s failed: %v", i, nd.id, err)
		}
	}
	h.kills++
	h.cfg.Logf("soak: killed and recovered %s", nd.id)
	h.observeInFlight(h.cluster.Migrations())
	return nil
}

// waitMigrationsSettled blocks until no migration is in flight (so events
// compose cleanly) or the timeout passes.
func (h *harness) waitMigrationsSettled(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		live := false
		for _, m := range h.cluster.Migrations() {
			if m.InFlight() {
				live = true
				break
			}
		}
		if !live {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.cfg.Logf("soak: migrations still in flight after %v", timeout)
}

// ---- teardown checks ---------------------------------------------------

// settle drains every client and waits out in-flight migrations before the
// final sweep reads.
func (h *harness) settle() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, cl := range h.clients {
		if err := cl.Drain(ctx); err != nil {
			h.violate("final drain of client %d failed: %v", i, err)
		}
	}
	h.waitMigrationsSettled(30 * time.Second)
}

// finalSweep reads every key once more: each counter must hold at least
// every acked increment (durability across kills/cancels/migrations) and at
// most every issued one (exactly-once across session recovery replays).
func (h *harness) finalSweep() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl := h.clients[0]
	for i := range h.keys {
		var v []byte
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			v, err = cl.Get(ctx, h.keys[i])
			if err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			h.violate("final sweep: key %d unreadable: %v", i, err)
			continue
		}
		if len(v) != 8 {
			h.violate("final sweep: key %d has %d bytes, want 8", i, len(v))
			continue
		}
		got := binary.LittleEndian.Uint64(v)
		ks := &h.states[i]
		acked, issued := ks.acked.Load(), ks.issued.Load()
		if got < acked || got > issued {
			h.violate("final sweep: key %d = %d, want within [acked %d, issued %d]",
				i, got, acked, issued)
		}
	}
}
