package soak

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/faster"
	"repro/internal/transport"
	"repro/shadowfax"
)

// The partition soak drives a replicated primary through a chaos.Network and
// scripts three network-fault phases under continuous load, with the same
// per-key linearizability ledger as the other soaks:
//
//   - Phase A — primary ⇹ standby partition, metadata reachable. The standby
//     loses the stream and probes, but the primary's liveness lease is still
//     being renewed, so promotion MUST be refused (a partition is not a
//     death). The primary detaches the silent backup, confirms the detach
//     against the metadata store, and releases its held responses; batches
//     past the per-connection backlog bound are shed with a retryable
//     status, and the clients requeue them after a backoff pause. On heal
//     the standby re-attaches and re-syncs (TimeToHeal).
//   - Phase B — primary ⇹ metadata partition. The primary's remote metadata
//     provider degrades to its cached snapshot; the soak observes
//     DegradedFor over the public balance-status surface, heals, and
//     requires the provider to converge back to healthy.
//   - Phase C — the primary dies. Exactly one promotion must happen
//     (PromotedIn), and the balancer's SpawnStandby hook must then provision
//     a fresh standby for the promoted primary automatically; the soak waits
//     for it to attach and finish its base sync (TimeToReReplicate).
//
// After the phases the load drains and a final sweep asserts
// acked ≤ value ≤ issued for every key: no acked write may be lost to any
// partition, shed, detach or failover, and no recovery replay may apply
// twice.

// PartitionConfig sizes one partition soak. Zero fields take the documented
// defaults.
type PartitionConfig struct {
	// Threads is the servers' dispatcher count (default 1).
	Threads int
	// Clients is the number of independent client workers (default 3).
	Clients int
	// Keys is the keyspace size (default 512).
	Keys int
	// BatchOps is each worker's async ops per flush round (default 96; with
	// the clients' 16-op wire batches each round pipelines several batches,
	// so the primary's backlog bound genuinely engages during phase A).
	BatchOps int
	// Warmup is the clean-load interval before and between fault phases
	// (default 300ms).
	Warmup time.Duration
	// PartitionFor is how long phase A holds the primary⇹standby cut —
	// must exceed the replication ack timeout so the detach fires
	// (default 900ms).
	PartitionFor time.Duration
	// Seed fixes the workers' RNGs and the chaos network's jitter draws.
	Seed int64
	// ArtifactDir, when set, receives violations.txt and key_history.csv
	// after a run that recorded violations (CI failure artifacts).
	ArtifactDir string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// PartitionResult is one partition soak's outcome.
type PartitionResult struct {
	Duration time.Duration

	// Ops counts acked client operations; AggregateMops is Ops over the
	// loaded wall clock.
	Ops           uint64
	AggregateMops float64

	// TimeToHeal is phase A's recovery: from the heal instant until the
	// standby is re-attached and fully re-synced.
	TimeToHeal time.Duration
	// DegradedObserved is the largest DegradedFor phase B saw over the
	// balance-status surface while the metadata link was cut.
	DegradedObserved time.Duration
	// PromotedIn is phase C's failover latency: from the primary's death to
	// the standby serving as primary.
	PromotedIn time.Duration
	// TimeToReReplicate is phase C's self-healing latency: from the
	// promotion until the automatically spawned replacement standby
	// finished its base sync.
	TimeToReReplicate time.Duration

	// BatchesShed counts batches the servers turned away under overload
	// (client-observed); ShedRate is that over all batches sent.
	BatchesShed uint64
	ShedRate    float64

	// Violations lists every correctness breach observed (capped); empty
	// means every acked write survived and every read was linearizable.
	Violations []string
}

func (c *PartitionConfig) withDefaults() {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Clients <= 0 {
		c.Clients = 3
	}
	if c.Keys <= 0 {
		c.Keys = 512
	}
	if c.BatchOps <= 0 {
		c.BatchOps = 96
	}
	if c.Warmup <= 0 {
		c.Warmup = 300 * time.Millisecond
	}
	if c.PartitionFor <= 0 {
		c.PartitionFor = 900 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Chaos-node names (partitions are cut between these), listen addresses are
// the server ids as usual.
const (
	pnMeta     = "meta"
	pnPrimary  = "primary"
	pnStandby  = "standby"
	pnStandby2 = "standby2"
	pnClient   = "client"

	ppMetaID     = "meta0"
	ppPrimaryID  = "p0"
	ppStandbyID  = "p0-standby"
	ppStandby2ID = "p0-standby2"
)

// Replication timing for the soak: tight enough that each phase resolves in
// hundreds of milliseconds, loose enough to be robust under -race on slow
// CI machines.
const (
	ppHeartbeat  = 10 * time.Millisecond
	ppFailover   = 120 * time.Millisecond
	ppAckTimeout = 300 * time.Millisecond
	ppBacklog    = 4 // MaxConnBacklog: small, so phase A genuinely sheds
)

type pharness struct {
	cfg PartitionConfig
	net *chaos.Network

	// metaCluster carries the in-process state-of-record store; the other
	// clusters reach it remotely through the chaos network.
	metaCluster    *shadowfax.Cluster
	primaryCluster *shadowfax.Cluster
	standbyCluster *shadowfax.Cluster
	spawnCluster   *shadowfax.Cluster
	clientCluster  *shadowfax.Cluster

	metaSrv *shadowfax.Server
	primary *shadowfax.Server
	standby *shadowfax.Server
	clients []*shadowfax.Client
	admin   *shadowfax.Admin

	// spawned is the standby the balancer's SpawnStandby hook provisioned
	// (phase C's self-healing re-replication).
	spawnMu   sync.Mutex
	spawned   *shadowfax.Server
	spawnedAt time.Time

	keys   [][]byte
	states []keyState

	stop     atomic.Bool
	start    time.Time
	opsAcked atomic.Uint64

	recMu sync.Mutex

	violMu sync.Mutex
	viol   []string

	finals []uint64
}

// RunPartition executes one partition soak: boot the chaos topology, preload,
// load, run phases A/B/C without pausing the load, drain, final sweep.
// Harness failures (a topology that cannot boot) come back as the error;
// correctness breaches land in Result.Violations.
func RunPartition(cfg PartitionConfig) (PartitionResult, error) {
	cfg.withDefaults()
	h := &pharness{cfg: cfg}
	h.net = chaos.NewNetwork(transport.NewInMem(transport.Free), uint64(cfg.Seed))
	defer h.closeAll()

	if err := h.boot(); err != nil {
		return PartitionResult{}, err
	}
	if err := h.preload(); err != nil {
		return PartitionResult{}, err
	}

	h.start = time.Now()
	var wg sync.WaitGroup
	for i, cl := range h.clients {
		wg.Add(1)
		go func(idx int, cl *shadowfax.Client) {
			defer wg.Done()
			h.worker(idx, cl)
		}(i, cl)
	}

	res := PartitionResult{}
	time.Sleep(cfg.Warmup)
	h.phaseAPartitionStandby(&res)
	time.Sleep(cfg.Warmup)
	h.phaseBPartitionMeta(&res)
	time.Sleep(cfg.Warmup)
	h.phaseCKillPrimary(&res)
	time.Sleep(cfg.Warmup) // load the promoted primary + fresh standby

	h.stop.Store(true)
	wg.Wait()
	loaded := time.Since(h.start)

	h.finalChecks()
	h.finalSweep()

	res.Duration = loaded
	res.Ops = h.opsAcked.Load()
	if secs := loaded.Seconds(); secs > 0 {
		res.AggregateMops = float64(res.Ops) / secs / 1e6
	}
	var sent uint64
	for _, cl := range h.clients {
		st := cl.Stats()
		res.BatchesShed += st.BatchesShed
		sent += st.BatchesSent
	}
	if sent > 0 {
		res.ShedRate = float64(res.BatchesShed) / float64(sent)
	}
	h.violMu.Lock()
	res.Violations = append(res.Violations, h.viol...)
	h.violMu.Unlock()
	h.dumpArtifacts(res)
	return res, nil
}

// boot builds the chaos topology: the metadata endpoint (in-process store,
// hosting the self-healing balancer), the replicated primary/standby pair on
// their own chaos nodes, and the client workers — every inter-node frame
// crosses the chaos network.
func (h *pharness) boot() error {
	h.metaCluster = shadowfax.NewCluster(shadowfax.WithTransport(h.net.Node(pnMeta)))
	metaSrv, err := shadowfax.NewServer(h.metaCluster, ppMetaID,
		shadowfax.WithThreads(1),
		shadowfax.WithOwnership(), // owns no ranges: pure metadata/balancer host
		shadowfax.WithSampleDuration(sampleDuration),
		shadowfax.WithAutoScale(shadowfax.AutoScaleConfig{
			Every:        50 * time.Millisecond,
			MinOpsPerSec: 1e12, // never split on load; this balancer only re-replicates
			SpawnStandby: h.spawnStandby,
		}))
	if err != nil {
		return fmt.Errorf("soak: booting metadata host: %w", err)
	}
	h.metaSrv = metaSrv

	h.primaryCluster = shadowfax.NewCluster(
		shadowfax.WithTransport(h.net.Node(pnPrimary)),
		shadowfax.WithRemoteMetadata(ppMetaID))
	primary, err := shadowfax.NewServer(h.primaryCluster, ppPrimaryID,
		shadowfax.WithThreads(h.cfg.Threads),
		shadowfax.WithSampleDuration(sampleDuration),
		shadowfax.WithMaxConnBacklog(ppBacklog),
		shadowfax.WithLeaseTTL(ppAckTimeout))
	if err != nil {
		return fmt.Errorf("soak: booting primary: %w", err)
	}
	h.primary = primary

	h.standbyCluster = shadowfax.NewCluster(
		shadowfax.WithTransport(h.net.Node(pnStandby)),
		shadowfax.WithRemoteMetadata(ppMetaID))
	standby, err := shadowfax.NewServer(h.standbyCluster, ppStandbyID,
		shadowfax.WithThreads(h.cfg.Threads),
		shadowfax.WithSampleDuration(sampleDuration),
		shadowfax.WithMaxConnBacklog(ppBacklog),
		shadowfax.WithLeaseTTL(ppAckTimeout),
		shadowfax.WithReplication(shadowfax.ReplicationConfig{
			ReplicaOf:      ppPrimaryID,
			HeartbeatEvery: ppHeartbeat,
			FailoverAfter:  ppFailover,
			AckTimeout:     ppAckTimeout,
		}))
	if err != nil {
		return fmt.Errorf("soak: booting standby: %w", err)
	}
	h.standby = standby
	if !h.waitSynced(time.Minute) {
		return errors.New("soak: standby never finished its base sync")
	}

	// The spawn cluster exists up front so the balancer hook can boot the
	// replacement standby without allocating shared fixtures mid-phase.
	h.spawnCluster = shadowfax.NewCluster(
		shadowfax.WithTransport(h.net.Node(pnStandby2)),
		shadowfax.WithRemoteMetadata(ppMetaID))

	h.clientCluster = shadowfax.NewCluster(
		shadowfax.WithTransport(h.net.Node(pnClient)),
		shadowfax.WithRemoteMetadata(ppMetaID))
	for i := 0; i < h.cfg.Clients; i++ {
		cl, err := shadowfax.Dial(h.clientCluster,
			shadowfax.WithClientThreads(1), shadowfax.WithBatchOps(16))
		if err != nil {
			return fmt.Errorf("soak: dialing client %d: %w", i, err)
		}
		h.clients = append(h.clients, cl)
	}
	h.admin = shadowfax.NewAdmin(h.clientCluster)

	h.keys = make([][]byte, h.cfg.Keys)
	h.states = make([]keyState, h.cfg.Keys)
	for i := range h.keys {
		h.keys[i] = []byte(fmt.Sprintf("part-%06d", i))
	}
	return nil
}

// spawnStandby is the balancer's self-healing hook: called (rate-limited)
// when a promoted primary is observed serving with no registered replica.
func (h *pharness) spawnStandby(primaryID string) error {
	h.spawnMu.Lock()
	defer h.spawnMu.Unlock()
	if h.spawned != nil || h.stop.Load() {
		return nil
	}
	if primaryID != ppPrimaryID {
		return fmt.Errorf("soak: spawn hook called for unexpected primary %q", primaryID)
	}
	srv, err := shadowfax.NewServer(h.spawnCluster, ppStandby2ID,
		shadowfax.WithThreads(h.cfg.Threads),
		shadowfax.WithSampleDuration(sampleDuration),
		shadowfax.WithReplication(shadowfax.ReplicationConfig{
			ReplicaOf:      primaryID,
			HeartbeatEvery: ppHeartbeat,
			FailoverAfter:  ppFailover,
			AckTimeout:     ppAckTimeout,
		}))
	if err != nil {
		return err
	}
	h.spawned = srv
	h.spawnedAt = time.Now()
	h.cfg.Logf("soak: balancer spawned replacement standby for %s", primaryID)
	return nil
}

func (h *pharness) closeAll() {
	for _, cl := range h.clients {
		cl.Close()
	}
	h.clients = nil
	h.spawnMu.Lock()
	sp := h.spawned
	h.spawned = nil
	h.spawnMu.Unlock()
	if sp != nil {
		sp.Close()
	}
	if h.standby != nil {
		h.standby.Close()
	}
	if h.primary != nil {
		h.primary.Close()
	}
	if h.metaSrv != nil {
		h.metaSrv.Close()
	}
	for _, c := range []*shadowfax.Cluster{
		h.clientCluster, h.spawnCluster, h.standbyCluster, h.primaryCluster, h.metaCluster,
	} {
		if c != nil {
			c.Close()
		}
	}
}

// waitSynced waits for the state-of-record store to show p0's replica
// attached and base-synced.
func (h *pharness) waitSynced(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if r, ok := h.metaCluster.Replicas()[ppPrimaryID]; ok && r.Synced {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

func (h *pharness) preload() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl := h.clients[0]
	zero := make([]byte, 8)
	for i := range h.keys {
		if err := cl.Set(ctx, h.keys[i], zero); err != nil {
			return fmt.Errorf("soak: preloading key %d: %w", i, err)
		}
	}
	return cl.Drain(ctx)
}

func (h *pharness) violate(format string, args ...any) {
	h.violMu.Lock()
	defer h.violMu.Unlock()
	if len(h.viol) < 32 {
		h.viol = append(h.viol, fmt.Sprintf(format, args...))
	}
}

// ---- fault phases --------------------------------------------------------

// phaseAPartitionStandby cuts primary⇹standby while the metadata endpoint
// stays reachable from both. The lease fence must refuse the standby's
// promotion (the primary is alive — it keeps renewing); the primary must
// detach the silent backup, confirm the detach against the store, and keep
// serving (shedding past the backlog bound rather than queueing without
// limit). On heal the standby must re-attach and re-sync.
func (h *pharness) phaseAPartitionStandby(res *PartitionResult) {
	h.cfg.Logf("soak: phase A — partitioning primary ⇹ standby for %v", h.cfg.PartitionFor)
	h.net.Partition(pnPrimary, pnStandby)

	// Monitor for the forbidden promotion for the whole cut.
	cutUntil := time.Now().Add(h.cfg.PartitionFor)
	detached := false
	for time.Now().Before(cutUntil) {
		if !h.standby.IsStandby() {
			h.violate("standby promoted itself during a primary⇹standby partition (primary alive, lease held)")
			break
		}
		if !detached {
			if _, ok := h.metaCluster.Replicas()[ppPrimaryID]; !ok {
				detached = true
				h.cfg.Logf("soak: primary detached the silent standby %v into the cut",
					time.Since(cutUntil.Add(-h.cfg.PartitionFor)).Round(time.Millisecond))
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !detached {
		if _, ok := h.metaCluster.Replicas()[ppPrimaryID]; !ok {
			detached = true
		}
	}
	if !detached {
		h.violate("primary never detached its unreachable standby (ack timeout %v, cut %v)",
			ppAckTimeout, h.cfg.PartitionFor)
	}

	healed := time.Now()
	h.net.Heal(pnPrimary, pnStandby)
	if !h.waitSynced(15 * time.Second) {
		h.violate("standby never re-attached and re-synced after the partition healed")
		return
	}
	if !h.standby.IsStandby() {
		h.violate("standby is not a standby after re-attaching")
	}
	res.TimeToHeal = time.Since(healed)
	h.cfg.Logf("soak: phase A healed; standby re-synced in %v", res.TimeToHeal.Round(time.Millisecond))
}

// phaseBPartitionMeta cuts primary⇹metadata (and resets the cached
// connections so the provider notices immediately rather than after an RPC
// timeout). The primary must degrade to its cached snapshot and keep
// serving; the degradation must be visible over the public balance-status
// surface; and a heal must converge back to healthy.
func (h *pharness) phaseBPartitionMeta(res *PartitionResult) {
	h.cfg.Logf("soak: phase B — partitioning primary ⇹ metadata")
	h.net.Partition(pnPrimary, pnMeta)
	h.net.ResetConns(pnPrimary, pnMeta)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		bs, err := h.admin.BalanceStatus(ctx, ppPrimaryID)
		cancel()
		if err == nil && bs.DegradedFor > 0 {
			res.DegradedObserved = bs.DegradedFor
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if res.DegradedObserved == 0 {
		h.violate("primary never reported a degraded metadata provider during the metadata partition")
	}

	h.net.Heal(pnPrimary, pnMeta)
	deadline = time.Now().Add(10 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		bs, err := h.admin.BalanceStatus(ctx, ppPrimaryID)
		cancel()
		if err == nil && bs.DegradedFor == 0 {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		h.violate("metadata provider never converged back to healthy after the partition healed")
	}
	h.cfg.Logf("soak: phase B healed; provider recovered (peak degraded %v)",
		res.DegradedObserved.Round(time.Millisecond))
}

// phaseCKillPrimary kills the primary under live load. The standby must win
// exactly one promotion, and the balancer must then notice the promoted
// primary serving un-replicated and spawn a replacement standby through its
// SpawnStandby hook.
func (h *pharness) phaseCKillPrimary(res *PartitionResult) {
	h.cfg.Logf("soak: phase C — killing primary")
	killed := time.Now()
	h.primary.Close()

	deadline := time.Now().Add(30 * time.Second)
	for h.standby.IsStandby() {
		if time.Now().After(deadline) {
			h.violate("standby never promoted itself after the primary died")
			return
		}
		time.Sleep(time.Millisecond)
	}
	res.PromotedIn = time.Since(killed)
	promoted := time.Now()
	h.cfg.Logf("soak: standby promoted %v after the kill", res.PromotedIn.Round(time.Millisecond))

	// Self-healing: the balancer must provision a fresh standby and that
	// standby must reach synced without any harness intervention.
	if !h.waitSynced(30 * time.Second) {
		h.violate("no replacement standby re-attached after the failover (SpawnStandby never healed)")
		return
	}
	h.spawnMu.Lock()
	sp := h.spawned
	h.spawnMu.Unlock()
	if sp == nil {
		h.violate("a replica attached after the failover but not through the SpawnStandby hook")
		return
	}
	res.TimeToReReplicate = time.Since(promoted)
	h.cfg.Logf("soak: replacement standby synced %v after the promotion",
		res.TimeToReReplicate.Round(time.Millisecond))
}

// finalChecks asserts the terminal topology: exactly one promotion happened
// and the replacement standby is still an unpromoted standby.
func (h *pharness) finalChecks() {
	proms := h.metaCluster.PromotedServers()
	if len(proms) != 1 || proms[0] != ppPrimaryID {
		h.violate("promoted-server set is %v, want exactly [%s]", proms, ppPrimaryID)
	}
	h.spawnMu.Lock()
	sp := h.spawned
	h.spawnMu.Unlock()
	if sp != nil && !sp.IsStandby() {
		h.violate("replacement standby promoted itself with its primary alive")
	}
}

// ---- workload ------------------------------------------------------------

// worker drives one client with zipf-skewed batches of RMW increments and
// checked reads, repairing its sessions when a phase breaks them. Shed
// batches are retried inside the client (with a backoff pause), so a shed
// never surfaces here — only broken sessions do.
func (h *pharness) worker(idx int, cl *shadowfax.Client) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + int64(idx)*7919))
	zipf := rand.NewZipf(rng, 1.2, 8, uint64(h.cfg.Keys-1))
	delta := make([]byte, 8)
	binary.LittleEndian.PutUint64(delta, 1)

	type pendingOp struct {
		f    *shadowfax.Future
		key  int
		read bool
		lb   uint64
	}
	pend := make([]pendingOp, 0, h.cfg.BatchOps)

	for !h.stop.Load() {
		pend = pend[:0]
		for j := 0; j < h.cfg.BatchOps; j++ {
			k := int(zipf.Uint64() % uint64(h.cfg.Keys))
			ks := &h.states[k]
			if rng.Intn(4) == 0 {
				lb := ks.acked.Load()
				if o := ks.observed.Load(); o > lb {
					lb = o
				}
				pend = append(pend, pendingOp{f: cl.GetAsync(h.keys[k]), key: k, read: true, lb: lb})
			} else {
				ks.issued.Add(1)
				pend = append(pend, pendingOp{f: cl.RMWAsync(h.keys[k], delta), key: k})
			}
		}
		cl.Flush()
		wctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		needRecover := false
		for _, p := range pend {
			v, err := p.f.Wait(wctx)
			ks := &h.states[p.key]
			switch {
			case err == nil && p.read:
				if len(v) != 8 {
					h.violate("key %d: read returned %d bytes, want 8", p.key, len(v))
				} else {
					got := binary.LittleEndian.Uint64(v)
					hi := ks.issued.Load()
					if got < p.lb || got > hi {
						h.violate("key %d (hash %#x): read %d outside linearizable bounds [%d, %d]",
							p.key, faster.HashOf(h.keys[p.key]), got, p.lb, hi)
					}
					casMax(&ks.observed, got)
				}
				h.opsAcked.Add(1)
			case err == nil:
				ks.acked.Add(1)
				h.opsAcked.Add(1)
			case p.read && errors.Is(err, shadowfax.ErrNotFound):
				h.violate("key %d (hash %#x): vanished (NotFound after preload)",
					p.key, faster.HashOf(h.keys[p.key]))
			default:
				// A batch a phase broke: its RMWs stay indeterminate (unacked;
				// the [acked, issued] bounds cover both outcomes). Repair the
				// sessions before the next batch.
				needRecover = true
			}
			p.f.Release()
		}
		cancel()
		if needRecover && !h.stop.Load() {
			h.recoverClient(cl)
		}
	}
}

// recoverClient repairs a client's sessions after a fault, retrying while a
// promotion or detach is still in flight. Serialized so concurrent workers
// don't stack redundant handshakes.
func (h *pharness) recoverClient(cl *shadowfax.Client) bool {
	h.recMu.Lock()
	defer h.recMu.Unlock()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := cl.RecoverSessions(ctx)
		cancel()
		if err == nil {
			return true
		}
		if time.Now().After(deadline) {
			h.violate("client session recovery wedged: %v", err)
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// finalSweep reads every key once more: each counter must hold at least
// every acked increment (zero acked-write loss across every phase) and at
// most every issued one (no replay applied twice).
func (h *pharness) finalSweep() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl := h.clients[0]
	if !h.recoverClient(cl) {
		h.violate("final sweep aborted: client sessions unrecoverable")
		return
	}
	dctx, dcancel := context.WithTimeout(ctx, 20*time.Second)
	err := cl.Drain(dctx)
	dcancel()
	if err != nil {
		h.violate("final drain failed: %v", err)
	}
	h.finals = make([]uint64, len(h.keys))
	for i := range h.keys {
		if ctx.Err() != nil {
			h.violate("final sweep timed out at key %d of %d", i, len(h.keys))
			return
		}
		var v []byte
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			v, err = cl.Get(ctx, h.keys[i])
			if err == nil {
				break
			}
			if !h.recoverClient(cl) {
				h.violate("final sweep aborted at key %d: client sessions unrecoverable", i)
				return
			}
		}
		if err != nil {
			h.violate("final sweep: key %d unreadable: %v", i, err)
			continue
		}
		if len(v) != 8 {
			h.violate("final sweep: key %d has %d bytes, want 8", i, len(v))
			continue
		}
		got := binary.LittleEndian.Uint64(v)
		h.finals[i] = got
		ks := &h.states[i]
		acked, issued := ks.acked.Load(), ks.issued.Load()
		if got < acked || got > issued {
			h.violate("final sweep: key %d = %d, want within [acked %d, issued %d]",
				i, got, acked, issued)
		}
	}
}

// dumpArtifacts writes the violation trace and the per-key history table
// into ArtifactDir after a failed run, so CI uploads them for post-mortem.
func (h *pharness) dumpArtifacts(res PartitionResult) {
	if h.cfg.ArtifactDir == "" || len(res.Violations) == 0 {
		return
	}
	if err := os.MkdirAll(h.cfg.ArtifactDir, 0o755); err != nil {
		h.cfg.Logf("soak: artifact dir: %v", err)
		return
	}
	trace := fmt.Sprintf(
		"seed=%d duration=%v promoted_in=%v time_to_heal=%v time_to_rereplicate=%v shed=%d ops=%d\n\n",
		h.cfg.Seed, res.Duration, res.PromotedIn, res.TimeToHeal,
		res.TimeToReReplicate, res.BatchesShed, res.Ops)
	for _, v := range res.Violations {
		trace += v + "\n"
	}
	if err := os.WriteFile(filepath.Join(h.cfg.ArtifactDir, "violations.txt"),
		[]byte(trace), 0o644); err != nil {
		h.cfg.Logf("soak: writing violations.txt: %v", err)
	}
	hist := "key,hash,issued,acked,observed,final\n"
	for i := range h.keys {
		ks := &h.states[i]
		final := uint64(0)
		if i < len(h.finals) {
			final = h.finals[i]
		}
		hist += fmt.Sprintf("%s,%#x,%d,%d,%d,%d\n", h.keys[i],
			faster.HashOf(h.keys[i]), ks.issued.Load(), ks.acked.Load(),
			ks.observed.Load(), final)
	}
	if err := os.WriteFile(filepath.Join(h.cfg.ArtifactDir, "key_history.csv"),
		[]byte(hist), 0o644); err != nil {
		h.cfg.Logf("soak: writing key_history.csv: %v", err)
	}
	h.cfg.Logf("soak: wrote failure artifacts to %s", h.cfg.ArtifactDir)
}
