package core

import (
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

// TestMigrationCancellationRollsBack exercises §3.3.1's cancellation path
// at the metadata level: a migration whose participants never complete can
// be cancelled by any party; ownership returns to the source with fresh
// view numbers, and clients transparently re-route.
func TestMigrationCancellationRollsBack(t *testing.T) {
	cl := newCluster()
	cl.newServer(t, "src", 2, metadata.FullRange)
	cl.newServer(t, "dst", 2)
	ct := cl.newClient(t)
	loadKeys(t, ct, 100)

	// Register a migration directly at the metadata store (simulating a
	// source that crashed right after the Sampling step's atomic remap,
	// before any records moved).
	rng := metadata.HashRange{Start: 0, End: 1 << 62}
	mig, _, _, err := cl.meta.StartMigration("src", "dst", rng)
	if err != nil {
		t.Fatal(err)
	}

	// The dependency is pending for both sides.
	if len(cl.meta.PendingMigrationsFor("src")) != 1 {
		t.Fatal("dependency not registered")
	}

	// Cancel: ownership must return to the source and both views bump.
	if err := cl.meta.CancelMigration(mig.ID); err != nil {
		t.Fatal(err)
	}
	sv, _ := cl.meta.GetView("src")
	if !sv.Owns(1 << 61) {
		t.Fatal("source did not regain the range")
	}
	if sv.Number < 3 {
		t.Fatalf("source view %d, want >= 3 (migrate + cancel)", sv.Number)
	}

	// Clients keep operating across the double view change: their batches
	// get rejected, they refresh, and the ops land at the source again.
	ok := 0
	for i := uint64(0); i < 100; i++ {
		ct.RMW(ycsb.KeyBytes(i), d8(1), func(st wire.ResultStatus, _ []byte) {
			if st == wire.StatusOK {
				ok++
			}
		})
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatalf("drain after cancellation timed out; outstanding=%d", ct.Outstanding())
	}
	if ok != 100 {
		t.Fatalf("%d/100 ops after cancellation", ok)
	}
	// Cancelled dependencies are collectable.
	if err := cl.meta.CollectMigration(mig.ID); err != nil {
		t.Fatal(err)
	}
}
