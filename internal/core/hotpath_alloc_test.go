//go:build !race

// The allocation-budget guard: the normal-operation server path (batch in,
// all ops served from memory, batch out) must not allocate per operation.
// testing.AllocsPerRun counts mallocs process-wide, so the budget below is
// per 64-op batch and covers the whole round trip — driver encode, both
// in-process transport frame copies, dispatch, store, response encode. A
// regression that adds even one allocation per op would blow the budget by
// 64; the headroom only absorbs rare amortized growth (map rehash, GC
// assists). Excluded under -race: instrumentation allocates.
package core_test

import (
	"testing"

	"repro/internal/bench"
)

// allocBudgetPerBatch is the per-batch (64 ops) allowance. The steady state
// measures 2 (the in-process transport copies one request and one response
// frame per batch); anything near one-per-op means the zero-allocation
// invariant broke.
const allocBudgetPerBatch = 8

func hotPathAllocs(t *testing.T, mix bench.HotPathMix, valueBytes int) float64 {
	t.Helper()
	// Dataset sized well inside the mutable region so upserts update in
	// place and nothing rolls pages mid-measurement.
	h, err := bench.NewHotPathHarness(bench.Options{
		Keys: 5_000, ValueBytes: valueBytes, BatchOps: 64, MemPages: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	// Warm lazily-grown buffers (arena, results, response path, session
	// table entry) out of the measurement.
	for i := 0; i < 10; i++ {
		if err := h.RunBatch(mix); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(100, func() {
		if err := h.RunBatch(mix); err != nil {
			t.Fatal(err)
		}
	})
}

func TestHotPathReadAllocBudget(t *testing.T) {
	got := hotPathAllocs(t, bench.HotPathRead, 64)
	if got > allocBudgetPerBatch {
		t.Fatalf("in-memory read batch: %.1f allocs per %d-op batch, budget %d",
			got, 64, allocBudgetPerBatch)
	}
}

func TestHotPathUpsertAllocBudget(t *testing.T) {
	got := hotPathAllocs(t, bench.HotPathUpsert, 64)
	if got > allocBudgetPerBatch {
		t.Fatalf("in-place upsert batch: %.1f allocs per %d-op batch, budget %d",
			got, 64, allocBudgetPerBatch)
	}
}
