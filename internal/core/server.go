// Package core implements the Shadowfax server (§3): partitioned dispatch
// over a shared FASTER instance, O(1)-per-batch view validation, ownership
// transfer over asynchronous global cuts, and the five-phase low-coordination
// migration protocol with sampled hot records and indirection records.
//
// Each server runs one dispatcher goroutine per configured "vCPU". A
// dispatcher owns a private FASTER session and a private set of client
// connections; it polls its connections for request batches, validates each
// batch with a single view-number comparison, executes the operations
// directly against the shared store, and replies on the same connection.
// Nothing is ever handed to another thread (Figure 4).
package core

//lint:file-ignore SA2001 Server.Close drains in-flight checkpoint/compaction passes with a deliberate Lock();Unlock() handshake — the empty critical section is the point.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ctlplane"
	"repro/internal/faster"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ServerConfig describes a Shadowfax server.
type ServerConfig struct {
	// ID is the server's name in the metadata store.
	ID string
	// Addr is the transport address to listen on.
	Addr string
	// Threads is the number of dispatcher goroutines ("vCPUs").
	Threads int
	// Transport carries sessions; it embeds the network cost model.
	Transport transport.Transport
	// Meta is the external metadata provider (ZooKeeper stand-in): the
	// in-process store, or a remote provider against a designated metadata
	// endpoint for multi-process deployments.
	Meta metadata.Provider
	// Store configures the server's FASTER instance.
	Store faster.Config

	// Durability (checkpoint/recovery subsystem).

	// CheckpointDevice, when set, holds the server's checkpoint images
	// (ownership view + client session table + FASTER CPR image). Without
	// it the server runs memory-only: Checkpoint returns
	// ErrNoCheckpointDevice and MsgCheckpoint admin requests fail.
	CheckpointDevice storage.Device
	// CheckpointEvery takes a checkpoint on this period (0 = on demand
	// only, via Server.Checkpoint or the MsgCheckpoint admin message).
	CheckpointEvery time.Duration
	// Recover rebuilds the server from the latest committed image on
	// CheckpointDevice instead of starting empty. Store.Log.Device must be
	// the same device (or a copy of it) the image was checkpointed against.
	// The server's ownership view is restored into Meta and its client
	// session table is reinstated for session recovery.
	Recover bool

	// Space management (log-compaction subsystem, §3.3.3).

	// CompactEvery is the background compaction service's polling period
	// (0 = no service; passes run on demand via Server.Compact or the
	// MsgCompact admin message).
	CompactEvery time.Duration
	// CompactWatermark is the stable-prefix byte threshold ([BeginAddress,
	// SafeHead) — the span a pass can actually scan) above which the service
	// considers a pass; defaults to 64 MiB when CompactEvery is set.
	CompactWatermark uint64

	// Elastic control plane (automatic scale-out, the balancer in
	// internal/ctlplane).

	// AutoScale hosts the load-aware balancer on this server: it polls
	// every server's stats, and when the hottest server's ops/sec exceeds
	// the coolest's by AutoScaleImbalance it splits the hot server's
	// sampled hash distribution at the load median and drives the ordinary
	// Migrate() RPC — no operator involved. One server per deployment
	// should host it.
	AutoScale bool
	// AutoScaleEvery is the balancer's planning-pass period (default 1s).
	AutoScaleEvery time.Duration
	// AutoScaleImbalance is the hottest/coolest ops-rate ratio that arms a
	// split (default 3.0).
	AutoScaleImbalance float64
	// AutoScaleCooldown is the hold-off after a triggered migration
	// (default 10s).
	AutoScaleCooldown time.Duration
	// AutoScaleMinRate is the ops/sec floor below which the cluster is
	// considered idle and never split (default 500).
	AutoScaleMinRate float64
	// AutoScaleMaxConcurrent caps how many migrations one balancer pass may
	// start concurrently over disjoint ranges (default 4).
	AutoScaleMaxConcurrent int

	// Primary→backup replication (replication.go).

	// ReplicaOf boots this server as a hot standby for the named primary: it
	// adopts the primary's metadata identity, attaches to it, mirrors its
	// state (base sync + live batch stream), and promotes itself when the
	// primary stops answering. A standby registers nothing in the metadata
	// store and rejects client batches until promotion. Mutually exclusive
	// with Recover.
	ReplicaOf string
	// ReplicaHeartbeatEvery is the primary's keepalive period on an idle
	// replication stream (default 100ms). The backup requests it at attach.
	ReplicaHeartbeatEvery time.Duration
	// ReplicaFailoverAfter is how long the backup tolerates stream silence
	// before probing the primary and, if it is dead, promoting (default 1s).
	ReplicaFailoverAfter time.Duration
	// ReplicaAckTimeout is how long the primary tolerates ack silence before
	// detaching the backup and releasing held responses (default 2s).
	ReplicaAckTimeout time.Duration
	// LeaseTTL is the primary liveness lease period (default =
	// ReplicaAckTimeout). Once a server has accepted a replica it renews a
	// metadata lease every TTL/3; while the lease is live PromoteReplica is
	// fenced (ErrPrimaryAlive), so a standby partitioned from its primary —
	// but not from metadata — cannot seize ownership from a healthy primary.
	// A clean Close releases the lease immediately.
	LeaseTTL time.Duration

	// Overload shedding (admission control).

	// MaxConnBacklog bounds how many response-held batches a single client
	// connection may have parked on the replication ack gate. Past the bound
	// new batches from that connection are shed with a retryable status
	// instead of growing the held queue without limit while the backup lags
	// (or a detach awaits confirmation). 0 disables shedding (default 256).
	MaxConnBacklog int

	// SpawnStandby, when set alongside AutoScale, lets the hosted balancer
	// self-heal replication: when it observes a promoted primary serving
	// without a registered replica it calls SpawnStandby(primaryID) to
	// provision a fresh standby (rate-limited per primary). The hook runs on
	// the balancer goroutine and must be safe to call repeatedly.
	SpawnStandby func(primaryID string) error

	// Scale-in (the balancer's low-water drain policy; needs AutoScale).

	// ScaleIn lets the hosted balancer retire chronically cold servers: when
	// a server's ops rate stays below ScaleInBelowRate for
	// ScaleInAfterPasses consecutive planning passes (and the cluster would
	// keep at least ScaleInMinServers servers), the balancer drains its
	// ranges into the survivors via ordinary migrations and retires it.
	ScaleIn bool
	// ScaleInBelowRate is the ops/sec low-water mark (default 50).
	ScaleInBelowRate float64
	// ScaleInAfterPasses is how many consecutive cold passes arm a drain
	// (default 5).
	ScaleInAfterPasses int
	// ScaleInMinServers is the floor the cluster never drains below
	// (default 2).
	ScaleInMinServers int

	// Migration tuning.

	// MigrationBatchRecords is how many records ride in one migration
	// frame.
	MigrationBatchRecords int
	// MigrationChunkBuckets is the unit of work a thread claims from the
	// hash table while collecting records (interleaved with request
	// processing).
	MigrationChunkBuckets int
	// SampleLimit caps the sampled hot records shipped at ownership
	// transfer.
	SampleLimit int
	// SampleDuration is how long the Sampling phase lets accesses
	// accumulate hot records before ownership transfer.
	SampleDuration time.Duration
	// Rocksteady selects the baseline migration mode (§4.1): no
	// indirection records; after the memory pass a single thread scans the
	// on-SSD log and ships cold records.
	Rocksteady bool
	// DisableSampling turns off hot-record shipping (Figure 14 baseline).
	DisableSampling bool
}

func (c *ServerConfig) applyDefaults() error {
	if c.ID == "" || c.Addr == "" {
		return errors.New("core: server ID and Addr required")
	}
	if c.Transport == nil || c.Meta == nil {
		return errors.New("core: Transport and Meta required")
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.MigrationBatchRecords == 0 {
		c.MigrationBatchRecords = 512
	}
	if c.MigrationChunkBuckets == 0 {
		c.MigrationChunkBuckets = 256
	}
	if c.SampleLimit == 0 {
		c.SampleLimit = 4096
	}
	if c.SampleDuration == 0 {
		c.SampleDuration = 50 * time.Millisecond
	}
	if c.CompactEvery > 0 && c.CompactWatermark == 0 {
		c.CompactWatermark = 64 << 20
	}
	if c.ReplicaOf != "" && c.Recover {
		return errors.New("core: ReplicaOf and Recover are mutually exclusive (a standby re-syncs from its primary)")
	}
	if c.ReplicaHeartbeatEvery <= 0 {
		c.ReplicaHeartbeatEvery = 100 * time.Millisecond
	}
	if c.ReplicaFailoverAfter <= 0 {
		c.ReplicaFailoverAfter = time.Second
	}
	if c.ReplicaAckTimeout <= 0 {
		c.ReplicaAckTimeout = 2 * time.Second
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = c.ReplicaAckTimeout
	}
	if c.MaxConnBacklog == 0 {
		c.MaxConnBacklog = 256
	}
	// ScaleIn* zero values fall through to ctlplane.BalancerConfig's defaults.
	// AutoScale* zero values fall through to ctlplane.BalancerConfig's
	// defaults (the single source of truth for balancer tuning).
	return nil
}

// cachePad separates hot atomic counters onto their own cache lines so
// per-op updates from different dispatcher cores do not false-share.
type cachePad [56]byte

// ServerStats exposes the counters the benchmark harness samples. The
// dispatcher-written hot counters are cache-line padded apart from each
// other and from the background-subsystem counters.
type ServerStats struct {
	// OpsCompleted counts client operations answered (including those that
	// completed after pending I/O).
	OpsCompleted atomic.Uint64
	_            cachePad
	// BatchesAccepted / BatchesRejected count view validation outcomes;
	// BatchesShed counts batches refused by admission control (per-conn
	// held-response backlog over MaxConnBacklog).
	BatchesAccepted atomic.Uint64
	BatchesRejected atomic.Uint64
	BatchesShed     atomic.Uint64
	_               cachePad
	// DecodeErrors counts inbound frames dropped because they failed to
	// decode (corrupt, truncated, or hostile); without this counter such
	// drops are invisible to operators.
	DecodeErrors atomic.Uint64
	_            cachePad
	// PendingOps is the target-side pending set (Figure 12).
	PendingOps atomic.Int64
	_          cachePad
	// RemoteFetches counts indirection resolutions from the shared tier.
	RemoteFetches atomic.Uint64
	// ViewRefreshes counts metadata refreshes.
	ViewRefreshes atomic.Uint64
	// Checkpoints / CheckpointFailures count durable checkpoint outcomes.
	Checkpoints        atomic.Uint64
	CheckpointFailures atomic.Uint64
	// Compactions / CompactionFailures count compaction pass outcomes;
	// CompactRelocated counts disowned records shipped to their current
	// owner and CompactReclaimedBytes the storage (device + shared tier)
	// freed by post-pass truncation.
	Compactions           atomic.Uint64
	CompactionFailures    atomic.Uint64
	CompactRelocated      atomic.Uint64
	CompactReclaimedBytes atomic.Uint64
}

// Server is a Shadowfax server node.
type Server struct {
	cfg   ServerConfig
	store *faster.Store
	meta  metadata.Provider

	view atomic.Pointer[metadata.View]

	listener transport.Listener
	threads  []*dispatcher
	stopping atomic.Bool
	wg       sync.WaitGroup

	// validation selects batch-level view validation (the Shadowfax way)
	// or per-key hash validation (the Figure 15 baseline).
	hashValidate atomic.Bool

	// migMu guards the migration registries below. Dispatchers take it on
	// every batch (refreshView) and must never wait on a provider call or
	// I/O under it — holders only read/update the in-memory maps, so it is
	// safe inside an epoch section.
	//
	//shadowfax:epochsafe
	migMu  sync.Mutex
	source *sourceMigration
	// targets holds the inbound migrations by migration id: a server may be
	// the target of several concurrent disjoint-range migrations at once.
	targets map[uint64]*targetMigration
	// targetsRetired remembers inbound migrations this server already
	// finished (or observed cancelled/collected), so a stale metadata
	// snapshot or a duplicate control frame can never resurrect one.
	// Re-creating a finished inbound migration would lay a fresh ownership
	// fence at the *current* log tail — on top of the live records the
	// migration delivered — silently killing them. One uint64 per inbound
	// migration ever targeted at this server; never pruned (a stale
	// PendingMigrationsFor snapshot may resurface an id long after it was
	// collected).
	targetsRetired map[uint64]struct{}
	lastReport     MigrationReport
	// compactPass (under migMu) marks an in-flight compaction pass;
	// StartMigration refuses while it is set (see Server.Compact).
	compactPass bool

	// fetchMu dedups in-flight shared-tier fetches by key. Held only to
	// check/insert a map entry; the fetch itself runs in a spawned
	// goroutine outside the lock, so epoch-protected probes may take it.
	//
	//shadowfax:epochsafe
	fetchMu  sync.Mutex
	fetching map[string]struct{}

	// fetchSess is an auxiliary store session for slow paths (shared-tier
	// fetches, sampled-record scans); fetchSessMu serializes its users.
	fetchSessMu sync.Mutex
	fetchSess   *faster.Session

	// Durability state (see checkpoint.go).
	images  *storage.ImageStore
	sessTab *sessionTable
	ckptMu  sync.Mutex    // serializes checkpoint image writes
	bgQuit  chan struct{} // stops the checkpoint and compaction loops

	// Elastic control plane: the hosted balancer (nil unless AutoScale).
	// Atomic: a promoted standby starts it long after boot, racing readers.
	balancer atomic.Pointer[ctlplane.Balancer]

	// Replication state (see replication.go). repl is the primary-side
	// attached backup; standby marks an unpromoted backup; bgStarted gates
	// the background loops a standby defers until promotion.
	repl      atomic.Pointer[replState]
	standby   atomic.Bool
	bgStarted atomic.Bool
	// deposed marks an incarnation whose backup promoted while it was still
	// running (set when the lease fence reports ErrDeposed). A deposed server
	// stops adopting views and rejects every batch — it must not serve state
	// the promoted replica now owns. leaseOnce starts the lease renewal loop
	// on the first replica attach.
	deposed   atomic.Bool
	leaseOnce sync.Once

	// Space-management state (see compaction.go).
	compactMu      sync.Mutex // serializes compaction passes
	compactSess    *faster.Session
	committedBegin atomic.Uint64 // begin address of the latest committed image
	prevPassBegin  atomic.Uint64 // begin after the previous pass (reclaim grace)
	liveFrac       atomic.Uint64 // last pass's live fraction, per-mille
	lastPassDisk   atomic.Uint64 // scannable stable-prefix bytes after that pass
	lastCompactMu  sync.Mutex
	lastCompact    CompactStats

	stats ServerStats
}

// NewServer builds a Shadowfax server, registers it in the metadata store
// with the given initial ranges, and starts its dispatchers.
//
// With cfg.Recover set the server instead rebuilds itself from the latest
// checkpoint image on cfg.CheckpointDevice: the FASTER store is recovered
// against the (surviving) log device, the checkpointed ownership view is
// restored into the metadata store, and the client session table is
// reinstated so reconnecting clients can replay past their durable prefix
// (client-assisted recovery, §3.3.1). initial ranges are ignored on recovery.
func NewServer(cfg ServerConfig, initial ...metadata.HashRange) (*Server, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if cfg.Store.Log.LogID == "" {
		cfg.Store.Log.LogID = cfg.ID
	}

	var images *storage.ImageStore
	if cfg.CheckpointDevice != nil {
		var err error
		if images, err = storage.OpenImageStore(cfg.CheckpointDevice); err != nil {
			return nil, err
		}
	}

	s := &Server{
		cfg:      cfg,
		meta:     cfg.Meta,
		fetching: make(map[string]struct{}),
		images:   images,
		sessTab:  newSessionTable(cfg.Threads),
		bgQuit:   make(chan struct{}),
	}

	if cfg.Recover {
		if images == nil {
			return nil, ErrNoCheckpointDevice
		}
		img, _, err := images.Latest()
		if err != nil {
			return nil, fmt.Errorf("core: recovering %s: %w", cfg.ID, err)
		}
		view, sessions, fences, err := readServerSection(img)
		if err != nil {
			return nil, err
		}
		st, err := faster.Recover(cfg.Store, img)
		if err != nil {
			return nil, fmt.Errorf("core: recovering %s: %w", cfg.ID, err)
		}
		st.RestoreFences(fences)
		s.store = st
		s.sessTab.restore(sessions, st.CurrentVersion()-1)
		// The recovered image's begin address is the reclaim clamp until the
		// next checkpoint commits (recovery needs every byte above it); it
		// also seeds the reclaim grace point — bytes below it are gone.
		s.committedBegin.Store(uint64(st.Log().BeginAddress()))
		s.prevPassBegin.Store(uint64(st.Log().BeginAddress()))
		v, err := cfg.Meta.RestoreServer(cfg.ID, view)
		if err != nil {
			// ErrDeposed: a promoted (or promotable) replica superseded this
			// incarnation — the restarted primary must not serve.
			s.store.Close()
			return nil, fmt.Errorf("core: %s: restore refused: %w", cfg.ID, err)
		}
		if v.Number == 0 {
			// A restored view always has number ≥ 1; zero means a remote
			// metadata provider could not reach its endpoint — fail startup
			// rather than run unregistered (same guard as fresh
			// registration below).
			s.store.Close()
			return nil, fmt.Errorf("core: %s: metadata provider unavailable (restore failed)", cfg.ID)
		}
		s.view.Store(&v)
	} else if cfg.ReplicaOf != "" {
		if images != nil && images.Generation() > 0 {
			return nil, fmt.Errorf("core: %s: checkpoint device holds committed image (generation %d); "+
				"a standby re-syncs from its primary and needs clean devices", cfg.ID, images.Generation())
		}
		st, err := faster.NewStore(cfg.Store)
		if err != nil {
			return nil, err
		}
		s.store = st
		// A standby adopts the primary's metadata identity: on promotion it
		// answers GetView/ServerAddr/session-recovery lookups for that id.
		// (The original cfg.ID still names the standby's own log devices —
		// LogID was derived above, before the override.)
		s.cfg.ID = cfg.ReplicaOf
		s.standby.Store(true)
		v := metadata.View{}
		s.view.Store(&v)
	} else {
		if images != nil && images.Generation() > 0 {
			// Starting fresh would append the new log over the one the
			// committed image still references — a crash before the first
			// new checkpoint would then "recover" garbage. Make the
			// operator choose explicitly.
			return nil, fmt.Errorf("core: %s: checkpoint device holds committed image (generation %d); "+
				"recover from it or point at clean devices", cfg.ID, images.Generation())
		}
		st, err := faster.NewStore(cfg.Store)
		if err != nil {
			return nil, err
		}
		s.store = st
		v := cfg.Meta.RegisterServer(cfg.ID, initial...)
		if v.Number == 0 {
			// A registered view always has number ≥ 1; zero means a remote
			// metadata provider could not reach its endpoint.
			s.store.Close()
			return nil, fmt.Errorf("core: %s: metadata provider unavailable (registration failed)", cfg.ID)
		}
		s.view.Store(&v)
	}

	l, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		s.store.Close()
		return nil, err
	}
	s.listener = l

	s.threads = make([]*dispatcher, cfg.Threads)
	for i := range s.threads {
		s.threads[i] = newDispatcher(s, i)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	for _, d := range s.threads {
		s.wg.Add(1)
		go d.run()
	}
	if cfg.ReplicaOf != "" {
		// A standby defers the background services (checkpoints, compaction,
		// the balancer) until promotion; its one job is mirroring the
		// primary.
		s.wg.Add(1)
		go s.replicaLoop()
	} else {
		s.startBackground()
	}
	return s, nil
}

// startBackground starts the periodic services (checkpoints, compaction, the
// hosted balancer). Called at boot for ordinary servers and at promotion for
// standbys; idempotent.
func (s *Server) startBackground() {
	if s.stopping.Load() || s.bgStarted.Swap(true) {
		return
	}
	cfg := &s.cfg
	if cfg.CheckpointEvery > 0 && s.images != nil {
		s.wg.Add(1)
		go s.checkpointLoop(cfg.CheckpointEvery)
	}
	if cfg.CompactEvery > 0 {
		s.wg.Add(1)
		go s.compactLoop(cfg.CompactEvery, cfg.CompactWatermark)
	}
	if cfg.AutoScale {
		b := ctlplane.NewBalancer(ctlplane.BalancerConfig{
			Self: cfg.ID, Meta: cfg.Meta, Transport: cfg.Transport,
			Every: cfg.AutoScaleEvery, Imbalance: cfg.AutoScaleImbalance,
			Cooldown: cfg.AutoScaleCooldown, MinOpsPerSec: cfg.AutoScaleMinRate,
			MaxConcurrent: cfg.AutoScaleMaxConcurrent,
			ScaleIn:       cfg.ScaleIn, ScaleInBelowOps: cfg.ScaleInBelowRate,
			ScaleInAfterPasses: cfg.ScaleInAfterPasses, MinServers: cfg.ScaleInMinServers,
			SpawnStandby: cfg.SpawnStandby,
		})
		s.balancer.Store(b)
		b.Run()
		if s.stopping.Load() {
			// Close may have raced past its balancer check before the Store
			// above; Stop is idempotent, so stop it from here too.
			b.Stop()
		}
	}
}

// Stats returns the server's counters.
func (s *Server) Stats() *ServerStats { return &s.stats }

// StatsSnapshot captures the server's identity, current ownership view and
// counters as one wire-level value. It backs both the MsgStats admin RPC and
// the public API's Server.Stats, so in-process and remote observers see the
// same shape.
func (s *Server) StatsSnapshot() wire.StatsResp {
	view := s.view.Load()
	resp := wire.StatsResp{
		ServerID:   s.cfg.ID,
		ViewNumber: view.Number,
		Ranges:     make([]wire.Range, len(view.Ranges)),

		OpsCompleted:    s.stats.OpsCompleted.Load(),
		BatchesAccepted: s.stats.BatchesAccepted.Load(),
		BatchesRejected: s.stats.BatchesRejected.Load(),
		BatchesShed:     s.stats.BatchesShed.Load(),
		DecodeErrors:    s.stats.DecodeErrors.Load(),
		PendingOps:      s.stats.PendingOps.Load(),
		RemoteFetches:   s.stats.RemoteFetches.Load(),
		ViewRefreshes:   s.stats.ViewRefreshes.Load(),

		Checkpoints:        s.stats.Checkpoints.Load(),
		CheckpointFailures: s.stats.CheckpointFailures.Load(),

		Compactions:           s.stats.Compactions.Load(),
		CompactionFailures:    s.stats.CompactionFailures.Load(),
		CompactRelocated:      s.stats.CompactRelocated.Load(),
		CompactReclaimedBytes: s.stats.CompactReclaimedBytes.Load(),

		StorePendingReads: s.store.Stats().PendingIssued.Load(),
		PendingCoalesced:  s.store.Stats().PendingCoalesced.Load(),
		ReadCacheHits:     s.store.Stats().ReadCacheHits.Load(),
		ReadCacheCopies:   s.store.Stats().ReadCacheCopies.Load(),
		DeviceBatchReads:  s.store.Stats().DeviceBatchReads.Load(),

		LogBytes:   uint64(s.store.Log().TailAddress()) - uint64(s.store.Log().BeginAddress()),
		HashSample: s.sampleLoad(1024),
	}
	if b := s.balancer.Load(); b != nil {
		resp.BalancePasses = b.Passes()
		resp.BalanceMigrations = b.Triggered()
	}
	for i, r := range view.Ranges {
		resp.Ranges[i] = wire.Range{Start: r.Start, End: r.End}
	}
	return resp
}

// handleStatsReq serves the MsgStats admin message.
func (s *Server) handleStatsReq(c transport.Conn) {
	c.Send(wire.EncodeStatsResp(s.StatsSnapshot())) //nolint:errcheck // conn errors surface on the next poll
}

// Store exposes the underlying FASTER instance (examples embed servers).
func (s *Server) Store() *faster.Store { return s.store }

// ID returns the server's metadata identity.
func (s *Server) ID() string { return s.cfg.ID }

// Addr returns the listen address.
func (s *Server) Addr() string { return s.listener.Addr() }

// CurrentView returns the server's active ownership view.
func (s *Server) CurrentView() metadata.View { return s.view.Load().Clone() }

// SetHashValidation switches the server to the per-key ownership validation
// baseline (Figure 15); false restores view validation.
func (s *Server) SetHashValidation(on bool) { s.hashValidate.Store(on) }

// Close stops dispatchers and shuts the store down.
func (s *Server) Close() error {
	if s.stopping.Swap(true) {
		return nil
	}
	if b := s.balancer.Load(); b != nil {
		// Stop planning (and its RPCs against this very server) before the
		// listener goes away.
		b.Stop()
	}
	close(s.bgQuit)
	s.listener.Close()
	s.wg.Wait()
	// Wait out any in-flight admin-triggered checkpoint or compaction pass
	// before closing the store they serialize against.
	s.ckptMu.Lock()
	s.ckptMu.Unlock() // empty critical section is the point (see the SA2001 file-ignore)
	s.compactMu.Lock()
	s.compactMu.Unlock() // empty critical section is the point (see the SA2001 file-ignore)
	return s.store.Close()
}

// ownsBinary reports range membership via binary search over the sorted
// range list — the per-key ownership check Shadowfax's views replace.
func ownsBinary(ranges []metadata.HashRange, h uint64) bool {
	lo, hi := 0, len(ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		r := ranges[mid]
		switch {
		case h < r.Start:
			hi = mid
		case h >= r.End:
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}

// acceptLoop distributes inbound connections round-robin across dispatcher
// threads, so every client session is pinned to one server thread (§3.1).
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	next := 0
	for {
		c, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.threads[next%len(s.threads)].newConns <- c
		next++
	}
}

// refreshView reloads the server's view from the metadata store; it also
// discovers migrations this server is the target of (§3.3: "servers observe
// this view change when they refresh their local caches").
//
// While this server is the *source* of a migration that has not reached the
// Transfer phase, the new view is deliberately not adopted: the source keeps
// servicing requests in the old ownership view until the transfer cut
// (§3.3 Sampling: "both the source and the target continue to temporarily
// operate in the old ownership view").
func (s *Server) refreshView() metadata.View {
	if s.standby.Load() {
		// A standby's metadata identity is its primary's: refreshing would
		// adopt the *primary's* live view and start accepting its batches.
		return s.view.Load().Clone()
	}
	if s.deposed.Load() {
		// A promoted replica owns this identity now; its views are not ours
		// to adopt (and every batch is rejected anyway).
		return s.view.Load().Clone()
	}
	v, err := s.meta.GetView(s.cfg.ID)
	if err != nil {
		return s.view.Load().Clone()
	}
	s.stats.ViewRefreshes.Add(1)
	// Discover inbound migrations — creating their state and laying their
	// ownership fences — strictly BEFORE adopting the new view.
	// StartMigration registers the migration record and the view change at
	// one linearization point, so a view that grants this server a new range
	// always arrives with a visible pending migration for it. Adopting the
	// view first would open a window where another dispatcher accepts a
	// batch under the new view with no covering migration state: a miss in
	// the new range would read as authoritative NotFound (an RMW would ack a
	// fresh initial value), and the fence laid moments later — at a tail
	// above that write — would kill it.
	s.discoverTargetMigration()
	if sm := s.sourceState(); sm == nil || migPhase(sm.phase.Load()) >= phaseTransfer {
		cur := s.view.Load()
		if v.Number > cur.Number {
			nv := v.Clone()
			s.view.Store(&nv)
		}
	}
	return v
}

// dispatcher is one server thread (§3.1): a pinned loop with a private
// FASTER session and private connections.
//
// The normal-operation path is allocation-free: per-op state for operations
// that leave the inline path lives in a pooled slot array (ops/freeOps,
// addressed by the token passed into the store's hash entry points), inline
// read values are copied into a per-batch arena (valArena), and every
// request/response buffer is reused.
type dispatcher struct {
	s        *Server
	idx      int
	sess     *faster.Session
	newConns chan transport.Conn
	conns    []transport.Conn

	reqBatch wire.RequestBatch
	respBuf  []byte
	results  []wire.Result
	// assembling is true while the dispatcher builds a batch response;
	// completions arriving outside that window are deferred.
	assembling bool

	// valArena backs inline read results until they are serialized into
	// the response frame; reset at the start of every batch. Growth keeps
	// earlier slices valid (they alias the previous backing array, which is
	// never written again), so a plain append arena suffices.
	valArena []byte

	// ops is the pooled per-op state for operations parked on pending
	// storage I/O; freeOps holds the recycled slot indices. The slot index
	// is the completion token handed to the store session.
	ops     []srvOp
	freeOps []uint32

	// dirty tracks the coalescing conns (transport.BatchedSender) that
	// buffered frames this poll iteration; only these are flushed, so idle
	// conns cost nothing on the flush sweep.
	dirty []transport.BatchedSender

	// deferred collects results that completed after their batch was
	// answered (pending I/O, migration pends); flushed each loop.
	deferred map[transport.Conn][]wire.Result

	// pending holds this dispatcher's parked operations (§3.3).
	pending []*pendedOp

	// tmSnap is the reused per-batch snapshot of inbound migrations, so the
	// hot path never allocates to consult them.
	tmSnap []*targetMigration

	// Outbound migration state (Migrate phase). migConn is dialed per
	// migration (migConnID says which — ids start at 1): reusing a
	// connection across migrations would ship a later migration's records
	// to the previous target. migDoneID records which migration this
	// dispatcher already finished collecting for, so a later outbound
	// migration starts with a clean slate instead of inheriting a stale
	// done flag.
	migBatch  []wire.MigrationRecord
	migConn   transport.Conn
	migConnID uint64
	migDoneID uint64

	// Load accounting: a ring of sampled op hashes (see ctlplane.go).
	// loadN is dispatcher-private; the ring slots are read by the balancer.
	loadN    uint64
	loadRing [loadRingSlots]atomic.Uint64

	// Replication (see replication.go): rs/fwd snapshot the attached backup
	// once per poll iteration (fwd is true once this dispatcher's session
	// crossed the replication cut — its write batches stream live); held
	// parks serialized responses until the backup's cumulative ack covers
	// them.
	rs   *replState
	fwd  bool
	held []heldResp
	// heldPerConn counts parked responses per client connection; admission
	// control sheds new batches from a connection past MaxConnBacklog.
	heldPerConn map[transport.Conn]int
}

// srvOp is the dispatcher-side state of one client operation that went
// pending inside the store (storage I/O). Slots are pooled and their
// key/input buffers reused, so parking an operation allocates nothing at
// steady state.
type srvOp struct {
	c         transport.Conn
	sessionID uint64
	seq       uint32
	kind      wire.OpKind
	key       []byte
	input     []byte
}

func newDispatcher(s *Server, idx int) *dispatcher {
	d := &dispatcher{
		s:        s,
		idx:      idx,
		sess:     s.store.NewSession(),
		newConns: make(chan transport.Conn, 64),
		deferred: make(map[transport.Conn][]wire.Result),
	}
	// One handler closure per dispatcher, for the lifetime of the session —
	// the per-op completion state travels as a pooled-slot token instead.
	d.sess.SetCompletionHandler(d.completePending)
	// The dispatcher refreshes once per loop iteration (a batch boundary);
	// mid-batch guard crossings would let a replication/checkpoint cut
	// drain while this session still stamps the sealed version, racing the
	// base scan against its appends and session-table advances.
	d.sess.SetManualRefresh(true)
	return d
}

// claimOp takes a pooled slot for an operation about to be issued and
// returns its token. Key/input are captured only if the operation actually
// goes pending (captureOp) — the inline path never copies them.
func (d *dispatcher) claimOp(c transport.Conn, sessionID uint64, seq uint32, kind wire.OpKind) uint64 {
	var idx uint32
	if n := len(d.freeOps); n > 0 {
		idx = d.freeOps[n-1]
		d.freeOps = d.freeOps[:n-1]
	} else {
		d.ops = append(d.ops, srvOp{})
		idx = uint32(len(d.ops) - 1)
	}
	so := &d.ops[idx]
	so.c, so.sessionID, so.seq, so.kind = c, sessionID, seq, kind
	return uint64(idx)
}

// captureOp copies the operation's key and input into the slot's reused
// buffers; called while the batch frame is still live, right after the
// store reported StatusPending.
func (d *dispatcher) captureOp(tok uint64, key, input []byte) {
	so := &d.ops[tok]
	so.key = append(so.key[:0], key...)
	so.input = append(so.input[:0], input...)
}

// srvOpBufKeep is the largest key/input capacity a recycled slot retains
// (one op with a huge payload should not pin its footprint in the pool for
// the server's lifetime).
const srvOpBufKeep = 8 << 10

func (d *dispatcher) releaseOp(tok uint64) {
	so := &d.ops[tok]
	so.c = nil
	if cap(so.key) > srvOpBufKeep {
		so.key = nil
	}
	if cap(so.input) > srvOpBufKeep {
		so.input = nil
	}
	d.freeOps = append(d.freeOps, uint32(tok))
}

// completePending is the session's CompletionHandler: it receives results
// for operations that went pending on storage I/O, keyed by their pooled
// slot. It runs on the dispatcher goroutine inside CompletePending, so the
// batch that issued the op has already been answered — results are deferred
// onto the conn (shipped in a later response frame keyed by Seq).
func (d *dispatcher) completePending(tok uint64, st faster.Status, v []byte) {
	so := &d.ops[tok]
	c, sessionID, seq, kind := so.c, so.sessionID, so.seq, so.kind
	key, input := so.key, so.input
	switch st {
	case faster.StatusIndirection:
		// The key's chain continues in another server's shared-tier log
		// (§3.3.2): fetch asynchronously and pend the operation.
		d.s.fetchFromSharedTier(key, v)
		op := wire.Op{Kind: kind, Seq: seq, Key: key, Value: input}
		d.s.pendOp(c, d, sessionID, &op) // pendOp copies out of the slot
	case faster.StatusNotFound:
		if kind == wire.OpRead {
			if tm := d.s.targetCovering(faster.HashOf(key)); tm != nil {
				// The record may simply not have arrived yet.
				op := wire.Op{Kind: kind, Seq: seq, Key: key}
				d.s.pendOp(c, d, sessionID, &op)
				break
			}
		}
		d.emit(c, seq, st, nil)
	default:
		d.emit(c, seq, st, v)
	}
	d.releaseOp(tok)
}

// run is the dispatcher loop. It holds an epoch guard from start to exit:
// everything reachable from here executes inside a protected section, and a
// dispatcher that parks stalls every global cut in the process (checkpoints,
// migration phase transitions, view changes). See the PR 5 balancer
// deadlock.
//
//shadowfax:epoch
func (d *dispatcher) run() {
	defer d.s.wg.Done()
	defer d.sess.Close()
	idle := 0
	for !d.s.stopping.Load() {
		progress := false

		// Snapshot the replication stream for this iteration.
		d.rs = d.s.repl.Load()
		d.fwd = d.rs != nil && !d.rs.detached.Load() && d.sess.Version() > d.rs.baseVer.Load()

		// Cut barrier (post-cut side): while a freshly sealed cut is still
		// draining, a dispatcher that already crossed it must not execute
		// operations. Its post-cut appends would land at the chain heads
		// where a dispatcher still running under the sealed version can
		// copy-on-write on top of them, folding post-cut effects into a
		// record stamped below the cut — the base scan or checkpoint image
		// would then carry operations the live replication stream (or client
		// replay) applies a second time. Stall batch intake and migration
		// work; the bottom-of-loop Refresh keeps this session's epoch guard
		// moving so the cut drains (the stall lasts at most the other
		// dispatchers' current iteration).
		stalled := d.s.store.CutPending()

		// Adopt new connections.
		for {
			select {
			case c := <-d.newConns:
				d.conns = append(d.conns, c)
				progress = true
				continue
			default:
			}
			break
		}

		if !stalled {
			// Poll sessions for request batches.
			for i := 0; i < len(d.conns); i++ {
				c := d.conns[i]
				frame, ok, err := c.TryRecv()
				if err != nil {
					c.Close()
					d.conns = append(d.conns[:i], d.conns[i+1:]...)
					i--
					continue
				}
				if !ok {
					continue
				}
				progress = true
				d.handleFrame(c, frame)
			}

			// Interleave one unit of migration work (§3.3: "threads
			// interleave processing normal requests with sending batches").
			if d.s.sourceMigrationStep(d) {
				progress = true
			}
			if d.s.targetMigrationStep(d) {
				progress = true
			}
		}

		// Finish pending I/O and push deferred results out.
		if d.sess.CompletePending(false) > 0 {
			progress = true
		}
		d.flushDeferred()
		if d.flushHeld() {
			progress = true
		}
		d.flushConns()

		// Replication-cut barrier: if a cut was just sealed and this session
		// has not crossed it yet, finish every parked pre-cut operation
		// before Refresh carries the session into the new version — the base
		// scan starts once all sessions cross, and it must see these writes
		// stamped pre-cut.
		if rs := d.rs; rs != nil && !rs.detached.Load() &&
			d.sess.Version() <= rs.baseVer.Load() && d.s.store.CurrentVersion() > rs.baseVer.Load() {
			for d.sess.Pending() > 0 {
				d.sess.CompletePending(true)
			}
		}

		d.sess.Refresh()
		if !progress {
			idle++
			if idle > 64 {
				// Nothing to do: yield without holding up global cuts.
				// Resume via Session.Refresh, not Guard().Resume(): a
				// checkpoint cut may complete during the sleep, and the next
				// batch must be stamped (and table-tagged) with the post-cut
				// version.
				d.sess.Guard().Suspend()
				time.Sleep(50 * time.Microsecond) //shadowfax:ignore epochblock the guard is suspended on the line above, so the sleep holds up no cut or reclamation
				d.sess.Refresh()
			} else {
				runtime.Gosched()
			}
		} else {
			idle = 0
		}
	}
	for _, c := range d.conns {
		c.Close()
	}
}

// handleFrame routes one inbound frame. Undecodable frames are dropped (a
// malformed frame has no session/seq to answer on) but always counted in
// Stats().DecodeErrors so the drops are observable.
func (d *dispatcher) handleFrame(c transport.Conn, frame []byte) {
	t, err := wire.PeekType(frame)
	if err != nil {
		d.s.stats.DecodeErrors.Add(1)
		return
	}
	switch t {
	case wire.MsgRequestBatch:
		d.handleRequestBatch(c, frame)
	case wire.MsgMigrate:
		cmd, err := wire.DecodeMigrate(frame)
		if err != nil {
			d.s.stats.DecodeErrors.Add(1)
			return
		}
		go d.s.StartMigration(cmd.Target, metadata.HashRange{Start: cmd.RangeStart, End: cmd.RangeEnd})
		ack := wire.MigrationMsg{Type: wire.MsgAck}
		c.Send(wire.EncodeMigrationMsg(&ack))
	case wire.MsgPrepForTransfer, wire.MsgTransferOwnership,
		wire.MsgMigrationRecords, wire.MsgCompleteMigration, wire.MsgCompacted:
		m, err := wire.DecodeMigrationMsg(frame)
		if err != nil {
			d.s.stats.DecodeErrors.Add(1)
			return
		}
		d.handleMigrationMsg(c, &m)
	case wire.MsgCheckpoint:
		d.s.handleCheckpointReq(c)
	case wire.MsgCompact:
		d.s.handleCompactReq(c)
	case wire.MsgStats:
		d.s.handleStatsReq(c)
	case wire.MsgMetaReq:
		d.s.handleMetaReq(c, frame)
	case wire.MsgRebalance:
		d.s.handleRebalanceReq(c)
	case wire.MsgBalanceStatus:
		d.s.handleBalanceStatusReq(c)
	case wire.MsgSessionRecover:
		d.handleSessionRecover(c, frame)
	case wire.MsgReplAttach:
		d.s.handleReplAttach(c, frame)
	case wire.MsgReplAck:
		a, err := wire.DecodeReplAck(frame)
		if err != nil {
			d.s.stats.DecodeErrors.Add(1)
			return
		}
		if rs := d.s.repl.Load(); rs != nil {
			rs.noteAck(a.Seq)
		}
	case wire.MsgDrain:
		d.s.handleDrainReq(c)
	case wire.MsgAck:
		// Acks are informational; the protocol is fully asynchronous.
	}
}

// handleRequestBatch is the normal-operation hot path. At steady state it
// performs no per-op heap allocation when every op is served from memory:
// the batch decodes into reused buffers, each op's hash is computed once
// and shared between the ownership/migration checks and the store, results
// land in a reused slice with values backed by the per-batch arena, and the
// response is serialized into a reused buffer and coalesced onto the conn.
//
//shadowfax:noalloc
func (d *dispatcher) handleRequestBatch(c transport.Conn, frame []byte) {
	if err := wire.DecodeRequestBatch(frame, &d.reqBatch); err != nil {
		d.s.stats.DecodeErrors.Add(1)
		return
	}
	b := &d.reqBatch
	if d.s.standby.Load() {
		// An unpromoted standby owns nothing; reject so the client
		// re-resolves ownership from the metadata store.
		d.reject(c, b, 0)
		return
	}
	if d.s.deposed.Load() {
		// A promoted replica owns this identity now; rejecting makes the
		// client re-resolve ownership (which points at the new primary).
		d.reject(c, b, 0)
		return
	}
	// Admission control: a connection whose responses are piling up on the
	// replication ack gate (lagging backup, detach awaiting confirmation) is
	// shed with a retryable status instead of parking unbounded copies.
	if max := d.s.cfg.MaxConnBacklog; max > 0 && d.heldPerConn[c] >= max {
		d.shed(c, b)
		return
	}
	view := d.s.view.Load()

	if d.s.hashValidate.Load() {
		// Figure 15 baseline: hash every key and look it up in the sorted
		// owned-range list (O(log P) per key, the paper's trie analogue).
		for i := range b.Ops {
			h := faster.HashOf(b.Ops[i].Key)
			if !ownsBinary(view.Ranges, h) {
				d.reject(c, b, view.Number)
				return
			}
		}
	} else if b.View != view.Number {
		// The Shadowfax check: one integer comparison per batch (§3.2).
		// On mismatch the server refreshes its own view from the metadata
		// store (it may itself be behind) and rejects the batch.
		if b.View > view.Number {
			d.s.refreshView()
			view = d.s.view.Load()
		}
		if b.View != view.Number {
			d.reject(c, b, view.Number)
			return
		}
	}
	d.s.stats.BatchesAccepted.Add(1)

	// Forward accepted write batches to the attached backup BEFORE executing
	// anything: once an op applies locally its effect is observable through
	// reads, so it must already be on the wire to the backup. (The backup may
	// hold a few extra never-acknowledged ops if the primary dies mid-batch;
	// since nothing was acknowledged or revealed for them, that only ever
	// advances state.)
	var fseq uint64
	if d.fwd && batchHasWrites(b) {
		fseq = d.rs.forward(frame)
	}

	d.results = d.results[:0]
	d.valArena = d.valArena[:0]
	d.assembling = true
	d.tmSnap = d.s.targetSnapshot(d.tmSnap)
	for i := range b.Ops {
		d.execOp(c, b.SessionID, &b.Ops[i], d.tmSnap)
	}
	d.assembling = false
	// Record the session's high-water sequence before acknowledging, tagged
	// with the CPR version this batch's appends were stamped under (the
	// session's thread-local version, constant across the batch). A
	// checkpoint sealing version S snapshots exactly the entries with
	// version <= S, matching the records its version-filtered image keeps.
	// (Operations parked for pending I/O or migration are counted here too;
	// an op whose I/O completes on the far side of a cut is the residual
	// fuzziness this reproduction accepts relative to full CPR.)
	if len(b.Ops) > 0 {
		maxSeq := b.Ops[0].Seq
		for i := 1; i < len(b.Ops); i++ {
			if b.Ops[i].Seq > maxSeq {
				maxSeq = b.Ops[i].Seq
			}
		}
		d.s.sessTab.advance(d.idx, b.SessionID, maxSeq, d.sess.Version())
	}
	resp := wire.ResponseBatch{SessionID: b.SessionID, ServerView: view.Number,
		Results: d.results}
	d.respBuf = wire.AppendResponseBatch(d.respBuf[:0], &resp)
	// With a backup attached, nothing is revealed before the backup's
	// cumulative ack covers it (write acks and read results alike); see
	// gateResponse.
	if gate, hold := d.gateResponse(fseq); hold {
		d.holdResponse(c, d.respBuf, gate)
	} else {
		d.send(c, d.respBuf)
	}
	d.s.stats.OpsCompleted.Add(uint64(len(d.results)))
}

func (d *dispatcher) reject(c transport.Conn, b *wire.RequestBatch, serverView uint64) {
	d.s.stats.BatchesRejected.Add(1)
	// Echo the rejected operations' sequence numbers so the client can
	// requeue exactly this batch (an RMW requeued twice would double-apply).
	// d.results is free here: a rejected batch executes nothing.
	d.results = d.results[:0]
	for i := range b.Ops {
		d.results = append(d.results, wire.Result{Seq: b.Ops[i].Seq})
	}
	resp := wire.ResponseBatch{SessionID: b.SessionID, Rejected: true,
		ServerView: serverView, Results: d.results}
	d.respBuf = wire.AppendResponseBatch(d.respBuf[:0], &resp)
	d.send(c, d.respBuf)
}

// shed refuses a batch under overload (per-conn held-response backlog at the
// MaxConnBacklog bound). Like reject it executes nothing and echoes the ops'
// sequence numbers so the client requeues exactly this batch — but the Shed
// flag tells the client the view was fine: back off and retry here, don't
// re-resolve ownership. The response bypasses the ack gate (it reveals no
// state).
func (d *dispatcher) shed(c transport.Conn, b *wire.RequestBatch) {
	d.s.stats.BatchesShed.Add(1)
	d.results = d.results[:0]
	for i := range b.Ops {
		d.results = append(d.results, wire.Result{Seq: b.Ops[i].Seq})
	}
	resp := wire.ResponseBatch{SessionID: b.SessionID, Shed: true,
		ServerView: d.s.view.Load().Number, Results: d.results}
	d.respBuf = wire.AppendResponseBatch(d.respBuf[:0], &resp)
	d.send(c, d.respBuf)
}

// send ships a frame on c, coalescing onto the conn's write buffer when the
// transport supports it; dirty conns are flushed once per poll iteration
// (flushConns), so back-to-back batch responses and deferred results in one
// iteration cost one wire write per conn.
func (d *dispatcher) send(c transport.Conn, frame []byte) {
	if bs, ok := c.(transport.BatchedSender); ok {
		bs.SendNoFlush(frame)          //nolint:errcheck // conn errors surface on the next poll
		for _, seen := range d.dirty { // few conns answer per iteration
			if seen == bs {
				return
			}
		}
		d.dirty = append(d.dirty, bs)
		return
	}
	c.Send(frame) //nolint:errcheck // conn errors surface on the next poll
}

// flushConns pushes the dirty conns' buffered frames to the wire; called
// once per poll iteration.
func (d *dispatcher) flushConns() {
	for i, bs := range d.dirty {
		bs.Flush() //nolint:errcheck // conn errors surface on the next poll
		d.dirty[i] = nil
	}
	d.dirty = d.dirty[:0]
}

// execOp runs one client operation against the shared store. Results that
// complete inline land in d.results (values backed by the batch arena);
// async completions (storage I/O via the pooled-slot token, migration
// pends) are deferred and shipped in later response frames keyed by Seq.
//
// The key's hash is computed exactly once, here, and shared between the
// migration-range check and the store's hash entry points. Nothing is
// copied on the inline path: keys alias the batch frame, which outlives the
// batch; only operations that park (pending I/O, migration) promote their
// key/input into owned buffers.
func (d *dispatcher) execOp(c transport.Conn, sessionID uint64, op *wire.Op, tms []*targetMigration) {
	h := faster.HashOf(op.Key)
	d.recordLoad(h)
	switch op.Kind {
	case wire.OpUpsert:
		d.emitInline(op.Seq, d.sess.UpsertHash(op.Key, op.Value, h), nil)
		return
	case wire.OpDelete:
		d.emitInline(op.Seq, d.sess.DeleteHash(op.Key, h), nil)
		return
	}

	// Reads and RMWs can observe not-yet-migrated state during an inbound
	// migration (§3.3): before ownership transfer they pend outright; after
	// it, a miss in the migrating range pends until the record arrives.
	// In-flight ranges are disjoint, so at most one migration covers h.
	inMig := false
	if tm := coveringTarget(tms, h); tm != nil {
		if !tm.serving.Load() {
			d.s.pendOp(c, d, sessionID, op)
			return
		}
		inMig = true
	}

	if op.Kind == wire.OpRMW {
		if inMig {
			// Migration slow path: the probe/pend machinery owns its
			// buffers, so copy off the batch frame.
			key := append([]byte(nil), op.Key...)
			input := append([]byte(nil), op.Value...)
			d.probeRMW(c, sessionID, op.Seq, key, input)
			return
		}
		tok := d.claimOp(c, sessionID, op.Seq, wire.OpRMW)
		st, v := d.sess.RMWHash(op.Key, op.Value, h, tok)
		if st == faster.StatusPending {
			d.captureOp(tok, op.Key, op.Value)
			return
		}
		d.releaseOp(tok)
		if st == faster.StatusIndirection {
			d.s.fetchFromSharedTier(op.Key, v)
			d.s.pendOp(c, d, sessionID, op)
			return
		}
		d.emitInline(op.Seq, st, nil)
		return
	}

	tok := d.claimOp(c, sessionID, op.Seq, wire.OpRead)
	st, v := d.sess.ReadHash(op.Key, h, tok)
	if st == faster.StatusPending {
		d.captureOp(tok, op.Key, nil)
		return
	}
	d.releaseOp(tok)
	switch st {
	case faster.StatusIndirection:
		// The key's chain continues in another server's shared-tier log
		// (§3.3.2): fetch asynchronously and pend the operation.
		d.s.fetchFromSharedTier(op.Key, v)
		d.s.pendOp(c, d, sessionID, op)
	case faster.StatusNotFound:
		if inMig {
			// The record may simply not have arrived yet.
			d.s.pendOp(c, d, sessionID, op)
			return
		}
		d.emitInline(op.Seq, st, nil)
	default:
		d.emitInline(op.Seq, st, v)
	}
}

// probeRMW handles an RMW in a migrating range: blindly applying the
// initial value would race the record still in flight from the source, so
// presence is probed first and absence pends.
func (d *dispatcher) probeRMW(c transport.Conn, sessionID uint64, seq uint32, key, input []byte) {
	d.sess.Read(key, func(st faster.Status, v []byte) { //shadowfax:ignore hotpathalloc probeRMW runs only for RMWs landing in a migrating range; the probe closure is off the steady-state path
		switch st {
		case faster.StatusOK:
			d.sess.RMW(key, input, func(st2 faster.Status, _ []byte) { //shadowfax:ignore hotpathalloc migrating-range RMW only; see the probe closure above
				d.emit(c, seq, st2, nil)
			})
		case faster.StatusNotFound:
			d.s.pendOpStruct(c, d, sessionID,
				&wire.Op{Kind: wire.OpRMW, Seq: seq, Key: key, Value: input}) //shadowfax:ignore hotpathalloc the pended op must outlive this batch; migrating-range path only
		case faster.StatusIndirection:
			d.s.fetchFromSharedTier(key, v)
			d.s.pendOpStruct(c, d, sessionID,
				&wire.Op{Kind: wire.OpRMW, Seq: seq, Key: key, Value: input}) //shadowfax:ignore hotpathalloc the pended op must outlive this batch; migrating-range path only
		default:
			d.emit(c, seq, st, nil)
		}
	})
}

// emitInline appends an inline result to the in-flight batch response. Read
// values are copied into the per-batch arena (they must survive until the
// response is serialized; the store's value buffer is reused per op).
func (d *dispatcher) emitInline(seq uint32, st faster.Status, v []byte) {
	res := wire.Result{Seq: seq, Status: toWireStatus(st)}
	if st == faster.StatusOK && v != nil {
		n := len(d.valArena)
		d.valArena = append(d.valArena, v...)
		res.Value = d.valArena[n : n+len(v) : n+len(v)]
	}
	d.results = append(d.results, res)
}

// emit queues a final result: into the in-flight batch response when still
// assembling it, otherwise onto the connection's deferred results (with an
// owned value copy — deferred results outlive the batch and its arena).
func (d *dispatcher) emit(c transport.Conn, seq uint32, st faster.Status, v []byte) {
	if d.assembling {
		d.emitInline(seq, st, v)
		return
	}
	res := wire.Result{Seq: seq, Status: toWireStatus(st)}
	if st == faster.StatusOK && v != nil {
		res.Value = append([]byte(nil), v...)
	}
	d.deferred[c] = append(d.deferred[c], res)
}

func (d *dispatcher) flushDeferred() {
	for c, results := range d.deferred {
		if len(results) == 0 {
			continue
		}
		resp := wire.ResponseBatch{ServerView: d.s.view.Load().Number, Results: results}
		d.respBuf = wire.AppendResponseBatch(d.respBuf[:0], &resp)
		// Deferred results may carry late write acks or reads of writes the
		// backup has not acknowledged; gate them on the current send
		// watermark like any other response.
		if gate, hold := d.gateResponse(0); hold {
			d.holdResponse(c, d.respBuf, gate)
		} else {
			d.send(c, d.respBuf)
		}
		d.s.stats.OpsCompleted.Add(uint64(len(results)))
		delete(d.deferred, c)
	}
}

func toWireStatus(st faster.Status) wire.ResultStatus {
	switch st {
	case faster.StatusOK:
		return wire.StatusOK
	case faster.StatusNotFound:
		return wire.StatusNotFound
	default:
		return wire.StatusErr
	}
}
