package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

func ckey(i uint64) []byte { return []byte(fmt.Sprintf("compact-key-%05d", i)) }

// overwriteRound upserts every key with a round-stamped 256-byte value and
// drains, failing on any non-OK foreground completion (compaction must never
// cost correctness or availability).
func overwriteRound(t *testing.T, ct *client.Thread, n, round uint64) {
	t.Helper()
	failed := 0
	for i := uint64(0); i < n; i++ {
		val := make([]byte, 256)
		binary.LittleEndian.PutUint64(val, round)
		ct.Upsert(ckey(i), val, func(st wire.ResultStatus, _ []byte) {
			if st != wire.StatusOK {
				failed++
			}
		})
		if ct.Outstanding() > 1024 {
			ct.Poll()
		}
	}
	if !ct.Drain(30 * time.Second) {
		t.Fatalf("round %d did not drain; outstanding=%d", round, ct.Outstanding())
	}
	if failed != 0 {
		t.Fatalf("round %d: %d foreground upserts failed", round, failed)
	}
}

// verifyRound checks every key carries the given round's value.
func verifyRound(t *testing.T, ct *client.Thread, n, round uint64) {
	t.Helper()
	bad := 0
	for i := uint64(0); i < n; i++ {
		ct.Read(ckey(i), func(st wire.ResultStatus, v []byte) {
			if st != wire.StatusOK || len(v) < 8 || binary.LittleEndian.Uint64(v) != round {
				bad++
			}
		})
		if ct.Outstanding() > 1024 {
			ct.Poll()
		}
	}
	if !ct.Drain(30 * time.Second) {
		t.Fatalf("verify did not drain; outstanding=%d", ct.Outstanding())
	}
	if bad != 0 {
		t.Fatalf("%d keys missing or stale (want round %d)", bad, round)
	}
}

// TestCompactionServiceSustainedOverwrite is the acceptance scenario: under
// a sustained uniform-overwrite workload the background compaction service
// advances the begin address and frees device space while foreground
// operations keep completing; a checkpoint taken while the service runs
// recovers with the truncated begin address intact.
func TestCompactionServiceSustainedOverwrite(t *testing.T) {
	cl := newCluster()
	logDev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer logDev.Close()
	ckptDev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	defer ckptDev.Close()

	cfg := durableServerConfig(cl, "s1", logDev, ckptDev, false)
	cfg.CompactEvery = 10 * time.Millisecond
	cfg.CompactWatermark = 256 << 10
	cfg.CheckpointEvery = 50 * time.Millisecond // keeps the reclaim clamp moving
	srv, err := NewServer(cfg, metadata.FullRange)
	if err != nil {
		t.Fatal(err)
	}
	cl.meta.SetServerAddr("s1", srv.Addr())
	ct := cl.newClient(t)

	// ~430 KiB of live records per round against a 64 KiB memory budget:
	// every round spills, and overwritten rounds become dead prefix.
	const keys = 1500
	lg := srv.Store().Log()
	var round uint64
	deadline := time.Now().Add(60 * time.Second)
	for {
		round++
		overwriteRound(t, ct, keys, round)
		st := srv.Stats()
		if st.Compactions.Load() >= 2 && logDev.Stats().TrimmedBytes > 0 &&
			lg.BeginAddress() > hlog.MinAddress {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never reclaimed space: compactions=%d trimmed=%d begin=%#x",
				st.Compactions.Load(), logDev.Stats().TrimmedBytes, uint64(lg.BeginAddress()))
		}
	}
	if round < 3 {
		// The loop must genuinely sustain overwrites, not exit on round one.
		overwriteRound(t, ct, keys, round+1)
		round++
	}
	verifyRound(t, ct, keys, round)

	// The device footprint must be bounded: strictly less than the bytes the
	// log has written in total (the whole point of reclaim).
	if alloc, written := logDev.AllocatedBytes(), uint64(lg.FlushedUntilAddress()); alloc >= written {
		t.Fatalf("no space freed: %d bytes allocated for %d flushed", alloc, written)
	}
	last := srv.LastCompaction()
	if last.Scanned == 0 || last.Begin <= hlog.MinAddress {
		t.Fatalf("last pass stats empty: %+v", last)
	}

	// Checkpoint while the compaction service is still live, then crash.
	res, err := srv.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Info.Begin <= hlog.MinAddress {
		t.Fatalf("checkpoint image carries untruncated begin %#x", uint64(res.Info.Begin))
	}
	srv.Close()

	srv2, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, true))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl.meta.SetServerAddr("s1", srv2.Addr())

	if got := srv2.Store().Log().BeginAddress(); got != res.Info.Begin {
		t.Fatalf("recovered begin %#x, want the image's truncated begin %#x",
			uint64(got), uint64(res.Info.Begin))
	}
	if err := ct.RecoverSessions(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyRound(t, ct, keys, round)
}

// TestCompactionTombstoneGCAcrossRecovery: deleted keys whose tombstones are
// compacted away must stay deleted across a checkpoint/recover cycle — the
// tombstone only dies together with every older version of its key.
func TestCompactionTombstoneGCAcrossRecovery(t *testing.T) {
	cl := newCluster()
	logDev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer logDev.Close()
	ckptDev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	defer ckptDev.Close()

	srv, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, false),
		metadata.FullRange)
	if err != nil {
		t.Fatal(err)
	}
	cl.meta.SetServerAddr("s1", srv.Addr())
	ct := cl.newClient(t)

	const n = 800
	const deleted = 100
	for i := uint64(0); i < n; i++ {
		ct.Upsert(rkey(int(i)), rval(int(i)), nil)
	}
	for i := uint64(0); i < deleted; i++ {
		ct.Delete(rkey(int(i)), nil)
	}
	// Filler traffic pushes values and tombstones into the stable prefix.
	for i := uint64(0); i < 2000; i++ {
		ct.Upsert([]byte(fmt.Sprintf("fill-%05d", i)), rval(int(i)), nil)
	}
	if !ct.Drain(30 * time.Second) {
		t.Fatal("load did not drain")
	}

	st, err := srv.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped == 0 || st.Begin <= hlog.MinAddress {
		t.Fatalf("pass did nothing: %+v", st)
	}
	for i := 0; i < deleted; i += 7 {
		if _, got := clientGet(t, ct, rkey(i)); got != wire.StatusNotFound {
			t.Fatalf("deleted key %d resurrected by compaction: %v", i, got)
		}
	}

	if _, err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv2, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, true))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl.meta.SetServerAddr("s1", srv2.Addr())
	if err := ct.RecoverSessions(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < deleted; i++ {
		if _, got := clientGet(t, ct, rkey(i)); got != wire.StatusNotFound {
			t.Fatalf("deleted key %d resurrected after recovery: %v", i, got)
		}
	}
	for i := deleted; i < n; i += 13 {
		v, got := clientGet(t, ct, rkey(i))
		if got != wire.StatusOK || string(v) != string(rval(i)) {
			t.Fatalf("live key %d after recovery: %v %q", i, got, v)
		}
	}
}

// TestCompactionRelocationLandsOnOwner: after a scale-out migration, the
// source's compaction must ship disowned stable-prefix records to the new
// owner (the MsgCompacted send side), and reads keep resolving even after
// the source's shared-tier prefix — the indirection records' target — has
// been reclaimed.
func TestCompactionRelocationLandsOnOwner(t *testing.T) {
	cl := newCluster()
	src := cl.newServer(t, "src", 2, metadata.FullRange)
	dst := cl.newServer(t, "dst", 2)
	ct := cl.newClient(t)

	// Spill well past the 64 KiB budget so most chains descend below the
	// head at migration time (indirection records at the target, cold
	// records left on the source's disk).
	const n = 3000
	loadKeys(t, ct, n)

	rng := metadata.HashRange{Start: 0, End: 1 << 63}
	if _, err := src.StartMigration("dst", rng); err != nil {
		t.Fatal(err)
	}
	waitMigrationsDone(t, cl.meta, 15*time.Second)

	st, err := src.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Relocated == 0 {
		t.Fatalf("no disowned records relocated: %+v", st)
	}
	if got := src.Stats().CompactRelocated.Load(); got != uint64(st.Relocated) {
		t.Fatalf("relocation counter %d != pass stat %d", got, st.Relocated)
	}
	if st.Begin <= hlog.MinAddress {
		t.Fatal("source begin did not advance")
	}
	// A second pass reclaims storage up to the first pass's begin (the
	// one-pass grace for in-flight reads); the source has no checkpoint
	// device, so nothing else clamps it.
	if _, err := src.Compact(); err != nil {
		t.Fatal(err)
	}

	// Every key must still read its exact counter value — served by the
	// target from migrated + relocated records, with the source's prefix
	// now retired beneath the indirection records.
	verifyKeys(t, ct, n)
	_ = dst
}

// TestCompactionRelocationFailureKeepsPrefix: when relocated records cannot
// be confirmed delivered (owner unreachable), the pass must fail WITHOUT
// advancing the begin address — the prefix holds the disowned keys' only
// durable copies — and a later pass must deliver and then retire it.
func TestCompactionRelocationFailureKeepsPrefix(t *testing.T) {
	cl := newCluster()
	src := cl.newServer(t, "src", 2, metadata.FullRange)
	dst := cl.newServer(t, "dst", 2)
	ct := cl.newClient(t)

	const n = 3000
	loadKeys(t, ct, n)
	if _, err := src.StartMigration("dst", metadata.HashRange{Start: 0, End: 1 << 63}); err != nil {
		t.Fatal(err)
	}
	waitMigrationsDone(t, cl.meta, 15*time.Second)

	// Sabotage: the owner's address points nowhere, so relocation frames
	// cannot be delivered.
	cl.meta.SetServerAddr("dst", "nowhere")
	before := src.Store().Log().BeginAddress()
	if _, err := src.Compact(); err == nil {
		t.Fatal("pass succeeded with an unreachable relocation target")
	}
	if got := src.Store().Log().BeginAddress(); got != before {
		t.Fatalf("begin advanced %#x -> %#x despite unconfirmed relocation",
			uint64(before), uint64(got))
	}
	if src.Stats().CompactionFailures.Load() == 0 {
		t.Fatal("failure not counted")
	}

	// Heal and retry: the rescan re-sends and the prefix retires.
	cl.meta.SetServerAddr("dst", dst.Addr())
	st, err := src.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Relocated == 0 || st.Begin <= before {
		t.Fatalf("healed pass did not relocate and truncate: %+v", st)
	}
	verifyKeys(t, ct, n)
}

// TestCompactionReclaimClampedByCommittedImage: device reclaim must wait for
// a committed checkpoint image and never free bytes the image still
// references — a crash between compaction and the next checkpoint must
// recover.
func TestCompactionReclaimClampedByCommittedImage(t *testing.T) {
	cl := newCluster()
	logDev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer logDev.Close()
	ckptDev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	defer ckptDev.Close()

	srv, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, false),
		metadata.FullRange)
	if err != nil {
		t.Fatal(err)
	}
	cl.meta.SetServerAddr("s1", srv.Addr())
	ct := cl.newClient(t)

	// Two rounds of 256-byte values: ~2.4 MiB on the device, first round
	// entirely dead.
	const keys = 4000
	overwriteRound(t, ct, keys, 1)
	overwriteRound(t, ct, keys, 2)

	st1, err := srv.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Begin <= hlog.MinAddress {
		t.Fatalf("begin did not advance: %+v", st1)
	}
	if st1.ReclaimedBytes != 0 || logDev.Stats().TrimmedBytes != 0 {
		t.Fatalf("device reclaimed with no committed image: %+v (trimmed %d)",
			st1, logDev.Stats().TrimmedBytes)
	}

	if _, err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st2, err := srv.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st2.ReclaimedBytes == 0 {
		t.Fatalf("nothing reclaimed after the image committed: %+v", st2)
	}
	if logDev.Stats().TrimmedBytes == 0 {
		t.Fatal("device trim counter did not move")
	}

	// The clamp's whole point: recovery still works after the reclaim.
	srv.Close()
	srv2, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, true))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl.meta.SetServerAddr("s1", srv2.Addr())
	if err := ct.RecoverSessions(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	verifyRound(t, ct, keys, 2)
}

// TestCompactAdminRoundTrip drives a pass through the wire admin message and
// the client library, like an operator would.
func TestCompactAdminRoundTrip(t *testing.T) {
	cl := newCluster()
	srv := cl.newServer(t, "s1", 2, metadata.FullRange)
	ct := cl.newClient(t)

	const n = 2500
	for i := uint64(0); i < n; i++ {
		ct.Upsert(ycsb.KeyBytes(i), []byte(fmt.Sprintf("v1-%06d", i)), nil)
	}
	for i := uint64(0); i < n; i++ {
		ct.Upsert(ycsb.KeyBytes(i), []byte(fmt.Sprintf("v2-%06d", i)), nil)
	}
	if !ct.Drain(30 * time.Second) {
		t.Fatal("load did not drain")
	}

	resp, err := cl.newAdmin().Compact(context.Background(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Scanned == 0 {
		t.Fatalf("admin compaction did nothing: %+v", resp)
	}
	if resp.Begin <= uint64(hlog.MinAddress) {
		t.Fatalf("begin did not advance: %+v", resp)
	}
	if got := srv.Stats().Compactions.Load(); got != 1 {
		t.Fatalf("server counted %d compactions, want 1", got)
	}
	// Spot-check values survived.
	v, st := clientGet(t, ct, ycsb.KeyBytes(17))
	if st != wire.StatusOK || string(v) != fmt.Sprintf("v2-%06d", 17) {
		t.Fatalf("key 17 after admin compaction: %v %q", st, v)
	}
}
