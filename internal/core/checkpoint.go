package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file is the server-level half of Shadowfax's durability story (§2.1,
// §3.3.1): a checkpoint coordinator that snapshots the FASTER store plus the
// server's own recovery state (ownership view, client session table) into one
// image on a storage device, and the recovery path that rebuilds a server
// from the latest committed image.
//
// Checkpoints piggyback on FASTER's CPR cut: Store.CheckpointCut fires the
// server-section serializer on the far side of the asynchronous global cut,
// so the session table captured in the image is exactly the state whose
// operations the flushed log prefix covers. Dispatchers never stall — they
// cross the cut at their next Refresh and keep serving.

const (
	serverImageMagic = 0x53465843 // "SFXC"
	// serverImageVersion 2 added the ownership-fence section; version 1
	// images (no fences) are still readable.
	serverImageVersion = 2
)

// sessionTable tracks, per client session, the highest operation sequence
// number the server has applied, tagged with the CPR version the batch was
// stamped under. It is the server half of client-assisted session recovery:
// a checkpoint sealing version S snapshots each session's prefix restricted
// to versions <= S — exactly the records recovery's version filter keeps —
// so the table a reconnecting client consults and the recovered store agree
// operation-for-operation.
//
// The table is sharded per dispatcher: advance (once per batch, on the hot
// path) touches only the calling dispatcher's shard, whose mutex no other
// dispatcher ever takes — the per-batch lock is contention-free. Only the
// off-hot-path readers (snapshotUpTo during a checkpoint cut, get during
// session recovery, restore at boot) visit foreign shards, merging entries
// by maximum sequence (a session that reconnects onto a different
// dispatcher leaves an older entry in its previous shard; sequence numbers
// are monotonic, so the max is the truth).
type sessionTable struct {
	shards []sessionShard
}

type sessionShard struct {
	// mu guards one shard's seq map. Holders touch a couple of map entries
	// and return; nothing under it calls out or blocks, so epoch-protected
	// dispatchers may take it on the per-batch path.
	//
	//shadowfax:epochsafe
	mu   sync.Mutex
	seqs map[uint64][]verSeq
	// Pad shards apart: each shard's mutex and map header are hot on
	// exactly one dispatcher's per-batch path.
	_ cachePad
}

// verSeq is one version's sequence high-water mark. Per session the slice
// holds at most two entries — a floor of all prior versions and the current
// one — because versions only advance at checkpoints, which serialize.
type verSeq struct {
	ver uint32
	seq uint32
}

func newSessionTable(shards int) *sessionTable {
	if shards < 1 {
		shards = 1
	}
	t := &sessionTable{shards: make([]sessionShard, shards)}
	for i := range t.shards {
		t.shards[i].seqs = make(map[uint64][]verSeq)
	}
	return t
}

// advance records that every operation of session id up to seq has been
// applied under CPR version ver; shard is the calling dispatcher's index.
// Sequence numbers and versions only move forward (client seqs are
// monotonic; ver is the dispatcher session's thread-local version, which
// only grows).
func (t *sessionTable) advance(shard int, id uint64, seq uint32, ver uint32) {
	sh := &t.shards[shard]
	sh.mu.Lock()
	es := sh.seqs[id]
	if n := len(es); n > 0 && es[n-1].ver >= ver {
		if seq > es[n-1].seq {
			es[n-1].seq = seq
		}
	} else {
		if len(es) >= 2 {
			// Merge the floor: the older entry's seq is subsumed by the
			// newer one (seqs are monotonic), and no future checkpoint can
			// seal below an already-recorded version.
			es = es[len(es)-1:]
		}
		es = append(es, verSeq{ver: ver, seq: seq})
	}
	sh.seqs[id] = es
	sh.mu.Unlock()
}

// get returns the session's last applied sequence number across all
// versions and shards (what a live server tells a reconciling client).
func (t *sessionTable) get(id uint64) (uint32, bool) {
	var best uint32
	found := false
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if es := sh.seqs[id]; len(es) > 0 {
			if s := es[len(es)-1].seq; !found || s > best {
				best = s
			}
			found = true
		}
		sh.mu.Unlock()
	}
	return best, found
}

// sessionIdleVersions is how many sealed versions a session may sit idle
// before its table entry is evicted (bounding table and image growth under
// client churn). An evicted session that reconnects recovers as Known=false
// and replays everything in flight — safe unless it held unacknowledged
// RMWs across that many checkpoints, which a live client never does (it
// drains or retries long before).
const sessionIdleVersions = 8

// snapshotUpTo merges all shards restricted to versions <= sealed (taken
// inside the checkpoint cut), evicting sessions idle since sealed -
// sessionIdleVersions. Sessions whose every batch is post-cut are omitted:
// their durable prefix is empty. A session present in several shards
// (dispatcher reassignment) contributes its maximum covered sequence.
func (t *sessionTable) snapshotUpTo(sealed uint32) map[uint64]uint32 {
	out := make(map[uint64]uint32)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for id, es := range sh.seqs {
			if n := len(es); n > 0 && sealed > sessionIdleVersions &&
				es[n-1].ver < sealed-sessionIdleVersions {
				delete(sh.seqs, id)
				continue
			}
			for _, e := range es { // ordered by version; later seqs are larger
				if e.ver <= sealed {
					if cur, ok := out[id]; !ok || e.seq > cur {
						out[id] = e.seq
					}
				}
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// restore replaces the table with a recovered image's copy (into shard 0 —
// dispatchers repopulate their own shards as sessions reconnect). Restored
// entries carry the image's sealed version: any future checkpoint covers
// them (future seals are strictly higher), and the idle-eviction clock
// starts at the recovery point rather than treating every recovered session
// as ancient.
func (t *sessionTable) restore(m map[uint64]uint32, sealed uint32) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		sh.seqs = make(map[uint64][]verSeq)
		sh.mu.Unlock()
	}
	sh := &t.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for id, seq := range m {
		sh.seqs[id] = []verSeq{{ver: sealed, seq: seq}}
	}
}

// CheckpointResult describes a committed server checkpoint.
type CheckpointResult struct {
	Info       faster.CheckpointInfo
	Generation uint64 // image store generation holding the image
	Sessions   int    // client sessions captured in the image
}

// ErrNoCheckpointDevice is returned when checkpointing is not configured.
var ErrNoCheckpointDevice = errors.New("core: no checkpoint device configured")

// Checkpoint takes a durable server checkpoint: the FASTER store via its CPR
// cut, plus the ownership view and client session table captured on the cut,
// all streamed into one image on the configured checkpoint device and
// committed atomically. It blocks until the image is committed and must not
// be called from a dispatcher goroutine (the cut needs dispatchers free to
// refresh); the admin-message handler and the periodic loop call it from
// their own goroutines. Concurrent calls serialize.
func (s *Server) Checkpoint() (CheckpointResult, error) {
	if s.images == nil {
		return CheckpointResult{}, ErrNoCheckpointDevice
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	// Checked under ckptMu: Close's teardown handshake also takes ckptMu, so
	// a checkpoint that sees stopping==false here finishes before the store
	// is closed, and one arriving later is rejected instead of touching a
	// closed store.
	if s.stopping.Load() {
		return CheckpointResult{}, errors.New("core: server closing")
	}

	w := s.images.NewWriter()
	sessions := 0
	type outcome struct {
		info faster.CheckpointInfo
		err  error
	}
	ch := make(chan outcome, 1)
	s.store.CheckpointCut(w,
		func(sealed uint32) {
			// On the cut: snapshot the session table restricted to the
			// sealed version — the exact operation set recovery's version
			// filter will keep in the store image.
			view := s.view.Load().Clone()
			tab := s.sessTab.snapshotUpTo(sealed)
			sessions = len(tab)
			writeServerSection(w, view, tab, s.store.Fences())
		},
		func(info faster.CheckpointInfo, err error) {
			ch <- outcome{info, err}
		})
	out := <-ch
	if out.err != nil {
		s.stats.CheckpointFailures.Add(1)
		return CheckpointResult{Info: out.info}, out.err
	}
	if err := w.Commit(); err != nil {
		s.stats.CheckpointFailures.Add(1)
		return CheckpointResult{Info: out.info}, err
	}
	// The committed image references log bytes from its begin address up; the
	// compaction service may now reclaim device space below it (and no
	// further — recovery reads from here).
	s.committedBegin.Store(uint64(out.info.Begin))
	res := CheckpointResult{
		Info:       out.info,
		Generation: s.images.Generation(),
		Sessions:   sessions,
	}
	s.stats.Checkpoints.Add(1)
	return res, nil
}

// checkpointLoop takes periodic checkpoints until the server closes.
func (s *Server) checkpointLoop(every time.Duration) {
	defer s.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-s.bgQuit:
			return
		case <-tick.C:
			// Failures are counted inside Checkpoint (shared with the
			// admin-message and direct-call paths).
			s.Checkpoint() //nolint:errcheck // best-effort periodic attempt
		}
	}
}

// writeServerSection serializes the server's recovery state ahead of the
// FASTER blob. Errors stick inside the ImageWriter and surface when the
// store blob is written.
func writeServerSection(w io.Writer, view metadata.View, sessions map[uint64]uint32,
	fences []faster.Fence) {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, serverImageMagic)
	buf = binary.LittleEndian.AppendUint32(buf, serverImageVersion)
	buf = binary.LittleEndian.AppendUint64(buf, view.Number)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(view.Ranges)))
	for _, r := range view.Ranges {
		buf = binary.LittleEndian.AppendUint64(buf, r.Start)
		buf = binary.LittleEndian.AppendUint64(buf, r.End)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sessions)))
	for id, seq := range sessions {
		buf = binary.LittleEndian.AppendUint64(buf, id)
		buf = binary.LittleEndian.AppendUint32(buf, seq)
	}
	// Ownership fences (version 2): the recovered log still holds the stale
	// records the fences retired, so losing them across a restart would
	// resurrect overwritten data.
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fences)))
	for _, f := range fences {
		buf = binary.LittleEndian.AppendUint64(buf, f.Start)
		buf = binary.LittleEndian.AppendUint64(buf, f.End)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Below))
	}
	w.Write(buf)
}

// readServerSection parses the server section, leaving r positioned at the
// FASTER checkpoint blob.
func readServerSection(r io.Reader) (metadata.View, map[uint64]uint32, []faster.Fence, error) {
	var fixed [20]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return metadata.View{}, nil, nil, fmt.Errorf("core: reading server image header: %w", err)
	}
	if binary.LittleEndian.Uint32(fixed[0:4]) != serverImageMagic {
		return metadata.View{}, nil, nil, errors.New("core: bad server image magic")
	}
	ver := binary.LittleEndian.Uint32(fixed[4:8])
	if ver < 1 || ver > serverImageVersion {
		return metadata.View{}, nil, nil, fmt.Errorf("core: server image version %d unsupported", ver)
	}
	view := metadata.View{Number: binary.LittleEndian.Uint64(fixed[8:16])}
	nRanges := binary.LittleEndian.Uint32(fixed[16:20])
	var u16buf [16]byte
	for i := uint32(0); i < nRanges; i++ {
		if _, err := io.ReadFull(r, u16buf[:]); err != nil {
			return metadata.View{}, nil, nil, fmt.Errorf("core: reading ranges: %w", err)
		}
		view.Ranges = append(view.Ranges, metadata.HashRange{
			Start: binary.LittleEndian.Uint64(u16buf[0:8]),
			End:   binary.LittleEndian.Uint64(u16buf[8:16]),
		})
	}
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return metadata.View{}, nil, nil, fmt.Errorf("core: reading session count: %w", err)
	}
	nSess := binary.LittleEndian.Uint32(cnt[:])
	sessions := make(map[uint64]uint32, nSess)
	var sbuf [12]byte
	for i := uint32(0); i < nSess; i++ {
		if _, err := io.ReadFull(r, sbuf[:]); err != nil {
			return metadata.View{}, nil, nil, fmt.Errorf("core: reading session table: %w", err)
		}
		sessions[binary.LittleEndian.Uint64(sbuf[0:8])] = binary.LittleEndian.Uint32(sbuf[8:12])
	}
	var fences []faster.Fence
	if ver >= 2 {
		if _, err := io.ReadFull(r, cnt[:]); err != nil {
			return metadata.View{}, nil, nil, fmt.Errorf("core: reading fence count: %w", err)
		}
		nFences := binary.LittleEndian.Uint32(cnt[:])
		var fbuf [24]byte
		for i := uint32(0); i < nFences; i++ {
			if _, err := io.ReadFull(r, fbuf[:]); err != nil {
				return metadata.View{}, nil, nil, fmt.Errorf("core: reading fences: %w", err)
			}
			fences = append(fences, faster.Fence{
				Start: binary.LittleEndian.Uint64(fbuf[0:8]),
				End:   binary.LittleEndian.Uint64(fbuf[8:16]),
				Below: hlog.Address(binary.LittleEndian.Uint64(fbuf[16:24])),
			})
		}
	}
	return view, sessions, fences, nil
}

// handleCheckpointReq serves the MsgCheckpoint admin message. The checkpoint
// runs on its own goroutine so the dispatcher keeps polling (and crossing the
// cut); the response ships when the image is committed.
func (s *Server) handleCheckpointReq(c transport.Conn) {
	go func() {
		res, err := s.Checkpoint()
		resp := wire.CheckpointResp{OK: err == nil,
			Version: res.Info.Version, Tail: uint64(res.Info.Tail)}
		if err != nil {
			resp.Err = err.Error()
		}
		c.Send(wire.EncodeCheckpointResp(resp))
	}()
}

// handleSessionRecover answers a reconnecting client with the session's last
// durable sequence number from the (possibly recovered) session table.
func (d *dispatcher) handleSessionRecover(c transport.Conn, frame []byte) {
	req, err := wire.DecodeSessionRecover(frame)
	if err != nil {
		d.s.stats.DecodeErrors.Add(1)
		return
	}
	last, known := d.s.sessTab.get(req.SessionID)
	c.Send(wire.EncodeSessionRecoverResp(wire.SessionRecoverResp{
		SessionID: req.SessionID, Known: known, LastSeq: last}))
}
