package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/metadata"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Scale-in: drain this server's ranges into the surviving servers via
// ordinary migrations (§3.3 — no new transfer mechanism), then retire it
// from the metadata store. The inverse of the balancer's split-driven
// scale-out.

// DrainReport summarizes a drain.
type DrainReport struct {
	// Moved is how many owned ranges were migrated away.
	Moved int
	// Retired is true once the server was removed from the metadata store.
	Retired bool
}

// drainPollEvery is how often Drain polls an in-flight migration, and
// drainMigrationTimeout how long it waits for one before giving up.
const (
	drainPollEvery          = 5 * time.Millisecond
	drainMigrationTimeout   = 60 * time.Second
	drainStartRetries       = 40
	drainStartRetryInterval = 25 * time.Millisecond
)

// Drain migrates every range this server owns to the other registered
// servers (round-robin) and retires it from the metadata store. Refused on a
// standby, on a replicated primary (detach the backup first: a drained
// primary has nothing left to replicate), and when no other server exists to
// take the ranges — a drain must never leave a range unowned.
//
// Drain is idempotent: retrying after a partial failure re-plans from the
// current view, and retiring an already-retired server is a no-op.
func (s *Server) Drain() (DrainReport, error) {
	var rep DrainReport
	if s.standby.Load() {
		return rep, errStandby
	}
	if rs := s.repl.Load(); rs != nil && !rs.detached.Load() {
		return rep, fmt.Errorf("core: %s: %w", s.cfg.ID, metadata.ErrReplicated)
	}

	view := s.view.Load().Clone()
	if len(view.Ranges) > 0 {
		targets := s.drainTargets()
		if len(targets) == 0 {
			return rep, fmt.Errorf("core: drain of %s would leave %d range(s) unowned: no other server registered",
				s.cfg.ID, len(view.Ranges))
		}
		for i, rng := range view.Ranges {
			target := targets[i%len(targets)]
			if err := s.drainRange(target, rng); err != nil {
				return rep, err
			}
			rep.Moved++
		}
	}

	if err := s.meta.RetireServer(s.cfg.ID); err != nil {
		return rep, err
	}
	rep.Retired = true
	return rep, nil
}

// drainTargets lists every other registered, non-retired server.
func (s *Server) drainTargets() []string {
	var targets []string
	for _, id := range s.meta.Servers() {
		if id != s.cfg.ID {
			targets = append(targets, id)
		}
	}
	return targets
}

// drainRange migrates one owned range to target and waits for the migration
// to complete (or be collected). StartMigration is retried briefly: a
// concurrent compaction pass or a just-finished previous drain migration can
// make it refuse transiently.
func (s *Server) drainRange(target string, rng metadata.HashRange) error {
	var (
		id  uint64
		err error
	)
	for attempt := 0; attempt < drainStartRetries; attempt++ {
		id, err = s.StartMigration(target, rng)
		if err == nil {
			break
		}
		if s.stopping.Load() {
			return err
		}
		time.Sleep(drainStartRetryInterval)
	}
	if err != nil {
		return fmt.Errorf("core: drain %s [%#x,%#x): %w", s.cfg.ID, rng.Start, rng.End, err)
	}
	deadline := time.Now().Add(drainMigrationTimeout)
	for {
		m, gerr := s.meta.GetMigration(id)
		if errors.Is(gerr, metadata.ErrUnknownMigration) {
			return nil // completed and collected
		}
		if gerr == nil && m.Complete() {
			return nil
		}
		if gerr == nil && m.Cancelled {
			return fmt.Errorf("core: drain %s: migration %d cancelled", s.cfg.ID, id)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: drain %s: migration %d did not complete in %s",
				s.cfg.ID, id, drainMigrationTimeout)
		}
		time.Sleep(drainPollEvery)
	}
}

// handleDrainReq serves the MsgDrain admin message; the drain (minutes of
// migrations, potentially) runs on its own goroutine like admin checkpoints.
func (s *Server) handleDrainReq(c transport.Conn) {
	go func() {
		rep, err := s.Drain()
		resp := wire.DrainResp{OK: err == nil, Retired: rep.Retired, Moved: uint32(rep.Moved)}
		if err != nil {
			resp.Err = err.Error()
		}
		c.Send(wire.EncodeDrainResp(resp)) //nolint:errcheck // conn errors surface on the next poll
	}()
}
