package core

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Migration phases on the source (§3.3). Transitions happen on asynchronous
// global cuts: every dispatcher enters a phase at a point of its own
// choosing between request batches, and the transition trigger fires once
// all have.
type migPhase int32

const (
	phaseIdle migPhase = iota
	phaseSampling
	phasePrepare
	phaseTransfer
	phaseMigrate
	phaseDiskScan // Rocksteady baseline only
	phaseComplete
)

func (p migPhase) String() string {
	switch p {
	case phaseIdle:
		return "Idle"
	case phaseSampling:
		return "Sampling"
	case phasePrepare:
		return "Prepare"
	case phaseTransfer:
		return "Transfer"
	case phaseMigrate:
		return "Migrate"
	case phaseDiskScan:
		return "DiskScan"
	case phaseComplete:
		return "Complete"
	default:
		return "?"
	}
}

// MigrationReport summarizes a finished outbound migration (the harness
// prints Figure 13 from these numbers).
type MigrationReport struct {
	ID               uint64
	Range            metadata.HashRange
	Started          time.Time
	OwnershipAt      time.Time
	RecordsDone      time.Time
	Finished         time.Time
	SampledRecords   int
	RecordsSent      uint64
	IndirectionsSent uint64
	BytesFromMemory  uint64
	DiskScanRecords  uint64
	Rocksteady       bool
}

// sourceMigration is the source-side state machine.
type sourceMigration struct {
	s       *Server
	mig     metadata.MigrationState
	rng     metadata.HashRange
	newView metadata.View
	target  string
	tgtAddr string

	phase atomic.Int32

	sampleCut hlog.Address // tail at Sampling start

	cursor      atomic.Uint64 // bucket work-stealing cursor (Migrate phase)
	threadsDone atomic.Int64
	finishOnce  sync.Once

	report   MigrationReport
	reportMu sync.Mutex

	recordsSent     atomic.Uint64
	indirections    atomic.Uint64
	bytesFromMemory atomic.Uint64
	diskScanRecords atomic.Uint64
}

// targetMigration is the target-side state machine.
type targetMigration struct {
	s        *Server
	migID    uint64
	rng      metadata.HashRange
	sourceID string

	serving    atomic.Bool // true after TransferOwnership (sampled records in)
	completed  atomic.Bool // true after CompleteMigration
	finishOnce sync.Once
}

// pendedOp is a client operation waiting for its record to arrive (§3.3) or
// for a shared-tier fetch to land (§3.3.2). Each dispatcher retries its own
// pended operations, keeping everything thread-local.
type pendedOp struct {
	c         transport.Conn
	sessionID uint64
	op        wire.Op
	// probing is set while a presence probe is in flight on storage; the
	// retry loop skips the op until the probe's I/O drains. Written by a
	// watcher goroutine, read by the dispatcher: atomic.
	probing atomic.Bool
}

// sourceState returns the active outbound migration, if any.
func (s *Server) sourceState() *sourceMigration {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	return s.source
}

// targetSnapshot fills buf with the current inbound migrations and returns
// it. Callers hold the snapshot for at most one batch; the common
// no-migration case returns buf[:0] without allocating.
func (s *Server) targetSnapshot(buf []*targetMigration) []*targetMigration {
	buf = buf[:0]
	s.migMu.Lock()
	for _, tm := range s.targets {
		buf = append(buf, tm)
	}
	s.migMu.Unlock()
	return buf
}

// targetCovering returns the not-yet-completed inbound migration whose
// range contains h, or nil. Rare-path helper (I/O completions); the batch
// hot path uses a per-batch targetSnapshot instead.
func (s *Server) targetCovering(h uint64) *targetMigration {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	for _, tm := range s.targets {
		if !tm.completed.Load() && tm.rng.Contains(h) {
			return tm
		}
	}
	return nil
}

// coveringTarget scans a snapshot for the not-yet-completed inbound
// migration whose range contains h. Disjoint in-flight ranges mean at most
// one can match.
func coveringTarget(tms []*targetMigration, h uint64) *targetMigration {
	for _, tm := range tms {
		if !tm.completed.Load() && tm.rng.Contains(h) {
			return tm
		}
	}
	return nil
}

// StartMigration initiates scale-out of rng from this server to target
// (§3.3 "Migrate() RPC"). It returns once the migration is registered; the
// protocol itself runs asynchronously across the dispatcher threads.
func (s *Server) StartMigration(target string, rng metadata.HashRange) (uint64, error) {
	s.migMu.Lock()
	if s.source != nil {
		s.migMu.Unlock()
		return 0, fmt.Errorf("core: migration already in progress")
	}
	if s.compactPass {
		// A compaction pass is scanning (and will truncate) the stable
		// prefix this migration would also read; let it finish and retry.
		s.migMu.Unlock()
		return 0, fmt.Errorf("core: compaction pass in flight; retry migration shortly")
	}
	tgtAddr, err := s.meta.ServerAddr(target)
	if err != nil {
		s.migMu.Unlock()
		return 0, err
	}
	// One atomic metadata transition: remap ownership, bump both views,
	// register the dependency (§3.3 Sampling step 1).
	mig, newSrc, _, err := s.meta.StartMigration(s.cfg.ID, target, rng)
	if err != nil {
		s.migMu.Unlock()
		return 0, err
	}
	sm := &sourceMigration{
		s: s, mig: mig, rng: rng, newView: newSrc,
		target: target, tgtAddr: tgtAddr,
	}
	sm.report = MigrationReport{ID: mig.ID, Range: rng, Started: time.Now(),
		Rocksteady: s.cfg.Rocksteady}
	sm.phase.Store(int32(phaseSampling))
	sm.sampleCut = s.store.Log().TailAddress()
	s.source = sm
	s.migMu.Unlock()

	// Sampling step 2: force accessed records in the migrating range below
	// the cut to be copied to the tail.
	if !s.cfg.DisableSampling {
		cut := sm.sampleCut
		s.store.SetSampleFilter(func(hash uint64, addr hlog.Address) bool {
			return addr < cut && rng.Contains(hash)
		})
	}

	// The phase sequence advances on global cuts; the sampling window gets
	// a wall-clock floor so accesses can accumulate hot records.
	s.store.Epoch().BumpWithAction(func() {
		go sm.afterSamplingCut()
	})
	return mig.ID, nil
}

// afterSamplingCut runs once every thread has entered the Sampling phase.
func (sm *sourceMigration) afterSamplingCut() {
	time.Sleep(sm.s.cfg.SampleDuration)
	sm.phase.Store(int32(phasePrepare))
	// Prepare: tell the target that ownership transfer is imminent; the
	// RPC is asynchronous (the target also discovers the migration through
	// the metadata store if this frame races behind client traffic).
	sm.s.sendMigrationMsg(sm.tgtAddr, &wire.MigrationMsg{
		Type: wire.MsgPrepForTransfer, MigrationID: sm.mig.ID,
		SourceID: sm.s.cfg.ID, RangeStart: sm.rng.Start, RangeEnd: sm.rng.End,
	})
	sm.s.store.Epoch().BumpWithAction(func() {
		go sm.transfer()
	})
}

// transfer moves the source into the new view (it stops serving the
// migrating ranges) and, once the view-change cut completes, ships sampled
// hot records with the TransferedOwnership RPC.
func (sm *sourceMigration) transfer() {
	sm.phase.Store(int32(phaseTransfer))
	// Only move the view forward: a concurrent inbound migration may have
	// already advanced this server past the view StartMigration returned.
	if cur := sm.s.view.Load(); sm.newView.Number > cur.Number {
		nv := sm.newView.Clone()
		sm.s.view.Store(&nv)
	} else {
		sm.s.refreshView()
	}
	sm.s.store.Epoch().BumpWithAction(func() {
		go sm.afterViewCut()
	})
}

func (sm *sourceMigration) afterViewCut() {
	s := sm.s
	// Collect the hot records accumulated above the sampling cut.
	var sampled []wire.MigrationRecord
	if !s.cfg.DisableSampling {
		sampled = sm.collectSampled()
	}
	s.store.SetSampleFilter(nil)
	sm.reportMu.Lock()
	sm.report.OwnershipAt = time.Now()
	sm.report.SampledRecords = len(sampled)
	sm.reportMu.Unlock()

	s.sendMigrationMsg(sm.tgtAddr, &wire.MigrationMsg{
		Type: wire.MsgTransferOwnership, MigrationID: sm.mig.ID,
		SourceID: s.cfg.ID, RangeStart: sm.rng.Start, RangeEnd: sm.rng.End,
		ViewNumber: sm.newView.Number, Records: sampled,
	})
	// Migrate phase: dispatchers pick up collection work from the cursor.
	sm.phase.Store(int32(phaseMigrate))
}

// collectSampled scans [sampleCut, tail) for the newest versions of keys in
// the migrating range, bounded by SampleLimit.
func (sm *sourceMigration) collectSampled() []wire.MigrationRecord {
	s := sm.s
	sess := s.fetchSession()
	defer s.releaseFetchSession(sess)
	seen := make(map[string]struct{})
	var out []wire.MigrationRecord
	lg := s.store.Log()
	// Scan newest-first is not possible (log order is oldest-first), so
	// collect all candidates keeping the last (newest) version per key.
	newest := make(map[string]wire.MigrationRecord)
	lg.ScanMemory(sm.sampleCut, lg.TailAddress(), func(addr hlog.Address, r hlog.Record) bool {
		m := r.Meta()
		if m.Invalid() || m.Indirection() {
			return true
		}
		h := faster.HashOf(r.Key())
		if !sm.rng.Contains(h) {
			return true
		}
		var flags uint8
		if m.Tombstone() {
			flags |= wire.RecFlagTombstone
		}
		newest[string(r.Key())] = wire.MigrationRecord{
			Hash: h, Flags: flags,
			Key:   append([]byte(nil), r.Key()...),
			Value: r.ReadValueStable(nil),
		}
		return true
	})
	for k, rec := range newest {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, rec)
		if len(out) >= s.cfg.SampleLimit {
			break
		}
	}
	return out
}

// sourceMigrationStep performs one unit of Migrate-phase work on dispatcher
// d: claim a chunk of hash-table buckets, collect chains, ship a batch.
// Returns whether work was done (§3.3: threads interleave this with request
// processing; each thread works on independent hash table regions).
func (s *Server) sourceMigrationStep(d *dispatcher) bool {
	sm := s.sourceState()
	if sm == nil || migPhase(sm.phase.Load()) != phaseMigrate {
		return false
	}
	ix := s.store.Index()
	n := ix.NumBuckets()
	chunk := uint64(s.cfg.MigrationChunkBuckets)
	b0 := sm.cursor.Add(chunk) - chunk
	if b0 >= n {
		// Collection finished; flush this thread's remainder and count it
		// done exactly once per thread.
		if d.migDoneID != sm.mig.ID {
			d.flushMigrationBatch(sm, true)
			d.migDoneID = sm.mig.ID
			if sm.threadsDone.Add(1) == int64(s.cfg.Threads) {
				sm.finishOnce.Do(func() { go sm.afterCollection() }) //shadowfax:ignore epochblock the once body only spawns a goroutine; the last dispatcher to arrive runs it inline and returns immediately
			}
			return true
		}
		return false
	}
	end := b0 + chunk
	if end > n {
		end = n
	}
	seen := make(map[string]struct{})
	// Indirection records are only useful when the target can resolve them —
	// they name a (LogID, address) suffix in the shared tier. Without a tier
	// the target's fetch would come back empty and materialize a tombstone,
	// silently deleting every key whose chain lives below this server's head
	// (after a crash-recovery that is the entire recovered range). Fall back
	// to the Rocksteady-style on-device scan instead (afterCollection).
	useIndirections := !s.cfg.Rocksteady && s.store.Log().Tier() != nil
	ix.ForEachEntryInBuckets(b0, end, func(bucket uint64, slot faster.IndexSlot) bool {
		d.sess.CollectChain(bucket, slot, sm.rng.Start, sm.rng.End,
			useIndirections, seen, func(rec faster.CollectedRecord) {
				d.addMigrationRecord(sm, rec)
			})
		return true
	})
	d.flushMigrationBatchIfFull(sm)
	return true
}

// addMigrationRecord buffers one collected record for shipment.
func (d *dispatcher) addMigrationRecord(sm *sourceMigration, rec faster.CollectedRecord) {
	var flags uint8
	if rec.Tombstone {
		flags |= wire.RecFlagTombstone
	}
	if rec.Indirection {
		flags |= wire.RecFlagIndirection
		sm.indirections.Add(1)
	}
	d.migBatch = append(d.migBatch, wire.MigrationRecord{
		Hash: rec.Hash, Flags: flags, Key: rec.Key, Value: rec.Value,
	})
	sm.recordsSent.Add(1)
	sm.bytesFromMemory.Add(uint64(16 + len(rec.Key) + len(rec.Value)))
}

func (d *dispatcher) flushMigrationBatchIfFull(sm *sourceMigration) {
	if len(d.migBatch) >= d.s.cfg.MigrationBatchRecords {
		d.flushMigrationBatch(sm, false)
	}
}

// flushMigrationBatch ships the thread's buffered records on its private
// session to the target (parallel migration, §3.3).
func (d *dispatcher) flushMigrationBatch(sm *sourceMigration, final bool) {
	if len(d.migBatch) == 0 && !final {
		return
	}
	if d.migConn != nil && d.migConnID != sm.mig.ID {
		// Leftover connection from an earlier migration — possibly to a
		// different target. Records sent on it would install on the wrong
		// server and silently vanish from this migration.
		d.migConn.Close()
		d.migConn = nil
	}
	if d.migConn == nil {
		c, err := d.s.cfg.Transport.Dial(sm.tgtAddr)
		if err != nil {
			d.migBatch = d.migBatch[:0]
			return
		}
		d.migConn = c
		d.migConnID = sm.mig.ID
	}
	msg := wire.MigrationMsg{
		Type: wire.MsgMigrationRecords, MigrationID: sm.mig.ID,
		SourceID: d.s.cfg.ID, RangeStart: sm.rng.Start, RangeEnd: sm.rng.End,
		Final: final, Records: d.migBatch,
	}
	d.migConn.Send(wire.EncodeMigrationMsg(&msg))
	d.migBatch = d.migBatch[:0]
}

// afterCollection runs once every thread finished the Migrate phase: the
// Rocksteady baseline scans the on-SSD log single-threaded; the Shadowfax
// path (indirection records) is already done.
func (sm *sourceMigration) afterCollection() {
	sm.awaitFinalAcks()
	sm.reportMu.Lock()
	sm.report.RecordsDone = time.Now()
	sm.reportMu.Unlock()
	if sm.s.cfg.Rocksteady || sm.s.store.Log().Tier() == nil {
		// No shared tier means the memory pass shipped no indirection
		// records for the chains below head; ship the on-device suffix
		// directly, as the Rocksteady baseline does.
		sm.phase.Store(int32(phaseDiskScan))
		sm.diskScan()
	}
	sm.complete()
}

// awaitFinalAcks blocks until the target has acknowledged every dispatcher's
// final record frame for this migration. CompleteMigration travels on its
// own connection and would otherwise overtake the record streams; the acks
// order it strictly after every record is installed (or decided) at the
// target. Safe to touch the dispatchers' migration connections here: every
// dispatcher finished its final flush before threadsDone reached the thread
// count (which is what scheduled this goroutine), and no new outbound
// migration can claim the connections until complete() clears s.source. A
// dispatcher whose dial failed has no connection (and its records were
// already lost on the send path); the deadline keeps a dead target from
// wedging the source forever.
func (sm *sourceMigration) awaitFinalAcks() {
	deadline := time.Now().Add(migrationAckTimeout)
	for _, d := range sm.s.threads {
		if d.migConnID != sm.mig.ID || d.migConn == nil {
			continue
		}
		awaitAck(d.migConn, deadline)
	}
}

// migrationAckTimeout bounds how long the source waits for the target to
// acknowledge a final record frame before giving up on the ordering
// guarantee (the target is presumed dead; completion proceeds so the
// metadata dependency can still be collected).
const migrationAckTimeout = 30 * time.Second

// awaitAck polls conn for one frame (the migration ack) until deadline.
func awaitAck(conn transport.Conn, deadline time.Time) {
	for {
		if _, ok, err := conn.TryRecv(); ok || err != nil {
			return
		}
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// diskScan is the second phase for sources that cannot leave indirection
// records behind (the Rocksteady baseline, or a Shadowfax node with no
// shared tier): a single thread scans the stable region on the local SSD
// and ships live records in the migrating range (§4.1, Figure 10(c)).
//
// The target installs with ConditionalInsert, which is first-writer-wins —
// so records must arrive newest-first or a key whose only versions are on
// disk would be resurrected at its oldest value. Pages are read in
// descending address order and each page's records are emitted in reverse,
// making the whole stream strictly newest-first.
func (sm *sourceMigration) diskScan() {
	s := sm.s
	lg := s.store.Log()
	conn, err := s.cfg.Transport.Dial(sm.tgtAddr)
	if err != nil {
		return
	}
	defer conn.Close()
	pageBits := uint(0)
	for 1<<pageBits != lg.PageSize() {
		pageBits++
	}
	endPage := lg.SafeHeadAddress().Page(pageBits)
	buf := lg.NewPageBuffer()
	var batch []wire.MigrationRecord
	flush := func(final bool) {
		if len(batch) == 0 && !final {
			return
		}
		msg := wire.MigrationMsg{
			Type: wire.MsgMigrationRecords, MigrationID: sm.mig.ID,
			SourceID: s.cfg.ID, RangeStart: sm.rng.Start, RangeEnd: sm.rng.End,
			Final: final, Records: batch,
		}
		conn.Send(wire.EncodeMigrationMsg(&msg))
		batch = batch[:0]
	}
	beginPage := lg.BeginAddress().Page(pageBits)
	var pageRecs []wire.MigrationRecord
	for p := endPage; p > beginPage; p-- {
		page := p - 1
		if err := lg.ReadPageFromDevice(page, buf); err != nil {
			continue
		}
		pageRecs = pageRecs[:0]
		hlog.ScanPageBuffer(hlog.Address(page<<pageBits), buf, func(addr hlog.Address, r hlog.Record) bool {
			m := r.Meta()
			if m.Invalid() || m.Indirection() {
				return true
			}
			h := faster.HashOf(r.Key())
			if !sm.rng.Contains(h) {
				return true
			}
			if addr < s.store.FenceBelow(h) {
				// Retired leftover from an earlier tenancy of the range
				// (same filter CollectChain applies in the memory pass).
				return true
			}
			var flags uint8
			if m.Tombstone() {
				flags |= wire.RecFlagTombstone
			}
			pageRecs = append(pageRecs, wire.MigrationRecord{
				Hash: h, Flags: flags,
				Key:   append([]byte(nil), r.Key()...),
				Value: append([]byte(nil), r.Value()...),
			})
			sm.diskScanRecords.Add(1)
			return true
		})
		for i := len(pageRecs) - 1; i >= 0; i-- {
			batch = append(batch, pageRecs[i])
			if len(batch) >= s.cfg.MigrationBatchRecords {
				flush(false)
			}
		}
	}
	flush(true)
	// Same ordering requirement as the dispatchers' record streams: the
	// final frame must be acked before complete() may run.
	awaitAck(conn, time.Now().Add(migrationAckTimeout))
}

// complete sends CompleteMigration, takes the source's asynchronous
// checkpoint, marks the source side done in the metadata store, and returns
// the server to normal operation (§3.3 Complete).
func (sm *sourceMigration) complete() {
	s := sm.s
	sm.phase.Store(int32(phaseComplete))
	s.sendMigrationMsg(sm.tgtAddr, &wire.MigrationMsg{
		Type: wire.MsgCompleteMigration, MigrationID: sm.mig.ID,
		SourceID: s.cfg.ID, RangeStart: sm.rng.Start, RangeEnd: sm.rng.End,
	})
	var ckpt bytes.Buffer
	done := make(chan struct{})
	s.store.Checkpoint(&ckpt, func(faster.CheckpointInfo, error) { close(done) })
	<-done
	s.meta.MarkMigrationDone(sm.mig.ID, s.cfg.ID)

	sm.reportMu.Lock()
	sm.report.Finished = time.Now()
	sm.report.RecordsSent = sm.recordsSent.Load()
	sm.report.IndirectionsSent = sm.indirections.Load()
	sm.report.BytesFromMemory = sm.bytesFromMemory.Load()
	sm.report.DiskScanRecords = sm.diskScanRecords.Load()
	sm.reportMu.Unlock()

	s.migMu.Lock()
	s.lastReport = sm.report
	s.source = nil
	s.migMu.Unlock()
	sm.phase.Store(int32(phaseIdle))
}

// sendMigrationMsg dials a fresh connection for a control RPC; control
// traffic is rare and stays off the data sessions.
func (s *Server) sendMigrationMsg(addr string, m *wire.MigrationMsg) {
	c, err := s.cfg.Transport.Dial(addr)
	if err != nil {
		return
	}
	defer c.Close()
	c.Send(wire.EncodeMigrationMsg(m))
}

// LastMigrationReport returns the most recent outbound migration summary.
func (s *Server) LastMigrationReport() MigrationReport {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	return s.lastReport
}

// ---------------------------------------------------------------------------
// Target side

// discoverTargetMigration checks the metadata store for inbound
// migrations; the target may learn about them from client traffic (view
// mismatch → refresh) before the sources' PrepForTransfer frames arrive. It
// also retires inbound migrations that were cancelled, so operations pended
// on their ranges become decidable again.
func (s *Server) discoverTargetMigration() {
	live := make(map[uint64]bool) //shadowfax:ignore hotpathalloc runs only on a view-number mismatch (migration discovery), not on steady-state batches
	for _, m := range s.meta.PendingMigrationsFor(s.cfg.ID) {
		if m.Target != s.cfg.ID || m.TargetDone || m.Cancelled {
			continue
		}
		live[m.ID] = true
		s.ensureTargetMigration(m.ID, m.Source, m.Range)
	}
	s.migMu.Lock()
	var stale []*targetMigration
	for id, tm := range s.targets {
		if !live[id] {
			stale = append(stale, tm)
		}
	}
	s.migMu.Unlock()
	// The metadata reads happen outside migMu: dispatchers take migMu on
	// every batch and must never wait on a provider call.
	for _, tm := range stale {
		m, err := s.meta.GetMigration(tm.migID)
		if err != nil || !m.Cancelled {
			continue
		}
		tm.completed.Store(true)
		s.retireTarget(tm.migID)
	}
}

// ensureTargetMigration returns the inbound-migration state for id,
// creating it (and laying its ownership fence) on first sight. It returns
// nil when the migration is already retired on this server — finished,
// cancelled, or collected — because re-creating it would lay a fence at the
// current tail over the live records the migration delivered (see
// targetsRetired). Callers must treat nil as "this migration is over".
func (s *Server) ensureTargetMigration(id uint64, source string, rng metadata.HashRange) *targetMigration {
	s.migMu.Lock()
	if _, done := s.targetsRetired[id]; done {
		s.migMu.Unlock()
		return nil
	}
	if tm, ok := s.targets[id]; ok {
		s.migMu.Unlock()
		return tm
	}
	s.migMu.Unlock()

	// First sight of this id. Confirm against the metadata store (outside
	// migMu — dispatchers must never wait on a provider call under it) that
	// the migration is genuinely live: a stale PendingMigrationsFor snapshot
	// or a recovering source's duplicate control frame can name a migration
	// this server already finished. An unknown id means the dependency was
	// collected — equally over.
	if m, err := s.meta.GetMigration(id); err != nil || m.TargetDone || m.Cancelled {
		s.retireTarget(id)
		return nil
	}

	s.migMu.Lock()
	defer s.migMu.Unlock()
	if _, done := s.targetsRetired[id]; done {
		return nil
	}
	if tm, ok := s.targets[id]; ok {
		return tm
	}
	if s.targets == nil {
		s.targets = make(map[uint64]*targetMigration) //shadowfax:ignore hotpathalloc once per server lifetime, on the first inbound migration
	}
	// Ownership fence (see faster/fence.go): everything already in the log
	// for this range predates the migration — leftovers from an earlier
	// tenancy that would otherwise shadow the authoritative records the
	// source is about to ship (ConditionalInsert keeps the first version it
	// finds). Laid before any shipped record or client write can land, so
	// the live data appends strictly above it.
	s.store.AddFence(rng.Start, rng.End, s.store.Log().TailAddress())
	tm := &targetMigration{s: s, migID: id, rng: rng, sourceID: source} //shadowfax:ignore hotpathalloc one allocation per inbound migration, not per batch
	s.targets[id] = tm
	return tm
}

// retireTarget marks an inbound migration as permanently over on this
// server and drops its live state, in one critical section.
func (s *Server) retireTarget(id uint64) {
	s.migMu.Lock()
	if s.targetsRetired == nil {
		s.targetsRetired = make(map[uint64]struct{}) //shadowfax:ignore hotpathalloc once per server lifetime, on the first retired migration
	}
	s.targetsRetired[id] = struct{}{}
	delete(s.targets, id)
	s.migMu.Unlock()
}

// handleMigrationMsg processes source→target protocol frames on the
// receiving dispatcher (§3.3: the target is mostly passive; its phase
// changes are triggered by source RPCs).
func (d *dispatcher) handleMigrationMsg(c transport.Conn, m *wire.MigrationMsg) {
	s := d.s
	switch m.Type {
	case wire.MsgPrepForTransfer:
		s.refreshView()
		s.ensureTargetMigration(m.MigrationID, m.SourceID,
			metadata.HashRange{Start: m.RangeStart, End: m.RangeEnd})
		ack := wire.MigrationMsg{Type: wire.MsgAck, MigrationID: m.MigrationID}
		c.Send(wire.EncodeMigrationMsg(&ack))

	case wire.MsgTransferOwnership:
		s.refreshView()
		tm := s.ensureTargetMigration(m.MigrationID, m.SourceID,
			metadata.HashRange{Start: m.RangeStart, End: m.RangeEnd})
		if tm != nil {
			// Install the sampled hot records, then begin serving the range
			// (Figure 14's head start). A nil tm means the migration already
			// finished here (duplicate frame): installing would resurrect
			// stale versions above the range's fence.
			for i := range m.Records {
				r := &m.Records[i]
				d.sess.ConditionalInsert(r.Key, r.Value, r.Flags&wire.RecFlagTombstone != 0, nil)
			}
			d.sess.CompletePending(true)
			tm.serving.Store(true)
		}
		ack := wire.MigrationMsg{Type: wire.MsgAck, MigrationID: m.MigrationID}
		c.Send(wire.EncodeMigrationMsg(&ack))

	case wire.MsgMigrationRecords:
		tm := s.ensureTargetMigration(m.MigrationID, m.SourceID,
			metadata.HashRange{Start: m.RangeStart, End: m.RangeEnd})
		if tm != nil {
			for i := range m.Records {
				r := &m.Records[i]
				if r.Flags&wire.RecFlagIndirection != 0 {
					if d.sess.SpliceIndirection(r.Hash, r.Value) != faster.StatusOK {
						// Fallback (§3.3.2): resolve the remote suffix eagerly.
						s.fetchRangeFromSharedTier(r.Value)
					}
				} else {
					d.sess.ConditionalInsert(r.Key, r.Value, r.Flags&wire.RecFlagTombstone != 0, nil)
				}
			}
		}
		if m.Final {
			// The source holds CompleteMigration until every record stream's
			// final frame is acked: record frames travel per-dispatcher
			// connections and would otherwise race the completion (the target
			// would retire the migration state while records are still in
			// flight, and a miss in that window reads as NotFound). Drain
			// pending installs first so the ack means "every record on this
			// stream is decided".
			for d.sess.Pending() > 0 {
				d.sess.CompletePending(true)
			}
			ack := wire.MigrationMsg{Type: wire.MsgAck, MigrationID: m.MigrationID}
			c.Send(wire.EncodeMigrationMsg(&ack))
		}

	case wire.MsgCompleteMigration:
		tm := s.ensureTargetMigration(m.MigrationID, m.SourceID,
			metadata.HashRange{Start: m.RangeStart, End: m.RangeEnd})
		if tm != nil {
			tm.completed.Store(true)
			tm.finishOnce.Do(func() { go tm.finish() }) //shadowfax:ignore epochblock the once body only spawns a goroutine; whichever dispatcher wins runs it inline and returns immediately
		}

	case wire.MsgCompacted:
		// §3.3.3: a record relocated by another server's compaction. If a
		// lookup runs into a covering indirection record, the key was never
		// fetched from the shared tier: install it. Otherwise discard. The
		// ack tells the compacting server this frame's records are decided,
		// so it may reclaim the storage their indirection chains point into —
		// which is why every record must be fully decided (pending I/O
		// drained, installs applied) before the ack leaves: a probe that
		// pends on a disk-resident indirection record and is acked
		// undecided would let the source truncate the very suffix the
		// install still needs.
		undecided := false
		for i := range m.Records {
			r := &m.Records[i]
			key, val := r.Key, r.Value
			tomb := r.Flags&wire.RecFlagTombstone != 0
			d.sess.Read(key, func(st faster.Status, _ []byte) {
				switch st {
				case faster.StatusIndirection:
					d.sess.ConditionalInsert(key, val, tomb, func(st2 faster.Status, _ []byte) {
						if st2 == faster.StatusError {
							undecided = true
						}
					})
				case faster.StatusError:
					undecided = true
				}
			})
		}
		// Drain until quiescent: probes may pend on storage, and their
		// installs may pend again. The frame buffer stays valid throughout
		// (next TryRecv happens after this handler returns).
		for d.sess.Pending() > 0 {
			d.sess.CompletePending(true)
		}
		if undecided {
			// A probe or install errored: withholding the ack makes the
			// source's pass fail, keep its prefix, and re-send later.
			return
		}
		ack := wire.MigrationMsg{Type: wire.MsgAck}
		c.Send(wire.EncodeMigrationMsg(&ack))
	}
}

// finish runs the target's completion: it waits for the pending set to
// drain (all records have arrived, so every pended op is now decidable),
// takes the asynchronous checkpoint, and marks the target side done.
func (tm *targetMigration) finish() {
	s := tm.s
	for s.stats.PendingOps.Load() > 0 {
		time.Sleep(time.Millisecond)
	}
	var ckpt bytes.Buffer
	done := make(chan struct{})
	s.store.Checkpoint(&ckpt, func(faster.CheckpointInfo, error) { close(done) })
	<-done
	// Retire locally before marking done in the metadata store: once the id
	// is in targetsRetired no stale snapshot can resurrect the migration, so
	// the mark's visibility order stops mattering.
	s.retireTarget(tm.migID)
	s.meta.MarkMigrationDone(tm.migID, s.cfg.ID)
}

// targetMigrationStep retries this dispatcher's pended operations; it also
// runs after migrations for operations pending on shared-tier fetches.
func (s *Server) targetMigrationStep(d *dispatcher) bool {
	if len(d.pending) == 0 {
		return false
	}
	d.tmSnap = s.targetSnapshot(d.tmSnap)
	progress := false
	kept := d.pending[:0]
	for _, p := range d.pending {
		if p.probing.Load() {
			kept = append(kept, p)
			continue
		}
		tm := coveringTarget(d.tmSnap, faster.HashOf(p.op.Key))
		if tm != nil && !tm.serving.Load() {
			kept = append(kept, p) // ownership transfer not done yet
			continue
		}
		if d.retryPended(p, tm) {
			progress = true
			s.stats.PendingOps.Add(-1)
		} else {
			kept = append(kept, p)
		}
	}
	d.pending = kept
	return progress
}

// retryPended re-executes one pended operation; returns true when it
// completed (result queued on the connection).
func (d *dispatcher) retryPended(p *pendedOp, tm *targetMigration) bool {
	migrating := tm != nil && !tm.completed.Load() &&
		tm.rng.Contains(faster.HashOf(p.op.Key))

	finish := func(st faster.Status, v []byte) {
		res := wire.Result{Seq: p.op.Seq, Status: toWireStatus(st)}
		if st == faster.StatusOK && v != nil {
			res.Value = append([]byte(nil), v...)
		}
		d.deferred[p.c] = append(d.deferred[p.c], res)
	}

	var done bool
	st := d.sess.Read(p.op.Key, func(st faster.Status, v []byte) {
		switch st {
		case faster.StatusOK:
			if p.op.Kind == wire.OpRMW {
				d.sess.RMW(p.op.Key, p.op.Value, func(st2 faster.Status, _ []byte) {
					finish(st2, nil)
				})
			} else {
				finish(faster.StatusOK, v)
			}
			done = true
		case faster.StatusNotFound:
			if migrating {
				return // record still in flight; keep pending
			}
			if p.op.Kind == wire.OpRMW {
				// Absence is now final: apply the initial-value RMW.
				d.sess.RMW(p.op.Key, p.op.Value, func(st2 faster.Status, _ []byte) {
					finish(st2, nil)
				})
			} else {
				finish(faster.StatusNotFound, nil)
			}
			done = true
		case faster.StatusIndirection:
			// Chain defers to the shared tier; kick a fetch and stay
			// pended until it lands.
			d.s.fetchFromSharedTier(p.op.Key, v)
		}
	})
	if st == faster.StatusPending {
		// The probe itself went to storage; mark the op probing so the
		// retry loop skips it until the probe's I/O drains.
		p.probing.Store(true)
		pp := p
		go func() {
			for d.sess.Pending() > 0 {
				time.Sleep(200 * time.Microsecond)
			}
			pp.probing.Store(false)
		}()
		return false
	}
	return done
}

// pendOp copies and parks an operation on the owning dispatcher.
func (s *Server) pendOp(c transport.Conn, d *dispatcher, sessionID uint64, op *wire.Op) {
	cop := wire.Op{Kind: op.Kind, Seq: op.Seq,
		Key:   append([]byte(nil), op.Key...),
		Value: append([]byte(nil), op.Value...)}
	s.pendOpStruct(c, d, sessionID, &cop)
}

func (s *Server) pendOpStruct(c transport.Conn, d *dispatcher, sessionID uint64, op *wire.Op) {
	d.pending = append(d.pending, &pendedOp{c: c, sessionID: sessionID, op: *op}) //shadowfax:ignore hotpathalloc a pended op must outlive the batch that carried it; one heap copy per pend is the cost of the sample-and-pend protocol
	s.stats.PendingOps.Add(1)
}

// ---------------------------------------------------------------------------
// Shared-tier fetches (§3.3.2)

// fetchFromSharedTier asynchronously retrieves key's record from the remote
// suffix described by an encoded IndirectionPayload, inserts it locally, and
// thereby unblocks pended operations. A miss materializes as a local
// tombstone so absence also becomes locally decidable.
func (s *Server) fetchFromSharedTier(key []byte, payload []byte) {
	p, ok := hlog.DecodeIndirection(payload)
	if !ok {
		return
	}
	k := string(key) //shadowfax:ignore hotpathalloc shared-tier fetch is the slow path (record lives on the remote suffix); the map key copy is noise next to the RPC
	s.fetchMu.Lock()
	if _, inFlight := s.fetching[k]; inFlight {
		s.fetchMu.Unlock()
		return
	}
	s.fetching[k] = struct{}{}
	s.fetchMu.Unlock()

	keyCopy := append([]byte(nil), key...)
	go func() { //shadowfax:ignore hotpathalloc the fetch goroutine is the point: the dispatcher must not wait on the shared tier
		defer func() {
			s.fetchMu.Lock()
			delete(s.fetching, k)
			s.fetchMu.Unlock()
		}()
		s.stats.RemoteFetches.Add(1)
		rec, tomb, found := s.walkRemoteChain(p, keyCopy)
		sess := s.fetchSession()
		defer s.releaseFetchSession(sess)
		if found {
			sess.ConditionalInsert(keyCopy, rec, tomb, nil)
		} else {
			// Materialize absence: a tombstone in front of the indirection
			// record makes the miss locally decidable.
			sess.ConditionalInsert(keyCopy, nil, true, nil)
		}
		sess.CompletePending(true)
	}()
}

// fetchRangeFromSharedTier eagerly pulls an entire remote chain suffix in;
// the fallback when an indirection record cannot be spliced locally.
func (s *Server) fetchRangeFromSharedTier(payload []byte) {
	p, ok := hlog.DecodeIndirection(payload)
	if !ok {
		return
	}
	go func() {
		s.stats.RemoteFetches.Add(1)
		sess := s.fetchSession()
		defer s.releaseFetchSession(sess)
		tier := s.store.Log().Tier()
		if tier == nil {
			return
		}
		pageBits := uint(0)
		for 1<<pageBits != s.store.Log().PageSize() {
			pageBits++
		}
		logID, addr := p.LogID, p.NextAddress
		for addr != hlog.InvalidAddress {
			rec, err := hlog.ReadRecordFromTier(tier, logID, pageBits, addr, 512)
			if err != nil {
				return
			}
			m := rec.Meta()
			if m.Indirection() {
				if ip, ok := hlog.DecodeIndirection(rec.Value()); ok {
					logID, addr = ip.LogID, ip.NextAddress
					continue
				}
				return
			}
			if !m.Invalid() {
				h := faster.HashOf(rec.Key())
				if p.RangeStart <= h && h < p.RangeEnd {
					sess.ConditionalInsert(append([]byte(nil), rec.Key()...),
						append([]byte(nil), rec.Value()...), m.Tombstone(), nil)
				}
			}
			addr = m.Previous()
		}
		sess.CompletePending(true)
	}()
}

// walkRemoteChain follows a chain through the shared tier looking for key.
func (s *Server) walkRemoteChain(p hlog.IndirectionPayload, key []byte) (value []byte, tombstone, found bool) {
	tier := s.store.Log().Tier()
	if tier == nil {
		return nil, false, false
	}
	pageBits := uint(0)
	for 1<<pageBits != s.store.Log().PageSize() {
		pageBits++
	}
	logID, addr := p.LogID, p.NextAddress
	for addr != hlog.InvalidAddress {
		rec, err := hlog.ReadRecordFromTier(tier, logID, pageBits, addr, 512+len(key))
		if err != nil {
			return nil, false, false
		}
		m := rec.Meta()
		if m.Indirection() {
			// Chained migrations: hop into the older log.
			if ip, ok := hlog.DecodeIndirection(rec.Value()); ok &&
				faster.HashOf(key) >= ip.RangeStart && faster.HashOf(key) < ip.RangeEnd {
				logID, addr = ip.LogID, ip.NextAddress
				continue
			}
			return nil, false, false
		}
		if !m.Invalid() && bytes.Equal(rec.Key(), key) {
			return append([]byte(nil), rec.Value()...), m.Tombstone(), true
		}
		addr = m.Previous()
	}
	return nil, false, false
}

// fetchSession hands out the server's auxiliary session (guarded: fetches
// and sampled-record scans are rare, slow paths). The session's epoch guard
// is suspended while unused — an idle registered guard would stall every
// global cut (view changes, flushes, checkpoints) forever.
func (s *Server) fetchSession() *faster.Session {
	s.fetchSessMu.Lock()
	if s.fetchSess == nil {
		s.fetchSess = s.store.NewSession()
	} else {
		s.fetchSess.Guard().Resume()
	}
	// Adopt the current CPR version: this session can sit suspended across
	// checkpoints, and its appends must not be stamped with a stale version.
	s.fetchSess.Refresh()
	return s.fetchSess
}

func (s *Server) releaseFetchSession(sess *faster.Session) {
	sess.Guard().Suspend()
	s.fetchSessMu.Unlock()
}
