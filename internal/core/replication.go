package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/ctlplane"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Primary→backup replication. The mechanism composes what the codebase
// already has rather than inventing a new log format:
//
//   - Base state ships exactly like a checkpoint image is cut: the primary
//     seals a CPR version (an asynchronous global cut, §3.2 machinery) and a
//     version-filtered scan of the hash table streams every pre-cut record to
//     the backup in migration-record frames, installed with
//     ConditionalInsert — the same first-writer-wins primitive migration
//     targets use.
//   - The live stream reuses the client wire format verbatim: every accepted
//     write batch is forwarded as a MsgReplBatch embedding the original
//     MsgRequestBatch frame, and the backup re-executes it through the
//     ordinary batch-apply path. There is no bespoke replication log.
//   - Failover is one metadata linearization point (PromoteReplica): the
//     backup takes over the primary's identity, its view number bumps, and
//     clients replay their sessions through the §3.3.1 recovery path against
//     the promoted server — the path crash recovery already exercises.
//
// Consistency: with a backup attached, no response (write acks *and* read
// results, which may observe locally applied writes) is revealed to a client
// before the backup's cumulative acknowledgement covers every write batch
// forwarded up to that point. A promoted backup therefore holds every write
// any client ever saw acknowledged or reflected in a read. The backup may
// hold *more* than was acknowledged (batches forwarded moments before the
// primary died); with the soak workload's commutative RMWs this only ever
// advances state, never loses it.
//
// Known limitation (documented in README): batches forwarded by different
// dispatcher threads are serialized by the replication stream's send mutex,
// which may order two racing same-key writes differently than the primary's
// store did. The acked-write guarantee above is unaffected; byte-exact
// convergence is only guaranteed for commutative or single-writer-per-key
// workloads. Shared-tier indirection records are not replicated (the base
// scan counts and skips them).

// replState is the primary-side state of one attached backup.
type replState struct {
	s          *Server
	conn       transport.Conn
	backupAddr string
	// baseVer is the CPR version sealed by the replication cut. Dispatchers
	// whose session version is still <= baseVer write pre-cut records that
	// the base scan will ship; once a dispatcher refreshes past the cut its
	// accepted write batches are forwarded on the live stream instead.
	// Atomic: the seal callback confirms it after rs is published to the
	// dispatchers.
	baseVer atomic.Uint32

	// mu serializes frame sends and sequence assignment: every frame to the
	// backup carries a strictly increasing seq, acknowledged cumulatively.
	mu  sync.Mutex
	seq uint64

	acked   atomic.Uint64 // backup's cumulative ack watermark
	lastAck atomic.Int64  // unix nanos of the last ack received

	synced   atomic.Bool // base sync acknowledged; backup may promote
	detached atomic.Bool // stream torn down

	// release decides what happens to responses held against this stream
	// once it is detached. Until the detach-confirmation protocol
	// (confirmDetach) proves the backup can no longer promote, they stay
	// parked (relHold): releasing an unacknowledged write's response while
	// the backup might still take over would lose an acked write. relDrop
	// means the backup DID promote — this incarnation is deposed and the
	// held frames must never reach a client.
	release atomic.Int32

	hbEvery    time.Duration
	ackTimeout time.Duration
}

// release states (replState.release).
const (
	relHold    int32 = iota // detach not confirmed; keep holding
	relRelease              // backup provably cannot promote; reveal responses
	relDrop                 // backup promoted; this primary is deposed — discard
)

// heldResp is a serialized response frame parked until the backup's ack
// watermark reaches gate (or the backup detaches).
type heldResp struct {
	rs    *replState // stream epoch the hold belongs to
	c     transport.Conn
	frame []byte
	gate  uint64
}

// currentSeq returns the live send watermark.
func (rs *replState) currentSeq() uint64 {
	rs.mu.Lock() //shadowfax:ignore epochblock mu is held across conn.Send by a concurrent forwarder, so this read may wait behind an in-flight frame; that backpressure is the replication flow control, and a wedged backup is detached on ack timeout
	defer rs.mu.Unlock()
	return rs.seq
}

// sendNumbered assigns the next stream sequence, encodes the frame for it and
// ships it. Returns the assigned seq; ok is false (and the backup is
// detached) on a send failure.
func (rs *replState) sendNumbered(enc func(seq uint64) []byte) (uint64, bool) {
	if rs.detached.Load() {
		return 0, false
	}
	rs.mu.Lock() //shadowfax:ignore epochblock deliberately held across conn.Send so frames hit the wire in seq order; a full stream backpressures the dispatcher by design, and the ack-timeout monitor detaches a wedged backup to bound the stall
	rs.seq++
	seq := rs.seq
	err := rs.conn.Send(enc(seq))
	rs.mu.Unlock()
	if err != nil {
		rs.s.detachReplica(rs, "send: "+err.Error()) //shadowfax:ignore hotpathalloc send-failure path only; the stream is already being torn down
		return 0, false
	}
	return seq, true
}

// forward ships one accepted client write batch on the live stream. Returns
// the assigned seq, or 0 when the stream is down.
func (rs *replState) forward(batchFrame []byte) uint64 {
	rb := wire.ReplBatch{Batch: batchFrame}
	seq, ok := rs.sendNumbered(func(seq uint64) []byte { //shadowfax:ignore hotpathalloc one escaping closure per forwarded batch is the accepted cost of assigning seq under the stream lock
		rb.Seq = seq
		return wire.EncodeReplBatch(&rb)
	})
	if !ok {
		return 0
	}
	return seq
}

// noteAck folds a cumulative acknowledgement into the watermark.
func (rs *replState) noteAck(seq uint64) {
	for {
		cur := rs.acked.Load()
		if seq <= cur || rs.acked.CompareAndSwap(cur, seq) {
			break
		}
	}
	rs.lastAck.Store(time.Now().UnixNano())
}

// batchHasWrites reports whether any op in the batch mutates state.
func batchHasWrites(b *wire.RequestBatch) bool {
	for i := range b.Ops {
		if b.Ops[i].Kind != wire.OpRead {
			return true
		}
	}
	return false
}

// gateResponse decides whether the response just serialized for this batch
// may be revealed now. fseq is the live-stream seq the batch was forwarded
// under (0 when it was not forwarded). With a live backup attached, a
// forwarded batch waits for its own seq and a read-only batch waits for the
// current send watermark — a read may have observed a write another batch
// applied locally that the backup has not acknowledged yet.
func (d *dispatcher) gateResponse(fseq uint64) (uint64, bool) {
	rs := d.rs
	if rs == nil {
		return 0, false
	}
	if rs.detached.Load() {
		// Stream down but the detach is not confirmed yet: the backup may
		// still hold a promotable registration, so nothing can be revealed
		// until confirmDetach resolves. relRelease means it provably cannot
		// promote (send directly); anything else parks the response.
		return ^uint64(0), rs.release.Load() != relRelease
	}
	gate := fseq
	if gate == 0 {
		if !d.fwd {
			// Pre-cut window: this dispatcher's writes are stamped below the
			// replication cut and travel with the base scan; the backup
			// cannot promote before that scan is acknowledged in full.
			return 0, false
		}
		gate = rs.currentSeq()
	}
	return gate, gate > rs.acked.Load()
}

// holdResponse parks a copy of the serialized response until gate is acked on
// the current stream. The count of holds per conn feeds admission control.
func (d *dispatcher) holdResponse(c transport.Conn, frame []byte, gate uint64) {
	d.held = append(d.held, heldResp{rs: d.rs, c: c, frame: append([]byte(nil), frame...), gate: gate})
	if d.heldPerConn == nil {
		d.heldPerConn = make(map[transport.Conn]int) //shadowfax:ignore hotpathalloc lazily built once per dispatcher on the first hold, then reused
	}
	d.heldPerConn[c]++
}

// noteHeldDone unwinds the per-conn admission count for one resolved hold.
func (d *dispatcher) noteHeldDone(c transport.Conn) {
	if n := d.heldPerConn[c]; n > 1 {
		d.heldPerConn[c] = n - 1
	} else {
		delete(d.heldPerConn, c)
	}
}

// flushHeld moves parked responses covered by the backup's ack watermark.
// Once the stream is detached the release state decides: hold until the
// detach-confirmation protocol resolves, then either release everything
// (the backup provably cannot promote) or discard everything (it did — this
// incarnation is deposed and must not reveal unreplicated acks). Reports
// whether anything moved.
func (d *dispatcher) flushHeld() bool {
	if len(d.held) == 0 {
		return false
	}
	progress := false
	n := 0
	for i := range d.held {
		h := d.held[i]
		release, drop := h.rs == nil, false
		if h.rs != nil {
			if h.rs.detached.Load() {
				switch h.rs.release.Load() {
				case relRelease:
					release = true
				case relDrop:
					drop = true
				}
				// relHold: detach not confirmed yet; keep parked.
			} else {
				release = h.gate <= h.rs.acked.Load()
			}
		}
		switch {
		case drop:
			d.noteHeldDone(h.c)
			progress = true
		case release:
			d.send(h.c, h.frame)
			d.noteHeldDone(h.c)
			progress = true
		default:
			d.held[n] = h
			n++
		}
	}
	for i := n; i < len(d.held); i++ {
		d.held[i] = heldResp{}
	}
	d.held = d.held[:n]
	return progress
}

// handleReplAttach accepts (or refuses) a backup's attach request; the
// protocol runs on its own goroutine, like admin checkpoints.
func (s *Server) handleReplAttach(c transport.Conn, frame []byte) {
	req, err := wire.DecodeReplAttach(frame)
	if err != nil {
		s.stats.DecodeErrors.Add(1)
		return
	}
	go s.startReplication(c, req)
}

func (s *Server) startReplication(c transport.Conn, req wire.ReplAttach) {
	refuse := func(msg string) {
		c.Send(wire.EncodeReplAttachResp(wire.ReplAttachResp{Err: msg})) //nolint:errcheck // conn errors surface on the next poll
	}
	if s.stopping.Load() {
		refuse("server shutting down")
		return
	}
	if s.standby.Load() {
		refuse("server is itself a standby")
		return
	}
	if req.PrimaryID != s.cfg.ID {
		refuse(fmt.Sprintf("wrong primary: this is %q, not %q", s.cfg.ID, req.PrimaryID))
		return
	}
	if rs := s.repl.Load(); rs != nil && !rs.detached.Load() {
		refuse("a replica is already attached")
		return
	}
	s.migMu.Lock()
	migBusy := s.source != nil || len(s.targets) > 0
	s.migMu.Unlock()
	if migBusy {
		refuse("migration in flight; retry")
		return
	}
	if err := s.meta.SetReplica(s.cfg.ID, req.ReplicaAddr); err != nil {
		refuse(err.Error())
		return
	}

	// Freeze checkpoints and compaction for the whole base sync: a checkpoint
	// would seal further versions (confusing the masked pre/post-cut test the
	// scan relies on) and compaction would truncate log the scan still reads.
	s.ckptMu.Lock()
	s.compactMu.Lock()

	rs := &replState{
		s: s, conn: c, backupAddr: req.ReplicaAddr,
		hbEvery:    time.Duration(req.HeartbeatMs) * time.Millisecond,
		ackTimeout: time.Duration(req.AckTimeoutMs) * time.Millisecond,
	}
	if rs.hbEvery <= 0 {
		rs.hbEvery = s.cfg.ReplicaHeartbeatEvery
	}
	if rs.ackTimeout <= 0 {
		rs.ackTimeout = s.cfg.ReplicaAckTimeout
	}
	rs.lastAck.Store(time.Now().UnixNano())
	rs.baseVer.Store(s.store.CurrentVersion())
	// Publish before sealing: dispatchers must observe rs (and start
	// forwarding) no later than they cross the cut.
	s.repl.Store(rs)
	// First replica ever: start renewing the liveness lease that fences
	// promotion while this primary can still reach metadata.
	s.leaseOnce.Do(func() {
		s.wg.Add(1)
		go s.leaseLoop()
	})
	c.Send(wire.EncodeReplAttachResp(wire.ReplAttachResp{OK: true})) //nolint:errcheck // conn errors surface on the next poll

	s.store.SealVersion(func(sealed uint32, cutTail hlog.Address) {
		rs.baseVer.Store(sealed) // == the CurrentVersion read above; no other sealer can run under ckptMu
		s.baseSync(rs, sealed, cutTail)
	})
}

// baseSync streams the sealed pre-cut state to the backup, then hands the
// stream over to the heartbeat loop. Runs once every dispatcher has crossed
// the replication cut; holds ckptMu/compactMu (taken in startReplication)
// until the scan is finished.
func (s *Server) baseSync(rs *replState, sealed uint32, cutTail hlog.Address) {
	scanned := func() bool {
		defer s.compactMu.Unlock()
		defer s.ckptMu.Unlock()

		begin := wire.ReplBaseBegin{Sealed: sealed, CutTail: uint64(cutTail)}
		if _, ok := rs.sendNumbered(func(seq uint64) []byte {
			begin.Seq = seq
			return wire.EncodeReplBaseBegin(begin)
		}); !ok {
			return false
		}

		sess := s.store.NewSession()
		defer sess.Close()
		batch := make([]wire.MigrationRecord, 0, s.cfg.MigrationBatchRecords)
		flush := func() bool {
			if len(batch) == 0 {
				return true
			}
			msg := wire.ReplRecords{Records: batch}
			_, ok := rs.sendNumbered(func(seq uint64) []byte {
				msg.Seq = seq
				return wire.EncodeReplRecords(&msg)
			})
			batch = batch[:0]
			return ok
		}
		skipped, err := sess.ReplScan(sealed, cutTail, func(cr faster.CollectedRecord) bool {
			var flags uint8
			if cr.Tombstone {
				flags |= wire.RecFlagTombstone
			}
			batch = append(batch, wire.MigrationRecord{
				Hash: cr.Hash, Flags: flags, Key: cr.Key, Value: cr.Value,
			})
			if len(batch) >= s.cfg.MigrationBatchRecords {
				return flush()
			}
			return true
		})
		if err != nil {
			s.detachReplica(rs, "base scan: "+err.Error())
			return false
		}
		if !flush() {
			return false
		}

		st := wire.ReplSessTab{Sealed: sealed}
		for id, lastSeq := range s.sessTab.snapshotUpTo(sealed) {
			st.Sessions = append(st.Sessions, wire.ReplSession{ID: id, LastSeq: lastSeq})
		}
		if _, ok := rs.sendNumbered(func(seq uint64) []byte {
			st.Seq = seq
			return wire.EncodeReplSessTab(&st)
		}); !ok {
			return false
		}
		done := wire.ReplBaseDone{SkippedIndirections: uint32(skipped)}
		doneSeq, ok := rs.sendNumbered(func(seq uint64) []byte {
			done.Seq = seq
			return wire.EncodeReplBaseDone(done)
		})
		if !ok {
			return false
		}

		// Wait for the backup to acknowledge the whole base stream before
		// marking it promotable.
		for rs.acked.Load() < doneSeq {
			if rs.detached.Load() || s.stopping.Load() {
				return false
			}
			if time.Duration(time.Now().UnixNano()-rs.lastAck.Load()) > rs.ackTimeout {
				s.detachReplica(rs, "base sync not acknowledged")
				return false
			}
			time.Sleep(time.Millisecond)
		}
		return true
	}()
	if !scanned {
		return
	}
	if err := s.meta.MarkReplicaSynced(s.cfg.ID, rs.backupAddr); err != nil {
		s.detachReplica(rs, "mark synced: "+err.Error())
		return
	}
	rs.synced.Store(true)
	s.heartbeatLoop(rs)
}

// heartbeatLoop keeps the stream's liveness observable while the primary is
// idle and detaches the backup after prolonged ack silence (primary-side
// failure detection — the backup runs the mirror image and promotes).
func (s *Server) heartbeatLoop(rs *replState) {
	t := time.NewTicker(rs.hbEvery)
	defer t.Stop()
	for {
		select {
		case <-s.bgQuit:
			return
		case <-t.C:
		}
		if rs.detached.Load() {
			return
		}
		if time.Duration(time.Now().UnixNano()-rs.lastAck.Load()) > rs.ackTimeout {
			s.detachReplica(rs, "ack timeout")
			return
		}
		hb := wire.ReplHeartbeat{}
		if _, ok := rs.sendNumbered(func(seq uint64) []byte {
			hb.Seq = seq
			return wire.EncodeReplHeartbeat(hb)
		}); !ok {
			return
		}
	}
}

// detachReplica tears the stream down. Held responses do NOT release here:
// a detached backup may still hold a synced, promotable registration (e.g.
// the stream broke on a network partition while both sides can reach
// metadata), and revealing unreplicated acks while it can promote would lose
// acknowledged writes. confirmDetach resolves their fate asynchronously.
func (s *Server) detachReplica(rs *replState, why string) {
	if rs.detached.Swap(true) {
		return
	}
	_ = why // kept for debuggability; detachment reasons surface via metadata state
	if s.stopping.Load() {
		// The stream broke because this server is going down, not because
		// the backup lagged. Leave the metadata registration intact: a
		// synced standby must keep its promotion eligibility across its
		// primary's death (clearing it here would wedge failover — nobody
		// could ever promote). No solo acks can follow a teardown detach,
		// so promotion remains safe.
		rs.release.Store(relRelease)
		return
	}
	s.wg.Add(1)
	go s.confirmDetach(rs) //shadowfax:ignore hotpathalloc detach path: the stream is already broken, throughput no longer matters
}

// confirmDetach decides whether responses held against a broken stream may be
// revealed. Two metadata calls, in order:
//
//  1. ClearReplica(backupAddr) — afterwards the detached backup's
//     registration is gone (or was already replaced by a newer attach), so it
//     can never BECOME promotable again. Idempotent; only transport-level
//     failures retry.
//  2. KeepAlive(self) — success linearizes "this server is still the
//     addressed primary" AFTER step 1: no promotion happened before the
//     registration vanished and none can happen after, so the held acks are
//     safe to release. ErrDeposed means the backup won the race and promoted:
//     this incarnation must discard the held frames (their writes exist only
//     here) and stop serving.
//
// Note ClearReplica success alone proves nothing — it is an idempotent no-op
// when PromoteReplica already consumed the registration.
func (s *Server) confirmDetach(rs *replState) {
	defer s.wg.Done()
	pol := backoff.Policy{Base: 2 * time.Millisecond, Max: 200 * time.Millisecond}
	cleared := false
	for attempt := 0; !s.stopping.Load(); attempt++ {
		if !cleared {
			if err := s.meta.ClearReplica(s.cfg.ID, rs.backupAddr); err != nil {
				time.Sleep(pol.Delay(attempt))
				continue
			}
			cleared = true
		}
		err := s.meta.KeepAlive(s.cfg.ID, s.listener.Addr(), s.cfg.LeaseTTL)
		switch {
		case err == nil:
			rs.release.Store(relRelease)
			return
		case errors.Is(err, metadata.ErrDeposed):
			s.deposed.Store(true)
			rs.release.Store(relDrop)
			return
		case !errors.Is(err, ctlplane.ErrMetaUnavailable):
			// Semantic refusal that is not a deposition (shouldn't happen for
			// KeepAlive on our own id/addr); treat conservatively as deposed
			// rather than risk releasing an unsafe ack.
			s.deposed.Store(true)
			rs.release.Store(relDrop)
			return
		}
		time.Sleep(pol.Delay(attempt))
	}
	// Shutting down mid-protocol: dispatchers are quiescing and the held
	// frames die with the process either way; release so a drain cannot wedge.
	rs.release.Store(relRelease)
}

// leaseLoop renews the primary liveness lease (metadata lease fence) for a
// server that has accepted at least one replica attach. While the lease is
// live PromoteReplica refuses with ErrPrimaryAlive, so a standby that merely
// lost its stream — a partition between primary and standby, not a primary
// death — cannot seize ownership as long as the primary can reach metadata.
// A clean Close releases the lease so ordinary failover pays no TTL latency.
func (s *Server) leaseLoop() {
	defer s.wg.Done()
	ttl := s.cfg.LeaseTTL
	addr := s.listener.Addr()
	for {
		if err := s.meta.KeepAlive(s.cfg.ID, addr, ttl); errors.Is(err, metadata.ErrDeposed) {
			s.deposed.Store(true)
			return
		}
		select {
		case <-s.bgQuit:
			s.meta.KeepAlive(s.cfg.ID, addr, 0) //nolint:errcheck // best-effort release on shutdown
			return
		case <-time.After(backoff.Jittered(ttl/3, 0.2)):
		}
	}
}

// Replicating reports whether a backup is currently attached (tests/ops).
func (s *Server) Replicating() bool {
	rs := s.repl.Load()
	return rs != nil && !rs.detached.Load()
}

// IsStandby reports whether the server is an unpromoted backup.
func (s *Server) IsStandby() bool { return s.standby.Load() }

// ---------------------------------------------------------------------------
// Backup side.

// replicaLoop is the standby's main loop: (re-)attach to the primary, mirror
// its state, and promote when it dies. Exits once promoted or on shutdown.
func (s *Server) replicaLoop() {
	defer s.wg.Done()
	pol := backoff.Policy{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond, Jitter: 0.5}
	attempts := 0
	for !s.stopping.Load() {
		promoted, attached := s.runReplicaSession()
		if promoted {
			s.startBackground()
			return
		}
		if attached {
			attempts = 0 // the primary accepted us; a fresh break retries fast
		} else {
			attempts++
		}
		// Jittered exponential backoff before re-attaching: keeps a dead or
		// refusing primary from being hammered, and staggers competing
		// standbys so they don't probe in lockstep.
		deadline := time.Now().Add(pol.Delay(attempts))
		for time.Now().Before(deadline) && !s.stopping.Load() {
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// runReplicaSession runs one attach→mirror→(promote|teardown) cycle.
// promoted reports that this server took over as primary; attached reports
// that the primary accepted the attach (used to reset the retry backoff).
func (s *Server) runReplicaSession() (promoted, attached bool) {
	primaryID := s.cfg.ID // a standby adopts the primary's identity at boot
	myAddr := s.listener.Addr()

	// NOTE: no state is discarded here. The local store is only fenced out
	// when a fresh base sync actually begins (MsgReplBaseBegin below) — by
	// then the primary's SetReplica has already reset the registration to
	// unsynced, so a partial local store always coincides with an unsynced
	// registration and can never be promoted. Wiping at the top of the cycle
	// instead would let a transient stream hiccup (re-attach refused while
	// the primary's ack timeout hasn't fired) destroy the very state a
	// still-synced registration vouches for.

	// Registration is the PRIMARY's job (its attach handler calls SetReplica
	// when it accepts the stream): registering from here before the dial
	// would replace this standby's own previous — possibly synced —
	// registration with an unsynced one. With the primary already dead that
	// reset is irreversible (no primary means no fresh base sync), and it
	// would permanently destroy the standby's promotion eligibility.
	paddr, err := s.meta.ServerAddr(primaryID)
	if err != nil || paddr == "" {
		return false, false
	}
	conn, err := s.cfg.Transport.Dial(paddr)
	if err != nil {
		return s.considerPromotion(primaryID, myAddr, paddr), false
	}
	defer conn.Close()

	attach := wire.ReplAttach{
		PrimaryID: primaryID, ReplicaAddr: myAddr,
		HeartbeatMs:  uint32(s.cfg.ReplicaHeartbeatEvery / time.Millisecond),
		AckTimeoutMs: uint32(s.cfg.ReplicaAckTimeout / time.Millisecond),
	}
	if err := conn.Send(wire.EncodeReplAttach(attach)); err != nil {
		return s.considerPromotion(primaryID, myAddr, paddr), false
	}

	sess := s.store.NewSession()
	defer sess.Close()
	// Same discipline as a dispatcher: the apply session refreshes at frame
	// boundaries only, so a local cut can never drain while a half-applied
	// batch still stamps the pre-cut version.
	sess.SetManualRefresh(true)

	var (
		baseDone  bool
		buffered  [][]byte // live batches copied aside until the base sync lands
		lastFrame = time.Now()
		idle      = 0
	)
	// Jitter the silence threshold per session so competing standbys (and a
	// fleet of pairs sharing one config) don't declare the primary dead — and
	// storm metadata with promotion attempts — in lockstep.
	failAfter := backoff.Jittered(s.cfg.ReplicaFailoverAfter, 0.2)
	ack := func(seq uint64) bool {
		return conn.Send(wire.EncodeReplAck(wire.ReplAck{Seq: seq})) == nil
	}
	for !s.stopping.Load() {
		frame, ok, err := conn.TryRecv()
		if err != nil {
			return s.considerPromotion(primaryID, myAddr, paddr), attached
		}
		if !ok {
			if time.Since(lastFrame) > failAfter {
				return s.considerPromotion(primaryID, myAddr, paddr), attached
			}
			idle++
			if idle > 64 {
				sess.Guard().Suspend()
				time.Sleep(100 * time.Microsecond)
				sess.Refresh()
			}
			continue
		}
		idle = 0
		lastFrame = time.Now()
		// Frame boundary: the previous frame is fully applied, so crossing
		// the epoch (and adopting any advanced version) is safe here — and
		// keeps local cuts live through sustained streaming.
		sess.Refresh()
		t, perr := wire.PeekType(frame)
		if perr != nil {
			s.stats.DecodeErrors.Add(1)
			continue
		}
		switch t {
		case wire.MsgReplAttachResp:
			r, err := wire.DecodeReplAttachResp(frame)
			if err != nil || !r.OK {
				return false, attached
			}
			attached = true
		case wire.MsgReplBaseBegin:
			b, err := wire.DecodeReplBaseBegin(frame)
			if err != nil {
				s.stats.DecodeErrors.Add(1)
				return false, attached
			}
			// A full base image is coming: fence out everything a previous
			// attach left behind so ConditionalInsert cannot lose to a stale
			// earlier copy. Safe to discard here — and only here — because
			// the primary reset this registration to unsynced when it
			// accepted the attach, so nothing can promote this store until
			// the new base lands in full.
			s.store.AddFence(0, ^uint64(0), s.store.Log().TailAddress())
			// Mirror the primary's post-cut version so records applied here
			// carry comparable stamps (and a later checkpoint of the promoted
			// server seals above everything replicated).
			s.store.AdvanceVersionTo(b.Sealed + 1)
			sess.Refresh()
			if !ack(b.Seq) {
				return false, attached
			}
		case wire.MsgReplRecords:
			m, err := wire.DecodeReplRecords(frame)
			if err != nil {
				s.stats.DecodeErrors.Add(1)
				return false, attached
			}
			for i := range m.Records {
				r := &m.Records[i]
				sess.ConditionalInsert(r.Key, r.Value, r.Flags&wire.RecFlagTombstone != 0, nil)
			}
			// The records alias the frame: drain any pending installs before
			// the next TryRecv invalidates it.
			for sess.Pending() > 0 {
				sess.CompletePending(true)
			}
			if !ack(m.Seq) {
				return false, attached
			}
		case wire.MsgReplSessTab:
			m, err := wire.DecodeReplSessTab(frame)
			if err != nil {
				s.stats.DecodeErrors.Add(1)
				return false, attached
			}
			sessions := make(map[uint64]uint32, len(m.Sessions))
			for _, e := range m.Sessions {
				sessions[e.ID] = e.LastSeq
			}
			s.sessTab.restore(sessions, m.Sealed)
			if !ack(m.Seq) {
				return false, attached
			}
		case wire.MsgReplBaseDone:
			m, err := wire.DecodeReplBaseDone(frame)
			if err != nil {
				s.stats.DecodeErrors.Add(1)
				return false, attached
			}
			baseDone = true
			for _, bf := range buffered {
				s.applyReplBatch(sess, bf)
			}
			buffered = nil
			if !ack(m.Seq) {
				return false, attached
			}
		case wire.MsgReplBatch:
			rb, err := wire.DecodeReplBatch(frame)
			if err != nil {
				s.stats.DecodeErrors.Add(1)
				return false, attached
			}
			if !baseDone {
				buffered = append(buffered, append([]byte(nil), rb.Batch...))
			} else {
				s.applyReplBatch(sess, rb.Batch)
			}
			if !ack(rb.Seq) {
				return false, attached
			}
		case wire.MsgReplHeartbeat:
			hb, err := wire.DecodeReplHeartbeat(frame)
			if err != nil {
				s.stats.DecodeErrors.Add(1)
				continue
			}
			if !ack(hb.Seq) {
				return false, attached
			}
		default:
			// Unknown frame on the replication conn; ignore.
		}
	}
	return false, attached
}

// applyReplBatch re-executes one forwarded client batch against the local
// store — the primary's input stream replayed through the ordinary write
// path. Reads are skipped (they mutate nothing); the session table advances
// exactly like the primary's did so post-failover session recovery reports
// the same durable prefix.
func (s *Server) applyReplBatch(sess *faster.Session, batchFrame []byte) {
	var b wire.RequestBatch
	if err := wire.DecodeRequestBatch(batchFrame, &b); err != nil {
		s.stats.DecodeErrors.Add(1)
		return
	}
	var maxSeq uint32
	seen := false
	for i := range b.Ops {
		op := &b.Ops[i]
		if op.Seq > maxSeq || !seen {
			maxSeq, seen = op.Seq, true
		}
		switch op.Kind {
		case wire.OpUpsert:
			sess.Upsert(op.Key, op.Value, nil)
		case wire.OpDelete:
			sess.Delete(op.Key, nil)
		case wire.OpRMW:
			sess.RMW(op.Key, op.Value, nil)
		}
	}
	// Ops alias the frame: drain before the caller recycles it.
	for sess.Pending() > 0 {
		sess.CompletePending(true)
	}
	if seen {
		s.sessTab.advance(0, b.SessionID, maxSeq, sess.Version())
	}
	sess.Refresh()
}

// considerPromotion is the backup's failure detector verdict: the stream went
// silent (or the dial failed). Probe the primary directly; if it still
// answers, this was a hiccup — tear down and re-attach. If it is dead,
// promote: one metadata linearization point repoints ownership and address,
// and this server starts serving as the primary.
func (s *Server) considerPromotion(primaryID, myAddr, primaryAddr string) bool {
	if s.stopping.Load() {
		return false
	}
	if s.probeAlive(primaryAddr, s.cfg.ReplicaHeartbeatEvery*4) {
		return false
	}
	v, err := s.meta.PromoteReplica(primaryID, myAddr)
	if err != nil {
		// Not synced yet, or a racing incarnation took over; re-attach.
		return false
	}
	s.view.Store(&v)
	s.standby.Store(false)
	return true
}

// probeAlive dials addr and asks for stats; any well-formed answer within the
// timeout means the primary is alive.
func (s *Server) probeAlive(addr string, timeout time.Duration) bool {
	if timeout <= 0 {
		timeout = 100 * time.Millisecond
	}
	c, err := s.cfg.Transport.Dial(addr)
	if err != nil {
		return false
	}
	defer c.Close()
	if err := c.Send(wire.EncodeStatsReq()); err != nil {
		return false
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		frame, ok, err := c.TryRecv()
		if err != nil {
			return false
		}
		if ok {
			t, perr := wire.PeekType(frame)
			return perr == nil && t == wire.MsgStatsResp
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

var errStandby = errors.New("core: server is a standby replica")
