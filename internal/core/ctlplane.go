package core

import (
	"context"
	"time"

	"repro/internal/ctlplane"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Control-plane serving: every server answers MsgMetaReq against its own
// metadata provider — a server backed by the in-process store is thereby a
// designated metadata endpoint that out-of-process servers, clients and the
// CLI share live ownership views through — and balancer-enabled servers
// answer the MsgRebalance / MsgBalanceStatus admin RPCs.

// handleMetaReq serves one metadata-service request inline on the
// dispatcher (local store calls; microseconds).
func (s *Server) handleMetaReq(c transport.Conn, frame []byte) {
	req, err := wire.DecodeMetaReq(frame)
	if err != nil {
		s.stats.DecodeErrors.Add(1)
		return
	}
	resp := ctlplane.ServeMetaReq(s.meta, &req)
	c.Send(wire.EncodeMetaResp(&resp)) //nolint:errcheck // conn errors surface on the next poll
}

// handleRebalanceReq runs one balancer planning pass on its own goroutine
// (the pass issues Stats RPCs — to this server among others — so it must
// not block the dispatcher that would answer them).
func (s *Server) handleRebalanceReq(c transport.Conn) {
	b := s.balancer.Load()
	if b == nil {
		c.Send(wire.EncodeRebalanceResp(wire.RebalanceResp{ //nolint:errcheck // conn errors surface on the next poll
			Err: "balancer not enabled on this server (see AutoScale)",
		}))
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d := b.RunOnce(ctx)
		c.Send(wire.EncodeRebalanceResp(wire.RebalanceResp{ //nolint:errcheck // conn errors surface on the next poll
			OK: true, Acted: d.Acted, Source: d.Source, Target: d.Target,
			RangeStart: d.Range.Start, RangeEnd: d.Range.End, Reason: d.Reason,
		}))
	}()
}

// handleBalanceStatusReq serves the balancer-status snapshot inline.
func (s *Server) handleBalanceStatusReq(c transport.Conn) {
	resp := wire.BalanceStatusResp{}
	if b := s.balancer.Load(); b != nil {
		st := b.Status()
		resp.Enabled = true
		resp.Passes = st.Passes
		resp.Triggered = st.Triggered
		resp.CooldownMs = uint64(st.CooldownRemaining.Milliseconds())
		resp.Last = wire.RebalanceResp{
			OK: true, Acted: st.Last.Acted, Source: st.Last.Source,
			Target: st.Last.Target, RangeStart: st.Last.Range.Start,
			RangeEnd: st.Last.Range.End, Reason: st.Last.Reason,
		}
		for id, rate := range st.Rates {
			resp.Rates = append(resp.Rates, wire.ServerRate{
				ID: id, MilliOps: uint64(rate * 1000),
			})
		}
	}
	// A remote metadata provider that lost its endpoint serves stale cached
	// views; surface how long it has been degraded so operators see the
	// partition from balance-status (zero for the in-process store).
	if dp, ok := s.meta.(interface{ DegradedSince() time.Time }); ok {
		if since := dp.DegradedSince(); !since.IsZero() {
			resp.DegradedMs = uint64(time.Since(since).Milliseconds())
		}
	}
	// The in-flight migration set is cluster state, not balancer state:
	// every server reports it (with per-migration epochs), balancer or not.
	for _, m := range s.meta.Migrations() {
		if !m.InFlight() {
			continue
		}
		resp.InFlight = append(resp.InFlight, wire.MetaMigration{
			ID: m.ID, Epoch: m.Epoch, Source: m.Source, Target: m.Target,
			RangeStart: m.Range.Start, RangeEnd: m.Range.End,
			SourceDone: m.SourceDone, TargetDone: m.TargetDone,
		})
	}
	c.Send(wire.EncodeBalanceStatusResp(&resp)) //nolint:errcheck // conn errors surface on the next poll
}

// loadRingSlots is each dispatcher's sampled-hash ring capacity. With
// 1-in-8 sampling a ring covers the last ~1k operations the thread served;
// hot keys recur proportionally to their load, so the ring approximates the
// thread's load distribution over the hash space — the balancer's input for
// both the imbalance split and the split-point choice.
const loadRingSlots = 128

// recordLoad samples every 8th operation's key hash into the dispatcher's
// ring. Slots are atomics only because the balancer (another goroutine)
// reads them; the dispatcher is the sole writer.
func (d *dispatcher) recordLoad(h uint64) {
	d.loadN++
	if d.loadN&7 != 0 {
		return
	}
	d.loadRing[(d.loadN>>3)%loadRingSlots].Store(h)
}

// sampleLoad gathers the dispatchers' rings into one snapshot, capped at
// max entries (zero slots — not yet written — are skipped).
func (s *Server) sampleLoad(max int) []uint64 {
	var out []uint64
	for _, d := range s.threads {
		for i := range d.loadRing {
			if h := d.loadRing[i].Load(); h != 0 {
				out = append(out, h)
				if len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}
