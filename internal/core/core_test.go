package core

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

// cluster bundles the shared fixtures of an integration test.
type cluster struct {
	meta *metadata.Store
	tr   *transport.InMem
	tier *storage.SharedTier
}

func newCluster() *cluster {
	return &cluster{
		meta: metadata.NewStore(),
		tr:   transport.NewInMem(transport.Free),
		tier: storage.NewSharedTier(storage.LatencyModel{}),
	}
}

// newServer boots a server with a small memory budget (4 KiB pages, 16
// frames).
func (cl *cluster) newServer(t testing.TB, id string, threads int, ranges ...metadata.HashRange) *Server {
	t.Helper()
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	s, err := NewServer(ServerConfig{
		ID: id, Addr: id, Threads: threads,
		Transport: cl.tr, Meta: cl.meta,
		Store: faster.Config{
			IndexBuckets: 1 << 10,
			Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
				Device: dev, Tier: cl.tier, LogID: id},
		},
		SampleDuration: 10 * time.Millisecond,
	}, ranges...)
	if err != nil {
		t.Fatal(err)
	}
	cl.meta.SetServerAddr(id, s.Addr())
	t.Cleanup(func() { s.Close(); dev.Close() })
	return s
}

func (cl *cluster) newClient(t testing.TB) *client.Thread {
	t.Helper()
	ct, err := client.NewThread(client.Config{
		Transport: cl.tr, Meta: cl.meta, BatchOps: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ct.Close)
	return ct
}

// newAdmin builds a control-plane handle over the cluster fixtures.
func (cl *cluster) newAdmin() *client.Admin {
	return client.NewAdmin(cl.tr, cl.meta)
}

func d8(n uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, n)
	return b
}

func TestClientServerBasicOps(t *testing.T) {
	cl := newCluster()
	cl.newServer(t, "s1", 2, metadata.FullRange)
	ct := cl.newClient(t)

	var readVal []byte
	var readStatus wire.ResultStatus = 255
	ct.Upsert([]byte("alpha"), []byte("one"), nil)
	ct.Read([]byte("alpha"), func(st wire.ResultStatus, v []byte) {
		readStatus = st
		readVal = append([]byte(nil), v...)
	})
	if !ct.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	if readStatus != wire.StatusOK || string(readVal) != "one" {
		t.Fatalf("read: %v %q", readStatus, readVal)
	}

	// Missing key.
	missing := wire.ResultStatus(255)
	ct.Read([]byte("nope"), func(st wire.ResultStatus, _ []byte) { missing = st })
	ct.Drain(5 * time.Second)
	if missing != wire.StatusNotFound {
		t.Fatalf("missing key: %v", missing)
	}

	// Delete.
	ct.Delete([]byte("alpha"), nil)
	gone := wire.ResultStatus(255)
	ct.Read([]byte("alpha"), func(st wire.ResultStatus, _ []byte) { gone = st })
	ct.Drain(5 * time.Second)
	if gone != wire.StatusNotFound {
		t.Fatalf("deleted key: %v", gone)
	}
}

func TestClientServerRMWCounters(t *testing.T) {
	cl := newCluster()
	cl.newServer(t, "s1", 2, metadata.FullRange)
	ct := cl.newClient(t)

	key := ycsb.KeyBytes(7)
	const n = 500
	for i := 0; i < n; i++ {
		ct.RMW(key, d8(1), nil)
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	var got uint64
	ct.Read(key, func(st wire.ResultStatus, v []byte) {
		if st == wire.StatusOK && len(v) >= 8 {
			got = binary.LittleEndian.Uint64(v)
		}
	})
	ct.Drain(5 * time.Second)
	if got != n {
		t.Fatalf("counter = %d, want %d (lost or duplicated RMWs)", got, n)
	}
}

func TestTwoServersHashPartitioned(t *testing.T) {
	cl := newCluster()
	mid := uint64(1) << 63
	cl.newServer(t, "s1", 2, metadata.HashRange{Start: 0, End: mid})
	cl.newServer(t, "s2", 2, metadata.HashRange{Start: mid, End: ^uint64(0)})
	ct := cl.newClient(t)

	const n = 300
	for i := uint64(0); i < n; i++ {
		ct.Upsert(ycsb.KeyBytes(i), d8(i), nil)
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	bad := 0
	for i := uint64(0); i < n; i++ {
		want := i
		ct.Read(ycsb.KeyBytes(i), func(st wire.ResultStatus, v []byte) {
			if st != wire.StatusOK || binary.LittleEndian.Uint64(v) != want {
				bad++
			}
		})
	}
	ct.Drain(10 * time.Second)
	if bad != 0 {
		t.Fatalf("%d keys wrong across partitioned servers", bad)
	}
	// Both servers must actually have served traffic.
	st1 := clusterServerOps(t, cl, "s1")
	st2 := clusterServerOps(t, cl, "s2")
	if st1 == 0 || st2 == 0 {
		t.Fatalf("traffic not partitioned: s1=%d s2=%d", st1, st2)
	}
}

var serversByID = map[string]*Server{}

func clusterServerOps(t *testing.T, cl *cluster, id string) uint64 {
	t.Helper()
	s, ok := serversByID[t.Name()+"/"+id]
	if !ok {
		return 1 // fallback: can't inspect
	}
	return s.Stats().OpsCompleted.Load()
}

func TestViewRejectionAndReissue(t *testing.T) {
	cl := newCluster()
	s1 := cl.newServer(t, "s1", 2, metadata.FullRange)
	ct := cl.newClient(t)

	// Prime a session (caches view 1).
	ct.Upsert(ycsb.KeyBytes(0), d8(0), nil)
	ct.Drain(5 * time.Second)

	// Bump the server's view out from under the client by migrating a
	// sliver of hash space to a second server.
	s2 := cl.newServer(t, "s2", 2)
	_ = s2
	if _, err := s1.StartMigration("s2", metadata.HashRange{Start: 0, End: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	// Wait until the source adopts its new view (post-Transfer).
	deadline := time.Now().Add(5 * time.Second)
	for s1.CurrentView().Number < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s1.CurrentView().Number < 2 {
		t.Fatal("source never adopted the new view")
	}

	// Old-view batches must be rejected and transparently reissued.
	ok := 0
	const n = 100
	for i := uint64(0); i < n; i++ {
		ct.RMW(ycsb.KeyBytes(i), d8(1), func(st wire.ResultStatus, _ []byte) {
			if st == wire.StatusOK {
				ok++
			}
		})
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatalf("drain timed out; outstanding=%d", ct.Outstanding())
	}
	if ok != n {
		t.Fatalf("only %d/%d ops completed after view change", ok, n)
	}
	if ct.Stats().BatchesRejected == 0 {
		t.Fatal("no batch was ever rejected; view validation untested")
	}
}

// loadKeys writes n keys through a client and waits for them.
func loadKeys(t *testing.T, ct *client.Thread, n uint64) {
	t.Helper()
	for i := uint64(0); i < n; i++ {
		ct.RMW(ycsb.KeyBytes(i), d8(i+1), nil)
		if ct.Outstanding() > 2048 {
			ct.Poll()
		}
	}
	if !ct.Drain(30 * time.Second) {
		t.Fatal("load did not drain")
	}
}

// verifyKeys checks counters i -> i+1 for all keys, tolerating keys served
// by either server after migration.
func verifyKeys(t *testing.T, ct *client.Thread, n uint64) {
	t.Helper()
	bad := 0
	var firstBad uint64
	for i := uint64(0); i < n; i++ {
		i := i
		ct.Read(ycsb.KeyBytes(i), func(st wire.ResultStatus, v []byte) {
			if st != wire.StatusOK || len(v) < 8 || binary.LittleEndian.Uint64(v) != i+1 {
				if bad == 0 {
					firstBad = i
				}
				bad++
			}
		})
		if ct.Outstanding() > 2048 {
			ct.Poll()
		}
	}
	if !ct.Drain(30 * time.Second) {
		t.Fatalf("verify did not drain; outstanding=%d", ct.Outstanding())
	}
	if bad != 0 {
		t.Fatalf("%d keys wrong after migration (first: %d)", bad, firstBad)
	}
}

func TestMigrationAllInMemory(t *testing.T) {
	cl := newCluster()
	src := cl.newServer(t, "src", 2, metadata.FullRange)
	cl.newServer(t, "dst", 2)
	ct := cl.newClient(t)

	const n = 400
	loadKeys(t, ct, n)

	// Migrate 25% of the hash space.
	rng := metadata.HashRange{Start: 0, End: 1 << 62}
	if _, err := src.StartMigration("dst", rng); err != nil {
		t.Fatal(err)
	}
	waitMigrationsDone(t, cl.meta, 10*time.Second)

	verifyKeys(t, ct, n)
	rep := src.LastMigrationReport()
	if rep.RecordsSent == 0 {
		t.Fatal("migration sent no records")
	}
	if rep.Finished.IsZero() || rep.OwnershipAt.IsZero() {
		t.Fatalf("incomplete report: %+v", rep)
	}
}

func TestMigrationWritesDuringMigration(t *testing.T) {
	cl := newCluster()
	src := cl.newServer(t, "src", 2, metadata.FullRange)
	cl.newServer(t, "dst", 2)
	ct := cl.newClient(t)

	const n = 300
	loadKeys(t, ct, n)

	rng := metadata.HashRange{Start: 0, End: 1 << 63}
	if _, err := src.StartMigration("dst", rng); err != nil {
		t.Fatal(err)
	}
	// Keep incrementing all keys while the migration runs.
	const rounds = 5
	for r := 0; r < rounds; r++ {
		for i := uint64(0); i < n; i++ {
			ct.RMW(ycsb.KeyBytes(i), d8(1000), nil)
			if ct.Outstanding() > 1024 {
				ct.Poll()
			}
		}
	}
	if !ct.Drain(30 * time.Second) {
		t.Fatalf("in-migration writes did not drain; outstanding=%d", ct.Outstanding())
	}
	waitMigrationsDone(t, cl.meta, 15*time.Second)

	// Every key must now be (i+1) + rounds*1000: no lost updates across the
	// ownership transfer.
	bad := 0
	for i := uint64(0); i < n; i++ {
		want := (i + 1) + rounds*1000
		ct.Read(ycsb.KeyBytes(i), func(st wire.ResultStatus, v []byte) {
			if st != wire.StatusOK || binary.LittleEndian.Uint64(v) != want {
				bad++
			}
		})
	}
	ct.Drain(30 * time.Second)
	if bad != 0 {
		t.Fatalf("%d keys lost updates across migration", bad)
	}
}

func TestMigrationWithIndirectionRecords(t *testing.T) {
	cl := newCluster()
	src := cl.newServer(t, "src", 2, metadata.FullRange)
	dst := cl.newServer(t, "dst", 2)
	ct := cl.newClient(t)

	// Enough data to spill the source's log to "SSD" (64 KiB budget).
	const n = 2500
	loadKeys(t, ct, n)
	if src.Store().Log().SafeHeadAddress() == 0 {
		t.Fatal("source log never spilled; indirection path not exercised")
	}

	rng := metadata.HashRange{Start: 0, End: 1 << 63}
	if _, err := src.StartMigration("dst", rng); err != nil {
		t.Fatal(err)
	}
	waitMigrationsDone(t, cl.meta, 20*time.Second)

	rep := src.LastMigrationReport()
	if rep.IndirectionsSent == 0 {
		t.Fatal("no indirection records sent despite on-SSD chains")
	}
	// All keys readable; cold ones resolve through the shared tier.
	verifyKeys(t, ct, n)
	if dst.Stats().RemoteFetches.Load() == 0 {
		t.Fatal("target never fetched from the shared tier")
	}
}

func TestMigrationRocksteadyBaseline(t *testing.T) {
	cl := newCluster()
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	src, err := NewServer(ServerConfig{
		ID: "src", Addr: "src", Threads: 2,
		Transport: cl.tr, Meta: cl.meta,
		Store: faster.Config{
			IndexBuckets: 1 << 10,
			Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
				Device: dev, Tier: cl.tier, LogID: "src"},
		},
		SampleDuration: 10 * time.Millisecond,
		Rocksteady:     true,
	}, metadata.FullRange)
	if err != nil {
		t.Fatal(err)
	}
	cl.meta.SetServerAddr("src", src.Addr())
	t.Cleanup(func() { src.Close(); dev.Close() })
	cl.newServer(t, "dst", 2)
	ct := cl.newClient(t)

	const n = 2500
	loadKeys(t, ct, n)
	if src.Store().Log().SafeHeadAddress() == 0 {
		t.Fatal("source log never spilled")
	}
	rng := metadata.HashRange{Start: 0, End: 1 << 63}
	if _, err := src.StartMigration("dst", rng); err != nil {
		t.Fatal(err)
	}
	waitMigrationsDone(t, cl.meta, 30*time.Second)

	rep := src.LastMigrationReport()
	if !rep.Rocksteady {
		t.Fatal("report not marked Rocksteady")
	}
	if rep.IndirectionsSent != 0 {
		t.Fatal("Rocksteady mode must not emit indirection records")
	}
	if rep.DiskScanRecords == 0 {
		t.Fatal("Rocksteady disk scan shipped nothing")
	}
	verifyKeys(t, ct, n)
}

func TestSampledRecordsShipAtTransfer(t *testing.T) {
	cl := newCluster()
	src := cl.newServer(t, "src", 2, metadata.FullRange)
	cl.newServer(t, "dst", 2)
	ct := cl.newClient(t)

	const n = 200
	loadKeys(t, ct, n)

	// Touch a hot subset continuously while migration starts so sampling
	// copies them to the tail.
	stopTouch := make(chan struct{})
	touchDone := make(chan struct{})
	go func() {
		defer close(touchDone)
		ct2 := cl.newClient(t)
		for {
			select {
			case <-stopTouch:
				return
			default:
			}
			for i := uint64(0); i < 20; i++ {
				ct2.RMW(ycsb.KeyBytes(i), d8(0), nil)
			}
			ct2.Flush()
			ct2.Poll()
			time.Sleep(time.Millisecond)
		}
	}()

	// Let the toucher warm up so accesses overlap the Sampling window.
	time.Sleep(20 * time.Millisecond)
	rng := metadata.FullRange
	if _, err := src.StartMigration("dst", rng); err != nil {
		t.Fatal(err)
	}
	waitMigrationsDone(t, cl.meta, 15*time.Second)
	close(stopTouch)
	<-touchDone

	rep := src.LastMigrationReport()
	if rep.SampledRecords == 0 {
		t.Fatal("no sampled hot records shipped at ownership transfer")
	}
}

func waitMigrationsDone(t *testing.T, meta *metadata.Store, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		pending := 0
		for _, id := range meta.Servers() {
			pending += len(meta.PendingMigrationsFor(id))
		}
		if pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("migration still pending after %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHashValidationBaseline(t *testing.T) {
	cl := newCluster()
	s := cl.newServer(t, "s1", 2, metadata.FullRange)
	s.SetHashValidation(true)
	ct := cl.newClient(t)

	const n = 200
	for i := uint64(0); i < n; i++ {
		ct.RMW(ycsb.KeyBytes(i), d8(1), nil)
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatal("drain under hash validation timed out")
	}
	if s.Stats().BatchesAccepted.Load() == 0 {
		t.Fatal("no batches accepted under hash validation")
	}
	s.SetHashValidation(false)
}

func TestCompactedRecordRelocation(t *testing.T) {
	// §3.3.3 receiver path: a compacted record arriving at the owner is
	// installed only if an indirection record covers it.
	cl := newCluster()
	srv := cl.newServer(t, "s1", 2, metadata.FullRange)
	ct := cl.newClient(t)
	ct.Upsert([]byte("existing"), []byte("local"), nil)
	ct.Drain(5 * time.Second)

	// Without an indirection record the relocated record is discarded.
	conn, err := cl.tr.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := wire.MigrationMsg{Type: wire.MsgCompacted,
		Records: []wire.MigrationRecord{{
			Hash: faster.HashOf([]byte("existing")),
			Key:  []byte("existing"), Value: []byte("stale-from-compaction")}}}
	conn.Send(wire.EncodeMigrationMsg(&msg))
	time.Sleep(100 * time.Millisecond)

	got := ""
	ct.Read([]byte("existing"), func(st wire.ResultStatus, v []byte) { got = string(v) })
	ct.Drain(5 * time.Second)
	if got != "local" {
		t.Fatalf("compacted record overwrote local value: %q", got)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	cl := newCluster()
	s := cl.newServer(t, "s1", 1, metadata.FullRange)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputSmoke(t *testing.T) {
	// A short YCSB-F run end to end; guards against pathological slowness.
	cl := newCluster()
	s := cl.newServer(t, "s1", 2, metadata.FullRange)
	ct := cl.newClient(t)

	const keys = 1000
	loadKeys(t, ct, keys)

	z := ycsb.NewZipfian(keys, ycsb.DefaultTheta, 42)
	start := time.Now()
	const ops = 20000
	for i := 0; i < ops; i++ {
		ct.RMW(ycsb.KeyBytes(z.Next()), d8(1), nil)
		if ct.Outstanding() > 4096 {
			ct.Poll()
		}
	}
	if !ct.Drain(30 * time.Second) {
		t.Fatal("smoke run did not drain")
	}
	el := time.Since(start)
	rate := float64(ops) / el.Seconds()
	t.Logf("YCSB-F smoke: %d ops in %v (%.0f ops/s), server completed %d",
		ops, el, rate, s.Stats().OpsCompleted.Load())
	if rate < 1000 {
		t.Fatalf("pathologically slow: %.0f ops/s", rate)
	}
}

func TestMain(m *testing.M) {
	fmt.Print() // keep fmt imported for debug convenience
	m.Run()
}

// TestDecodeErrorsCounted verifies undecodable frames are dropped but
// visible: every decode-failure return path bumps Stats().DecodeErrors.
func TestDecodeErrorsCounted(t *testing.T) {
	cl := newCluster()
	s := cl.newServer(t, "s1", 1, metadata.FullRange)
	conn, err := cl.tr.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	bad := [][]byte{
		{},                                   // empty: PeekType fails
		{0xFF},                               // unknown type is routed nowhere but decodes: PeekType ok
		{byte(wire.MsgRequestBatch), 1},      // truncated request batch
		{byte(wire.MsgMigrate), 9},           // truncated migrate command
		{byte(wire.MsgTransferOwnership), 2}, // truncated migration msg
		{byte(wire.MsgSessionRecover)},       // truncated session recover
	}
	want := uint64(0)
	for _, f := range bad {
		if err := conn.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	// Empty, truncated batch, migrate, migration msg, session recover = 5
	// (the unknown-type frame decodes its type byte fine and is ignored).
	want = 5
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().DecodeErrors.Load() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.Stats().DecodeErrors.Load(); got != want {
		t.Fatalf("DecodeErrors = %d, want %d", got, want)
	}

	// A well-formed batch still works on the same conn afterwards.
	req := wire.RequestBatch{View: s.CurrentView().Number, SessionID: 1,
		Ops: []wire.Op{{Kind: wire.OpUpsert, Seq: 1, Key: []byte("k"), Value: []byte("v")}}}
	if err := conn.Send(wire.AppendRequestBatch(nil, &req)); err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		frame, ok, err := conn.TryRecv()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		var resp wire.ResponseBatch
		if err := wire.DecodeResponseBatch(frame, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Rejected || len(resp.Results) != 1 {
			t.Fatalf("unexpected response: rejected=%v results=%d", resp.Rejected, len(resp.Results))
		}
		return
	}
	t.Fatal("no response to valid batch after decode errors")
}

// TestSessionTableShardMerge pins the sharded table's merge semantics: a
// session that reconnects onto a different dispatcher leaves an older entry
// in its previous shard, and all readers resolve by maximum sequence.
func TestSessionTableShardMerge(t *testing.T) {
	tab := newSessionTable(3)
	tab.advance(0, 42, 10, 1)
	tab.advance(1, 42, 25, 2) // same session, new dispatcher, newer version

	if got, ok := tab.get(42); !ok || got != 25 {
		t.Fatalf("get(42) = %d,%v want 25,true", got, ok)
	}
	if snap := tab.snapshotUpTo(2); snap[42] != 25 {
		t.Fatalf("snapshotUpTo(2)[42] = %d, want 25", snap[42])
	}
	// Sealing at version 1 covers only the old shard's prefix.
	if snap := tab.snapshotUpTo(1); snap[42] != 10 {
		t.Fatalf("snapshotUpTo(1)[42] = %d, want 10", snap[42])
	}

	// restore replaces every shard's contents.
	tab.restore(map[uint64]uint32{7: 99}, 5)
	if got, ok := tab.get(7); !ok || got != 99 {
		t.Fatalf("get(7) after restore = %d,%v want 99,true", got, ok)
	}
	if _, ok := tab.get(42); ok {
		t.Fatal("session 42 survived restore")
	}
}
