package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/wire"
)

// durableServerConfig builds a server whose log and checkpoint devices are
// caller-owned, so they survive a simulated crash (Server.Close) and can back
// a recovered instance.
func durableServerConfig(cl *cluster, id string, logDev, ckptDev storage.Device, recover bool) ServerConfig {
	return ServerConfig{
		ID: id, Addr: id, Threads: 2,
		Transport: cl.tr, Meta: cl.meta,
		Store: faster.Config{
			IndexBuckets: 1 << 10,
			Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
				Device: logDev, LogID: id},
		},
		CheckpointDevice: ckptDev,
		Recover:          recover,
	}
}

// TestCrashRecoveryEndToEnd exercises the whole durability stack: a client
// loads data, a checkpoint is taken through the wire admin message, the
// server "crashes" (process state gone; devices survive), a new server
// recovers from the image, and the client resumes its session — every
// pre-checkpoint key is served, in-flight post-checkpoint operations are
// replayed exactly once, and the counter RMW stream lands at the exact value.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	cl := newCluster()
	logDev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer logDev.Close()
	ckptDev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	defer ckptDev.Close()

	srv1, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, false),
		metadata.FullRange)
	if err != nil {
		t.Fatal(err)
	}
	cl.meta.SetServerAddr("s1", srv1.Addr())
	ct := cl.newClient(t)

	// Phase 1: a durable prefix that spills past memory (16 frames of 4 KiB
	// hold ~1.3k of these records), plus an RMW counter.
	const durableKeys = 3000
	const preDeltas = 10
	for i := 0; i < durableKeys; i++ {
		ct.Upsert(rkey(i), rval(i), nil)
	}
	for i := 0; i < preDeltas; i++ {
		ct.RMW([]byte("counter"), d8(1), nil)
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatal("drain before checkpoint timed out")
	}

	// Checkpoint through the admin message, like an operator would.
	resp, err := cl.newAdmin().Checkpoint(context.Background(), "s1")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Tail == 0 {
		t.Fatalf("checkpoint response: %+v", resp)
	}
	if got := srv1.Stats().Checkpoints.Load(); got != 1 {
		t.Fatalf("server counted %d checkpoints, want 1", got)
	}
	preCrashView := srv1.CurrentView().Number

	// Phase 2: operations issued after the checkpoint and never acknowledged
	// (flushed to the wire, responses never polled). CPR rolls the store
	// back to the cut; these must come back via client session replay.
	const replayKeys = 80
	const postDeltas = 5
	for i := 0; i < replayKeys; i++ {
		ct.Upsert(rkey(durableKeys+i), rval(durableKeys+i), nil)
	}
	for i := 0; i < postDeltas; i++ {
		ct.RMW([]byte("counter"), d8(1), nil)
	}
	ct.Flush()
	if out := ct.Outstanding(); out != replayKeys+postDeltas {
		t.Fatalf("outstanding before crash: %d, want %d", out, replayKeys+postDeltas)
	}

	// Crash: all process state is gone; logDev and ckptDev survive.
	srv1.Close()

	srv2, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, true))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl.meta.SetServerAddr("s1", srv2.Addr())

	if got := srv2.CurrentView().Number; got != preCrashView {
		t.Fatalf("recovered view number %d, want %d", got, preCrashView)
	}

	// Client-assisted session recovery: reconnect, learn the durable prefix,
	// replay past it.
	if err := ct.RecoverSessions(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatalf("drain after recovery timed out (%d outstanding)", ct.Outstanding())
	}

	// Every key — durable prefix and replayed suffix — must be served.
	// Reads are issued in bulk and drained once; the pipeline keeps the
	// recovered server's pending-I/O path busy, which is the point.
	type readRes struct {
		st  wire.ResultStatus
		val []byte
	}
	results := make([]readRes, durableKeys+replayKeys)
	for i := 0; i < durableKeys+replayKeys; i++ {
		i := i
		results[i].st = 255
		ct.Read(rkey(i), func(s wire.ResultStatus, v []byte) {
			results[i] = readRes{st: s, val: append([]byte(nil), v...)}
		})
	}
	if !ct.Drain(30 * time.Second) {
		t.Fatalf("verification drain timed out (%d outstanding)", ct.Outstanding())
	}
	for i, r := range results {
		if r.st != wire.StatusOK || string(r.val) != string(rval(i)) {
			t.Fatalf("key %d after recovery: %v %q want %q", i, r.st, r.val, rval(i))
		}
	}
	// The counter must be exactly pre+post: pre-checkpoint deltas recovered
	// from the image, post-checkpoint deltas replayed exactly once.
	got, st := clientGet(t, ct, []byte("counter"))
	if st != wire.StatusOK || len(got) != 8 {
		t.Fatalf("counter after recovery: %v %q", st, got)
	}
	if n := leU64(got); n != preDeltas+postDeltas {
		t.Fatalf("counter after recovery: %d, want %d", n, preDeltas+postDeltas)
	}

	// The recovered server is a normal server: it accepts new writes and can
	// checkpoint again.
	ct.Upsert([]byte("post-recovery"), []byte("alive"), nil)
	if !ct.Drain(5 * time.Second) {
		t.Fatal("post-recovery write timed out")
	}
	if _, err := cl.newAdmin().Checkpoint(context.Background(), "s1"); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverUnknownSessionReplaysAll: a session the recovered image has
// never seen (all its batches arrived after the checkpoint) must replay every
// in-flight operation.
func TestRecoverUnknownSessionReplaysAll(t *testing.T) {
	cl := newCluster()
	logDev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer logDev.Close()
	ckptDev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	defer ckptDev.Close()

	srv1, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, false),
		metadata.FullRange)
	if err != nil {
		t.Fatal(err)
	}
	cl.meta.SetServerAddr("s1", srv1.Addr())

	// Checkpoint an empty store via the server API (no sessions yet).
	if _, err := cl.newAdmin().Checkpoint(context.Background(), "s1"); err != nil {
		t.Fatal(err)
	}

	// A brand-new client session issues writes that never get acknowledged.
	ct := cl.newClient(t)
	const n = 25
	for i := 0; i < n; i++ {
		ct.Upsert(rkey(i), rval(i), nil)
	}
	ct.Flush()
	srv1.Close()

	srv2, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, true))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl.meta.SetServerAddr("s1", srv2.Addr())

	if err := ct.RecoverSessions(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatal("drain after recovery timed out")
	}
	for i := 0; i < n; i++ {
		got, st := clientGet(t, ct, rkey(i))
		if st != wire.StatusOK || string(got) != string(rval(i)) {
			t.Fatalf("replayed key %d: %v %q", i, st, got)
		}
	}
}

// TestFreshStartRefusesCommittedImages: starting a non-recovery server over
// a checkpoint device that holds a committed image must fail — appending a
// fresh log under the old image would make a later recovery serve garbage.
func TestFreshStartRefusesCommittedImages(t *testing.T) {
	cl := newCluster()
	logDev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer logDev.Close()
	ckptDev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	defer ckptDev.Close()

	srv1, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, false),
		metadata.FullRange)
	if err != nil {
		t.Fatal(err)
	}
	cl.meta.SetServerAddr("s1", srv1.Addr())
	if _, err := srv1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	if _, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, false),
		metadata.FullRange); err == nil {
		t.Fatal("fresh start over committed images was allowed")
	}
	// Recovery over the same devices is the sanctioned path.
	srv2, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, true))
	if err != nil {
		t.Fatal(err)
	}
	srv2.Close()
}

// TestCheckpointWithoutDeviceFails: the admin message on a memory-only
// server reports failure instead of pretending to be durable.
func TestCheckpointWithoutDeviceFails(t *testing.T) {
	cl := newCluster()
	cl.newServer(t, "s1", 2, metadata.FullRange)
	resp, err := cl.newAdmin().Checkpoint(context.Background(), "s1")
	if err == nil {
		t.Fatalf("checkpoint on memory-only server succeeded: %+v", resp)
	}
}

// TestPeriodicCheckpointing: a server with CheckpointEvery takes images on
// its own and the latest one recovers cleanly.
func TestPeriodicCheckpointing(t *testing.T) {
	cl := newCluster()
	logDev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer logDev.Close()
	ckptDev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	defer ckptDev.Close()

	cfg := durableServerConfig(cl, "s1", logDev, ckptDev, false)
	cfg.CheckpointEvery = 20 * time.Millisecond
	srv1, err := NewServer(cfg, metadata.FullRange)
	if err != nil {
		t.Fatal(err)
	}
	cl.meta.SetServerAddr("s1", srv1.Addr())
	ct := cl.newClient(t)

	const n = 500
	for i := 0; i < n; i++ {
		ct.Upsert(rkey(i), rval(i), nil)
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv1.Stats().Checkpoints.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoints never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv1.Close()

	srv2, err := NewServer(durableServerConfig(cl, "s1", logDev, ckptDev, true))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl.meta.SetServerAddr("s1", srv2.Addr())
	if err := ct.RecoverSessions(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatal("drain after recovery timed out")
	}
	for i := 0; i < n; i++ {
		got, st := clientGet(t, ct, rkey(i))
		if st != wire.StatusOK || string(got) != string(rval(i)) {
			t.Fatalf("key %d after periodic-checkpoint recovery: %v %q", i, st, got)
		}
	}
}

func rkey(i int) []byte { return []byte(fmt.Sprintf("rec-key-%06d", i)) }
func rval(i int) []byte { return []byte(fmt.Sprintf("rec-val-%06d", i)) }

// clientGet reads one key through the client and drains until the result
// arrives.
func clientGet(t *testing.T, ct *client.Thread, key []byte) ([]byte, wire.ResultStatus) {
	t.Helper()
	var val []byte
	st := wire.ResultStatus(255)
	ct.Read(key, func(s wire.ResultStatus, v []byte) {
		st = s
		val = append([]byte(nil), v...)
	})
	if !ct.Drain(10 * time.Second) {
		t.Fatal("read drain timed out")
	}
	return val, st
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
