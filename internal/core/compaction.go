package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file is the server's space-management subsystem (§3.3.3): lazy log
// compaction over the HybridLog's stable prefix, scheduled by a watermark
// policy, with the Shadowfax twist that records in hash ranges this server no
// longer owns are relocated over the wire to their current owner (which is
// how indirection records between logs get cleaned up lazily after
// scale-out). After each pass the log's begin address has advanced and the
// subsystem reclaims the device (and shared-tier) space below it — clamped so
// recovery always keeps every byte the latest committed checkpoint image
// still references.

// CompactStats reports what one server-level compaction pass did.
type CompactStats struct {
	faster.CompactStats

	// Begin is the log's begin address after the pass.
	Begin hlog.Address
	// ReclaimedBytes / TierReclaimed are the storage actually freed.
	ReclaimedBytes uint64
	TierReclaimed  uint64
	// Owners is how many distinct current owners received relocated records.
	Owners int
	// Took is the pass's wall-clock duration.
	Took time.Duration
}

// ErrCompactionBusy is returned when a migration is in flight: compaction
// and migration both rewrite chain heads and ownership is in motion, so
// passes wait for the protocol to finish (the paper runs compaction lazily
// in the background for exactly this reason).
var ErrCompactionBusy = errors.New("core: migration in flight; compaction deferred")

// relocAckTimeout bounds how long a pass waits for relocation targets to
// acknowledge MsgCompacted frames before storage below the compacted prefix
// is reclaimed. Without the wait, a target could still be chasing an
// indirection record into the about-to-be-truncated shared-tier prefix.
const relocAckTimeout = 5 * time.Second

// Compact runs one compaction pass over the stable prefix: live owned
// records are copied forward to the tail, dead records dropped, disowned
// records shipped to their current owners (MsgCompacted), the begin address
// advanced, and device/shared-tier space reclaimed up to the checkpoint
// clamp. It blocks until the pass completes and must not be called from a
// dispatcher goroutine (record copy-forward participates in epoch cuts).
// Concurrent calls serialize; a pass during an active migration returns
// ErrCompactionBusy.
func (s *Server) Compact() (CompactStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	// Checked under compactMu: Close's teardown handshake also takes it, so a
	// pass that sees stopping==false finishes before the store closes.
	if s.stopping.Load() {
		return CompactStats{}, errors.New("core: server closing")
	}
	// Mutual exclusion with outbound migration, both directions: a pass must
	// not start while this server is migrating, and StartMigration must not
	// begin mid-pass (it would ship records the pass is concurrently
	// relocating and read device pages the pass is about to reclaim). Both
	// sides coordinate under migMu, so the check-and-set is atomic.
	s.migMu.Lock()
	if s.source != nil || len(s.targets) != 0 {
		s.migMu.Unlock()
		return CompactStats{}, ErrCompactionBusy
	}
	s.compactPass = true
	s.migMu.Unlock()
	defer func() {
		s.migMu.Lock()
		s.compactPass = false
		s.migMu.Unlock()
	}()

	start := time.Now()
	view := s.view.Load()
	rel := newRelocator(s)

	sess := s.compactSession()
	lg := s.store.Log()
	st, end, cerr := sess.CompactScan(lg.SafeHeadAddress(),
		func(hash uint64) bool { return view.Owns(hash) }, rel.add)
	s.releaseCompactSession(sess)

	out := CompactStats{CompactStats: st, Begin: lg.BeginAddress()}
	if cerr != nil {
		// The pass is already doomed: don't ship (or ack-wait on) the
		// buffered relocation set — nothing has been dialed yet (sends only
		// happen in finish) and the rescan re-collects it.
		s.stats.CompactionFailures.Add(1)
		return out, cerr
	}

	// Ship the buffered relocations and wait for the owners' acks.
	// Truncation waits for the confirmation: an unconfirmed relocation must
	// leave the prefix in place — the next pass rescans it and re-sends
	// (idempotent at the receiver), whereas truncating now would strand the
	// disowned keys' newest versions behind a reclaimed shared-tier prefix.
	relocOK := rel.finish(relocAckTimeout)
	out.Owners = len(rel.conns)
	if !relocOK {
		s.stats.CompactionFailures.Add(1)
		return out, fmt.Errorf("core: %d relocated records unconfirmed; prefix kept for retry",
			st.Relocated)
	}
	lg.TruncateUntil(end)
	out.Begin = lg.BeginAddress()

	// Reclaim storage with a one-pass grace: only below the PREVIOUS pass's
	// begin address, so a read that pended against the old prefix before
	// this pass's truncation has a full inter-pass interval to drain its
	// device I/O before the bytes vanish. And never below what the latest
	// committed checkpoint image still needs for recovery — without a
	// committed image (but with a checkpoint device configured) nothing is
	// reclaimed: a crash right now must still recover.
	limit := hlog.Address(s.prevPassBegin.Swap(uint64(out.Begin)))
	if s.images != nil {
		if c := hlog.Address(s.committedBegin.Load()); c < limit {
			limit = c
		}
	}
	devFreed, tierFreed, rerr := lg.ReclaimUntil(limit)
	out.ReclaimedBytes, out.TierReclaimed = devFreed, tierFreed
	out.Took = time.Since(start)
	if rerr != nil {
		s.stats.CompactionFailures.Add(1)
		return out, fmt.Errorf("core: reclaiming device space: %w", rerr)
	}

	s.stats.Compactions.Add(1)
	s.stats.CompactRelocated.Add(uint64(st.Relocated))
	s.stats.CompactReclaimedBytes.Add(devFreed + tierFreed)
	s.lastCompactMu.Lock()
	s.lastCompact = out
	s.lastCompactMu.Unlock()
	// A pass that scanned nothing learned nothing: leave the live-fraction
	// estimate (and the span it covers) from the last real pass in place.
	if st.Scanned > 0 {
		s.liveFrac.Store(liveFracBits(st))
		s.lastPassDisk.Store(scannableBytes(lg))
	}
	return out, nil
}

// scannableBytes is the stable-prefix span a pass can actually cover:
// [BeginAddress, SafeHeadAddress). FlushedUntil can run ahead of SafeHead
// (checkpoints flush without evicting), so gating on flushed bytes would
// trigger passes that scan nothing.
func scannableBytes(lg *hlog.Log) uint64 {
	sh, b := uint64(lg.SafeHeadAddress()), uint64(lg.BeginAddress())
	if sh <= b {
		return 0
	}
	return sh - b
}

// LastCompaction returns the most recent pass's statistics.
func (s *Server) LastCompaction() CompactStats {
	s.lastCompactMu.Lock()
	defer s.lastCompactMu.Unlock()
	return s.lastCompact
}

// liveFracBits packs a pass's live fraction (Kept/Scanned) into per-mille
// for the atomic the watermark policy reads.
func liveFracBits(st faster.CompactStats) uint64 {
	if st.Scanned == 0 {
		return 0
	}
	return uint64(st.Kept) * 1000 / uint64(st.Scanned)
}

// compactLoop is the background compaction service: every period it applies
// the watermark policy and runs a pass when the stable prefix has grown past
// the watermark AND the dead-byte estimate says the pass will reclaim a
// useful amount (approximating §3.3.3's "lazily compacted": an almost-fully-
// live log is left alone until overwrites accumulate more garbage).
//
// The estimate applies the previous pass's live fraction only to the bytes
// that pass covered; everything appended since counts as potentially dead.
// Without the split, one fully-live pass would freeze the estimate at zero
// dead bytes and the service could never observe the garbage accumulating
// after it.
func (s *Server) compactLoop(every time.Duration, watermark uint64) {
	defer s.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-s.bgQuit:
			return
		case <-tick.C:
		}
		scannable := scannableBytes(s.store.Log())
		if scannable < watermark {
			continue
		}
		liveFrac := s.liveFrac.Load()    // per-mille; 0 until a pass has run
		covered := s.lastPassDisk.Load() // scannable bytes after that pass
		if covered > scannable {
			covered = scannable
		}
		dead := covered*(1000-liveFrac)/1000 + (scannable - covered)
		if dead < watermark/4 {
			continue
		}
		// Best-effort: failures are counted inside Compact; ErrCompactionBusy
		// just means a migration is running and the next tick retries.
		s.Compact() //nolint:errcheck
	}
}

// compactSession hands out the server's dedicated compaction session (the
// Session.Compact contract requires exclusivity, which compactMu provides).
// The guard sits suspended between passes — an idle registered guard would
// stall every global cut.
func (s *Server) compactSession() *faster.Session {
	if s.compactSess == nil {
		s.compactSess = s.store.NewSession()
	} else {
		s.compactSess.Guard().Resume()
	}
	// Adopt the current CPR version: the session sits suspended across
	// checkpoints and its copied-forward records must not carry a stale stamp.
	s.compactSess.Refresh()
	return s.compactSess
}

func (s *Server) releaseCompactSession(sess *faster.Session) {
	sess.CompletePending(true)
	sess.Guard().Suspend()
}

// handleCompactReq serves the MsgCompact admin message; the pass runs on its
// own goroutine so the dispatcher keeps polling (and crossing epoch cuts).
func (s *Server) handleCompactReq(c transport.Conn) {
	go func() {
		st, err := s.Compact()
		resp := wire.CompactResp{
			OK:        err == nil,
			Scanned:   uint64(st.Scanned),
			Kept:      uint64(st.Kept),
			Dropped:   uint64(st.Dropped),
			Relocated: uint64(st.Relocated),
			Begin:     uint64(st.Begin),

			ReclaimedBytes: st.ReclaimedBytes,
			TierReclaimed:  st.TierReclaimed,
		}
		if err != nil {
			resp.Err = err.Error()
		}
		c.Send(wire.EncodeCompactResp(resp))
	}()
}

// relocator batches disowned records per current owner and ships them as
// MsgCompacted frames — the send side of §3.3.3's record relocation. Lookups
// go through the metadata store's current ownership map (the server's own
// view no longer covers these hashes, by definition).
type relocator struct {
	s       *Server
	batches map[string][]wire.MigrationRecord
	conns   map[string]transport.Conn
	sent    map[string]int // MsgCompacted frames awaiting MsgAck, per owner
	// failed is set on any undeliverable record or frame (owner unresolved,
	// dial/send failure). The pass then keeps its prefix and retries later.
	failed bool
}

func newRelocator(s *Server) *relocator {
	return &relocator{
		s:       s,
		batches: make(map[string][]wire.MigrationRecord),
		conns:   make(map[string]transport.Conn),
		sent:    make(map[string]int),
	}
}

// add buffers one disowned record for its current owner; nothing is sent
// until finish, which runs after the compaction session's epoch guard is
// released — a network send under the guard could stall every global cut
// (checkpoints, migration phases) behind a backpressured peer. The buffer
// grows with the pass's relocated set (the disowned live records of the
// scanned prefix); passes over a very large freshly-disowned prefix pay for
// that in memory — chunking the scan (scan, release guard, flush, resume)
// would bound it and is the natural next step if it bites. A record whose
// owner cannot be resolved right now
// (metadata churn, the ownership moved back mid-refresh) fails the pass: the
// record's only durable copy may be the prefix this pass wants to retire, so
// the retirement waits.
func (r *relocator) add(rec faster.CollectedRecord) bool {
	if r.failed {
		return false // pass already doomed: abort the scan
	}
	owner, _, err := r.s.meta.OwnerOf(rec.Hash)
	if err != nil || owner == r.s.cfg.ID {
		r.failed = true
		return false
	}
	var flags uint8
	if rec.Tombstone {
		flags |= wire.RecFlagTombstone
	}
	r.batches[owner] = append(r.batches[owner], wire.MigrationRecord{
		Hash: rec.Hash, Flags: flags, Key: rec.Key, Value: rec.Value,
	})
	return true
}

// flush ships owner's buffered records in MigrationBatchRecords-sized
// MsgCompacted frames on a (cached) connection.
func (r *relocator) flush(owner string) {
	batch := r.batches[owner]
	r.batches[owner] = nil
	for len(batch) > 0 && !r.failed {
		n := r.s.cfg.MigrationBatchRecords
		if n > len(batch) {
			n = len(batch)
		}
		c, ok := r.conns[owner]
		if !ok {
			addr, err := r.s.meta.ServerAddr(owner)
			if err != nil {
				r.failed = true
				return
			}
			if c, err = r.s.cfg.Transport.Dial(addr); err != nil {
				r.failed = true
				return
			}
			r.conns[owner] = c
		}
		msg := wire.MigrationMsg{Type: wire.MsgCompacted, SourceID: r.s.cfg.ID,
			Records: batch[:n]}
		if c.Send(wire.EncodeMigrationMsg(&msg)) != nil {
			r.failed = true
			return
		}
		r.sent[owner]++
		batch = batch[n:]
	}
}

// finish ships every buffered batch and waits for the owners to acknowledge
// their frames, then closes the connections. All owners are polled
// round-robin under ONE shared progress deadline — each received ack (from
// any owner) extends it — so a large relocation set that owners are steadily
// working through completes, while wedged owners bound the whole pass at
// roughly one timeout rather than one per owner (the pass blocks migrations
// and Close for its duration). It reports whether every relocated record was
// confirmed delivered — the caller only retires (and later reclaims) the
// compacted prefix on true. Must run with the compaction session's guard
// suspended.
func (r *relocator) finish(timeout time.Duration) bool {
	if !r.failed {
		for owner := range r.batches {
			r.flush(owner)
		}
	}
	pending := make(map[string]transport.Conn)
	for owner, c := range r.conns {
		if r.sent[owner] > 0 {
			pending[owner] = c
		}
	}
	deadline := time.Now().Add(timeout)
	for len(pending) > 0 && time.Now().Before(deadline) {
		progress := false
		for owner, c := range pending {
			frame, ok, err := c.TryRecv()
			if err != nil {
				r.failed = true
				delete(pending, owner)
				continue
			}
			if !ok {
				continue
			}
			if t, err := wire.PeekType(frame); err == nil && t == wire.MsgAck {
				r.sent[owner]--
				progress = true
				if r.sent[owner] == 0 {
					delete(pending, owner)
				}
			}
		}
		if progress {
			deadline = time.Now().Add(timeout) // ack = progress
		} else {
			time.Sleep(200 * time.Microsecond)
		}
	}
	if len(pending) > 0 {
		r.failed = true
	}
	for _, c := range r.conns {
		c.Close()
	}
	return !r.failed
}
