package metadata

import (
	"errors"
	"testing"
)

// TestReplicaAttachLifecycle pins the attach/sync/detach contract: attach to
// an unknown primary is refused, re-attach resets Synced, a synced replica
// blocks a different address from attaching, and ClearReplica is idempotent
// and address-scoped.
func TestReplicaAttachLifecycle(t *testing.T) {
	s := NewStore()
	s.RegisterServer("p", FullRange)

	if err := s.SetReplica("ghost", "b1"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("attach to unknown primary: got %v", err)
	}
	if err := s.SetReplica("p", "b1"); err != nil {
		t.Fatal(err)
	}
	r, ok := s.Replica("p")
	if !ok || r.Addr != "b1" || r.Synced {
		t.Fatalf("fresh replica = %+v %v", r, ok)
	}

	// Syncing the wrong address is refused; the right one sticks.
	if err := s.MarkReplicaSynced("p", "b2"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("sync wrong addr: got %v", err)
	}
	if err := s.MarkReplicaSynced("p", "b1"); err != nil {
		t.Fatal(err)
	}
	if r, _ := s.Replica("p"); !r.Synced {
		t.Fatal("replica not marked synced")
	}

	// A synced backup blocks a different address; the same address may
	// re-attach but drops back to unsynced (fresh incarnation, fresh sync).
	if err := s.SetReplica("p", "b2"); !errors.Is(err, ErrReplicated) {
		t.Fatalf("attach over synced replica: got %v", err)
	}
	if err := s.SetReplica("p", "b1"); err != nil {
		t.Fatal(err)
	}
	if r, _ := s.Replica("p"); r.Synced {
		t.Fatal("re-attach kept stale Synced flag")
	}

	// ClearReplica ignores a mismatched address, removes the right one, and
	// retrying the removal is a no-op.
	if err := s.ClearReplica("p", "b2"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Replica("p"); !ok {
		t.Fatal("clear with wrong addr removed the replica")
	}
	if err := s.ClearReplica("p", "b1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Replica("p"); ok {
		t.Fatal("replica survived clear")
	}
	if err := s.ClearReplica("p", "b1"); err != nil {
		t.Fatal(err)
	}
}

// TestPromoteReplica pins failover's linearization point: only a synced
// backup may promote, promotion bumps the view and repoints the address, and
// the deposed primary's checkpoint replay is refused with ErrDeposed.
func TestPromoteReplica(t *testing.T) {
	s := NewStore()
	s.RegisterServer("p", FullRange)
	s.SetServerAddr("p", "p-addr")
	stale, _ := s.GetView("p") // what the primary would have checkpointed

	if _, err := s.PromoteReplica("p", "b1"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("promote with no replica: got %v", err)
	}
	if err := s.SetReplica("p", "b1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PromoteReplica("p", "b1"); !errors.Is(err, ErrReplicaNotSynced) {
		t.Fatalf("promote unsynced replica: got %v", err)
	}
	if err := s.MarkReplicaSynced("p", "b1"); err != nil {
		t.Fatal(err)
	}
	v, err := s.PromoteReplica("p", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if v.Number != stale.Number+1 {
		t.Fatalf("promoted view = %d, want %d", v.Number, stale.Number+1)
	}
	if addr, err := s.ServerAddr("p"); err != nil || addr != "b1" {
		t.Fatalf("address after promotion = %q %v, want b1", addr, err)
	}
	if _, ok := s.Replica("p"); ok {
		t.Fatal("replica entry survived promotion")
	}

	// The dead primary restarts and replays its pre-promotion checkpoint:
	// refused, the promoted backup owns the identity now.
	if _, err := s.RestoreServer("p", stale); !errors.Is(err, ErrDeposed) {
		t.Fatalf("deposed restore: got %v", err)
	}
	// The promoted server itself restores at (or past) the promotion
	// watermark and is welcome.
	if got, err := s.RestoreServer("p", v); err != nil || got.Number != v.Number {
		t.Fatalf("promoted restore = %v %v", got, err)
	}
}

// TestRestoreDropsUnsyncedReplica pins the restart-vs-attach race: a primary
// crashing mid-base-sync wins over its half-synced backup — the restore
// drops the replica entry (the backup must re-attach) — while a synced
// backup wins over the restore.
func TestRestoreDropsUnsyncedReplica(t *testing.T) {
	s := NewStore()
	s.RegisterServer("p", FullRange)
	v, _ := s.GetView("p")

	if err := s.SetReplica("p", "b1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RestoreServer("p", v); err != nil {
		t.Fatalf("restore over unsynced replica: %v", err)
	}
	if _, ok := s.Replica("p"); ok {
		t.Fatal("unsynced replica survived primary restart")
	}

	s.SetReplica("p", "b1")
	s.MarkReplicaSynced("p", "b1")
	if _, err := s.RestoreServer("p", v); !errors.Is(err, ErrDeposed) {
		t.Fatalf("restore with synced replica attached: got %v", err)
	}
}

// TestMigrationRefusedUnderReplication: a server with a backup attached may
// not be party to a migration — migration records are not forwarded on the
// replication stream, so the backup would silently diverge.
func TestMigrationRefusedUnderReplication(t *testing.T) {
	s := NewStore()
	s.RegisterServer("src", FullRange)
	s.RegisterServer("dst")
	rng := HashRange{Start: 1 << 62, End: 1 << 63}

	s.SetReplica("src", "b1")
	if _, _, _, err := s.StartMigration("src", "dst", rng); !errors.Is(err, ErrReplicated) {
		t.Fatalf("migrate from replicated source: got %v", err)
	}
	s.ClearReplica("src", "b1")
	s.SetReplica("dst", "b2")
	if _, _, _, err := s.StartMigration("src", "dst", rng); !errors.Is(err, ErrReplicated) {
		t.Fatalf("migrate into replicated target: got %v", err)
	}
	s.ClearReplica("dst", "b2")
	if _, _, _, err := s.StartMigration("src", "dst", rng); err != nil {
		t.Fatalf("migrate after detach: %v", err)
	}
}

// TestRetireServer pins scale-in's terminal step: retiring is refused while
// the server owns ranges, has a replica, or is party to an in-flight
// migration; an empty server retires; retiring twice (or an unknown id) is a
// no-op so interrupted drains converge on retry.
func TestRetireServer(t *testing.T) {
	s := NewStore()
	s.RegisterServer("a", FullRange)
	s.RegisterServer("b")
	s.SetServerAddr("b", "b-addr")

	if err := s.RetireServer("a"); !errors.Is(err, ErrServerNotEmpty) {
		t.Fatalf("retire owner of ranges: got %v", err)
	}
	s.SetReplica("b", "bk")
	if err := s.RetireServer("b"); !errors.Is(err, ErrReplicated) {
		t.Fatalf("retire replicated server: got %v", err)
	}
	s.ClearReplica("b", "bk")

	// Party to an in-flight migration: refused until both sides finish.
	mig, _, _, err := s.StartMigration("a", "b", HashRange{Start: 0, End: 1 << 62})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RetireServer("b"); err == nil {
		t.Fatal("retire of migration target succeeded mid-flight")
	}
	s.MarkMigrationDone(mig.ID, "a")
	s.MarkMigrationDone(mig.ID, "b")
	s.CollectMigration(mig.ID)

	// Move the range back so b is empty, then retire it.
	back, _, _, err := s.StartMigration("b", "a", HashRange{Start: 0, End: 1 << 62})
	if err != nil {
		t.Fatal(err)
	}
	s.MarkMigrationDone(back.ID, "b")
	s.MarkMigrationDone(back.ID, "a")
	s.CollectMigration(back.ID)

	if err := s.RetireServer("b"); err != nil {
		t.Fatalf("retire empty server: %v", err)
	}
	if _, err := s.GetView("b"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("retired server still has a view: %v", err)
	}
	if _, err := s.ServerAddr("b"); err == nil {
		t.Fatal("retired server still has an address")
	}
	if err := s.RetireServer("b"); err != nil {
		t.Fatalf("second retire not idempotent: %v", err)
	}
	// The full range must still be owned (by a).
	if owner, _, err := s.OwnerOf(1 << 61); err != nil || owner != "a" {
		t.Fatalf("owner after retire = %q %v, want a", owner, err)
	}
}
