package metadata

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestRegisterAndGetView(t *testing.T) {
	s := NewStore()
	v := s.RegisterServer("a", FullRange)
	if v.Number != 1 || len(v.Ranges) != 1 {
		t.Fatalf("view %+v", v)
	}
	got, err := s.GetView("a")
	if err != nil || got.Number != 1 {
		t.Fatalf("get: %v %+v", err, got)
	}
	if _, err := s.GetView("missing"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("want ErrUnknownServer, got %v", err)
	}
}

func TestOwnerOf(t *testing.T) {
	s := NewStore()
	mid := uint64(1) << 63
	s.RegisterServer("a", HashRange{0, mid})
	s.RegisterServer("b", HashRange{mid, ^uint64(0)})
	id, v, err := s.OwnerOf(42)
	if err != nil || id != "a" || !v.Owns(42) {
		t.Fatalf("owner of 42: %q %v", id, err)
	}
	id, _, err = s.OwnerOf(mid + 5)
	if err != nil || id != "b" {
		t.Fatalf("owner of high: %q %v", id, err)
	}
}

func TestStartMigrationAtomicity(t *testing.T) {
	s := NewStore()
	s.RegisterServer("src", FullRange)
	s.RegisterServer("dst")
	rng := HashRange{100, 200}

	m, sv, tv, err := s.StartMigration("src", "dst", rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != "src" || m.Target != "dst" || m.Range != rng {
		t.Fatalf("migration %+v", m)
	}
	// Views incremented on both sides.
	if sv.Number != 2 || tv.Number != 2 {
		t.Fatalf("views %d %d, want 2 2", sv.Number, tv.Number)
	}
	// Ownership moved exactly once, no overlap, no gap.
	if sv.Owns(150) {
		t.Fatal("source still owns migrated hash")
	}
	if !tv.Owns(150) {
		t.Fatal("target does not own migrated hash")
	}
	if !sv.Owns(99) || !sv.Owns(200) {
		t.Fatal("source lost non-migrated hashes")
	}
	// Re-migrating a range whose migration is still in flight fails with the
	// overlap error (the guard fires before ownership is even consulted).
	if _, _, _, err := s.StartMigration("src", "dst", rng); !errors.Is(err, ErrMigrationOverlap) {
		t.Fatalf("double migration: %v", err)
	}
	// Once the migration settles, the same start fails on ownership instead.
	s.MarkMigrationDone(m.ID, "src")
	s.MarkMigrationDone(m.ID, "dst")
	if _, _, _, err := s.StartMigration("src", "dst", rng); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("migration of disowned range: %v", err)
	}
	// Unknown servers fail.
	if _, _, _, err := s.StartMigration("nope", "dst", HashRange{0, 1}); !errors.Is(err, ErrUnknownServer) {
		t.Fatal("unknown source accepted")
	}
}

func TestMigrationCompletionFlags(t *testing.T) {
	s := NewStore()
	s.RegisterServer("src", FullRange)
	s.RegisterServer("dst")
	m, _, _, _ := s.StartMigration("src", "dst", HashRange{0, 10})

	if err := s.MarkMigrationDone(m.ID, "src"); err != nil {
		t.Fatal(err)
	}
	got, _ := s.GetMigration(m.ID)
	if !got.SourceDone || got.TargetDone || got.Complete() {
		t.Fatalf("state %+v", got)
	}
	// Still pending for the target.
	if p := s.PendingMigrationsFor("dst"); len(p) != 1 {
		t.Fatalf("pending for dst: %d", len(p))
	}
	if err := s.MarkMigrationDone(m.ID, "dst"); err != nil {
		t.Fatal(err)
	}
	got, _ = s.GetMigration(m.ID)
	if !got.Complete() {
		t.Fatal("not complete after both flags")
	}
	if p := s.PendingMigrationsFor("src"); len(p) != 0 {
		t.Fatal("complete migration still pending")
	}
	// Dependency garbage collection.
	if err := s.CollectMigration(m.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetMigration(m.ID); !errors.Is(err, ErrUnknownMigration) {
		t.Fatal("collected migration still present")
	}
}

func TestCancelMigrationRollsBackOwnership(t *testing.T) {
	s := NewStore()
	s.RegisterServer("src", FullRange)
	s.RegisterServer("dst")
	rng := HashRange{1000, 2000}
	m, _, _, _ := s.StartMigration("src", "dst", rng)

	if err := s.CancelMigration(m.ID); err != nil {
		t.Fatal(err)
	}
	sv, _ := s.GetView("src")
	tv, _ := s.GetView("dst")
	if !sv.Owns(1500) {
		t.Fatal("cancellation did not return the range to the source")
	}
	if tv.Owns(1500) {
		t.Fatal("target kept the range after cancellation")
	}
	// Views incremented again (clients must revalidate).
	if sv.Number != 3 || tv.Number != 3 {
		t.Fatalf("views %d %d, want 3 3", sv.Number, tv.Number)
	}
	// Idempotent.
	if err := s.CancelMigration(m.ID); err != nil {
		t.Fatal(err)
	}
	// Cancelling a completed migration fails.
	m2, _, _, _ := s.StartMigration("src", "dst", rng)
	s.MarkMigrationDone(m2.ID, "src")
	s.MarkMigrationDone(m2.ID, "dst")
	if err := s.CancelMigration(m2.ID); !errors.Is(err, ErrMigrationDone) {
		t.Fatalf("cancel after completion: %v", err)
	}
}

func TestCarveMiddleAndEdges(t *testing.T) {
	s := NewStore()
	s.RegisterServer("a", HashRange{0, 100})
	s.RegisterServer("b")
	// Carve the middle: source keeps both sides.
	if _, _, _, err := s.StartMigration("a", "b", HashRange{40, 60}); err != nil {
		t.Fatal(err)
	}
	av, _ := s.GetView("a")
	if !av.Owns(39) || !av.Owns(60) || av.Owns(50) {
		t.Fatalf("bad carve: %+v", av.Ranges)
	}
	// Carve a prefix of the remaining low range.
	if _, _, _, err := s.StartMigration("a", "b", HashRange{0, 10}); err != nil {
		t.Fatal(err)
	}
	av, _ = s.GetView("a")
	if av.Owns(5) || !av.Owns(15) {
		t.Fatal("prefix carve wrong")
	}
	bv, _ := s.GetView("b")
	if !bv.Owns(5) || !bv.Owns(50) {
		t.Fatal("target missing carved ranges")
	}
}

func TestMergeRangesCoalesces(t *testing.T) {
	s := NewStore()
	s.RegisterServer("a", HashRange{0, 100})
	s.RegisterServer("b")
	s.StartMigration("a", "b", HashRange{0, 10})
	s.StartMigration("a", "b", HashRange{10, 20})
	bv, _ := s.GetView("b")
	if len(bv.Ranges) != 1 || bv.Ranges[0] != (HashRange{0, 20}) {
		t.Fatalf("adjacent ranges not merged: %+v", bv.Ranges)
	}
}

func TestWatchNotifies(t *testing.T) {
	s := NewStore()
	ch := s.Watch()
	s.RegisterServer("a", FullRange)
	select {
	case <-ch:
	default:
		t.Fatal("no notification after register")
	}
	s.RegisterServer("b")
	s.StartMigration("a", "b", HashRange{0, 5})
	select {
	case <-ch:
	default:
		t.Fatal("no notification after migration")
	}
}

func TestViewNumbersStrictlyIncrease(t *testing.T) {
	s := NewStore()
	s.RegisterServer("a", FullRange)
	s.RegisterServer("b")
	last := uint64(1)
	for i := 0; i < 10; i++ {
		_, sv, _, err := s.StartMigration("a", "b", HashRange{uint64(i * 10), uint64(i*10 + 5)})
		if err != nil {
			t.Fatal(err)
		}
		if sv.Number <= last {
			t.Fatalf("view number %d did not increase past %d", sv.Number, last)
		}
		last = sv.Number
	}
}

func TestConcurrentMetadataOps(t *testing.T) {
	s := NewStore()
	s.RegisterServer("a", FullRange)
	s.RegisterServer("b")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rng := HashRange{uint64(w*1000 + i*10), uint64(w*1000 + i*10 + 5)}
				s.StartMigration("a", "b", rng)
				s.OwnerOf(uint64(w*1000 + i*10))
				s.Ownership()
			}
		}(w)
	}
	wg.Wait()
	// Invariant: no hash owned twice.
	av, _ := s.GetView("a")
	bv, _ := s.GetView("b")
	for _, r := range bv.Ranges {
		if av.Owns(r.Start) {
			t.Fatalf("hash %#x owned by both servers", r.Start)
		}
	}
}

func TestConcurrentDisjointMigrationsAllowed(t *testing.T) {
	s := NewStore()
	s.RegisterServer("a", HashRange{0, 1000})
	s.RegisterServer("b", HashRange{1000, 2000})
	s.RegisterServer("c")
	s.RegisterServer("d")

	// Two disjoint-range migrations from different sources may be in flight
	// at once.
	m1, _, _, err := s.StartMigration("a", "c", HashRange{0, 500})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, _, err := s.StartMigration("b", "d", HashRange{1000, 1500})
	if err != nil {
		t.Fatalf("disjoint concurrent migration rejected: %v", err)
	}
	if m2.Epoch <= m1.Epoch {
		t.Fatalf("epochs not strictly increasing: %d then %d", m1.Epoch, m2.Epoch)
	}
	inflight := 0
	for _, m := range s.Migrations() {
		if m.InFlight() {
			inflight++
		}
	}
	if inflight != 2 {
		t.Fatalf("in-flight migrations = %d, want 2", inflight)
	}

	// Any overlap with either in-flight range is rejected — including a
	// range the *target* now owns (re-moving a mid-flight range would race
	// the record transfer).
	for _, rng := range []HashRange{{0, 500}, {250, 300}, {400, 1200}, {1499, 1500}} {
		if _, _, _, err := s.StartMigration("c", "d", rng); !errors.Is(err, ErrMigrationOverlap) {
			t.Fatalf("overlapping start %v: got %v, want ErrMigrationOverlap", rng, err)
		}
	}

	// A cancelled migration no longer blocks its range.
	if err := s.CancelMigration(m1.ID); err != nil {
		t.Fatal(err)
	}
	m3, _, _, err := s.StartMigration("a", "c", HashRange{0, 500})
	if err != nil {
		t.Fatalf("start over cancelled migration's range: %v", err)
	}
	if m3.Epoch <= m2.Epoch {
		t.Fatalf("epoch did not advance past %d: %d", m2.Epoch, m3.Epoch)
	}
}

func TestHashRangeQuick(t *testing.T) {
	f := func(a, b, h uint64) bool {
		if a > b {
			a, b = b, a
		}
		r := HashRange{a, b}
		want := h >= a && h < b
		return r.Contains(h) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCarveQuick(t *testing.T) {
	// carve(full, r) then re-merge must reproduce full coverage.
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		if a > b {
			a, b = b, a
		}
		rng := HashRange{a, b}
		rest, ok := carve([]HashRange{FullRange}, rng)
		if !ok {
			return b == ^uint64(0) && false || b <= ^uint64(0) && rng.End > FullRange.End
		}
		merged := mergeRanges(append(rest, rng))
		return len(merged) == 1 && merged[0] == FullRange
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
