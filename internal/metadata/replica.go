package metadata

import (
	"errors"
	"fmt"
)

// Primary→backup replication metadata: each primary may have at most one
// attached backup, tracked here so that failover — promote the backup,
// repoint ownership and the primary's address, depose the dead primary — is
// a single linearization point under the store mutex, exactly like migration
// ownership transfer (§3.3).

// ReplicaState describes one attached backup.
type ReplicaState struct {
	// PrimaryID is the server the backup shadows; on promotion the backup
	// takes over this identity (clients keep dialing the same server id).
	PrimaryID string
	// Addr is the backup's transport address; promotion repoints the
	// primary's address entry here.
	Addr string
	// Synced is set once the backup holds the full base state and the live
	// stream; only a synced backup may promote.
	Synced bool
}

// Errors returned by the replication metadata operations.
var (
	// ErrDeposed refuses a deposed primary's restart: its backup was (or is
	// about to be) promoted in its place.
	ErrDeposed = errors.New("metadata: server deposed by promoted replica")
	// ErrReplicated refuses an operation (migration, drain) on a server with
	// a replica attached.
	ErrReplicated = errors.New("metadata: server has a replica attached")
	// ErrNoReplica means the server has no attached replica (or a different
	// one than the caller claims to be).
	ErrNoReplica = errors.New("metadata: no such replica")
	// ErrReplicaNotSynced refuses promotion of a backup that never finished
	// its base sync: it does not hold the full acknowledged state.
	ErrReplicaNotSynced = errors.New("metadata: replica not synced")
	// ErrServerNotEmpty refuses retirement of a server that still owns
	// ranges or is party to an in-flight migration.
	ErrServerNotEmpty = errors.New("metadata: server still owns ranges")
)

// SetReplica attaches addr as primaryID's backup. The primary must be
// registered; re-attaching (same or different address) resets Synced — the
// new incarnation must complete a fresh base sync before it may promote.
// At most one backup per primary: an attach while a *synced* backup is
// registered at a different address is refused (the primary detaches the old
// one first via ClearReplica).
func (s *Store) SetReplica(primaryID, addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.views[primaryID]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownServer, primaryID)
	}
	if r, ok := s.replicas[primaryID]; ok && r.Synced && r.Addr != addr {
		return fmt.Errorf("%w: %q already has synced replica %s", ErrReplicated,
			primaryID, r.Addr)
	}
	s.replicas[primaryID] = &ReplicaState{PrimaryID: primaryID, Addr: addr}
	s.notifyLocked()
	return nil
}

// MarkReplicaSynced records that primaryID's backup at addr completed its
// base sync and is applying the live stream; it is now eligible to promote.
func (s *Store) MarkReplicaSynced(primaryID, addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.replicas[primaryID]
	if !ok || r.Addr != addr {
		return fmt.Errorf("%w: %q at %s", ErrNoReplica, primaryID, addr)
	}
	r.Synced = true
	s.notifyLocked()
	return nil
}

// ClearReplica detaches primaryID's backup at addr (primary-side failure
// detection: the backup stopped acknowledging). Idempotent; a no-op when a
// different backup is registered (a newer incarnation already attached).
func (s *Store) ClearReplica(primaryID, addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.replicas[primaryID]; ok && r.Addr == addr {
		delete(s.replicas, primaryID)
		s.notifyLocked()
	}
	return nil
}

// Replica returns primaryID's attached backup, if any.
func (s *Store) Replica(primaryID string) (ReplicaState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.replicas[primaryID]
	if !ok {
		return ReplicaState{}, false
	}
	return *r, true
}

// Replicas returns every attached backup keyed by primary id.
func (s *Store) Replicas() map[string]ReplicaState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]ReplicaState, len(s.replicas))
	for id, r := range s.replicas {
		out[id] = *r
	}
	return out
}

// PromoteReplica is failover's linearization point: the synced backup at
// addr takes over primaryID's identity — its view number is bumped (so
// clients re-route and replay sessions through the §3.3.1 recovery path),
// its address is repointed at the backup, and the promotion watermark is
// recorded so the dead primary's eventual restart is refused (ErrDeposed in
// RestoreServer). Returns the view the promoted server must adopt.
func (s *Store) PromoteReplica(primaryID, addr string) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.replicas[primaryID]
	if !ok || r.Addr != addr {
		return View{}, fmt.Errorf("%w: %q at %s", ErrNoReplica, primaryID, addr)
	}
	if !r.Synced {
		return View{}, fmt.Errorf("%w: %q at %s", ErrReplicaNotSynced, primaryID, addr)
	}
	if l, held := s.leaseBlocksPromotionLocked(primaryID, addr); held {
		return View{}, fmt.Errorf("%w: %q at %s renews until %s", ErrPrimaryAlive,
			primaryID, l.addr, l.expiry.Format("15:04:05.000"))
	}
	v, ok := s.views[primaryID]
	if !ok {
		return View{}, fmt.Errorf("%w: %q", ErrUnknownServer, primaryID)
	}
	v.Number++
	s.addrs[primaryID] = addr
	s.promoted[primaryID] = v.Number
	delete(s.replicas, primaryID)
	delete(s.leases, primaryID) // the old holder is deposed; its lease is void
	s.notifyLocked()
	return v.Clone(), nil
}

// RetireServer removes an empty server from the metadata store (scale-in:
// the balancer drained its ranges into neighbors and shuts it down).
// Refused while the server still owns ranges, has a replica attached, or is
// party to an uncollected migration. Retiring an unknown server is a no-op —
// a drained server retried after a partial failure must converge.
func (s *Store) RetireServer(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.views[id]
	if !ok {
		return nil // already retired
	}
	if len(v.Ranges) > 0 {
		return fmt.Errorf("%w: %q owns %d range(s)", ErrServerNotEmpty, id, len(v.Ranges))
	}
	if _, ok := s.replicas[id]; ok {
		return fmt.Errorf("%w: %q", ErrReplicated, id)
	}
	for _, m := range s.migrations {
		if (m.Source == id || m.Target == id) && !m.Complete() && !m.Cancelled {
			return fmt.Errorf("metadata: %q is party to in-flight migration %d", id, m.ID)
		}
	}
	delete(s.views, id)
	delete(s.addrs, id)
	delete(s.leases, id)
	s.notifyLocked()
	return nil
}
