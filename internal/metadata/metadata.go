// Package metadata implements the fault-tolerant external metadata store
// Shadowfax relies on (§3; ZooKeeper in the paper). It durably maintains
// per-server strictly-increasing view numbers, the mapping between hash
// ranges and servers, and migration dependencies with completion and
// cancellation flags.
//
// The paper needs three properties from this component: linearizable
// updates, atomic multi-key transitions (ownership remap + view increments +
// dependency registration in one step), and client-visible reads. A single
// in-process store guarded by a mutex provides all three with identical
// semantics; ZooKeeper's replication is orthogonal to every experiment
// (DESIGN.md §2 documents the substitution).
package metadata

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// HashRange is a half-open interval [Start, End) of 64-bit key hashes.
type HashRange struct {
	Start, End uint64
}

// Contains reports whether h falls in the range.
func (r HashRange) Contains(h uint64) bool { return h >= r.Start && h < r.End }

// Overlaps reports whether two ranges intersect.
func (r HashRange) Overlaps(o HashRange) bool { return r.Start < o.End && o.Start < r.End }

func (r HashRange) String() string { return fmt.Sprintf("[%#x,%#x)", r.Start, r.End) }

// FullRange covers the entire hash space.
var FullRange = HashRange{Start: 0, End: ^uint64(0)}

// View is a server's ownership view: a strictly-increasing number plus the
// hash ranges owned at that number.
type View struct {
	Number uint64
	Ranges []HashRange
}

// Owns reports whether the view covers hash h.
func (v View) Owns(h uint64) bool {
	for _, r := range v.Ranges {
		if r.Contains(h) {
			return true
		}
	}
	return false
}

// Clone deep-copies the view.
func (v View) Clone() View {
	out := View{Number: v.Number, Ranges: make([]HashRange, len(v.Ranges))}
	copy(out.Ranges, v.Ranges)
	return out
}

// MigrationState tracks one in-flight migration's fault-tolerance record
// (§3.3.1).
type MigrationState struct {
	ID             uint64
	Source, Target string
	Range          HashRange
	// Epoch is the store-wide migration epoch assigned at StartMigration:
	// strictly increasing across all migrations, so observers can order
	// concurrent disjoint-range migrations and detect overlap in time
	// (two migrations were concurrent iff both were in flight at one
	// instant; their epochs name them unambiguously).
	Epoch      uint64
	SourceDone bool
	TargetDone bool
	Cancelled  bool
}

// Complete reports whether both sides finished (dependency collectable).
func (m MigrationState) Complete() bool { return m.SourceDone && m.TargetDone }

// InFlight reports whether the migration is still running: not yet finished
// on both sides and not cancelled.
func (m MigrationState) InFlight() bool { return !m.Complete() && !m.Cancelled }

// Errors returned by Store operations.
var (
	ErrUnknownServer    = errors.New("metadata: unknown server")
	ErrNotOwner         = errors.New("metadata: server does not own the range")
	ErrOverlap          = errors.New("metadata: range overlaps another server's ownership")
	ErrUnknownMigration = errors.New("metadata: unknown migration")
	ErrMigrationDone    = errors.New("metadata: migration already completed")
	// ErrMigrationOverlap rejects a StartMigration whose range overlaps a
	// migration still in flight: concurrent migrations are allowed only over
	// disjoint ranges, and the store is where that invariant is enforced
	// (one linearization point for every balancer and operator).
	ErrMigrationOverlap = errors.New("metadata: range overlaps an in-flight migration")
)

// Store is the metadata service. All methods are safe for concurrent use.
type Store struct {
	mu         sync.Mutex
	views      map[string]*View
	addrs      map[string]string
	migrations map[uint64]*MigrationState
	// replicas maps a primary's server id to its attached backup (replica.go).
	replicas map[string]*ReplicaState
	// promoted records, per server id, the view number a replica promotion
	// assigned: a deposed primary restarting from its checkpoint carries a
	// lower number and must be refused (split-brain guard).
	promoted map[string]uint64
	// leases maps a server id to its primary liveness lease (lease.go): the
	// split-brain fence consulted by PromoteReplica.
	leases    map[string]lease
	nextMigID uint64
	nextEpoch uint64
	revision  uint64
	watchers  []chan struct{}
}

// NewStore returns an empty metadata store.
func NewStore() *Store {
	return &Store{
		views:      make(map[string]*View),
		addrs:      make(map[string]string),
		migrations: make(map[uint64]*MigrationState),
		replicas:   make(map[string]*ReplicaState),
		promoted:   make(map[string]uint64),
		nextMigID:  1,
	}
}

// SetServerAddr records a server's transport address so peers and clients
// can dial it.
func (s *Store) SetServerAddr(id, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addrs[id] = addr
	s.notifyLocked()
}

// ServerAddr returns a server's transport address.
func (s *Store) ServerAddr(id string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.addrs[id]
	if !ok {
		return "", fmt.Errorf("%w: no address for %q", ErrUnknownServer, id)
	}
	return a, nil
}

// RegisterServer creates (or resets) a server's view with the given ranges
// at view number 1.
func (s *Store) RegisterServer(id string, ranges ...HashRange) View {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := &View{Number: 1, Ranges: mergeRanges(append([]HashRange(nil), ranges...))}
	s.views[id] = v
	s.notifyLocked()
	return v.Clone()
}

// RestoreServer reinstates a recovered server's ownership view exactly as it
// was checkpointed — number included — so clients holding the pre-crash view
// keep validating and the server's batches keep matching (§3.3.1: recovery
// re-registers the server under its durable metadata state). If a view
// already exists with a higher number (e.g. a migration completed while the
// server was down), the higher number wins and the recovered ranges are
// discarded in favor of the current ones.
//
// A restart races failover: if the id's backup was already promoted at a
// higher view number, or a synced backup is still attached and may promote
// any instant, the restore is refused with ErrDeposed — exactly one of the
// old primary and the backup may serve the ranges, and this refusal is the
// linearization point that picks the winner. An attached-but-unsynced
// replica loses instead: its entry is dropped (its base sync was cut short
// by the very crash being recovered from) and it must re-attach.
func (s *Store) RestoreServer(id string, v View) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pn, ok := s.promoted[id]; ok && v.Number < pn {
		return View{}, fmt.Errorf("%w: %q was superseded by its promoted replica (view %d)",
			ErrDeposed, id, pn)
	}
	if r, ok := s.replicas[id]; ok {
		if r.Synced {
			return View{}, fmt.Errorf("%w: %q has a synced replica attached (%s); let it promote",
				ErrDeposed, id, r.Addr)
		}
		delete(s.replicas, id) // mid-sync backup lost the race; it re-attaches
	}
	if cur, ok := s.views[id]; ok && cur.Number > v.Number {
		return cur.Clone(), nil
	}
	nv := v.Clone()
	nv.Ranges = mergeRanges(nv.Ranges)
	s.views[id] = &nv
	s.notifyLocked()
	return nv.Clone(), nil
}

// GetView returns a server's current view.
func (s *Store) GetView(id string) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.views[id]
	if !ok {
		return View{}, fmt.Errorf("%w: %q", ErrUnknownServer, id)
	}
	return v.Clone(), nil
}

// Servers returns the ids of all registered servers, sorted.
func (s *Store) Servers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.views))
	for id := range s.views {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// OwnerOf returns the server owning hash h and its view.
func (s *Store) OwnerOf(h uint64) (string, View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, v := range s.views {
		if v.Owns(h) {
			return id, v.Clone(), nil
		}
	}
	return "", View{}, fmt.Errorf("%w: no owner for %#x", ErrUnknownServer, h)
}

// Ownership returns every server's view (the client library's cached map).
func (s *Store) Ownership() map[string]View {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]View, len(s.views))
	for id, v := range s.views {
		out[id] = v.Clone()
	}
	return out
}

// StartMigration atomically (one linearization point, §3.3 Sampling step 1):
// remaps ownership of rng from source to target, increments both servers'
// view numbers, and registers the migration dependency. Returns the
// migration record and the two new views.
//
// Concurrent migrations are allowed as long as their ranges are disjoint: a
// start whose range overlaps any migration still in flight fails with
// ErrMigrationOverlap, so independent balancer passes (or an operator racing
// the balancer) can never double-move the same hash range.
func (s *Store) StartMigration(source, target string, rng HashRange) (MigrationState, View, View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.views[source]
	if !ok {
		return MigrationState{}, View{}, View{}, fmt.Errorf("%w: %q", ErrUnknownServer, source)
	}
	tv, ok := s.views[target]
	if !ok {
		return MigrationState{}, View{}, View{}, fmt.Errorf("%w: %q", ErrUnknownServer, target)
	}
	for _, m := range s.migrations {
		if m.InFlight() && m.Range.Overlaps(rng) {
			return MigrationState{}, View{}, View{}, fmt.Errorf(
				"%w: %s overlaps migration %d (epoch %d) %s", ErrMigrationOverlap,
				rng, m.ID, m.Epoch, m.Range)
		}
	}
	// A replicated server cannot take part in a migration: migrated-in
	// records install outside the client-batch path the replication stream
	// forwards, so the backup would silently miss them. Detach first.
	for _, id := range [2]string{source, target} {
		if _, ok := s.replicas[id]; ok {
			return MigrationState{}, View{}, View{}, fmt.Errorf(
				"%w: %q has a replica attached", ErrReplicated, id)
		}
	}
	rest, carved := carve(sv.Ranges, rng)
	if !carved {
		return MigrationState{}, View{}, View{}, fmt.Errorf("%w: %s does not own %s", ErrNotOwner, source, rng)
	}
	sv.Ranges = rest
	sv.Number++
	tv.Ranges = mergeRanges(append(tv.Ranges, rng))
	tv.Number++
	s.nextEpoch++
	m := &MigrationState{ID: s.nextMigID, Source: source, Target: target, Range: rng,
		Epoch: s.nextEpoch}
	s.nextMigID++
	s.migrations[m.ID] = m
	s.notifyLocked()
	return *m, sv.Clone(), tv.Clone(), nil
}

// MarkMigrationDone sets one side's completion flag; when both are set the
// dependency is garbage-collectable.
func (s *Store) MarkMigrationDone(id uint64, server string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.migrations[id]
	if !ok {
		return ErrUnknownMigration
	}
	switch server {
	case m.Source:
		m.SourceDone = true
	case m.Target:
		m.TargetDone = true
	default:
		return fmt.Errorf("%w: %q not part of migration %d", ErrUnknownServer, server, id)
	}
	s.notifyLocked()
	return nil
}

// CancelMigration implements §3.3.1's cancellation: it sets the cancellation
// flag and transfers ownership of the range back to the source, incrementing
// both views again. Fails if both completion flags are already set.
func (s *Store) CancelMigration(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.migrations[id]
	if !ok {
		return ErrUnknownMigration
	}
	if m.Complete() {
		return ErrMigrationDone
	}
	if m.Cancelled {
		return nil // idempotent
	}
	m.Cancelled = true
	sv := s.views[m.Source]
	tv := s.views[m.Target]
	if tv != nil {
		if rest, carved := carve(tv.Ranges, m.Range); carved {
			tv.Ranges = rest
		}
		tv.Number++
	}
	if sv != nil {
		sv.Ranges = mergeRanges(append(sv.Ranges, m.Range))
		sv.Number++
	}
	s.notifyLocked()
	return nil
}

// GetMigration returns a migration's state.
func (s *Store) GetMigration(id uint64) (MigrationState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.migrations[id]
	if !ok {
		return MigrationState{}, ErrUnknownMigration
	}
	return *m, nil
}

// PendingMigrationsFor returns migrations involving server whose dependency
// has not been collected (used by recovery, §3.3.1).
func (s *Store) PendingMigrationsFor(server string) []MigrationState {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []MigrationState
	for _, m := range s.migrations {
		if (m.Source == server || m.Target == server) && !m.Complete() && !m.Cancelled {
			out = append(out, *m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CollectMigration removes a completed (or cancelled) migration dependency.
func (s *Store) CollectMigration(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.migrations[id]
	if !ok {
		return ErrUnknownMigration
	}
	if !m.Complete() && !m.Cancelled {
		return fmt.Errorf("metadata: migration %d still in flight", id)
	}
	delete(s.migrations, id)
	s.notifyLocked()
	return nil
}

// Migrations returns every uncollected migration record (in-flight,
// complete-but-uncollected, and cancelled), sorted by ID. Remote providers
// mirror this list so migration state is observable across processes.
func (s *Store) Migrations() []MigrationState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]MigrationState, 0, len(s.migrations))
	for _, m := range s.migrations {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Revision returns a counter that increases with every metadata change.
// Pollers (the remote provider's watch loop) compare revisions to detect
// staleness without diffing whole snapshots.
func (s *Store) Revision() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revision
}

// Watch returns a channel that receives a token after every metadata
// change; servers and clients use it to refresh cached views lazily.
func (s *Store) Watch() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan struct{}, 1)
	s.watchers = append(s.watchers, ch)
	return ch
}

func (s *Store) notifyLocked() {
	s.revision++
	for _, ch := range s.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// carve removes rng from ranges; ok is false when rng is not fully covered
// by a single owned range.
func carve(ranges []HashRange, rng HashRange) ([]HashRange, bool) {
	for i, r := range ranges {
		if rng.Start >= r.Start && rng.End <= r.End {
			out := append([]HashRange(nil), ranges[:i]...)
			if r.Start < rng.Start {
				out = append(out, HashRange{r.Start, rng.Start})
			}
			if rng.End < r.End {
				out = append(out, HashRange{rng.End, r.End})
			}
			out = append(out, ranges[i+1:]...)
			return out, true
		}
	}
	return ranges, false
}

// mergeRanges sorts and coalesces adjacent/overlapping ranges.
func mergeRanges(ranges []HashRange) []HashRange {
	if len(ranges) <= 1 {
		return ranges
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].Start < ranges[j].Start })
	out := ranges[:1]
	for _, r := range ranges[1:] {
		last := &out[len(out)-1]
		if r.Start <= last.End {
			if r.End > last.End {
				last.End = r.End
			}
			continue
		}
		out = append(out, r)
	}
	return out
}
