package metadata

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCancelMigrationEdgeCases pins the cancellation contract (§3.3.1):
// unknown migrations are reported, cancellation is idempotent, a migration
// with both completion flags set can no longer be cancelled, and a
// partially-done migration still can.
func TestCancelMigrationEdgeCases(t *testing.T) {
	s := NewStore()
	s.RegisterServer("src", FullRange)
	s.RegisterServer("dst")

	if err := s.CancelMigration(99); !errors.Is(err, ErrUnknownMigration) {
		t.Fatalf("cancel of unknown migration: got %v", err)
	}

	rng := HashRange{Start: 1 << 62, End: 1 << 63}
	mig, _, _, err := s.StartMigration("src", "dst", rng)
	if err != nil {
		t.Fatal(err)
	}

	// One side done: still cancellable, and idempotently so.
	if err := s.MarkMigrationDone(mig.ID, "src"); err != nil {
		t.Fatal(err)
	}
	if err := s.CancelMigration(mig.ID); err != nil {
		t.Fatalf("cancel with one side done: %v", err)
	}
	if err := s.CancelMigration(mig.ID); err != nil {
		t.Fatalf("second cancel not idempotent: %v", err)
	}
	m, err := s.GetMigration(mig.ID)
	if err != nil || !m.Cancelled {
		t.Fatalf("migration not marked cancelled: %+v %v", m, err)
	}
	// Ownership is back with the source, both views bumped past the
	// migration's increments.
	owner, v, err := s.OwnerOf(rng.Start)
	if err != nil || owner != "src" {
		t.Fatalf("owner after cancel: %s %v", owner, err)
	}
	if v.Number != 3 { // register=1, migration=2, cancel=3
		t.Fatalf("source view after cancel = %d, want 3", v.Number)
	}

	// A collected cancelled migration disappears.
	if err := s.CollectMigration(mig.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetMigration(mig.ID); !errors.Is(err, ErrUnknownMigration) {
		t.Fatalf("collected migration still visible: %v", err)
	}

	// Fully-complete migrations refuse cancellation.
	mig2, _, _, err := s.StartMigration("src", "dst", HashRange{Start: 1, End: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.MarkMigrationDone(mig2.ID, "src")
	s.MarkMigrationDone(mig2.ID, "dst")
	if err := s.CancelMigration(mig2.ID); !errors.Is(err, ErrMigrationDone) {
		t.Fatalf("cancel of complete migration: got %v", err)
	}
}

// TestCancelAndRestoreUnderConcurrentReaders drives StartMigration /
// CancelMigration / RestoreServer mutations while reader goroutines hammer
// OwnerOf, Ownership, GetView, Migrations and Watch. Run under -race this
// pins the store's locking; the invariant checked throughout is that every
// hash always has exactly one owner (cancellation atomically returns the
// range, so no reader may ever observe it unowned).
func TestCancelAndRestoreUnderConcurrentReaders(t *testing.T) {
	s := NewStore()
	s.RegisterServer("src", FullRange)
	s.RegisterServer("dst")
	s.SetServerAddr("src", "src-addr")
	s.SetServerAddr("dst", "dst-addr")

	var stop atomic.Bool
	var wg sync.WaitGroup
	probe := []uint64{0, 1 << 61, 1 << 62, 1<<62 + 1<<61, ^uint64(0) - 1}

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			watch := s.Watch()
			for !stop.Load() {
				for _, h := range probe {
					owner, v, err := s.OwnerOf(h)
					if err != nil {
						t.Errorf("hash %#x unowned: %v", h, err)
						return
					}
					if !v.Owns(h) {
						t.Errorf("owner %s view does not cover %#x", owner, h)
						return
					}
				}
				own := s.Ownership()
				if len(own) != 2 {
					t.Errorf("ownership has %d servers", len(own))
					return
				}
				s.Migrations()
				s.GetView("src")
				s.Revision()
				select {
				case <-watch:
				default:
				}
			}
		}()
	}

	// Restorer: replays a stale view for dst; the store must keep the
	// higher-numbered current view (never resurrecting old ownership under
	// the readers).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			s.RestoreServer("dst", View{Number: 1})
		}
	}()

	rng := HashRange{Start: 1 << 62, End: 1 << 63}
	for i := 0; i < 300; i++ {
		mig, _, _, err := s.StartMigration("src", "dst", rng)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := s.CancelMigration(mig.ID); err != nil {
				t.Fatal(err)
			}
		} else {
			s.MarkMigrationDone(mig.ID, "src")
			s.MarkMigrationDone(mig.ID, "dst")
			// Undo by migrating back so the next round starts clean.
			back, _, _, err := s.StartMigration("dst", "src", rng)
			if err != nil {
				t.Fatal(err)
			}
			s.MarkMigrationDone(back.ID, "dst")
			s.MarkMigrationDone(back.ID, "src")
			s.CollectMigration(back.ID)
		}
		s.CollectMigration(mig.ID)
	}
	stop.Store(true)
	wg.Wait()
}

// TestRestoreServerKeepsNewerView pins the restore-vs-migration race: a
// recovered server replaying its checkpointed (older) view must not clobber
// ownership changes that happened while it was down.
func TestRestoreServerKeepsNewerView(t *testing.T) {
	s := NewStore()
	s.RegisterServer("a", FullRange)
	s.RegisterServer("b")
	rng := HashRange{Start: 1 << 63, End: ^uint64(0)}
	checkpointed, _ := s.GetView("a") // view a would have durably saved
	if _, _, _, err := s.StartMigration("a", "b", rng); err != nil {
		t.Fatal(err)
	}
	// "a" restarts and replays its stale checkpoint.
	got, err := s.RestoreServer("a", checkpointed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Number != 2 {
		t.Fatalf("restore returned view %d, want the current 2", got.Number)
	}
	if owner, _, err := s.OwnerOf(rng.Start); err != nil || owner != "b" {
		t.Fatalf("migrated range reverted to %q (%v), want b", owner, err)
	}
}
