package metadata

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Primary liveness leases: the split-brain fence for failover under
// partitions. A standby's silence detector cannot distinguish "primary
// died" from "the primary⇹standby link is cut while the primary still
// serves clients". The store arbitrates: a primary that can reach the
// metadata service renews a short lease here, and PromoteReplica refuses
// promotion while an unexpired lease is held — so a partitioned-but-alive
// primary keeps its identity, and promotion happens only once the primary
// is dead OR itself cut off from metadata long enough for the lease to
// lapse (at which point it has stopped releasing acknowledgements, see
// core's detach-confirmation protocol, so no acked write can be lost).
//
// Leases are keyed by (server id, addr): promotion repoints the id's
// address, so a deposed primary's next renewal fails with ErrDeposed and
// the old incarnation learns it must stop serving. Servers that never
// renew a lease never create one, and promotion for them behaves exactly
// as before this fence existed.

// ErrPrimaryAlive refuses a promotion while the primary's liveness lease
// is unexpired: the primary is partitioned from the standby, not dead.
var ErrPrimaryAlive = errors.New("metadata: primary lease still held")

type lease struct {
	addr   string
	expiry time.Time
}

// KeepAlive renews id's liveness lease from the holder at addr for ttl.
// A non-positive ttl releases the lease (clean shutdown: failover need not
// wait out the TTL). Renewal from an address other than id's registered
// one fails with ErrDeposed — the caller was superseded (promotion
// repointed the address) and must stop serving.
func (s *Store) KeepAlive(id, addr string, ttl time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.addrs[id]; ok && cur != addr {
		return fmt.Errorf("%w: %q is registered at %s, not %s", ErrDeposed, id, cur, addr)
	}
	if s.leases == nil {
		s.leases = make(map[string]lease)
	}
	if ttl <= 0 {
		if l, ok := s.leases[id]; ok && l.addr == addr {
			delete(s.leases, id)
		}
		return nil
	}
	s.leases[id] = lease{addr: addr, expiry: time.Now().Add(ttl)}
	return nil
}

// leaseBlocksPromotionLocked reports whether an unexpired lease held by
// someone other than the candidate at addr fences off id's promotion.
func (s *Store) leaseBlocksPromotionLocked(id, addr string) (lease, bool) {
	l, ok := s.leases[id]
	if !ok || l.addr == addr || time.Now().After(l.expiry) {
		return lease{}, false
	}
	return l, true
}

// PromotedServers returns the ids whose replica was promoted and whose
// deposed former primary has not restarted, sorted. The balancer uses this
// to find primaries left running without a standby (re-replication).
func (s *Store) PromotedServers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.promoted))
	for id := range s.promoted {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
