package metadata

import "time"

// Provider is the metadata-access surface servers, clients and the CLI
// program against. The in-process *Store is the canonical implementation
// (and the state of record: exactly one Store backs a deployment); the
// remote provider in internal/ctlplane implements the same interface over
// MsgMeta* RPCs against a designated metadata endpoint, so out-of-process
// participants observe the same live ownership views.
//
// Semantics are those documented on Store: linearizable updates, atomic
// multi-key transitions (StartMigration), client-visible reads. Remote
// implementations forward every mutation to the single backing Store, which
// is where linearization happens.
type Provider interface {
	// Addressing.
	SetServerAddr(id, addr string)
	ServerAddr(id string) (string, error)

	// Ownership views.
	RegisterServer(id string, ranges ...HashRange) View
	RestoreServer(id string, v View) (View, error)
	GetView(id string) (View, error)
	Servers() []string
	OwnerOf(h uint64) (string, View, error)
	Ownership() map[string]View
	RetireServer(id string) error

	// Primary→backup replication (replica.go) and the primary liveness
	// lease fence (lease.go).
	SetReplica(primaryID, addr string) error
	MarkReplicaSynced(primaryID, addr string) error
	ClearReplica(primaryID, addr string) error
	PromoteReplica(primaryID, addr string) (View, error)
	Replicas() map[string]ReplicaState
	KeepAlive(id, addr string, ttl time.Duration) error
	PromotedServers() []string

	// Migration dependencies (§3.3.1).
	StartMigration(source, target string, rng HashRange) (MigrationState, View, View, error)
	MarkMigrationDone(id uint64, server string) error
	CancelMigration(id uint64) error
	GetMigration(id uint64) (MigrationState, error)
	PendingMigrationsFor(server string) []MigrationState
	Migrations() []MigrationState
	CollectMigration(id uint64) error

	// Change observation. Revision is a counter bumped by every mutation
	// (remote implementations poll it to detect staleness); Watch returns a
	// channel that receives a token after every observed change.
	Revision() uint64
	Watch() <-chan struct{}
}

var _ Provider = (*Store)(nil)
