// Command apigen prints a package's exported API surface as a deterministic
// text listing: one entry per exported constant, variable, type, function
// and method, with doc comments and function bodies stripped, sorted
// lexically. The output is stable across Go versions (it depends only on
// go/printer's formatting of declarations), which makes it suitable as a
// checked-in golden file — CI regenerates it and fails on any uncommitted
// public-API change.
//
// Usage: apigen <package-dir>
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: apigen <package-dir>")
		os.Exit(2)
	}
	entries, err := surface(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "apigen:", err)
		os.Exit(1)
	}
	for _, e := range entries {
		fmt.Println(e)
	}
}

func surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				entries = append(entries, declEntries(fset, decl)...)
			}
		}
	}
	sort.Strings(entries)
	return entries, nil
}

// declEntries renders the exported parts of one top-level declaration.
func declEntries(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !exportedFunc(d) {
			return nil
		}
		fn := *d
		fn.Doc, fn.Body = nil, nil
		return []string{render(fset, &fn)}
	case *ast.GenDecl:
		if d.Tok == token.IMPORT {
			return nil
		}
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				ts := *s
				ts.Doc, ts.Comment = nil, nil
				ts.Type = exportedType(ts.Type)
				out = append(out, "type "+render(fset, &ts))
			case *ast.ValueSpec:
				vs := exportedValues(s)
				if vs == nil {
					continue
				}
				out = append(out, d.Tok.String()+" "+render(fset, vs))
			}
		}
		return out
	}
	return nil
}

// exportedFunc reports whether fn is an exported function or an exported
// method on an exported receiver type.
func exportedFunc(fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return false
}

// exportedType strips unexported members from struct and interface types —
// they are implementation detail, not API, and listing them would churn the
// golden file on private refactors.
func exportedType(t ast.Expr) ast.Expr {
	switch tt := t.(type) {
	case *ast.StructType:
		out := *tt
		out.Fields = exportedFields(tt.Fields)
		return &out
	case *ast.InterfaceType:
		out := *tt
		out.Methods = exportedFields(tt.Methods)
		return &out
	}
	return t
}

func exportedFields(fl *ast.FieldList) *ast.FieldList {
	if fl == nil {
		return nil
	}
	out := &ast.FieldList{}
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			out.List = append(out.List, f) // embedded type / interface embed
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			continue
		}
		nf := *f
		nf.Names, nf.Doc, nf.Comment = names, nil, nil
		out.List = append(out.List, &nf)
	}
	return out
}

// exportedValues strips unexported names from a const/var spec; nil when
// nothing exported remains. Values are dropped (only names and types are
// API), except for single-name specs whose type is inferred from the value —
// there the value is the only signature available, so it is kept.
func exportedValues(s *ast.ValueSpec) *ast.ValueSpec {
	var names []*ast.Ident
	for _, n := range s.Names {
		if n.IsExported() {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil
	}
	out := &ast.ValueSpec{Names: names, Type: s.Type}
	if s.Type == nil && len(s.Names) == 1 && len(s.Values) == 1 {
		out.Values = s.Values
	}
	return out
}

func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 4}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<!render error: %v>", err)
	}
	// Collapse to one line per entry so the golden file diffs cleanly.
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}
