package main

import (
	"os"
	"strings"
	"testing"
)

// TestGoldenSurfaceUpToDate regenerates the public shadowfax API surface and
// compares it against the checked-in golden file. A mismatch means the
// public API changed without updating the snapshot:
//
//	go run ./internal/tools/apigen ./shadowfax > api/shadowfax.txt
func TestGoldenSurfaceUpToDate(t *testing.T) {
	entries, err := surface("../../../shadowfax")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(entries, "\n") + "\n"
	golden, err := os.ReadFile("../../../api/shadowfax.txt")
	if err != nil {
		t.Fatalf("reading golden surface: %v", err)
	}
	if got != string(golden) {
		gotLines := make(map[string]bool, len(entries))
		for _, e := range entries {
			gotLines[e] = true
		}
		for _, e := range strings.Split(strings.TrimRight(string(golden), "\n"), "\n") {
			if !gotLines[e] {
				t.Errorf("removed from surface: %s", e)
			}
		}
		goldenLines := make(map[string]bool)
		for _, e := range strings.Split(strings.TrimRight(string(golden), "\n"), "\n") {
			goldenLines[e] = true
		}
		for _, e := range entries {
			if !goldenLines[e] {
				t.Errorf("added to surface: %s", e)
			}
		}
		t.Fatal("public API surface changed; regenerate api/shadowfax.txt (see test doc)")
	}
}
