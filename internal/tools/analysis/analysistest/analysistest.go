// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library only.
//
// Fixtures live under <testdata>/src/<pkg>/ as one flat package each (they
// may import the standard library; _test.go-named files join the package, so
// fixtures can model fuzz corpora and round-trip tests). An expectation is a
// trailing comment of the form
//
//	// want `regexp`
//	// want "regexp"
//
// on the line the diagnostic must land on. Lines carrying a
// //shadowfax:ignore directive exercise the suppression path: the harness
// applies the same suppression filter as the shadowfax-vet driver, so a
// suppressed site is written with the directive and *no* want comment.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/tools/analysis"
)

// Run loads each fixture package under testdata/src and applies a: every
// diagnostic must match a want expectation on its line, and every want
// expectation must be matched by some diagnostic.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, filepath.Join(testdata, "src", pkg), a)
		})
	}
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}

	wants := collectWants(t, pkg)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Pkg,
		TypesInfo:  pkg.TypesInfo,
		TypesSizes: pkg.Sizes,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	diags = analysis.Suppress(pkg.Fset, pkg.Files, a.Name, diags)

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// collectWants parses `// want "re"` expectations from the fixture comments.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				arg := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				pat, err := unquoteWant(arg)
				if err != nil {
					t.Fatalf("%s: %v", pkg.Fset.Position(c.Pos()), err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp: %v", pkg.Fset.Position(c.Pos()), err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

func unquoteWant(arg string) (string, error) {
	if len(arg) >= 2 {
		if q := arg[0]; (q == '"' || q == '`') && arg[len(arg)-1] == q {
			return arg[1 : len(arg)-1], nil
		}
	}
	return "", fmt.Errorf("want expectation must be quoted with \" or `: %s", arg)
}
