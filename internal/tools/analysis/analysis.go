// Package analysis is a self-contained, standard-library-only subset of the
// golang.org/x/tools/go/analysis framework: enough Analyzer/Pass/Diagnostic
// surface for this repository's project-specific vet checks
// (internal/tools/analyzers), a module loader built on `go list` + go/types,
// and the //shadowfax:* annotation grammar the analyzers share.
//
// The x/tools module is deliberately not imported: the analyzers must build
// in a hermetic environment with nothing but the Go toolchain, and the subset
// actually needed — typed ASTs, static call resolution, file-targeted
// suppression — is small. The API mirrors go/analysis closely enough that
// migrating to the real framework later is mechanical.
//
// # Annotation grammar
//
//	//shadowfax:epoch        (func doc)  function runs inside an epoch-
//	                                     protected section / dispatcher loop;
//	                                     epochblock walks its call tree
//	//shadowfax:noalloc      (func doc)  function is on the zero-allocation
//	                                     hot path; hotpathalloc flags
//	                                     allocation sites in its call tree
//	//shadowfax:epochsafe    (field doc) this mutex is sanctioned for epoch
//	                                     sections (bounded hold, never held
//	                                     across blocking operations)
//	//shadowfax:ignore <analyzer> <reason>
//	                                     suppress <analyzer>'s diagnostics on
//	                                     this line (or the next line, when the
//	                                     comment stands alone); the reason is
//	                                     mandatory and checked
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //shadowfax:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass provides one analyzer with one type-checked package. Unlike the
// x/tools Pass, Files includes the package's in-package _test.go files
// (wireguard cross-references frame types against their fuzz corpus and
// round-trip tests); analyzers that only care about shipped code can skip
// test files via IsTestFile.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes

	// Report records one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether f is a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	tf := p.Fset.File(f.Pos())
	return tf != nil && strings.HasSuffix(tf.Name(), "_test.go")
}

// Annotation markers (see the package comment for the grammar).
const (
	MarkerEpoch     = "shadowfax:epoch"
	MarkerNoAlloc   = "shadowfax:noalloc"
	MarkerEpochSafe = "shadowfax:epochsafe"
	markerIgnore    = "shadowfax:ignore"
)

// HasMarker reports whether the comment group carries the //shadowfax:<name>
// directive. Directives are whole-comment tokens: `//shadowfax:epoch` matches,
// prose mentioning the marker does not.
func HasMarker(groups []*ast.CommentGroup, marker string) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			fields := strings.Fields(text)
			if len(fields) > 0 && fields[0] == marker {
				return true
			}
		}
	}
	return false
}

// FuncDecls returns every declared function and method in the pass's files,
// keyed by its types.Func.
func FuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// StaticCallee resolves the target of call when it is statically known: a
// package-level function, or a method called on a concrete (non-interface)
// receiver. Calls through interfaces and function values return nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if _, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return nil // dynamic dispatch
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified reference: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// FuncOrigin returns fn with any type-parameter instantiation stripped, so
// generic instantiations map back to their declaration.
func FuncOrigin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// IsMethodOn reports whether fn is the method pkgpath.(recv).name. The
// package is matched by path-boundary suffix ("epoch" matches both
// "repro/internal/epoch" and a fixture's "epoch", but "sync" never matches
// "sync/atomic").
func IsMethodOn(fn *types.Func, pkgSuffix, recv, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != pkgSuffix && !strings.HasSuffix(path, "/"+pkgSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == recv
}

// IsPkgFunc reports whether fn is the package-level function pkgpath.name
// (exact package path match).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
