package analysis

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
)

// exportTable maps import paths to compiled export-data files, resolved via
// `go list -export`. The table for the standard library is loaded once per
// process (one `go list -export std` — served from the build cache after the
// first ever run) and shared by every importer; non-std paths fall back to a
// per-path lookup.
type exportTable struct {
	mu    sync.Mutex
	files map[string]string
}

var stdExports = sync.OnceValues(func() (map[string]string, error) {
	out, err := exec.Command("go", "list", "-export",
		"-f", "{{.ImportPath}}\t{{.Export}}", "std").Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export std: %w (%s)", err, exitDetail(err))
	}
	files := make(map[string]string)
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if ok && file != "" {
			files[path] = file
		}
	}
	return files, nil
})

func exitDetail(err error) []byte {
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.Stderr
	}
	return nil
}

func (t *exportTable) lookup(path string) (io.ReadCloser, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.files == nil {
		std, err := stdExports()
		if err != nil {
			return nil, err
		}
		t.files = make(map[string]string, len(std))
		for k, v := range std {
			t.files[k] = v
		}
	}
	file, ok := t.files[path]
	if !ok {
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %w (%s)", path, err, exitDetail(err))
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		t.files[path] = file
	}
	return os.Open(file)
}

// ExportImporter returns a types.Importer that resolves packages from
// compiled export data located via `go list -export` — the standard library
// and any other already-buildable package, with no dependency on x/tools.
func ExportImporter(fset *token.FileSet) types.Importer {
	t := &exportTable{}
	return importer.ForCompiler(fset, "gc", t.lookup)
}

// ConfigImporter returns a types.Importer that resolves imports from an
// explicit path→export-file table — the ImportMap/PackageFile fields cmd/go
// hands a -vettool in its unit config.
func ConfigImporter(fset *token.FileSet, compiler string, importMap, packageFile map[string]string) types.Importer {
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := importMap[path]; ok {
			path = canon
		}
		file, ok := packageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("vet config carries no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, compiler, lookup)
}

// moduleImporter serves module-local packages from source-typechecked
// results and everything else from export data.
type moduleImporter struct {
	src map[string]*types.Package
	gc  types.Importer
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.src[path]; ok {
		return p, nil
	}
	return im.gc.Import(path)
}
