package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An ignoreDirective is one parsed //shadowfax:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
	line     int // line the comment is on
}

// parseIgnores collects every //shadowfax:ignore directive in the files.
func parseIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				fields := strings.Fields(text)
				if len(fields) == 0 || fields[0] != markerIgnore {
					continue
				}
				d := &ignoreDirective{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
				if len(fields) > 1 {
					d.analyzer = fields[1]
				}
				if len(fields) > 2 {
					d.reason = strings.Join(fields[2:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// Suppress filters out diagnostics covered by a //shadowfax:ignore directive
// naming analyzer. A directive covers the line it is on and the line directly
// below it, so it works both trailing the flagged statement and on its own
// line above it. Directives require a reason; reasonless ones suppress
// nothing (and CheckDirectives flags them). It returns the surviving
// diagnostics.
func Suppress(fset *token.FileSet, files []*ast.File, analyzer string, diags []Diagnostic) []Diagnostic {
	directives := parseIgnores(fset, files)
	covered := map[int]bool{}
	for _, d := range directives {
		if d.analyzer != analyzer || d.reason == "" {
			continue
		}
		covered[d.line] = true
		covered[d.line+1] = true
	}
	var kept []Diagnostic
	for _, diag := range diags {
		if !covered[fset.Position(diag.Pos).Line] {
			kept = append(kept, diag)
		}
	}
	return kept
}

// CheckDirectives validates every //shadowfax:ignore directive in the files:
// the analyzer must be one of known, and a reason is mandatory. Malformed
// directives come back as diagnostics so a bad suppression fails vet instead
// of silently suppressing nothing.
func CheckDirectives(fset *token.FileSet, files []*ast.File, known []string) []Diagnostic {
	isKnown := map[string]bool{}
	for _, k := range known {
		isKnown[k] = true
	}
	var out []Diagnostic
	for _, d := range parseIgnores(fset, files) {
		switch {
		case d.analyzer == "":
			out = append(out, Diagnostic{Pos: d.pos,
				Message: "malformed directive: want //shadowfax:ignore <analyzer> <reason>"})
		case !isKnown[d.analyzer]:
			out = append(out, Diagnostic{Pos: d.pos,
				Message: "unknown analyzer " + strconvQuote(d.analyzer) +
					" in //shadowfax:ignore (known: " + strings.Join(known, ", ") + ")"})
		case d.reason == "":
			out = append(out, Diagnostic{Pos: d.pos,
				Message: "//shadowfax:ignore " + d.analyzer +
					" needs a reason: //shadowfax:ignore <analyzer> <reason>"})
		}
	}
	return out
}

func strconvQuote(s string) string { return "\"" + s + "\"" }

// A Finding is one post-suppression diagnostic with its resolved position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// RunAnalyzers applies each analyzer to each package, filters suppressed
// diagnostics, validates ignore directives, and returns findings in file,
// line order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Pkg,
				TypesInfo:  pkg.TypesInfo,
				TypesSizes: pkg.Sizes,
				Report:     func(d Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, err
			}
			for _, d := range Suppress(pkg.Fset, pkg.Files, a.Name, diags) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
		for _, d := range CheckDirectives(pkg.Fset, pkg.Files, names) {
			findings = append(findings, Finding{
				Analyzer: "directives",
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}
