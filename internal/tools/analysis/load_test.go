package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot walks up from this file to the directory holding go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

func TestLoadModulePackage(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "repro/internal/wire")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "repro/internal/wire" {
		t.Fatalf("ImportPath = %q", p.ImportPath)
	}
	if p.Pkg.Scope().Lookup("MsgType") == nil {
		t.Fatal("wire.MsgType not in package scope")
	}
	// The analysis variant includes in-package test files (wireguard
	// cross-references the fuzz corpus and round-trip tests).
	var hasTestFile bool
	for _, f := range p.Files {
		name := p.Fset.File(f.Pos()).Name()
		if strings.HasSuffix(name, "_test.go") {
			hasTestFile = true
		}
	}
	if !hasTestFile {
		t.Fatal("loaded package lacks its in-package test files")
	}
	if p.Pkg.Scope().Lookup("fuzzSeeds") == nil {
		t.Fatal("test-only fuzzSeeds not type-checked into the analysis variant")
	}
}

func TestLoadTransitivelyTypechecksModuleDeps(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "repro/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	// core imports wire, faster, hlog, ... — all must have resolved from
	// source without export data for the module.
	p := pkgs[0]
	found := false
	for _, imp := range p.Pkg.Imports() {
		if imp.Path() == "repro/internal/wire" {
			found = true
		}
	}
	if !found {
		t.Fatal("core does not import wire in the loaded type graph")
	}
}

func TestSuppressCoversDirectiveAndNextLine(t *testing.T) {
	src := `package x

//shadowfax:ignore epochblock bounded critical section
var a int

var b int

var c int //shadowfax:ignore epochblock trailing form

//shadowfax:ignore epochblock
var d int
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{file}
	at := func(line int) token.Pos { return fset.File(file.Pos()).LineStart(line) }
	diags := []Diagnostic{
		{Pos: at(4), Message: "on var a (suppressed: directive above)"},
		{Pos: at(6), Message: "on var b (kept)"},
		{Pos: at(8), Message: "on var c (suppressed: trailing directive)"},
		{Pos: at(11), Message: "on var d (kept: directive has no reason)"},
	}
	kept := Suppress(fset, files, "epochblock", diags)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %v", len(kept), kept)
	}
	for _, d := range kept {
		if !strings.Contains(d.Message, "kept") {
			t.Errorf("wrong diagnostic survived: %s", d.Message)
		}
	}
	// The reasonless directive must itself be flagged.
	errs := CheckDirectives(fset, files, []string{"epochblock"})
	if len(errs) != 1 || !strings.Contains(errs[0].Message, "needs a reason") {
		t.Fatalf("CheckDirectives = %v, want one needs-a-reason finding", errs)
	}
	// Suppressing with a bogus analyzer name is flagged too (all three
	// directives name epochblock, unknown here).
	errs = CheckDirectives(fset, files, []string{"other"})
	if len(errs) != 3 {
		t.Fatalf("CheckDirectives with unknown analyzer = %d findings, want 3", len(errs))
	}
}
