package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked module package ready for analysis.
// Files and Pkg cover the package's own sources plus its in-package test
// files (the test variant go vet would analyze); dependencies are
// type-checked from their non-test sources only.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	Sizes      types.Sizes

	goFiles     []string
	testGoFiles []string
	imports     []string
	target      bool
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath  string
	Dir         string
	Standard    bool
	DepOnly     bool
	GoFiles     []string
	TestGoFiles []string
	Imports     []string
	TestImports []string
	Error       *struct{ Err string }
}

// Load lists patterns in dir with the go tool and type-checks every matched
// module package (with its in-package test files) from source, importing
// out-of-module dependencies from compiled export data. It returns the
// matched packages in import-path order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	modPath, err := goCmd(dir, "list", "-m", "-f", "{{.Path}}")
	if err != nil {
		return nil, err
	}
	modPath = strings.TrimSpace(modPath)

	args := append([]string{"list", "-deps",
		"-json=ImportPath,Dir,Standard,DepOnly,GoFiles,TestGoFiles,Imports,TestImports,Error"},
		patterns...)
	out, err := goCmd(dir, args...)
	if err != nil {
		return nil, err
	}
	listed := map[string]*listedPackage{}
	dec := json.NewDecoder(strings.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		listed[lp.ImportPath] = lp
	}

	inModule := func(path string) bool {
		return path == modPath || strings.HasPrefix(path, modPath+"/")
	}

	// In-package test files may import module packages the patterns missed;
	// pull them (and their deps) into the source set.
	var missing []string
	for _, lp := range listed {
		if lp.Standard || !inModule(lp.ImportPath) || lp.DepOnly {
			continue
		}
		for _, imp := range lp.TestImports {
			if inModule(imp) && listed[imp] == nil {
				missing = append(missing, imp)
			}
		}
	}
	if len(missing) > 0 {
		out, err := goCmd(dir, append([]string{"list", "-deps",
			"-json=ImportPath,Dir,Standard,DepOnly,GoFiles,TestGoFiles,Imports,TestImports,Error"},
			missing...)...)
		if err != nil {
			return nil, err
		}
		dec := json.NewDecoder(strings.NewReader(out))
		for {
			lp := new(listedPackage)
			if err := dec.Decode(lp); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("go list: decoding output: %w", err)
			}
			if listed[lp.ImportPath] == nil {
				lp.DepOnly = true
				listed[lp.ImportPath] = lp
			}
		}
	}

	fset := token.NewFileSet()
	pkgs := map[string]*Package{}
	for path, lp := range listed {
		if lp.Standard || !inModule(path) {
			continue
		}
		var mod []string
		for _, imp := range lp.Imports {
			if inModule(imp) {
				mod = append(mod, imp)
			}
		}
		for _, imp := range lp.TestImports {
			if inModule(imp) {
				mod = append(mod, imp)
			}
		}
		pkgs[path] = &Package{
			ImportPath:  path,
			Dir:         lp.Dir,
			Fset:        fset,
			goFiles:     absAll(lp.Dir, lp.GoFiles),
			testGoFiles: absAll(lp.Dir, lp.TestGoFiles),
			imports:     mod,
			target:      !lp.DepOnly,
		}
	}

	order, err := topoSort(pkgs)
	if err != nil {
		return nil, err
	}

	im := &moduleImporter{src: map[string]*types.Package{}, gc: ExportImporter(fset)}
	sizes := sizesForEnv(dir)

	// Pass 1: non-test sources, dependency order, so imports resolve to
	// source-checked packages.
	base := map[string]*types.Package{}
	for _, path := range order {
		p := pkgs[path]
		if len(p.goFiles) == 0 {
			continue // test-only package (e.g. the repo root)
		}
		tp, _, _, err := typecheck(fset, path, p.goFiles, im, sizes)
		if err != nil {
			return nil, err
		}
		base[path] = tp
		im.src[path] = tp
	}

	// Pass 2: re-check each target with its in-package test files for
	// analysis. Imports still resolve to the pass-1 packages, mirroring how
	// the go tool builds test variants.
	var result []*Package
	for _, path := range order {
		p := pkgs[path]
		if !p.target {
			continue
		}
		files := append(append([]string{}, p.goFiles...), p.testGoFiles...)
		if len(files) == 0 {
			continue
		}
		tp, syntax, info, err := typecheck(fset, path, files, im, sizes)
		if err != nil {
			return nil, err
		}
		p.Pkg = tp
		p.Files = syntax
		p.TypesInfo = info
		p.Sizes = sizes
		result = append(result, p)
	}
	sort.Slice(result, func(i, j int) bool { return result[i].ImportPath < result[j].ImportPath })
	return result, nil
}

// LoadDir parses and type-checks the single package rooted at dir (all .go
// files, including _test.go files in the same package), resolving imports
// from export data. It backs the analysistest harness, where fixtures are
// flat packages importing only the standard library.
func LoadDir(dir string) (*Package, error) {
	fset := token.NewFileSet()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(paths)
	im := ExportImporter(fset)
	tp, syntax, info, err := typecheck(fset, dir, paths, im, sizesForEnv(dir))
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: tp.Path(),
		Dir:        dir,
		Fset:       fset,
		Files:      syntax,
		Pkg:        tp,
		TypesInfo:  info,
		Sizes:      sizesForEnv(dir),
	}, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// TypecheckFiles parses and type-checks one package unit from an explicit
// file list — the entry point external drivers (shadowfax-vet's unitchecker
// mode) use with a ConfigImporter.
func TypecheckFiles(fset *token.FileSet, path string, files []string, im types.Importer, sizes types.Sizes) (*types.Package, []*ast.File, *types.Info, error) {
	return typecheck(fset, path, files, im, sizes)
}

func typecheck(fset *token.FileSet, path string, files []string, im types.Importer, sizes types.Sizes) (*types.Package, []*ast.File, *types.Info, error) {
	var parsed []*ast.File
	for _, file := range files {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		parsed = append(parsed, f)
	}
	// One analysis unit is one package: prefer the non-test package name and
	// drop files from foreign (package foo_test) variants.
	pkgName := parsed[0].Name.Name
	for _, f := range parsed {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			pkgName = f.Name.Name
			break
		}
	}
	var syntax []*ast.File
	for _, f := range parsed {
		if f.Name.Name == pkgName {
			syntax = append(syntax, f)
		}
	}
	info := NewTypesInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: im,
		Sizes:    sizes,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tp, _ := conf.Check(path, fset, syntax, info)
	if len(typeErrs) > 0 {
		var b bytes.Buffer
		for i, e := range typeErrs {
			if i == 8 {
				fmt.Fprintf(&b, "\n\t... and %d more", len(typeErrs)-i)
				break
			}
			fmt.Fprintf(&b, "\n\t%v", e)
		}
		return nil, nil, nil, fmt.Errorf("type-checking %s:%s", path, b.String())
	}
	return tp, syntax, info, nil
}

func sizesForEnv(dir string) types.Sizes {
	arch := "amd64"
	if out, err := goCmd(dir, "env", "GOARCH"); err == nil {
		if a := strings.TrimSpace(out); a != "" {
			arch = a
		}
	}
	if s := types.SizesFor("gc", arch); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

func goCmd(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, stderr.Bytes())
	}
	return stdout.String(), nil
}

func absAll(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

func topoSort(pkgs map[string]*Package) ([]string, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	mark := map[string]int{}
	var order []string
	var visit func(string) error
	visit = func(path string) error {
		switch mark[path] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("import cycle through %s", path)
		}
		mark[path] = grey
		p := pkgs[path]
		if p != nil {
			for _, imp := range p.imports {
				if _, ok := pkgs[imp]; ok && imp != path {
					if err := visit(imp); err != nil {
						return err
					}
				}
			}
		}
		mark[path] = black
		order = append(order, path)
		return nil
	}
	var all []string
	for path := range pkgs {
		all = append(all, path)
	}
	sort.Strings(all)
	for _, path := range all {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}
