// Package suite registers the project's analyzers in one place, so the
// shadowfax-vet command and any future driver agree on the set.
package suite

import (
	"repro/internal/tools/analysis"
	"repro/internal/tools/analyzers/atomicpad"
	"repro/internal/tools/analyzers/epochblock"
	"repro/internal/tools/analyzers/hotpathalloc"
	"repro/internal/tools/analyzers/wireguard"
)

// Analyzers returns the full shadowfax analyzer suite, in name order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicpad.Analyzer,
		epochblock.Analyzer,
		hotpathalloc.Analyzer,
		wireguard.Analyzer,
	}
}
