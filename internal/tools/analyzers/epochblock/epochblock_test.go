package epochblock_test

import (
	"testing"

	"repro/internal/tools/analysis/analysistest"
	"repro/internal/tools/analyzers/epochblock"
)

func TestEpochBlock(t *testing.T) {
	analysistest.Run(t, "testdata", epochblock.Analyzer, "epochfix")
}
