// Package epochfix is the epochblock golden fixture: one positive and one
// suppressed case per diagnostic category, plus the allowlist and
// trigger-action forms.
package epochfix

import (
	"sync"
	"time"

	"repro/internal/epoch"
)

type state struct {
	mu sync.Mutex
	// dispatchMu is held for a few loads only and never across a blocking
	// operation.
	//shadowfax:epochsafe
	dispatchMu sync.Mutex
	rw         sync.RWMutex
	wg         sync.WaitGroup
	work       chan int
	em         *epoch.Manager
}

//shadowfax:epoch
func (s *state) dispatch() {
	s.mu.Lock() // want `acquires a sync.Mutex`
	s.dispatchMu.Lock()
	s.rw.RLock()                 // want `acquires a sync.RWMutex`
	s.wg.Wait()                  // want `waits on a sync.WaitGroup`
	s.work <- 1                  // want `sends on a channel`
	<-s.work                     // want `receives from a channel`
	time.Sleep(time.Millisecond) // want `calls time.Sleep`
	for range s.work {           // want `ranges over a channel`
		break
	}
	select { // want `selects without a default case`
	case v := <-s.work:
		_ = v
	}
	// Non-blocking poll: a select with a default never parks the thread.
	select {
	case v := <-s.work:
		_ = v
	case s.work <- 2:
	default:
	}
	s.helper()
	go s.blockingElsewhere() // goroutines leave the epoch section: clean
}

// helper is reachable from dispatch; the chain shows up in the diagnostic.
func (s *state) helper() {
	s.mu.Lock() // want `via \(\*state\).helper.*acquires a sync.Mutex`
	s.mu.Lock() //shadowfax:ignore epochblock teardown handshake drains the in-flight pass
	//shadowfax:ignore epochblock bounded spin documented in the design note
	s.mu.Lock()
}

// blockingElsewhere is only ever spawned on its own goroutine.
func (s *state) blockingElsewhere() {
	s.mu.Lock()
	time.Sleep(time.Second)
}

// registerCut registers trigger actions: both closure and named-function
// forms run inside some thread's protected section.
func (s *state) registerCut() {
	s.em.BumpWithAction(func() {
		s.wg.Wait() // want `epoch trigger action.*waits on a sync.WaitGroup`
	})
	s.em.BumpWithAction(s.onCut)
}

func (s *state) onCut() {
	<-s.work // want `receives from a channel`
}

// notProtected has no annotation and is reachable from no root: silent.
func (s *state) notProtected() {
	s.mu.Lock()
	time.Sleep(time.Second)
	<-s.work
}
