// Package epochblock defines an analyzer enforcing the repository's
// never-block-in-an-epoch-section invariant at vet time.
//
// Dispatcher loops and epoch trigger actions run with an epoch guard held
// (internal/epoch): every registered thread must keep refreshing for global
// cuts — checkpoints, migration phase transitions, view changes — to drain.
// A dispatcher that parks on a mutex held across a slow operation stalls
// every cut in the process; that is exactly how the balancer deadlock (PR 5)
// happened, with dispatchers answering the balancer's own Stats RPCs while
// blocked on its lock. This analyzer is the static form of that lesson.
package epochblock

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/tools/analysis"
)

// Analyzer flags potentially blocking operations reachable from epoch-
// protected code.
var Analyzer = &analysis.Analyzer{
	Name: "epochblock",
	Doc: `reports blocking operations reachable from epoch-protected sections

Roots are functions annotated //shadowfax:epoch plus every function or
closure registered as an epoch trigger action via
(*epoch.Manager).BumpWithAction. The analyzer walks the static call graph
within the package from those roots and reports channel sends/receives,
selects without a default, ranges over channels, time.Sleep, sync
Mutex/RWMutex lock acquisition, WaitGroup/Cond waits, Once.Do, and a few
well-known blocking standard-library calls.

Locks that are provably dispatcher-safe (bounded hold, never held across a
blocking operation) are allowlisted by annotating the mutex *field*
//shadowfax:epochsafe. Individual sites are suppressed with
//shadowfax:ignore epochblock <reason>. Calls through interfaces, function
values, and into other packages are not followed: the annotation is the
cross-package contract — annotate the callee in its own package.`,
	Run: run,
}

// root is one entry point into epoch-protected execution.
type root struct {
	name string
	fn   *types.Func  // nil for closures
	lit  *ast.FuncLit // nil for declared functions
	body *ast.BlockStmt
}

func run(pass *analysis.Pass) (any, error) {
	decls := analysis.FuncDecls(pass)

	// Fields annotated //shadowfax:epochsafe: locks sanctioned for epoch
	// sections.
	safe := epochSafeFields(pass)

	var roots []root
	for fn, d := range decls {
		if d.Body != nil && analysis.HasMarker([]*ast.CommentGroup{d.Doc}, analysis.MarkerEpoch) {
			roots = append(roots, root{name: shortName(fn), fn: fn, body: d.Body})
		}
	}
	// Trigger actions: arguments to (*epoch.Manager).BumpWithAction run on
	// whichever registered thread crosses the cut last — inside its
	// protected section.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			callee := analysis.StaticCallee(pass.TypesInfo, call)
			if !analysis.IsMethodOn(callee, "epoch", "Manager", "BumpWithAction") {
				return true
			}
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.FuncLit:
				roots = append(roots, root{name: "epoch trigger action", lit: arg, body: arg.Body})
			case *ast.Ident, *ast.SelectorExpr:
				if fn := funcFor(pass.TypesInfo, arg); fn != nil {
					if d := decls[fn]; d != nil && d.Body != nil {
						roots = append(roots, root{name: shortName(fn) + " (epoch trigger action)", fn: fn, body: d.Body})
					}
				}
			}
			return true
		})
	}

	w := &walker{pass: pass, decls: decls, safe: safe,
		seenFns: map[*types.Func]bool{}, seenLits: map[*ast.FuncLit]bool{},
		reported: map[token.Pos]bool{}}
	for _, r := range roots {
		if r.fn != nil {
			if w.seenFns[r.fn] {
				continue
			}
			w.seenFns[r.fn] = true
		} else {
			if w.seenLits[r.lit] {
				continue
			}
			w.seenLits[r.lit] = true
		}
		w.walk(r.body, []string{r.name})
	}
	return nil, nil
}

type walker struct {
	pass     *analysis.Pass
	decls    map[*types.Func]*ast.FuncDecl
	safe     map[*types.Var]bool
	seenFns  map[*types.Func]bool
	seenLits map[*ast.FuncLit]bool
	reported map[token.Pos]bool
}

// walk scans one function body, reporting blocking sites and recursing into
// same-package static callees. chain is the call path from the root.
func (w *walker) walk(body ast.Node, chain []string) {
	// Channel operations that are comm clauses of a select are attributed to
	// the select itself: a select with a default never blocks, and one
	// without is reported once, at the select keyword.
	nonblocking := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				nonblocking[sel] = true
			}
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			nonblocking[cc.Comm] = true
			// The channel op itself sits inside the comm statement.
			switch s := cc.Comm.(type) {
			case *ast.SendStmt:
				nonblocking[s] = true
			case *ast.ExprStmt:
				nonblocking[ast.Unparen(s.X)] = true
			case *ast.AssignStmt:
				for _, rhs := range s.Rhs {
					nonblocking[ast.Unparen(rhs)] = true
				}
			}
		}
		return true
	})

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// A spawned goroutine is not epoch-protected; its body is out
			// of scope here.
			return false
		case *ast.SendStmt:
			if !nonblocking[n] {
				w.report(n.Arrow, chain, "sends on a channel")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonblocking[n] {
				w.report(n.OpPos, chain, "receives from a channel")
			}
		case *ast.SelectStmt:
			if !nonblocking[n] {
				w.report(n.Select, chain, "selects without a default case")
			}
		case *ast.RangeStmt:
			if t := w.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.report(n.For, chain, "ranges over a channel")
				}
			}
		case *ast.FuncLit:
			if w.seenLits[n] {
				return false
			}
			w.seenLits[n] = true
			// Closures invoked on this thread (sort callbacks, deferred
			// cleanups) stay in the section; walk them in place.
			w.walk(n.Body, chain)
			return false
		case *ast.CallExpr:
			w.checkCall(n, chain)
		}
		return true
	}
	ast.Inspect(body, visit)
}

func (w *walker) checkCall(call *ast.CallExpr, chain []string) {
	fn := analysis.FuncOrigin(analysis.StaticCallee(w.pass.TypesInfo, call))
	if fn == nil {
		return // dynamic dispatch: not followed (see Doc)
	}
	if what := blockingCall(fn); what != "" {
		if w.lockAllowlisted(fn, call) {
			return
		}
		w.report(call.Pos(), chain, what)
		return
	}
	if fn.Pkg() != w.pass.Pkg {
		return // cross-package: the annotation is the contract
	}
	d := w.decls[fn]
	if d == nil || d.Body == nil || w.seenFns[fn] {
		return
	}
	w.seenFns[fn] = true
	w.walk(d.Body, append(append([]string{}, chain...), shortName(fn)))
}

// lockAllowlisted reports whether call locks a mutex stored in a field
// annotated //shadowfax:epochsafe.
func (w *walker) lockAllowlisted(fn *types.Func, call *ast.CallExpr) bool {
	switch fn.Name() {
	case "Lock", "RLock", "TryLock":
	default:
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := w.pass.TypesInfo.Selections[recv]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return w.safe[v]
			}
		}
	case *ast.Ident:
		if v, ok := w.pass.TypesInfo.Uses[recv].(*types.Var); ok {
			return w.safe[v]
		}
	}
	return false
}

func (w *walker) report(pos token.Pos, chain []string, what string) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	where := "epoch section " + chain[0]
	if len(chain) > 1 {
		where += " (via " + strings.Join(chain[1:], " → ") + ")"
	}
	w.pass.Reportf(pos, "%s: %s; epoch-protected code must never block — restructure, "+
		"annotate the lock field //shadowfax:epochsafe, or suppress with "+
		"//shadowfax:ignore epochblock <reason>", where, what)
}

// blockingCall classifies fn as a known blocking operation, returning a
// human-readable description or "".
func blockingCall(fn *types.Func) string {
	switch {
	case analysis.IsPkgFunc(fn, "time", "Sleep"):
		return "calls time.Sleep"
	case analysis.IsMethodOn(fn, "sync", "Mutex", "Lock"):
		return "acquires a sync.Mutex"
	case analysis.IsMethodOn(fn, "sync", "RWMutex", "Lock"),
		analysis.IsMethodOn(fn, "sync", "RWMutex", "RLock"):
		return "acquires a sync.RWMutex"
	case analysis.IsMethodOn(fn, "sync", "WaitGroup", "Wait"):
		return "waits on a sync.WaitGroup"
	case analysis.IsMethodOn(fn, "sync", "Cond", "Wait"):
		return "waits on a sync.Cond"
	case analysis.IsMethodOn(fn, "sync", "Once", "Do"):
		return "calls sync.Once.Do (blocks until the first call returns)"
	case analysis.IsPkgFunc(fn, "net", "Dial"),
		analysis.IsPkgFunc(fn, "net", "DialTimeout"),
		analysis.IsPkgFunc(fn, "net", "Listen"):
		return "performs blocking network I/O (net." + fn.Name() + ")"
	case analysis.IsMethodOn(fn, "os/exec", "Cmd", "Run"),
		analysis.IsMethodOn(fn, "os/exec", "Cmd", "Wait"),
		analysis.IsMethodOn(fn, "os/exec", "Cmd", "Output"),
		analysis.IsMethodOn(fn, "os/exec", "Cmd", "CombinedOutput"):
		return "waits on a subprocess (exec.Cmd." + fn.Name() + ")"
	}
	return ""
}

// epochSafeFields collects struct fields annotated //shadowfax:epochsafe.
func epochSafeFields(pass *analysis.Pass) map[*types.Var]bool {
	safe := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				if !analysis.HasMarker([]*ast.CommentGroup{field.Doc, field.Comment}, analysis.MarkerEpochSafe) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						safe[v] = true
					}
				}
			}
			return true
		})
	}
	return safe
}

func funcFor(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// shortName renders fn as (*Recv).Name or Name.
func shortName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
		ptr = "*"
	}
	name := t.String()
	if named, ok := t.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return fmt.Sprintf("(%s%s).%s", ptr, name, fn.Name())
}
