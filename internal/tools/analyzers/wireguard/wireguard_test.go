package wireguard_test

import (
	"testing"

	"repro/internal/tools/analysis/analysistest"
	"repro/internal/tools/analyzers/wireguard"
)

func TestWireGuard(t *testing.T) {
	analysistest.Run(t, "testdata", wireguard.Analyzer, "wirefix")
}
