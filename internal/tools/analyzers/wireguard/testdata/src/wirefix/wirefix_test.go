package wirefix

import "testing"

// fuzzSeeds covers every frame except MsgNoSeed, MsgDynB, and MsgDropped.
func fuzzSeeds() [][]byte {
	return [][]byte{
		EncodeGood([]byte("v")),
		EncodeBareReq(),
		EncodeNoDecode(),
		EncodeNoTrip(3),
		EncodeDyn(Dyn{Type: MsgDynA}),
	}
}

func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeGood(data)
		_, _ = DecodeDyn(data)
	})
}

func TestGoodRoundTrip(t *testing.T) {
	if _, err := DecodeGood(EncodeGood([]byte("v"))); err != nil {
		t.Fatal(err)
	}
}

func TestNoSeedRoundTrip(t *testing.T) {
	if _, err := DecodeNoSeed(EncodeNoSeed(0)); err != nil {
		t.Fatal(err)
	}
}

func TestDynRoundTrip(t *testing.T) {
	for _, typ := range []MsgType{MsgDynA, MsgDynB} {
		if _, err := DecodeDyn(EncodeDyn(Dyn{Type: typ})); err != nil {
			t.Fatal(err)
		}
	}
}
