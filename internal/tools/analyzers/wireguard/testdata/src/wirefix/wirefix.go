// Package wirefix is the wireguard golden fixture: a miniature wire-format
// package with one frame per diagnostic category, positive and suppressed.
package wirefix

import "errors"

var errShort = errors.New("short frame")

// MsgType tags the first byte of every frame.
type MsgType uint8

const (
	// MsgGood has all three artifacts: guarded decoder, fuzz seed,
	// round-trip test.
	MsgGood MsgType = iota + 1
	// MsgBare is a bodyless (header-only) request: exempt from the decoder
	// and round-trip checks, still needs a seed.
	MsgBare
	MsgNoDecode // want `frame MsgNoDecode has no (decoder|round-trip test)`
	MsgNoSeed   // want `frame MsgNoSeed has no fuzz seed`
	MsgNoTrip   // want `frame MsgNoTrip has no round-trip test`
	// MsgDynA and MsgDynB share the dynamic encoder EncodeDyn; only DynA is
	// seeded.
	MsgDynA
	MsgDynB    // want `frame MsgDynB has no fuzz seed`
	MsgDropped //shadowfax:ignore wireguard retired frame kept for wire-compat numbering; decode path removed deliberately
)

type decoder struct{ buf []byte }

func (d *decoder) remaining() int { return len(d.buf) }

func (d *decoder) u8() (byte, error) {
	if len(d.buf) == 0 {
		return 0, errShort
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func (d *decoder) u32() (uint32, error) {
	if len(d.buf) < 4 {
		return 0, errShort
	}
	v := uint32(d.buf[0]) | uint32(d.buf[1])<<8 | uint32(d.buf[2])<<16 | uint32(d.buf[3])<<24
	d.buf = d.buf[4:]
	return v, nil
}

func EncodeGood(val []byte) []byte {
	dst := []byte{byte(MsgGood)}
	n := uint32(len(val))
	dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	return append(dst, val...)
}

func DecodeGood(buf []byte) ([]byte, error) {
	d := decoder{buf: buf}
	if t, err := d.u8(); err != nil || MsgType(t) != MsgGood {
		return nil, errShort
	}
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > d.remaining() {
		return nil, errShort
	}
	out := make([]byte, n)
	for i := range out {
		if out[i], err = d.u8(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func EncodeBareReq() []byte {
	return []byte{byte(MsgBare)}
}

// EncodeNoDecode's frame has no decoder anywhere: receive-side rejection is
// accidental.
func EncodeNoDecode() []byte {
	dst := []byte{byte(MsgNoDecode)}
	return append(dst, 0xFF)
}

func EncodeNoSeed(v uint32) []byte {
	dst := []byte{byte(MsgNoSeed)}
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func DecodeNoSeed(buf []byte) ([]byte, error) {
	d := decoder{buf: buf}
	if t, err := d.u8(); err != nil || MsgType(t) != MsgNoSeed {
		return nil, errShort
	}
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	out := make([]byte, n) //shadowfax:ignore wireguard count is bounded by the connection read limit upstream
	for i := range out {
		if out[i], err = d.u8(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func EncodeNoTrip(v uint32) []byte {
	dst := []byte{byte(MsgNoTrip)}
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func DecodeNoTrip(buf []byte) ([]byte, error) {
	d := decoder{buf: buf}
	if t, err := d.u8(); err != nil || MsgType(t) != MsgNoTrip {
		return nil, errShort
	}
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	out := make([]byte, n) // want `never calls remaining`
	for i := range out {
		if out[i], err = d.u8(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Dyn is the dynamic-frame payload: one encoder and one decoder serve
// several frame types, like the real MigrationMsg.
type Dyn struct{ Type MsgType }

func EncodeDyn(m Dyn) []byte {
	return append([]byte{byte(m.Type)}, 1)
}

func DecodeDyn(buf []byte) (Dyn, error) {
	d := decoder{buf: buf}
	t, err := d.u8()
	if err != nil {
		return Dyn{}, err
	}
	m := Dyn{Type: MsgType(t)}
	switch m.Type {
	case MsgDynA, MsgDynB:
	default:
		return Dyn{}, errShort
	}
	return m, nil
}
