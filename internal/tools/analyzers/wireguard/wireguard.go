// Package wireguard defines an analyzer that cross-references every wire
// frame type against the three defenses the protocol relies on: a decoder
// whose allocations are count-guarded, a fuzz seed so FuzzDecode explores the
// real format, and a round-trip test.
//
// The wire format is hand-rolled (paper §3: binary sessions over TCP), so
// nothing regenerates decoders from a schema — a new frame type is four
// hand-written artifacts that drift independently. This analyzer makes the
// drift a vet failure instead of a prod incident.
package wireguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/tools/analysis"
)

// Analyzer cross-references wire frame types against decoders, fuzz seeds,
// and round-trip tests.
var Analyzer = &analysis.Analyzer{
	Name: "wireguard",
	Doc: `checks every wire frame type has a guarded decoder, a fuzz seed, and a round-trip test

The analyzer activates in packages declaring a MsgType type and Msg*
constants of that type (internal/wire). For every frame constant it verifies:

  - a non-test function constructs a decoder and references the constant
    (the frame can be parsed); frames whose encoder is a bare
    []byte{byte(C)} are bodyless and exempt
  - the fuzz corpus covers the frame: some function reachable from a Fuzz*
    target either encodes it (byte(C)) or names the constant in a test file
  - some Test* function reaches both an encoder and a decoder of the frame
    (a round-trip); bodyless frames are exempt

Independently, any decoder-constructing non-test function that calls
make with an attacker-controlled (non-constant) count must consult
remaining() first — the count-guard idiom that stops a 4-byte header from
requesting a multi-gigabyte allocation. Suppress with
//shadowfax:ignore wireguard <reason> on the constant's declaration line or
the allocation site.`,
	Run: run,
}

// funcInfo is the per-function index the frame checks run against.
type funcInfo struct {
	fn        *types.Func
	testFile  bool
	encRefs   map[*types.Const]bool // constants converted via byte(C)
	plainRefs map[*types.Const]bool // constants referenced outside byte()
	dynEnc    bool                  // converts a non-constant MsgType to byte
	usesDec   bool                  // constructs or holds the decoder type
	remaining bool                  // calls (*decoder).remaining
	rawMakes  []token.Pos           // make calls with non-constant sizes
	bodyless  *types.Const          // body is exactly `return []byte{byte(C)}`
	callees   []*types.Func
}

func run(pass *analysis.Pass) (any, error) {
	scope := pass.Pkg.Scope()
	msgType, _ := scope.Lookup("MsgType").(*types.TypeName)
	decType, _ := scope.Lookup("decoder").(*types.TypeName)
	if msgType == nil {
		return nil, nil // not a wire-format package
	}

	// Frame constants and their declaration sites.
	frames := map[*types.Const]token.Pos{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if ok && c.Type() == msgType.Type() && strings.HasPrefix(c.Name(), "Msg") {
						frames[c] = name.Pos()
					}
				}
			}
		}
	}
	if len(frames) == 0 {
		return nil, nil
	}

	// The frame checks cross-reference the fuzz corpus and round-trip tests,
	// so they only make sense on the test variant of the package (under
	// `go vet -vettool` the plain unit has no _test.go files in scope; the
	// shadowfax-vet standalone driver always merges them). The count-guard
	// sweep below needs only shipped code and always runs.
	hasTests := false
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			hasTests = true
		}
	}

	infos := index(pass, msgType, decType)

	// Encoders and decoders per frame, from non-test code.
	enc := map[*types.Const][]*funcInfo{}
	dec := map[*types.Const][]*funcInfo{}
	bodyless := map[*types.Const]bool{}
	for _, fi := range infos {
		if fi.testFile {
			continue
		}
		for c := range fi.encRefs {
			enc[c] = append(enc[c], fi)
		}
		if fi.usesDec {
			for c := range fi.plainRefs {
				dec[c] = append(dec[c], fi)
			}
		}
		if fi.bodyless != nil {
			bodyless[fi.bodyless] = true
		}
	}

	// Count-guard sweep: decoder functions that size allocations from the
	// frame must consult remaining() before trusting the count.
	for _, fi := range infos {
		if fi.testFile || !fi.usesDec || fi.remaining {
			continue
		}
		for _, pos := range fi.rawMakes {
			pass.Reportf(pos, "decoder %s allocates with a count read from the frame but never calls "+
				"remaining(): a corrupt or hostile length prefix becomes an arbitrary-size allocation — "+
				"bound the count against remaining() (see DecodeRequestBatch) or suppress with "+
				"//shadowfax:ignore wireguard <reason>", fi.fn.Name())
		}
	}

	// Reachability: everything transitively called from Fuzz* targets, and
	// per-Test* sets for round-trip checks.
	byFn := map[*types.Func]*funcInfo{}
	for _, fi := range infos {
		byFn[fi.fn] = fi
	}
	var fuzzRoots []*types.Func
	var testRoots []*types.Func
	for _, fi := range infos {
		if !fi.testFile || fi.fn.Type().(*types.Signature).Recv() != nil {
			continue
		}
		switch {
		case strings.HasPrefix(fi.fn.Name(), "Fuzz"):
			fuzzRoots = append(fuzzRoots, fi.fn)
		case strings.HasPrefix(fi.fn.Name(), "Test"):
			testRoots = append(testRoots, fi.fn)
		}
	}
	fuzzSet := reach(byFn, fuzzRoots...)

	seeded := func(c *types.Const) bool {
		for fn := range fuzzSet {
			fi := byFn[fn]
			if fi.encRefs[c] || (fi.testFile && fi.plainRefs[c]) {
				return true
			}
		}
		return false
	}
	roundTripped := func(c *types.Const) bool {
		for _, root := range testRoots {
			set := reach(byFn, root)
			encSide, decSide, dyn, named := false, false, false, false
			for fn := range set {
				fi := byFn[fn]
				if fi.encRefs[c] {
					encSide = true
				}
				if fi.dynEnc {
					dyn = true
				}
				if fi.testFile && fi.plainRefs[c] {
					named = true
				}
				if fi.usesDec && !fi.testFile && fi.plainRefs[c] {
					decSide = true
				}
			}
			if (encSide || (dyn && named)) && decSide {
				return true
			}
		}
		return false
	}

	if !hasTests {
		return nil, nil
	}
	for c, pos := range frames {
		if !bodyless[c] && len(dec[c]) == 0 {
			pass.Reportf(pos, "frame %s has no decoder: no non-test function constructs a decoder and "+
				"references the constant, so hostile %s bytes are only ever rejected by accident — "+
				"write Decode%s or suppress with //shadowfax:ignore wireguard <reason>",
				c.Name(), c.Name(), strings.TrimPrefix(c.Name(), "Msg"))
		}
		if !seeded(c) {
			pass.Reportf(pos, "frame %s has no fuzz seed: nothing reachable from a Fuzz target encodes "+
				"it, so FuzzDecode must rediscover the format byte-by-byte — add an encoding to "+
				"fuzzSeeds() or suppress with //shadowfax:ignore wireguard <reason>", c.Name())
		}
		if !bodyless[c] && !roundTripped(c) {
			pass.Reportf(pos, "frame %s has no round-trip test: no Test function reaches both an "+
				"encoder and a decoder of this frame — encode-decode equality is unchecked; add a "+
				"round-trip or suppress with //shadowfax:ignore wireguard <reason>", c.Name())
		}
	}
	return nil, nil
}

// index builds the per-function fact table.
func index(pass *analysis.Pass, msgType, decType *types.TypeName) []*funcInfo {
	decls := analysis.FuncDecls(pass)
	var infos []*funcInfo
	for fn, d := range decls {
		if d.Body == nil {
			continue
		}
		fi := &funcInfo{
			fn:        fn,
			encRefs:   map[*types.Const]bool{},
			plainRefs: map[*types.Const]bool{},
		}
		for _, f := range pass.Files {
			if f.Pos() <= d.Pos() && d.Pos() <= f.End() {
				fi.testFile = pass.IsTestFile(f)
			}
		}

		consumed := map[*ast.Ident]bool{}
		frameConst := func(e ast.Expr) (*types.Const, *ast.Ident) {
			var id *ast.Ident
			switch e := ast.Unparen(e).(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			default:
				return nil, nil
			}
			if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok && c.Type() == msgType.Type() {
				return c, id
			}
			return nil, nil
		}

		ast.Inspect(d.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// byte(...) conversions: encoder-side references.
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
						if c, id := frameConst(n.Args[0]); c != nil {
							fi.encRefs[c] = true
							consumed[id] = true
						} else if at := pass.TypesInfo.TypeOf(n.Args[0]); at == msgType.Type() {
							fi.dynEnc = true
						}
					}
					return true
				}
				if fun, ok := ast.Unparen(n.Fun).(*ast.Ident); ok &&
					pass.TypesInfo.Uses[fun] == types.Universe.Lookup("make") && len(n.Args) >= 2 {
					if tv, ok := pass.TypesInfo.Types[n.Args[1]]; !ok || tv.Value == nil {
						fi.rawMakes = append(fi.rawMakes, n.Pos())
					}
				}
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "remaining" {
					if decType != nil && namedIs(pass.TypesInfo.TypeOf(sel.X), decType) {
						fi.remaining = true
					}
				}
				if callee := analysis.FuncOrigin(analysis.StaticCallee(pass.TypesInfo, n)); callee != nil &&
					callee.Pkg() == pass.Pkg {
					fi.callees = append(fi.callees, callee)
				}
			case *ast.Ident:
				if decType != nil {
					if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && namedIs(v.Type(), decType) {
						fi.usesDec = true
					}
					if tn, ok := pass.TypesInfo.Uses[n].(*types.TypeName); ok && tn == decType {
						fi.usesDec = true
					}
				}
			}
			return true
		})

		// Plain (non-byte()) constant references.
		ast.Inspect(d.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || consumed[id] {
				return true
			}
			if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok && c.Type() == msgType.Type() {
				fi.plainRefs[c] = true
			}
			return true
		})

		fi.bodyless = bodylessConst(fi, d)
		infos = append(infos, fi)
	}
	return infos
}

// bodylessConst reports the frame constant C when d's body is exactly
// `return []byte{byte(C)}` — a header-only request frame.
func bodylessConst(fi *funcInfo, d *ast.FuncDecl) *types.Const {
	if len(d.Body.List) != 1 || len(fi.encRefs) != 1 {
		return nil
	}
	ret, ok := d.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	cl, ok := ast.Unparen(ret.Results[0]).(*ast.CompositeLit)
	if !ok || len(cl.Elts) != 1 {
		return nil
	}
	for c := range fi.encRefs {
		return c
	}
	return nil
}

// reach returns every function transitively reachable from roots through
// same-package static calls.
func reach(byFn map[*types.Func]*funcInfo, roots ...*types.Func) map[*types.Func]bool {
	set := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if set[fn] || byFn[fn] == nil {
			return
		}
		set[fn] = true
		for _, callee := range byFn[fn].callees {
			visit(callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return set
}

// namedIs reports whether t is tn's type, stripping one pointer.
func namedIs(t types.Type, tn *types.TypeName) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == tn
}
