// Package noallocfix is the hotpathalloc golden fixture: one positive and
// one suppressed case per diagnostic category.
package noallocfix

import "fmt"

type batch struct {
	buf  []byte
	vals []int
}

//shadowfax:noalloc
func (b *batch) exec(op int, key string, raw []byte) {
	_ = make([]byte, 64)         // want `allocates with make`
	_ = new(batch)               // want `allocates with new`
	_ = map[int]int{op: op}      // want `allocates a map literal`
	_ = []int{op}                // want `allocates a slice literal`
	_ = &batch{}                 // want `takes the address of a composite literal`
	_ = batch{}                  // plain struct literal value: stack, fine
	_ = fmt.Sprintf("op=%d", op) // want `calls fmt.Sprintf`
	_ = []byte(key)              // want `converts string to \[\]byte`
	_ = string(raw)              // want `converts \[\]byte to string`
	_ = key + "suffix"           // want `concatenates non-constant strings`
	const pre = "a" + "b"        // constant-folded: fine
	sink(op)                     // want `boxes int into an interface argument`
	variadicSink(op, op)         // want `calls variadic variadicSink with loose arguments`
	variadicSink(b.vals...)      // spread slice: fine
	go b.drain()                 // want `spawns a goroutine`
	f := func() { b.helper(op) } // want `closure captures b`
	f()
	g := func() { clean() } // captures nothing: fine
	g()
	b.helper(op)
	b.buf = append(b.buf, raw...) // append is the sanctioned idiom

	// Suppressed counterparts, one per category.
	_ = make([]byte, 64)         //shadowfax:ignore hotpathalloc amortized: grows once then reused
	_ = fmt.Sprintf("op=%d", op) //shadowfax:ignore hotpathalloc error path only
	_ = []byte(key)              //shadowfax:ignore hotpathalloc cold branch, taken once per session
	sink(op)                     //shadowfax:ignore hotpathalloc stats emission is off the latency path
}

// helper is reachable from exec; allocations here are charged to the root.
func (b *batch) helper(op int) {
	_ = make([]int, op) // want `via \(\*batch\).helper.*allocates with make`
}

// drain runs on its own goroutine, off the hot path.
func (b *batch) drain() {
	_ = make([]byte, 1<<20)
}

// notHot has no annotation: silent.
func notHot() {
	_ = make([]byte, 64)
	_ = fmt.Sprintf("x")
}

func sink(v any)             { _ = v }
func variadicSink(vs ...int) { _ = vs }
func clean()                 {}
