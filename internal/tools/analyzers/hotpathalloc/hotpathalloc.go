// Package hotpathalloc defines an analyzer that reports likely allocation
// sites in functions annotated //shadowfax:noalloc.
//
// The request hot path (dispatcher batch execution, wire batch codecs) has an
// allocation budget enforced at runtime by testing.AllocsPerRun gates
// (internal/core/hotpath_alloc_test.go). Those gates tell you *that* the
// budget regressed; this analyzer tells you *where*, at vet time, before the
// benchmark runs. It is deliberately conservative-syntactic rather than a
// full escape analysis: it flags the constructs that empirically caused every
// past budget regression.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/tools/analysis"
)

// Analyzer flags allocating constructs reachable from //shadowfax:noalloc
// functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: `reports allocation sites reachable from //shadowfax:noalloc functions

Roots are functions annotated //shadowfax:noalloc. The analyzer walks the
static call graph within the package from those roots and reports:

  - make, new, map/slice composite literals, and &composite expressions
  - closures that capture enclosing variables (the capture escapes)
  - go statements (each spawn allocates a goroutine and its closure)
  - string<->[]byte/[]rune conversions and non-constant string concatenation
  - conversion of non-pointer values to interface parameters (boxing)
  - calls to variadic functions with loose arguments (the ... slice)
  - fmt.Sprintf/Errorf/Sprint/Sprintln and errors.New

append is exempt: appending into a pre-sized buffer is the project's standard
zero-steady-state-allocation idiom and the runtime gates catch growth. Calls
through interfaces, function values, and into other packages are not
followed; annotate the callee in its own package. Suppress deliberate
amortized allocations with //shadowfax:ignore hotpathalloc <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	decls := analysis.FuncDecls(pass)

	w := &walker{pass: pass, decls: decls,
		seenFns: map[*types.Func]bool{}, seenLits: map[*ast.FuncLit]bool{},
		reported: map[token.Pos]bool{}}
	for fn, d := range decls {
		if d.Body == nil || !analysis.HasMarker([]*ast.CommentGroup{d.Doc}, analysis.MarkerNoAlloc) {
			continue
		}
		if w.seenFns[fn] {
			continue
		}
		w.seenFns[fn] = true
		w.walk(d, d.Body, []string{shortName(fn)})
	}
	return nil, nil
}

type walker struct {
	pass     *analysis.Pass
	decls    map[*types.Func]*ast.FuncDecl
	seenFns  map[*types.Func]bool
	seenLits map[*ast.FuncLit]bool
	reported map[token.Pos]bool
}

// walk scans one function body. enclosing is the declaration the body
// belongs to (for closure-capture scope checks); chain is the call path.
func (w *walker) walk(enclosing ast.Node, body ast.Node, chain []string) {
	// &CompositeLit is one allocation, not two: remember literal nodes whose
	// address is taken so the inner CompositeLit visit stays quiet.
	addressed := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if cl, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
				addressed[cl] = true
			}
		}
		return true
	})

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			w.report(n.Go, chain, "spawns a goroutine (allocates the goroutine and its closure)")
			return false // the spawned body runs off the hot path
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				w.report(n.OpPos, chain, "takes the address of a composite literal (it escapes to the heap)")
				return false
			}
		case *ast.CompositeLit:
			if addressed[n] {
				return true
			}
			t := w.pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				w.report(n.Pos(), chain, "allocates a map literal")
			case *types.Slice:
				w.report(n.Pos(), chain, "allocates a slice literal")
			}
		case *ast.FuncLit:
			if w.seenLits[n] {
				return false
			}
			w.seenLits[n] = true
			if v := w.captured(enclosing, n); v != "" {
				w.report(n.Pos(), chain, "closure captures "+v+" (the closure and its captures escape)")
			}
			w.walk(enclosing, n.Body, chain)
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && w.nonConstString(n) {
				w.report(n.OpPos, chain, "concatenates non-constant strings")
			}
		case *ast.CallExpr:
			w.checkCall(n, chain)
		}
		return true
	}
	ast.Inspect(body, visit)
}

func (w *walker) checkCall(call *ast.CallExpr, chain []string) {
	// Builtins and conversions first: make/new, string conversions.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch w.pass.TypesInfo.Uses[fun] {
		case types.Universe.Lookup("make"):
			w.report(call.Pos(), chain, "allocates with make")
			return
		case types.Universe.Lookup("new"):
			w.report(call.Pos(), chain, "allocates with new")
			return
		}
	}
	if w.isConversion(call) {
		w.checkConversion(call, chain)
		return
	}

	fn := analysis.FuncOrigin(analysis.StaticCallee(w.pass.TypesInfo, call))
	if fn == nil {
		return // dynamic dispatch: not followed (see Doc)
	}
	if what := allocatingCall(fn); what != "" {
		w.report(call.Pos(), chain, what)
		return
	}
	w.checkBoxing(call, fn, chain)
	w.checkVariadic(call, fn, chain)
	if fn.Pkg() != w.pass.Pkg {
		return // cross-package: the annotation is the contract
	}
	d := w.decls[fn]
	if d == nil || d.Body == nil || w.seenFns[fn] {
		return
	}
	w.seenFns[fn] = true
	w.walk(d, d.Body, append(append([]string{}, chain...), shortName(fn)))
}

// isConversion reports whether call is a type conversion T(x).
func (w *walker) isConversion(call *ast.CallExpr) bool {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

func (w *walker) checkConversion(call *ast.CallExpr, chain []string) {
	if len(call.Args) != 1 {
		return
	}
	to := w.pass.TypesInfo.TypeOf(call.Fun)
	from := w.pass.TypesInfo.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	fromU, toU := from.Underlying(), to.Underlying()
	switch {
	case isString(fromU) && isByteOrRuneSlice(toU):
		w.report(call.Pos(), chain, "converts string to "+toU.String()+" (copies and allocates)")
	case isByteOrRuneSlice(fromU) && isString(toU):
		// Constant arguments ([]byte("lit")) still allocate at the
		// conversion; flag both directions uniformly.
		w.report(call.Pos(), chain, "converts "+fromU.String()+" to string (copies and allocates)")
	case isInterface(toU) && !isInterface(fromU) && !pointerShaped(fromU):
		w.report(call.Pos(), chain, "boxes "+from.String()+" into an interface")
	}
}

// checkBoxing flags non-pointer concrete arguments passed to interface-typed
// parameters: the value is copied to the heap to fit the interface word.
func (w *walker) checkBoxing(call *ast.CallExpr, fn *types.Func, chain []string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // a spread slice is passed as-is
			}
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isInterface(pt.Underlying()) {
			continue
		}
		at := w.pass.TypesInfo.TypeOf(arg)
		if at == nil || isInterface(at.Underlying()) || pointerShaped(at.Underlying()) {
			continue
		}
		if tv, ok := w.pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
			continue
		}
		w.report(arg.Pos(), chain, "boxes "+at.String()+" into an interface argument of "+shortName(fn))
	}
}

// checkVariadic flags loose-argument calls to variadic functions: the runtime
// allocates the ... slice on every call.
func (w *walker) checkVariadic(call *ast.CallExpr, fn *types.Func, chain []string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis != token.NoPos {
		return
	}
	if len(call.Args) < sig.Params().Len() {
		return // zero variadic args pass a shared empty slice
	}
	w.report(call.Pos(), chain, "calls variadic "+shortName(fn)+" with loose arguments (allocates the ... slice)")
}

// captured returns the name of a variable lit captures from its enclosing
// function, or "".
func (w *walker) captured(enclosing ast.Node, lit *ast.FuncLit) string {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared outside the literal but inside the enclosing
		// function (package-level vars are not captures).
		if v.Parent() == nil || v.Parent() == types.Universe || v.Pkg() == nil {
			return true
		}
		if v.Pos() == token.NoPos || (v.Pos() >= lit.Pos() && v.Pos() <= lit.End()) {
			return true
		}
		if v.Pos() >= enclosing.Pos() && v.Pos() <= enclosing.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

func (w *walker) nonConstString(b *ast.BinaryExpr) bool {
	t := w.pass.TypesInfo.TypeOf(b)
	if t == nil || !isString(t.Underlying()) {
		return false
	}
	tv, ok := w.pass.TypesInfo.Types[b]
	return !ok || tv.Value == nil // constant-folded concatenation is free
}

func (w *walker) report(pos token.Pos, chain []string, what string) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	where := "noalloc function " + chain[0]
	if len(chain) > 1 {
		where += " (via " + strings.Join(chain[1:], " → ") + ")"
	}
	w.pass.Reportf(pos, "%s: %s; the hot path has an allocation budget — preallocate, "+
		"hoist to setup, or suppress an amortized site with "+
		"//shadowfax:ignore hotpathalloc <reason>", where, what)
}

// allocatingCall classifies fn as a well-known allocating helper.
func allocatingCall(fn *types.Func) string {
	for _, name := range []string{"Sprintf", "Errorf", "Sprint", "Sprintln", "Appendf"} {
		if analysis.IsPkgFunc(fn, "fmt", name) {
			return "calls fmt." + name + " (formats into a fresh allocation)"
		}
	}
	if analysis.IsPkgFunc(fn, "errors", "New") {
		return "calls errors.New (allocates the error)"
	}
	return ""
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isInterface(t types.Type) bool {
	_, ok := t.(*types.Interface)
	return ok
}

// pointerShaped reports whether values of t fit an interface data word
// without a heap copy.
func pointerShaped(t types.Type) bool {
	switch t.(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

// shortName renders fn as (*Recv).Name or Name.
func shortName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
		ptr = "*"
	}
	name := t.String()
	if named, ok := t.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return "(" + ptr + name + ")." + fn.Name()
}
