package hotpathalloc_test

import (
	"testing"

	"repro/internal/tools/analysis/analysistest"
	"repro/internal/tools/analyzers/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "noallocfix")
}
