// Package atomicpad defines an analyzer that keeps the repository's
// cache-line-isolated stats structs honest.
//
// ServerStats, StoreStats and LogStats group hot counters by writer and
// separate the groups with blank `_ [N]byte` pad fields so that dispatcher
// threads incrementing their own group never false-share a line with another
// writer's group. The layout invariant lives entirely in field order and pad
// arithmetic — one innocent field insertion silently re-couples two writers.
// This analyzer recomputes the arithmetic at vet time.
package atomicpad

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/tools/analysis"
)

// cacheLine is the isolation unit the pad idiom targets.
const cacheLine = 64

// Analyzer verifies 64-bit atomic field alignment and pad-group cache-line
// isolation.
var Analyzer = &analysis.Analyzer{
	Name: "atomicpad",
	Doc: `checks 64-bit atomic alignment and cache-line isolation of padded stats groups

Two checks:

  - any struct field passed by address to a sync/atomic 64-bit function
    (atomic.AddUint64(&s.n, 1), ...) must be an atomic.Uint64/Int64 wrapper,
    not a plain integer: the wrappers carry the align64 marker that
    guarantees 8-byte alignment on 32-bit platforms, a plain field does not
  - in structs using blank pad fields (_ [N]byte / _ [N]uint64) to separate
    writer groups, adjacent groups must not share a 64-byte cache line;
    offsets are recomputed with the target's real layout rules, so inserting
    a field that silently re-couples two writers fails vet

Suppress with //shadowfax:ignore atomicpad <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	checkAtomicArgs(pass)
	checkPadIsolation(pass)
	return nil, nil
}

// checkAtomicArgs flags plain integer struct fields whose address feeds a
// sync/atomic 64-bit operation.
func checkAtomicArgs(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := analysis.StaticCallee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" ||
				!strings.HasSuffix(fn.Name(), "64") {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			field, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			if b, ok := field.Type().Underlying().(*types.Basic); ok {
				switch b.Kind() {
				case types.Int64, types.Uint64:
					pass.Reportf(addr.Pos(), "atomic.%s on plain %s field %s: nothing guarantees "+
						"8-byte alignment of this field on 32-bit platforms — use atomic.%s (its "+
						"align64 marker makes the layout self-enforcing) or suppress with "+
						"//shadowfax:ignore atomicpad <reason>",
						fn.Name(), b.Name(), field.Name(), wrapperFor(b.Kind()))
				}
			}
			return true
		})
	}
}

func wrapperFor(k types.BasicKind) string {
	if k == types.Int64 {
		return "Int64"
	}
	return "Uint64"
}

// padGroup is a run of non-pad fields between blank pad fields.
type padGroup struct {
	first *ast.Field // first field of the group, for reporting
	start int        // index of first field
	end   int        // index past last field
}

// checkPadIsolation recomputes pad arithmetic for every struct that uses
// blank pad fields.
func checkPadIsolation(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[st]
			if !ok {
				return true
			}
			str, ok := tv.Type.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			checkStruct(pass, st, str)
			return true
		})
	}
}

func checkStruct(pass *analysis.Pass, st *ast.StructType, str *types.Struct) {
	// Map AST fields to flat types.Struct indices. Each ast.Field may
	// declare several names; anonymous (embedded) fields declare one.
	type flatField struct {
		astField *ast.Field
		isPad    bool
	}
	var flat []flatField
	for _, fld := range st.Fields.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1 // embedded
		}
		pad := isPadField(pass, fld)
		for i := 0; i < n; i++ {
			flat = append(flat, flatField{astField: fld, isPad: pad})
		}
	}
	if len(flat) != str.NumFields() {
		return // blank fields still count; mismatch means exotic embedding
	}

	var groups []padGroup
	sawPad, open := false, false
	for i := range flat {
		if flat[i].isPad {
			sawPad = true
			open = false
			continue
		}
		if open {
			groups[len(groups)-1].end = i + 1
			continue
		}
		groups = append(groups, padGroup{first: flat[i].astField, start: i, end: i + 1})
		open = true
	}
	if !sawPad || len(groups) < 2 {
		return // not using the pad idiom, or nothing to isolate
	}

	fields := make([]*types.Var, str.NumFields())
	for i := range fields {
		fields[i] = str.Field(i)
	}
	offsets := pass.TypesSizes.Offsetsof(fields)

	for i := 1; i < len(groups); i++ {
		prev, cur := groups[i-1], groups[i]
		prevEnd := offsets[prev.end-1] + pass.TypesSizes.Sizeof(fields[prev.end-1].Type())
		curStart := offsets[cur.start]
		if (prevEnd-1)/cacheLine == curStart/cacheLine {
			pass.Reportf(cur.first.Pos(), "padded group starting at %s shares cache line %d with the "+
				"previous group (it ends at byte %d, this group starts at byte %d): writers to the two "+
				"groups false-share — grow the pad so each group starts on a fresh %d-byte line, or "+
				"suppress with //shadowfax:ignore atomicpad <reason>",
				fields[cur.start].Name(), curStart/cacheLine, prevEnd, curStart, cacheLine)
		}
	}
}

// isPadField reports whether fld is a blank cache-line pad: `_ [N]byte`,
// `_ [N]uint64`, or a blank field of a named type over such an array, at
// least 8 bytes wide.
func isPadField(pass *analysis.Pass, fld *ast.Field) bool {
	blank := false
	for _, name := range fld.Names {
		if name.Name == "_" {
			blank = true
		}
	}
	if !blank {
		return false
	}
	t := pass.TypesInfo.TypeOf(fld.Type)
	if t == nil {
		return false
	}
	arr, ok := t.Underlying().(*types.Array)
	if !ok {
		return false
	}
	elem, ok := arr.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch elem.Kind() {
	case types.Uint8, types.Uint64, types.Uintptr:
	default:
		return false
	}
	return pass.TypesSizes.Sizeof(t) >= 8
}
