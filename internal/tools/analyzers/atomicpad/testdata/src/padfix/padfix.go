// Package padfix is the atomicpad golden fixture: one positive and one
// suppressed case per diagnostic category.
package padfix

import "sync/atomic"

// goodStats mirrors the real stats idiom: two writer groups, each starting
// on a fresh 64-byte line. Clean.
type goodStats struct {
	ops   atomic.Uint64
	bytes atomic.Uint64
	_     [48]byte
	rej   atomic.Uint64
	shed  atomic.Uint64
	_     [48]byte
}

// badStats under-pads: the second group lands on the first group's line.
type badStats struct {
	ops atomic.Uint64
	_   [8]byte
	rej atomic.Uint64 // want `shares cache line 0`
}

// toleratedStats documents an accepted false-sharing pair.
type toleratedStats struct {
	a atomic.Uint64
	_ [8]byte
	b atomic.Uint64 //shadowfax:ignore atomicpad read-mostly pair, false sharing measured harmless
}

// unpadded structs are exempt from the isolation check entirely.
type unpadded struct {
	a, b, c atomic.Uint64
}

type counters struct {
	hits uint64
	miss int64
	ok   atomic.Uint64
}

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1) // want `plain uint64 field hits`
	atomic.AddInt64(&c.miss, 1)  //shadowfax:ignore atomicpad counters is singleton and heap-allocated, 8-aligned by the allocator
	c.ok.Add(1)

	var local uint64
	atomic.AddUint64(&local, 1) // not a struct field: fine
}

var _ = bump
var _ goodStats
var _ badStats
var _ toleratedStats
var _ unpadded
