package atomicpad_test

import (
	"testing"

	"repro/internal/tools/analysis/analysistest"
	"repro/internal/tools/analyzers/atomicpad"
)

func TestAtomicPad(t *testing.T) {
	analysistest.Run(t, "testdata", atomicpad.Analyzer, "padfix")
}
