package bench

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/seastar"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/ycsb"
)

// ---------------------------------------------------------------------------
// Figure 8: thread scalability — local FASTER vs Shadowfax vs w/o accel.

// Fig8Row is one thread count's throughput for the three systems.
type Fig8Row struct {
	Threads       int
	FasterMops    float64 // requests generated on the same machine
	ShadowfaxMops float64 // over accelerated TCP
	NoAccelMops   float64 // acceleration disabled
}

// Fig8 reproduces Figure 8: YCSB-F, Zipfian(0.99), dataset in memory.
func Fig8(threadCounts []int, o Options) ([]Fig8Row, error) {
	o = o.withDefaults()
	var rows []Fig8Row
	for _, n := range threadCounts {
		row := Fig8Row{Threads: n}
		var err error
		if row.FasterMops, err = fasterLocal(o, n); err != nil {
			return rows, err
		}
		if row.ShadowfaxMops, err = shadowfaxPoint(o, n, transport.AcceleratedTCP, ZipfianGen(o.Keys)); err != nil {
			return rows, err
		}
		if row.NoAccelMops, err = shadowfaxPoint(o, n, transport.SoftwareTCP, ZipfianGen(o.Keys)); err != nil {
			return rows, err
		}
		o.logf("fig8 threads=%d faster=%.3f shadowfax=%.3f noaccel=%.3f",
			n, row.FasterMops, row.ShadowfaxMops, row.NoAccelMops)
		rows = append(rows, row)
	}
	return rows, nil
}

// fasterLocal measures raw FASTER with n local sessions (no network), the
// paper's "requests generated on the same machine" series.
func fasterLocal(o Options, n int) (float64, error) {
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()
	st, err := faster.NewStore(faster.Config{
		IndexBuckets: 1 << 16,
		Log: hlog.Config{PageBits: o.PageBits, MemPages: o.MemPages,
			MutablePages: o.MemPages / 2, Device: dev},
	})
	if err != nil {
		return 0, err
	}
	defer st.Close()

	// Preload.
	sess := st.NewSession()
	val := make([]byte, o.ValueBytes)
	for i := uint64(0); i < o.Keys; i++ {
		sess.Upsert(ycsb.KeyBytes(i), val, nil)
	}
	sess.Close()

	done := make(chan uint64, n)
	for t := 0; t < n; t++ {
		go func(t int) {
			s := st.NewSession()
			defer s.Close()
			z := ycsb.NewZipfian(o.Keys, ycsb.DefaultTheta, uint64(t+1))
			delta := make([]byte, 8)
			binary.LittleEndian.PutUint64(delta, 1)
			var key [8]byte
			var ops uint64
			deadline := time.Now().Add(o.Duration)
			for time.Now().Before(deadline) {
				for j := 0; j < 256; j++ {
					ycsb.FillKey(key[:], z.Next())
					s.RMW(key[:], delta, nil)
					ops++
				}
				s.CompletePending(false)
				s.Refresh()
			}
			s.CompletePending(true)
			done <- ops
		}(t)
	}
	var total uint64
	for t := 0; t < n; t++ {
		total += <-done
	}
	return float64(total) / o.Duration.Seconds() / 1e6, nil
}

// shadowfaxPoint measures one server with n dispatcher threads and n client
// threads over the given network cost model.
func shadowfaxPoint(o Options, n int, cost transport.CostModel, gf genFactory) (float64, error) {
	cl := NewCluster(cost)
	defer cl.Close()
	if _, err := cl.AddServer(ServerSpec{
		ID: "s1", Threads: n, PageBits: o.PageBits, MemPages: o.MemPages,
		Ranges: []metadata.HashRange{metadata.FullRange},
	}); err != nil {
		return 0, err
	}
	if err := cl.Load(o); err != nil {
		return 0, err
	}
	clients := o.ClientThreads
	if clients == 0 {
		clients = n
	}
	res, err := cl.drive(o, clients, gf, o.Duration, false, nil)
	if err != nil {
		return 0, err
	}
	return res.Mops(), nil
}

// ---------------------------------------------------------------------------
// Figure 9: Shadowfax vs Seastar under a uniform distribution.

// Fig9Row is one thread count's comparison.
type Fig9Row struct {
	Threads       int
	SeastarMops   float64
	ShadowfaxMops float64
}

// Fig9 reproduces Figure 9.
func Fig9(threadCounts []int, o Options) ([]Fig9Row, error) {
	o = o.withDefaults()
	var rows []Fig9Row
	for _, n := range threadCounts {
		row := Fig9Row{Threads: n}
		var err error
		if row.ShadowfaxMops, err = shadowfaxPoint(o, n, transport.AcceleratedTCP, UniformGen(o.Keys)); err != nil {
			return rows, err
		}
		if row.SeastarMops, err = seastarPoint(o, n); err != nil {
			return rows, err
		}
		o.logf("fig9 threads=%d shadowfax=%.3f seastar=%.3f",
			n, row.ShadowfaxMops, row.SeastarMops)
		rows = append(rows, row)
	}
	return rows, nil
}

// seastarPoint measures the shared-nothing baseline with n cores and n
// client connections, uniform keys, 100-op batches (the paper's setting).
func seastarPoint(o Options, n int) (float64, error) {
	tr := transport.NewInMem(transport.AcceleratedTCP)
	srv, err := seastar.NewServer(seastar.Config{
		Addr: "seastar", Cores: n, Transport: tr})
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	// Preload through one connection.
	lc, err := seastar.NewClient(tr, srv.Addr(), 100)
	if err != nil {
		return 0, err
	}
	val := make([]byte, o.ValueBytes)
	for i := uint64(0); i < o.Keys; i++ {
		lc.Upsert(ycsb.KeyBytes(i), val, nil)
		if lc.Outstanding() > o.Outstanding {
			for lc.Outstanding() > o.Outstanding/2 {
				if lc.Poll() == 0 {
					time.Sleep(10 * time.Microsecond)
				}
			}
		}
	}
	if !lc.Drain(120 * time.Second) {
		return 0, fmt.Errorf("bench: seastar load did not drain")
	}
	lc.Close()

	done := make(chan uint64, n)
	for t := 0; t < n; t++ {
		go func(t int) {
			c, err := seastar.NewClient(tr, srv.Addr(), 100)
			if err != nil {
				done <- 0
				return
			}
			defer c.Close()
			u := ycsb.NewUniform(o.Keys, uint64(t+1))
			delta := make([]byte, 8)
			binary.LittleEndian.PutUint64(delta, 1)
			var key [8]byte
			var ops uint64
			deadline := time.Now().Add(o.Duration)
			for time.Now().Before(deadline) {
				for j := 0; j < 64; j++ {
					ycsb.FillKey(key[:], u.Next())
					c.RMW(key[:], delta, nil)
					ops++
				}
				c.Flush()
				for c.Outstanding() > o.Outstanding {
					if c.Poll() == 0 {
						time.Sleep(10 * time.Microsecond)
					}
				}
				c.Poll()
			}
			c.Drain(30 * time.Second)
			done <- ops
		}(t)
	}
	var total uint64
	for t := 0; t < n; t++ {
		total += <-done
	}
	return float64(total) / o.Duration.Seconds() / 1e6, nil
}

// ---------------------------------------------------------------------------
// Table 2: batching and latency at saturation for the four network stacks.

// Table2Row mirrors the paper's Table 2.
type Table2Row struct {
	Network        string
	ThroughputMops float64
	BatchBytes     int
	MedianLatency  time.Duration
	MeanQueueDepth float64
}

// Table2 measures saturation throughput, configured batch size, median
// latency and queue depth for each network cost model.
func Table2(threads int, o Options) ([]Table2Row, error) {
	o = o.withDefaults()
	type cfg struct {
		model transport.CostModel
		batch int // ops per batch, chosen per the paper's batch sizes
	}
	cfgs := []cfg{
		{transport.AcceleratedTCP, 256}, // ~32 KB batches in the paper
		{transport.SoftwareTCP, 256},
		{transport.Infrc, 16}, // ~1 KB batches
		{transport.TCPIPoIB, 64},
	}
	var rows []Table2Row
	for _, c := range cfgs {
		oc := o
		oc.BatchOps = c.batch
		mops, med, depth, err := table2Point(oc, threads, c.model)
		if err != nil {
			return rows, err
		}
		row := Table2Row{
			Network:        c.model.Name,
			ThroughputMops: mops,
			BatchBytes:     c.batch * (19 + 8 + 8), // encoded op footprint
			MedianLatency:  med,
			MeanQueueDepth: depth,
		}
		o.logf("table2 %-10s %.3f Mops batch=%dB median=%v depth=%.0f",
			row.Network, row.ThroughputMops, row.BatchBytes, row.MedianLatency,
			row.MeanQueueDepth)
		rows = append(rows, row)
	}
	return rows, nil
}

func table2Point(o Options, threads int, cost transport.CostModel) (float64, time.Duration, float64, error) {
	cl := NewCluster(cost)
	defer cl.Close()
	if _, err := cl.AddServer(ServerSpec{
		ID: "s1", Threads: threads, PageBits: o.PageBits, MemPages: o.MemPages,
		Ranges: []metadata.HashRange{metadata.FullRange},
	}); err != nil {
		return 0, 0, 0, err
	}
	if err := cl.Load(o); err != nil {
		return 0, 0, 0, err
	}
	clients := o.ClientThreads
	if clients == 0 {
		clients = threads
	}
	res, err := cl.drive(o, clients, ZipfianGen(o.Keys), o.Duration, true, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	med := time.Duration(0)
	if len(res.LatencySamples) > 0 {
		sort.Slice(res.LatencySamples, func(i, j int) bool {
			return res.LatencySamples[i] < res.LatencySamples[j]
		})
		med = res.LatencySamples[len(res.LatencySamples)/2]
	}
	return res.Mops(), med, res.MeanOutstanding, nil
}

// ---------------------------------------------------------------------------
// Figure 15: view validation vs per-key hash validation.

// Fig15Row is one hash-split count's comparison.
type Fig15Row struct {
	Splits         int
	ViewMops       float64
	HashMops       float64
	ImprovementPct float64
}

// Fig15 reproduces Figure 15: normal-case throughput as the server's owned
// hash-range count grows, with batch-level view validation vs per-key hash
// validation.
func Fig15(splits []int, threads int, o Options) ([]Fig15Row, error) {
	o = o.withDefaults()
	var rows []Fig15Row
	for _, p := range splits {
		// The server owns p contiguous ranges covering the hash space.
		ranges := splitFull(p)
		view, err := fig15Point(o, threads, ranges, false)
		if err != nil {
			return rows, err
		}
		hash, err := fig15Point(o, threads, ranges, true)
		if err != nil {
			return rows, err
		}
		row := Fig15Row{Splits: p, ViewMops: view, HashMops: hash}
		if hash > 0 {
			row.ImprovementPct = (view - hash) / hash * 100
		}
		o.logf("fig15 splits=%-5d view=%.3f hash=%.3f (+%.1f%%)",
			p, view, hash, row.ImprovementPct)
		rows = append(rows, row)
	}
	return rows, nil
}

// splitFull divides the hash space into p equal contiguous ranges.
func splitFull(p int) []metadata.HashRange {
	out := make([]metadata.HashRange, p)
	width := ^uint64(0) / uint64(p)
	cur := uint64(0)
	for i := 0; i < p; i++ {
		end := cur + width
		if i == p-1 {
			end = ^uint64(0)
		}
		out[i] = metadata.HashRange{Start: cur, End: end}
		cur = end
	}
	return out
}

func fig15Point(o Options, threads int, ranges []metadata.HashRange, hashValidate bool) (float64, error) {
	cl := NewCluster(transport.AcceleratedTCP)
	defer cl.Close()
	srv, err := cl.AddServer(ServerSpec{
		ID: "s1", Threads: threads, PageBits: o.PageBits, MemPages: o.MemPages,
		Ranges: ranges,
	})
	if err != nil {
		return 0, err
	}
	if err := cl.Load(o); err != nil {
		return 0, err
	}
	srv.SetHashValidation(hashValidate)
	clients := o.ClientThreads
	if clients == 0 {
		clients = threads
	}
	res, err := cl.drive(o, clients, ZipfianGen(o.Keys), o.Duration, false, nil)
	if err != nil {
		return 0, err
	}
	return res.Mops(), nil
}

// ---------------------------------------------------------------------------
// Cluster scaling (§4 text: 8 servers, linear to 400 Mops/s).

// ClusterRow is one server count's aggregate throughput.
type ClusterRow struct {
	Servers int
	Mops    float64
}

// ClusterScale measures aggregate throughput as servers are added, each
// owning an equal slice of the hash space.
func ClusterScale(serverCounts []int, threadsPer int, o Options) ([]ClusterRow, error) {
	o = o.withDefaults()
	var rows []ClusterRow
	for _, n := range serverCounts {
		cl := NewCluster(transport.AcceleratedTCP)
		ranges := splitFull(n)
		for i := 0; i < n; i++ {
			if _, err := cl.AddServer(ServerSpec{
				ID: fmt.Sprintf("s%d", i+1), Threads: threadsPer,
				PageBits: o.PageBits, MemPages: o.MemPages,
				Ranges: []metadata.HashRange{ranges[i]},
			}); err != nil {
				cl.Close()
				return rows, err
			}
		}
		if err := cl.Load(o); err != nil {
			cl.Close()
			return rows, err
		}
		clients := o.ClientThreads
		if clients == 0 {
			clients = n * threadsPer
		}
		res, err := cl.drive(o, clients, ZipfianGen(o.Keys), o.Duration, false, nil)
		cl.Close()
		if err != nil {
			return rows, err
		}
		row := ClusterRow{Servers: n, Mops: res.Mops()}
		o.logf("cluster servers=%d mops=%.3f", n, row.Mops)
		rows = append(rows, row)
	}
	return rows, nil
}
