package bench

import "testing"

// hotPathOptions scales the dispatch microbenchmark: a dataset small enough
// to stay fully in memory (no pending I/O — the inline path is the subject)
// but large enough that the hash index sees realistic chains.
func hotPathOptions(valueBytes int) Options {
	return Options{Keys: 20_000, ValueBytes: valueBytes, BatchOps: 64, MemPages: 256}
}

func benchHotPath(b *testing.B, mix HotPathMix, o Options) {
	h, err := NewHotPathHarness(o)
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	// Warm one batch so lazily-grown buffers (response path, arena, index)
	// reach steady state before counting.
	if err := h.RunBatch(mix); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.RunBatch(mix); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// One iteration is a whole batch; also report the per-KV-op cost the
	// paper's Fig. 5 throughput numbers are quoted in.
	ops := float64(b.N * h.BatchOps())
	if ops > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/ops, "ns/kvop")
	}
}

// BenchmarkDispatchHotPath is the headline normal-operation microbenchmark:
// a 50/50 read/upsert mix served entirely from memory, measured per batch
// (allocs/op is allocations per 64-op batch).
func BenchmarkDispatchHotPath(b *testing.B) {
	benchHotPath(b, HotPathMixed, hotPathOptions(64))
}

func BenchmarkDispatchHotPathRead(b *testing.B) {
	benchHotPath(b, HotPathRead, hotPathOptions(64))
}

func BenchmarkDispatchHotPathUpsert(b *testing.B) {
	benchHotPath(b, HotPathUpsert, hotPathOptions(64))
}

// BenchmarkDispatchHotPathRMW uses 8-byte values so the store's in-place
// counter path applies (YCSB-F's increment).
func BenchmarkDispatchHotPathRMW(b *testing.B) {
	benchHotPath(b, HotPathRMW, hotPathOptions(8))
}
