package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
)

// ScaleOutMode selects the migration configuration under test (Figures
// 10–12's three panels).
type ScaleOutMode int

// Scale-out modes.
const (
	// ModeAllInMemory: the dataset fits the source's memory budget.
	ModeAllInMemory ScaleOutMode = iota
	// ModeIndirection: memory-constrained; indirection records keep the
	// migration in memory (the Shadowfax approach, §3.3.2).
	ModeIndirection
	// ModeRocksteady: memory-constrained; the baseline scans the on-SSD log
	// single-threaded after the memory pass.
	ModeRocksteady
)

func (m ScaleOutMode) String() string {
	switch m {
	case ModeAllInMemory:
		return "All Data In Memory"
	case ModeIndirection:
		return "Indirection Records"
	case ModeRocksteady:
		return "Rocksteady"
	default:
		return "?"
	}
}

// TimelineSample is one sampling interval of a scale-out run (Figures 10,
// 11 and 12 plot these series).
type TimelineSample struct {
	At         time.Duration // since experiment start
	SystemMops float64
	SourceMops float64
	TargetMops float64
	PendingOps int64
}

// ScaleOutResult is a full scale-out experiment record.
type ScaleOutResult struct {
	Mode        ScaleOutMode
	Samples     []TimelineSample
	MigrationAt time.Duration
	Report      core.MigrationReport
	// MigratedFromMemoryBytes reproduces Figure 13.
	MigratedFromMemoryBytes uint64
	// ThroughputRecoveredIn is the time from migration start until system
	// throughput regained 90% of the pre-migration mean.
	ThroughputRecoveredIn time.Duration
}

// ScaleOutOptions extends Options with timeline parameters.
type ScaleOutOptions struct {
	Options
	// Mode selects the migration configuration.
	Mode ScaleOutMode
	// MigrateFraction is the slice of the source's hash space to move
	// (paper: 10%).
	MigrateFraction float64
	// WarmupBeforeMigrate is how long to run before triggering Migrate().
	WarmupBeforeMigrate time.Duration
	// TotalRuntime is the whole experiment duration.
	TotalRuntime time.Duration
	// SampleEvery sets the timeline resolution.
	SampleEvery time.Duration
	// ServerThreads / DriveThreads size the deployment.
	ServerThreads int
	DriveThreads  int
	// NoSampling disables hot-record shipping (Figure 14's baseline).
	NoSampling bool
	// MemPagesOverride constrains the source's memory budget for the
	// indirection/Rocksteady modes (0 = Options.MemPages).
	MemPagesOverride int
	// SSDReadLatency models the local device in spill modes (0 = 100µs);
	// the Rocksteady disk scan is sensitive to it, the indirection path is
	// not — the contrast Figure 10(b)/(c) measures.
	SSDReadLatency time.Duration
}

func (so ScaleOutOptions) withDefaults() ScaleOutOptions {
	so.Options = so.Options.withDefaults()
	if so.MigrateFraction == 0 {
		so.MigrateFraction = 0.10
	}
	if so.WarmupBeforeMigrate == 0 {
		so.WarmupBeforeMigrate = 3 * time.Second
	}
	if so.TotalRuntime == 0 {
		so.TotalRuntime = 15 * time.Second
	}
	if so.SampleEvery == 0 {
		so.SampleEvery = 250 * time.Millisecond
	}
	if so.ServerThreads == 0 {
		so.ServerThreads = 2
	}
	if so.DriveThreads == 0 {
		so.DriveThreads = 2
	}
	return so
}

// ScaleOut runs the Figure 10/11/12 experiment: load a source server, drive
// YCSB-F, migrate a fraction of the hash space to an idle target at the
// warmup mark, and sample system/source/target throughput plus the target's
// pending set until the end of the run.
func ScaleOut(so ScaleOutOptions) (*ScaleOutResult, error) {
	so = so.withDefaults()
	o := so.Options

	memPages := o.MemPages
	ssd := storage.LatencyModel{}
	switch so.Mode {
	case ModeIndirection, ModeRocksteady:
		if so.MemPagesOverride > 0 {
			memPages = so.MemPagesOverride
		} else {
			memPages = o.MemPages / 4 // force a stable region on "SSD"
		}
		lat := so.SSDReadLatency
		if lat == 0 {
			lat = 100 * time.Microsecond
		}
		ssd = storage.LatencyModel{ReadLatency: lat,
			WriteLatency: 100 * time.Microsecond}
	}

	cl := NewCluster(transport.AcceleratedTCP)
	defer cl.Close()
	src, err := cl.AddServer(ServerSpec{
		ID: "source", Threads: so.ServerThreads,
		PageBits: o.PageBits, MemPages: memPages,
		Rocksteady: so.Mode == ModeRocksteady,
		NoSampling: so.NoSampling,
		SSDModel:   ssd,
		Ranges:     []metadata.HashRange{metadata.FullRange},
	})
	if err != nil {
		return nil, err
	}
	tgt, err := cl.AddServer(ServerSpec{
		ID: "target", Threads: so.ServerThreads,
		PageBits: o.PageBits, MemPages: memPages,
		SSDModel: ssd,
	})
	if err != nil {
		return nil, err
	}
	if err := cl.Load(o); err != nil {
		return nil, err
	}
	if so.Mode != ModeAllInMemory && src.Store().Log().SafeHeadAddress() == 0 {
		return nil, fmt.Errorf("bench: dataset did not spill to SSD; increase Keys or shrink MemPagesOverride")
	}

	res := &ScaleOutResult{Mode: so.Mode, MigrationAt: so.WarmupBeforeMigrate}

	// Background drive for the whole runtime.
	stop := make(chan struct{})
	driveDone := make(chan error, 1)
	go func() {
		_, err := cl.drive(o, so.DriveThreads, ZipfianGen(o.Keys), so.TotalRuntime, false, stop)
		driveDone <- err
	}()

	// Timeline sampler.
	start := time.Now()
	var lastSrc, lastTgt uint64
	migrated := false
	var preMigrationMops float64
	var preSamples int
	recovered := time.Duration(0)
	ticker := time.NewTicker(so.SampleEvery)
	defer ticker.Stop()
	for time.Since(start) < so.TotalRuntime {
		<-ticker.C
		at := time.Since(start)
		curSrc := src.Stats().OpsCompleted.Load()
		curTgt := tgt.Stats().OpsCompleted.Load()
		interval := so.SampleEvery.Seconds()
		sample := TimelineSample{
			At:         at,
			SourceMops: float64(curSrc-lastSrc) / interval / 1e6,
			TargetMops: float64(curTgt-lastTgt) / interval / 1e6,
			PendingOps: tgt.Stats().PendingOps.Load(),
		}
		sample.SystemMops = sample.SourceMops + sample.TargetMops
		res.Samples = append(res.Samples, sample)
		lastSrc, lastTgt = curSrc, curTgt

		if !migrated && at >= so.WarmupBeforeMigrate {
			migrated = true
			// Pre-migration mean for the recovery metric.
			for _, s := range res.Samples[1:] {
				preMigrationMops += s.SystemMops
				preSamples++
			}
			if preSamples > 0 {
				preMigrationMops /= float64(preSamples)
			}
			width := uint64(float64(^uint64(0)) * so.MigrateFraction)
			if _, err := src.StartMigration("target",
				metadata.HashRange{Start: 0, End: width}); err != nil {
				close(stop)
				<-driveDone
				return res, err
			}
			res.MigrationAt = at
		}
		if migrated && recovered == 0 && preMigrationMops > 0 &&
			sample.SystemMops >= 0.9*preMigrationMops && at > res.MigrationAt {
			recovered = at - res.MigrationAt
		}
	}
	close(stop)
	if err := <-driveDone; err != nil {
		return res, err
	}
	// The migration may still be finishing (checkpoints, pending drain);
	// wait for the dependency to clear before reading the report.
	waitDeadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(waitDeadline) {
		if len(cl.Meta.PendingMigrationsFor("source")) == 0 &&
			len(cl.Meta.PendingMigrationsFor("target")) == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	res.Report = src.LastMigrationReport()
	res.MigratedFromMemoryBytes = res.Report.BytesFromMemory
	res.ThroughputRecoveredIn = recovered
	return res, nil
}

// Fig13Row is one migration mode's bytes-shipped-from-memory (Figure 13).
type Fig13Row struct {
	Mode                    ScaleOutMode
	MigratedFromMemoryBytes uint64
	MigrationTook           time.Duration
}

// Fig13 runs the three scale-out modes and reports data migrated from main
// memory plus end-to-end migration duration.
func Fig13(so ScaleOutOptions) ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, mode := range []ScaleOutMode{ModeAllInMemory, ModeIndirection, ModeRocksteady} {
		run := so
		run.Mode = mode
		res, err := ScaleOut(run)
		if err != nil {
			return rows, err
		}
		took := res.Report.Finished.Sub(res.Report.Started)
		rows = append(rows, Fig13Row{
			Mode:                    mode,
			MigratedFromMemoryBytes: res.MigratedFromMemoryBytes,
			MigrationTook:           took,
		})
		so.Options.logf("fig13 %-22s bytes=%d took=%v", mode,
			res.MigratedFromMemoryBytes, took)
	}
	return rows, nil
}

// Fig14Result compares target ramp-up with and without sampled records.
type Fig14Result struct {
	WithSampling    *ScaleOutResult
	WithoutSampling *ScaleOutResult
}

// TargetRampTime returns how long after ownership transfer the target's
// throughput first exceeded threshold Mops.
func targetRampTime(r *ScaleOutResult, threshold float64) time.Duration {
	for _, s := range r.Samples {
		if s.At > r.MigrationAt && s.TargetMops >= threshold {
			return s.At - r.MigrationAt
		}
	}
	return -1
}

// Fig14 reproduces Figure 14: target throughput immediately after ownership
// transfer, sampling on vs off (all data in memory).
func Fig14(so ScaleOutOptions) (*Fig14Result, error) {
	so.Mode = ModeAllInMemory
	with := so
	with.NoSampling = false
	withRes, err := ScaleOut(with)
	if err != nil {
		return nil, err
	}
	without := so
	without.NoSampling = true
	withoutRes, err := ScaleOut(without)
	if err != nil {
		return nil, err
	}
	return &Fig14Result{WithSampling: withRes, WithoutSampling: withoutRes}, nil
}
