package bench

// The dispatch hot-path microbenchmark (BenchmarkDispatchHotPath and the
// shadowfax-bench "hotpath" experiment): one server, one dispatcher thread,
// one wire-level driver session, everything served from memory. It measures
// exactly the normal-operation path the paper's single-server throughput
// rests on (§3.1–3.2, Fig. 5): RequestBatch in → execute against the shared
// store → ResponseBatch out, with no migration, no pending I/O and no view
// churn. The driver speaks raw wire frames over a cost-free in-process
// transport and reuses every buffer, so allocations measured around RunBatch
// are dominated by the server's dispatch path — which is what the
// allocation-budget guard in internal/core pins down.

import (
	"fmt"
	"runtime"

	"repro/internal/metadata"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

// HotPathMix is an operation mix for the dispatch hot-path microbenchmark.
// Percentages must sum to 100.
type HotPathMix struct {
	Name      string
	ReadPct   int
	UpsertPct int
	RMWPct    int
}

// The standard mixes reported in BENCH_hotpath.json.
var (
	// HotPathMixed is the headline read/upsert blend (YCSB-A shaped).
	HotPathMixed = HotPathMix{Name: "read50_upsert50", ReadPct: 50, UpsertPct: 50}
	// HotPathRead is 100% in-memory reads (YCSB-C shaped).
	HotPathRead = HotPathMix{Name: "read100", ReadPct: 100}
	// HotPathUpsert is 100% blind upserts (in-place updates at steady state).
	HotPathUpsert = HotPathMix{Name: "upsert100", UpsertPct: 100}
	// HotPathRMW is 100% counter RMWs (YCSB-F shaped; use 8-byte values so
	// the in-place counter path applies).
	HotPathRMW = HotPathMix{Name: "rmw100", RMWPct: 100}
)

// hotPathSessionID is the driver's client session ID.
const hotPathSessionID = 0x710a

// HotPathHarness drives one dispatcher's normal-operation path with reused
// buffers. It is not safe for concurrent use; each goroutine needs its own.
type HotPathHarness struct {
	cl   *Cluster
	conn transport.Conn
	o    Options

	view uint64
	seq  uint32
	gen  ycsb.Generator
	lcg  uint64 // op-kind selector

	req     wire.RequestBatch
	resp    wire.ResponseBatch
	reqBuf  []byte
	keyBufs [][]byte
	val     []byte
	delta   []byte
}

// NewHotPathHarness boots a one-server cluster over a cost-free in-process
// transport, loads the dataset, and dials a driver connection. The dataset
// is sized to stay fully in memory: the benchmark measures the inline path.
func NewHotPathHarness(o Options) (*HotPathHarness, error) {
	o = o.withDefaults()
	cl := NewCluster(transport.Free)
	if _, err := cl.AddServer(ServerSpec{
		ID: "hot", Threads: 1, PageBits: o.PageBits, MemPages: o.MemPages,
		Ranges: []metadata.HashRange{metadata.FullRange},
	}); err != nil {
		cl.Close()
		return nil, err
	}
	if err := cl.Load(o); err != nil {
		cl.Close()
		return nil, err
	}
	conn, err := cl.Tr.Dial(cl.Servers[0].Addr())
	if err != nil {
		cl.Close()
		return nil, err
	}
	h := &HotPathHarness{
		cl:      cl,
		conn:    conn,
		o:       o,
		view:    cl.Servers[0].CurrentView().Number,
		gen:     ycsb.NewUniform(o.Keys, 1),
		lcg:     1,
		keyBufs: make([][]byte, o.BatchOps),
		val:     make([]byte, o.ValueBytes),
		delta:   make([]byte, 8),
	}
	for i := range h.keyBufs {
		h.keyBufs[i] = make([]byte, ycsb.DefaultKeyBytes)
	}
	h.delta[0] = 1
	h.req.Ops = make([]wire.Op, 0, o.BatchOps)
	return h, nil
}

// BatchOps returns the number of operations per RunBatch call.
func (h *HotPathHarness) BatchOps() int { return h.o.BatchOps }

// Close tears the harness down.
func (h *HotPathHarness) Close() {
	h.conn.Close()
	h.cl.Close()
}

// pickOp selects the next operation kind from the mix (cheap LCG, no
// allocation) and returns its value/input payload.
func (h *HotPathHarness) pickOp(mix HotPathMix) (wire.OpKind, []byte) {
	h.lcg = h.lcg*6364136223846793005 + 1442695040888963407
	r := int((h.lcg >> 33) % 100)
	switch {
	case r < mix.ReadPct:
		return wire.OpRead, nil
	case r < mix.ReadPct+mix.UpsertPct:
		return wire.OpUpsert, h.val
	default:
		return wire.OpRMW, h.delta
	}
}

// RunBatch issues one request batch of the given mix and spins until every
// operation's result has come back. All buffers are reused across calls.
func (h *HotPathHarness) RunBatch(mix HotPathMix) error {
	b := &h.req
	b.View = h.view
	b.SessionID = hotPathSessionID
	b.Ops = b.Ops[:0]
	n := h.o.BatchOps
	for i := 0; i < n; i++ {
		h.seq++
		k := h.keyBufs[i]
		ycsb.FillKey(k, h.gen.Next())
		kind, val := h.pickOp(mix)
		b.Ops = append(b.Ops, wire.Op{Kind: kind, Seq: h.seq, Key: k, Value: val})
	}
	h.reqBuf = wire.AppendRequestBatch(h.reqBuf[:0], b)
	if err := h.conn.Send(h.reqBuf); err != nil {
		return err
	}
	got := 0
	for got < n {
		frame, ok, err := h.conn.TryRecv()
		if err != nil {
			return err
		}
		if !ok {
			runtime.Gosched()
			continue
		}
		if err := wire.DecodeResponseBatch(frame, &h.resp); err != nil {
			return err
		}
		if h.resp.Rejected {
			// No migrations or view churn run here; a rejection means the
			// harness view bootstrap is broken, not a transient.
			return fmt.Errorf("bench: hot-path batch rejected (server view %d, ours %d)",
				h.resp.ServerView, h.view)
		}
		got += len(h.resp.Results)
	}
	return nil
}
