package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/metadata"
	"repro/internal/transport"
	"repro/internal/ycsb"
)

// The hotspot-shift scenario exercises the elastic control plane end to
// end: a loaded server and an idle joiner, a skewed workload whose hot set
// JUMPS mid-run, and no manual Migrate() anywhere — the balancer alone must
// detect each imbalance and split. It measures what the paper's scale-out
// timeline figures measure (system throughput around a migration), with the
// trigger moved from the operator to the policy layer.

// AutoScaleOptions parameterizes the hotspot-shift experiment.
type AutoScaleOptions struct {
	Options
	// TotalRuntime is the whole experiment duration.
	TotalRuntime time.Duration
	// SampleEvery sets the timeline resolution.
	SampleEvery time.Duration
	// ShiftAt, when nonzero, jumps the workload's hot set to a different
	// key region at this offset (the hotspot shift). Zero disables the
	// shift: the scenario is then plain automatic scale-out.
	ShiftAt time.Duration
	// ServerThreads / DriveThreads size the deployment.
	ServerThreads int
	DriveThreads  int

	// Balancer knobs (zero = the balancer's defaults, except the pass
	// period and floors which are scaled for bench runs).
	BalancerEvery time.Duration
	Imbalance     float64
	Cooldown      time.Duration
	MinOpsPerSec  float64
}

func (ao AutoScaleOptions) withDefaults() AutoScaleOptions {
	ao.Options = ao.Options.withDefaults()
	if ao.TotalRuntime == 0 {
		ao.TotalRuntime = 12 * time.Second
	}
	if ao.SampleEvery == 0 {
		ao.SampleEvery = 250 * time.Millisecond
	}
	if ao.ServerThreads == 0 {
		ao.ServerThreads = 2
	}
	if ao.DriveThreads == 0 {
		ao.DriveThreads = 2
	}
	if ao.BalancerEvery == 0 {
		ao.BalancerEvery = 250 * time.Millisecond
	}
	if ao.Imbalance == 0 {
		ao.Imbalance = 2.0
	}
	if ao.Cooldown == 0 {
		ao.Cooldown = 3 * time.Second
	}
	if ao.MinOpsPerSec == 0 {
		ao.MinOpsPerSec = 1000
	}
	return ao
}

// AutoScaleSample is one sampling interval of the hotspot-shift timeline.
type AutoScaleSample struct {
	At         time.Duration
	SystemMops float64
	SourceMops float64 // the initially-loaded server
	TargetMops float64 // the joiner
	// Migrations is the cumulative count the balancer has triggered.
	Migrations uint64
}

// AutoScaleResult is a full hotspot-shift experiment record.
type AutoScaleResult struct {
	Samples []AutoScaleSample
	// FirstSplitAt is when the balancer's first migration was observed
	// (-1 when it never acted).
	FirstSplitAt time.Duration
	// ShiftAt echoes the hot-set jump offset (0 = no shift).
	ShiftAt time.Duration
	// MigrationsTriggered is the balancer's final migration count.
	MigrationsTriggered uint64
}

// shiftGen wraps a Zipfian generator with a shared, atomically-shifting
// offset: the hot head of the distribution maps to a different key region
// after the shift, re-imbalancing whatever split the balancer found first.
type shiftGen struct {
	inner  ycsb.Generator
	offset *atomic.Uint64
}

func (g *shiftGen) Next() uint64 { return (g.inner.Next() + g.offset.Load()) % g.inner.N() }
func (g *shiftGen) N() uint64    { return g.inner.N() }

// AutoScaleOut runs the hotspot-shift scenario: "source" starts owning the
// full hash space with the balancer enabled, "target" joins idle and empty,
// YCSB-F Zipfian load drives only source — and every migration in the run
// is balancer-triggered. With ShiftAt set, the hot key set jumps mid-run;
// the balancer re-evaluates each pass and acts again only if the shifted
// hot mass lands unevenly across the split (hash partitioning spreads hot
// keys, so a median split usually absorbs the shift — the scenario verifies
// the balancer stays quiet exactly then).
func AutoScaleOut(ao AutoScaleOptions) (*AutoScaleResult, error) {
	ao = ao.withDefaults()
	o := ao.Options

	cl := NewCluster(transport.AcceleratedTCP)
	defer cl.Close()
	src, err := cl.AddServer(ServerSpec{
		ID: "source", Threads: ao.ServerThreads,
		PageBits: o.PageBits, MemPages: o.MemPages,
		Ranges:         []metadata.HashRange{metadata.FullRange},
		AutoScale:      true,
		AutoScaleEvery: ao.BalancerEvery,
		Imbalance:      ao.Imbalance,
		Cooldown:       ao.Cooldown,
		MinOpsPerSec:   ao.MinOpsPerSec,
	})
	if err != nil {
		return nil, err
	}
	tgt, err := cl.AddServer(ServerSpec{
		ID: "target", Threads: ao.ServerThreads,
		PageBits: o.PageBits, MemPages: o.MemPages,
	})
	if err != nil {
		return nil, err
	}
	if err := cl.Load(o); err != nil {
		return nil, err
	}

	var offset atomic.Uint64
	gf := func(seed uint64) ycsb.Generator {
		return &shiftGen{
			inner:  ycsb.NewZipfian(o.Keys, ycsb.DefaultTheta, seed),
			offset: &offset,
		}
	}

	stop := make(chan struct{})
	driveDone := make(chan error, 1)
	go func() {
		_, err := cl.drive(o, ao.DriveThreads, gf, ao.TotalRuntime, false, stop)
		driveDone <- err
	}()

	res := &AutoScaleResult{FirstSplitAt: -1, ShiftAt: ao.ShiftAt}
	start := time.Now()
	var lastSrc, lastTgt uint64
	shifted := ao.ShiftAt == 0
	ticker := time.NewTicker(ao.SampleEvery)
	defer ticker.Stop()
	for time.Since(start) < ao.TotalRuntime {
		<-ticker.C
		at := time.Since(start)
		curSrc := src.Stats().OpsCompleted.Load()
		curTgt := tgt.Stats().OpsCompleted.Load()
		interval := ao.SampleEvery.Seconds()
		sample := AutoScaleSample{
			At:         at,
			SourceMops: float64(curSrc-lastSrc) / interval / 1e6,
			TargetMops: float64(curTgt-lastTgt) / interval / 1e6,
			Migrations: src.StatsSnapshot().BalanceMigrations,
		}
		sample.SystemMops = sample.SourceMops + sample.TargetMops
		lastSrc, lastTgt = curSrc, curTgt
		res.Samples = append(res.Samples, sample)
		if res.FirstSplitAt < 0 && sample.Migrations > 0 {
			res.FirstSplitAt = at
		}
		if !shifted && at >= ao.ShiftAt {
			shifted = true
			// Jump the hot set half the keyspace away: the Zipfian head now
			// lands on different keys (and so different hash ranges).
			offset.Store(o.Keys / 2)
			o.logf("autoscale: hotspot shifted at %v", at.Round(time.Millisecond))
		}
	}
	close(stop)
	if err := <-driveDone; err != nil {
		return res, err
	}
	res.MigrationsTriggered = src.StatsSnapshot().BalanceMigrations
	if res.MigrationsTriggered == 0 {
		return res, fmt.Errorf("bench: balancer never split (is the load above MinOpsPerSec?)")
	}
	return res, nil
}
