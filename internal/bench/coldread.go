package bench

import (
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/storage"
	"repro/internal/ycsb"
)

// ---------------------------------------------------------------------------
// Cold reads: the batched pending-read pipeline and the second-chance read
// cache under a larger-than-memory YCSB-C workload (Zipfian reads only).

// ColdReadOptions extends Options with the sweep parameters.
type ColdReadOptions struct {
	Options
	// BudgetsPct lists the memory budgets to sweep, as percentages of the
	// preloaded dataset's log footprint (default 10, 25, 50).
	BudgetsPct []int
	// Threads is the number of concurrent reader sessions (default 2).
	Threads int
	// SSDReadLatency models the local device (default 100µs).
	SSDReadLatency time.Duration
}

func (co ColdReadOptions) withDefaults() ColdReadOptions {
	co.Options = co.Options.withDefaults()
	if len(co.BudgetsPct) == 0 {
		co.BudgetsPct = []int{10, 25, 50}
	}
	if co.Threads == 0 {
		co.Threads = 2
	}
	if co.SSDReadLatency == 0 {
		co.SSDReadLatency = 100 * time.Microsecond
	}
	return co
}

// ColdReadRow is one memory budget's cold-read measurement, cache off vs on.
type ColdReadRow struct {
	BudgetPct int // requested budget (% of dataset footprint)
	MemPages  int // page frames actually granted (power of two)

	CacheOffMops float64
	CacheOnMops  float64

	// Cache-on run counters.
	HitRate    float64 // read-cache memory hits / completed reads
	Copies     uint64  // promotions to the mutable tail
	Coalesced  uint64  // pending reads that shared an in-flight device I/O
	BatchReads uint64  // batched device submissions
}

// ColdRead sweeps memory budgets for a read-only Zipfian workload over a
// dataset that spills to the simulated SSD, measuring the pending-read
// pipeline with the second-chance read cache disabled and enabled.
func ColdRead(co ColdReadOptions) ([]ColdReadRow, error) {
	co = co.withDefaults()
	o := co.Options

	// Probe pass: preload once into an oversized store to learn the
	// dataset's log footprint, so budgets can be expressed as a fraction
	// of it.
	footprint, err := coldReadFootprint(o)
	if err != nil {
		return nil, err
	}
	pageSize := uint64(1) << o.PageBits

	var rows []ColdReadRow
	for _, pct := range co.BudgetsPct {
		want := footprint * uint64(pct) / 100 / pageSize
		pages := nearestPow2(int(want))
		if pages < 4 {
			pages = 4
		}
		row := ColdReadRow{BudgetPct: pct, MemPages: pages}
		if row.CacheOffMops, _, err = coldReadPoint(co, pages, false); err != nil {
			return rows, err
		}
		var st coldReadStats
		if row.CacheOnMops, st, err = coldReadPoint(co, pages, true); err != nil {
			return rows, err
		}
		row.HitRate = st.hitRate
		row.Copies = st.copies
		row.Coalesced = st.coalesced
		row.BatchReads = st.batchReads
		o.logf("coldread budget=%d%% pages=%d off=%.3f on=%.3f hit=%.1f%% copies=%d",
			pct, pages, row.CacheOffMops, row.CacheOnMops, 100*row.HitRate, row.Copies)
		rows = append(rows, row)
	}
	return rows, nil
}

// coldReadFootprint preloads the dataset into a memory-only store and
// returns the log bytes it occupies.
func coldReadFootprint(o Options) (uint64, error) {
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()
	mem := 1
	for uint64(mem)<<o.PageBits < 4*o.Keys*uint64(o.ValueBytes) {
		mem <<= 1
	}
	st, err := faster.NewStore(faster.Config{
		IndexBuckets: 1 << 16,
		Log: hlog.Config{PageBits: o.PageBits, MemPages: mem,
			MutablePages: mem / 2, Device: dev},
	})
	if err != nil {
		return 0, err
	}
	defer st.Close()
	coldReadPreload(st, o)
	return uint64(st.Log().TailAddress()), nil
}

func coldReadPreload(st *faster.Store, o Options) {
	sess := st.NewSession()
	val := make([]byte, o.ValueBytes)
	for i := uint64(0); i < o.Keys; i++ {
		sess.Upsert(ycsb.KeyBytes(i), val, nil)
	}
	sess.CompletePending(true)
	sess.Close()
}

type coldReadStats struct {
	hitRate    float64
	copies     uint64
	coalesced  uint64
	batchReads uint64
}

// coldReadPoint measures one (budget, cache setting) cell: preload, then
// drive Threads reader sessions with Zipfian keys for the measurement
// window, counting completed reads.
func coldReadPoint(co ColdReadOptions, memPages int, cache bool) (float64, coldReadStats, error) {
	o := co.Options
	dev := storage.NewMemDevice(storage.LatencyModel{
		ReadLatency: co.SSDReadLatency,
	}, 16)
	defer dev.Close()
	st, err := faster.NewStore(faster.Config{
		IndexBuckets: 1 << 16,
		ReadCache:    cache,
		Log: hlog.Config{PageBits: o.PageBits, MemPages: memPages,
			MutablePages: memPages / 2, Device: dev},
	})
	if err != nil {
		return 0, coldReadStats{}, err
	}
	defer st.Close()
	coldReadPreload(st, o)

	done := make(chan uint64, co.Threads)
	var stop atomic.Bool
	for t := 0; t < co.Threads; t++ {
		go func(t int) {
			s := st.NewSession()
			defer s.Close()
			z := ycsb.NewZipfian(o.Keys, ycsb.DefaultTheta, uint64(t+1))
			var key [8]byte
			var completed uint64
			count := func(rs faster.Status, _ []byte) { completed++ }
			for !stop.Load() {
				for j := 0; j < 256; j++ {
					ycsb.FillKey(key[:], z.Next())
					s.Read(key[:], count)
				}
				s.CompletePending(false)
				s.Refresh()
			}
			s.CompletePending(true)
			done <- completed
		}(t)
	}
	timer := time.NewTimer(o.Duration)
	<-timer.C
	stop.Store(true)
	var total uint64
	for t := 0; t < co.Threads; t++ {
		total += <-done
	}

	ss := st.Stats()
	cs := coldReadStats{
		copies:     ss.ReadCacheCopies.Load(),
		coalesced:  ss.PendingCoalesced.Load(),
		batchReads: ss.DeviceBatchReads.Load(),
	}
	if total > 0 {
		cs.hitRate = float64(ss.ReadCacheHits.Load()) / float64(total)
	}
	return float64(total) / o.Duration.Seconds() / 1e6, cs, nil
}

// nearestPow2 rounds n to the nearest power of two (ties round up).
func nearestPow2(n int) int {
	if n < 1 {
		return 1
	}
	lo := 1
	for lo*2 <= n {
		lo *= 2
	}
	if n-lo < 2*lo-n {
		return lo
	}
	return 2 * lo
}
