package bench

import (
	"testing"
	"time"
)

// tiny returns options scaled for fast CI-style runs.
func tiny() Options {
	return Options{
		Keys:     5_000,
		Duration: 300 * time.Millisecond,
		MemPages: 64,
	}
}

func TestFig8Smoke(t *testing.T) {
	rows, err := Fig8([]int{1, 2}, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.FasterMops <= 0 || r.ShadowfaxMops <= 0 || r.NoAccelMops <= 0 {
			t.Fatalf("zero throughput: %+v", r)
		}
		// The acceleration gap is Figure 8's headline: software TCP must
		// cost throughput.
		if r.NoAccelMops >= r.ShadowfaxMops {
			t.Logf("warning: no-accel (%v) not below accel (%v) at %d threads",
				r.NoAccelMops, r.ShadowfaxMops, r.Threads)
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	rows, err := Fig9([]int{2}, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ShadowfaxMops <= 0 || rows[0].SeastarMops <= 0 {
		t.Fatalf("zero throughput: %+v", rows[0])
	}
}

func TestTable2Smoke(t *testing.T) {
	rows, err := Table2(2, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.ThroughputMops <= 0 {
			t.Fatalf("zero throughput for %s", r.Network)
		}
		if r.MedianLatency <= 0 {
			t.Fatalf("no latency for %s", r.Network)
		}
	}
}

func TestScaleOutSmoke(t *testing.T) {
	so := ScaleOutOptions{
		Options:             tiny(),
		Mode:                ModeAllInMemory,
		WarmupBeforeMigrate: 300 * time.Millisecond,
		TotalRuntime:        1500 * time.Millisecond,
		SampleEvery:         100 * time.Millisecond,
	}
	res, err := ScaleOut(so)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 5 {
		t.Fatalf("only %d samples", len(res.Samples))
	}
	if res.Report.RecordsSent == 0 {
		t.Fatal("migration sent nothing")
	}
	// Target must have served some traffic after the migration.
	servedTarget := false
	for _, s := range res.Samples {
		if s.TargetMops > 0 {
			servedTarget = true
		}
	}
	if !servedTarget {
		t.Fatal("target never served traffic post-migration")
	}
}

func TestAutoScaleOutSmoke(t *testing.T) {
	res, err := AutoScaleOut(AutoScaleOptions{
		Options:       tiny(),
		TotalRuntime:  3 * time.Second,
		SampleEvery:   100 * time.Millisecond,
		BalancerEvery: 100 * time.Millisecond,
		Imbalance:     1.5,
		MinOpsPerSec:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MigrationsTriggered == 0 || res.FirstSplitAt < 0 {
		t.Fatalf("balancer never split: %+v", res)
	}
	// The joiner must end up serving traffic it was never manually given.
	servedTarget := false
	for _, s := range res.Samples {
		if s.TargetMops > 0 {
			servedTarget = true
		}
	}
	if !servedTarget {
		t.Fatal("target never served traffic after the balancer split")
	}
}

func TestScaleOutIndirectionSmoke(t *testing.T) {
	o := tiny()
	o.Keys = 20_000
	o.ValueBytes = 128
	so := ScaleOutOptions{
		Options:             o,
		Mode:                ModeIndirection,
		WarmupBeforeMigrate: 300 * time.Millisecond,
		TotalRuntime:        2 * time.Second,
		SampleEvery:         100 * time.Millisecond,
		MemPagesOverride:    16, // 1 MiB budget -> spills
	}
	res, err := ScaleOut(so)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.IndirectionsSent == 0 {
		t.Fatal("no indirection records in indirection mode")
	}
}

func TestFig15Smoke(t *testing.T) {
	rows, err := Fig15([]int{1, 64}, 2, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.ViewMops <= 0 || r.HashMops <= 0 {
			t.Fatalf("zero throughput: %+v", r)
		}
	}
}

func TestClusterScaleSmoke(t *testing.T) {
	rows, err := ClusterScale([]int{1, 2}, 1, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Mops <= 0 || rows[1].Mops <= 0 {
		t.Fatalf("zero throughput: %+v", rows)
	}
}

func TestSplitFullCoversSpace(t *testing.T) {
	for _, p := range []int{1, 3, 16, 2048} {
		ranges := splitFull(p)
		if len(ranges) != p {
			t.Fatalf("splitFull(%d) gave %d ranges", p, len(ranges))
		}
		if ranges[0].Start != 0 || ranges[p-1].End != ^uint64(0) {
			t.Fatalf("splitFull(%d) does not cover the space", p)
		}
		for i := 1; i < p; i++ {
			if ranges[i].Start != ranges[i-1].End {
				t.Fatalf("splitFull(%d) has a gap at %d", p, i)
			}
		}
	}
}
