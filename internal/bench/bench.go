// Package bench is the experiment harness that regenerates every table and
// figure from the paper's evaluation (§4). Each experiment builds a scaled
// cluster (DESIGN.md §2 documents the scaling), drives the paper's workload
// against it, and returns the same rows/series the paper reports.
//
// cmd/shadowfax-bench wraps these functions as sub-commands; bench_test.go
// wraps them as testing.B benchmarks.
package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

// Options controls experiment scale. The zero value is filled with defaults
// sized for a laptop-class machine (seconds per data point, ~10^5 keys).
type Options struct {
	// Keys is the dataset size (the paper used 250M; scaled here).
	Keys uint64
	// ValueBytes is the record value size (paper: 256).
	ValueBytes int
	// Duration is the measurement window per data point.
	Duration time.Duration
	// ClientThreads drives the load (0 = match server threads).
	ClientThreads int
	// BatchOps is the client batch size in operations.
	BatchOps int
	// Outstanding bounds per-client-thread in-flight operations.
	Outstanding int
	// MemPages / PageBits size each server's in-memory log budget.
	PageBits uint
	MemPages int
	// Verbose, when non-nil, receives progress lines.
	Verbose io.Writer
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Keys == 0 {
		o.Keys = 100_000
	}
	if o.ValueBytes == 0 {
		o.ValueBytes = 64 // scaled from the paper's 256B to fit small logs
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.BatchOps == 0 {
		o.BatchOps = 64
	}
	if o.Outstanding == 0 {
		o.Outstanding = 2048
	}
	if o.PageBits == 0 {
		o.PageBits = 16 // 64 KiB pages
	}
	if o.MemPages == 0 {
		o.MemPages = 256 // 16 MiB in-memory budget
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Verbose != nil {
		fmt.Fprintf(o.Verbose, format+"\n", args...)
	}
}

// Cluster is a self-contained simulated deployment.
type Cluster struct {
	Meta *metadata.Store
	Tr   transport.Transport
	Tier *storage.SharedTier

	Servers []*core.Server
	devices []*storage.MemDevice
}

// NewCluster creates an empty deployment over an in-process transport with
// the given network cost model.
func NewCluster(cost transport.CostModel) *Cluster {
	return &Cluster{
		Meta: metadata.NewStore(),
		Tr:   transport.NewInMem(cost),
		Tier: storage.NewSharedTier(storage.LatencyModel{
			ReadLatency: 2 * time.Millisecond, IOPS: 7500}),
	}
}

// ServerSpec configures one server in the cluster.
type ServerSpec struct {
	ID         string
	Threads    int
	PageBits   uint
	MemPages   int
	Rocksteady bool
	NoSampling bool
	SSDModel   storage.LatencyModel
	Ranges     []metadata.HashRange

	// AutoScale hosts the elastic control plane's balancer on this server
	// (the hotspot-shift scenario); the remaining fields are its knobs.
	AutoScale      bool
	AutoScaleEvery time.Duration
	Imbalance      float64
	Cooldown       time.Duration
	MinOpsPerSec   float64
}

// AddServer boots a server into the cluster.
func (cl *Cluster) AddServer(spec ServerSpec) (*core.Server, error) {
	dev := storage.NewMemDevice(spec.SSDModel, 4)
	mut := spec.MemPages / 2
	if mut < 1 {
		mut = 1
	}
	s, err := core.NewServer(core.ServerConfig{
		ID: spec.ID, Addr: spec.ID, Threads: spec.Threads,
		Transport: cl.Tr, Meta: cl.Meta,
		Store: faster.Config{
			IndexBuckets: 1 << 16,
			Log: hlog.Config{
				PageBits: spec.PageBits, MemPages: spec.MemPages,
				MutablePages: mut, Device: dev, Tier: cl.Tier, LogID: spec.ID,
			},
		},
		Rocksteady:      spec.Rocksteady,
		DisableSampling: spec.NoSampling,
		SampleDuration:  100 * time.Millisecond,

		AutoScale:          spec.AutoScale,
		AutoScaleEvery:     spec.AutoScaleEvery,
		AutoScaleImbalance: spec.Imbalance,
		AutoScaleCooldown:  spec.Cooldown,
		AutoScaleMinRate:   spec.MinOpsPerSec,
	}, spec.Ranges...)
	if err != nil {
		dev.Close()
		return nil, err
	}
	cl.Meta.SetServerAddr(spec.ID, s.Addr())
	cl.Servers = append(cl.Servers, s)
	cl.devices = append(cl.devices, dev)
	return s, nil
}

// Close tears the cluster down.
func (cl *Cluster) Close() {
	for _, s := range cl.Servers {
		s.Close()
	}
	for _, d := range cl.devices {
		d.Close()
	}
	cl.Tier.Close()
}

// Load writes the dataset (keys 0..n with counter values) through a client.
func (cl *Cluster) Load(o Options) error {
	ct, err := client.NewThread(client.Config{
		Transport: cl.Tr, Meta: cl.Meta, BatchOps: o.BatchOps})
	if err != nil {
		return err
	}
	defer ct.Close()
	val := make([]byte, o.ValueBytes)
	for i := uint64(0); i < o.Keys; i++ {
		binary.LittleEndian.PutUint64(val, i)
		if err := ct.Upsert(ycsb.KeyBytes(i), val, nil); err != nil {
			return err
		}
		for ct.Outstanding() > o.Outstanding {
			if ct.Poll() == 0 {
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
	if !ct.Drain(120 * time.Second) {
		return fmt.Errorf("bench: load did not drain")
	}
	return nil
}

// genFactory builds per-thread key generators.
type genFactory func(seed uint64) ycsb.Generator

// ZipfianGen returns a factory for the paper's default distribution.
func ZipfianGen(keys uint64) genFactory {
	return func(seed uint64) ycsb.Generator {
		return ycsb.NewZipfian(keys, ycsb.DefaultTheta, seed)
	}
}

// UniformGen returns a factory for Figure 9's distribution.
func UniformGen(keys uint64) genFactory {
	return func(seed uint64) ycsb.Generator {
		return ycsb.NewUniform(keys, seed)
	}
}

// DriveResult summarizes a drive window.
type DriveResult struct {
	Ops      uint64
	Duration time.Duration
	// LatencySamples are per-op latencies (sampled), sorted not guaranteed.
	LatencySamples []time.Duration
	// MeanOutstanding approximates average queue depth per thread.
	MeanOutstanding float64
}

// Mops returns million operations per second.
func (r DriveResult) Mops() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds() / 1e6
}

// drive runs nThreads client threads issuing YCSB-F RMWs for duration and
// returns the aggregate completion count (measured at the clients).
func (cl *Cluster) drive(o Options, nThreads int, gf genFactory, duration time.Duration,
	sampleLatency bool, stop <-chan struct{}) (DriveResult, error) {
	results := make(chan DriveResult, nThreads)
	errs := make(chan error, nThreads)
	for t := 0; t < nThreads; t++ {
		go func(t int) {
			res, err := cl.driveThread(o, uint64(t+1), gf, duration, sampleLatency, stop)
			if err != nil {
				errs <- err
				return
			}
			results <- res
		}(t)
	}
	var agg DriveResult
	agg.Duration = duration
	for i := 0; i < nThreads; i++ {
		select {
		case err := <-errs:
			return agg, err
		case r := <-results:
			agg.Ops += r.Ops
			agg.LatencySamples = append(agg.LatencySamples, r.LatencySamples...)
			agg.MeanOutstanding += r.MeanOutstanding
		}
	}
	agg.MeanOutstanding /= float64(nThreads)
	return agg, nil
}

// driveThread is one client thread's issue/poll loop.
func (cl *Cluster) driveThread(o Options, seed uint64, gf genFactory,
	duration time.Duration, sampleLatency bool, stop <-chan struct{}) (DriveResult, error) {
	ct, err := client.NewThread(client.Config{
		Transport: cl.Tr, Meta: cl.Meta, BatchOps: o.BatchOps})
	if err != nil {
		return DriveResult{}, err
	}
	defer ct.Close()
	gen := gf(seed)
	delta := make([]byte, 8)
	binary.LittleEndian.PutUint64(delta, 1)
	var res DriveResult

	deadline := time.Now().Add(duration)
	var key [8]byte
	outSamples, outTotal := 0, 0
	i := 0
	for time.Now().Before(deadline) {
		select {
		case <-stop:
			goto out
		default:
		}
		for j := 0; j < 64; j++ {
			ycsb.FillKey(key[:], gen.Next())
			if sampleLatency && i%257 == 0 {
				issued := time.Now()
				ct.RMW(key[:], delta, func(wire.ResultStatus, []byte) {
					res.LatencySamples = append(res.LatencySamples, time.Since(issued))
				})
			} else {
				ct.RMW(key[:], delta, nil)
			}
			i++
		}
		ct.Flush()
		for ct.Outstanding() > o.Outstanding {
			if ct.Poll() == 0 {
				time.Sleep(10 * time.Microsecond)
			}
		}
		ct.Poll()
		outTotal += ct.Outstanding()
		outSamples++
	}
out:
	ct.Drain(30 * time.Second)
	res.Ops = ct.Stats().OpsCompleted
	res.Duration = duration
	if outSamples > 0 {
		res.MeanOutstanding = float64(outTotal) / float64(outSamples)
	}
	return res, nil
}
