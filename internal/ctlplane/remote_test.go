package ctlplane_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
)

// startEndpoint boots a minimal server whose provider is the local store —
// i.e. a designated metadata endpoint serving MsgMeta* frames.
func startEndpoint(t *testing.T, store *metadata.Store, tr transport.Transport) *core.Server {
	t.Helper()
	dev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	t.Cleanup(func() { dev.Close() })
	srv, err := core.NewServer(core.ServerConfig{
		ID: "ep", Addr: "ep", Threads: 2, Transport: tr, Meta: store,
		Store: faster.Config{
			IndexBuckets: 1 << 10,
			Log:          hlog.Config{PageBits: 14, MemPages: 8, MutablePages: 4, Device: dev},
		},
	}, metadata.FullRange)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	store.SetServerAddr("ep", srv.Addr())
	return srv
}

// TestRemoteProviderRoundTrip exercises every Provider method over the wire
// against a live metadata endpoint and checks the mutations land in the
// backing store (and vice versa: store-side changes become visible through
// the provider).
func TestRemoteProviderRoundTrip(t *testing.T) {
	store := metadata.NewStore()
	tr := transport.NewInMem(transport.Free)
	startEndpoint(t, store, tr)

	rp := ctlplane.NewRemoteProvider(tr, "ep", ctlplane.RemoteOptions{PollEvery: 5 * time.Millisecond})
	defer rp.Close()

	// Registration + addressing through the provider.
	v := rp.RegisterServer("joiner")
	if v.Number != 1 || len(v.Ranges) != 0 {
		t.Fatalf("joiner view = %+v, want empty view #1", v)
	}
	rp.SetServerAddr("joiner", "joiner-addr")
	if addr, err := rp.ServerAddr("joiner"); err != nil || addr != "joiner-addr" {
		t.Fatalf("ServerAddr = %q, %v", addr, err)
	}
	if got, err := store.ServerAddr("joiner"); err != nil || got != "joiner-addr" {
		t.Fatalf("mutation did not land in the backing store: %q, %v", got, err)
	}
	ids := rp.Servers()
	if len(ids) != 2 || ids[0] != "ep" || ids[1] != "joiner" {
		t.Fatalf("Servers() = %v", ids)
	}

	// Reads see live store state.
	if owner, _, err := rp.OwnerOf(42); err != nil || owner != "ep" {
		t.Fatalf("OwnerOf = %q, %v", owner, err)
	}
	own := rp.Ownership()
	if len(own) != 2 || !own["ep"].Owns(42) {
		t.Fatalf("Ownership() = %+v", own)
	}

	// Sentinel errors survive the wire.
	if _, _, _, err := rp.StartMigration("nope", "joiner", metadata.FullRange); !errors.Is(err, metadata.ErrUnknownServer) {
		t.Fatalf("StartMigration unknown source: %v", err)
	}

	// The atomic transition: remap + bump + register, observed remotely.
	rng := metadata.HashRange{Start: 1 << 62, End: 1 << 63}
	mig, sv, tv, err := rp.StartMigration("ep", "joiner", rng)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Number != 2 || tv.Number != 2 {
		t.Fatalf("post-migration views #%d/#%d, want #2/#2", sv.Number, tv.Number)
	}
	if got := rp.PendingMigrationsFor("joiner"); len(got) != 1 || got[0].ID != mig.ID {
		t.Fatalf("PendingMigrationsFor = %+v", got)
	}
	if m, err := rp.GetMigration(mig.ID); err != nil || m.Range != rng {
		t.Fatalf("GetMigration = %+v, %v", m, err)
	}
	if err := rp.MarkMigrationDone(mig.ID, "ep"); err != nil {
		t.Fatal(err)
	}
	if err := rp.MarkMigrationDone(mig.ID, "joiner"); err != nil {
		t.Fatal(err)
	}
	if err := rp.CancelMigration(mig.ID); !errors.Is(err, metadata.ErrMigrationDone) {
		t.Fatalf("cancel of complete migration: %v", err)
	}
	if err := rp.CollectMigration(mig.ID); err != nil {
		t.Fatal(err)
	}
	if got := rp.Migrations(); len(got) != 0 {
		t.Fatalf("Migrations() after collect = %+v", got)
	}

	// Watch: a store-side change must produce a token via the poll loop.
	ch := rp.Watch()
	store.SetServerAddr("joiner", "joiner-addr-2")
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("watch never fired after a store mutation")
	}
	if addr, err := rp.ServerAddr("joiner"); err != nil || addr != "joiner-addr-2" {
		t.Fatalf("provider did not observe the new addr: %q, %v", addr, err)
	}
}

// TestRemoteProviderEndpointDown pins the failure mode: no endpoint, no
// cache — reads fail with ErrMetaUnavailable instead of hanging.
func TestRemoteProviderEndpointDown(t *testing.T) {
	tr := transport.NewInMem(transport.Free)
	rp := ctlplane.NewRemoteProvider(tr, "nowhere", ctlplane.RemoteOptions{Timeout: 50 * time.Millisecond})
	defer rp.Close()
	if _, err := rp.GetView("x"); !errors.Is(err, ctlplane.ErrMetaUnavailable) {
		t.Fatalf("GetView with endpoint down: %v", err)
	}
	if _, err := rp.ServerAddr("x"); !errors.Is(err, ctlplane.ErrMetaUnavailable) {
		t.Fatalf("ServerAddr with endpoint down: %v", err)
	}
}

// TestRemoteProviderOverlapRejection pins the concurrent-migration contract
// at the remote provider: disjoint in-flight migrations coexist (with
// strictly increasing epochs), overlapping starts come back as
// ErrMigrationOverlap across the wire, and a cancelled migration frees its
// range.
func TestRemoteProviderOverlapRejection(t *testing.T) {
	store := metadata.NewStore()
	tr := transport.NewInMem(transport.Free)
	startEndpoint(t, store, tr)

	rp := ctlplane.NewRemoteProvider(tr, "ep", ctlplane.RemoteOptions{PollEvery: 5 * time.Millisecond})
	defer rp.Close()
	rp.RegisterServer("t1")
	rp.RegisterServer("t2")

	m1, _, _, err := rp.StartMigration("ep", "t1", metadata.HashRange{Start: 100, End: 200})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, _, err := rp.StartMigration("ep", "t2", metadata.HashRange{Start: 300, End: 400})
	if err != nil {
		t.Fatalf("disjoint concurrent migration rejected remotely: %v", err)
	}
	if m2.Epoch <= m1.Epoch {
		t.Fatalf("epochs not strictly increasing over the wire: %d then %d", m1.Epoch, m2.Epoch)
	}

	// Overlaps with either in-flight range — including one the target now
	// owns — are rejected with the dedicated sentinel.
	for _, rng := range []metadata.HashRange{
		{Start: 100, End: 200}, {Start: 150, End: 160}, {Start: 350, End: 500},
	} {
		if _, _, _, err := rp.StartMigration("ep", "t1", rng); !errors.Is(err, metadata.ErrMigrationOverlap) {
			t.Fatalf("overlapping remote start %v: got %v, want ErrMigrationOverlap", rng, err)
		}
	}

	// The in-flight set (with epochs) is visible through the provider.
	inflight := 0
	for _, m := range rp.Migrations() {
		if m.InFlight() {
			inflight++
			if m.Epoch == 0 {
				t.Fatalf("in-flight migration %d lost its epoch over the wire", m.ID)
			}
		}
	}
	if inflight != 2 {
		t.Fatalf("in-flight migrations via provider = %d, want 2", inflight)
	}

	// Cancellation frees the range for a fresh start.
	if err := rp.CancelMigration(m1.ID); err != nil {
		t.Fatal(err)
	}
	m3, _, _, err := rp.StartMigration("ep", "t1", metadata.HashRange{Start: 100, End: 200})
	if err != nil {
		t.Fatalf("start over cancelled migration's range: %v", err)
	}
	if m3.Epoch <= m2.Epoch {
		t.Fatalf("epoch did not advance past %d: %d", m2.Epoch, m3.Epoch)
	}
}
