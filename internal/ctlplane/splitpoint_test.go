package ctlplane

import (
	"testing"

	"repro/internal/wire"
)

func TestSplitPointMedian(t *testing.T) {
	st := wire.StatsResp{
		Ranges: []wire.Range{{Start: 0, End: 1000}},
	}
	for i := uint64(0); i < 100; i++ {
		st.HashSample = append(st.HashSample, i*10)
	}
	rng, reason := splitPoint(st, 16)
	if reason != "" {
		t.Fatalf("no split: %s", reason)
	}
	if rng.End != 1000 {
		t.Fatalf("split range end = %d, want the owned range's end", rng.End)
	}
	if rng.Start < 400 || rng.Start > 600 {
		t.Fatalf("split at %d, want near the sample median 500", rng.Start)
	}
}

func TestSplitPointPicksHottestRange(t *testing.T) {
	st := wire.StatsResp{
		Ranges: []wire.Range{{Start: 0, End: 1000}, {Start: 5000, End: 6000}},
	}
	// Load concentrated in the second range.
	for i := uint64(0); i < 4; i++ {
		st.HashSample = append(st.HashSample, i*100)
	}
	for i := uint64(0); i < 64; i++ {
		st.HashSample = append(st.HashSample, 5000+i*10)
	}
	rng, reason := splitPoint(st, 16)
	if reason != "" {
		t.Fatalf("no split: %s", reason)
	}
	if rng.Start < 5000 || rng.End != 6000 {
		t.Fatalf("split %v, want inside the hot range [5000,6000)", rng)
	}
}

func TestSplitPointGuards(t *testing.T) {
	// Too few samples.
	st := wire.StatsResp{
		Ranges:     []wire.Range{{Start: 0, End: 1000}},
		HashSample: []uint64{1, 2, 3},
	}
	if _, reason := splitPoint(st, 16); reason == "" {
		t.Fatal("expected a too-few-samples refusal")
	}
	// No owned ranges.
	if _, reason := splitPoint(wire.StatsResp{}, 1); reason == "" {
		t.Fatal("expected an owns-no-ranges refusal")
	}
	// Degenerate distribution: every sample on the range's first hash.
	st = wire.StatsResp{Ranges: []wire.Range{{Start: 100, End: 1000}}}
	for i := 0; i < 32; i++ {
		st.HashSample = append(st.HashSample, 100)
	}
	if _, reason := splitPoint(st, 16); reason == "" {
		t.Fatal("expected a nothing-to-split refusal")
	}
	// Median on the first hash but distinct samples above it: split must
	// land strictly inside the range.
	st.HashSample = append(st.HashSample[:20], 500, 600, 700)
	rng, reason := splitPoint(st, 16)
	if reason != "" {
		t.Fatalf("no split: %s", reason)
	}
	if rng.Start <= 100 || rng.End != 1000 {
		t.Fatalf("split %v, want strictly inside (100,1000)", rng)
	}
}
