package ctlplane

import (
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestSplitPointMedian(t *testing.T) {
	st := wire.StatsResp{
		Ranges: []wire.Range{{Start: 0, End: 1000}},
	}
	for i := uint64(0); i < 100; i++ {
		st.HashSample = append(st.HashSample, i*10)
	}
	rng, reason := splitPoint(st, 16)
	if reason != "" {
		t.Fatalf("no split: %s", reason)
	}
	if rng.End != 1000 {
		t.Fatalf("split range end = %d, want the owned range's end", rng.End)
	}
	if rng.Start < 400 || rng.Start > 600 {
		t.Fatalf("split at %d, want near the sample median 500", rng.Start)
	}
}

func TestSplitPointPicksHottestRange(t *testing.T) {
	st := wire.StatsResp{
		Ranges: []wire.Range{{Start: 0, End: 1000}, {Start: 5000, End: 6000}},
	}
	// Load concentrated in the second range.
	for i := uint64(0); i < 4; i++ {
		st.HashSample = append(st.HashSample, i*100)
	}
	for i := uint64(0); i < 64; i++ {
		st.HashSample = append(st.HashSample, 5000+i*10)
	}
	rng, reason := splitPoint(st, 16)
	if reason != "" {
		t.Fatalf("no split: %s", reason)
	}
	if rng.Start < 5000 || rng.End != 6000 {
		t.Fatalf("split %v, want inside the hot range [5000,6000)", rng)
	}
}

func TestSplitPointGuards(t *testing.T) {
	// Too few samples.
	st := wire.StatsResp{
		Ranges:     []wire.Range{{Start: 0, End: 1000}},
		HashSample: []uint64{1, 2, 3},
	}
	if _, reason := splitPoint(st, 16); reason == "" {
		t.Fatal("expected a too-few-samples refusal")
	}
	// No owned ranges.
	if _, reason := splitPoint(wire.StatsResp{}, 1); reason == "" {
		t.Fatal("expected an owns-no-ranges refusal")
	}
	// Degenerate distribution: every sample on the range's first hash.
	st = wire.StatsResp{Ranges: []wire.Range{{Start: 100, End: 1000}}}
	for i := 0; i < 32; i++ {
		st.HashSample = append(st.HashSample, 100)
	}
	if _, reason := splitPoint(st, 16); reason == "" {
		t.Fatal("expected a nothing-to-split refusal")
	}
	// Median on the first hash but distinct samples above it: split must
	// land strictly inside the range.
	st.HashSample = append(st.HashSample[:20], 500, 600, 700)
	rng, reason := splitPoint(st, 16)
	if reason != "" {
		t.Fatalf("no split: %s", reason)
	}
	if rng.Start <= 100 || rng.End != 1000 {
		t.Fatalf("split %v, want strictly inside (100,1000)", rng)
	}
}

// planCand builds a planning candidate whose sampled load is spread evenly
// over one owned range [start,end), so splitPoint lands near its middle.
func planCand(id string, rate float64, busy bool, start, end uint64) moveCandidate {
	st := wire.StatsResp{Ranges: []wire.Range{{Start: start, End: end}}}
	span := end - start
	for i := uint64(0); i < 64; i++ {
		st.HashSample = append(st.HashSample, start+i*span/64)
	}
	return moveCandidate{ID: id, Rate: rate, Stats: st, Busy: busy}
}

func basePlanReq(cands ...moveCandidate) planRequest {
	return planRequest{
		Candidates: cands, MaxMoves: 4,
		Imbalance: 3.0, MinOpsPerSec: 500, MinSplitSamples: 16,
	}
}

func TestPlanMovesTopK(t *testing.T) {
	// Eight servers, four clearly hot, four clearly cool, each owning its
	// own disjoint span of the hash space.
	req := basePlanReq(
		planCand("h1", 8000, false, 0, 10_000),
		planCand("h2", 7000, false, 20_000, 30_000),
		planCand("h3", 6000, false, 40_000, 50_000),
		planCand("h4", 5000, false, 60_000, 70_000),
		planCand("c1", 100, false, 80_000, 90_000),
		planCand("c2", 90, false, 100_000, 110_000),
		planCand("c3", 80, false, 120_000, 130_000),
		planCand("c4", 70, false, 140_000, 150_000),
	)
	req.MaxMoves = 3
	moves, reason := planMoves(req)
	if reason != "" {
		t.Fatalf("no plan: %s", reason)
	}
	if len(moves) != 3 {
		t.Fatalf("planned %d moves, want 3 (MaxMoves)", len(moves))
	}
	// Top-K sources hottest-first, targets coolest-first, no server reused.
	wantSrc := []string{"h1", "h2", "h3"}
	wantTgt := []string{"c4", "c3", "c2"}
	used := map[string]bool{}
	for i, m := range moves {
		if m.Source != wantSrc[i] || m.Target != wantTgt[i] {
			t.Fatalf("move %d = %s->%s, want %s->%s", i, m.Source, m.Target, wantSrc[i], wantTgt[i])
		}
		if used[m.Source] || used[m.Target] {
			t.Fatalf("server reused across moves: %+v", moves)
		}
		used[m.Source], used[m.Target] = true, true
	}
	// Planned ranges are pairwise disjoint.
	for i := range moves {
		for j := i + 1; j < len(moves); j++ {
			if moves[i].Range.Overlaps(moves[j].Range) {
				t.Fatalf("planned ranges overlap: %s and %s", moves[i].Range, moves[j].Range)
			}
		}
	}
}

func TestPlanMovesK1MatchesSingleMoveBehavior(t *testing.T) {
	// The degenerate MaxMoves=1 case is the old balancer: exactly one move,
	// hottest source toward coolest target, split at the load median.
	req := basePlanReq(
		planCand("a", 9000, false, 0, 1000),
		planCand("b", 2000, false, 2000, 3000),
		planCand("c", 50, false, 4000, 5000),
	)
	req.MaxMoves = 1
	moves, reason := planMoves(req)
	if reason != "" || len(moves) != 1 {
		t.Fatalf("moves=%v reason=%q, want exactly one move", moves, reason)
	}
	m := moves[0]
	if m.Source != "a" || m.Target != "c" {
		t.Fatalf("move %s->%s, want a->c", m.Source, m.Target)
	}
	if m.Range.Start < 400 || m.Range.Start > 600 || m.Range.End != 1000 {
		t.Fatalf("split %s, want near the sample median of [0,1000)", m.Range)
	}
}

func TestPlanMovesGuards(t *testing.T) {
	hot := planCand("a", 9000, false, 0, 1000)
	cool := planCand("b", 50, false, 2000, 3000)

	// Cooldown wins over everything, even a clear imbalance.
	req := basePlanReq(hot, cool)
	req.CooldownRemaining = 3 * time.Second
	if moves, reason := planMoves(req); len(moves) != 0 || !strings.Contains(reason, "cooling down") {
		t.Fatalf("moves=%v reason=%q, want cooldown refusal", moves, reason)
	}

	// Idle floor: the hottest free server below MinOpsPerSec plans nothing.
	req = basePlanReq(planCand("a", 400, false, 0, 1000), planCand("b", 10, false, 2000, 3000))
	if moves, reason := planMoves(req); len(moves) != 0 || !strings.Contains(reason, "idle") {
		t.Fatalf("moves=%v reason=%q, want idle refusal", moves, reason)
	}

	// Balanced: imbalance ratio not met.
	req = basePlanReq(planCand("a", 1000, false, 0, 1000), planCand("b", 900, false, 2000, 3000))
	if moves, reason := planMoves(req); len(moves) != 0 || !strings.Contains(reason, "balanced") {
		t.Fatalf("moves=%v reason=%q, want balanced refusal", moves, reason)
	}

	// Uniform load.
	req = basePlanReq(planCand("a", 1000, false, 0, 1000), planCand("b", 1000, false, 2000, 3000))
	if moves, reason := planMoves(req); len(moves) != 0 || reason != "load is uniform" {
		t.Fatalf("moves=%v reason=%q, want uniform refusal", moves, reason)
	}

	// The guards also bound a partial plan: the first pair qualifies, the
	// second source sits below the idle floor, so exactly one move ships.
	req = basePlanReq(
		planCand("a", 10_000, false, 0, 1000),
		planCand("b", 400, false, 2000, 3000),
		planCand("c", 50, false, 4000, 5000),
		planCand("d", 40, false, 6000, 7000),
	)
	moves, reason := planMoves(req)
	if reason != "" || len(moves) != 1 || moves[0].Source != "a" || moves[0].Target != "d" {
		t.Fatalf("moves=%v reason=%q, want the single a->d move", moves, reason)
	}
}

func TestPlanMovesBusyServersSitOut(t *testing.T) {
	// The hottest server and the coolest server are mid-migration: the plan
	// falls back to the hottest and coolest *free* servers.
	moves, reason := planMoves(basePlanReq(
		planCand("busy-hot", 20_000, true, 0, 1000),
		planCand("a", 9000, false, 2000, 3000),
		planCand("b", 60, false, 4000, 5000),
		planCand("busy-cool", 10, true, 6000, 7000),
	))
	if reason != "" || len(moves) != 1 {
		t.Fatalf("moves=%v reason=%q, want one move between free servers", moves, reason)
	}
	if moves[0].Source != "a" || moves[0].Target != "b" {
		t.Fatalf("move %s->%s, want a->b (busy servers excluded)", moves[0].Source, moves[0].Target)
	}

	// Fewer than two free servers: nothing to plan, reason says why.
	moves, reason = planMoves(basePlanReq(
		planCand("busy1", 9000, true, 0, 1000),
		planCand("busy2", 10, true, 2000, 3000),
		planCand("only-free", 500, false, 4000, 5000),
	))
	if len(moves) != 0 || !strings.Contains(reason, "busy") {
		t.Fatalf("moves=%v reason=%q, want busy refusal", moves, reason)
	}
}

func TestPlanMovesSkipsUnsplittableSource(t *testing.T) {
	// The hottest server has a degenerate sample distribution (one hash);
	// the plan moves on to the next-hottest source with the same target.
	degenerate := moveCandidate{ID: "spike", Rate: 50_000, Stats: wire.StatsResp{
		Ranges: []wire.Range{{Start: 0, End: 1000}},
	}}
	for i := 0; i < 32; i++ {
		degenerate.Stats.HashSample = append(degenerate.Stats.HashSample, 0)
	}
	moves, reason := planMoves(basePlanReq(
		degenerate,
		planCand("a", 9000, false, 2000, 3000),
		planCand("b", 60, false, 4000, 5000),
	))
	if reason != "" || len(moves) != 1 || moves[0].Source != "a" || moves[0].Target != "b" {
		t.Fatalf("moves=%v reason=%q, want a->b after skipping the unsplittable spike", moves, reason)
	}
}
