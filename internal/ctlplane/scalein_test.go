package ctlplane

import (
	"testing"
	"time"
)

// TestPlanScaleIn table-tests the drain policy as a pure function: cooldown,
// in-flight migrations and the MinServers floor hold fire; the balancer's
// own host, busy servers, warm servers and unarmed streaks are never
// victims; among armed candidates the coldest wins, ties broken by id.
func TestPlanScaleIn(t *testing.T) {
	cand := func(id string, rate float64, busy bool) moveCandidate {
		return moveCandidate{ID: id, Rate: rate, Busy: busy}
	}
	base := func() scaleInRequest {
		return scaleInRequest{
			Candidates: []moveCandidate{
				cand("self", 900, false),
				cand("warm", 400, false),
				cand("cold", 10, false),
			},
			Streaks:     map[string]int{"cold": 5},
			Self:        "self",
			BelowOps:    50,
			AfterPasses: 5,
			MinServers:  2,
		}
	}

	t.Run("armed candidate drains", func(t *testing.T) {
		if v, _ := planScaleIn(base()); v != "cold" {
			t.Fatalf("victim = %q, want cold", v)
		}
	})
	t.Run("cooldown holds fire", func(t *testing.T) {
		req := base()
		req.CooldownRemaining = time.Second
		if v, why := planScaleIn(req); v != "" {
			t.Fatalf("victim = %q (%s), want none during cooldown", v, why)
		}
	})
	t.Run("in-flight migration holds fire", func(t *testing.T) {
		req := base()
		req.InFlight = 1
		if v, _ := planScaleIn(req); v != "" {
			t.Fatalf("victim = %q, want none with a migration in flight", v)
		}
	})
	t.Run("never below the server floor", func(t *testing.T) {
		req := base()
		req.MinServers = 3 // draining would leave 2
		if v, _ := planScaleIn(req); v != "" {
			t.Fatalf("victim = %q, want none at the floor", v)
		}
		req.MinServers = 2
		req.Candidates = req.Candidates[:2] // only self+warm reachable
		if v, _ := planScaleIn(req); v != "" {
			t.Fatalf("victim = %q, want none with 2 servers", v)
		}
	})
	t.Run("self is never drained", func(t *testing.T) {
		req := base()
		req.Candidates[0].Rate = 1 // self is the coldest
		req.Streaks["self"] = 99
		if v, _ := planScaleIn(req); v != "cold" {
			t.Fatalf("victim = %q, want cold (never self)", v)
		}
	})
	t.Run("busy server is skipped", func(t *testing.T) {
		req := base()
		req.Candidates[2].Busy = true
		if v, _ := planScaleIn(req); v != "" {
			t.Fatalf("victim = %q, want none when the cold server is busy", v)
		}
	})
	t.Run("streak must be armed", func(t *testing.T) {
		req := base()
		req.Streaks["cold"] = 4 // one pass short
		if v, _ := planScaleIn(req); v != "" {
			t.Fatalf("victim = %q, want none before AfterPasses", v)
		}
	})
	t.Run("rate must sit below the low-water mark", func(t *testing.T) {
		req := base()
		req.Candidates[2].Rate = 50 // == BelowOps: not below
		if v, _ := planScaleIn(req); v != "" {
			t.Fatalf("victim = %q, want none at the mark", v)
		}
	})
	t.Run("coldest armed candidate wins, ties by id", func(t *testing.T) {
		req := base()
		req.Candidates = append(req.Candidates, cand("cold2", 5, false))
		req.Streaks["cold2"] = 7
		if v, _ := planScaleIn(req); v != "cold2" {
			t.Fatalf("victim = %q, want the colder cold2", v)
		}
		req.Candidates[3].Rate = 10 // tie with "cold"
		if v, _ := planScaleIn(req); v != "cold" {
			t.Fatalf("victim = %q, want cold on id tie-break", v)
		}
	})
}
