// Package ctlplane is Shadowfax's elastic control plane: the remote
// metadata provider that lets out-of-process servers, clients and the CLI
// share one live metadata store over MsgMeta* RPCs, and the load-aware
// balancer that turns the manually-triggered migration machinery (§3.3)
// into automatic scale-out.
//
// The data plane stays untouched: the control plane only reads counters and
// drives the same Migrate() RPC an operator would.
package ctlplane

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/metadata"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrMetaUnavailable reports that the metadata endpoint could not be
// reached and no cached snapshot exists to answer from.
var ErrMetaUnavailable = errors.New("ctlplane: metadata endpoint unavailable")

// RemoteOptions tunes a RemoteProvider.
type RemoteOptions struct {
	// Timeout bounds one metadata RPC (default 3s).
	Timeout time.Duration
	// PollEvery is the watch loop's snapshot period (default 50ms). The
	// loop starts with the first Watch call.
	PollEvery time.Duration
	// MaxStaleness bounds how long the cached snapshot may answer erroring
	// reads (ServerAddr, GetView, OwnerOf) while the endpoint is
	// unreachable (default 30s). Past the bound those reads fail with
	// ErrMetaUnavailable instead of silently routing on arbitrarily stale
	// views. Negative disables the bound.
	MaxStaleness time.Duration
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.Timeout == 0 {
		o.Timeout = 3 * time.Second
	}
	if o.PollEvery == 0 {
		o.PollEvery = 50 * time.Millisecond
	}
	if o.MaxStaleness == 0 {
		o.MaxStaleness = 30 * time.Second
	}
	return o
}

// RemoteProvider implements metadata.Provider against a designated metadata
// endpoint (a server backed by the in-process Store, which serves MsgMeta*
// frames). Every mutation is one RPC — linearized by the backing Store —
// and every response carries a full snapshot, which the provider caches.
// Reads issue a snapshot RPC and fall back to the cache when the endpoint
// is briefly unreachable, so a dispatcher refreshing its view never wedges
// on a control-plane hiccup.
type RemoteProvider struct {
	tr   transport.Transport
	addr string
	opts RemoteOptions

	// connMu serializes RPCs on the one persistent connection.
	connMu sync.Mutex
	conn   transport.Conn

	// breaker fails metadata RPCs fast while the endpoint is persistently
	// unreachable: one probe per (backed-off) interval instead of every
	// caller paying the full RPC timeout.
	breaker backoff.Breaker
	// retryIn paces the in-call retry after a first-attempt failure.
	retryIn backoff.Policy

	// cacheMu guards the last observed snapshot and the watcher list.
	cacheMu    sync.Mutex
	haveSnap   bool
	lastSnap   time.Time
	revision   uint64
	servers    map[string]remoteServer
	migrations []metadata.MigrationState
	replicas   map[string]metadata.ReplicaState
	promoted   []string
	watchers   []chan struct{}
	// degradedSince is when the provider started serving from a cache it
	// could not refresh (zero while healthy).
	degradedSince time.Time

	pollOnce sync.Once
	quit     chan struct{}
	wg       sync.WaitGroup
	closed   bool
}

type remoteServer struct {
	addr string
	view metadata.View
}

// NewRemoteProvider builds a provider that forwards to the metadata
// endpoint at addr over tr. The endpoint does not need to be up yet;
// connections are (re)dialed lazily per RPC.
func NewRemoteProvider(tr transport.Transport, addr string, opts RemoteOptions) *RemoteProvider {
	return &RemoteProvider{
		tr: tr, addr: addr, opts: opts.withDefaults(),
		servers: make(map[string]remoteServer),
		quit:    make(chan struct{}),
	}
}

// Close stops the watch loop and closes the endpoint connection.
func (p *RemoteProvider) Close() error {
	p.cacheMu.Lock()
	if p.closed {
		p.cacheMu.Unlock()
		return nil
	}
	p.closed = true
	close(p.quit)
	p.cacheMu.Unlock()
	p.wg.Wait()
	p.connMu.Lock()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	p.connMu.Unlock()
	return nil
}

// do performs one metadata RPC: send req, await the MsgMetaResp, retry once
// on a broken connection, and fold the response's snapshot into the cache.
//
// Retry discipline: dial and send failures always retry (a length-prefixed
// frame that failed to send was never decodable at the endpoint, so the op
// did not execute). A failure while AWAITING the response retries only
// idempotent ops — the endpoint may well have executed the request, and
// re-sending a StartMigration or Collect would execute it twice (the first
// remapping ownership, the "retry" then failing with ErrNotOwner while the
// caller never learns the migration is registered).
func (p *RemoteProvider) do(req *wire.MetaReq) (wire.MetaResp, error) {
	idempotent := req.Op != wire.MetaOpStartMigration && req.Op != wire.MetaOpCollect
	if !p.breaker.Allow() {
		p.markDegraded()
		return wire.MetaResp{}, fmt.Errorf("%w: circuit open", ErrMetaUnavailable)
	}
	p.connMu.Lock()
	defer p.connMu.Unlock()
	frame := wire.EncodeMetaReq(req)
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			time.Sleep(p.retryIn.Delay(attempt - 1))
		}
		if p.conn == nil {
			c, err := p.tr.Dial(p.addr)
			if err != nil {
				lastErr = err
				continue
			}
			p.conn = c
		}
		if err := p.conn.Send(frame); err != nil {
			p.conn.Close()
			p.conn = nil
			lastErr = err
			continue
		}
		respFrame, err := p.await(wire.MsgMetaResp)
		if err != nil {
			p.conn.Close()
			p.conn = nil
			lastErr = err
			if !idempotent {
				break // the endpoint may have executed it; never re-send
			}
			continue
		}
		resp, err := wire.DecodeMetaResp(respFrame)
		if err != nil {
			lastErr = err
			if !idempotent {
				break // a response arrived, so the endpoint executed it
			}
			continue
		}
		p.breaker.Success()
		p.absorb(&resp)
		return resp, nil
	}
	p.breaker.Failure()
	p.markDegraded()
	return wire.MetaResp{}, fmt.Errorf("%w: %v", ErrMetaUnavailable, lastErr)
}

// markDegraded stamps the moment the provider started answering from a
// cache it could not refresh; absorb clears it on the next success.
func (p *RemoteProvider) markDegraded() {
	p.cacheMu.Lock()
	if p.degradedSince.IsZero() {
		p.degradedSince = time.Now()
	}
	p.cacheMu.Unlock()
}

// DegradedSince returns when the provider lost the metadata endpoint and
// began serving stale cached views; zero while healthy.
func (p *RemoteProvider) DegradedSince() time.Time {
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	return p.degradedSince
}

// await polls the connection for a frame of the wanted type until Timeout;
// unrelated frames are discarded (the connection is private to the
// provider, so none are expected).
func (p *RemoteProvider) await(want wire.MsgType) ([]byte, error) {
	deadline := time.Now().Add(p.opts.Timeout)
	for {
		frame, ok, err := p.conn.TryRecv()
		if err != nil {
			return nil, err
		}
		if ok {
			if typ, _ := wire.PeekType(frame); typ == want {
				return frame, nil
			}
			continue
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("ctlplane: metadata RPC timed out after %v", p.opts.Timeout)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// absorb folds a response's snapshot into the cache and wakes watchers on a
// revision change.
func (p *RemoteProvider) absorb(resp *wire.MetaResp) {
	p.cacheMu.Lock()
	changed := !p.haveSnap || resp.Revision != p.revision
	p.haveSnap = true
	p.lastSnap = time.Now()
	p.degradedSince = time.Time{}
	p.revision = resp.Revision
	p.servers = make(map[string]remoteServer, len(resp.Servers))
	for i := range resp.Servers {
		s := &resp.Servers[i]
		p.servers[s.ID] = remoteServer{
			addr: s.Addr,
			view: metadata.View{Number: s.ViewNumber, Ranges: rangesFromWire(s.Ranges)},
		}
	}
	p.migrations = p.migrations[:0]
	for i := range resp.Migrations {
		p.migrations = append(p.migrations, migrationFromWire(&resp.Migrations[i]))
	}
	p.replicas = make(map[string]metadata.ReplicaState, len(resp.Replicas))
	for _, r := range resp.Replicas {
		p.replicas[r.PrimaryID] = metadata.ReplicaState{
			PrimaryID: r.PrimaryID, Addr: r.Addr, Synced: r.Synced,
		}
	}
	p.promoted = append(p.promoted[:0], resp.Promoted...)
	var wake []chan struct{}
	if changed {
		wake = append(wake, p.watchers...)
	}
	p.cacheMu.Unlock()
	for _, ch := range wake {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// refresh brings the cache up to date, issuing a snapshot RPC unless one
// landed within the last PollEvery (every mutation response and the watch
// loop also refresh the cache, so read bursts — a CLI stats invocation, a
// client re-resolving ownership during a migration — coalesce into one RPC
// instead of serializing on the connection). Returns false when the
// endpoint was unreachable AND no cache exists to answer from.
func (p *RemoteProvider) refresh() bool {
	p.cacheMu.Lock()
	fresh := p.haveSnap && time.Since(p.lastSnap) < p.opts.PollEvery
	p.cacheMu.Unlock()
	if fresh {
		return true
	}
	if _, err := p.do(&wire.MetaReq{Op: wire.MetaOpSnapshot}); err != nil {
		// Degraded: serve the cache, but only within the staleness bound —
		// past it, routing on the dead snapshot is worse than failing.
		p.cacheMu.Lock()
		ok := p.haveSnap &&
			(p.opts.MaxStaleness < 0 || time.Since(p.lastSnap) < p.opts.MaxStaleness)
		p.cacheMu.Unlock()
		return ok
	}
	return true
}

// metaError rebuilds the metadata package's sentinel errors from a
// response's error class, so errors.Is works across the wire.
func metaError(resp *wire.MetaResp) error {
	if resp.OK {
		return nil
	}
	var sentinel error
	switch resp.ErrCode {
	case wire.MetaErrUnknownServer:
		sentinel = metadata.ErrUnknownServer
	case wire.MetaErrNotOwner:
		sentinel = metadata.ErrNotOwner
	case wire.MetaErrOverlap:
		sentinel = metadata.ErrOverlap
	case wire.MetaErrUnknownMigration:
		sentinel = metadata.ErrUnknownMigration
	case wire.MetaErrMigrationDone:
		sentinel = metadata.ErrMigrationDone
	case wire.MetaErrMigrationOverlap:
		sentinel = metadata.ErrMigrationOverlap
	case wire.MetaErrDeposed:
		sentinel = metadata.ErrDeposed
	case wire.MetaErrReplicated:
		sentinel = metadata.ErrReplicated
	case wire.MetaErrNoReplica:
		sentinel = metadata.ErrNoReplica
	case wire.MetaErrReplicaNotSynced:
		sentinel = metadata.ErrReplicaNotSynced
	case wire.MetaErrServerNotEmpty:
		sentinel = metadata.ErrServerNotEmpty
	case wire.MetaErrPrimaryAlive:
		sentinel = metadata.ErrPrimaryAlive
	default:
		return errors.New(resp.Err)
	}
	return fmt.Errorf("%w (remote: %s)", sentinel, resp.Err)
}

// --- metadata.Provider implementation -------------------------------------

// SetServerAddr records a server's transport address in the shared store.
// The Provider signature has no error return (the in-process store cannot
// fail); callers that must know the address landed verify with ServerAddr
// afterwards (shadowfax.NewServer does).
func (p *RemoteProvider) SetServerAddr(id, addr string) {
	p.do(&wire.MetaReq{Op: wire.MetaOpSetAddr, ServerID: id, Addr: addr}) //nolint:errcheck // see above
}

// ServerAddr returns a server's transport address.
func (p *RemoteProvider) ServerAddr(id string) (string, error) {
	if !p.refresh() {
		return "", ErrMetaUnavailable
	}
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	s, ok := p.servers[id]
	if !ok || s.addr == "" {
		return "", fmt.Errorf("%w: no address for %q", metadata.ErrUnknownServer, id)
	}
	return s.addr, nil
}

// RegisterServer creates (or resets) a server's view in the shared store.
func (p *RemoteProvider) RegisterServer(id string, ranges ...metadata.HashRange) metadata.View {
	resp, err := p.do(&wire.MetaReq{
		Op: wire.MetaOpRegister, ServerID: id, Ranges: rangesToWire(ranges),
	})
	if err != nil {
		return metadata.View{}
	}
	return viewOf(&resp, id)
}

// RestoreServer reinstates a recovered server's checkpointed view (refused
// with ErrDeposed when a promoted or promotable replica superseded it).
func (p *RemoteProvider) RestoreServer(id string, v metadata.View) (metadata.View, error) {
	resp, err := p.do(&wire.MetaReq{
		Op: wire.MetaOpRestore, ServerID: id,
		ViewNumber: v.Number, Ranges: rangesToWire(v.Ranges),
	})
	if err != nil {
		return metadata.View{}, err
	}
	if err := metaError(&resp); err != nil {
		return metadata.View{}, err
	}
	return viewOf(&resp, id), nil
}

// RetireServer removes an empty server from the shared store (scale-in).
func (p *RemoteProvider) RetireServer(id string) error {
	resp, err := p.do(&wire.MetaReq{Op: wire.MetaOpRetire, ServerID: id})
	if err != nil {
		return err
	}
	return metaError(&resp)
}

// SetReplica attaches addr as id's backup in the shared store.
func (p *RemoteProvider) SetReplica(id, addr string) error {
	resp, err := p.do(&wire.MetaReq{Op: wire.MetaOpSetReplica, ServerID: id, Addr: addr})
	if err != nil {
		return err
	}
	return metaError(&resp)
}

// MarkReplicaSynced records that id's backup at addr finished its base sync.
func (p *RemoteProvider) MarkReplicaSynced(id, addr string) error {
	resp, err := p.do(&wire.MetaReq{Op: wire.MetaOpReplicaSynced, ServerID: id, Addr: addr})
	if err != nil {
		return err
	}
	return metaError(&resp)
}

// ClearReplica detaches id's backup at addr.
func (p *RemoteProvider) ClearReplica(id, addr string) error {
	resp, err := p.do(&wire.MetaReq{Op: wire.MetaOpClearReplica, ServerID: id, Addr: addr})
	if err != nil {
		return err
	}
	return metaError(&resp)
}

// PromoteReplica promotes id's synced backup at addr (failover's
// linearization point) and returns the view the promoted server adopts.
func (p *RemoteProvider) PromoteReplica(id, addr string) (metadata.View, error) {
	resp, err := p.do(&wire.MetaReq{Op: wire.MetaOpPromote, ServerID: id, Addr: addr})
	if err != nil {
		return metadata.View{}, err
	}
	if err := metaError(&resp); err != nil {
		return metadata.View{}, err
	}
	return viewOf(&resp, id), nil
}

// Replicas returns every attached backup keyed by primary id.
func (p *RemoteProvider) Replicas() map[string]metadata.ReplicaState {
	p.refresh()
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	out := make(map[string]metadata.ReplicaState, len(p.replicas))
	for id, r := range p.replicas {
		out[id] = r
	}
	return out
}

// KeepAlive renews (or, with ttl <= 0, releases) id's primary liveness
// lease at the metadata endpoint.
func (p *RemoteProvider) KeepAlive(id, addr string, ttl time.Duration) error {
	ms := ttl.Milliseconds()
	if ttl > 0 && ms == 0 {
		ms = 1 // sub-millisecond TTLs must still renew, not release
	}
	if ms < 0 {
		ms = 0
	}
	resp, err := p.do(&wire.MetaReq{
		Op: wire.MetaOpKeepAlive, ServerID: id, Addr: addr, MigrationID: uint64(ms),
	})
	if err != nil {
		return err
	}
	return metaError(&resp)
}

// PromotedServers returns the ids whose replica was promoted and whose
// deposed former primary has not restarted.
func (p *RemoteProvider) PromotedServers() []string {
	p.refresh()
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	return append([]string(nil), p.promoted...)
}

// GetView returns a server's current view.
func (p *RemoteProvider) GetView(id string) (metadata.View, error) {
	if !p.refresh() {
		return metadata.View{}, ErrMetaUnavailable
	}
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	s, ok := p.servers[id]
	if !ok {
		return metadata.View{}, fmt.Errorf("%w: %q", metadata.ErrUnknownServer, id)
	}
	return s.view.Clone(), nil
}

// Servers returns the ids of all registered servers, sorted.
func (p *RemoteProvider) Servers() []string {
	p.refresh()
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	out := make([]string, 0, len(p.servers))
	for id := range p.servers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// OwnerOf returns the server owning hash h and its view.
func (p *RemoteProvider) OwnerOf(h uint64) (string, metadata.View, error) {
	if !p.refresh() {
		return "", metadata.View{}, ErrMetaUnavailable
	}
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	for id, s := range p.servers {
		if s.view.Owns(h) {
			return id, s.view.Clone(), nil
		}
	}
	return "", metadata.View{}, fmt.Errorf("%w: no owner for %#x", metadata.ErrUnknownServer, h)
}

// Ownership returns every server's view.
func (p *RemoteProvider) Ownership() map[string]metadata.View {
	p.refresh()
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	out := make(map[string]metadata.View, len(p.servers))
	for id, s := range p.servers {
		out[id] = s.view.Clone()
	}
	return out
}

// StartMigration performs the atomic remap/bump/register transition at the
// metadata endpoint.
func (p *RemoteProvider) StartMigration(source, target string, rng metadata.HashRange) (metadata.MigrationState, metadata.View, metadata.View, error) {
	resp, err := p.do(&wire.MetaReq{
		Op: wire.MetaOpStartMigration, ServerID: source, Target: target,
		RangeStart: rng.Start, RangeEnd: rng.End,
	})
	if err != nil {
		return metadata.MigrationState{}, metadata.View{}, metadata.View{}, err
	}
	if err := metaError(&resp); err != nil {
		return metadata.MigrationState{}, metadata.View{}, metadata.View{}, err
	}
	return migrationFromWire(&resp.Migration), viewOf(&resp, source), viewOf(&resp, target), nil
}

// MarkMigrationDone sets one side's completion flag.
func (p *RemoteProvider) MarkMigrationDone(id uint64, server string) error {
	resp, err := p.do(&wire.MetaReq{Op: wire.MetaOpMarkDone, MigrationID: id, ServerID: server})
	if err != nil {
		return err
	}
	return metaError(&resp)
}

// CancelMigration cancels an in-flight migration (§3.3.1).
func (p *RemoteProvider) CancelMigration(id uint64) error {
	resp, err := p.do(&wire.MetaReq{Op: wire.MetaOpCancel, MigrationID: id})
	if err != nil {
		return err
	}
	return metaError(&resp)
}

// GetMigration returns a migration's state from the live snapshot.
func (p *RemoteProvider) GetMigration(id uint64) (metadata.MigrationState, error) {
	if !p.refresh() {
		return metadata.MigrationState{}, ErrMetaUnavailable
	}
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	for _, m := range p.migrations {
		if m.ID == id {
			return m, nil
		}
	}
	return metadata.MigrationState{}, metadata.ErrUnknownMigration
}

// PendingMigrationsFor returns migrations involving server whose dependency
// has not been collected.
func (p *RemoteProvider) PendingMigrationsFor(server string) []metadata.MigrationState {
	p.refresh()
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	var out []metadata.MigrationState
	for _, m := range p.migrations {
		if (m.Source == server || m.Target == server) && !m.Complete() && !m.Cancelled {
			out = append(out, m)
		}
	}
	return out
}

// Migrations returns every uncollected migration.
func (p *RemoteProvider) Migrations() []metadata.MigrationState {
	p.refresh()
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	return append([]metadata.MigrationState(nil), p.migrations...)
}

// CollectMigration removes a completed (or cancelled) dependency.
func (p *RemoteProvider) CollectMigration(id uint64) error {
	resp, err := p.do(&wire.MetaReq{Op: wire.MetaOpCollect, MigrationID: id})
	if err != nil {
		return err
	}
	return metaError(&resp)
}

// Revision returns the last observed snapshot revision.
func (p *RemoteProvider) Revision() uint64 {
	p.refresh()
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	return p.revision
}

// Watch returns a channel that receives a token when the endpoint's state
// is observed to have changed. Remote watches are poll-based: the first
// call starts a background loop snapshotting every PollEvery.
func (p *RemoteProvider) Watch() <-chan struct{} {
	ch := make(chan struct{}, 1)
	p.cacheMu.Lock()
	p.watchers = append(p.watchers, ch)
	closed := p.closed
	p.cacheMu.Unlock()
	if closed {
		return ch
	}
	p.pollOnce.Do(func() {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			t := time.NewTicker(p.opts.PollEvery)
			defer t.Stop()
			for {
				select {
				case <-p.quit:
					return
				case <-t.C:
					p.refresh()
				}
			}
		}()
	})
	return ch
}

// --- wire conversions ------------------------------------------------------

func rangesToWire(in []metadata.HashRange) []wire.Range {
	out := make([]wire.Range, len(in))
	for i, r := range in {
		out[i] = wire.Range{Start: r.Start, End: r.End}
	}
	return out
}

func rangesFromWire(in []wire.Range) []metadata.HashRange {
	out := make([]metadata.HashRange, len(in))
	for i, r := range in {
		out[i] = metadata.HashRange{Start: r.Start, End: r.End}
	}
	return out
}

func migrationFromWire(m *wire.MetaMigration) metadata.MigrationState {
	return metadata.MigrationState{
		ID: m.ID, Epoch: m.Epoch, Source: m.Source, Target: m.Target,
		Range:      metadata.HashRange{Start: m.RangeStart, End: m.RangeEnd},
		SourceDone: m.SourceDone, TargetDone: m.TargetDone, Cancelled: m.Cancelled,
	}
}

func migrationToWire(m metadata.MigrationState) wire.MetaMigration {
	return wire.MetaMigration{
		ID: m.ID, Epoch: m.Epoch, Source: m.Source, Target: m.Target,
		RangeStart: m.Range.Start, RangeEnd: m.Range.End,
		SourceDone: m.SourceDone, TargetDone: m.TargetDone, Cancelled: m.Cancelled,
	}
}

// viewOf extracts one server's view from a response snapshot.
func viewOf(resp *wire.MetaResp, id string) metadata.View {
	for i := range resp.Servers {
		if resp.Servers[i].ID == id {
			return metadata.View{
				Number: resp.Servers[i].ViewNumber,
				Ranges: rangesFromWire(resp.Servers[i].Ranges),
			}
		}
	}
	return metadata.View{}
}

var _ metadata.Provider = (*RemoteProvider)(nil)

// --- serving side ----------------------------------------------------------

// ServeMetaReq executes one metadata-service request against p and builds
// the response, snapshot included. Servers call this from their dispatch
// loop for inbound MsgMetaReq frames; any server whose provider is the
// local in-process store is thereby a metadata endpoint (a server pointed
// at a remote provider would merely proxy).
func ServeMetaReq(p metadata.Provider, req *wire.MetaReq) wire.MetaResp {
	resp := wire.MetaResp{OK: true}
	switch req.Op {
	case wire.MetaOpSnapshot:
		// Pure read; the snapshot below is the whole answer.
	case wire.MetaOpSetAddr:
		p.SetServerAddr(req.ServerID, req.Addr)
	case wire.MetaOpRegister:
		p.RegisterServer(req.ServerID, rangesFromWire(req.Ranges)...)
	case wire.MetaOpRestore:
		_, err := p.RestoreServer(req.ServerID, metadata.View{
			Number: req.ViewNumber, Ranges: rangesFromWire(req.Ranges),
		})
		fillMetaErr(&resp, err)
	case wire.MetaOpStartMigration:
		mig, _, _, err := p.StartMigration(req.ServerID, req.Target,
			metadata.HashRange{Start: req.RangeStart, End: req.RangeEnd})
		if err != nil {
			fillMetaErr(&resp, err)
		} else {
			resp.MigValid = true
			resp.Migration = migrationToWire(mig)
		}
	case wire.MetaOpMarkDone:
		fillMetaErr(&resp, p.MarkMigrationDone(req.MigrationID, req.ServerID))
	case wire.MetaOpCancel:
		fillMetaErr(&resp, p.CancelMigration(req.MigrationID))
	case wire.MetaOpCollect:
		fillMetaErr(&resp, p.CollectMigration(req.MigrationID))
	case wire.MetaOpSetReplica:
		fillMetaErr(&resp, p.SetReplica(req.ServerID, req.Addr))
	case wire.MetaOpReplicaSynced:
		fillMetaErr(&resp, p.MarkReplicaSynced(req.ServerID, req.Addr))
	case wire.MetaOpClearReplica:
		fillMetaErr(&resp, p.ClearReplica(req.ServerID, req.Addr))
	case wire.MetaOpPromote:
		_, err := p.PromoteReplica(req.ServerID, req.Addr)
		fillMetaErr(&resp, err)
	case wire.MetaOpRetire:
		fillMetaErr(&resp, p.RetireServer(req.ServerID))
	case wire.MetaOpKeepAlive:
		// MigrationID carries the TTL in milliseconds (MetaReq field union).
		fillMetaErr(&resp, p.KeepAlive(req.ServerID, req.Addr,
			time.Duration(req.MigrationID)*time.Millisecond))
	default:
		resp.OK = false
		resp.ErrCode = wire.MetaErrOther
		resp.Err = fmt.Sprintf("unknown meta op %d", req.Op)
	}

	// Revision is read before the content, and all views come from ONE
	// Ownership() call (atomic under the store lock): a snapshot must never
	// show a hash range owner-less or doubly-owned mid-StartMigration. A
	// concurrent mutation can only make the content newer than Revision,
	// which the poller resolves on its next refresh.
	resp.Revision = p.Revision()
	views := p.Ownership()
	ids := make([]string, 0, len(views))
	for id := range views {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		v := views[id]
		addr, _ := p.ServerAddr(id) // a server may not have an address yet
		resp.Servers = append(resp.Servers, wire.MetaServer{
			ID: id, Addr: addr, ViewNumber: v.Number, Ranges: rangesToWire(v.Ranges),
		})
	}
	for _, m := range p.Migrations() {
		resp.Migrations = append(resp.Migrations, migrationToWire(m))
	}
	reps := p.Replicas()
	repIDs := make([]string, 0, len(reps))
	for id := range reps {
		repIDs = append(repIDs, id)
	}
	sort.Strings(repIDs)
	for _, id := range repIDs {
		r := reps[id]
		resp.Replicas = append(resp.Replicas, wire.MetaReplica{
			PrimaryID: r.PrimaryID, Addr: r.Addr, Synced: r.Synced,
		})
	}
	resp.Promoted = p.PromotedServers()
	return resp
}

// fillMetaErr records err (if any) in the response with its wire error
// class.
func fillMetaErr(resp *wire.MetaResp, err error) {
	if err == nil {
		return
	}
	resp.OK = false
	resp.Err = err.Error()
	switch {
	case errors.Is(err, metadata.ErrUnknownServer):
		resp.ErrCode = wire.MetaErrUnknownServer
	case errors.Is(err, metadata.ErrNotOwner):
		resp.ErrCode = wire.MetaErrNotOwner
	case errors.Is(err, metadata.ErrOverlap):
		resp.ErrCode = wire.MetaErrOverlap
	case errors.Is(err, metadata.ErrUnknownMigration):
		resp.ErrCode = wire.MetaErrUnknownMigration
	case errors.Is(err, metadata.ErrMigrationDone):
		resp.ErrCode = wire.MetaErrMigrationDone
	case errors.Is(err, metadata.ErrMigrationOverlap):
		resp.ErrCode = wire.MetaErrMigrationOverlap
	case errors.Is(err, metadata.ErrDeposed):
		resp.ErrCode = wire.MetaErrDeposed
	case errors.Is(err, metadata.ErrReplicated):
		resp.ErrCode = wire.MetaErrReplicated
	case errors.Is(err, metadata.ErrNoReplica):
		resp.ErrCode = wire.MetaErrNoReplica
	case errors.Is(err, metadata.ErrReplicaNotSynced):
		resp.ErrCode = wire.MetaErrReplicaNotSynced
	case errors.Is(err, metadata.ErrServerNotEmpty):
		resp.ErrCode = wire.MetaErrServerNotEmpty
	case errors.Is(err, metadata.ErrPrimaryAlive):
		resp.ErrCode = wire.MetaErrPrimaryAlive
	default:
		resp.ErrCode = wire.MetaErrOther
	}
}
