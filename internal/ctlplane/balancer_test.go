package ctlplane

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/metadata"
	"repro/internal/transport"
	"repro/internal/wire"
)

// stubFleet fakes a fleet at the transport layer: Stats RPCs answer from
// scripted per-server counters, Migrate RPCs are recorded (and held at a
// barrier so the test can observe whether the balancer issued them
// concurrently), and servers in down refuse to dial. This isolates the
// balancer's planning/execution behavior from real servers' timing.
type stubFleet struct {
	mu     sync.Mutex
	ops    map[string]uint64
	ranges map[string]wire.Range
	down   map[string]bool

	expectMigrates int
	migrates       []recordedMigrate
	inflight       int
	maxInflight    int
	release        chan struct{}
}

type recordedMigrate struct {
	Source string
	Cmd    wire.MigrateCmd
}

func newStubFleet(expectMigrates int) *stubFleet {
	return &stubFleet{
		ops: map[string]uint64{}, ranges: map[string]wire.Range{},
		down: map[string]bool{}, expectMigrates: expectMigrates,
		release: make(chan struct{}),
	}
}

func (f *stubFleet) Listen(addr string) (transport.Listener, error) {
	return nil, errors.New("stub fleet has no listeners")
}

func (f *stubFleet) Dial(addr string) (transport.Conn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[addr] {
		return nil, errors.New("connection refused")
	}
	return &stubConn{fleet: f, addr: addr}, nil
}

type stubConn struct {
	fleet *stubFleet
	addr  string

	mu     sync.Mutex
	queued [][]byte
}

func (c *stubConn) Send(frame []byte) error {
	typ, err := wire.PeekType(frame)
	if err != nil {
		return err
	}
	switch typ {
	case wire.MsgStats:
		f := c.fleet
		f.mu.Lock()
		rng := f.ranges[c.addr]
		st := wire.StatsResp{
			ServerID: c.addr, ViewNumber: 1,
			Ranges:       []wire.Range{rng},
			OpsCompleted: f.ops[c.addr],
		}
		f.mu.Unlock()
		span := rng.End - rng.Start
		for i := uint64(0); i < 64; i++ {
			st.HashSample = append(st.HashSample, rng.Start+i*span/64)
		}
		c.push(wire.EncodeStatsResp(st))
	case wire.MsgMigrate:
		cmd, err := wire.DecodeMigrate(frame)
		if err != nil {
			return err
		}
		f := c.fleet
		f.mu.Lock()
		f.migrates = append(f.migrates, recordedMigrate{Source: c.addr, Cmd: cmd})
		f.inflight++
		if f.inflight > f.maxInflight {
			f.maxInflight = f.inflight
		}
		if len(f.migrates) == f.expectMigrates {
			close(f.release)
		}
		f.mu.Unlock()
		// Hold the ack at the barrier: if the balancer issues its moves
		// serially, the first ack only comes after the timeout and the
		// concurrency assertion fails loudly instead of deadlocking.
		go func() {
			select {
			case <-f.release:
			case <-time.After(time.Second):
			}
			f.mu.Lock()
			f.inflight--
			f.mu.Unlock()
			ack := wire.MigrationMsg{Type: wire.MsgAck, MigrationID: 0}
			c.push(wire.EncodeMigrationMsg(&ack))
		}()
	default:
		return errors.New("stub fleet: unexpected frame")
	}
	return nil
}

func (c *stubConn) push(frame []byte) {
	c.mu.Lock()
	c.queued = append(c.queued, frame)
	c.mu.Unlock()
}

func (c *stubConn) Recv() ([]byte, error) {
	for {
		if frame, ok, _ := c.TryRecv(); ok {
			return frame, nil
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func (c *stubConn) TryRecv() ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queued) == 0 {
		return nil, false, nil
	}
	frame := c.queued[0]
	c.queued = c.queued[1:]
	return frame, true, nil
}

func (c *stubConn) Close() error { return nil }

// TestBalancerPassWithUnreachableServerStillActsConcurrently pins the
// degraded-fleet behavior: one server refusing connections must not disable
// elasticity — the pass skips it and still plans and executes migrations
// for the remaining servers concurrently (two Migrate RPCs demonstrably in
// flight at once, over disjoint ranges).
func TestBalancerPassWithUnreachableServerStillActsConcurrently(t *testing.T) {
	fleet := newStubFleet(2)
	store := metadata.NewStore()
	width := uint64(1) << 61
	ids := []string{"hot1", "hot2", "cool1", "cool2", "down"}
	for i, id := range ids {
		rng := metadata.HashRange{Start: uint64(i) * width, End: uint64(i+1) * width}
		store.RegisterServer(id, rng)
		store.SetServerAddr(id, id)
		fleet.mu.Lock()
		fleet.ranges[id] = wire.Range{Start: rng.Start, End: rng.End}
		fleet.mu.Unlock()
	}
	fleet.mu.Lock()
	fleet.down["down"] = true
	fleet.mu.Unlock()

	b := NewBalancer(BalancerConfig{
		Self: "hot1", Meta: store, Transport: fleet,
		Imbalance: 2.0, MinOpsPerSec: 1, MaxConcurrent: 4,
		RPCTimeout: 5 * time.Second,
	})
	defer b.Stop()

	// First pass primes the counters.
	if d := b.RunOnce(context.Background()); d.Acted {
		t.Fatalf("priming pass acted: %+v", d)
	}
	// Advance the counters so the second pass sees two hot servers.
	fleet.mu.Lock()
	fleet.ops["hot1"] = 1_000_000
	fleet.ops["hot2"] = 800_000
	fleet.ops["cool1"] = 1_000
	fleet.ops["cool2"] = 2_000
	fleet.mu.Unlock()
	time.Sleep(20 * time.Millisecond) // non-zero elapsed for the rate math

	d := b.RunOnce(context.Background())
	if !d.Acted {
		t.Fatalf("pass did not act: %s", d.Reason)
	}
	if len(d.Moves) != 2 {
		t.Fatalf("planned %d moves, want 2: %+v", len(d.Moves), d.Moves)
	}
	for _, m := range d.Moves {
		if m.Err != "" {
			t.Fatalf("move %s->%s failed: %s", m.Source, m.Target, m.Err)
		}
		if m.Source == "down" || m.Target == "down" {
			t.Fatalf("unreachable server used in a move: %+v", m)
		}
	}
	if d.Moves[0].Range.Overlaps(d.Moves[1].Range) {
		t.Fatalf("concurrent moves overlap: %s and %s", d.Moves[0].Range, d.Moves[1].Range)
	}

	fleet.mu.Lock()
	got, maxInflight := len(fleet.migrates), fleet.maxInflight
	fleet.mu.Unlock()
	if got != 2 {
		t.Fatalf("%d Migrate RPCs issued, want 2", got)
	}
	if maxInflight < 2 {
		t.Fatalf("max concurrent Migrate RPCs = %d, want >= 2 (moves executed serially)", maxInflight)
	}
}
