package ctlplane

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/client"
	"repro/internal/metadata"
	"repro/internal/transport"
	"repro/internal/wire"
)

// BalancerConfig tunes the automatic scale-out balancer.
type BalancerConfig struct {
	// Self is the hosting server's id (status/reporting only; the balancer
	// considers every registered server as a migration source or target).
	Self string
	// Meta is the deployment's metadata provider.
	Meta metadata.Provider
	// Transport dials servers for Stats and Migrate RPCs.
	Transport transport.Transport

	// Every is the planning-pass period (default 1s).
	Every time.Duration
	// Imbalance is the load-imbalance threshold: a pass acts only when the
	// hottest server's ops/sec exceeds the coolest's by this factor
	// (default 3.0).
	Imbalance float64
	// Cooldown is the hold-off after a triggered migration, giving views,
	// clients and the sampled load time to settle before the next decision
	// (default 10s).
	Cooldown time.Duration
	// MinOpsPerSec is the source-load floor below which the cluster is
	// considered idle and never split (default 500).
	MinOpsPerSec float64
	// MinSplitSamples is the minimum number of in-range hash samples needed
	// to pick a split point (default 16).
	MinSplitSamples int
	// RPCTimeout bounds each individual RPC a pass issues (default 2s), so
	// one hung server costs a pass at most one timeout, not the cluster.
	RPCTimeout time.Duration
	// MaxConcurrent caps how many migrations one pass may start: the top-K
	// hottest free servers each split toward a distinct cool server
	// (default 4). Servers already party to an in-flight migration sit the
	// pass out; the metadata store's overlap rejection is the correctness
	// backstop, this knob is purely a policy throttle.
	MaxConcurrent int

	// Scale-in (the low-water inverse of the split policy).

	// ScaleIn lets passes retire chronically cold servers: when a server's
	// rate stays below ScaleInBelowOps for ScaleInAfterPasses consecutive
	// passes — and no split was planned, no migration is in flight, and the
	// cluster stays at or above MinServers — the balancer sends it the Drain
	// RPC: its ranges migrate to the survivors and it leaves the metadata
	// store.
	ScaleIn bool
	// ScaleInBelowOps is the ops/sec low-water mark (default 50).
	ScaleInBelowOps float64
	// ScaleInAfterPasses is how many consecutive cold passes arm a drain
	// (default 5).
	ScaleInAfterPasses int
	// MinServers is the floor the cluster never drains below (default 2).
	MinServers int
	// DrainTimeout bounds the Drain RPC — which waits out one migration per
	// owned range, not one quick round-trip (default 60s).
	DrainTimeout time.Duration

	// Self-healing re-replication.

	// SpawnStandby, when set, lets passes heal replication: a promoted
	// primary serving with no registered replica gets a fresh standby
	// provisioned via this hook (the deployment decides what "provision"
	// means — boot a process, start an in-process server, page an operator).
	// Called on the balancer goroutine, at most once per SpawnRetry per
	// primary; errors are retried on a later pass.
	SpawnStandby func(primaryID string) error
	// SpawnRetry is the per-primary hold-off between SpawnStandby attempts
	// (default 5s) — provisioning plus base sync take a while, and a second
	// spawn racing the first would be refused by the primary anyway.
	SpawnRetry time.Duration
}

func (c BalancerConfig) withDefaults() BalancerConfig {
	if c.Every == 0 {
		c.Every = time.Second
	}
	if c.Imbalance == 0 {
		c.Imbalance = 3.0
	}
	if c.Cooldown == 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.MinOpsPerSec == 0 {
		c.MinOpsPerSec = 500
	}
	if c.MinSplitSamples == 0 {
		c.MinSplitSamples = 16
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4
	}
	if c.ScaleInBelowOps == 0 {
		c.ScaleInBelowOps = 50
	}
	if c.ScaleInAfterPasses == 0 {
		c.ScaleInAfterPasses = 5
	}
	if c.MinServers < 2 {
		c.MinServers = 2
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 60 * time.Second
	}
	if c.SpawnRetry == 0 {
		c.SpawnRetry = 5 * time.Second
	}
	return c
}

// Move is one planned (and possibly executed) migration of a pass.
type Move struct {
	Source string
	Target string
	Range  metadata.HashRange
	// Err is set when this move's Migrate RPC failed; the pass's other
	// moves are unaffected.
	Err string
}

// Decision is one planning pass's outcome. Source/Target/Range mirror the
// first successful move for single-move consumers (the wire RebalanceResp);
// Moves carries the whole multi-way plan.
type Decision struct {
	At     time.Time
	Acted  bool
	Source string
	Target string
	Range  metadata.HashRange
	Moves  []Move
	Reason string
}

// Status is a balancer snapshot for operators (the MsgBalanceStatus RPC).
type Status struct {
	Config    BalancerConfig
	Passes    uint64
	Triggered uint64
	// CooldownRemaining is how long the balancer will keep holding off
	// after the last triggered migration (0 = armed).
	CooldownRemaining time.Duration
	Last              Decision
	// Rates is the last pass's observed per-server ops/sec.
	Rates map[string]float64
}

// Balancer watches per-server load (ops/sec deltas of the MsgStats
// counters), detects sustained imbalance, picks split points from the hot
// servers' sampled hash distributions, and drives the ordinary Migrate()
// RPC — the policy layer over the paper's §3.3 mechanism. One pass may
// start up to MaxConcurrent migrations over disjoint ranges (hottest free
// servers split toward coolest free servers, each server party to at most
// one move); servers already mid-migration sit the pass out, and a cooldown
// separates consecutive acting passes.
type Balancer struct {
	cfg   BalancerConfig
	admin *client.Admin

	// passMu serializes planning passes (the periodic loop vs. RPC-driven
	// RunOnce). It is held across the pass's RPCs, so nothing a dispatcher
	// calls may ever take it: dispatchers answer the very Stats RPCs a pass
	// waits on.
	passMu sync.Mutex

	// mu guards the observed state below; it is held only for brief local
	// reads/writes, never across an RPC (Status and the stats counters must
	// stay responsive mid-pass).
	mu            sync.Mutex
	prev          map[string]counterSample
	rates         map[string]float64
	last          Decision
	cooldownUntil time.Time
	// coldStreak counts consecutive passes each server spent below the
	// scale-in low-water mark; reset the moment it warms up or goes
	// unreachable.
	coldStreak map[string]int
	// lastSpawn rate-limits SpawnStandby per primary (see SpawnRetry).
	lastSpawn map[string]time.Time

	passes    atomic.Uint64
	triggered atomic.Uint64

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

type counterSample struct {
	ops uint64
	at  time.Time
}

// NewBalancer builds a balancer; call Run to start the periodic loop, or
// drive passes manually with RunOnce.
func NewBalancer(cfg BalancerConfig) *Balancer {
	cfg = cfg.withDefaults()
	return &Balancer{
		cfg:        cfg,
		admin:      client.NewAdmin(cfg.Transport, cfg.Meta),
		prev:       make(map[string]counterSample),
		rates:      make(map[string]float64),
		coldStreak: make(map[string]int),
		lastSpawn:  make(map[string]time.Time),
		quit:       make(chan struct{}),
	}
}

// Run executes planning passes every cfg.Every until Stop.
func (b *Balancer) Run() {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			// Jitter the pass period so multiple balancer hosts booted from
			// one config don't plan (and race each other's migrations) in
			// lockstep.
			select {
			case <-b.quit:
				return
			case <-time.After(backoff.Jittered(b.cfg.Every, 0.2)):
				// No overall deadline: each RPC inside the pass carries its
				// own RPCTimeout, bounding the pass at (servers+1)×timeout.
				b.RunOnce(context.Background())
			}
		}
	}()
}

// Stop terminates the Run loop.
func (b *Balancer) Stop() {
	b.once.Do(func() { close(b.quit) })
	b.wg.Wait()
}

// Status returns the balancer's current state. It never blocks on an
// in-flight pass (dispatchers serve it inline).
func (b *Balancer) Status() Status {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Status{
		Config:    b.cfg,
		Passes:    b.passes.Load(),
		Triggered: b.triggered.Load(),
		Last:      b.last,
		Rates:     make(map[string]float64, len(b.rates)),
	}
	if rem := time.Until(b.cooldownUntil); rem > 0 {
		st.CooldownRemaining = rem
	}
	for id, r := range b.rates {
		st.Rates[id] = r
	}
	return st
}

// Passes reports the number of planning passes run (for MsgStats; lock-free
// so the stats path can never block behind a pass).
func (b *Balancer) Passes() uint64 { return b.passes.Load() }

// Triggered reports how many migrations the balancer has started.
func (b *Balancer) Triggered() uint64 { return b.triggered.Load() }

// RunOnce executes one planning pass: refresh per-server rates, check the
// guards (cooldown, idle cluster, balance), and — when all pass — plan up
// to MaxConcurrent disjoint-range splits and trigger them in parallel. The
// returned Decision describes what happened either way. Passes on this
// balancer are serialized; state is published under b.mu between (never
// across) the pass's RPCs.
func (b *Balancer) RunOnce(ctx context.Context) Decision {
	b.passMu.Lock()
	defer b.passMu.Unlock()
	b.passes.Add(1)
	spawned := b.maybeReplicate()
	d := b.plan(ctx)
	d.At = time.Now()
	if len(spawned) > 0 {
		note := "re-replicating " + strings.Join(spawned, ", ")
		if d.Reason == "" {
			d.Reason = note
		} else {
			d.Reason = note + "; " + d.Reason
		}
	}
	b.mu.Lock()
	b.last = d
	if d.Acted {
		// Jittered so co-hosted balancers don't re-arm simultaneously.
		b.cooldownUntil = time.Now().Add(backoff.Jittered(b.cfg.Cooldown, 0.1))
	}
	b.mu.Unlock()
	if d.Acted {
		b.triggered.Add(1)
	}
	return d
}

// maybeReplicate heals replication: a promoted primary that is registered
// (serving) but has no replica attached lost its redundancy when it took
// over — its old standby IS the new primary. Provision a fresh standby via
// the SpawnStandby hook, rate-limited per primary; the standby then attaches
// and base-syncs through the ordinary replication path. Returns the primaries
// a spawn was attempted for this pass.
func (b *Balancer) maybeReplicate() []string {
	if b.cfg.SpawnStandby == nil {
		return nil
	}
	registered := make(map[string]bool)
	for _, id := range b.cfg.Meta.Servers() {
		registered[id] = true
	}
	replicas := b.cfg.Meta.Replicas()
	var spawned []string
	for _, id := range b.cfg.Meta.PromotedServers() {
		if !registered[id] {
			continue // retired (or drained) since promotion; nothing to heal
		}
		if _, ok := replicas[id]; ok {
			continue // has a replica (possibly still base-syncing)
		}
		b.mu.Lock()
		due := time.Since(b.lastSpawn[id]) >= b.cfg.SpawnRetry
		if due {
			b.lastSpawn[id] = time.Now()
		}
		b.mu.Unlock()
		if !due {
			continue
		}
		if err := b.cfg.SpawnStandby(id); err != nil {
			continue // retried after SpawnRetry on a later pass
		}
		spawned = append(spawned, id)
	}
	return spawned
}

func (b *Balancer) plan(ctx context.Context) Decision {
	ids := b.cfg.Meta.Servers()
	if len(ids) < 2 {
		return Decision{Reason: "need at least two servers"}
	}

	// Refresh counters and rates for every reachable server; an
	// unreachable server is skipped (and excluded as source or target)
	// rather than aborting the pass — one crashed server must not disable
	// elasticity for the rest of the cluster. Rates need two observations;
	// the first pass primes.
	stats := make(map[string]wire.StatsResp, len(ids))
	var reachable []string
	primed := true
	for _, id := range ids {
		resp, err := b.statsRPC(ctx, id)
		if err != nil {
			continue
		}
		reachable = append(reachable, id)
		now := time.Now()
		stats[id] = resp
		b.mu.Lock()
		prev, ok := b.prev[id]
		b.prev[id] = counterSample{ops: resp.OpsCompleted, at: now}
		if !ok || now.Sub(prev.at) <= 0 {
			primed = false
		} else {
			b.rates[id] = float64(resp.OpsCompleted-prev.ops) / now.Sub(prev.at).Seconds()
		}
		b.mu.Unlock()
	}
	if len(reachable) < 2 {
		return Decision{Reason: fmt.Sprintf("only %d of %d servers reachable", len(reachable), len(ids))}
	}
	if !primed {
		return Decision{Reason: "priming load counters"}
	}
	ids = reachable

	// Track scale-in cold streaks: consecutive passes below the low-water
	// mark. Unreachable servers reset — a dead server is a failover problem,
	// not a drain candidate.
	if b.cfg.ScaleIn {
		b.mu.Lock()
		seen := make(map[string]bool, len(ids))
		for _, id := range ids {
			seen[id] = true
			if b.rates[id] < b.cfg.ScaleInBelowOps {
				b.coldStreak[id]++
			} else {
				delete(b.coldStreak, id)
			}
		}
		for id := range b.coldStreak {
			if !seen[id] {
				delete(b.coldStreak, id)
			}
		}
		b.mu.Unlock()
	}

	// Servers party to an in-flight migration sit the pass out: their load
	// is mid-hand-off and a second move would race the record transfer.
	// Disjoint moves between the remaining servers proceed concurrently —
	// the store's overlap rejection is the backstop if another balancer
	// host races this pass.
	busy := make(map[string]bool)
	for _, m := range b.cfg.Meta.Migrations() {
		if m.InFlight() {
			busy[m.Source] = true
			busy[m.Target] = true
		}
	}

	b.mu.Lock()
	rem := time.Until(b.cooldownUntil)
	cands := make([]moveCandidate, 0, len(ids))
	for _, id := range ids {
		cands = append(cands, moveCandidate{
			ID: id, Rate: b.rates[id], Stats: stats[id], Busy: busy[id],
		})
	}
	b.mu.Unlock()

	moves, reason := planMoves(planRequest{
		Candidates:        cands,
		MaxMoves:          b.cfg.MaxConcurrent,
		Imbalance:         b.cfg.Imbalance,
		MinOpsPerSec:      b.cfg.MinOpsPerSec,
		MinSplitSamples:   b.cfg.MinSplitSamples,
		CooldownRemaining: rem,
	})
	if len(moves) == 0 {
		// No split to make; a chronically cold server may be drainable.
		if d, acted := b.maybeScaleIn(ctx, cands, rem); acted {
			return d
		}
		return Decision{Reason: reason}
	}

	// Independent disjoint-range migrations start in parallel, each under
	// its own timeout; one failed or hung RPC neither delays nor cancels
	// the others.
	var wg sync.WaitGroup
	for i := range moves {
		wg.Add(1)
		go func(m *Move) {
			defer wg.Done()
			mctx, cancel := context.WithTimeout(ctx, b.cfg.RPCTimeout)
			defer cancel()
			if err := b.admin.Migrate(mctx, m.Source, m.Target, m.Range); err != nil {
				m.Err = err.Error()
			}
		}(&moves[i])
	}
	wg.Wait()

	d := Decision{Moves: moves}
	parts := make([]string, 0, len(moves))
	for _, m := range moves {
		if m.Err != "" {
			parts = append(parts, fmt.Sprintf("%s->%s %s: migrate RPC failed: %s",
				m.Source, m.Target, m.Range, m.Err))
			continue
		}
		parts = append(parts, fmt.Sprintf("%s->%s %s", m.Source, m.Target, m.Range))
		if !d.Acted {
			d.Acted, d.Source, d.Target, d.Range = true, m.Source, m.Target, m.Range
		}
	}
	if d.Acted {
		d.Reason = fmt.Sprintf("split %d hot server(s): %s", len(moves), strings.Join(parts, "; "))
	} else {
		d.Reason = strings.Join(parts, "; ")
	}
	return d
}

// moveCandidate is one reachable server's view as a planning input.
type moveCandidate struct {
	ID    string
	Rate  float64
	Stats wire.StatsResp
	// Busy marks a server party to an in-flight migration; it is excluded
	// as both source and target for this pass.
	Busy bool
}

// planRequest bundles everything planMoves consumes, making planning a pure
// function of its inputs (table-testable without a cluster).
type planRequest struct {
	Candidates        []moveCandidate
	MaxMoves          int
	Imbalance         float64
	MinOpsPerSec      float64
	MinSplitSamples   int
	CooldownRemaining time.Duration
}

// planMoves picks up to MaxMoves migrations for one pass: the hottest free
// servers split at their sampled load medians toward the coolest free
// servers, each server party to at most one move. Because every planned
// range is carved from its own source's ownership and ownership is
// disjoint, the planned ranges are disjoint by construction. Returns the
// moves, or a reason why the pass planned none.
func planMoves(req planRequest) ([]Move, string) {
	if req.CooldownRemaining > 0 {
		return nil, fmt.Sprintf("cooling down for %v", req.CooldownRemaining.Round(time.Millisecond))
	}
	free := make([]moveCandidate, 0, len(req.Candidates))
	nbusy := 0
	for _, c := range req.Candidates {
		if c.Busy {
			nbusy++
			continue
		}
		free = append(free, c)
	}
	if len(free) < 2 {
		if nbusy > 0 {
			return nil, fmt.Sprintf("%d server(s) busy with in-flight migrations, %d free", nbusy, len(free))
		}
		return nil, "need at least two servers"
	}
	// Hottest first; ties broken by id so planning is deterministic.
	sort.Slice(free, func(i, j int) bool {
		if free[i].Rate != free[j].Rate {
			return free[i].Rate > free[j].Rate
		}
		return free[i].ID < free[j].ID
	})
	maxMoves := req.MaxMoves
	if maxMoves < 1 {
		maxMoves = 1
	}
	var moves []Move
	var skipped string
	lo := len(free) - 1
	for hi := 0; hi < lo && len(moves) < maxMoves; hi++ {
		src, tgt := free[hi], free[lo]
		if src.Rate == tgt.Rate {
			if len(moves) == 0 {
				return nil, "load is uniform"
			}
			break
		}
		if src.Rate < req.MinOpsPerSec {
			if len(moves) == 0 {
				return nil, fmt.Sprintf("cluster idle (%.0f ops/s < %.0f floor)", src.Rate, req.MinOpsPerSec)
			}
			break
		}
		if src.Rate < req.Imbalance*tgt.Rate {
			if len(moves) == 0 {
				return nil, fmt.Sprintf("balanced (%.0f vs %.0f ops/s, threshold %.1fx)",
					src.Rate, tgt.Rate, req.Imbalance)
			}
			break
		}
		rng, reason := splitPoint(src.Stats, req.MinSplitSamples)
		if reason != "" {
			// No usable split on this source; try the next-hottest against
			// the same target.
			skipped = fmt.Sprintf("%s: %s", src.ID, reason)
			continue
		}
		moves = append(moves, Move{Source: src.ID, Target: tgt.ID, Range: rng})
		lo--
	}
	if len(moves) == 0 {
		if skipped != "" {
			return nil, skipped
		}
		return nil, "no usable split"
	}
	return moves, ""
}

// maybeScaleIn runs the scale-in policy when a pass planned no splits:
// drain the coldest server whose rate sat below the low-water mark for
// enough consecutive passes. Returns acted=true when a drain was attempted
// (successfully or not) so the pass reports it and arms the cooldown.
func (b *Balancer) maybeScaleIn(ctx context.Context, cands []moveCandidate, cooldown time.Duration) (Decision, bool) {
	if !b.cfg.ScaleIn {
		return Decision{}, false
	}
	inFlight := 0
	for _, m := range b.cfg.Meta.Migrations() {
		if m.InFlight() {
			inFlight++
		}
	}
	b.mu.Lock()
	streaks := make(map[string]int, len(b.coldStreak))
	for id, n := range b.coldStreak {
		streaks[id] = n
	}
	b.mu.Unlock()
	victim, _ := planScaleIn(scaleInRequest{
		Candidates:        cands,
		Streaks:           streaks,
		Self:              b.cfg.Self,
		BelowOps:          b.cfg.ScaleInBelowOps,
		AfterPasses:       b.cfg.ScaleInAfterPasses,
		MinServers:        b.cfg.MinServers,
		InFlight:          inFlight,
		CooldownRemaining: cooldown,
	})
	if victim == "" {
		return Decision{}, false
	}
	dctx, cancel := context.WithTimeout(ctx, b.cfg.DrainTimeout)
	defer cancel()
	resp, err := b.admin.Drain(dctx, victim)
	b.mu.Lock()
	delete(b.coldStreak, victim)
	b.mu.Unlock()
	if err != nil {
		return Decision{Reason: fmt.Sprintf("scale-in: drain %s failed: %s", victim, err)}, true
	}
	return Decision{
		Acted: true, Source: victim,
		Reason: fmt.Sprintf("scale-in: drained %s (%d range(s) moved, retired=%v)",
			victim, resp.Moved, resp.Retired),
	}, true
}

// scaleInRequest bundles everything planScaleIn consumes, making the drain
// decision a pure function of its inputs (table-testable without a cluster).
type scaleInRequest struct {
	Candidates        []moveCandidate
	Streaks           map[string]int
	Self              string
	BelowOps          float64
	AfterPasses       int
	MinServers        int
	InFlight          int
	CooldownRemaining time.Duration
}

// planScaleIn picks at most one server to drain: the coldest one whose rate
// stayed below the low-water mark for AfterPasses consecutive passes. It
// never drains while any migration is in flight, during cooldown, below the
// MinServers floor, the balancer's own host (Self), or a server that is
// itself party to a migration. Returns the victim id ("" = none) and a
// reason when the policy held fire despite an armed candidate.
func planScaleIn(req scaleInRequest) (string, string) {
	if req.CooldownRemaining > 0 {
		return "", "cooling down"
	}
	if req.InFlight > 0 {
		return "", "migrations in flight"
	}
	if len(req.Candidates) <= req.MinServers {
		return "", fmt.Sprintf("at the %d-server floor", req.MinServers)
	}
	victim := ""
	var vrate float64
	for _, c := range req.Candidates {
		if c.Busy || c.ID == req.Self {
			continue
		}
		if c.Rate >= req.BelowOps || req.Streaks[c.ID] < req.AfterPasses {
			continue
		}
		if victim == "" || c.Rate < vrate || (c.Rate == vrate && c.ID < victim) {
			victim, vrate = c.ID, c.Rate
		}
	}
	return victim, ""
}

// statsRPC fetches one server's stats under the per-RPC timeout, so a hung
// server cannot consume the whole pass's budget.
func (b *Balancer) statsRPC(ctx context.Context, id string) (wire.StatsResp, error) {
	rctx, cancel := context.WithTimeout(ctx, b.cfg.RPCTimeout)
	defer cancel()
	return b.admin.Stats(rctx, id)
}

// splitPoint picks the range to migrate off an overloaded server: the owned
// range holding the most load samples, split at the sampled median so
// roughly half that range's observed load moves. Returns a non-empty reason
// when no usable split exists.
func splitPoint(st wire.StatsResp, minSamples int) (metadata.HashRange, string) {
	if len(st.Ranges) == 0 {
		return metadata.HashRange{}, "source owns no ranges"
	}
	// Bucket the samples by owned range; keep the hottest range.
	var hot metadata.HashRange
	var hotSamples []uint64
	for _, wr := range st.Ranges {
		r := metadata.HashRange{Start: wr.Start, End: wr.End}
		var in []uint64
		for _, h := range st.HashSample {
			if r.Contains(h) {
				in = append(in, h)
			}
		}
		if len(in) > len(hotSamples) {
			hot, hotSamples = r, in
		}
	}
	if len(hotSamples) < minSamples {
		return metadata.HashRange{}, fmt.Sprintf("only %d in-range load samples (need %d)",
			len(hotSamples), minSamples)
	}
	sort.Slice(hotSamples, func(i, j int) bool { return hotSamples[i] < hotSamples[j] })
	split := hotSamples[len(hotSamples)/2]
	if split <= hot.Start {
		// The median sits on the range's first hash; move everything above
		// the first distinct sample instead, if any.
		for _, h := range hotSamples {
			if h > hot.Start {
				split = h
				break
			}
		}
		if split <= hot.Start {
			return metadata.HashRange{}, "sampled load is a single hash; nothing to split"
		}
	}
	return metadata.HashRange{Start: split, End: hot.End}, ""
}
