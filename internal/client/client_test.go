package client_test

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

func fixture(t *testing.T) (*metadata.Store, *transport.InMem, *core.Server) {
	t.Helper()
	meta := metadata.NewStore()
	tr := transport.NewInMem(transport.Free)
	dev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	srv, err := core.NewServer(core.ServerConfig{
		ID: "s1", Addr: "s1", Threads: 1, Transport: tr, Meta: meta,
		Store: faster.Config{IndexBuckets: 1 << 10,
			Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
				Device: dev, LogID: "s1"}},
	}, metadata.FullRange)
	if err != nil {
		t.Fatal(err)
	}
	meta.SetServerAddr("s1", srv.Addr())
	t.Cleanup(func() { srv.Close(); dev.Close() })
	return meta, tr, srv
}

func TestConfigValidation(t *testing.T) {
	if _, err := client.NewThread(client.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestBatchingFlushesAtThreshold(t *testing.T) {
	meta, tr, srv := fixture(t)
	_ = srv
	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta, BatchOps: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	// Three ops: below threshold, nothing sent yet.
	for i := 0; i < 3; i++ {
		ct.Upsert(ycsb.KeyBytes(uint64(i)), []byte("v"), nil)
	}
	if ct.Stats().BatchesSent != 0 {
		t.Fatal("batch sent below threshold")
	}
	// Fourth op triggers the flush.
	ct.Upsert(ycsb.KeyBytes(3), []byte("v"), nil)
	if ct.Stats().BatchesSent != 1 {
		t.Fatalf("batches sent = %d, want 1", ct.Stats().BatchesSent)
	}
	if !ct.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
}

func TestCallbacksExactlyOnce(t *testing.T) {
	meta, tr, _ := fixture(t)
	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta, BatchOps: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	counts := make(map[uint64]int)
	const n = 200
	for i := uint64(0); i < n; i++ {
		i := i
		ct.RMW(ycsb.KeyBytes(i), nil, func(st wire.ResultStatus, _ []byte) {
			counts[i]++
		})
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	for i := uint64(0); i < n; i++ {
		if counts[i] != 1 {
			t.Fatalf("key %d callback ran %d times", i, counts[i])
		}
	}
}

func TestOutstandingAccounting(t *testing.T) {
	meta, tr, _ := fixture(t)
	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta, BatchOps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	for i := 0; i < 10; i++ {
		ct.Upsert(ycsb.KeyBytes(uint64(i)), []byte("v"), nil)
	}
	if got := ct.Outstanding(); got != 10 {
		t.Fatalf("outstanding = %d, want 10", got)
	}
	if !ct.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	if got := ct.Outstanding(); got != 0 {
		t.Fatalf("outstanding after drain = %d", got)
	}
}

func TestValueCopySemantics(t *testing.T) {
	// The client copies keys and values at issue time: mutating the
	// caller's buffers afterwards must not corrupt the stored data.
	meta, tr, _ := fixture(t)
	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta, BatchOps: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	key := []byte("mutable-key")
	val := []byte("original")
	ct.Upsert(key, val, nil)
	copy(val, "CLOBBER!")
	var got string
	ct.Read([]byte("mutable-key"), func(st wire.ResultStatus, v []byte) {
		got = string(v)
	})
	if !ct.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	if got != "original" {
		t.Fatalf("stored %q; caller buffer mutation leaked", got)
	}
}

func TestMigrateRPC(t *testing.T) {
	meta, tr, srv := fixture(t)
	dev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	defer dev.Close()
	tgt, err := core.NewServer(core.ServerConfig{
		ID: "s2", Addr: "s2", Threads: 1, Transport: tr, Meta: meta,
		Store: faster.Config{IndexBuckets: 1 << 10,
			Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
				Device: dev, LogID: "s2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	meta.SetServerAddr("s2", tgt.Addr())

	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	// Seed a little data, then drive the Migrate() RPC through the client.
	d := make([]byte, 8)
	binary.LittleEndian.PutUint64(d, 1)
	for i := uint64(0); i < 100; i++ {
		ct.RMW(ycsb.KeyBytes(i), d, nil)
	}
	ct.Drain(10 * time.Second)

	if err := ct.Migrate("s1", "s2", metadata.HashRange{Start: 0, End: 1 << 62}); err != nil {
		t.Fatal(err)
	}
	// Migration registered at the metadata store.
	deadline := time.Now().Add(10 * time.Second)
	for len(meta.PendingMigrationsFor("s1")) > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(meta.PendingMigrationsFor("s1")) != 0 {
		t.Fatal("migration never completed")
	}
	// Operations still complete after the view change (reissue path).
	ok := 0
	for i := uint64(0); i < 100; i++ {
		ct.RMW(ycsb.KeyBytes(i), d, func(st wire.ResultStatus, _ []byte) {
			if st == wire.StatusOK {
				ok++
			}
		})
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatal("post-migration drain timed out")
	}
	if ok != 100 {
		t.Fatalf("%d/100 ops after migration", ok)
	}
	_ = srv
}
