package client_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/metadata"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/ycsb"
)

func fixture(t *testing.T) (*metadata.Store, *transport.InMem, *core.Server) {
	t.Helper()
	meta := metadata.NewStore()
	tr := transport.NewInMem(transport.Free)
	dev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	srv, err := core.NewServer(core.ServerConfig{
		ID: "s1", Addr: "s1", Threads: 1, Transport: tr, Meta: meta,
		Store: faster.Config{IndexBuckets: 1 << 10,
			Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
				Device: dev, LogID: "s1"}},
	}, metadata.FullRange)
	if err != nil {
		t.Fatal(err)
	}
	meta.SetServerAddr("s1", srv.Addr())
	t.Cleanup(func() { srv.Close(); dev.Close() })
	return meta, tr, srv
}

func TestConfigValidation(t *testing.T) {
	if _, err := client.NewThread(client.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestBatchingFlushesAtThreshold(t *testing.T) {
	meta, tr, srv := fixture(t)
	_ = srv
	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta, BatchOps: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	// Three ops: below threshold, nothing sent yet.
	for i := 0; i < 3; i++ {
		ct.Upsert(ycsb.KeyBytes(uint64(i)), []byte("v"), nil)
	}
	if ct.Stats().BatchesSent != 0 {
		t.Fatal("batch sent below threshold")
	}
	// Fourth op triggers the flush.
	ct.Upsert(ycsb.KeyBytes(3), []byte("v"), nil)
	if ct.Stats().BatchesSent != 1 {
		t.Fatalf("batches sent = %d, want 1", ct.Stats().BatchesSent)
	}
	if !ct.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
}

func TestCallbacksExactlyOnce(t *testing.T) {
	meta, tr, _ := fixture(t)
	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta, BatchOps: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	counts := make(map[uint64]int)
	const n = 200
	for i := uint64(0); i < n; i++ {
		i := i
		ct.RMW(ycsb.KeyBytes(i), nil, func(st wire.ResultStatus, _ []byte) {
			counts[i]++
		})
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	for i := uint64(0); i < n; i++ {
		if counts[i] != 1 {
			t.Fatalf("key %d callback ran %d times", i, counts[i])
		}
	}
}

func TestOutstandingAccounting(t *testing.T) {
	meta, tr, _ := fixture(t)
	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta, BatchOps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	for i := 0; i < 10; i++ {
		ct.Upsert(ycsb.KeyBytes(uint64(i)), []byte("v"), nil)
	}
	if got := ct.Outstanding(); got != 10 {
		t.Fatalf("outstanding = %d, want 10", got)
	}
	if !ct.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	if got := ct.Outstanding(); got != 0 {
		t.Fatalf("outstanding after drain = %d", got)
	}
}

func TestValueCopySemantics(t *testing.T) {
	// The client copies keys and values at issue time: mutating the
	// caller's buffers afterwards must not corrupt the stored data.
	meta, tr, _ := fixture(t)
	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta, BatchOps: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	key := []byte("mutable-key")
	val := []byte("original")
	ct.Upsert(key, val, nil)
	copy(val, "CLOBBER!")
	var got string
	ct.Read([]byte("mutable-key"), func(st wire.ResultStatus, v []byte) {
		got = string(v)
	})
	if !ct.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	if got != "original" {
		t.Fatalf("stored %q; caller buffer mutation leaked", got)
	}
}

func TestMigrateRPC(t *testing.T) {
	meta, tr, srv := fixture(t)
	dev := storage.NewMemDevice(storage.LatencyModel{}, 2)
	defer dev.Close()
	tgt, err := core.NewServer(core.ServerConfig{
		ID: "s2", Addr: "s2", Threads: 1, Transport: tr, Meta: meta,
		Store: faster.Config{IndexBuckets: 1 << 10,
			Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
				Device: dev, LogID: "s2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	meta.SetServerAddr("s2", tgt.Addr())

	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	// Seed a little data, then drive the Migrate() RPC through the client.
	d := make([]byte, 8)
	binary.LittleEndian.PutUint64(d, 1)
	for i := uint64(0); i < 100; i++ {
		ct.RMW(ycsb.KeyBytes(i), d, nil)
	}
	ct.Drain(10 * time.Second)

	admin := client.NewAdmin(tr, meta)
	if err := admin.Migrate(context.Background(), "s1", "s2",
		metadata.HashRange{Start: 0, End: 1 << 62}); err != nil {
		t.Fatal(err)
	}
	// Migration registered at the metadata store.
	deadline := time.Now().Add(10 * time.Second)
	for len(meta.PendingMigrationsFor("s1")) > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(meta.PendingMigrationsFor("s1")) != 0 {
		t.Fatal("migration never completed")
	}
	// Operations still complete after the view change (reissue path).
	ok := 0
	for i := uint64(0); i < 100; i++ {
		ct.RMW(ycsb.KeyBytes(i), d, func(st wire.ResultStatus, _ []byte) {
			if st == wire.StatusOK {
				ok++
			}
		})
	}
	if !ct.Drain(10 * time.Second) {
		t.Fatal("post-migration drain timed out")
	}
	if ok != 100 {
		t.Fatalf("%d/100 ops after migration", ok)
	}
	_ = srv
}

// trickleTransport is a deterministic fake: every Send of a request batch
// enqueues one single-result response frame per op, and TryRecv hands back at
// most one frame per Poll (it reports empty every other call), each delivery
// costing a fixed delay. A drain over N ops therefore takes ~N*delay of wall
// clock while almost every Poll makes progress — the "steady partial
// progress" schedule that used to keep Drain looping past its deadline.
type trickleTransport struct {
	delay time.Duration
}

func (tt *trickleTransport) Listen(addr string) (transport.Listener, error) {
	return nil, fmt.Errorf("trickle: listen unsupported")
}

func (tt *trickleTransport) Dial(addr string) (transport.Conn, error) {
	return &trickleConn{delay: tt.delay}, nil
}

type trickleConn struct {
	delay time.Duration
	queue [][]byte
	gate  bool
}

func (c *trickleConn) Send(frame []byte) error {
	var rb wire.RequestBatch
	if err := wire.DecodeRequestBatch(frame, &rb); err != nil {
		return nil // admin frames etc.: ignore
	}
	for i := range rb.Ops {
		resp := wire.ResponseBatch{SessionID: rb.SessionID,
			Results: []wire.Result{{Seq: rb.Ops[i].Seq, Status: wire.StatusOK}}}
		c.queue = append(c.queue, wire.AppendResponseBatch(nil, &resp))
	}
	return nil
}

func (c *trickleConn) Recv() ([]byte, error) {
	f, ok, err := c.TryRecv()
	if err != nil || !ok {
		return nil, fmt.Errorf("trickle: empty")
	}
	return f, nil
}

func (c *trickleConn) TryRecv() ([]byte, bool, error) {
	if c.gate || len(c.queue) == 0 {
		c.gate = false
		return nil, false, nil
	}
	c.gate = true
	f := c.queue[0]
	c.queue = c.queue[1:]
	time.Sleep(c.delay)
	return f, true, nil
}

func (c *trickleConn) Close() error { return nil }

// TestDrainDeadlineUnderPartialProgress: a session that keeps completing
// operations — but too slowly to ever empty the outstanding set before the
// timeout — must still stop Drain at the deadline. The deadline is checked
// every iteration, not only on idle polls.
func TestDrainDeadlineUnderPartialProgress(t *testing.T) {
	meta := metadata.NewStore()
	meta.RegisterServer("slow", metadata.FullRange)
	meta.SetServerAddr("slow", "slow")
	ct, err := client.NewThread(client.Config{
		Transport: &trickleTransport{delay: 100 * time.Microsecond},
		Meta:      meta, BatchOps: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	const n = 3000 // ~300ms of trickled completions
	for i := 0; i < n; i++ {
		ct.Upsert(ycsb.KeyBytes(uint64(i)), []byte("v"), nil)
	}
	start := time.Now()
	const timeout = 30 * time.Millisecond
	if ct.Drain(timeout) {
		t.Fatal("drain completed against a server that cannot finish in time")
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("drain overshot its deadline: ran %v with a %v timeout", elapsed, timeout)
	}
	if ct.Outstanding() == 0 {
		t.Fatal("test premise broken: nothing left outstanding")
	}
}

// TestCloseCompletesOutstanding: Close must fire every outstanding
// operation's callback with StatusClosed — buffered and in-flight alike — and
// operations issued after Close must fail the same way. An issued operation
// always gets exactly one completion.
func TestCloseCompletesOutstanding(t *testing.T) {
	meta := metadata.NewStore()
	tr := transport.NewInMem(transport.Free)
	if _, err := tr.Listen("dead"); err != nil {
		t.Fatal(err)
	}
	meta.RegisterServer("dead", metadata.FullRange)
	meta.SetServerAddr("dead", "dead")

	ct, err := client.NewThread(client.Config{Transport: tr, Meta: meta, BatchOps: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10 // crosses the batch threshold: some flushed, some buffered
	status := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		ct.Upsert(ycsb.KeyBytes(uint64(i)), []byte("v"), func(st wire.ResultStatus, _ []byte) {
			status[i]++
			if st != wire.StatusClosed {
				t.Errorf("op %d completed with %v, want StatusClosed", i, st)
			}
		})
	}
	ct.Close()
	for i, c := range status {
		if c != 1 {
			t.Fatalf("op %d callback ran %d times, want exactly once", i, c)
		}
	}
	if got := ct.Outstanding(); got != 0 {
		t.Fatalf("outstanding after Close = %d, want 0", got)
	}

	// Post-Close issue: immediate StatusClosed completion plus ErrClosed.
	fired := false
	err = ct.Read([]byte("late"), func(st wire.ResultStatus, _ []byte) {
		fired = true
		if st != wire.StatusClosed {
			t.Errorf("post-close op completed with %v, want StatusClosed", st)
		}
	})
	if !errors.Is(err, client.ErrClosed) {
		t.Fatalf("post-close issue returned %v, want ErrClosed", err)
	}
	if !fired {
		t.Fatal("post-close op's callback never fired")
	}
	ct.Close() // idempotent
}
