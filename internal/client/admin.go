package client

import (
	"context"
	"fmt"
	"time"

	"repro/internal/metadata"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Admin issues Shadowfax's control-plane RPCs — checkpoint, compaction,
// migration and stats — each on its own short-lived connection, exactly the
// paper's Migrate() RPC model (§3.3). The control plane is deliberately
// separate from the data-plane Thread: an Admin holds no session state, so
// unlike a Thread it is stateless and safe for concurrent use, and closing a
// Thread never strands an admin operation.
//
// Every method observes its context each poll iteration; deadline expiry and
// cancellation surface as the context's error.
type Admin struct {
	tr   transport.Transport
	meta metadata.Provider
}

// NewAdmin builds an admin handle over the cluster's transport and metadata
// provider.
func NewAdmin(tr transport.Transport, meta metadata.Provider) *Admin {
	return &Admin{tr: tr, meta: meta}
}

func (a *Admin) dial(serverID string) (transport.Conn, error) {
	addr, err := a.meta.ServerAddr(serverID)
	if err != nil {
		return nil, err
	}
	return a.tr.Dial(addr)
}

// awaitFrame polls conn until a frame of type want arrives (unrelated frames
// are discarded) or ctx is done.
func awaitFrame(ctx context.Context, conn transport.Conn, want wire.MsgType) ([]byte, error) {
	for {
		frame, ok, err := conn.TryRecv()
		if err != nil {
			return nil, err
		}
		if ok {
			if typ, _ := wire.PeekType(frame); typ == want {
				return frame, nil
			}
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Checkpoint asks serverID to take a durable checkpoint now and waits for
// the server's acknowledgment.
func (a *Admin) Checkpoint(ctx context.Context, serverID string) (wire.CheckpointResp, error) {
	conn, err := a.dial(serverID)
	if err != nil {
		return wire.CheckpointResp{}, err
	}
	defer conn.Close()
	if err := conn.Send(wire.EncodeCheckpointReq()); err != nil {
		return wire.CheckpointResp{}, err
	}
	frame, err := awaitFrame(ctx, conn, wire.MsgCheckpointResp)
	if err != nil {
		return wire.CheckpointResp{}, err
	}
	resp, err := wire.DecodeCheckpointResp(frame)
	if err != nil {
		return wire.CheckpointResp{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("client: checkpoint on %s failed: %s", serverID, resp.Err)
	}
	return resp, nil
}

// Compact asks serverID to run one log-compaction pass now (§3.3.3) and
// waits for the pass's statistics.
func (a *Admin) Compact(ctx context.Context, serverID string) (wire.CompactResp, error) {
	conn, err := a.dial(serverID)
	if err != nil {
		return wire.CompactResp{}, err
	}
	defer conn.Close()
	if err := conn.Send(wire.EncodeCompactReq()); err != nil {
		return wire.CompactResp{}, err
	}
	frame, err := awaitFrame(ctx, conn, wire.MsgCompactResp)
	if err != nil {
		return wire.CompactResp{}, err
	}
	resp, err := wire.DecodeCompactResp(frame)
	if err != nil {
		return wire.CompactResp{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("client: compaction on %s failed: %s", serverID, resp.Err)
	}
	return resp, nil
}

// Migrate sends the Migrate() RPC (§3.3) to source, asking it to move
// [rng.Start, rng.End) to target. It returns once the source acknowledges
// that the migration has begun.
func (a *Admin) Migrate(ctx context.Context, source, target string, rng metadata.HashRange) error {
	conn, err := a.dial(source)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(wire.EncodeMigrate(wire.MigrateCmd{
		Target: target, RangeStart: rng.Start, RangeEnd: rng.End})); err != nil {
		return err
	}
	_, err = awaitFrame(ctx, conn, wire.MsgAck)
	return err
}

// Drain asks serverID to migrate every range it owns to the surviving
// servers and retire itself from the metadata store (scale-in). The server
// refuses when the drain would leave a range unowned or while a replica is
// attached; a drain interrupted by a failure may be retried (it re-plans
// from the current view and retiring twice is a no-op).
func (a *Admin) Drain(ctx context.Context, serverID string) (wire.DrainResp, error) {
	conn, err := a.dial(serverID)
	if err != nil {
		return wire.DrainResp{}, err
	}
	defer conn.Close()
	if err := conn.Send(wire.EncodeDrainReq()); err != nil {
		return wire.DrainResp{}, err
	}
	frame, err := awaitFrame(ctx, conn, wire.MsgDrainResp)
	if err != nil {
		return wire.DrainResp{}, err
	}
	resp, err := wire.DecodeDrainResp(frame)
	if err != nil {
		return wire.DrainResp{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("client: drain of %s failed: %s", serverID, resp.Err)
	}
	return resp, nil
}

// Rebalance asks serverID's hosted balancer to run one planning pass now
// and returns its decision. A server without a balancer refuses.
func (a *Admin) Rebalance(ctx context.Context, serverID string) (wire.RebalanceResp, error) {
	conn, err := a.dial(serverID)
	if err != nil {
		return wire.RebalanceResp{}, err
	}
	defer conn.Close()
	if err := conn.Send(wire.EncodeRebalanceReq()); err != nil {
		return wire.RebalanceResp{}, err
	}
	frame, err := awaitFrame(ctx, conn, wire.MsgRebalanceResp)
	if err != nil {
		return wire.RebalanceResp{}, err
	}
	resp, err := wire.DecodeRebalanceResp(frame)
	if err != nil {
		return wire.RebalanceResp{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("client: rebalance on %s failed: %s", serverID, resp.Err)
	}
	return resp, nil
}

// BalanceStatus fetches serverID's balancer status (counters, cooldown,
// last decision, observed per-server load rates).
func (a *Admin) BalanceStatus(ctx context.Context, serverID string) (wire.BalanceStatusResp, error) {
	conn, err := a.dial(serverID)
	if err != nil {
		return wire.BalanceStatusResp{}, err
	}
	defer conn.Close()
	if err := conn.Send(wire.EncodeBalanceStatusReq()); err != nil {
		return wire.BalanceStatusResp{}, err
	}
	frame, err := awaitFrame(ctx, conn, wire.MsgBalanceStatusResp)
	if err != nil {
		return wire.BalanceStatusResp{}, err
	}
	return wire.DecodeBalanceStatusResp(frame)
}

// Stats fetches a snapshot of serverID's identity, ownership view and
// counters.
func (a *Admin) Stats(ctx context.Context, serverID string) (wire.StatsResp, error) {
	addr, err := a.meta.ServerAddr(serverID)
	if err != nil {
		return wire.StatsResp{}, err
	}
	return a.StatsAddr(ctx, addr)
}

// StatsAddr is Stats against a transport address rather than a registered
// server ID. It is the bootstrap path for out-of-process servers: the
// response carries the server's ID and ownership view, which is everything
// needed to register it in a fresh metadata store.
func (a *Admin) StatsAddr(ctx context.Context, addr string) (wire.StatsResp, error) {
	conn, err := a.tr.Dial(addr)
	if err != nil {
		return wire.StatsResp{}, err
	}
	defer conn.Close()
	if err := conn.Send(wire.EncodeStatsReq()); err != nil {
		return wire.StatsResp{}, err
	}
	frame, err := awaitFrame(ctx, conn, wire.MsgStatsResp)
	if err != nil {
		return wire.StatsResp{}, err
	}
	return wire.DecodeStatsResp(frame)
}
