package client

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// This file implements the client half of Shadowfax's crash recovery
// (§3.3.1): client-assisted session recovery. (Checkpoint administration
// lives on Admin with the rest of the control plane; see admin.go.)
// A server checkpoint durably records, per client session, the last applied
// operation sequence number. After the server restarts from that image, each
// client asks it where its session's durable prefix ends and then replays
// exactly the in-flight operations past it — writes at or below the prefix
// are acknowledged locally (they are durable; only the ack was lost), writes
// and reads above it are re-issued. The result is exactly-once semantics for
// updates across a server crash without any server-side redo log.

// RecoverSessions re-establishes every session against its (possibly
// restarted) server and reconciles in-flight operations against the server's
// durable session table: writes at or below the recovered sequence complete
// immediately (durable; only the ack was lost), everything past it is
// replayed in order. Responses still buffered on the old connection are
// discarded — every affected operation is settled by the reconciliation,
// exactly once.
//
// Call it after a server crash/restart (a session whose sends or receives
// fail is also marked broken and stops transmitting until recovered). The
// thread must be quiescent in the sense that it is not concurrently issuing
// new operations — its natural state, since Thread is single-goroutine.
// Against a server that never crashed the reconciliation is still correct
// only once the server has drained the session's in-transit batches; the
// intended use is after a restart, where none exist.
//
// The handshake phase runs against every server before any session state is
// touched, so on error (server still down, metadata stale) nothing is lost:
// the call can simply be retried.
func (t *Thread) RecoverSessions(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	t.refreshOwnership()

	// Phase 1: dial and handshake every session on fresh connections,
	// without touching session state.
	type handshake struct {
		s    *session
		conn transport.Conn
		resp wire.SessionRecoverResp
	}
	handshakes := make([]handshake, 0, len(t.sessions))
	var retired []*session
	fail := func(err error) error {
		for _, h := range handshakes {
			h.conn.Close()
		}
		return err
	}
	for id, s := range t.sessions {
		if _, owns := t.ownership[id]; !owns {
			// The server was retired (scale-in drained its ranges and removed
			// it from the metadata store). There is nothing to reconcile
			// against: the session is dropped and its in-flight operations
			// replay against the ranges' current owners.
			retired = append(retired, s)
			continue
		}
		addr, err := t.cfg.Meta.ServerAddr(id)
		if err != nil {
			return fail(err)
		}
		conn, err := t.cfg.Transport.Dial(addr)
		if err != nil {
			return fail(fmt.Errorf("client: redialing %s: %w", id, err))
		}
		if err := conn.Send(wire.EncodeSessionRecover(
			wire.SessionRecover{SessionID: s.id})); err != nil {
			conn.Close()
			return fail(fmt.Errorf("client: session-recover to %s: %w", id, err))
		}
		resp, err := awaitSessionRecoverResp(conn, s.id, deadline)
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("client: session-recover to %s: %w", id, err))
		}
		handshakes = append(handshakes, handshake{s: s, conn: conn, resp: resp})
	}

	// Phase 2: every server answered — adopt connections and reconcile.
	var replay []queuedOp
	for _, h := range handshakes {
		s, resp := h.s, h.resp
		// The session object (and its sequence counter) lives on.
		s.conn.Close()
		s.conn = h.conn
		s.broken = false
		s.sentBatches = 0
		s.building.Ops = s.building.Ops[:0]
		s.buildSz = 0
		if v, ok := t.ownership[s.serverID]; ok {
			s.view = v
		}

		// Partition the in-flight set at the durable prefix, in sequence
		// order so replay preserves the session's operation order.
		seqs := make([]uint32, 0, len(s.inflight))
		for seq := range s.inflight {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			op := s.inflight[seq]
			delete(s.inflight, seq)
			if resp.Known && seq <= resp.LastSeq && op.kind != wire.OpRead {
				// Durable before the crash; only the ack was lost. Complete
				// without re-executing (re-running an RMW would double-apply).
				// StatusOK is the status the server actually produced: in
				// this store every write op completes OK (upserts are blind,
				// deletes of absent keys write a tombstone and report OK,
				// RMWs initialize absent keys) — only reads distinguish
				// outcomes, and reads are re-executed below.
				t.complete(op, wire.StatusOK, nil)
				continue
			}
			replay = append(replay, op)
		}
	}
	for _, s := range retired {
		s.conn.Close()
		delete(t.sessions, s.serverID)
		seqs := make([]uint32, 0, len(s.inflight))
		for seq := range s.inflight {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			replay = append(replay, s.inflight[seq])
			delete(s.inflight, seq)
		}
	}
	for _, op := range replay {
		t.outstanding-- // issueRequeued re-counts
		t.stats.OpsIssued--
		t.issueRequeued(op)
	}
	t.Flush()
	return nil
}

// BrokenSessions reports how many sessions are awaiting recovery.
func (t *Thread) BrokenSessions() int {
	n := 0
	for _, s := range t.sessions {
		if s.broken {
			n++
		}
	}
	return n
}

// FailBroken gives up on every broken session: each parked operation —
// in flight or still buffered — completes through its callback with
// StatusBrokenSession, and the session is dropped so later operations
// re-resolve ownership and dial fresh. The escape hatch for when
// RecoverSessions has exhausted its retries (server gone for good, metadata
// repointed elsewhere): parked futures fail promptly instead of waiting
// forever. A StatusBrokenSession write may or may not have executed on the
// server — exactly-once only holds for operations reconciled through
// RecoverSessions. Returns the number of operations failed.
func (t *Thread) FailBroken() int {
	n := 0
	for id, s := range t.sessions {
		if !s.broken {
			continue
		}
		s.conn.Close()
		delete(t.sessions, id)
		seqs := make([]uint32, 0, len(s.inflight))
		for seq := range s.inflight {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			op := s.inflight[seq]
			delete(s.inflight, seq)
			t.complete(op, wire.StatusBrokenSession, nil)
			n++
		}
		s.building.Ops = s.building.Ops[:0]
		s.buildSz = 0
	}
	return n
}

// awaitSessionRecoverResp polls conn for the MsgSessionRecoverResp matching
// sessionID, discarding unrelated frames, until deadline.
func awaitSessionRecoverResp(conn transport.Conn, sessionID uint64, deadline time.Time) (wire.SessionRecoverResp, error) {
	for {
		frame, ok, err := conn.TryRecv()
		if err != nil {
			return wire.SessionRecoverResp{}, err
		}
		if ok {
			if typ, _ := wire.PeekType(frame); typ == wire.MsgSessionRecoverResp {
				resp, err := wire.DecodeSessionRecoverResp(frame)
				if err != nil {
					return wire.SessionRecoverResp{}, err
				}
				if resp.SessionID == sessionID {
					return resp, nil
				}
			}
			continue
		}
		if time.Now().After(deadline) {
			return wire.SessionRecoverResp{}, fmt.Errorf("timed out awaiting session-recover response")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
