// Package client is Shadowfax's end-to-end asynchronous client library
// (§3.1.1). Each client thread owns sessions to the servers it talks to;
// operations are buffered into view-tagged batches, pipelined without
// waiting for earlier batches, and completed through per-operation
// callbacks. A batch rejected by a server's view check causes a metadata
// refresh and transparent re-routing of the affected operations — the
// client-side half of Shadowfax's ownership-transfer global cut (§3.2.1).
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/backoff"
	"repro/internal/faster"
	"repro/internal/metadata"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrClosed is returned by operations issued after Close.
var ErrClosed = errors.New("client: thread closed")

// Config tunes a client thread.
type Config struct {
	// Transport dials servers (must match the cluster's transport).
	Transport transport.Transport
	// Meta is the metadata provider for ownership lookups (the in-process
	// store, or a remote provider against a metadata endpoint).
	Meta metadata.Provider
	// BatchOps flushes a session's buffer at this many operations.
	BatchOps int
	// BatchBytes flushes earlier if the encoded batch reaches this size
	// (the paper reports batch sizes in KB; Table 2).
	BatchBytes int
	// MaxInflightBatches bounds pipelining per session (queue depth).
	MaxInflightBatches int
}

func (c *Config) applyDefaults() error {
	if c.Transport == nil || c.Meta == nil {
		return errors.New("client: Transport and Meta required")
	}
	if c.BatchOps == 0 {
		c.BatchOps = 256
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = 32 << 10
	}
	if c.MaxInflightBatches == 0 {
		c.MaxInflightBatches = 8
	}
	return nil
}

// Callback receives an operation's result. value is valid only during the
// call.
type Callback func(status wire.ResultStatus, value []byte)

// session is one connection to one server thread, with its view cache and
// pipelined batches (§3.1.1).
type session struct {
	serverID string
	conn     transport.Conn
	view     metadata.View
	id       uint64
	// broken marks a dead connection (server crash/restart). Operations in
	// inflight are preserved for RecoverSessions to replay (§3.3.1
	// client-assisted recovery) rather than failed.
	broken bool
	// pausedUntil holds flushes off after the server shed a batch (overload);
	// shedStreak escalates the jittered pause while sheds keep coming.
	pausedUntil time.Time
	shedStreak  int

	building wire.RequestBatch
	buildSz  int
	nextSeq  uint32

	inflight    map[uint32]queuedOp // seq -> op (for result routing + rejection replay)
	sentBatches int

	encodeBuf []byte
}

// queuedOp is an operation retained until its result arrives so a rejected
// batch can be re-routed.
type queuedOp struct {
	kind  wire.OpKind
	key   []byte
	value []byte
	cb    Callback
}

// Thread is a single client thread (§3.1.1: one per vCPU, pinned). It is
// not safe for concurrent use; Poll must be called from the owning
// goroutine.
type Thread struct {
	cfg         Config
	id          uint64
	sessions    map[string]*session
	ownership   map[string]metadata.View
	outstanding int
	closed      bool

	// breakers trip per-server after repeated dial failures so a dead or
	// partitioned server costs issue() a map lookup, not a dial timeout,
	// until a half-open probe succeeds.
	breakers backoff.Set

	stats ThreadStats
}

// ThreadStats counts client-side events.
type ThreadStats struct {
	OpsIssued       uint64
	OpsCompleted    uint64
	BatchesSent     uint64
	BatchesRejected uint64
	// BatchesShed counts batches the server turned away under overload
	// (admission control); the ops were requeued after a pause.
	BatchesShed uint64
	Refreshes   uint64
}

// NewThread builds a client thread with a fresh ownership cache. Threads
// may be created from any goroutine; each Thread is then single-owner.
//
// The thread id seeds session identifiers, which index the server's durable
// session table across crashes — so it is drawn at random (48 bits) rather
// than from a process-local counter: a restarted client process must not
// reuse a previous process's session id, or a recovered server would hand
// it the old session's durable prefix and falsely complete its fresh writes.
func NewThread(cfg Config) (*Thread, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	t := &Thread{
		cfg:      cfg,
		id:       rand.Uint64() >> 16,
		sessions: make(map[string]*session),
	}
	t.refreshOwnership()
	return t, nil
}

// refreshOwnership re-reads the ownership mappings from the metadata store
// and updates every session's cached view.
func (t *Thread) refreshOwnership() {
	t.ownership = t.cfg.Meta.Ownership()
	t.stats.Refreshes++
	for id, s := range t.sessions {
		if v, ok := t.ownership[id]; ok {
			s.view = v
		}
	}
}

// ownerOf returns the server owning hash h per the cached mappings.
func (t *Thread) ownerOf(h uint64) (string, bool) {
	for id, v := range t.ownership {
		if v.Owns(h) {
			return id, true
		}
	}
	return "", false
}

// sessionFor returns (dialing if necessary) the session to serverID.
func (t *Thread) sessionFor(serverID string) (*session, error) {
	if s, ok := t.sessions[serverID]; ok {
		return s, nil
	}
	br := t.breakers.For(serverID)
	if !br.Allow() {
		return nil, fmt.Errorf("client: %s unreachable (circuit open)", serverID)
	}
	addr, err := t.cfg.Meta.ServerAddr(serverID)
	if err != nil {
		br.Failure()
		return nil, err
	}
	conn, err := t.cfg.Transport.Dial(addr)
	if err != nil {
		br.Failure()
		return nil, err
	}
	br.Success()
	s := &session{
		serverID: serverID,
		conn:     conn,
		view:     t.ownership[serverID],
		id:       t.id<<16 | uint64(len(t.sessions)),
		inflight: make(map[uint32]queuedOp),
	}
	s.building.SessionID = s.id
	t.sessions[serverID] = s
	return s, nil
}

// Read issues an asynchronous read; cb runs during a later Poll.
func (t *Thread) Read(key []byte, cb Callback) error {
	return t.issue(wire.OpRead, key, nil, cb)
}

// Upsert issues an asynchronous blind write.
func (t *Thread) Upsert(key, value []byte, cb Callback) error {
	return t.issue(wire.OpUpsert, key, value, cb)
}

// RMW issues an asynchronous read-modify-write with the given input.
func (t *Thread) RMW(key, input []byte, cb Callback) error {
	return t.issue(wire.OpRMW, key, input, cb)
}

// Delete issues an asynchronous delete.
func (t *Thread) Delete(key []byte, cb Callback) error {
	return t.issue(wire.OpDelete, key, nil, cb)
}

// issue buffers one operation into the owning server's session (§3.1.1:
// "buffers the request inside the session, enqueues a completion callback,
// and returns").
func (t *Thread) issue(kind wire.OpKind, key, value []byte, cb Callback) error {
	if t.closed {
		// The completion guarantee holds even for late arrivals: the
		// callback fires (with StatusClosed) before the error returns.
		if cb != nil {
			cb(wire.StatusClosed, nil)
		}
		return ErrClosed
	}
	op := queuedOp{kind: kind,
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		cb:    cb}
	t.stats.OpsIssued++
	t.outstanding++
	return t.enqueue(op)
}

func (t *Thread) enqueue(op queuedOp) error {
	h := faster.HashOf(op.key)
	owner, ok := t.ownerOf(h)
	if !ok {
		t.refreshOwnership()
		if owner, ok = t.ownerOf(h); !ok {
			t.complete(op, wire.StatusNotOwner, nil)
			return fmt.Errorf("client: no owner for key hash %#x", h)
		}
	}
	s, err := t.sessionFor(owner)
	if err != nil {
		t.complete(op, wire.StatusErr, nil)
		return err
	}
	seq := s.nextSeq
	s.nextSeq++
	s.building.Ops = append(s.building.Ops, wire.Op{
		Kind: op.kind, Seq: seq, Key: op.key, Value: op.value})
	s.buildSz += 19 + len(op.key) + len(op.value)
	s.inflight[seq] = op
	if len(s.building.Ops) >= t.cfg.BatchOps || s.buildSz >= t.cfg.BatchBytes {
		t.flushSession(s)
	}
	return nil
}

// Flush sends every session's partial batch.
func (t *Thread) Flush() {
	for _, s := range t.sessions {
		t.flushSession(s)
	}
}

// flushSession ships the building batch if pipelining allows; otherwise it
// stays buffered (flow control) and later Polls retry.
func (t *Thread) flushSession(s *session) {
	if len(s.building.Ops) == 0 {
		return
	}
	if s.broken {
		return // ops stay buffered until RecoverSessions replays them
	}
	if s.sentBatches >= t.cfg.MaxInflightBatches {
		return // pipeline full; Poll will drain and re-flush
	}
	if !s.pausedUntil.IsZero() {
		if time.Now().Before(s.pausedUntil) {
			return // shed back-off in effect; Poll re-flushes once it lapses
		}
		s.pausedUntil = time.Time{}
	}
	s.building.View = s.view.Number
	s.encodeBuf = wire.AppendRequestBatch(s.encodeBuf[:0], &s.building)
	if err := s.conn.Send(s.encodeBuf); err != nil {
		// Connection lost: keep the ops in inflight for session recovery —
		// the server may have applied earlier batches, and only a recovered
		// server can say which (RecoverSessions asks it).
		s.broken = true
	} else {
		t.stats.BatchesSent++
		s.sentBatches++
	}
	s.building.Ops = s.building.Ops[:0]
	s.buildSz = 0
}

// Poll processes available responses on all sessions; it returns the number
// of operations completed. Call it in the thread's main loop (§3.1.1: "on
// receiving a batch of results, the library dequeues callbacks and executes
// them").
func (t *Thread) Poll() int {
	n := 0
	for _, s := range t.sessions {
		for {
			frame, ok, err := s.conn.TryRecv()
			if err != nil {
				s.broken = true
				break
			}
			if !ok {
				break
			}
			n += t.handleResponse(s, frame)
		}
		// Renewed window: push buffered ops out.
		if len(s.building.Ops) > 0 && s.sentBatches < t.cfg.MaxInflightBatches {
			t.flushSession(s)
		}
	}
	return n
}

func (t *Thread) handleResponse(s *session, frame []byte) int {
	var resp wire.ResponseBatch
	if err := wire.DecodeResponseBatch(frame, &resp); err != nil {
		return 0
	}
	if resp.Shed {
		// Overload, not a view problem: the server's admission control turned
		// the batch away. Requeue exactly its operations (seqs echoed, as for
		// rejection) WITHOUT a metadata refresh — ownership is fine — and back
		// the session off with an escalating jittered pause so a congested
		// server sees decaying retry pressure instead of an instant replay.
		t.stats.BatchesShed++
		if s.sentBatches > 0 {
			s.sentBatches--
		}
		pause := backoff.Policy{Base: time.Millisecond, Max: 50 * time.Millisecond}.Delay(s.shedStreak)
		s.shedStreak++
		s.pausedUntil = time.Now().Add(pause)
		for i := range resp.Results {
			seq := resp.Results[i].Seq
			if op, ok := s.inflight[seq]; ok {
				delete(s.inflight, seq)
				t.outstanding-- // enqueue re-counts
				t.stats.OpsIssued--
				t.issueRequeued(op)
			}
		}
		return 0
	}
	s.shedStreak = 0
	if resp.Rejected {
		// View mismatch (§3.2.1): refresh ownership, requeue exactly the
		// rejected batch's operations (the server echoed their seqs — a
		// broader requeue would double-apply RMWs still in flight in other
		// batches), and re-bucket anything still buffered under stale
		// ownership.
		t.stats.BatchesRejected++
		if s.sentBatches > 0 {
			s.sentBatches--
		}
		t.refreshOwnership()
		var requeue []queuedOp
		for i := range resp.Results {
			seq := resp.Results[i].Seq
			if op, ok := s.inflight[seq]; ok {
				requeue = append(requeue, op)
				delete(s.inflight, seq)
			}
		}
		requeue = append(requeue, t.unbucketBuffered()...)
		for _, op := range requeue {
			t.outstanding-- // enqueue re-counts
			t.stats.OpsIssued--
			t.issueRequeued(op)
		}
		return 0
	}
	if s.sentBatches > 0 {
		s.sentBatches--
	}
	n := 0
	for i := range resp.Results {
		r := &resp.Results[i]
		op, ok := s.inflight[r.Seq]
		if !ok {
			continue
		}
		delete(s.inflight, r.Seq)
		t.complete(op, r.Status, r.Value)
		n++
	}
	return n
}

// unbucketBuffered removes every session's not-yet-sent operations so they
// can be re-routed under freshly refreshed ownership: an op buffered for a
// server that just lost its range would otherwise be executed by a server
// that no longer owns the key.
func (t *Thread) unbucketBuffered() []queuedOp {
	var out []queuedOp
	for _, s := range t.sessions {
		if len(s.building.Ops) == 0 {
			continue
		}
		for _, wop := range s.building.Ops {
			if op, ok := s.inflight[wop.Seq]; ok {
				out = append(out, op)
				delete(s.inflight, wop.Seq)
			}
		}
		s.building.Ops = s.building.Ops[:0]
		s.buildSz = 0
	}
	return out
}

func (t *Thread) issueRequeued(op queuedOp) {
	t.stats.OpsIssued++
	t.outstanding++
	t.enqueue(op)
}

func (t *Thread) complete(op queuedOp, st wire.ResultStatus, v []byte) {
	t.outstanding--
	t.stats.OpsCompleted++
	if op.cb != nil {
		op.cb(st, v)
	}
}

// Outstanding returns the number of issued-but-uncompleted operations.
func (t *Thread) Outstanding() int { return t.outstanding }

// Stats returns a copy of the thread's counters.
func (t *Thread) Stats() ThreadStats { return t.stats }

// Drain flushes and polls until no operations are outstanding or the
// timeout expires; returns true on full drain.
func (t *Thread) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for t.outstanding > 0 {
		// Checked every iteration, not just on idle polls: a session making
		// steady partial progress (frames keep arriving but the outstanding
		// set never empties) must still stop at the deadline.
		if time.Now().After(deadline) {
			return false
		}
		t.Flush()
		if t.Poll() == 0 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	return true
}

// DrainContext is Drain with context semantics: it flushes and polls until
// no operations are outstanding, the context's deadline expires, or the
// context is cancelled. Cancellation is observed every iteration, whether or
// not the poll made progress.
func (t *Thread) DrainContext(ctx context.Context) error {
	for t.outstanding > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		t.Flush()
		if t.Poll() == 0 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	return nil
}

// Close tears down all sessions. Every operation still outstanding —
// buffered, in flight, or parked on a broken session — completes through its
// callback with StatusClosed before Close returns, so an issued operation
// always receives exactly one completion. Operations issued after Close fail
// the same way immediately.
func (t *Thread) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for _, s := range t.sessions {
		s.conn.Close()
		// Complete in sequence order: the order the ops were issued in.
		seqs := make([]uint32, 0, len(s.inflight))
		for seq := range s.inflight {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			op := s.inflight[seq]
			delete(s.inflight, seq)
			t.complete(op, wire.StatusClosed, nil)
		}
		s.building.Ops = s.building.Ops[:0]
		s.buildSz = 0
	}
	t.sessions = map[string]*session{}
}
