// Package chaos is a deterministic fault-injection layer over any
// transport.Transport. A Network groups endpoints into named nodes and
// injects faults on the directed links between them: full or asymmetric
// partitions, per-link latency with jitter, bandwidth caps, and forced
// connection resets — plus scheduled heals, so a test can script an outage
// timeline and assert what the cluster does on the way down AND on the way
// back up.
//
// Usage:
//
//	net := chaos.NewNetwork(transport.NewInMem(transport.Free), seed)
//	primary := net.Node("primary")   // a transport.Transport view
//	client := net.Node("client")
//	...hand the views to servers/clients as their Transport...
//	net.Partition("primary", "client")
//	net.HealAllAfter(2 * time.Second)
//
// Fault filtering is entirely dialer-side: Listen registers the address →
// node ownership and returns the inner listener untouched, while Dial wraps
// the connection so that its Send path applies the dialer→owner link and
// its Recv path applies the owner→dialer link. Both directions of every
// conversation are therefore covered without wrapping accepted conns.
// Faults are modeled as the network would impose them: a cut link
// blackholes frames silently (no error — the sender learns only via
// timeouts, exactly like a real partition), latency delays delivery
// without reordering (FIFO per link, like TCP), and a bandwidth cap paces
// departures with a per-link virtual clock. All randomness (jitter) comes
// from the seeded generator, so a given schedule replays identically.
package chaos

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/transport"
)

// ErrPartitioned is returned by Dial when the link between the dialing
// node and the address's owner is cut in either direction (a TCP connect
// needs both ways).
var ErrPartitioned = errors.New("chaos: link partitioned")

// pollEvery is the granularity of the blocking-Recv poll and of pump
// wakeups; it bounds the extra latency chaos adds on clean links.
const pollEvery = 200 * time.Microsecond

type linkKey struct{ from, to string }

// linkState holds the faults of one directed link. Absent state means a
// clean link.
type linkState struct {
	cut      bool
	latency  time.Duration
	jitter   time.Duration
	bwps     int64     // bytes per second; 0 = unlimited
	nextFree time.Time // virtual clock for bandwidth pacing
}

func (l *linkState) clean() bool {
	return !l.cut && l.latency == 0 && l.jitter == 0 && l.bwps == 0
}

// Network wraps an inner transport and tracks per-link fault state.
type Network struct {
	inner transport.Transport

	mu     sync.Mutex
	rng    *rand.Rand
	owners map[string]string // listen addr -> owning node name
	links  map[linkKey]*linkState
	conns  map[*conn]struct{}
}

// NewNetwork wraps inner. All jitter draws come from a generator seeded
// with seed, so runs are reproducible.
func NewNetwork(inner transport.Transport, seed uint64) *Network {
	return &Network{
		inner:  inner,
		rng:    rand.New(rand.NewPCG(seed, seed^0xc4a05)),
		owners: make(map[string]string),
		links:  make(map[linkKey]*linkState),
		conns:  make(map[*conn]struct{}),
	}
}

// Node returns the transport view of a named node. Every endpoint created
// through the view belongs to that node for link-fault purposes.
func (n *Network) Node(name string) transport.Transport {
	return &nodeTransport{net: n, name: name}
}

func (n *Network) link(from, to string) *linkState {
	l, ok := n.links[linkKey{from, to}]
	if !ok {
		l = &linkState{}
		n.links[linkKey{from, to}] = l
	}
	return l
}

// peek returns the link state without materializing clean links.
func (n *Network) peek(from, to string) *linkState {
	return n.links[linkKey{from, to}]
}

// Partition cuts both directions between two nodes. Established conns stay
// open but blackhole frames; new dials fail with ErrPartitioned.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.link(a, b).cut = true
	n.link(b, a).cut = true
}

// PartitionOneWay cuts only from→to: from's frames vanish while to's still
// arrive — the asymmetric-loss case that breaks naive liveness detectors.
func (n *Network) PartitionOneWay(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.link(from, to).cut = true
}

// Heal clears the cut in both directions between two nodes (latency and
// bandwidth shaping persist).
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l := n.peek(a, b); l != nil {
		l.cut = false
	}
	if l := n.peek(b, a); l != nil {
		l.cut = false
	}
}

// HealAll clears every cut on the network.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		l.cut = false
	}
}

// HealAllAfter schedules HealAll once d elapses and returns the timer (a
// test may Stop it).
func (n *Network) HealAllAfter(d time.Duration) *time.Timer {
	return time.AfterFunc(d, n.HealAll)
}

// SetLatency shapes both directions between two nodes: each frame is
// delivered lat ± jitter after it is sent. Zero restores the direct path.
func (n *Network) SetLatency(a, b string, lat, jitter time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, k := range []linkKey{{a, b}, {b, a}} {
		l := n.link(k.from, k.to)
		l.latency, l.jitter = lat, jitter
	}
}

// SetBandwidth caps both directions between two nodes at bytesPerSec
// (0 = unlimited). Frames above the rate queue behind a per-link virtual
// clock instead of being dropped.
func (n *Network) SetBandwidth(a, b string, bytesPerSec int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, k := range []linkKey{{a, b}, {b, a}} {
		n.link(k.from, k.to).bwps = bytesPerSec
	}
}

// ResetConns abruptly closes every tracked connection between two nodes
// (in either orientation), modeling RSTs: both endpoints observe
// transport.ErrClosed. The link itself stays as configured, so redials
// succeed unless it is also cut.
func (n *Network) ResetConns(a, b string) int {
	n.mu.Lock()
	var victims []*conn
	for c := range n.conns {
		if (c.from == a && c.to == b) || (c.from == b && c.to == a) {
			victims = append(victims, c)
		}
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	return len(victims)
}

// ownerOf resolves a dial address to its owning node; unregistered
// addresses act as their own single-endpoint node.
func (n *Network) ownerOf(addr string) string {
	if owner, ok := n.owners[addr]; ok {
		return owner
	}
	return addr
}

// stamp computes, under n.mu, the fate of a frame of size sz crossing
// from→to right now: dropped, or due for delivery at the returned time.
func (n *Network) stamp(from, to string, sz int) (drop bool, due time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.peek(from, to)
	now := time.Now()
	if l == nil {
		return false, now
	}
	if l.cut {
		return true, time.Time{}
	}
	base := now
	if l.bwps > 0 {
		if l.nextFree.After(base) {
			base = l.nextFree
		}
		transmit := time.Duration(float64(sz) / float64(l.bwps) * float64(time.Second))
		base = base.Add(transmit)
		l.nextFree = base
	}
	due = base.Add(l.latency)
	if l.jitter > 0 {
		due = due.Add(time.Duration(n.rng.Int64N(int64(2*l.jitter))) - l.jitter)
	}
	return false, due
}

// cutNow reports whether from→to is cut at this instant (checked again at
// delivery time, so frames in flight when the partition lands are lost).
func (n *Network) cutNow(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.peek(from, to)
	return l != nil && l.cut
}

// cleanNow reports whether from→to currently has no faults at all (fast
// path: frames may bypass the delay queue).
func (n *Network) cleanNow(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.peek(from, to)
	return l == nil || l.clean()
}

func (n *Network) track(c *conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.conns[c] = struct{}{}
}

func (n *Network) untrack(c *conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.conns, c)
}

// nodeTransport is one node's view of the network.
type nodeTransport struct {
	net  *Network
	name string
}

func (t *nodeTransport) Listen(addr string) (transport.Listener, error) {
	ln, err := t.net.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	t.net.mu.Lock()
	t.net.owners[addr] = t.name
	t.net.mu.Unlock()
	return ln, nil
}

func (t *nodeTransport) Dial(addr string) (transport.Conn, error) {
	t.net.mu.Lock()
	to := t.net.ownerOf(addr)
	cutEither := false
	if l := t.net.peek(t.name, to); l != nil && l.cut {
		cutEither = true
	}
	if l := t.net.peek(to, t.name); l != nil && l.cut {
		cutEither = true
	}
	t.net.mu.Unlock()
	if cutEither {
		return nil, fmt.Errorf("dial %s from node %s: %w", addr, t.name, ErrPartitioned)
	}
	inner, err := t.net.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := &conn{net: t.net, inner: inner, from: t.name, to: to}
	t.net.track(c)
	return c, nil
}

type delayed struct {
	frame []byte
	due   time.Time
}

// conn wraps a dialed connection. Send applies the from→to link; the Recv
// side applies to→from. The accept-side peer holds the raw inner conn.
type conn struct {
	net   *Network
	inner transport.Conn
	from  string // dialing node
	to    string // owner of the dialed address

	mu      sync.Mutex
	outQ    []delayed
	pumping bool
	inQ     []delayed
	inErr   error
	closed  bool
}

func (c *conn) Send(frame []byte) error {
	drop, due := c.net.stamp(c.from, c.to, len(frame))
	if drop {
		return nil // blackholed: partitions are silent
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return transport.ErrClosed
	}
	if !c.pumping && len(c.outQ) == 0 && !due.After(time.Now()) {
		c.mu.Unlock()
		return c.inner.Send(frame)
	}
	c.outQ = append(c.outQ, delayed{frame: append([]byte(nil), frame...), due: due})
	if !c.pumping {
		c.pumping = true
		go c.pump()
	}
	c.mu.Unlock()
	return nil
}

// pump delivers delayed outbound frames in FIFO order at their due times,
// re-checking the cut at delivery so in-flight frames die with the link.
func (c *conn) pump() {
	for {
		c.mu.Lock()
		if c.closed || len(c.outQ) == 0 {
			c.outQ = nil
			c.pumping = false
			c.mu.Unlock()
			return
		}
		d := c.outQ[0]
		c.outQ = c.outQ[1:]
		c.mu.Unlock()
		if w := time.Until(d.due); w > 0 {
			time.Sleep(w)
		}
		if c.net.cutNow(c.from, c.to) {
			continue // lost in flight
		}
		if c.inner.Send(d.frame) != nil {
			c.mu.Lock()
			c.outQ = nil
			c.pumping = false
			c.mu.Unlock()
			return
		}
	}
}

func (c *conn) TryRecv() ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, false, transport.ErrClosed
	}
	// Drain the inner conn, stamping or dropping per the to→from link.
	for c.inErr == nil {
		f, ok, err := c.inner.TryRecv()
		if err != nil {
			c.inErr = err
			break
		}
		if !ok {
			break
		}
		drop, due := c.net.stamp(c.to, c.from, len(f))
		if drop {
			continue
		}
		c.inQ = append(c.inQ, delayed{frame: f, due: due})
	}
	// FIFO delivery: only the head may be released, preserving per-link
	// ordering even if shaping changed between frames.
	if len(c.inQ) > 0 {
		if d := c.inQ[0]; !d.due.After(time.Now()) {
			c.inQ = c.inQ[1:]
			return d.frame, true, nil
		}
		return nil, false, nil
	}
	if c.inErr != nil {
		return nil, false, c.inErr
	}
	return nil, false, nil
}

func (c *conn) Recv() ([]byte, error) {
	for {
		f, ok, err := c.TryRecv()
		if err != nil {
			return nil, err
		}
		if ok {
			return f, nil
		}
		time.Sleep(pollEvery)
	}
}

func (c *conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.outQ = nil
	c.inQ = nil
	c.mu.Unlock()
	c.net.untrack(c)
	return c.inner.Close()
}
