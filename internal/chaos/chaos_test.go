package chaos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/transport"
)

// pipe builds a listener on "b" plus a dialed chaos conn from node a to
// node b, returning the dial-side conn and the accept-side raw conn.
func pipe(t *testing.T, n *Network, a, b string) (transport.Conn, transport.Conn) {
	t.Helper()
	ln, err := n.Node(b).Listen(b)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dc, err := n.Node(a).Dial(b)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	select {
	case ac := <-accepted:
		return dc, ac
	case <-time.After(time.Second):
		t.Fatal("accept timed out")
		return nil, nil
	}
}

func recvWithin(t *testing.T, c transport.Conn, d time.Duration) ([]byte, bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		f, ok, err := c.TryRecv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if ok {
			return f, true
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil, false
}

func TestPartitionBlackholesAndHeals(t *testing.T) {
	n := NewNetwork(transport.NewInMem(transport.Free), 1)
	dc, ac := pipe(t, n, "client", "server")

	if err := dc.Send([]byte("pre")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if f, ok := recvWithin(t, ac, time.Second); !ok || string(f) != "pre" {
		t.Fatalf("pre-partition frame lost (ok=%v f=%q)", ok, f)
	}

	n.Partition("client", "server")
	// Sends are silently dropped in both directions.
	if err := dc.Send([]byte("lost")); err != nil {
		t.Fatalf("blackholed send must not error, got %v", err)
	}
	if err := ac.Send([]byte("lost-too")); err != nil {
		t.Fatalf("accept-side send: %v", err)
	}
	if f, ok := recvWithin(t, ac, 20*time.Millisecond); ok {
		t.Fatalf("frame crossed a cut link: %q", f)
	}
	if f, ok := recvWithin(t, dc, 20*time.Millisecond); ok {
		t.Fatalf("reverse frame crossed a cut link: %q", f)
	}
	// New dials fail fast.
	if _, err := n.Node("client").Dial("server"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial across cut link: got %v, want ErrPartitioned", err)
	}

	n.Heal("client", "server")
	if err := dc.Send([]byte("post")); err != nil {
		t.Fatalf("post-heal send: %v", err)
	}
	if f, ok := recvWithin(t, ac, time.Second); !ok || string(f) != "post" {
		t.Fatalf("post-heal frame lost (ok=%v f=%q)", ok, f)
	}
	if _, err := n.Node("client").Dial("server"); err != nil {
		t.Fatalf("post-heal dial: %v", err)
	}
}

func TestAsymmetricPartition(t *testing.T) {
	n := NewNetwork(transport.NewInMem(transport.Free), 2)
	dc, ac := pipe(t, n, "a", "b")

	n.PartitionOneWay("a", "b")
	if err := dc.Send([]byte("up")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, ok := recvWithin(t, ac, 20*time.Millisecond); ok {
		t.Fatal("a→b frame crossed the cut direction")
	}
	// The b→a direction still works.
	if err := ac.Send([]byte("down")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if f, ok := recvWithin(t, dc, time.Second); !ok || string(f) != "down" {
		t.Fatalf("b→a frame lost (ok=%v f=%q)", ok, f)
	}
}

func TestLatencyDelaysWithoutReordering(t *testing.T) {
	n := NewNetwork(transport.NewInMem(transport.Free), 3)
	dc, ac := pipe(t, n, "a", "b")
	n.SetLatency("a", "b", 30*time.Millisecond, 5*time.Millisecond)

	start := time.Now()
	for _, m := range []string{"one", "two", "three"} {
		if err := dc.Send([]byte(m)); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if _, ok := recvWithin(t, ac, 10*time.Millisecond); ok {
		t.Fatal("frame arrived before the configured latency")
	}
	for _, want := range []string{"one", "two", "three"} {
		f, ok := recvWithin(t, ac, time.Second)
		if !ok {
			t.Fatalf("frame %q never arrived", want)
		}
		if string(f) != want {
			t.Fatalf("reordered: got %q, want %q", f, want)
		}
	}
	if e := time.Since(start); e < 25*time.Millisecond {
		t.Fatalf("delivery too fast for 30ms±5ms latency: %v", e)
	}
}

func TestBandwidthPacing(t *testing.T) {
	n := NewNetwork(transport.NewInMem(transport.Free), 4)
	dc, ac := pipe(t, n, "a", "b")
	// 10 KiB/s: ten 100-byte frames need ~100ms of link time.
	n.SetBandwidth("a", "b", 10*1024)

	start := time.Now()
	buf := make([]byte, 100)
	for i := 0; i < 10; i++ {
		if err := dc.Send(buf); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, ok := recvWithin(t, ac, 2*time.Second); !ok {
			t.Fatalf("frame %d never arrived", i)
		}
	}
	if e := time.Since(start); e < 50*time.Millisecond {
		t.Fatalf("1000 bytes crossed a 10KiB/s link in %v; pacing not applied", e)
	}
}

func TestResetConns(t *testing.T) {
	n := NewNetwork(transport.NewInMem(transport.Free), 5)
	dc, ac := pipe(t, n, "a", "b")

	if got := n.ResetConns("a", "b"); got != 1 {
		t.Fatalf("ResetConns closed %d conns, want 1", got)
	}
	if err := dc.Send([]byte("x")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("send on reset conn: got %v, want ErrClosed", err)
	}
	// The accept-side inner conn observes the close too (maybe after the
	// in-flight drain).
	deadline := time.Now().Add(time.Second)
	for {
		_, _, err := ac.TryRecv()
		if errors.Is(err, transport.ErrClosed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("accept side never observed the reset")
		}
		time.Sleep(time.Millisecond)
	}
	// The link itself is intact: redial works.
	if _, err := n.Node("a").Dial("b"); err != nil {
		t.Fatalf("redial after reset: %v", err)
	}
}

func TestHealAllAfter(t *testing.T) {
	n := NewNetwork(transport.NewInMem(transport.Free), 6)
	dc, ac := pipe(t, n, "a", "b")
	n.Partition("a", "b")
	n.HealAllAfter(30 * time.Millisecond)

	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := dc.Send([]byte("probe")); err != nil {
			t.Fatalf("send: %v", err)
		}
		if _, ok := recvWithin(t, ac, 5*time.Millisecond); ok {
			return // healed
		}
		if time.Now().After(deadline) {
			t.Fatal("link never healed")
		}
	}
}

func TestUnregisteredAddrActsAsOwnNode(t *testing.T) {
	// Partitioning against the raw address works even before Listen
	// registered an owner (and dial-time resolution is by current owner).
	n := NewNetwork(transport.NewInMem(transport.Free), 7)
	n.Partition("client", "srv-addr")
	if _, err := n.Node("client").Dial("srv-addr"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial: got %v, want ErrPartitioned", err)
	}
}
