package hashfn

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// Reference vectors computed with the canonical xxHash64 implementation.
var vectors = []struct {
	in   string
	seed uint64
	want uint64
}{
	{"", 0, 0xEF46DB3751D8E999},
	{"", 1, 0xD5AFBA1336A3BE4B},
	{"a", 0, 0xD24EC4F1A98C6E5B},
	{"as", 0, 0x1C330FB2D66BE179},
	{"asd", 0, 0x631C37CE72A97393},
	{"asdf", 0, 0x415872F599CEA71E},
	{"Call me Ishmael.", 0, 0x6D04390FC9D61A90},
	{"Some years ago--never mind how long precisely-", 0, 0x8F26F2B986AFDC52},
	// Exactly 63 characters, exercising the 32-byte lanes plus three 8-byte
	// tail rounds (regression pin; path correctness is established by the
	// canonical vectors above, which cover each tail size once).
	{"Call me Ishmael. Some years ago--never mind how long precisely", 0, 0x80907A3AA97C91CB},
}

func TestHashVectors(t *testing.T) {
	for _, v := range vectors {
		if got := HashSeed([]byte(v.in), v.seed); got != v.want {
			t.Errorf("HashSeed(%q, %d) = %#x, want %#x", v.in, v.seed, got, v.want)
		}
	}
}

func TestHashMatchesSeedZero(t *testing.T) {
	for _, v := range vectors {
		if v.seed != 0 {
			continue
		}
		if Hash([]byte(v.in)) != HashSeed([]byte(v.in), 0) {
			t.Errorf("Hash(%q) != HashSeed(seed=0)", v.in)
		}
	}
}

func TestHash64MatchesBytes(t *testing.T) {
	for _, k := range []uint64{0, 1, 42, 1 << 40, ^uint64(0)} {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], k)
		if Hash64(k) != Hash(buf[:]) {
			t.Errorf("Hash64(%d) disagrees with Hash of its bytes", k)
		}
	}
}

func TestHashDeterministic(t *testing.T) {
	f := func(b []byte) bool { return Hash(b) == Hash(b) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHashHighBitsSpread checks the property the FASTER index relies on: the
// top 14 bits (used as the in-bucket tag) must be well distributed.
func TestHashHighBitsSpread(t *testing.T) {
	const n = 1 << 14
	seen := make(map[uint64]int)
	var buf [8]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		tag := Hash(buf[:]) >> 50
		seen[tag]++
	}
	// With 16384 samples into 16384 tag values, expect a large number of
	// distinct tags (balls-into-bins: ~63% occupancy).
	if len(seen) < n/2 {
		t.Errorf("tag distribution too narrow: %d distinct of %d", len(seen), n)
	}
}

// TestHashLowBitsSpread checks bucket-index distribution for sequential keys.
func TestHashLowBitsSpread(t *testing.T) {
	const buckets = 1024
	counts := make([]int, buckets)
	var buf [8]byte
	for i := 0; i < buckets*16; i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		counts[Hash(buf[:])&(buckets-1)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("bucket %d empty after 16x load", i)
		}
		if c > 64 {
			t.Fatalf("bucket %d badly overloaded: %d", i, c)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Mix64 must not collide on small distinct inputs (it is a bijection;
	// spot-check a window).
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 4096; i++ {
		m := Mix64(i)
		if prev, dup := seen[m]; dup {
			t.Fatalf("Mix64 collision: %d and %d -> %#x", prev, i, m)
		}
		seen[m] = i
	}
}

func BenchmarkHash8(b *testing.B) {
	buf := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(buf, uint64(i))
		Hash(buf)
	}
}

func BenchmarkHash256(b *testing.B) {
	buf := make([]byte, 256)
	b.SetBytes(256)
	for i := 0; i < b.N; i++ {
		Hash(buf)
	}
}
