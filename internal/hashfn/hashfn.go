// Package hashfn provides the 64-bit key hash used throughout the store.
//
// Shadowfax hash-partitions records across servers and uses the high bits of
// the same hash as the in-bucket tag of the FASTER index, so the hash must be
// strong across its whole width. This is a from-scratch implementation of the
// xxHash64 algorithm (Yann Collet's public-domain specification), which mixes
// well in both the high and low bits and needs no per-process seed, keeping
// hash-range ownership stable across machines and restarts.
package hashfn

import "encoding/binary"

const (
	prime1 = 0x9E3779B185EBCA87
	prime2 = 0xC2B2AE3D27D4EB4F
	prime3 = 0x165667B19E3779F9
	prime4 = 0x85EBCA77C2B2AE63
	prime5 = 0x27D4EB2F165667C5
)

// Hash returns the 64-bit xxHash of b with seed 0.
func Hash(b []byte) uint64 {
	return HashSeed(b, 0)
}

// HashSeed returns the 64-bit xxHash of b with the given seed.
func HashSeed(b []byte, seed uint64) uint64 {
	n := len(b)
	var h uint64

	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(b) >= 32 {
			v1 = round(v1, binary.LittleEndian.Uint64(b[0:8]))
			v2 = round(v2, binary.LittleEndian.Uint64(b[8:16]))
			v3 = round(v3, binary.LittleEndian.Uint64(b[16:24]))
			v4 = round(v4, binary.LittleEndian.Uint64(b[24:32]))
			b = b[32:]
		}
		h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}

	h += uint64(n)

	for len(b) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(b[0:8]))
		h = rotl(h, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b[0:4])) * prime1
		h = rotl(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime5
		h = rotl(h, 11) * prime1
	}

	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Hash64 hashes a uint64 key directly (a fast path for fixed 8-byte keys).
func Hash64(k uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], k)
	return Hash(buf[:])
}

// Mix64 is a cheap avalanche finalizer (splitmix64's mixer). It is used where
// a full xxHash is unnecessary, e.g. spreading already-random values.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = rotl(acc, 31)
	acc *= prime1
	return acc
}

func mergeRound(acc, val uint64) uint64 {
	val = round(0, val)
	acc ^= val
	acc = acc*prime1 + prime4
	return acc
}

func rotl(x uint64, r uint) uint64 {
	return (x << r) | (x >> (64 - r))
}
