package hlog

import (
	"encoding/binary"
	"sync/atomic"
	"unsafe"
)

// Record layout, 8-byte aligned within a page (records never span pages):
//
//	offset 0:  meta word   uint64 (atomic): prev address | version | flags
//	offset 8:  length word uint64: keyLen (low 32) | valueLen (high 32)
//	offset 16: key bytes, zero-padded to 8
//	offset 16+pad8(keyLen): value bytes, zero-padded to 8
//
// The meta word packs, from the low bit:
//
//	bits  0..47  previous address in this key's hash chain (reverse list)
//	bits 48..58  CPR checkpoint version (11 bits, compared for equality)
//	bit  59      invalid: an abandoned append (lost a hash-chain CAS race);
//	             scanners must ignore the record
//	bit  60      write stamp: toggled when an in-place write completes, so
//	             lock-free readers can detect a write that raced their copy
//	bit  61      indirection: this is an indirection record (§3.3.2) whose
//	             value encodes a pointer into another server's shared-tier log
//	bit  62      tombstone: the key is deleted
//	bit  63      sealed: write lock for variable-length in-place updates
//
// A zero length word marks the end of a page's written records (frames are
// zeroed before reuse), which is how sequential scans detect padding.
const (
	// HeaderBytes is the fixed portion of every record.
	HeaderBytes = 16

	versionShift = 48
	versionBits  = 11
	// VersionMask bounds CPR checkpoint versions stored in records.
	VersionMask = (uint64(1) << versionBits) - 1

	invalidBit     = uint64(1) << 59
	wstampBit      = uint64(1) << 60
	indirectionBit = uint64(1) << 61
	tombstoneBit   = uint64(1) << 62
	sealedBit      = uint64(1) << 63
)

// Meta is a decoded record meta word.
type Meta uint64

// SameVersion reports whether two CPR versions are equal modulo the record
// meta word's version field width. Record stamps are truncated to
// versionBits, so any comparison between a stamp and the store's full
// uint32 version must go through this helper — direct ==/<= silently breaks
// once the store version exceeds VersionMask.
func SameVersion(a, b uint32) bool {
	return a&uint32(VersionMask) == b&uint32(VersionMask)
}

// Previous returns the next-older address in the key's hash chain.
func (m Meta) Previous() Address { return Address(uint64(m) & AddressMask) }

// Version returns the CPR checkpoint version stamped on the record.
func (m Meta) Version() uint32 {
	return uint32((uint64(m) >> versionShift) & VersionMask)
}

// Indirection reports whether this is an indirection record.
func (m Meta) Indirection() bool { return uint64(m)&indirectionBit != 0 }

// Tombstone reports whether the record deletes its key.
func (m Meta) Tombstone() bool { return uint64(m)&tombstoneBit != 0 }

// Sealed reports whether a writer currently holds the record's write lock.
func (m Meta) Sealed() bool { return uint64(m)&sealedBit != 0 }

// Invalid reports whether the record is an abandoned append that scanners
// must skip.
func (m Meta) Invalid() bool { return uint64(m)&invalidBit != 0 }

// WithInvalid returns m with the invalid flag set.
func (m Meta) WithInvalid() Meta { return Meta(uint64(m) | invalidBit) }

// WithPrevious returns m with the previous address replaced.
func (m Meta) WithPrevious(prev Address) Meta {
	return Meta((uint64(m) &^ AddressMask) | (uint64(prev) & AddressMask))
}

// NewMeta packs a meta word.
func NewMeta(prev Address, version uint32, indirection, tombstone bool) Meta {
	m := uint64(prev) & AddressMask
	m |= (uint64(version) & VersionMask) << versionShift
	if indirection {
		m |= indirectionBit
	}
	if tombstone {
		m |= tombstoneBit
	}
	return Meta(m)
}

// RecordSize returns the total padded size of a record with the given key
// and value lengths.
func RecordSize(keyLen, valueLen int) int {
	return HeaderBytes + pad8(keyLen) + pad8(valueLen)
}

func pad8(n int) int { return (n + 7) &^ 7 }

// Record is a view over a record's bytes inside a page frame (or a copied
// buffer). Accessors that use atomics require the underlying buffer to be
// 8-byte aligned, which page frames guarantee.
type Record []byte

// metaPtr returns the meta word for atomic access.
func (r Record) metaPtr() *uint64 { return (*uint64)(unsafe.Pointer(&r[0])) }

// Meta atomically loads the record's meta word.
func (r Record) Meta() Meta { return Meta(atomic.LoadUint64(r.metaPtr())) }

// SetMeta atomically stores the record's meta word.
func (r Record) SetMeta(m Meta) { atomic.StoreUint64(r.metaPtr(), uint64(m)) }

// CASMeta atomically replaces the meta word if it equals old.
func (r Record) CASMeta(old, new Meta) bool {
	return atomic.CompareAndSwapUint64(r.metaPtr(), uint64(old), uint64(new))
}

// lenWord atomically loads the packed key/value length word; records live
// in page frames that scanners read concurrently with writers.
func (r Record) lenWord() uint64 {
	return atomic.LoadUint64((*uint64)(unsafe.Pointer(&r[8])))
}

// KeyLen returns the record's key length in bytes.
func (r Record) KeyLen() int { return int(uint32(r.lenWord())) }

// ValueLen returns the record's value length in bytes.
func (r Record) ValueLen() int { return int(uint32(r.lenWord() >> 32)) }

// Size returns the record's total padded size.
func (r Record) Size() int { return RecordSize(r.KeyLen(), r.ValueLen()) }

// Key returns the record's key bytes (aliasing the frame; do not retain).
func (r Record) Key() []byte { return r[HeaderBytes : HeaderBytes+r.KeyLen()] }

// valueOff returns the byte offset of the value region.
func (r Record) valueOff() int { return HeaderBytes + pad8(r.KeyLen()) }

// Value returns the record's value bytes (aliasing the frame).
func (r Record) Value() []byte {
	off := r.valueOff()
	return r[off : off+r.ValueLen()]
}

// ValueWordPtr returns the first 8 bytes of the value region for atomic
// counter operations (valid when ValueLen >= 8).
func (r Record) ValueWordPtr() *uint64 {
	return (*uint64)(unsafe.Pointer(&r[r.valueOff()]))
}

// LoadValueWord atomically reads an 8-byte value.
func (r Record) LoadValueWord() uint64 { return atomic.LoadUint64(r.ValueWordPtr()) }

// StoreValueWord atomically writes an 8-byte value.
func (r Record) StoreValueWord(v uint64) { atomic.StoreUint64(r.ValueWordPtr(), v) }

// AddValueWord atomically adds to an 8-byte value and returns the new value.
func (r Record) AddValueWord(delta uint64) uint64 {
	return atomic.AddUint64(r.ValueWordPtr(), delta)
}

// WriteRecord serializes a record into buf, which must be at least
// RecordSize(len(key), len(value)) bytes and 8-byte aligned. Every word is
// written with an atomic store: records live in page frames that concurrent
// fuzzy snapshots (checkpoints, flushes) read with atomic loads. The meta
// word is written last so a concurrent sequential scanner that reads a
// non-zero length word still sees a fully-written header once meta is
// non-zero.
func WriteRecord(buf []byte, meta Meta, key, value []byte) Record {
	r := Record(buf)
	atomic.StoreUint64((*uint64)(unsafe.Pointer(&buf[8])),
		uint64(uint32(len(key)))|uint64(uint32(len(value)))<<32)
	storeBytesAtomic(buf[HeaderBytes:], key)
	vo := HeaderBytes + pad8(len(key))
	storeBytesAtomic(buf[vo:], value)
	r.SetMeta(meta)
	return r
}

// storeBytesAtomic writes src into the (8-aligned) region at dst using
// 8-byte atomic stores, zero-padding the final word.
func storeBytesAtomic(dst, src []byte) {
	var word [8]byte
	for i := 0; i < len(src); i += 8 {
		word = [8]byte{}
		copy(word[:], src[i:])
		atomic.StoreUint64((*uint64)(unsafe.Pointer(&dst[i])),
			binary.LittleEndian.Uint64(word[:]))
	}
}

// Seal acquires the record's write lock, spinning until it is free, and
// returns the pre-seal meta word.
func (r Record) Seal() Meta {
	for {
		m := r.Meta()
		if m.Sealed() {
			continue
		}
		if r.CASMeta(m, Meta(uint64(m)|sealedBit)) {
			return m
		}
	}
}

// Unseal releases the write lock taken by Seal and toggles the write stamp
// so optimistic readers retry.
func (r Record) Unseal(preSeal Meta) {
	r.SetMeta(Meta((uint64(preSeal) &^ sealedBit) ^ wstampBit))
}

// ReadValueStable copies the record's value using an optimistic
// seqlock-style protocol: it retries while a writer holds the seal or if the
// write stamp changed during the copy. The copy itself is done with 8-byte
// atomic loads (the value region is 8-aligned and zero-padded to 8), so it
// also composes with lock-free in-place counter updates that bypass the
// seal. dst is grown as needed and returned.
func (r Record) ReadValueStable(dst []byte) []byte {
	for {
		m1 := r.Meta()
		if m1.Sealed() {
			continue
		}
		n := r.ValueLen()
		if cap(dst) < n {
			dst = make([]byte, n)
		}
		dst = dst[:n]
		off := r.valueOff()
		var word [8]byte
		for i := 0; i < n; i += 8 {
			w := atomic.LoadUint64((*uint64)(unsafe.Pointer(&r[off+i])))
			binary.LittleEndian.PutUint64(word[:], w)
			copy(dst[i:], word[:])
		}
		if r.Meta() == m1 {
			return dst
		}
	}
}

// StoreValueBytes overwrites the record's value region with src (which must
// have length ValueLen) using 8-byte atomic stores; in-place writers call it
// between Seal and Unseal so optimistic readers never observe torn words.
func (r Record) StoreValueBytes(src []byte) {
	off := r.valueOff()
	var word [8]byte
	for i := 0; i < len(src); i += 8 {
		word = [8]byte{}
		copy(word[:], src[i:])
		atomic.StoreUint64((*uint64)(unsafe.Pointer(&r[off+i])),
			binary.LittleEndian.Uint64(word[:]))
	}
}

// IndirectionPayload is the value carried by an indirection record (§3.3.2):
// enough information for the target to fetch the actual record chain from
// the source's log in the shared tier.
type IndirectionPayload struct {
	// NextAddress is the first on-SSD/shared-tier address of the remainder
	// of the hash chain in the source's log.
	NextAddress Address
	// LogID identifies the source's log in the shared tier.
	LogID string
	// RangeStart and RangeEnd delimit the migrated hash range the chain
	// belonged to (half-open interval of key hashes).
	RangeStart, RangeEnd uint64
	// HashBucket is the source hash-table entry's bucket index image, kept
	// so the target can disambiguate chains if its index geometry differs.
	HashBucket uint64
}

// EncodeIndirection serializes p as a record value.
func EncodeIndirection(p IndirectionPayload) []byte {
	buf := make([]byte, 8+8+8+8+2+len(p.LogID))
	binary.LittleEndian.PutUint64(buf[0:8], uint64(p.NextAddress))
	binary.LittleEndian.PutUint64(buf[8:16], p.RangeStart)
	binary.LittleEndian.PutUint64(buf[16:24], p.RangeEnd)
	binary.LittleEndian.PutUint64(buf[24:32], p.HashBucket)
	binary.LittleEndian.PutUint16(buf[32:34], uint16(len(p.LogID)))
	copy(buf[34:], p.LogID)
	return buf
}

// DecodeIndirection parses a value written by EncodeIndirection.
func DecodeIndirection(v []byte) (IndirectionPayload, bool) {
	if len(v) < 34 {
		return IndirectionPayload{}, false
	}
	n := int(binary.LittleEndian.Uint16(v[32:34]))
	if len(v) < 34+n {
		return IndirectionPayload{}, false
	}
	return IndirectionPayload{
		NextAddress: Address(binary.LittleEndian.Uint64(v[0:8])),
		RangeStart:  binary.LittleEndian.Uint64(v[8:16]),
		RangeEnd:    binary.LittleEndian.Uint64(v[16:24]),
		HashBucket:  binary.LittleEndian.Uint64(v[24:32]),
		LogID:       string(v[34 : 34+n]),
	}, true
}
