// Package hlog implements FASTER's HybridLog allocator (§2.2): a single
// logical log whose address space spans an in-memory circular buffer of page
// frames, a local SSD (the stable region), and — in Shadowfax — a shared
// remote tier. The in-memory portion is split into a mutable region (records
// updated in place) and a read-only region (records being flushed; updates
// use read-copy-update).
//
// Region boundaries (head, read-only) move via asynchronous global cuts on
// the epoch manager, so no thread ever stalls to coordinate a flush or an
// eviction; each thread simply observes the new boundary at its next epoch
// refresh, and flush/eviction trigger actions fire once all threads have.
package hlog

// Address is a 48-bit logical byte offset into a HybridLog. Addresses are
// allocated monotonically, so numeric comparison against the region
// boundaries (begin, head, read-only, tail) classifies where a record lives.
// Address 0 is invalid: the first 64 bytes of the log are never allocated.
type Address uint64

// InvalidAddress is the null log pointer (hash-chain terminator).
const InvalidAddress Address = 0

// AddressBits is the width of an Address; the hash index and record headers
// store addresses in 48-bit fields.
const AddressBits = 48

// AddressMask extracts an Address from a packed word.
const AddressMask = (uint64(1) << AddressBits) - 1

// MinAddress is the first allocatable address (start-of-log pad).
const MinAddress Address = 64

// Page returns the page number containing a for the given page-size bits.
func (a Address) Page(pageBits uint) uint64 { return uint64(a) >> pageBits }

// Offset returns a's byte offset within its page.
func (a Address) Offset(pageBits uint) uint64 {
	return uint64(a) & ((1 << pageBits) - 1)
}
