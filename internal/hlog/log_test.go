package hlog

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/epoch"
	"repro/internal/storage"
)

// testLog builds a small log: 4 KiB pages, 8 frames, 4 mutable.
func testLog(t *testing.T) (*Log, *epoch.Manager, *storage.MemDevice) {
	t.Helper()
	em := epoch.NewManager()
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	l, err := New(Config{
		PageBits: 12, MemPages: 8, MutablePages: 4,
		Device: dev, Epoch: em, LogID: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close(); dev.Close() })
	return l, em, dev
}

func TestConfigValidation(t *testing.T) {
	em := epoch.NewManager()
	dev := storage.NewMemDevice(storage.LatencyModel{}, 1)
	defer dev.Close()
	bad := []Config{
		{PageBits: 5, MemPages: 8, MutablePages: 4, Device: dev, Epoch: em},
		{PageBits: 12, MemPages: 7, MutablePages: 4, Device: dev, Epoch: em},
		{PageBits: 12, MemPages: 8, MutablePages: 8, Device: dev, Epoch: em},
		{PageBits: 12, MemPages: 8, MutablePages: 0, Device: dev, Epoch: em},
		{PageBits: 12, MemPages: 8, MutablePages: 4, Epoch: em},
		{PageBits: 12, MemPages: 8, MutablePages: 4, Device: dev},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestAllocateWriteRead(t *testing.T) {
	l, em, _ := testLog(t)
	g := em.Register()
	defer g.Unregister()

	key, val := []byte("key-1"), []byte("value-1")
	sz := RecordSize(len(key), len(val))
	addr, buf, err := l.Allocate(g, sz)
	if err != nil {
		t.Fatal(err)
	}
	if addr < MinAddress {
		t.Fatalf("address %#x below MinAddress", addr)
	}
	WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false), key, val)

	r := l.RecordAt(addr)
	if !bytes.Equal(r.Key(), key) || !bytes.Equal(r.Value(), val) {
		t.Fatal("record round trip failed")
	}
}

func TestAllocateRejectsBadSizes(t *testing.T) {
	l, em, _ := testLog(t)
	g := em.Register()
	defer g.Unregister()
	if _, _, err := l.Allocate(g, 0); err == nil {
		t.Fatal("zero-size allocation must fail")
	}
	if _, _, err := l.Allocate(g, l.PageSize()+1); err == nil {
		t.Fatal("over-page allocation must fail")
	}
}

func TestAddressesMonotonic(t *testing.T) {
	l, em, _ := testLog(t)
	g := em.Register()
	defer g.Unregister()
	prev := Address(0)
	for i := 0; i < 100; i++ {
		addr, _, err := l.Allocate(g, 32)
		if err != nil {
			t.Fatal(err)
		}
		if addr <= prev {
			t.Fatalf("allocation %d: address %#x not above %#x", i, addr, prev)
		}
		prev = addr
	}
}

func TestPageRollAndRegions(t *testing.T) {
	l, em, _ := testLog(t)
	g := em.Register()
	defer g.Unregister()

	// Fill several pages to force rolls and region shifts.
	recSz := RecordSize(8, 64) // 88 bytes
	perPage := l.PageSize() / recSz
	for i := 0; i < perPage*6; i++ {
		_, buf, err := l.Allocate(g, recSz)
		if err != nil {
			t.Fatal(err)
		}
		WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false),
			[]byte(fmt.Sprintf("k%06d", i)), make([]byte, 64))
		g.Refresh()
	}
	rolls, _, _, _ := l.Stats()
	if rolls < 5 {
		t.Fatalf("expected >=5 page rolls, got %d", rolls)
	}
	// Mutable capacity is 4 pages; after writing 6 pages the read-only
	// boundary must have moved.
	if l.ReadOnlyAddress() == 0 {
		t.Fatal("read-only boundary never moved")
	}
	if l.TailAddress() <= l.ReadOnlyAddress() {
		t.Fatal("tail must lead read-only boundary")
	}
}

func TestEvictionAndFlushOnWrap(t *testing.T) {
	l, em, dev := testLog(t)
	g := em.Register()
	defer g.Unregister()

	// Write more than the 8-page in-memory budget (32 KiB): 16 pages.
	recSz := RecordSize(8, 56) // 80 bytes
	perPage := l.PageSize() / recSz
	for i := 0; i < perPage*16; i++ {
		_, buf, err := l.Allocate(g, recSz)
		if err != nil {
			t.Fatal(err)
		}
		WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false),
			[]byte(fmt.Sprintf("k%06d", i)), make([]byte, 56))
		g.Refresh()
	}
	// Wrapping required flushing and evicting at least 8 pages.
	if l.FlushedUntilAddress() == 0 {
		t.Fatal("nothing was flushed")
	}
	if l.SafeHeadAddress() == 0 {
		t.Fatal("nothing was evicted")
	}
	if l.HeadAddress() > l.TailAddress() {
		t.Fatal("head beyond tail")
	}
	if dev.Stats().Writes == 0 {
		t.Fatal("device saw no writes")
	}
	// Region ordering invariant.
	if !(l.SafeHeadAddress() <= l.HeadAddress() &&
		uint64(l.HeadAddress()) <= l.readOnly.Load() &&
		l.ReadOnlyAddress() <= l.TailAddress()) {
		t.Fatalf("region ordering violated: safeHead=%#x head=%#x ro=%#x tail=%#x",
			l.SafeHeadAddress(), l.HeadAddress(), l.ReadOnlyAddress(), l.TailAddress())
	}
}

func TestReadRecordFromDevice(t *testing.T) {
	l, em, _ := testLog(t)
	g := em.Register()
	defer g.Unregister()

	type placed struct {
		addr Address
		key  string
	}
	var all []placed
	recSz := RecordSize(8, 56)
	perPage := l.PageSize() / recSz
	for i := 0; i < perPage*16; i++ {
		addr, buf, err := l.Allocate(g, recSz)
		if err != nil {
			t.Fatal(err)
		}
		k := fmt.Sprintf("k%06d", i)
		WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false),
			[]byte(k), bytes.Repeat([]byte{byte(i)}, 56))
		all = append(all, placed{addr, k})
		g.Refresh()
	}
	// Read a record that has been flushed to the device.
	flushed := l.FlushedUntilAddress()
	var target placed
	for _, p := range all {
		if p.addr+Address(recSz) <= flushed {
			target = p
		}
	}
	if target.key == "" {
		t.Fatal("no record below flushed boundary")
	}
	r, err := l.ReadRecordFromDevice(target.addr, recSz)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Key()) != target.key {
		t.Fatalf("device read key %q, want %q", r.Key(), target.key)
	}
}

func TestSharedTierMirroring(t *testing.T) {
	em := epoch.NewManager()
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()
	tier := storage.NewSharedTier(storage.LatencyModel{})
	defer tier.Close()
	l, err := New(Config{
		PageBits: 12, MemPages: 8, MutablePages: 4,
		Device: dev, Epoch: em, Tier: tier, LogID: "srv-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := em.Register()
	defer g.Unregister()

	recSz := RecordSize(8, 56)
	perPage := l.PageSize() / recSz
	var firstAddr Address
	for i := 0; i < perPage*16; i++ {
		addr, buf, err := l.Allocate(g, recSz)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstAddr = addr
		}
		WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false),
			[]byte(fmt.Sprintf("k%06d", i)), make([]byte, 56))
		g.Refresh()
	}
	// Wait for mirroring of the flushed prefix.
	deadline := time.Now().Add(2 * time.Second)
	for tier.UploadedBytes("srv-1") == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tier.UploadedBytes("srv-1") == 0 {
		t.Fatal("tier never received pages")
	}
	// A flushed record is readable from the tier by log id — the
	// indirection-record resolution path.
	r, err := ReadRecordFromTier(tier, "srv-1", 12, firstAddr, recSz)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Key()) != "k000000" {
		t.Fatalf("tier read key %q", r.Key())
	}
}

func TestScanMemory(t *testing.T) {
	l, em, _ := testLog(t)
	g := em.Register()
	defer g.Unregister()

	var want []string
	start := l.TailAddress()
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%03d", i)
		sz := RecordSize(len(k), 8)
		_, buf, err := l.Allocate(g, sz)
		if err != nil {
			t.Fatal(err)
		}
		WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false), []byte(k), make([]byte, 8))
		want = append(want, k)
	}
	var got []string
	l.ScanMemory(start, l.TailAddress(), func(addr Address, r Record) bool {
		got = append(got, string(r.Key()))
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan found %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestScanMemorySkipsPadding(t *testing.T) {
	l, em, _ := testLog(t)
	g := em.Register()
	defer g.Unregister()

	start := l.TailAddress()
	// A large record that forces padding at the end of page 0.
	big := l.PageSize() / 2
	for i := 0; i < 3; i++ {
		sz := RecordSize(8, big)
		if sz > l.PageSize() {
			t.Fatal("test record too large")
		}
		_, buf, err := l.Allocate(g, sz)
		if err != nil {
			t.Fatal(err)
		}
		WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false),
			[]byte(fmt.Sprintf("big-%03d", i)), make([]byte, big))
		g.Refresh()
	}
	count := 0
	l.ScanMemory(start, l.TailAddress(), func(addr Address, r Record) bool {
		count++
		return true
	})
	if count != 3 {
		t.Fatalf("scan found %d records across padded pages, want 3", count)
	}
}

func TestScanPageBuffer(t *testing.T) {
	l, em, _ := testLog(t)
	g := em.Register()
	defer g.Unregister()

	recSz := RecordSize(8, 56)
	perPage := l.PageSize() / recSz
	total := perPage * 16
	for i := 0; i < total; i++ {
		_, buf, err := l.Allocate(g, recSz)
		if err != nil {
			t.Fatal(err)
		}
		WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false),
			[]byte(fmt.Sprintf("k%06d", i)), make([]byte, 56))
		g.Refresh()
	}
	if l.FlushedUntilAddress() < Address(l.PageSize()) {
		t.Fatal("first page not flushed")
	}
	buf := l.NewPageBuffer()
	if err := l.ReadPageFromDevice(0, buf); err != nil {
		t.Fatal(err)
	}
	var keys []string
	ScanPageBuffer(0, buf, func(addr Address, r Record) bool {
		keys = append(keys, string(r.Key()))
		return true
	})
	// Page 0 starts at MinAddress (64), so it holds one record fewer than a
	// full page would.
	wantRecs := (l.PageSize() - int(MinAddress)) / recSz
	if len(keys) != wantRecs {
		t.Fatalf("page scan found %d records, want %d", len(keys), wantRecs)
	}
	if keys[0] != "k000000" {
		t.Fatalf("first key %q", keys[0])
	}
}

func TestConcurrentAllocators(t *testing.T) {
	l, em, _ := testLog(t)
	const threads = 4
	const perThread = 400

	var wg sync.WaitGroup
	addrs := make([][]Address, threads)
	for tdx := 0; tdx < threads; tdx++ {
		wg.Add(1)
		go func(tdx int) {
			defer wg.Done()
			g := em.Register()
			defer g.Unregister()
			for i := 0; i < perThread; i++ {
				k := fmt.Sprintf("t%d-%05d", tdx, i)
				sz := RecordSize(len(k), 8)
				addr, buf, err := l.Allocate(g, sz)
				if err != nil {
					t.Error(err)
					return
				}
				WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false),
					[]byte(k), make([]byte, 8))
				addrs[tdx] = append(addrs[tdx], addr)
				if i%16 == 0 {
					g.Refresh()
				}
			}
		}(tdx)
	}
	wg.Wait()

	// All addresses must be unique.
	seen := make(map[Address]bool)
	for _, list := range addrs {
		for _, a := range list {
			if seen[a] {
				t.Fatalf("duplicate address %#x", a)
			}
			seen[a] = true
		}
	}

	// Records still in memory must read back correctly.
	g := em.Register()
	defer g.Unregister()
	head := l.HeadAddress()
	verified := 0
	for tdx, list := range addrs {
		for i, a := range list {
			if a < head {
				continue
			}
			r := l.RecordAt(a)
			want := fmt.Sprintf("t%d-%05d", tdx, i)
			if string(r.Key()) != want {
				t.Fatalf("record at %#x: key %q, want %q", a, r.Key(), want)
			}
			verified++
		}
	}
	if verified == 0 {
		t.Fatal("no records verified")
	}
}

func TestFlushUntil(t *testing.T) {
	l, em, dev := testLog(t)
	g := em.Register()

	recSz := RecordSize(8, 56)
	for i := 0; i < 3*l.PageSize()/recSz; i++ {
		_, buf, err := l.Allocate(g, recSz)
		if err != nil {
			t.Fatal(err)
		}
		WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false),
			[]byte(fmt.Sprintf("k%06d", i)), make([]byte, 56))
	}
	tail := l.TailAddress()
	g.Unregister() // FlushUntil requires no epoch protection on this thread
	l.FlushUntil(tail)
	wantPages := uint64(tail) >> 12
	if got := uint64(l.FlushedUntilAddress()) >> 12; got < wantPages {
		t.Fatalf("flushed %d pages, want >= %d", got, wantPages)
	}
	if dev.Stats().Writes < wantPages {
		t.Fatalf("device writes %d < %d", dev.Stats().Writes, wantPages)
	}
}

func TestRestoreMarkersAndFrames(t *testing.T) {
	l, em, _ := testLog(t)
	g := em.Register()

	recSz := RecordSize(8, 56)
	var page0Addr Address
	var page0Key string
	for i := 0; i < l.PageSize()/recSz; i++ {
		addr, buf, err := l.Allocate(g, recSz)
		if err != nil {
			t.Fatal(err)
		}
		k := fmt.Sprintf("k%06d", i)
		WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false),
			[]byte(k), make([]byte, 56))
		if addr.Page(12) == 0 {
			page0Addr, page0Key = addr, k
		}
	}
	g.Unregister()

	// Snapshot page 0, build a second log, restore into it.
	snap := l.NewPageBuffer()
	if !l.FrameSnapshot(0, snap) {
		t.Fatal("page 0 not resident")
	}
	em2 := epoch.NewManager()
	dev2 := storage.NewMemDevice(storage.LatencyModel{}, 2)
	defer dev2.Close()
	l2, err := New(Config{PageBits: 12, MemPages: 8, MutablePages: 4,
		Device: dev2, Epoch: em2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	l2.RestoreFrame(0, snap)
	l2.RestoreMarkers(l.TailAddress(), l.ReadOnlyAddress(), 0, 0)

	r := l2.RecordAt(page0Addr)
	if string(r.Key()) != page0Key {
		t.Fatalf("restored record key %q, want %q", r.Key(), page0Key)
	}
	if l2.TailAddress() != l.TailAddress() {
		t.Fatal("markers not restored")
	}
}

func BenchmarkAllocateWrite(b *testing.B) {
	em := epoch.NewManager()
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()
	l, err := New(Config{PageBits: 20, MemPages: 16, MutablePages: 8,
		Device: dev, Epoch: em})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	g := em.Register()
	defer g.Unregister()
	key := []byte("bench-key")
	val := make([]byte, 64)
	sz := RecordSize(len(key), len(val))
	b.SetBytes(int64(sz))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, buf, err := l.Allocate(g, sz)
		if err != nil {
			b.Fatal(err)
		}
		WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false), key, val)
		if i%64 == 0 {
			g.Refresh()
		}
	}
}

// TestLongRecordDeviceReadReusesPrefix pins the two-read path for records
// longer than the hint: the second read must fetch only the missing suffix,
// not the whole record again.
func TestLongRecordDeviceReadReusesPrefix(t *testing.T) {
	l, em, dev := testLog(t)
	g := em.Register()
	defer g.Unregister()

	key := []byte("long-rec")
	val := bytes.Repeat([]byte{0xAB}, 1500)
	sz := RecordSize(len(key), len(val))
	addr, buf, err := l.Allocate(g, sz)
	if err != nil {
		t.Fatal(err)
	}
	WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false), key, val)

	fillSz := RecordSize(8, 56)
	for i := 0; l.FlushedUntilAddress() < addr+Address(sz); i++ {
		if i > 20_000 {
			t.Fatal("record never flushed")
		}
		_, fb, err := l.Allocate(g, fillSz)
		if err != nil {
			t.Fatal(err)
		}
		WriteRecord(fb, NewMeta(InvalidAddress, 0, false, false),
			[]byte(fmt.Sprintf("f%07d", i)), make([]byte, 56))
		g.Refresh()
	}

	const hint = 64
	before := dev.Stats().ReadBytes
	r, err := l.ReadRecordFromDevice(addr, hint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Key(), key) || !bytes.Equal(r.Value(), val) {
		t.Fatal("long record round trip failed")
	}
	// hint bytes + the suffix == exactly sz; re-reading the whole record
	// after the hint (the old behavior) would cost hint + sz.
	if delta := dev.Stats().ReadBytes - before; delta != uint64(sz) {
		t.Fatalf("device read %d bytes for a %d-byte record (prefix not reused)",
			delta, sz)
	}
}

// TestPlanRecordRead pins the span geometry: read-behind clamped to the page
// start and the floor, read-ahead clamped to the page end.
func TestPlanRecordRead(t *testing.T) {
	const pageBits = 12
	cases := []struct {
		addr         Address
		hint, behind int
		floor        Address
		off          uint64
		n, recOff    int
	}{
		// Mid-page: behind and hint both fit.
		{addr: 8192 + 2048, hint: 256, behind: 512, floor: 0,
			off: 8192 + 1536, n: 512 + 256, recOff: 512},
		// Behind clamped to the page start (records never span pages).
		{addr: 8192 + 100, hint: 256, behind: 512, floor: 0,
			off: 8192, n: 100 + 256, recOff: 100},
		// Behind clamped to the floor (log truncation point).
		{addr: 8192 + 300, hint: 256, behind: 512, floor: 8192 + 200,
			off: 8192 + 200, n: 100 + 256, recOff: 100},
		// Hint clamped to the page end.
		{addr: 2*4096 - 64, hint: 256, behind: 0, floor: 0,
			off: 2*4096 - 64, n: 64, recOff: 0},
		// Tiny hint raised to the header minimum (32).
		{addr: 8192, hint: 1, behind: 0, floor: 0,
			off: 8192, n: HeaderBytes + 16, recOff: 0},
	}
	for i, c := range cases {
		off, n, recOff := PlanRecordRead(c.addr, c.hint, c.behind, pageBits, c.floor)
		if off != c.off || n != c.n || recOff != c.recOff {
			t.Errorf("case %d: got (%d,%d,%d), want (%d,%d,%d)",
				i, off, n, recOff, c.off, c.n, c.recOff)
		}
	}
}
