package hlog

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestMetaPacking(t *testing.T) {
	m := NewMeta(Address(0xDEADBEEF), 1234, false, false)
	if m.Previous() != Address(0xDEADBEEF) {
		t.Fatalf("prev = %#x", m.Previous())
	}
	if m.Version() != 1234 {
		t.Fatalf("version = %d", m.Version())
	}
	if m.Indirection() || m.Tombstone() || m.Sealed() {
		t.Fatal("flags should be clear")
	}

	m = NewMeta(InvalidAddress, 0, true, true)
	if !m.Indirection() || !m.Tombstone() {
		t.Fatal("flags should be set")
	}
}

func TestMetaPackingQuick(t *testing.T) {
	f := func(prev uint64, version uint16, ind, tomb bool) bool {
		p := Address(prev & AddressMask)
		v := uint32(version) & uint32(VersionMask)
		m := NewMeta(p, v, ind, tomb)
		return m.Previous() == p && m.Version() == v &&
			m.Indirection() == ind && m.Tombstone() == tomb && !m.Sealed()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordSizeAligned(t *testing.T) {
	cases := []struct{ k, v, want int }{
		{0, 0, 16},
		{1, 1, 32},
		{8, 8, 32},
		{9, 8, 40},
		{8, 256, 280},
	}
	for _, c := range cases {
		if got := RecordSize(c.k, c.v); got != c.want {
			t.Errorf("RecordSize(%d,%d) = %d, want %d", c.k, c.v, got, c.want)
		}
		if RecordSize(c.k, c.v)%8 != 0 {
			t.Errorf("RecordSize(%d,%d) not 8-aligned", c.k, c.v)
		}
	}
}

func TestWriteReadRecord(t *testing.T) {
	key := []byte("sensor-42")
	val := []byte("some value bytes")
	buf := alignedBuf(RecordSize(len(key), len(val)))
	meta := NewMeta(Address(777), 3, false, false)
	r := WriteRecord(buf, meta, key, val)

	if r.Meta() != meta {
		t.Fatalf("meta = %#x, want %#x", r.Meta(), meta)
	}
	if !bytes.Equal(r.Key(), key) {
		t.Fatalf("key = %q", r.Key())
	}
	if !bytes.Equal(r.Value(), val) {
		t.Fatalf("value = %q", r.Value())
	}
	if r.Size() != RecordSize(len(key), len(val)) {
		t.Fatalf("size = %d", r.Size())
	}
	if r.LenWordZero() {
		t.Fatal("written record must not look like padding")
	}
}

func TestRecordAtomicValueWord(t *testing.T) {
	key := []byte("counter")
	val := make([]byte, 8)
	buf := alignedBuf(RecordSize(len(key), len(val)))
	r := WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false), key, val)

	r.StoreValueWord(41)
	if got := r.AddValueWord(1); got != 42 {
		t.Fatalf("AddValueWord = %d", got)
	}
	if r.LoadValueWord() != 42 {
		t.Fatalf("LoadValueWord = %d", r.LoadValueWord())
	}
}

func TestRecordSealUnseal(t *testing.T) {
	buf := alignedBuf(RecordSize(1, 8))
	r := WriteRecord(buf, NewMeta(Address(5), 1, false, false), []byte("k"), make([]byte, 8))
	pre := r.Seal()
	if !r.Meta().Sealed() {
		t.Fatal("record should be sealed")
	}
	if pre.Sealed() {
		t.Fatal("pre-seal meta should be unsealed")
	}
	r.Unseal(pre)
	m := r.Meta()
	if m.Sealed() {
		t.Fatal("record should be unsealed")
	}
	if m.Previous() != Address(5) || m.Version() != 1 {
		t.Fatal("unseal corrupted meta fields")
	}
	// Write stamp must have toggled so optimistic readers retry.
	if m == pre {
		t.Fatal("write stamp did not toggle")
	}
}

func TestReadValueStableUnderWriters(t *testing.T) {
	const vlen = 64
	buf := alignedBuf(RecordSize(8, vlen))
	r := WriteRecord(buf, NewMeta(InvalidAddress, 0, false, false),
		[]byte("thekey12"), bytes.Repeat([]byte{0}, vlen))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		x := byte(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			x++
			pre := r.Seal()
			r.StoreValueBytes(bytes.Repeat([]byte{x}, vlen))
			r.Unseal(pre)
		}
	}()

	var dst []byte
	for i := 0; i < 5000; i++ {
		dst = r.ReadValueStable(dst)
		first := dst[0]
		for j, b := range dst {
			if b != first {
				t.Fatalf("torn read at iteration %d, byte %d: %d != %d",
					i, j, b, first)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestIndirectionRoundTrip(t *testing.T) {
	p := IndirectionPayload{
		NextAddress: Address(1 << 30),
		LogID:       "server-A",
		RangeStart:  100,
		RangeEnd:    200,
		HashBucket:  77,
	}
	got, ok := DecodeIndirection(EncodeIndirection(p))
	if !ok {
		t.Fatal("decode failed")
	}
	if got != p {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestIndirectionDecodeShort(t *testing.T) {
	if _, ok := DecodeIndirection([]byte("short")); ok {
		t.Fatal("short buffer must not decode")
	}
	// Truncated log id.
	enc := EncodeIndirection(IndirectionPayload{LogID: "abcdef"})
	if _, ok := DecodeIndirection(enc[:len(enc)-2]); ok {
		t.Fatal("truncated log id must not decode")
	}
}

func TestIndirectionQuick(t *testing.T) {
	f := func(next uint64, rs, re, hb uint64, id string) bool {
		if len(id) > 1<<15 {
			id = id[:1<<15]
		}
		p := IndirectionPayload{
			NextAddress: Address(next & AddressMask),
			LogID:       id,
			RangeStart:  rs, RangeEnd: re, HashBucket: hb,
		}
		got, ok := DecodeIndirection(EncodeIndirection(p))
		return ok && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
