package hlog

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/epoch"
	"repro/internal/storage"
)

// Config describes a HybridLog instance.
type Config struct {
	// PageBits is log2 of the page size in bytes (records never span pages).
	PageBits uint
	// MemPages is the number of in-memory page frames (power of two).
	MemPages int
	// MutablePages is the number of trailing in-memory pages whose records
	// may be updated in place; the remaining MemPages-MutablePages frames
	// form the read-only (second-chance cache) region. Must leave at least
	// one page of slack: MutablePages <= MemPages-1.
	MutablePages int
	// Device is the local SSD holding the stable region.
	Device storage.Device
	// Tier, if non-nil, receives a copy of every flushed page; this is the
	// shared remote tier that decouples migration from local SSD I/O.
	Tier *storage.SharedTier
	// LogID names this log in the shared tier.
	LogID string
	// Epoch coordinates region shifts; required.
	Epoch *epoch.Manager
}

// DefaultConfig returns a small configuration suitable for tests and
// examples: 64 KiB pages, 64 frames (4 MiB of memory), half mutable.
func DefaultConfig(dev storage.Device, em *epoch.Manager) Config {
	return Config{
		PageBits:     16,
		MemPages:     64,
		MutablePages: 32,
		Device:       dev,
		Epoch:        em,
	}
}

func (c *Config) validate() error {
	if c.PageBits < 10 || c.PageBits > 30 {
		return fmt.Errorf("hlog: PageBits %d out of range [10,30]", c.PageBits)
	}
	if c.MemPages < 2 || c.MemPages&(c.MemPages-1) != 0 {
		return fmt.Errorf("hlog: MemPages %d must be a power of two >= 2", c.MemPages)
	}
	if c.MutablePages < 1 || c.MutablePages > c.MemPages-1 {
		return fmt.Errorf("hlog: MutablePages %d must be in [1, MemPages-1]", c.MutablePages)
	}
	if c.Device == nil {
		return errors.New("hlog: Device required")
	}
	if c.Epoch == nil {
		return errors.New("hlog: Epoch manager required")
	}
	return nil
}

// Log is a HybridLog allocator. All methods are safe for concurrent use by
// epoch-registered threads.
type Log struct {
	cfg        Config
	pageSize   uint64
	pageMask   uint64
	frameMask  uint64
	memCap     uint64 // MemPages << PageBits
	mutableCap uint64 // MutablePages << PageBits

	// Region markers; all are byte addresses and only grow. Cache-line
	// padding keeps the allocation-CASed tail and the flusher-advanced
	// flushedUntil off the lines holding the read-mostly markers that every
	// chain walk loads — otherwise each allocation invalidates every
	// dispatcher's cached copy of head/readOnly/begin (false sharing).
	tail         atomic.Uint64 // next allocation point (CASed per alloc: hot write)
	_            cachePad
	readOnly     atomic.Uint64 // below this: no in-place updates (intent)
	safeReadOnly atomic.Uint64 // below this: flushable (all threads observed)
	head         atomic.Uint64 // below this: may not be in memory (intent)
	evictAllowed atomic.Uint64 // head cut completed up to here
	safeHead     atomic.Uint64 // below this: frames may be reused
	begin        atomic.Uint64 // log truncation point (compaction)
	_            cachePad
	flushedUntil atomic.Uint64 // device has everything below (flusher-written)
	_            cachePad

	frames   [][]byte // frame i backs pages p where p & frameMask == i
	frameFor []atomic.Uint64

	// preparedPage is the highest page whose frame has been zeroed and
	// published; the allocation fast path may only place records in pages
	// <= preparedPage. This matters when an allocation exactly fills a page:
	// the tail then sits on the next page boundary and the fast path must
	// not silently enter an unprepared page.
	preparedPage atomic.Uint64

	rollMu sync.Mutex // serializes page transitions (cold: once per page)

	flushTarget atomic.Uint64
	flushKick   chan struct{} // capacity 1, coalescing; never closed
	flushQuit   chan struct{}
	flushDone   sync.WaitGroup
	closed      atomic.Bool

	// onFlushed, if set, runs after flushedUntil advances (checkpoint hook).
	onFlushed atomic.Value // func(Address)

	stats LogStats
}

// cachePad separates hot atomics onto their own cache lines so updates from
// different cores do not false-share.
type cachePad [56]byte

// LogStats counts allocator events. PageRolls/RollStalls are bumped by
// allocating dispatchers, PagesFlushed/PagesEvicted by the flusher
// goroutine; the pad keeps the two writer groups off one line.
type LogStats struct {
	PageRolls    atomic.Uint64
	RollStalls   atomic.Uint64
	_            cachePad
	PagesFlushed atomic.Uint64
	PagesEvicted atomic.Uint64
}

// New creates a HybridLog.
func New(cfg Config) (*Log, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l := &Log{
		cfg:       cfg,
		pageSize:  1 << cfg.PageBits,
		pageMask:  (1 << cfg.PageBits) - 1,
		frameMask: uint64(cfg.MemPages - 1),
		flushKick: make(chan struct{}, 1),
		flushQuit: make(chan struct{}),
	}
	l.memCap = uint64(cfg.MemPages) << cfg.PageBits
	l.mutableCap = uint64(cfg.MutablePages) << cfg.PageBits
	l.frames = make([][]byte, cfg.MemPages)
	l.frameFor = make([]atomic.Uint64, cfg.MemPages)
	for i := range l.frames {
		// Allocate as []uint64 to guarantee 8-byte alignment for the
		// atomic word operations on record headers and values.
		words := make([]uint64, l.pageSize/8)
		l.frames[i] = unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), l.pageSize)
		l.frameFor[i].Store(uint64(i)) // identity: frame i holds page i
	}
	l.tail.Store(uint64(MinAddress))
	l.flushDone.Add(1)
	go l.flusher()
	return l, nil
}

// Close stops the background flusher. It does not flush remaining memory;
// call a checkpoint first if durability is needed.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	close(l.flushQuit)
	l.flushDone.Wait()
	return nil
}

// Accessors for the region markers.

// TailAddress returns the next allocation address.
func (l *Log) TailAddress() Address { return Address(l.tail.Load()) }

// ReadOnlyAddress returns the mutable-region boundary: records at addresses
// >= this may be updated in place.
func (l *Log) ReadOnlyAddress() Address { return Address(l.readOnly.Load()) }

// SafeReadOnlyAddress returns the flush boundary every thread has observed.
func (l *Log) SafeReadOnlyAddress() Address { return Address(l.safeReadOnly.Load()) }

// HeadAddress returns the in-memory boundary: records at addresses >= this
// are guaranteed resident in a page frame.
func (l *Log) HeadAddress() Address { return Address(l.head.Load()) }

// SafeHeadAddress returns the eviction boundary: frames holding pages wholly
// below this address may be recycled.
func (l *Log) SafeHeadAddress() Address { return Address(l.safeHead.Load()) }

// FlushedUntilAddress returns the durable prefix boundary.
func (l *Log) FlushedUntilAddress() Address { return Address(l.flushedUntil.Load()) }

// BeginAddress returns the truncation point (records below it were
// compacted away locally; the shared tier may still hold them).
func (l *Log) BeginAddress() Address {
	b := l.begin.Load()
	if b < uint64(MinAddress) {
		return MinAddress
	}
	return Address(b)
}

// PageSize returns the page size in bytes.
func (l *Log) PageSize() int { return int(l.pageSize) }

// LogID returns the shared-tier identity of this log.
func (l *Log) LogID() string { return l.cfg.LogID }

// Tier returns the shared tier (nil if unconfigured).
func (l *Log) Tier() *storage.SharedTier { return l.cfg.Tier }

// Stats returns a snapshot of allocator counters.
func (l *Log) Stats() (rolls, flushed, evicted, stalls uint64) {
	return l.stats.PageRolls.Load(), l.stats.PagesFlushed.Load(),
		l.stats.PagesEvicted.Load(), l.stats.RollStalls.Load()
}

// Allocate reserves size bytes (8-byte aligned, at most one page) and
// returns the record's address and its in-frame buffer. The caller must be
// epoch-protected via g and must fully write the record before its next
// epoch refresh. Allocation never blocks on I/O except when the in-memory
// budget is exhausted, in which case it spins (refreshing g) until eviction
// frees a frame.
func (l *Log) Allocate(g *epoch.Guard, size int) (Address, []byte, error) {
	if size <= 0 || uint64(size) > l.pageSize {
		return InvalidAddress, nil, fmt.Errorf("hlog: bad allocation size %d", size)
	}
	sz := uint64(pad8(size))
	for {
		pos := l.tail.Load()
		pageEnd := (pos | l.pageMask) + 1
		if pos+sz <= pageEnd && pos>>l.cfg.PageBits <= l.preparedPage.Load() {
			if l.tail.CompareAndSwap(pos, pos+sz) {
				return Address(pos), l.bytesAt(pos, int(sz)), nil
			}
			continue
		}
		// Page roll needed (either the record does not fit in the tail
		// page, or the tail sits at the boundary of an unprepared page).
		// Serialize transitions on a cold mutex while keeping the epoch
		// fresh so cuts (and hence eviction) progress.
		if !l.rollMu.TryLock() {
			g.Refresh()
			runtime.Gosched()
			continue
		}
		l.roll(g, sz)
		l.rollMu.Unlock()
		if l.closed.Load() {
			return InvalidAddress, nil, errors.New("hlog: closed")
		}
	}
}

// roll prepares the next page and advances the tail across the boundary if
// the pending allocation does not fit in the current page. Called with
// rollMu held.
func (l *Log) roll(g *epoch.Guard, sz uint64) {
	for {
		pos := l.tail.Load()
		pageEnd := (pos | l.pageMask) + 1
		fits := pos+sz <= pageEnd
		if fits && pos>>l.cfg.PageBits <= l.preparedPage.Load() {
			return // raced with another roller; fast path will succeed
		}
		newPage := pageEnd >> l.cfg.PageBits
		if fits {
			// Tail sits exactly at the start of an unprepared page.
			newPage = pos >> l.cfg.PageBits
		}
		newPageStart := newPage << l.cfg.PageBits
		// Wait for the new page's frame to be evictable/free.
		for !l.frameFree(newPage) {
			l.requestShifts(newPageStart)
			l.stats.RollStalls.Add(1)
			g.Refresh()
			runtime.Gosched()
			if l.closed.Load() {
				return
			}
		}
		// Zero the frame before the tail enters the page so sequential
		// scans can rely on zero length words as padding, then publish.
		frame := l.frames[newPage&l.frameMask]
		for i := range frame {
			frame[i] = 0
		}
		l.frameFor[newPage&l.frameMask].Store(newPage)
		casMax(&l.preparedPage, newPage)
		l.stats.PageRolls.Add(1)
		l.requestShifts(newPageStart)
		if fits {
			return
		}
		// Move the tail past the dead padding [pos, pageEnd). Concurrent
		// fast-path allocations within the old page may still race, so CAS
		// and re-evaluate on failure.
		if l.tail.CompareAndSwap(pos, pageEnd) {
			return
		}
	}
}

// frameFree reports whether page's frame slot can be (re)used.
func (l *Log) frameFree(page uint64) bool {
	holder := l.frameFor[page&l.frameMask].Load()
	if holder == page {
		return true // already prepared (or identity init for first lap)
	}
	if holder > page {
		return false // should not happen; be safe
	}
	// The frame holds an older page; reusable once that page is wholly
	// below the safe head.
	return (holder+1)<<l.cfg.PageBits <= l.safeHead.Load()
}

// requestShifts advances the head and read-only intents given that the tail
// is entering the page that starts at pageEnd, and schedules the matching
// global cuts.
func (l *Log) requestShifts(pageEnd uint64) {
	// After the roll, in-memory pages must fit in MemPages frames with the
	// new tail page's frame free, and the mutable region must cover at most
	// MutablePages trailing pages.
	newLimit := pageEnd + l.pageSize
	if newLimit > l.memCap {
		l.shiftHead(newLimit - l.memCap)
	}
	if newLimit > l.mutableCap {
		l.shiftReadOnly(newLimit - l.mutableCap)
	}
}

// shiftReadOnly raises the read-only intent to target and, once every thread
// has observed it (so no in-place writes can touch the frozen prefix),
// raises safeReadOnly and kicks the flusher.
func (l *Log) shiftReadOnly(target uint64) {
	if !casMax(&l.readOnly, target) {
		return
	}
	l.cfg.Epoch.BumpWithAction(func() {
		casMax(&l.safeReadOnly, target)
		casMax(&l.flushTarget, target)
		select {
		case l.flushKick <- struct{}{}:
		default:
		}
	})
}

// shiftHead raises the head intent to target and, once every thread has
// observed it (so no reader dereferences the evicted prefix), allows
// eviction up to min(target, flushedUntil).
func (l *Log) shiftHead(target uint64) {
	if !casMax(&l.head, target) {
		return
	}
	l.cfg.Epoch.BumpWithAction(func() {
		casMax(&l.evictAllowed, target)
		l.advanceSafeHead()
	})
}

// advanceSafeHead recomputes safeHead = min(evictAllowed, flushedUntil).
func (l *Log) advanceSafeHead() {
	for {
		ea := l.evictAllowed.Load()
		fu := l.flushedUntil.Load()
		limit := ea
		if fu < limit {
			limit = fu
		}
		cur := l.safeHead.Load()
		if limit <= cur {
			return
		}
		if l.safeHead.CompareAndSwap(cur, limit) {
			l.stats.PagesEvicted.Add((limit - cur) >> l.cfg.PageBits)
			return
		}
	}
}

// casMax atomically raises v to target; reports whether it raised it.
func casMax(v *atomic.Uint64, target uint64) bool {
	for {
		cur := v.Load()
		if target <= cur {
			return false
		}
		if v.CompareAndSwap(cur, target) {
			return true
		}
	}
}

// flusher writes closed pages to the device (and shared tier) in order.
func (l *Log) flusher() {
	defer l.flushDone.Done()
	scratch := alignedBuf(int(l.pageSize))
	for {
		select {
		case <-l.flushQuit:
			return
		case <-l.flushKick:
		}
		for {
			fu := l.flushedUntil.Load()
			target := l.flushTarget.Load()
			if fu >= target {
				break
			}
			page := fu >> l.cfg.PageBits
			// The frame still holds this page: eviction can't recycle it
			// until flushedUntil covers it, which happens only below. Copy
			// with atomic word loads: chain splices may still CAS meta
			// words of flushed-region records.
			atomicCopy(scratch, l.frames[page&l.frameMask])
			frame := scratch
			if err := storage.SyncWrite(l.cfg.Device, frame, page<<l.cfg.PageBits); err != nil {
				if l.closed.Load() {
					return
				}
				// Transient device failure: back off and retry.
				runtime.Gosched()
				continue
			}
			if l.cfg.Tier != nil {
				// Mirror to the shared tier so migration never needs
				// local SSD reads (§3.3.2).
				_ = l.cfg.Tier.Upload(l.cfg.LogID, frame, page<<l.cfg.PageBits)
			}
			l.stats.PagesFlushed.Add(1)
			l.flushedUntil.Store((page + 1) << l.cfg.PageBits)
			l.advanceSafeHead()
			if cb, ok := l.onFlushed.Load().(func(Address)); ok && cb != nil {
				cb(Address((page + 1) << l.cfg.PageBits))
			}
		}
	}
}

// SetFlushCallback installs fn to run after flushedUntil advances.
func (l *Log) SetFlushCallback(fn func(Address)) { l.onFlushed.Store(fn) }

// bytesAt returns the in-frame bytes for [addr, addr+n). The caller must
// hold epoch protection and addr must be >= SafeHeadAddress.
func (l *Log) bytesAt(pos uint64, n int) []byte {
	frame := l.frames[(pos>>l.cfg.PageBits)&l.frameMask]
	off := pos & l.pageMask
	return frame[off : off+uint64(n)]
}

// RecordAt returns a Record view over the in-memory record at addr. The
// caller must have verified addr >= HeadAddress while epoch-protected.
func (l *Log) RecordAt(addr Address) Record {
	pos := uint64(addr)
	frame := l.frames[(pos>>l.cfg.PageBits)&l.frameMask]
	off := pos & l.pageMask
	return Record(frame[off:])
}

// InMemory reports whether addr is at or above the head (resident).
func (l *Log) InMemory(addr Address) bool {
	return uint64(addr) >= l.head.Load()
}

// Mutable reports whether addr is in the in-place-update region.
func (l *Log) Mutable(addr Address) bool {
	return uint64(addr) >= l.readOnly.Load()
}

// ReadRecordFromDevice synchronously reads the record at addr from the local
// device into a fresh aligned buffer. hint sizes the first read; a second
// read completes long records. Used by the pending-I/O path.
func (l *Log) ReadRecordFromDevice(addr Address, hint int) (Record, error) {
	return readRecordFrom(func(p []byte, off uint64) error {
		return storage.SyncRead(l.cfg.Device, p, off)
	}, l.cfg.PageBits, addr, hint)
}

// ReadRecordFromTier reads the record at addr of logID from the shared tier.
func ReadRecordFromTier(tier *storage.SharedTier, logID string, pageBits uint, addr Address, hint int) (Record, error) {
	return readRecordFrom(func(p []byte, off uint64) error {
		return tier.Read(logID, p, off)
	}, pageBits, addr, hint)
}

func readRecordFrom(read func([]byte, uint64) error, pageBits uint, addr Address, hint int) (Record, error) {
	if hint < HeaderBytes+16 {
		hint = HeaderBytes + 16
	}
	pageEnd := ((uint64(addr) >> pageBits) + 1) << pageBits
	max := int(pageEnd - uint64(addr))
	if hint > max {
		hint = max
	}
	buf := alignedBuf(hint)
	if err := read(buf, uint64(addr)); err != nil {
		return nil, err
	}
	r := Record(buf)
	if r.LenWordZero() {
		return nil, fmt.Errorf("hlog: no record at %#x (padding)", addr)
	}
	need := r.Size()
	if need > max {
		return nil, fmt.Errorf("hlog: corrupt record at %#x: size %d exceeds page", addr, need)
	}
	if need <= len(buf) {
		return r[:need], nil
	}
	// Long record: the hint read holds a valid prefix — copy it and read only
	// the missing suffix instead of re-reading the whole record from scratch.
	full := alignedBuf(need)
	have := copy(full, buf)
	if err := read(full[have:], uint64(addr)+uint64(have)); err != nil {
		return nil, err
	}
	return Record(full), nil
}

// alignedBuf allocates an 8-byte-aligned byte slice of at least n bytes.
func alignedBuf(n int) []byte {
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}

// AlignedBuf allocates an 8-byte-aligned byte slice of n bytes. Buffers that
// receive records from the device must be word-aligned: Record's header
// accessors are atomic word loads.
func AlignedBuf(n int) []byte { return alignedBuf(n) }

// Device exposes the log's local block device to the pending-read pipeline.
func (l *Log) Device() storage.Device { return l.cfg.Device }

// PageBits exposes the log's page size exponent.
func (l *Log) PageBits() uint { return l.cfg.PageBits }

// PlanRecordRead computes the device span for one pipelined record read:
// hint bytes forward from addr, clamped to the record's page end, plus up to
// behind bytes of readahead before it, clamped to the page start and to
// floor (the log's begin address — bytes below it may be reclaimed). Chain
// predecessors live at lower addresses on earlier-or-equal pages, so
// read-behind is what lets a follow hop land inside the span. It returns the
// device offset to read from, the span length, and the record's offset
// within the span. Records never span pages, so the span never does either.
func PlanRecordRead(addr Address, hint, behind int, pageBits uint, floor Address) (off uint64, n, recOff int) {
	if hint < HeaderBytes+16 {
		hint = HeaderBytes + 16
	}
	pageStart := (uint64(addr) >> pageBits) << pageBits
	pageEnd := pageStart + (uint64(1) << pageBits)
	end := uint64(addr) + uint64(hint)
	if end > pageEnd {
		end = pageEnd
	}
	start := uint64(addr)
	if behind > 0 {
		if uint64(behind) > start-pageStart {
			start = pageStart
		} else {
			start -= uint64(behind)
		}
		if start < uint64(floor) {
			start = uint64(floor)
		}
	}
	return start, int(end - start), int(uint64(addr) - start)
}

// ParseSpanRecord parses the record at recOff inside a span buffer read from
// the device (buf[0] is device byte spanPos; the record starts at
// spanPos+recOff). When the span holds the whole record it is returned with
// need == 0. When the record is longer than the available bytes, need is its
// full size and rec is nil: the caller must issue a continuation read (the
// prefix already in buf is valid and reusable). A zero length word (padding)
// or a size crossing the page boundary is corruption and returns an error.
func ParseSpanRecord(buf []byte, recOff int, addr Address, pageBits uint) (rec Record, need int, err error) {
	r := Record(buf[recOff:])
	if r.LenWordZero() {
		return nil, 0, fmt.Errorf("hlog: no record at %#x (padding)", addr)
	}
	need = r.Size()
	pageEnd := ((uint64(addr) >> pageBits) + 1) << pageBits
	if uint64(need) > pageEnd-uint64(addr) {
		return nil, 0, fmt.Errorf("hlog: corrupt record at %#x: size %d exceeds page", addr, need)
	}
	if recOff+need <= len(buf) {
		return r[:need], 0, nil
	}
	return nil, need, nil
}

// LenWordZero reports whether the record's length word is zero (padding /
// end of page in a sequential scan).
func (r Record) LenWordZero() bool {
	return r.KeyLen() == 0 && r.ValueLen() == 0
}

// ScanMemory walks records in [from, to) that are resident in memory,
// calling fn for each. Scanning stops early at the first padding gap within
// a page (in-flight allocations) and resumes at the next page boundary. The
// caller must be epoch-protected and from must be >= SafeHeadAddress.
func (l *Log) ScanMemory(from, to Address, fn func(addr Address, r Record) bool) {
	pos := uint64(from)
	if pos < uint64(MinAddress) {
		pos = uint64(MinAddress)
	}
	end := uint64(to)
	for pos < end {
		pageEnd := (pos | l.pageMask) + 1
		limit := pageEnd
		if end < limit {
			limit = end
		}
		for pos+HeaderBytes <= limit {
			r := l.RecordAt(Address(pos))
			if r.LenWordZero() {
				break // padding: rest of page is dead
			}
			sz := r.Size()
			if pos+uint64(sz) > limit {
				break
			}
			if !fn(Address(pos), r[:sz]) {
				return
			}
			pos += uint64(sz)
		}
		pos = pageEnd
	}
}

// ReadPageFromDevice fills buf (one page, from NewPageBuffer) with page p
// from the local device. Used by the Rocksteady-style scan-the-log migration
// baseline and by compaction.
func (l *Log) ReadPageFromDevice(p uint64, buf []byte) error {
	return storage.SyncRead(l.cfg.Device, buf, p<<l.cfg.PageBits)
}

// NewPageBuffer allocates an 8-byte-aligned page-sized buffer suitable for
// ReadPageFromDevice and ScanPageBuffer.
func (l *Log) NewPageBuffer() []byte { return alignedBuf(int(l.pageSize)) }

// ScanPageBuffer walks the records serialized in a page buffer read from
// storage. base is the address of the buffer's first byte.
func ScanPageBuffer(base Address, buf []byte, fn func(addr Address, r Record) bool) {
	pos := 0
	if uint64(base)+uint64(pos) < uint64(MinAddress) {
		pos = int(uint64(MinAddress) - uint64(base))
	}
	for pos+HeaderBytes <= len(buf) {
		r := Record(buf[pos:])
		if r.LenWordZero() {
			break
		}
		sz := r.Size()
		if pos+sz > len(buf) {
			break
		}
		if !fn(base+Address(pos), r[:sz]) {
			return
		}
		pos += sz
	}
}

// TruncateUntil raises the begin address; compaction calls this after
// copying live records forward.
func (l *Log) TruncateUntil(addr Address) { casMax(&l.begin, uint64(addr)) }

// DiskResidentBytes returns the log's disk footprint span ([BeginAddress,
// FlushedUntil)) — a telemetry gauge. Note the compaction service's
// watermark deliberately triggers on the narrower scannable span
// [BeginAddress, SafeHead) instead (FlushedUntil can run ahead of SafeHead
// when checkpoints flush without evicting, and a pass can only scan below
// the safe head).
func (l *Log) DiskResidentBytes() uint64 {
	fu := l.flushedUntil.Load()
	b := uint64(l.BeginAddress())
	if fu <= b {
		return 0
	}
	return fu - b
}

// ReclaimUntil releases device and shared-tier storage below
// min(limit, BeginAddress): TruncateUntil only retires the address range;
// this is what actually gives disk back. The limit lets the caller hold
// space that recovery still needs (never below the latest committed
// checkpoint image's begin address). Returns the bytes freed from the local
// device and from the shared tier.
func (l *Log) ReclaimUntil(limit Address) (deviceFreed, tierFreed uint64, err error) {
	target := uint64(l.BeginAddress())
	if uint64(limit) < target {
		target = uint64(limit)
	}
	if target <= uint64(MinAddress) {
		return 0, 0, nil // nothing below the start-of-log pad to free
	}
	deviceFreed, err = storage.TruncateBefore(l.cfg.Device, target)
	if l.cfg.Tier != nil {
		tierFreed = l.cfg.Tier.Truncate(l.cfg.LogID, target)
	}
	return deviceFreed, tierFreed, err
}

// FlushUntil forces the read-only boundary up to at least addr's page start
// and waits until the device holds everything below it. Used by checkpoints.
// The caller must NOT hold epoch protection (the cut must complete).
func (l *Log) FlushUntil(addr Address) {
	target := uint64(addr) & ^l.pageMask
	tail := l.tail.Load()
	maxRO := tail & ^l.pageMask // can't freeze the open page
	if target > maxRO {
		target = maxRO
	}
	if target == 0 {
		return
	}
	l.shiftReadOnly(target)
	l.cfg.Epoch.DrainPending()
	for l.flushedUntil.Load() < target {
		if l.closed.Load() {
			return // shutdown race: a late checkpoint loses, harmlessly
		}
		l.cfg.Epoch.DrainPending()
		select {
		case l.flushKick <- struct{}{}:
		default:
		}
		runtime.Gosched()
	}
}

// FrameSnapshot copies the resident bytes of page p into dst (page-sized,
// 8-byte aligned, e.g. from NewPageBuffer). Returns false if the page is not
// resident. The copy uses 8-byte atomic loads because the open page may be
// receiving in-place updates concurrently (checkpoints are fuzzy at the
// tail by design); torn words would corrupt record headers.
func (l *Log) FrameSnapshot(p uint64, dst []byte) bool {
	if l.frameFor[p&l.frameMask].Load() != p {
		return false
	}
	atomicCopy(dst, l.frames[p&l.frameMask])
	return l.frameFor[p&l.frameMask].Load() == p
}

// atomicCopy copies src into dst with 8-byte atomic loads. Page frames are
// mutated with word-level atomics (in-place updates, chain splices), so any
// concurrent whole-page copy (flush, snapshot) must read words atomically.
func atomicCopy(dst, src []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i+8 <= n; i += 8 {
		w := atomic.LoadUint64((*uint64)(unsafe.Pointer(&src[i])))
		dst[i] = byte(w)
		dst[i+1] = byte(w >> 8)
		dst[i+2] = byte(w >> 16)
		dst[i+3] = byte(w >> 24)
		dst[i+4] = byte(w >> 32)
		dst[i+5] = byte(w >> 40)
		dst[i+6] = byte(w >> 48)
		dst[i+7] = byte(w >> 56)
	}
}

// RestoreFrame loads a page image into its frame during recovery. Only safe
// before concurrent operation begins.
func (l *Log) RestoreFrame(p uint64, src []byte) {
	copy(l.frames[p&l.frameMask], src)
	l.frameFor[p&l.frameMask].Store(p)
}

// RestoreMarkers resets the region markers during recovery. Only safe before
// concurrent operation begins.
func (l *Log) RestoreMarkers(tail, readOnly, head, flushed Address) {
	l.tail.Store(uint64(tail))
	l.readOnly.Store(uint64(readOnly))
	l.safeReadOnly.Store(uint64(readOnly))
	l.head.Store(uint64(head))
	l.evictAllowed.Store(uint64(head))
	l.safeHead.Store(uint64(head))
	l.flushedUntil.Store(uint64(flushed))
	l.flushTarget.Store(uint64(flushed))
	// The page containing tail-1 is the last one whose frame content is
	// meaningful (restored); allocation must roll (and zero) anything past
	// it but must NOT re-zero a restored open page.
	t := uint64(tail)
	if t > 0 {
		t--
	}
	l.preparedPage.Store(t >> l.cfg.PageBits)
}
