package ycsb

import (
	"math"
	"testing"
)

func TestUniformBounds(t *testing.T) {
	u := NewUniform(1000, 42)
	for i := 0; i < 100000; i++ {
		if k := u.Next(); k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestUniformSpread(t *testing.T) {
	const n = 100
	u := NewUniform(n, 7)
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[u.Next()]++
	}
	for k, c := range counts {
		if c < draws/n/2 || c > draws/n*2 {
			t.Fatalf("key %d drawn %d times (expected ~%d)", k, c, draws/n)
		}
	}
}

func TestZipfianBounds(t *testing.T) {
	z := NewZipfian(1000, DefaultTheta, 42)
	for i := 0; i < 100000; i++ {
		if k := z.Next(); k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	// Unscrambled: rank 0 must dominate; the top 10% of keys should take
	// the large majority of draws at theta=0.99.
	const n = 1000
	z := NewZipfianUnscrambled(n, DefaultTheta, 42)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[n/2]*10 {
		t.Fatalf("rank 0 (%d) not dominating rank %d (%d)", counts[0], n/2, counts[n/2])
	}
	top := 0
	for i := 0; i < n/10; i++ {
		top += counts[i]
	}
	if frac := float64(top) / draws; frac < 0.6 {
		t.Fatalf("top 10%% of keys got only %.2f of draws", frac)
	}
}

func TestZipfianFrequencyRatio(t *testing.T) {
	// For Zipf, P(rank 1)/P(rank 2) = 2^theta. Check loosely.
	const n = 10000
	z := NewZipfianUnscrambled(n, DefaultTheta, 9)
	counts := make(map[uint64]int)
	const draws = 500000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	want := math.Pow(2, DefaultTheta)
	if ratio < want*0.7 || ratio > want*1.4 {
		t.Fatalf("rank0/rank1 ratio %.2f, want ~%.2f", ratio, want)
	}
}

func TestZipfianScrambledSpreadsHotKeys(t *testing.T) {
	const n = 1000
	z := NewZipfian(n, DefaultTheta, 42)
	counts := make([]int, n)
	for i := 0; i < 200000; i++ {
		counts[z.Next()]++
	}
	// Hottest key should NOT be key 0 systematically... it may be by luck;
	// instead check hot keys are not all in the low range.
	hot := 0
	hotLow := 0
	for k, c := range counts {
		if c > 2000 {
			hot++
			if k < n/10 {
				hotLow++
			}
		}
	}
	if hot == 0 {
		t.Fatal("no hot keys under Zipfian")
	}
	if hot > 2 && hotLow == hot {
		t.Fatal("scrambling left all hot keys clustered at low indexes")
	}
}

func TestZipfianDeterministicPerSeed(t *testing.T) {
	a := NewZipfian(500, DefaultTheta, 1)
	b := NewZipfian(500, DefaultTheta, 1)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewZipfian(500, DefaultTheta, 2)
	same := 0
	d := NewZipfian(500, DefaultTheta, 1)
	for i := 0; i < 1000; i++ {
		if c.Next() == d.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatal("different seeds produced near-identical streams")
	}
}

func TestWorkloadMix(t *testing.T) {
	w := NewWorkload(NewUniform(100, 3), Mix{ReadPct: 50, UpsertPct: 30, RMWPct: 20}, 3)
	var reads, upserts, rmws int
	const draws = 100000
	for i := 0; i < draws; i++ {
		switch w.Next().Kind {
		case OpRead:
			reads++
		case OpUpsert:
			upserts++
		case OpRMW:
			rmws++
		}
	}
	if reads < draws*45/100 || reads > draws*55/100 {
		t.Fatalf("reads %d out of tolerance", reads)
	}
	if upserts < draws*25/100 || upserts > draws*35/100 {
		t.Fatalf("upserts %d out of tolerance", upserts)
	}
	if rmws < draws*15/100 || rmws > draws*25/100 {
		t.Fatalf("rmws %d out of tolerance", rmws)
	}
}

func TestWorkloadF100RMW(t *testing.T) {
	w := NewWorkload(NewUniform(100, 3), WorkloadF, 3)
	for i := 0; i < 1000; i++ {
		if op := w.Next(); op.Kind != OpRMW {
			t.Fatal("workload F emitted a non-RMW op")
		}
	}
}

func TestKeyValueHelpers(t *testing.T) {
	k := KeyBytes(0xDEAD)
	if len(k) != DefaultKeyBytes {
		t.Fatal("bad key size")
	}
	var buf [8]byte
	FillKey(buf[:], 0xDEAD)
	if string(buf[:]) != string(k) {
		t.Fatal("FillKey mismatch")
	}
	v := Value(42, DefaultValueBytes)
	if len(v) != DefaultValueBytes || v[0] != 42 {
		t.Fatal("bad value")
	}
	if len(Value(1, 2)) != 8 {
		t.Fatal("value must hold the 8-byte counter")
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(1<<20, DefaultTheta, 42)
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkUniformNext(b *testing.B) {
	u := NewUniform(1<<20, 42)
	for i := 0; i < b.N; i++ {
		u.Next()
	}
}
