// Package ycsb generates the workloads the paper evaluates with (§4.1):
// YCSB workload F (read-modify-write) over 8-byte keys and 256-byte values,
// with keys drawn from a Zipfian (θ=0.99, YCSB's default) or uniform
// distribution.
//
// The Zipfian generator is the standard Gray et al. "Quickly generating
// billion-record synthetic databases" algorithm, the same one YCSB uses, so
// skew matches the paper's workload.
package ycsb

import (
	"encoding/binary"
	"math"
)

// Default paper parameters (Table/§4.1): 250M records of 8B keys + 256B
// values; this reproduction scales record count down but keeps shapes.
const (
	// DefaultKeyBytes is the paper's 8-byte key size.
	DefaultKeyBytes = 8
	// DefaultValueBytes is the paper's 256-byte value size.
	DefaultValueBytes = 256
	// DefaultTheta is YCSB's default Zipfian skew.
	DefaultTheta = 0.99
)

// Generator yields key indexes in [0, N).
type Generator interface {
	Next() uint64
	N() uint64
}

// rng is a splitmix64 PRNG: tiny, fast, seedable, stdlib-only.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Uniform draws keys uniformly — the distribution Figure 9 uses (the only
// one Seastar's client harness supports).
type Uniform struct {
	n uint64
	r rng
}

// NewUniform returns a uniform generator over [0, n).
func NewUniform(n uint64, seed uint64) *Uniform {
	return &Uniform{n: n, r: rng{state: seed}}
}

// Next implements Generator.
func (u *Uniform) Next() uint64 { return u.r.next() % u.n }

// N implements Generator.
func (u *Uniform) N() uint64 { return u.n }

// Zipfian draws keys Zipf-distributed with parameter theta over [0, n),
// scattered (like YCSB's ScrambledZipfian) so the hot keys are spread across
// the key space rather than clustered at low indexes.
type Zipfian struct {
	n         uint64
	theta     float64
	alpha     float64
	zetan     float64
	eta       float64
	zeta2     float64
	r         rng
	scrambled bool
}

// NewZipfian returns a scrambled-Zipfian generator over [0, n) with the
// given skew (use DefaultTheta for YCSB's 0.99).
func NewZipfian(n uint64, theta float64, seed uint64) *Zipfian {
	z := &Zipfian{n: n, theta: theta, r: rng{state: seed}, scrambled: true}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// NewZipfianUnscrambled keeps rank order (key 0 hottest); used by tests that
// verify the frequency profile.
func NewZipfianUnscrambled(n uint64, theta float64, seed uint64) *Zipfian {
	z := NewZipfian(n, theta, seed)
	z.scrambled = false
	return z
}

// zetaStatic computes the Riemann zeta partial sum sum_{i=1..n} 1/i^theta.
// O(n); computed once per generator. For the scaled n used here this is
// instant; a production YCSB caches increments.
func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Generator using Gray et al.'s rejection-free inversion.
func (z *Zipfian) Next() uint64 {
	u := z.r.float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1.0:
		rank = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	if !z.scrambled {
		return rank
	}
	// FNV-style scatter (YCSB uses FNV64); splitmix's mixer spreads equally
	// well and is already here.
	x := rank
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x % z.n
}

// N implements Generator.
func (z *Zipfian) N() uint64 { return z.n }

// OpKind is a workload operation type.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpsert
	OpRMW
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64 // key index; format with KeyBytes
}

// Mix describes an operation mix; fields sum to 100.
type Mix struct {
	ReadPct, UpsertPct, RMWPct int
}

// WorkloadF is YCSB-F: 100% read-modify-write, the paper's headline ingest
// workload (sensor heartbeats, click counts).
var WorkloadF = Mix{RMWPct: 100}

// WorkloadB is YCSB-B (95% reads / 5% updates), used by ablations.
var WorkloadB = Mix{ReadPct: 95, UpsertPct: 5}

// WorkloadC is YCSB-C (100% reads).
var WorkloadC = Mix{ReadPct: 100}

// Workload draws operations from a key Generator and a Mix.
type Workload struct {
	gen Generator
	mix Mix
	r   rng
}

// NewWorkload builds a workload; seed decorrelates the op-kind stream from
// the key stream.
func NewWorkload(gen Generator, mix Mix, seed uint64) *Workload {
	return &Workload{gen: gen, mix: mix, r: rng{state: seed ^ 0xABCD}}
}

// Next returns the next operation.
func (w *Workload) Next() Op {
	k := w.gen.Next()
	p := int(w.r.next() % 100)
	switch {
	case p < w.mix.ReadPct:
		return Op{Kind: OpRead, Key: k}
	case p < w.mix.ReadPct+w.mix.UpsertPct:
		return Op{Kind: OpUpsert, Key: k}
	default:
		return Op{Kind: OpRMW, Key: k}
	}
}

// KeyBytes formats a key index as the paper's fixed 8-byte key.
func KeyBytes(idx uint64) []byte {
	b := make([]byte, DefaultKeyBytes)
	binary.LittleEndian.PutUint64(b, idx)
	return b
}

// FillKey formats idx into an existing 8-byte buffer (allocation-free hot
// paths).
func FillKey(dst []byte, idx uint64) {
	binary.LittleEndian.PutUint64(dst, idx)
}

// Value returns a value of the paper's default size whose first 8 bytes are
// a counter field (what workload F increments).
func Value(counter uint64, size int) []byte {
	if size < 8 {
		size = 8
	}
	v := make([]byte, size)
	binary.LittleEndian.PutUint64(v, counter)
	return v
}
