package faster

import (
	"sync"

	"repro/internal/hlog"
	"repro/internal/storage"
)

// This file implements the per-session pending-read pipeline (PR 8). Instead
// of spawning one goroutine per storage read (and one more per chain hop),
// pending operations queue on their session; flushReads coalesces the queue
// by record address — N waiters on the same record share one device read —
// and submits the distinct reads as a single device batch. Completions flow
// out of order through the session's existing completions channel. Chain-walk
// follow-ups re-enter the queue rather than holding a goroutine hostage for
// the round trip.

const (
	// readBatchMax bounds one ReadBatch submission; the queue also flushes
	// whenever it grows this long, so a burst of pending ops overlaps its
	// device reads instead of waiting for the next CompletePending.
	readBatchMax = 64
	// ioEntryPoolCap bounds how many recycled entries a session retains;
	// ioEntryBufKeep is the largest span buffer kept across recycling.
	ioEntryPoolCap = 128
	ioEntryBufKeep = 16 << 10
)

// ioEntry is one in-flight device read. One entry serves every queued op
// targeting the same record address: waiters ride the entry and are all
// completed from its buffer.
//
// Ownership: the session goroutine creates entries, adds waiters, parses
// results and recycles; a device worker completes the read. The mu/done
// handshake is their only contact — a coalescer that finds the entry already
// done self-completes instead of joining the device read.
type ioEntry struct {
	addr hlog.Address // record address the read targets
	pos  uint64       // device offset of buf[0] (pos <= addr: read-behind span)
	have int          // valid prefix bytes of buf (continuation reads)
	buf  []byte       // span buffer for [pos, pos+len(buf))
	refs int          // ops referencing the entry; recycled at 0 (session side)

	// mu guards done/err/waiters across the two goroutines; held only for
	// pointer-sized updates, never across I/O or channel operations.
	//
	//shadowfax:epochsafe
	mu      sync.Mutex
	done    bool
	err     error
	waiters []*pendingOp
}

// readPipe is a session's pending-read pipeline state.
type readPipe struct {
	queue    []*pendingOp
	ready    []*pendingOp              // coalesced onto an already-finished read
	inflight map[hlog.Address]*ioEntry // primary reads currently on the device
	entFree  []*ioEntry
	reqs     []storage.ReadReq // per-batch scratch; jobs copy it, so reusable
}

// enqueueRead queues p's device read; flushReads submits it. Every pending
// read and every chain hop comes through here — no goroutine per read.
//
//shadowfax:epoch
func (sess *Session) enqueueRead(p *pendingOp) {
	sess.inflight.Add(1)
	sess.s.stats.PendingIssued.Add(1)
	sess.pipe.queue = append(sess.pipe.queue, p)
	if len(sess.pipe.queue) >= readBatchMax {
		sess.flushReads()
	}
}

// enqueueSuffixRead re-queues p to read the tail of a record longer than its
// span, reusing the prefix already read. The continuation gets a dedicated
// entry (pos = record address, have = prefix length) and skips coalescing:
// by construction no other op can target the same address without finding
// the primary entry first.
func (sess *Session) enqueueSuffixRead(p *pendingOp, need int) {
	old := p.ent
	recOff := int(uint64(p.addr) - old.pos)
	ent := sess.getEntry(need)
	ent.addr = p.addr
	ent.pos = uint64(p.addr)
	ent.have = copy(ent.buf, old.buf[recOff:])
	p.rec = nil
	p.ent = nil
	sess.releaseEntry(old)
	ent.refs = 1
	ent.waiters = append(ent.waiters, p)
	p.ent = ent
	sess.inflight.Add(1) // resume already decremented; the op is back in flight
	sess.pipe.queue = append(sess.pipe.queue, p)
	if len(sess.pipe.queue) >= readBatchMax {
		sess.flushReads()
	}
}

// flushReads drains the queue: ops targeting an address already on the device
// join that read's waiter list (coalescing), the rest become one batched
// device submission. Runs on the session goroutine — from CompletePending and
// from enqueueRead when the queue fills.
//
//shadowfax:epoch
func (sess *Session) flushReads() {
	pipe := &sess.pipe
	if len(pipe.queue) == 0 {
		return
	}
	if pipe.inflight == nil {
		pipe.inflight = make(map[hlog.Address]*ioEntry) //shadowfax:ignore hotpathalloc one-time pipeline init per session
	}
	lg := sess.s.log
	pageBits := lg.PageBits()
	behind := sess.s.cfg.ReadAheadBytes
	floor := lg.BeginAddress()
	reqs := pipe.reqs[:0]
	// batch collects the entries of this submission in reqs order. It is
	// captured by the completion callback (which indexes it from device
	// workers), so it cannot be session-reused scratch like reqs.
	var batch []*ioEntry //shadowfax:ignore hotpathalloc per-batch slice, amortized over up to readBatchMax reads
	for _, p := range pipe.queue {
		if p.ent != nil {
			// Continuation read: entry pre-built by enqueueSuffixRead.
			reqs = append(reqs, storage.ReadReq{P: p.ent.buf[p.ent.have:], Off: p.ent.pos + uint64(p.ent.have)})
			batch = append(batch, p.ent)
			continue
		}
		if ent, ok := pipe.inflight[p.addr]; ok {
			// Coalesce: share the in-flight (or just-finished) read.
			sess.s.stats.PendingCoalesced.Add(1)
			ent.refs++
			p.ent = ent
			ent.mu.Lock()
			if ent.done {
				ent.mu.Unlock()
				// The device finished while the op sat in the queue: complete
				// it on the session-local ready list (never a channel send —
				// this goroutine is the channel's only drainer).
				pipe.ready = append(pipe.ready, p)
			} else {
				ent.waiters = append(ent.waiters, p)
				ent.mu.Unlock()
			}
			continue
		}
		ent := sess.getEntry(0)
		off, n, _ := hlog.PlanRecordRead(p.addr, sess.s.cfg.ReadHintBytes+len(p.key), behind, pageBits, floor)
		if cap(ent.buf) < n {
			ent.buf = hlog.AlignedBuf(n) //shadowfax:ignore hotpathalloc pool-miss span buffer growth, amortized
		}
		ent.buf = ent.buf[:n]
		ent.addr = p.addr
		ent.pos = off
		ent.refs = 1
		ent.waiters = append(ent.waiters, p)
		p.ent = ent
		pipe.inflight[p.addr] = ent
		reqs = append(reqs, storage.ReadReq{P: ent.buf, Off: off})
		batch = append(batch, ent)
	}
	pipe.queue = pipe.queue[:0]
	pipe.reqs = reqs[:0]
	if len(batch) == 0 {
		return
	}
	sess.s.stats.DeviceBatchReads.Add(1)
	completions := sess.completions
	storage.ReadBatch(lg.Device(), reqs, func(i int, err error) { //shadowfax:ignore hotpathalloc per-batch completion closure, amortized
		ent := batch[i]
		ent.mu.Lock()
		ent.done = true
		ent.err = err
		ws := ent.waiters
		ent.waiters = nil
		ent.mu.Unlock()
		for _, w := range ws {
			completions <- w //shadowfax:ignore epochblock runs on the device worker goroutine, not in the epoch section; buffered to MaxPendingPerSession so it cannot block regardless
		}
	})
}

// getEntry takes a recycled entry (or allocates one) with a span buffer of at
// least n bytes (n == 0: keep whatever buffer the entry carries).
func (sess *Session) getEntry(n int) *ioEntry {
	pipe := &sess.pipe
	var ent *ioEntry
	if ln := len(pipe.entFree); ln > 0 {
		ent = pipe.entFree[ln-1]
		pipe.entFree[ln-1] = nil
		pipe.entFree = pipe.entFree[:ln-1]
	} else {
		ent = new(ioEntry) //shadowfax:ignore hotpathalloc pool-miss entry growth, amortized
	}
	if n > 0 && cap(ent.buf) < n {
		ent.buf = hlog.AlignedBuf(n) //shadowfax:ignore hotpathalloc pool-miss span buffer growth, amortized
	}
	if n > 0 {
		ent.buf = ent.buf[:n]
	}
	ent.have = 0
	ent.done = false
	ent.err = nil
	ent.refs = 0
	ent.waiters = ent.waiters[:0]
	return ent
}

// releaseEntry drops one reference; the last referee retires the entry from
// the in-flight table and recycles it. Only the session goroutine calls it,
// and only for entries whose completion it has already observed through the
// completions channel (or that never reached the device), so reading
// ent.done without the lock is ordered by the channel receive.
func (sess *Session) releaseEntry(ent *ioEntry) {
	if ent == nil {
		return
	}
	ent.refs--
	if ent.refs > 0 {
		return
	}
	pipe := &sess.pipe
	if pipe.inflight[ent.addr] == ent {
		delete(pipe.inflight, ent.addr)
	}
	if cap(ent.buf) > ioEntryBufKeep {
		ent.buf = nil
	}
	if len(pipe.entFree) < ioEntryPoolCap {
		pipe.entFree = append(pipe.entFree, ent)
	}
}

// materializeRec parses p's record out of its completed span. It reports
// false when resume must not proceed: the op was re-queued for a
// continuation read (long record). Parse errors land in p.err.
func (sess *Session) materializeRec(p *pendingOp) bool {
	ent := p.ent
	if ent == nil || p.rec != nil || p.err != nil {
		return true
	}
	if ent.err != nil {
		p.err = ent.err
		return true
	}
	rec, need, err := hlog.ParseSpanRecord(ent.buf, int(uint64(p.addr)-ent.pos), p.addr, sess.s.log.PageBits())
	switch {
	case err != nil:
		p.err = err
	case rec == nil:
		sess.enqueueSuffixRead(p, need)
		return false
	default:
		p.rec = rec
	}
	return true
}
