package faster

import (
	"repro/internal/hashidx"
	"repro/internal/hlog"
)

// This file implements the store-level primitives Shadowfax's migration
// protocol (§3.3) builds on: conditional inserts of migrated records,
// indirection-record splicing, and chain collection.

// ConditionalInsert installs a migrated record only if the key has no
// version in this store (a present version — even a tombstone — is newer
// than anything arriving via migration). tombstone preserves a migrated
// deletion. Returns StatusOK if installed, StatusNotFound if dropped, or
// StatusPending if the decision needs a storage read of the chain.
func (sess *Session) ConditionalInsert(key, value []byte, tombstone bool, cb Callback) Status {
	sess.maybeRefresh()
	hash := HashOf(key)
	slot := sess.s.index.FindOrCreateEntry(hash)
	for {
		res := sess.walkMemory(slot, key, hash)
		switch res.status {
		case walkFound, walkTombstone:
			invoke(cb, StatusNotFound, nil)
			return StatusNotFound
		case walkIndirection:
			// The local chain defers to a remote suffix for this hash
			// range. The migrated record is at least as new as anything in
			// that suffix, so install it locally in front.
			if sess.condAppend(res, key, value, tombstone) {
				invoke(cb, StatusOK, nil)
				return StatusOK
			}
		case walkBelowHead:
			p := sess.newPendingOp(opCondInsert, key, value, hash, res.addr,
				completion{cb: cb})
			p.meta = boolMeta(tombstone)
			sess.enqueueRead(p)
			return StatusPending
		case walkNotFound:
			if sess.condAppend(res, key, value, tombstone) {
				invoke(cb, StatusOK, nil)
				return StatusOK
			}
		}
	}
}

func boolMeta(tombstone bool) hlog.Meta {
	return hlog.NewMeta(hlog.InvalidAddress, 0, false, tombstone)
}

// condAppend appends a migrated record with a single-shot chain-head CAS;
// on failure the record is invalidated and the caller re-walks (the chain
// may now contain a newer version of the key).
func (sess *Session) condAppend(res walkResult, key, value []byte, tombstone bool) bool {
	addr, rec, err := sess.append(res.entry.Address(), key, value, tombstone)
	if err != nil {
		return false
	}
	if res.slot.CompareAndSwap(res.entry, newEntryFor(res.hash, addr)) {
		return true
	}
	rec.SetMeta(rec.Meta().WithInvalid())
	return false
}

// SpliceIndirection appends an indirection record (§3.3.2) and links it at
// the *tail* of the hash chain selected by repHash, so lookups consult all
// local records before deferring to the remote suffix. payload is the
// encoded IndirectionPayload. Returns StatusError if the local chain itself
// descends below the head address (splicing would need storage writes; the
// caller falls back to eager fetching).
func (sess *Session) SpliceIndirection(repHash uint64, payload []byte) Status {
	sess.maybeRefresh()
	slot := sess.s.index.FindOrCreateEntry(repHash)

	// Append the indirection record itself: empty key, payload value.
	size := hlog.RecordSize(0, len(payload))
	indAddr, buf, err := sess.s.log.Allocate(sess.g, size)
	if err != nil {
		return StatusError
	}
	meta := hlog.NewMeta(hlog.InvalidAddress, sess.ver, true, false)
	hlog.WriteRecord(buf, meta, nil, payload)

	for {
		entry := slot.Load()
		if entry.Address() == hlog.InvalidAddress {
			if slot.CompareAndSwap(entry, newEntryFor(repHash, indAddr)) {
				return StatusOK
			}
			continue
		}
		// Walk to the chain's last in-memory record and hook the new
		// record beneath it.
		head := sess.s.log.HeadAddress()
		addr := entry.Address()
		for {
			if addr < head {
				return StatusError // chain continues on storage
			}
			rec := sess.s.log.RecordAt(addr)
			m := rec.Meta()
			prev := m.Previous()
			if prev == hlog.InvalidAddress {
				if rec.CASMeta(m, m.WithPrevious(indAddr)) {
					return StatusOK
				}
				m = rec.Meta() // seal toggled or concurrent splice; retry
				continue
			}
			addr = prev
		}
	}
}

// CollectedRecord is one record harvested from a chain during migration.
type CollectedRecord struct {
	Hash      uint64
	Key       []byte // nil for indirection records
	Value     []byte
	Tombstone bool
	// Indirection marks a synthesized indirection payload (Value holds the
	// encoded IndirectionPayload).
	Indirection bool
}

// CollectChain walks one hash chain (rooted at the index slot) and collects
// the newest version of every key in [rangeStart, rangeEnd). When the chain
// descends below the head address the walk stops and, if makeIndirection is
// set, a single indirection record pointing at the remainder is emitted
// (§3.3.2); otherwise the on-storage remainder is skipped (the caller scans
// storage separately, as the Rocksteady baseline does).
//
// bucket is the chain's main-bucket index (from ForEachEntryInBuckets); it
// combines with the entry tag into a representative hash that reproduces the
// chain's placement at the target. seen is a reusable set for newest-version
// dedup; pass an empty map.
func (sess *Session) CollectChain(bucket uint64, slot hashidx.Slot, rangeStart, rangeEnd uint64,
	makeIndirection bool, seen map[string]struct{}, emit func(CollectedRecord)) {
	entry := slot.Load()
	// repHash reproduces (bucket, tag): the low bits place the chain in a
	// bucket, the top 14 bits are the tag.
	repHash := uint64(entry.Tag())<<50 | bucket
	lg := sess.s.log
	head := lg.HeadAddress()
	begin := lg.BeginAddress()
	addr := entry.Address()
	for addr != hlog.InvalidAddress && addr >= begin {
		if addr < head {
			if makeIndirection {
				payload := hlog.EncodeIndirection(hlog.IndirectionPayload{
					NextAddress: addr,
					LogID:       lg.LogID(),
					RangeStart:  rangeStart,
					RangeEnd:    rangeEnd,
					HashBucket:  repHash,
				})
				emit(CollectedRecord{Hash: repHash, Value: payload, Indirection: true})
			}
			return
		}
		rec := lg.RecordAt(addr)
		m := rec.Meta()
		if m.Invalid() {
			addr = m.Previous()
			continue
		}
		if m.Indirection() {
			// Forward an existing indirection record if its range overlaps
			// the migrating range (chained migrations).
			if p, ok := hlog.DecodeIndirection(rec.Value()); ok &&
				p.RangeStart < rangeEnd && p.RangeEnd > rangeStart {
				emit(CollectedRecord{Hash: p.HashBucket,
					Value: append([]byte(nil), rec.Value()...), Indirection: true})
			}
			addr = m.Previous()
			continue
		}
		h := HashOf(rec.Key())
		if h >= rangeStart && h < rangeEnd && addr >= sess.s.fenceBelow(h) {
			// Records below the hash's ownership fence are retired leftovers
			// from an earlier tenancy of the range — never ship them.
			k := string(rec.Key())
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				emit(CollectedRecord{
					Hash:      h,
					Key:       append([]byte(nil), rec.Key()...),
					Value:     rec.ReadValueStable(nil),
					Tombstone: m.Tombstone(),
				})
			}
		}
		addr = m.Previous()
	}
}
