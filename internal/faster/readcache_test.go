package faster

import (
	"bytes"
	"testing"

	"repro/internal/hlog"
	"repro/internal/storage"
)

// cacheStore builds a small store with the second-chance read cache enabled.
func cacheStore(t testing.TB) (*Store, *storage.MemDevice) {
	t.Helper()
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	s, err := NewStore(Config{
		IndexBuckets: 1 << 10,
		ReadCache:    true,
		Log: hlog.Config{
			PageBits: 12, MemPages: 16, MutablePages: 8,
			Device: dev, LogID: "cache-store",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); dev.Close() })
	return s, dev
}

// coldReadOnce reads k expecting the pending path, and returns the value.
func coldReadOnce(t *testing.T, sess *Session, k []byte) ([]byte, Status) {
	t.Helper()
	got, st := mustRead(t, sess, k)
	return got, st
}

// TestReadCacheSecondChancePromotes pins the promotion discipline: the first
// disk hit only marks the key, the second copies it to the mutable tail, and
// from then on reads are served from memory.
func TestReadCacheSecondChancePromotes(t *testing.T) {
	s, _ := cacheStore(t)
	sess := s.NewSession()
	defer sess.Close()
	sess.Upsert(key(0), val(0), nil)
	fillToEvict(t, sess, 3000)

	// First disk hit: second-chance bit only, no copy.
	if got, st := coldReadOnce(t, sess, key(0)); st != StatusOK || !bytes.Equal(got, val(0)) {
		t.Fatalf("first read: %v %q", st, got)
	}
	if n := s.Stats().ReadCacheCopies.Load(); n != 0 {
		t.Fatalf("first disk hit promoted (%d copies); scan resistance broken", n)
	}

	// Second disk hit: promoted to the tail.
	if got, st := coldReadOnce(t, sess, key(0)); st != StatusOK || !bytes.Equal(got, val(0)) {
		t.Fatalf("second read: %v %q", st, got)
	}
	if n := s.Stats().ReadCacheCopies.Load(); n != 1 {
		t.Fatalf("second disk hit made %d copies, want 1", n)
	}

	// Third read: in memory now — must not go pending.
	var got []byte
	st := sess.Read(key(0), func(_ Status, v []byte) { got = append(got[:0], v...) })
	if st != StatusOK || !bytes.Equal(got, val(0)) {
		t.Fatalf("post-promotion read: %v %q (want an in-memory hit)", st, got)
	}
	if s.Stats().ReadCacheHits.Load() == 0 {
		t.Fatal("in-memory hit on a promoted key not counted")
	}
}

// TestReadCacheDoesNotShadowConcurrentUpsert pins the re-verify step: a
// promote whose record is no longer the chain's newest version (an upsert
// landed while the read was in flight) must be abandoned.
func TestReadCacheDoesNotShadowConcurrentUpsert(t *testing.T) {
	s, _ := cacheStore(t)
	sess := s.NewSession()
	defer sess.Close()
	sess.Upsert(key(0), val(0), nil)
	fillToEvict(t, sess, 3000)

	coldReadOnce(t, sess, key(0)) // second-chance bit set

	// Issue the would-promote read, then land a newer version before it
	// completes.
	var old []byte
	if st := sess.Read(key(0), func(_ Status, v []byte) { old = append(old[:0], v...) }); st != StatusPending {
		t.Fatalf("read: %v, want pending", st)
	}
	writer := s.NewSession()
	if st := writer.Upsert(key(0), []byte("newer"), nil); st != StatusOK {
		t.Fatalf("upsert: %v", st)
	}
	writer.Close()
	sess.CompletePending(true)

	// The read itself linearizes at issue time and may return the old value;
	// the promote must have been dropped.
	if !bytes.Equal(old, val(0)) && string(old) != "newer" {
		t.Fatalf("pending read returned %q", old)
	}
	if n := s.Stats().ReadCacheCopies.Load(); n != 0 {
		t.Fatalf("%d promotions despite a newer in-memory version", n)
	}
	got, st := mustRead(t, sess, key(0))
	if st != StatusOK || string(got) != "newer" {
		t.Fatalf("read after upsert: %v %q (stale cache copy shadows the upsert)", st, got)
	}
}

// TestReadCacheRespectsFence pins the ownership-fence interaction: once a
// fence retires a record, an in-flight read of it must neither return it nor
// resurrect it via a cache copy.
func TestReadCacheRespectsFence(t *testing.T) {
	s, _ := cacheStore(t)
	sess := s.NewSession()
	defer sess.Close()
	sess.Upsert(key(0), val(0), nil)
	fillToEvict(t, sess, 3000)

	coldReadOnce(t, sess, key(0)) // second-chance bit set

	var st2 Status
	if st := sess.Read(key(0), func(st Status, _ []byte) { st2 = st }); st != StatusPending {
		t.Fatalf("read: %v, want pending", st)
	}
	// The server becomes an inbound-migration target for the whole hash
	// space: everything below the current tail is retired.
	s.AddFence(0, ^uint64(0), s.Log().TailAddress())
	sess.CompletePending(true)

	if st2 != StatusNotFound {
		t.Fatalf("fenced read returned %v, want NotFound", st2)
	}
	if n := s.Stats().ReadCacheCopies.Load(); n != 0 {
		t.Fatalf("%d promotions resurrected a fence-retired record", n)
	}
	if _, st := mustRead(t, sess, key(0)); st != StatusNotFound {
		t.Fatalf("fence-retired key readable again: %v", st)
	}
}

// TestReadCacheDoesNotShadowMigratedRecord pins the migration interaction:
// after a fence plus a ConditionalInsert of the shipped (authoritative)
// version, a read that was in flight against the stale pre-fence record must
// not promote it over the migrated one.
func TestReadCacheDoesNotShadowMigratedRecord(t *testing.T) {
	s, _ := cacheStore(t)
	sess := s.NewSession()
	defer sess.Close()
	sess.Upsert(key(0), val(0), nil)
	fillToEvict(t, sess, 3000)

	coldReadOnce(t, sess, key(0)) // second-chance bit set

	if st := sess.Read(key(0), func(Status, []byte) {}); st != StatusPending {
		t.Fatalf("read: %v, want pending", st)
	}
	// Inbound migration: fence the range, then install the shipped version.
	s.AddFence(0, ^uint64(0), s.Log().TailAddress())
	target := s.NewSession()
	if st := target.ConditionalInsert(key(0), []byte("migrated"), false, nil); st != StatusOK {
		t.Fatalf("conditional insert over fence: %v", st)
	}
	target.Close()
	sess.CompletePending(true)

	if n := s.Stats().ReadCacheCopies.Load(); n != 0 {
		t.Fatalf("%d promotions shadowed a migrated record", n)
	}
	got, st := mustRead(t, sess, key(0))
	if st != StatusOK || string(got) != "migrated" {
		t.Fatalf("read after migration: %v %q, want the shipped version", st, got)
	}
}

// TestReadCachePromoteAfterCheckpointCut pins CPR stamping: a promotion that
// lands after a checkpoint cut is stamped with the new version and must not
// leak into the sealed image.
func TestReadCachePromoteAfterCheckpointCut(t *testing.T) {
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	defer dev.Close()
	cfg := Config{
		IndexBuckets: 1 << 10,
		ReadCache:    true,
		Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
			Device: dev, LogID: "cache-cut"},
	}
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.NewSession()
	sess.Upsert(key(0), val(0), nil)
	fillToEvict(t, sess, 3000)
	coldReadOnce(t, sess, key(0)) // second-chance bit set

	cutFired := make(chan uint32, 1)
	postCutDone := make(chan struct{})
	type outcome struct {
		info CheckpointInfo
		err  error
	}
	res := make(chan outcome, 1)
	var blob bytes.Buffer
	s.CheckpointCut(&blob,
		func(sealed uint32) {
			cutFired <- sealed
			<-postCutDone
		},
		func(info CheckpointInfo, err error) { res <- outcome{info, err} })

	sess.Refresh()
	<-cutFired
	// Post-cut: the second disk hit promotes, stamped with version 2.
	if got, st := coldReadOnce(t, sess, key(0)); st != StatusOK || !bytes.Equal(got, val(0)) {
		t.Fatalf("post-cut read: %v %q", st, got)
	}
	if n := s.Stats().ReadCacheCopies.Load(); n != 1 {
		t.Fatalf("post-cut promotions: %d, want 1", n)
	}
	close(postCutDone)
	// The image writer flushes the log, which needs every epoch guard to
	// advance: close the (idle) session before waiting on the result.
	sess.Close()
	out := <-res
	if out.err != nil {
		t.Fatal(out.err)
	}
	s.Close()

	cfg2 := cfg
	cfg2.Log.Epoch = nil
	r, err := Recover(cfg2, bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.NewSession()
	defer rs.Close()
	got, st := mustRead(t, rs, key(0))
	if st != StatusOK || !bytes.Equal(got, val(0)) {
		t.Fatalf("recovered read: %v %q", st, got)
	}
}
