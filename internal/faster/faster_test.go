package faster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"repro/internal/hlog"
	"repro/internal/storage"
)

// testStore builds a small store: 4 KiB pages, 16 frames (64 KiB memory),
// 8 mutable.
func testStore(t testing.TB) (*Store, *storage.MemDevice) {
	t.Helper()
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	s, err := NewStore(Config{
		IndexBuckets: 1 << 10,
		Log: hlog.Config{
			PageBits: 12, MemPages: 16, MutablePages: 8,
			Device: dev, LogID: "test-store",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); dev.Close() })
	return s, dev
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%08d", i)) }

func mustRead(t *testing.T, sess *Session, k []byte) ([]byte, Status) {
	t.Helper()
	var got []byte
	var final Status
	st := sess.Read(k, func(st Status, v []byte) {
		final = st
		got = append([]byte(nil), v...)
	})
	if st == StatusPending {
		sess.CompletePending(true)
	}
	return got, final
}

func TestUpsertRead(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	if st := sess.Upsert(key(1), val(1), nil); st != StatusOK {
		t.Fatalf("upsert: %v", st)
	}
	got, st := mustRead(t, sess, key(1))
	if st != StatusOK || !bytes.Equal(got, val(1)) {
		t.Fatalf("read: %v %q", st, got)
	}
}

func TestReadMissing(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()
	if _, st := mustRead(t, sess, []byte("nope")); st != StatusNotFound {
		t.Fatalf("status %v", st)
	}
}

func TestUpsertOverwriteInPlace(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	sess.Upsert(key(1), []byte("aaaa"), nil)
	before := s.Stats().InPlaceUpdates.Load()
	sess.Upsert(key(1), []byte("bbbb"), nil) // same length: in-place
	if s.Stats().InPlaceUpdates.Load() != before+1 {
		t.Fatal("same-length overwrite should update in place")
	}
	got, _ := mustRead(t, sess, key(1))
	if string(got) != "bbbb" {
		t.Fatalf("got %q", got)
	}

	sess.Upsert(key(1), []byte("cc"), nil) // different length: RCU
	got, _ = mustRead(t, sess, key(1))
	if string(got) != "cc" {
		t.Fatalf("got %q", got)
	}
}

func TestDelete(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	sess.Upsert(key(1), val(1), nil)
	if st := sess.Delete(key(1), nil); st != StatusOK {
		t.Fatalf("delete: %v", st)
	}
	if _, st := mustRead(t, sess, key(1)); st != StatusNotFound {
		t.Fatalf("read after delete: %v", st)
	}
	// Upsert resurrects.
	sess.Upsert(key(1), val(2), nil)
	got, st := mustRead(t, sess, key(1))
	if st != StatusOK || !bytes.Equal(got, val(2)) {
		t.Fatalf("resurrect: %v %q", st, got)
	}
}

func TestDeleteMissingIsOK(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()
	if st := sess.Delete([]byte("ghost"), nil); st != StatusOK {
		t.Fatalf("delete missing: %v", st)
	}
	if _, st := mustRead(t, sess, []byte("ghost")); st != StatusNotFound {
		t.Fatal("ghost appeared")
	}
}

func counterVal(t *testing.T, sess *Session, k []byte) uint64 {
	t.Helper()
	got, st := mustRead(t, sess, k)
	if st != StatusOK || len(got) != 8 {
		t.Fatalf("counter read: %v %d bytes", st, len(got))
	}
	return binary.LittleEndian.Uint64(got)
}

func delta(n uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, n)
	return b
}

func TestRMWCounter(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	for i := 0; i < 10; i++ {
		if st := sess.RMW(key(7), delta(1), nil); st != StatusOK {
			t.Fatalf("rmw %d: %v", i, st)
		}
	}
	if got := counterVal(t, sess, key(7)); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	// Larger delta.
	sess.RMW(key(7), delta(32), nil)
	if got := counterVal(t, sess, key(7)); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestRMWUsesInPlaceInMutableRegion(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()
	sess.RMW(key(1), delta(1), nil) // creates
	before := s.Stats().InPlaceUpdates.Load()
	sess.RMW(key(1), delta(1), nil) // hot record: in-place
	if s.Stats().InPlaceUpdates.Load() != before+1 {
		t.Fatal("RMW on mutable record should be in-place")
	}
}

func TestConcurrentRMWNoLostUpdates(t *testing.T) {
	s, _ := testStore(t)
	const threads = 4
	const perThread = 2500
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			for j := 0; j < perThread; j++ {
				if st := sess.RMW(key(0), delta(1), nil); st == StatusPending {
					sess.CompletePending(true)
				}
			}
		}()
	}
	wg.Wait()
	sess := s.NewSession()
	defer sess.Close()
	if got := counterVal(t, sess, key(0)); got != threads*perThread {
		t.Fatalf("counter = %d, want %d (lost updates)", got, threads*perThread)
	}
}

func TestManyKeysAcrossEviction(t *testing.T) {
	// Write far more than the 64 KiB memory budget so cold keys go to
	// "SSD", then read everything back (pending I/O path).
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	const n = 3000 // * ~48B records ≈ 144 KiB > 64 KiB memory
	for i := 0; i < n; i++ {
		if st := sess.Upsert(key(i), val(i), nil); st != StatusOK {
			t.Fatalf("upsert %d: %v", i, st)
		}
	}
	if s.Log().SafeHeadAddress() == 0 {
		t.Fatal("expected eviction to storage")
	}
	pendingSeen := false
	for i := 0; i < n; i++ {
		var got []byte
		var final Status
		st := sess.Read(key(i), func(st Status, v []byte) {
			final = st
			got = append(got[:0], v...)
		})
		if st == StatusPending {
			pendingSeen = true
			sess.CompletePending(true)
		}
		if final != StatusOK || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d: %v %q (want %q)", i, final, got, val(i))
		}
	}
	if !pendingSeen {
		t.Fatal("no read required I/O; test not exercising the pending path")
	}
}

func TestRMWPendingFromStorage(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	// Seed counters, then push them to storage with filler writes.
	const counters = 50
	for i := 0; i < counters; i++ {
		sess.RMW(key(i), delta(5), nil)
	}
	for i := 0; i < 3000; i++ {
		sess.Upsert([]byte(fmt.Sprintf("filler-%06d", i)), val(i), nil)
	}
	// RMW the cold counters: must fetch old value from storage.
	pendingSeen := false
	for i := 0; i < counters; i++ {
		if st := sess.RMW(key(i), delta(2), nil); st == StatusPending {
			pendingSeen = true
			sess.CompletePending(true)
		}
	}
	for i := 0; i < counters; i++ {
		if got := counterVal(t, sess, key(i)); got != 7 {
			t.Fatalf("counter %d = %d, want 7", i, got)
		}
	}
	if !pendingSeen {
		t.Fatal("no RMW required I/O")
	}
}

func TestDeleteShadowsStorageVersion(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	sess.Upsert(key(1), val(1), nil)
	for i := 0; i < 3000; i++ {
		sess.Upsert([]byte(fmt.Sprintf("filler-%06d", i)), val(i), nil)
	}
	sess.Delete(key(1), nil)
	if _, st := mustRead(t, sess, key(1)); st != StatusNotFound {
		t.Fatalf("deleted key readable: %v", st)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	s, _ := testStore(t)
	const threads = 4
	const keys = 200
	const opsPer = 3000
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			for i := 0; i < opsPer; i++ {
				k := key(i % keys)
				switch i % 3 {
				case 0:
					sess.RMW(k, delta(1), nil)
				case 1:
					sess.Read(k, nil)
				case 2:
					sess.Upsert([]byte(fmt.Sprintf("w%d-%d", w, i)), val(i), nil)
				}
				if sess.Pending() > 64 {
					sess.CompletePending(true)
				}
			}
			sess.CompletePending(true)
		}(w)
	}
	wg.Wait()
	// The store must still be consistent: all per-writer upserts readable.
	sess := s.NewSession()
	defer sess.Close()
	for w := 0; w < threads; w++ {
		k := []byte(fmt.Sprintf("w%d-%d", w, 2))
		got, st := mustRead(t, sess, k)
		if st != StatusOK || !bytes.Equal(got, val(2)) {
			t.Fatalf("writer %d key: %v %q", w, st, got)
		}
	}
}

func TestConditionalInsert(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	// Absent: installs.
	if st := sess.ConditionalInsert(key(1), val(1), false, nil); st != StatusOK {
		t.Fatalf("install: %v", st)
	}
	got, _ := mustRead(t, sess, key(1))
	if !bytes.Equal(got, val(1)) {
		t.Fatal("conditional insert not readable")
	}
	// Present: drops (migrated record older than local).
	if st := sess.ConditionalInsert(key(1), val(99), false, nil); st != StatusNotFound {
		t.Fatalf("dup insert: %v", st)
	}
	got, _ = mustRead(t, sess, key(1))
	if !bytes.Equal(got, val(1)) {
		t.Fatal("conditional insert overwrote newer value")
	}
	// Tombstone present: also drops.
	sess.Delete(key(2), nil)
	if st := sess.ConditionalInsert(key(2), val(2), false, nil); st != StatusNotFound {
		t.Fatalf("insert over tombstone: %v", st)
	}
	// Migrated tombstone installs for fresh key.
	if st := sess.ConditionalInsert(key(3), nil, true, nil); st != StatusOK {
		t.Fatalf("tombstone insert: %v", st)
	}
	if _, st := mustRead(t, sess, key(3)); st != StatusNotFound {
		t.Fatal("migrated tombstone not honored")
	}
}

func TestConditionalInsertPendingPath(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	sess.Upsert(key(1), val(1), nil)
	for i := 0; i < 3000; i++ {
		sess.Upsert([]byte(fmt.Sprintf("filler-%06d", i)), val(i), nil)
	}
	// key(1) is on storage; conditional insert must check there and drop.
	st := sess.ConditionalInsert(key(1), val(42), false, func(st Status, _ []byte) {
		if st != StatusNotFound {
			t.Errorf("storage-resident dup insert: %v", st)
		}
	})
	if st == StatusPending {
		sess.CompletePending(true)
	}
	got, _ := mustRead(t, sess, key(1))
	if !bytes.Equal(got, val(1)) {
		t.Fatal("conditional insert shadowed storage version")
	}
}

func TestSampleFilterCopiesToTail(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	for i := 0; i < 100; i++ {
		sess.Upsert(key(i), val(i), nil)
	}
	cut := s.Log().TailAddress()
	s.SetSampleFilter(func(hash uint64, addr hlog.Address) bool {
		return addr < cut
	})
	for i := 0; i < 10; i++ {
		mustRead(t, sess, key(i))
	}
	s.SetSampleFilter(nil)
	if got := s.Stats().SampledCopies.Load(); got != 10 {
		t.Fatalf("sampled %d records, want 10", got)
	}
	// Re-reading does not copy again (records now above the cut).
	s.SetSampleFilter(func(hash uint64, addr hlog.Address) bool {
		return addr < cut
	})
	for i := 0; i < 10; i++ {
		mustRead(t, sess, key(i))
	}
	s.SetSampleFilter(nil)
	if got := s.Stats().SampledCopies.Load(); got != 10 {
		t.Fatalf("re-sampled already-hot records: %d", got)
	}
	// Values survived the copy.
	for i := 0; i < 10; i++ {
		got, st := mustRead(t, sess, key(i))
		if st != StatusOK || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d after sampling: %v %q", i, st, got)
		}
	}
}

func TestRMWDuringSamplingCopiesToTail(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	sess.RMW(key(1), delta(1), nil)
	cut := s.Log().TailAddress()
	s.SetSampleFilter(func(hash uint64, addr hlog.Address) bool { return addr < cut })
	sess.RMW(key(1), delta(1), nil) // should RCU-copy, not update in place
	s.SetSampleFilter(nil)
	if s.Stats().SampledCopies.Load() == 0 {
		t.Fatal("RMW under sampling did not copy to tail")
	}
	if got := counterVal(t, sess, key(1)); got != 2 {
		t.Fatalf("counter = %d, want 2", got)
	}
}

// TestHashEntryPointsInlineAndPending pins the token-based API contract:
// inline results come back as return values (the CompletionHandler is NOT
// invoked), and operations that go pending on storage I/O are delivered to
// the handler under the caller's token.
func TestHashEntryPointsInlineAndPending(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()

	type done struct {
		token uint64
		st    Status
		val   []byte
	}
	var completed []done
	sess.SetCompletionHandler(func(token uint64, st Status, v []byte) {
		completed = append(completed, done{token, st, append([]byte(nil), v...)})
	})

	// Inline upsert + read round trip, handler untouched.
	k0, v0 := key(0), val(0)
	h0 := HashOf(k0)
	if st := sess.UpsertHash(k0, v0, h0); st != StatusOK {
		t.Fatalf("UpsertHash = %v", st)
	}
	st, got := sess.ReadHash(k0, h0, 77)
	if st != StatusOK || !bytes.Equal(got, v0) {
		t.Fatalf("ReadHash = %v %q, want OK %q", st, got, v0)
	}
	if st, _ := sess.ReadHash([]byte("absent"), HashOf([]byte("absent")), 78); st != StatusNotFound {
		t.Fatalf("ReadHash(absent) = %v", st)
	}
	if st := sess.DeleteHash(k0, h0); st != StatusOK {
		t.Fatalf("DeleteHash = %v", st)
	}
	if st, _ := sess.ReadHash(k0, h0, 79); st != StatusNotFound {
		t.Fatalf("ReadHash after delete = %v", st)
	}
	if len(completed) != 0 {
		t.Fatalf("handler invoked %d times for inline ops", len(completed))
	}

	// Overflow memory so early keys evict, then read one back: the result
	// must arrive via the handler under the right token.
	for i := 1; i < 2000; i++ {
		kk := key(i)
		if st := sess.UpsertHash(kk, val(i), HashOf(kk)); st != StatusOK {
			t.Fatalf("UpsertHash(%d) = %v", i, st)
		}
	}
	target := -1
	for i := 1; i < 2000; i++ {
		kk := key(i)
		st, _ := sess.ReadHash(kk, HashOf(kk), uint64(1000+i))
		switch st {
		case StatusPending:
			target = i
		case StatusOK:
			continue
		default:
			t.Fatalf("ReadHash(%d) = %v", i, st)
		}
		if target >= 0 {
			break
		}
	}
	if target < 0 {
		t.Fatal("no read went pending despite eviction")
	}
	sess.CompletePending(true)
	if len(completed) != 1 {
		t.Fatalf("handler invoked %d times, want 1", len(completed))
	}
	d := completed[0]
	if d.token != uint64(1000+target) || d.st != StatusOK || !bytes.Equal(d.val, val(target)) {
		t.Fatalf("pending completion = token %d st %v val %q, want %d OK %q",
			d.token, d.st, d.val, 1000+target, val(target))
	}

	// And a pending RMW under a token on a counter key.
	ctr := []byte("pending-ctr")
	if st := sess.UpsertHash(ctr, delta(5), HashOf(ctr)); st != StatusOK {
		t.Fatalf("seed counter: %v", st)
	}
	for i := 2000; i < 4000; i++ {
		kk := key(i)
		if st := sess.UpsertHash(kk, val(i), HashOf(kk)); st != StatusOK {
			t.Fatalf("UpsertHash(%d) = %v", i, st)
		}
	}
	st, _ = sess.RMWHash(ctr, delta(3), HashOf(ctr), 555)
	if st == StatusPending {
		sess.CompletePending(true)
		last := completed[len(completed)-1]
		if last.token != 555 || last.st != StatusOK {
			t.Fatalf("pending RMW completion = token %d st %v", last.token, last.st)
		}
	} else if st != StatusOK {
		t.Fatalf("RMWHash = %v", st)
	}
	want := uint64(8)
	var gotCtr []byte
	rst := sess.Read(ctr, func(st Status, v []byte) {
		if st == StatusOK {
			gotCtr = append([]byte(nil), v...)
		}
	})
	if rst == StatusPending {
		sess.CompletePending(true)
	}
	if len(gotCtr) != 8 || binary.LittleEndian.Uint64(gotCtr) != want {
		t.Fatalf("counter = %x, want %d", gotCtr, want)
	}
}
