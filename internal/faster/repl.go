package faster

import (
	"errors"

	"repro/internal/hashidx"
	"repro/internal/hlog"
)

// ErrScanAborted is returned by ReplScan when the emit callback stopped the
// scan (the replica detached mid-sync).
var ErrScanAborted = errors.New("faster: replication scan aborted")

// This file implements the store-level half of primary→backup replication:
// sealing a version over the CPR cut without writing a checkpoint image, and
// scanning the sealed prefix so it can be shipped to a backup as ordinary
// records (installed there via ConditionalInsert, exactly like migration).

// SealVersion advances the CPR version over an asynchronous global cut, like
// CheckpointCut, but without serializing a checkpoint image. onCut runs on a
// background goroutine after every thread has crossed the cut, receiving the
// sealed version and the tail captured before the bump: every record stamped
// sealed+1 lives at or above cutTail, so a scan below it (ReplScan) covers
// exactly the operations acknowledged before the cut.
//
// The cut's correctness requires that a guard crossing implies version
// adoption for every session that stamps records: server sessions run in
// manual-refresh mode (Session.SetManualRefresh) so they cross only at
// batch boundaries. One narrow residual window remains — hlog.Allocate
// refreshes the caller's guard while spinning on a page roll, which can
// complete the bump mid-batch; it is only reachable under allocator
// contention or memory pressure in the same instant a seal drains.
//
// Sessions that cross the cut early must additionally stall their write
// intake until CutPending clears: a sealed+1 record appended while another
// session still executes under the sealed version can be folded into that
// session's copy-on-write and re-stamped below the cut, poisoning the
// sealed prefix (see Store.CutPending).
func (s *Store) SealVersion(onCut func(sealed uint32, cutTail hlog.Address)) {
	s.cutsPending.Add(1)
	cutTail := s.log.TailAddress()
	sealed := s.version.Add(1) - 1
	s.epoch.BumpWithAction(func() {
		s.cutsPending.Add(-1)
		go onCut(sealed, cutTail)
	})
}

// AdvanceVersionTo raises the store's CPR version to at least v (no-op when
// already there). A backup applying a primary's replication stream adopts the
// primary's post-cut version so the records it appends carry stamps
// consistent with the stream's cut.
func (s *Store) AdvanceVersionTo(v uint32) {
	for {
		cur := s.version.Load()
		if cur >= v || s.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ReplScan walks every hash chain and emits the newest pre-cut version of
// every key — the base state a freshly attached backup needs. A record is
// pre-cut when it was allocated below cutTail or carries a version stamp
// other than sealed+1 (the masked comparison is unambiguous because the
// caller prevents further version bumps while the scan runs, so only sealed
// and sealed+1 coexist). Records below a hash's ownership fence are retired
// leftovers and are never shipped; tombstones are shipped as deletions so
// the backup's ConditionalInsert preserves them. Indirection records (shared
// tier, §3.3.2) are not replicated: their count is returned so the caller
// can surface the limitation.
//
// emit returns false to abort the scan (replica detached mid-sync). The
// session's epoch guard is held across each chain and refreshed between
// chains, so in-memory frames cannot recycle mid-walk.
func (sess *Session) ReplScan(sealed uint32, cutTail hlog.Address,
	emit func(CollectedRecord) bool) (skippedIndirections int, err error) {
	lg := sess.s.log
	seen := make(map[string]struct{}, 256)
	abort := false
	sess.s.index.ForEachEntryInBuckets(0, sess.s.index.NumBuckets(),
		func(_ uint64, slot hashidx.Slot) bool {
			sess.Refresh()
			e := slot.Load()
			if e.Free() {
				return true
			}
			clear(seen)
			begin := lg.BeginAddress()
			addr := e.Address()
			for addr != hlog.InvalidAddress && addr >= begin {
				var m hlog.Meta
				var rec hlog.Record
				if lg.InMemory(addr) {
					rec = lg.RecordAt(addr)
					m = rec.Meta()
				} else {
					var rerr error
					rec, rerr = lg.ReadRecordFromDevice(addr, sess.s.cfg.ReadHintBytes)
					if rerr != nil {
						err = rerr
						return false
					}
					m = rec.Meta()
				}
				if m.Invalid() {
					addr = m.Previous()
					continue
				}
				if m.Indirection() {
					skippedIndirections++
					addr = m.Previous()
					continue
				}
				// Post-cut records only exist at or above cutTail; skip them
				// without consuming the key's "seen" slot — its newest pre-cut
				// version sits further down the chain.
				if addr >= cutTail && hlog.SameVersion(m.Version(), sealed+1) {
					addr = m.Previous()
					continue
				}
				h := HashOf(rec.Key())
				if addr < sess.s.fenceBelow(h) {
					addr = m.Previous()
					continue
				}
				k := string(rec.Key())
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					cr := CollectedRecord{
						Hash:      h,
						Key:       append([]byte(nil), rec.Key()...),
						Tombstone: m.Tombstone(),
					}
					if lg.InMemory(addr) {
						cr.Value = rec.ReadValueStable(nil)
					} else {
						cr.Value = append([]byte(nil), rec.Value()...)
					}
					if !emit(cr) {
						abort = true
						return false
					}
				}
				addr = m.Previous()
			}
			return true
		})
	if abort {
		return skippedIndirections, ErrScanAborted
	}
	return skippedIndirections, err
}
