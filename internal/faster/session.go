package faster

import (
	"bytes"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/hashidx"
	"repro/internal/hlog"
)

// Session is one thread's handle onto a shared Store. A Session is owned by
// exactly one goroutine: operations, CompletePending and Refresh must not be
// called concurrently. Pending-operation callbacks run on the session's
// goroutine, inside CompletePending.
//
// Two completion styles coexist:
//
//   - Callback-based (Read/Upsert/RMW/Delete): the callback is invoked
//     exactly once — inline when the operation completes immediately, or
//     from CompletePending when it needed storage I/O.
//   - Token-based (ReadHash/UpsertHash/RMWHash/DeleteHash): the caller
//     supplies the key hash it already computed plus an opaque token, and
//     inline results come back as return values — no per-operation closure.
//     Only operations that go pending are routed to the session's
//     CompletionHandler, keyed by token. This is the server dispatch loop's
//     allocation-free hot path.
type Session struct {
	s *Store
	g *epoch.Guard

	// completions carries finished storage I/O back to the session
	// goroutine as the pending-op structs themselves (no closure per
	// completion); opFree recycles them.
	completions chan *pendingOp
	opFree      []*pendingOp
	inflight    atomic.Int64
	closed      bool

	// pipe is the session's pending-read pipeline: queued reads, coalesced
	// by address, submitted to the device in batches (pipeline.go).
	pipe readPipe

	// handler receives token-based pending completions.
	handler CompletionHandler

	opsSinceRefresh int

	// manualRefresh pins epoch crossings to explicit Refresh calls (set by
	// server dispatch loops, which refresh once per batch boundary). CPR
	// correctness depends on it: SealVersion/CheckpointCut treat "every
	// guard crossed the bump" as "no thread still stamps the sealed
	// version", so a session that refreshes its guard mid-batch (the
	// maybeRefresh valve) while keeping the old ver would let the cut's
	// scan race its still-pre-cut appends and session-table advances —
	// records leak into or out of the sealed image independently of the
	// durable watermark shipped with it.
	manualRefresh bool

	// ver is the session's thread-local CPR version (§2.1): every append is
	// stamped with it, and it advances only at Refresh — so all operations
	// between two Refresh calls (one server batch) belong to one version,
	// which is what lets recovery draw an exact cut through the fuzzy
	// checkpoint image.
	ver uint32

	// scratch buffers reused across operations to keep the data path
	// allocation-free.
	valBuf []byte
}

// Callback receives an operation's final status and, for reads, the value
// (valid only during the call; callers must copy to retain). For
// StatusIndirection the payload is the encoded indirection pointer.
type Callback func(st Status, value []byte)

// CompletionHandler receives the final status of token-based operations that
// returned StatusPending. It runs on the session goroutine, inside
// CompletePending; value (reads) is valid only during the call.
type CompletionHandler func(token uint64, st Status, value []byte)

// completion routes one operation's final result: to a caller-supplied
// callback, or — for token-based operations — to the session's
// CompletionHandler. Passed by value so the inline paths allocate nothing.
type completion struct {
	cb        Callback
	token     uint64
	tokenized bool
}

// deliver invokes the completion's sink.
func (sess *Session) deliver(comp completion, st Status, v []byte) {
	if comp.tokenized {
		if sess.handler != nil {
			sess.handler(comp.token, st, v)
		}
		return
	}
	invoke(comp.cb, st, v)
}

// NewSession registers a new thread with the store.
func (s *Store) NewSession() *Session {
	return &Session{
		s:           s,
		g:           s.epoch.Register(),
		completions: make(chan *pendingOp, s.cfg.MaxPendingPerSession),
		ver:         s.version.Load(),
	}
}

// SetCompletionHandler installs the sink for token-based pending
// completions. Must be set before the first ReadHash/RMWHash that can go
// pending; a nil handler drops token-based completions.
func (sess *Session) SetCompletionHandler(h CompletionHandler) { sess.handler = h }

// Close unregisters the session. Outstanding pending operations are drained
// first.
func (sess *Session) Close() {
	if sess.closed {
		return
	}
	sess.CompletePending(true)
	sess.closed = true
	sess.g.Unregister()
}

// Refresh synchronizes the session's epoch view and adopts the current CPR
// version; server loops call this between request batches.
func (sess *Session) Refresh() {
	sess.g.Refresh()
	sess.ver = sess.s.version.Load()
}

// Version returns the CPR version the session currently stamps appends
// with. The server layer tags its session table with it so the checkpointed
// durable prefix and the log's version stamps agree exactly.
func (sess *Session) Version() uint32 { return sess.ver }

// Guard exposes the epoch guard (the server layer refreshes it while
// spinning on transport queues).
func (sess *Session) Guard() *epoch.Guard { return sess.g }

// SetManualRefresh pins the session's epoch crossings to explicit Refresh
// calls, disabling the mid-operation maybeRefresh valve and keeping the
// guard protected while CompletePending blocks. Server dispatch loops set
// it: they Refresh at every batch boundary anyway, and batch-granular CPR
// (§2.1) requires that the guard never cross a version bump while the
// session still stamps the pre-cut version — see the manualRefresh field.
func (sess *Session) SetManualRefresh(on bool) { sess.manualRefresh = on }

// maybeRefresh keeps long-running single-session workloads participating in
// global cuts even if the caller never calls Refresh explicitly. Sessions in
// manual-refresh mode skip it: their guard may only cross together with
// version adoption at an explicit Refresh.
func (sess *Session) maybeRefresh() {
	if sess.manualRefresh {
		return
	}
	sess.opsSinceRefresh++
	if sess.opsSinceRefresh >= 256 {
		sess.opsSinceRefresh = 0
		sess.g.Refresh()
	}
}

// Pending returns the number of operations awaiting storage I/O.
func (sess *Session) Pending() int { return int(sess.inflight.Load()) }

// CompletePending runs completions for finished storage I/O, first
// submitting any reads still queued on the pipeline. With wait set it blocks
// until no operations remain in flight; otherwise it drains what is ready
// and returns. Returns the number of completions processed.
func (sess *Session) CompletePending(wait bool) int {
	n := 0
	for {
		if len(sess.pipe.ready) > 0 {
			// Ops that coalesced onto an already-finished read complete
			// from the session-local ready list, oldest first.
			p := sess.pipe.ready[0]
			copy(sess.pipe.ready, sess.pipe.ready[1:])
			sess.pipe.ready = sess.pipe.ready[:len(sess.pipe.ready)-1]
			sess.resume(p)
			n++
			continue
		}
		select {
		case p := <-sess.completions:
			sess.resume(p)
			n++
			continue
		default:
		}
		// Submit whatever the drain (or the caller) queued before deciding
		// to return or block: a queued read is invisible to the device until
		// flushed, and blocking on an unsubmitted read would deadlock.
		sess.flushReads()
		if len(sess.pipe.ready) > 0 {
			continue // flush coalesced ops onto already-finished reads
		}
		if !wait || sess.inflight.Load() == 0 {
			return n
		}
		if sess.manualRefresh {
			// Stay epoch-protected while blocked: a dispatcher drains its
			// pending operations *before* crossing a sealed cut, and
			// suspending here would let the cut's bump drain mid-wait —
			// the resumed completions would then append pre-cut-stamped
			// records racing the base scan. The stall is bounded by one
			// storage round-trip and only delays cuts, never deadlocks
			// (completions are delivered by I/O goroutines that do not
			// wait on epochs).
			p := <-sess.completions
			sess.resume(p)
			n++
			continue
		}
		// Block for the next completion; keep the epoch unprotected so
		// flush/eviction cuts are not held up by an idle session.
		sess.g.Suspend()
		p := <-sess.completions
		sess.g.Resume()
		sess.resume(p)
		n++
	}
}

// walkResult describes where a chain walk for a key ended.
type walkResult struct {
	rec     hlog.Record  // valid when status is walkFound/walkIndirection
	addr    hlog.Address // address of rec, or first non-resident address
	status  walkStatus
	entry   hashidx.Entry // chain head observed at walk start
	slot    hashidx.Slot
	hash    uint64
	mutable bool // rec lies in the in-place-update region
}

type walkStatus uint8

const (
	walkFound       walkStatus = iota // matching live record in memory
	walkTombstone                     // matching tombstone in memory
	walkNotFound                      // chain exhausted without a match
	walkBelowHead                     // chain continues on storage at addr
	walkIndirection                   // indirection record covering the hash
)

// walkMemory traverses the in-memory portion of key's hash chain.
func (sess *Session) walkMemory(slot hashidx.Slot, key []byte, hash uint64) walkResult {
	res := walkResult{slot: slot, hash: hash, status: walkNotFound}
	if !slot.Valid() {
		return res
	}
	res.entry = slot.Load()
	lg := sess.s.log
	head := lg.HeadAddress()
	readOnly := lg.ReadOnlyAddress()
	begin := lg.BeginAddress()
	fence := sess.s.fenceBelow(hash)
	addr := res.entry.Address()
	for addr != hlog.InvalidAddress {
		if addr < fence {
			// An ownership fence retired everything deeper in the chain for
			// this hash (stale records from an earlier tenancy of the range);
			// addresses only descend, so the walk ends here.
			res.status = walkNotFound
			return res
		}
		if addr < head {
			if addr < begin {
				res.status = walkNotFound
				return res
			}
			res.status = walkBelowHead
			res.addr = addr
			return res
		}
		rec := lg.RecordAt(addr)
		m := rec.Meta()
		if m.Invalid() {
			addr = m.Previous()
			continue
		}
		if m.Indirection() {
			if p, ok := hlog.DecodeIndirection(rec.Value()); ok &&
				hash >= p.RangeStart && hash < p.RangeEnd {
				res.status = walkIndirection
				res.rec, res.addr = rec, addr
				return res
			}
			addr = m.Previous()
			continue
		}
		if bytes.Equal(rec.Key(), key) {
			res.rec, res.addr = rec, addr
			res.mutable = addr >= readOnly
			if m.Tombstone() {
				res.status = walkTombstone
			} else {
				res.status = walkFound
			}
			return res
		}
		addr = m.Previous()
	}
	return res
}

// Read looks up key. The callback receives the value on StatusOK; it runs
// inline unless the result is StatusPending.
func (sess *Session) Read(key []byte, cb Callback) Status {
	st, v := sess.readHash(key, HashOf(key), completion{cb: cb})
	if st != StatusPending {
		invoke(cb, st, v)
	}
	return st
}

// ReadHash is Read for callers that already computed the key's hash (the
// server dispatch loop computes it for ownership checks) and want no per-op
// callback. Inline results are returned directly — the value is valid until
// the session's next operation. A StatusPending result is delivered to the
// session's CompletionHandler under token.
func (sess *Session) ReadHash(key []byte, hash uint64, token uint64) (Status, []byte) {
	return sess.readHash(key, hash, completion{token: token, tokenized: true})
}

// readHash is the shared read path; it never delivers inline results (the
// wrappers do), so token-based callers pay no closure.
func (sess *Session) readHash(key []byte, hash uint64, comp completion) (Status, []byte) {
	sess.maybeRefresh()
	sess.s.stats.Reads.Add(1)
	slot := sess.s.index.FindEntry(hash)
	res := sess.walkMemory(slot, key, hash)
	switch res.status {
	case walkFound:
		sess.s.noteCacheHit(hash)
		sess.maybeSample(hash, res)
		sess.valBuf = res.rec.ReadValueStable(sess.valBuf)
		return StatusOK, sess.valBuf
	case walkTombstone, walkNotFound:
		return StatusNotFound, nil
	case walkIndirection:
		sess.valBuf = res.rec.ReadValueStable(sess.valBuf)
		return StatusIndirection, sess.valBuf
	default: // walkBelowHead
		sess.enqueueRead(sess.newPendingOp(opRead, key, nil, hash, res.addr, comp))
		return StatusPending, nil
	}
}

// Upsert blindly writes value for key. It never needs storage I/O: a version
// in memory is updated in place or shadowed; a version on storage is
// shadowed by the append.
func (sess *Session) Upsert(key, value []byte, cb Callback) Status {
	st := sess.UpsertHash(key, value, HashOf(key))
	invoke(cb, st, nil)
	return st
}

// UpsertHash is Upsert with a caller-computed hash and no callback; upserts
// never go pending, so the returned status is always final.
func (sess *Session) UpsertHash(key, value []byte, hash uint64) Status {
	sess.maybeRefresh()
	sess.s.stats.Upserts.Add(1)
	slot := sess.s.index.FindOrCreateEntry(hash)
	for {
		res := sess.walkMemory(slot, key, hash)
		if res.status == walkFound && res.mutable &&
			res.rec.ValueLen() == len(value) &&
			hlog.SameVersion(res.rec.Meta().Version(), sess.ver) {
			// In-place update under the record's write seal. Gated on the
			// CPR version (§2.1): updating a prior-version record in place
			// would smuggle a post-cut write into the checkpoint's prefix,
			// so version-crossing updates take the copy path below and get
			// stamped with the session's version instead.
			pre := res.rec.Seal()
			res.rec.StoreValueBytes(value)
			res.rec.Unseal(pre)
			sess.s.stats.InPlaceUpdates.Add(1)
			return StatusOK
		}
		// RCU / blind append path.
		if sess.tryAppend(res, key, value, false) {
			sess.s.stats.RCUUpdates.Add(1)
			return StatusOK
		}
	}
}

// Delete writes a tombstone for key.
func (sess *Session) Delete(key []byte, cb Callback) Status {
	st := sess.DeleteHash(key, HashOf(key))
	invoke(cb, st, nil)
	return st
}

// DeleteHash is Delete with a caller-computed hash and no callback; deletes
// never go pending.
func (sess *Session) DeleteHash(key []byte, hash uint64) Status {
	sess.maybeRefresh()
	sess.s.stats.Deletes.Add(1)
	slot := sess.s.index.FindOrCreateEntry(hash)
	for {
		res := sess.walkMemory(slot, key, hash)
		if res.status == walkTombstone {
			return StatusOK
		}
		if sess.tryAppend(res, key, nil, true) {
			return StatusOK
		}
	}
}

// RMW reads key's value, applies the store's RMW function with input, and
// writes the result. The callback receives no value (use Read to observe),
// except for StatusIndirection where it carries the indirection pointer.
func (sess *Session) RMW(key, input []byte, cb Callback) Status {
	sess.maybeRefresh()
	sess.s.stats.RMWs.Add(1)
	hash := HashOf(key)
	slot := sess.s.index.FindOrCreateEntry(hash)
	st, v := sess.rmwFrom(slot, key, hash, input, completion{cb: cb})
	if st != StatusPending {
		invoke(cb, st, v)
	}
	return st
}

// RMWHash is RMW with a caller-computed hash and no per-op callback. Inline
// results are returned directly (for StatusIndirection the returned bytes
// are the encoded indirection pointer, valid until the session's next
// operation); a StatusPending result is delivered to the CompletionHandler
// under token.
func (sess *Session) RMWHash(key, input []byte, hash uint64, token uint64) (Status, []byte) {
	sess.maybeRefresh()
	sess.s.stats.RMWs.Add(1)
	slot := sess.s.index.FindOrCreateEntry(hash)
	return sess.rmwFrom(slot, key, hash, input, completion{token: token, tokenized: true})
}

// rmwFrom runs the RMW state machine starting with an in-memory walk; the
// pending-I/O continuation re-enters here. It never delivers the result
// itself: terminal statuses are returned to the caller, and only the
// pending path hands comp to a pending op for later delivery.
func (sess *Session) rmwFrom(slot hashidx.Slot, key []byte, hash uint64, input []byte, comp completion) (Status, []byte) {
	for {
		res := sess.walkMemory(slot, key, hash)
		switch res.status {
		case walkFound:
			// During Sampling (§3.3) updates to matching records go through
			// the copy path so the updated record lands at the tail; the
			// in-place fast path would leave it below the sampling cut.
			// Prior-version records likewise go through the copy path (CPR:
			// an in-place RMW on a pre-cut record would be invisible to the
			// version filter recovery applies).
			sampling := sess.samplerMatch(hash, res.addr)
			if !sampling && res.mutable &&
				hlog.SameVersion(res.rec.Meta().Version(), sess.ver) &&
				sess.s.rmw.TryInPlace(res.rec, input) {
				sess.s.stats.InPlaceUpdates.Add(1)
				return StatusOK, nil
			}
			// Copy-on-write from the current value.
			old := res.rec.ReadValueStable(nil)
			if sess.appendRMW(res, key, sess.s.rmw.Apply(old, input)) {
				if sampling {
					sess.s.stats.SampledCopies.Add(1)
				}
				return StatusOK, nil
			}
		case walkTombstone, walkNotFound:
			if sess.appendRMW(res, key, sess.s.rmw.Initial(input)) {
				return StatusOK, nil
			}
		case walkIndirection:
			sess.valBuf = res.rec.ReadValueStable(sess.valBuf)
			return StatusIndirection, sess.valBuf
		case walkBelowHead:
			sess.enqueueRead(sess.newPendingOp(opRMW, key, input, hash, res.addr, comp))
			return StatusPending, nil
		}
	}
}

// tryAppend appends a record (or tombstone) and CASes it in as the chain
// head. For blind writes a CAS failure just relinks and retries against the
// fresh head, so it cannot fail permanently; it returns false only when the
// walk must be redone (the in-place fast path may now apply).
func (sess *Session) tryAppend(res walkResult, key, value []byte, tombstone bool) bool {
	addr, rec, err := sess.append(res.entry.Address(), key, value, tombstone)
	if err != nil {
		return false
	}
	entry := res.entry
	for {
		if res.slot.CompareAndSwap(entry,
			newEntryFor(res.hash, addr)) {
			return true
		}
		entry = res.slot.Load()
		// Relink our record to the new chain head and retry: safe for
		// blind writes because the record's payload is independent of the
		// prior value.
		rec.SetMeta(rec.Meta().WithPrevious(entry.Address()))
	}
}

// appendRMW appends a computed value; a CAS failure invalidates the record
// and reports false so the caller recomputes against the fresh head (the
// value may depend on state that just changed).
func (sess *Session) appendRMW(res walkResult, key, value []byte) bool {
	addr, rec, err := sess.append(res.entry.Address(), key, value, false)
	if err != nil {
		return false
	}
	if res.slot.CompareAndSwap(res.entry, newEntryFor(res.hash, addr)) {
		sess.s.stats.RCUUpdates.Add(1)
		return true
	}
	rec.SetMeta(rec.Meta().WithInvalid())
	return false
}

// append allocates and writes a record; the caller installs it in the index.
func (sess *Session) append(prev hlog.Address, key, value []byte, tombstone bool) (hlog.Address, hlog.Record, error) {
	size := hlog.RecordSize(len(key), len(value))
	addr, buf, err := sess.s.log.Allocate(sess.g, size)
	if err != nil {
		return hlog.InvalidAddress, nil, err
	}
	meta := hlog.NewMeta(prev, sess.ver, false, tombstone)
	rec := hlog.WriteRecord(buf, meta, key, value)
	return addr, rec, nil
}

// newEntryFor packs an index entry pointing at addr for hash.
func newEntryFor(hash uint64, addr hlog.Address) hashidx.Entry {
	return hashidx.PackEntry(hashidx.TagOf(hash), addr)
}

// samplerMatch reports whether the Sampling-phase filter wants the record at
// addr copied to the tail.
func (sess *Session) samplerMatch(hash uint64, addr hlog.Address) bool {
	fn := sess.s.sampler()
	return fn != nil && fn(hash, addr)
}

// maybeSample implements the Sampling phase's copy-to-tail (§3.3) for reads:
// the accessed record is re-verified as the current chain head and copied to
// the tail with a single-shot CAS. A failed CAS means a concurrent writer
// moved the chain — the copy is abandoned (invalidated) rather than risking
// shadowing the newer value.
func (sess *Session) maybeSample(hash uint64, res walkResult) {
	if !sess.samplerMatch(hash, res.addr) {
		return
	}
	cur := sess.walkMemory(res.slot, res.rec.Key(), hash)
	if cur.status != walkFound || cur.addr != res.addr {
		return // record no longer newest; its replacement is already hot
	}
	val := cur.rec.ReadValueStable(nil)
	key := append([]byte(nil), cur.rec.Key()...)
	if sess.appendRMW(cur, key, val) {
		sess.s.stats.SampledCopies.Add(1)
	}
}

func invoke(cb Callback, st Status, v []byte) {
	if cb != nil {
		cb(st, v)
	}
}
