package faster

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/hlog"
	"repro/internal/storage"
)

// TestPropertyStoreMatchesMap checks the fundamental store invariant: under
// any sequence of upserts, deletes and RMWs, FASTER agrees with a plain map
// executed sequentially — including across the memory/SSD boundary.
func TestPropertyStoreMatchesMap(t *testing.T) {
	type opDesc struct {
		Kind  uint8 // % 3: upsert, delete, rmw
		Key   uint8 // small key space forces chains and overwrites
		Value uint8
	}
	f := func(ops []opDesc) bool {
		s, _ := testStore(t)
		sess := s.NewSession()
		defer sess.Close()
		model := make(map[string][]byte)
		counters := make(map[string]uint64)

		for _, od := range ops {
			key := []byte(fmt.Sprintf("k%03d", od.Key))
			switch od.Kind % 3 {
			case 0:
				val := bytes.Repeat([]byte{od.Value}, 16)
				sess.Upsert(key, val, nil)
				model[string(key)] = val
				delete(counters, string(key))
			case 1:
				sess.Delete(key, nil)
				delete(model, string(key))
				delete(counters, string(key))
			case 2:
				if st := sess.RMW(key, delta(uint64(od.Value)), nil); st == StatusPending {
					sess.CompletePending(true)
				}
				if _, isBlob := model[string(key)]; isBlob {
					// RMW over a non-counter value replaces it via Apply
					// (CounterRMW reads the first 8 bytes).
					old := model[string(key)]
					var cur uint64
					if len(old) >= 8 {
						cur = leU64(old)
					}
					counters[string(key)] = cur + uint64(od.Value)
					delete(model, string(key))
				} else {
					counters[string(key)] += uint64(od.Value)
				}
			}
		}
		// Verify every key against the model.
		for k, v := range model {
			got, st := mustReadQ(sess, []byte(k))
			if st != StatusOK || !bytes.Equal(got, v) {
				t.Logf("blob key %q: %v %q want %q", k, st, got, v)
				return false
			}
		}
		for k, c := range counters {
			got, st := mustReadQ(sess, []byte(k))
			if st != StatusOK || len(got) < 8 || leU64(got) != c {
				t.Logf("counter key %q: %v %v want %d", k, st, got, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func mustReadQ(sess *Session, key []byte) ([]byte, Status) {
	var got []byte
	var final Status
	st := sess.Read(key, func(st Status, v []byte) {
		final = st
		got = append([]byte(nil), v...)
	})
	if st == StatusPending {
		sess.CompletePending(true)
	}
	return got, final
}

// TestPropertyChainNewestWins: after any overwrite sequence for one key,
// the chain head must resolve to the last write even when older versions
// have been evicted to storage.
func TestPropertyChainNewestWins(t *testing.T) {
	f := func(writes []uint8, filler uint8) bool {
		if len(writes) == 0 {
			return true
		}
		s, _ := testStore(t)
		sess := s.NewSession()
		defer sess.Close()
		key := []byte("the-key")
		for i, w := range writes {
			sess.Upsert(key, bytes.Repeat([]byte{w}, 24), nil)
			// Interleave filler traffic to push older versions down the
			// log (and eventually off memory).
			for j := 0; j < int(filler%8)+1; j++ {
				sess.Upsert([]byte(fmt.Sprintf("f-%d-%d", i, j)), make([]byte, 48), nil)
			}
		}
		want := bytes.Repeat([]byte{writes[len(writes)-1]}, 24)
		got, st := mustReadQ(sess, key)
		return st == StatusOK && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCheckpointPreservesQuiescedState: any quiesced store state
// survives a checkpoint/recover cycle byte-for-byte.
func TestPropertyCheckpointPreservesQuiescedState(t *testing.T) {
	f := func(keys []uint16, seed uint8) bool {
		dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
		defer dev.Close()
		cfg := Config{
			IndexBuckets: 1 << 10,
			Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
				Device: dev, LogID: "prop"},
		}
		s, err := NewStore(cfg)
		if err != nil {
			return false
		}
		sess := s.NewSession()
		model := make(map[string][]byte)
		for i, k := range keys {
			key := []byte(fmt.Sprintf("key-%05d", k))
			val := bytes.Repeat([]byte{byte(i) ^ seed}, 16)
			sess.Upsert(key, val, nil)
			model[string(key)] = val
		}
		sess.Close()

		var blob bytes.Buffer
		if _, err := s.CheckpointSync(&blob); err != nil {
			return false
		}
		s.Close()

		cfg2 := cfg
		cfg2.Log.Epoch = nil
		r, err := Recover(cfg2, bytes.NewReader(blob.Bytes()))
		if err != nil {
			return false
		}
		defer r.Close()
		rs := r.NewSession()
		defer rs.Close()
		for k, v := range model {
			got, st := mustReadQ(rs, []byte(k))
			if st != StatusOK || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCheckpointRecoverMixedOps: checkpoint→recover round-trip
// equivalence against an in-memory model under randomized upsert/RMW/delete
// workloads — the durability analogue of TestPropertyStoreMatchesMap. The
// workload is applied, the store checkpointed and "crashed" (memory
// discarded; device and image survive), and the recovered store must agree
// with the model key-for-key, including tombstones and counter values, and
// keep accepting writes.
func TestPropertyCheckpointRecoverMixedOps(t *testing.T) {
	type opDesc struct {
		Kind  uint8 // % 3: upsert, delete, rmw
		Key   uint8 // small key space forces chains and overwrites
		Value uint8
	}
	f := func(ops []opDesc) bool {
		dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
		defer dev.Close()
		cfg := Config{
			IndexBuckets: 1 << 10,
			Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
				Device: dev, LogID: "prop-mixed"},
		}
		s, err := NewStore(cfg)
		if err != nil {
			return false
		}
		sess := s.NewSession()
		model := make(map[string][]byte)
		counters := make(map[string]uint64)
		deleted := make(map[string]bool)

		for _, od := range ops {
			key := []byte(fmt.Sprintf("k%03d", od.Key))
			switch od.Kind % 3 {
			case 0:
				val := bytes.Repeat([]byte{od.Value}, 16)
				sess.Upsert(key, val, nil)
				model[string(key)] = val
				delete(counters, string(key))
				delete(deleted, string(key))
			case 1:
				sess.Delete(key, nil)
				delete(model, string(key))
				delete(counters, string(key))
				deleted[string(key)] = true
			case 2:
				if st := sess.RMW(key, delta(uint64(od.Value)), nil); st == StatusPending {
					sess.CompletePending(true)
				}
				if old, isBlob := model[string(key)]; isBlob {
					var cur uint64
					if len(old) >= 8 {
						cur = leU64(old)
					}
					counters[string(key)] = cur + uint64(od.Value)
					delete(model, string(key))
				} else {
					counters[string(key)] += uint64(od.Value)
				}
				delete(deleted, string(key))
			}
		}
		sess.Close()

		var blob bytes.Buffer
		if _, err := s.CheckpointSync(&blob); err != nil {
			t.Log(err)
			return false
		}
		s.Close() // crash: memory gone, device + image survive

		cfg2 := cfg
		cfg2.Log.Epoch = nil
		r, err := Recover(cfg2, bytes.NewReader(blob.Bytes()))
		if err != nil {
			t.Log(err)
			return false
		}
		defer r.Close()
		rs := r.NewSession()
		defer rs.Close()

		for k, v := range model {
			got, st := mustReadQ(rs, []byte(k))
			if st != StatusOK || !bytes.Equal(got, v) {
				t.Logf("blob key %q after recovery: %v %q want %q", k, st, got, v)
				return false
			}
		}
		for k, c := range counters {
			got, st := mustReadQ(rs, []byte(k))
			if st != StatusOK || len(got) < 8 || leU64(got) != c {
				t.Logf("counter key %q after recovery: %v %v want %d", k, st, got, c)
				return false
			}
		}
		for k := range deleted {
			if _, st := mustReadQ(rs, []byte(k)); st != StatusNotFound {
				t.Logf("deleted key %q resurrected after recovery: %v", k, st)
				return false
			}
		}
		// The recovered store must remain writable and consistent.
		rs.Upsert([]byte("post-recovery"), []byte("ok"), nil)
		got, st := mustReadQ(rs, []byte("post-recovery"))
		return st == StatusOK && bytes.Equal(got, []byte("ok"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCollectChainNewestOnly: migration collection must emit the
// newest version of each in-range key exactly once.
func TestPropertyCollectChainNewestOnly(t *testing.T) {
	f := func(nKeys uint8, rounds uint8) bool {
		n := int(nKeys%32) + 1
		r := int(rounds%4) + 1
		s, _ := testStore(t)
		sess := s.NewSession()
		defer sess.Close()
		want := make(map[string]uint64)
		for round := 0; round < r; round++ {
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("ck-%03d", i)
				sess.Upsert([]byte(k), delta(uint64(round*100+i)), nil)
				want[k] = uint64(round*100 + i)
			}
		}
		got := make(map[string]uint64)
		seen := make(map[string]struct{})
		ix := s.Index()
		ix.ForEachEntryInBuckets(0, ix.NumBuckets(), func(b uint64, slot IndexSlot) bool {
			sess.CollectChain(b, slot, 0, ^uint64(0), false, seen,
				func(rec CollectedRecord) {
					if rec.Indirection {
						return
					}
					if _, dup := got[string(rec.Key)]; dup {
						t.Log("duplicate emission")
					}
					got[string(rec.Key)] = leU64(rec.Value)
				})
			return true
		})
		for k, v := range want {
			if got[k] != v {
				t.Logf("key %q: collected %d want %d", k, got[k], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
