package faster

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/hashidx"
	"repro/internal/hlog"
	"repro/internal/storage"
)

// fillToEvict writes n filler records so earlier keys spill to the device.
func fillToEvict(t testing.TB, sess *Session, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		sess.Upsert([]byte(fmt.Sprintf("filler-%06d", i)), val(i), nil)
	}
	if sess.s.Log().SafeHeadAddress() == 0 {
		t.Fatal("filler did not evict anything to storage")
	}
}

// TestPendingReadCoalescing queues many reads of the same cold key in one
// batch: they must share one device I/O per chain hop, not one per read.
func TestPendingReadCoalescing(t *testing.T) {
	s, dev := testStore(t)
	sess := s.NewSession()
	defer sess.Close()
	sess.Upsert(key(0), val(0), nil)
	fillToEvict(t, sess, 3000)

	readsBefore := dev.Stats().Reads
	var okCount int
	cb := func(st Status, v []byte) {
		if st != StatusOK || !bytes.Equal(v, val(0)) {
			t.Errorf("coalesced read: %v %q", st, v)
		}
		okCount++
	}
	const dup = 64
	for i := 0; i < dup; i++ {
		if st := sess.Read(key(0), cb); st != StatusPending {
			t.Fatalf("read %d: %v, want pending", i, st)
		}
	}
	sess.CompletePending(true)
	if okCount != dup {
		t.Fatalf("completed %d of %d reads", okCount, dup)
	}
	if got := s.Stats().PendingCoalesced.Load(); got == 0 {
		t.Fatal("identical queued reads did not coalesce")
	}
	if s.Stats().DeviceBatchReads.Load() == 0 {
		t.Fatal("no batched device submission recorded")
	}
	if devReads := dev.Stats().Reads - readsBefore; devReads >= dup {
		t.Fatalf("%d device reads for %d duplicate key reads (no coalescing)",
			devReads, dup)
	}
}

// TestPendingReadCoalescingConcurrent drives the same cold chain from
// several sessions at once (run under -race in CI).
func TestPendingReadCoalescingConcurrent(t *testing.T) {
	s, _ := testStore(t)
	setup := s.NewSession()
	sess := setup
	sess.Upsert(key(0), val(0), nil)
	fillToEvict(t, sess, 3000)
	setup.Close()

	const threads, per = 4, 32
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			for i := 0; i < per; i++ {
				sess.Read(key(0), func(st Status, v []byte) {
					if st != StatusOK || !bytes.Equal(v, val(0)) {
						t.Errorf("read: %v %q", st, v)
					}
				})
			}
			sess.CompletePending(true)
		}()
	}
	wg.Wait()
	if s.Stats().PendingCoalesced.Load() == 0 {
		t.Fatal("no coalescing under concurrent same-chain load")
	}
}

// TestPendingReadsNoGoroutinePerRead pins the pipeline design: queuing
// hundreds of cold reads must not spawn a goroutine per read.
func TestPendingReadsNoGoroutinePerRead(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()
	for i := 0; i < 3000; i++ {
		sess.Upsert(key(i), val(i), nil)
	}
	if s.Log().SafeHeadAddress() == 0 {
		t.Fatal("dataset did not spill")
	}

	baseline := runtime.NumGoroutine()
	pending, peak := 0, 0
	discard := func(Status, []byte) {}
	for i := 0; i < 1024; i++ {
		if st := sess.Read(key(i%3000), discard); st == StatusPending {
			pending++
		}
		if i%128 == 127 {
			if g := runtime.NumGoroutine(); g > peak {
				peak = g
			}
			sess.CompletePending(false)
		}
	}
	sess.CompletePending(true)
	if pending == 0 {
		t.Fatal("no read went pending; test not exercising the pipeline")
	}
	// Device workers and the runtime add a handful of goroutines; anything
	// near the pending-read count means a goroutine-per-read regression.
	if peak > baseline+8 {
		t.Fatalf("goroutines grew from %d to %d across %d pending reads",
			baseline, peak, pending)
	}
}

// TestPendingReadSteadyStateAllocs pins the pooled pending path: once the
// entry/op pools are warm, a cold read costs a small constant number of
// heap allocations.
func TestPendingReadSteadyStateAllocs(t *testing.T) {
	s, _ := testStore(t)
	sess := s.NewSession()
	defer sess.Close()
	sess.Upsert(key(0), val(0), nil)
	fillToEvict(t, sess, 3000)

	misses := 0
	discard := func(st Status, _ []byte) {
		if st != StatusOK {
			misses++
		}
	}
	coldRead := func() {
		if st := sess.Read(key(0), discard); st == StatusPending {
			sess.CompletePending(true)
		}
	}
	for i := 0; i < 10; i++ { // warm the op/entry/buffer pools
		coldRead()
	}
	avg := testing.AllocsPerRun(100, coldRead)
	if misses != 0 {
		t.Fatalf("%d reads failed", misses)
	}
	// One batch slice, one completion closure and small bookkeeping per
	// flush; the op, entry and span buffer must come from the pools.
	if avg > 12 {
		t.Fatalf("steady-state cold read costs %.1f allocs, want <= 12", avg)
	}
}

// chainKeys mines n keys that share one index slot — same bucket (the index
// has `buckets` main buckets) and same tag — so their records form a single
// hash chain. HashOf is deterministic, so the mining is too.
func chainKeys(t *testing.T, buckets uint64, n int) [][]byte {
	t.Helper()
	type slot struct {
		bucket uint64
		tag    uint16
	}
	groups := make(map[slot][]int)
	for i := 0; i < 500_000; i++ {
		h := HashOf(key(i))
		sl := slot{h & (buckets - 1), hashidx.TagOf(h)}
		groups[sl] = append(groups[sl], i)
		if len(groups[sl]) == n {
			keys := make([][]byte, n)
			for j, k := range groups[sl] {
				keys[j] = key(k)
			}
			return keys
		}
	}
	t.Fatal("no slot collision found")
	return nil
}

// TestReadaheadServesChainHops builds a deep hash chain of adjacent records,
// spills it, then reads the oldest key: the chain hops land inside the span
// the first device read already fetched and must be served from it instead
// of issuing one device I/O per hop.
func TestReadaheadServesChainHops(t *testing.T) {
	dev := storage.NewMemDevice(storage.LatencyModel{}, 4)
	s, err := NewStore(Config{
		IndexBuckets: 1 << 4,
		Log: hlog.Config{PageBits: 12, MemPages: 16, MutablePages: 8,
			Device: dev, LogID: "readahead"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); dev.Close() })
	sess := s.NewSession()
	defer sess.Close()

	keys := chainKeys(t, 1<<4, 5)
	for i, k := range keys {
		sess.Upsert(k, val(i), nil) // consecutive appends: adjacent addresses
	}
	fillToEvict(t, sess, 3000)

	readsBefore := dev.Stats().Reads
	got, st := mustRead(t, sess, keys[0]) // oldest: deepest in the chain
	if st != StatusOK || !bytes.Equal(got, val(0)) {
		t.Fatalf("chained key: %v %q", st, got)
	}
	if s.Stats().ReadaheadHits.Load() == 0 {
		t.Fatal("no chain hop was served from the readahead span")
	}
	if devReads := dev.Stats().Reads - readsBefore; devReads >= uint64(len(keys)) {
		t.Fatalf("%d device reads walking a %d-deep chain (readahead not used)",
			devReads, len(keys))
	}
}
